package storage

import (
	"bytes"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cerfix/internal/schema"
)

func TestCSVRoundTrip(t *testing.T) {
	sch := personSchema(t)
	tb := NewTable(sch)
	fill(t, tb)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(sch)
	if err := tb2.ReadCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != 3 {
		t.Fatalf("Len = %d", tb2.Len())
	}
	a, b := tb.All(), tb2.All()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("row %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCSVQuotedValues(t *testing.T) {
	sch := personSchema(t)
	tb := NewTable(sch)
	if _, err := tb.InsertValues(`comma, inside`, `quote "q"`, "new\nline"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(sch)
	if err := tb2.ReadCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := tb2.All()[0]
	if got.Get("FN") != "comma, inside" || got.Get("LN") != `quote "q"` || got.Get("zip") != "new\nline" {
		t.Fatalf("quoted round trip: %v", got)
	}
}

func TestCSVColumnReordering(t *testing.T) {
	sch := personSchema(t)
	tb := NewTable(sch)
	src := "zip,FN,LN\nEH8 4AH,Robert,Brady\n"
	if err := tb.ReadCSV(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	got := tb.All()[0]
	if got.Get("FN") != "Robert" || got.Get("zip") != "EH8 4AH" {
		t.Fatalf("reordered columns mismapped: %v", got)
	}
}

func TestCSVHeaderErrors(t *testing.T) {
	sch := personSchema(t)
	cases := []string{
		"bogus,FN,LN\na,b,c\n",
		"FN,FN,LN\na,b,c\n",
		"FN,LN\na,b\n",
		"",
	}
	for _, src := range cases {
		tb := NewTable(sch)
		if err := tb.ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("header %q accepted", strings.SplitN(src, "\n", 2)[0])
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	sch := personSchema(t)
	tb := NewTable(sch)
	fill(t, tb)
	path := filepath.Join(t.TempDir(), "person.csv")
	if err := tb.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(sch)
	if err := tb2.LoadCSVFile(path); err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != tb.Len() {
		t.Fatalf("Len = %d, want %d", tb2.Len(), tb.Len())
	}
	if err := tb2.LoadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	sch := personSchema(t)
	tb, err := c.Create(sch)
	if err != nil || tb == nil {
		t.Fatal(err)
	}
	if _, err := c.Create(sch); err == nil {
		t.Fatal("duplicate table accepted")
	}
	got, ok := c.Get("PERSON")
	if !ok || got != tb {
		t.Fatal("Get failed")
	}
	other := schema.MustNew("OTHER", schema.Str("x"))
	if _, err := c.Create(other); err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "OTHER" || names[1] != "PERSON" {
		t.Fatalf("Names = %v", names)
	}
	if !c.Drop("OTHER") || c.Drop("OTHER") {
		t.Fatal("Drop semantics wrong")
	}
}
