// Command cerfixbench regenerates every table/figure of the CerFix
// reproduction as aligned text tables. Experiments (see DESIGN.md §4):
//
//	e1 — Fig. 2: rule-set consistency analysis
//	e2 — Fig. 3: monitor interaction walkthrough
//	e3 — Fig. 4: auditing statistics (user% vs auto%)
//	e4 — accuracy vs noise: certain fixes vs CFD heuristic repair
//	e5 — scalability: fix latency vs master size and vs #rules
//	e6 — user effort vs noise
//	e7 — region finder: exact vs greedy cost and quality
//	e8 — batch-repair pipeline: throughput vs worker count per access path
//	e9 — snapshot cost: deep clone vs O(1) copy-on-write, latency and
//	     steady-state fix throughput vs master size (writes BENCH_e9.json)
//	e10 — compiled chase program vs legacy loop: steady-state latency
//	     and allocs per fix at rules × master-size grid (writes
//	     BENCH_e10.json)
//	e11 — zero-alloc batch pipeline: end-to-end throughput and allocs
//	     per tuple at worker counts × slice/csv/jsonl paths vs the
//	     per-tuple-boxing baseline, parity-gated (writes BENCH_e11.json)
//	e12 — memory-scale master data: bytes/row boxed vs columnar-packed,
//	     snapshot latency before/after packing, checkpoint vs WAL-append
//	     save latency and load (replay) latency vs master size,
//	     parity-gated chase output (writes BENCH_e12.json)
//	e13 — simd kernels & premise prefilter: JSONL/CSV row-scan MB/s of
//	     the simd sources vs the stdlib decoders they replaced, and
//	     chase ns/fix with the premise prefilter on vs off at growing
//	     rule counts with the observed skip rate; both parity-gated
//	     (writes BENCH_e13.json)
//
// Run all with -exp all (default), or a comma-separated subset:
//
//	cerfixbench -exp e3,e4 -tuples 500 -noise 0.3
//
// e9 and e10 load large master tables (default sizes up to 500k/100k
// rows), e11 runs timed multi-pass pipeline sweeps, and e12 builds
// million-row masters, so they only run when requested explicitly,
// never under -exp all:
//
//	cerfixbench -exp e9 -e9-sizes 10000,100000,500000 -e9-out BENCH_e9.json
//	cerfixbench -exp e10 -e10-rules 1,8,64 -e10-sizes 10000,100000 -e10-out BENCH_e10.json
//	cerfixbench -exp e11 -e11-workers 1,2,4,8 -e11-tuples 5000 -e11-out BENCH_e11.json
//	cerfixbench -exp e12 -e12-sizes 100000,1000000 -e12-out BENCH_e12.json
//	cerfixbench -exp e13 -e13-scan-tuples 20000 -e13-rules 9,45,90 -e13-out BENCH_e13.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cerfix/internal/experiments"
	"cerfix/internal/textutil"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiments to run (comma-separated: e1..e13, or all = e1..e8)")
		entities  = flag.Int("entities", 200, "master entities for generated workloads")
		tuples    = flag.Int("tuples", 400, "input tuples per generated workload")
		noise     = flag.Float64("noise", 0.3, "cell noise rate for e3")
		seed      = flag.Uint64("seed", 1, "workload seed")
		e9Sizes   = flag.String("e9-sizes", "10000,100000,500000", "comma-separated master sizes for e9")
		e9Probes  = flag.Int("e9-probes", 2000, "fix probes per master size for e9")
		e9Out     = flag.String("e9-out", "BENCH_e9.json", "JSON results file for e9 (empty = don't write)")
		e10Rules  = flag.String("e10-rules", "1,8,64", "comma-separated rule counts for e10")
		e10Sizes  = flag.String("e10-sizes", "10000,100000", "comma-separated master sizes for e10")
		e10Probes = flag.Int("e10-probes", 2000, "chase probes per cell for e10")
		e10Out    = flag.String("e10-out", "BENCH_e10.json", "JSON results file for e10 (empty = don't write)")
		e11Work   = flag.String("e11-workers", "1,2,4,8", "comma-separated worker counts for e11")
		e11Ents   = flag.Int("e11-entities", 100, "master entities for the e11 workload")
		e11Tuples = flag.Int("e11-tuples", 5000, "input tuples for the e11 workload")
		e11Out    = flag.String("e11-out", "BENCH_e11.json", "JSON results file for e11 (empty = don't write)")
		e12Sizes  = flag.String("e12-sizes", "100000,1000000", "comma-separated master sizes for e12")
		e12Probes = flag.Int("e12-probes", 200, "parity-gated chase probes per master size for e12")
		e12Out    = flag.String("e12-out", "BENCH_e12.json", "JSON results file for e12 (empty = don't write)")
		e13Scan   = flag.Int("e13-scan-tuples", 20000, "input tuples per stream format for the e13 scan measurement")
		e13Rules  = flag.String("e13-rules", "9,45,90", "comma-separated rule counts for the e13 prefilter measurement")
		e13Size   = flag.Int("e13-size", 2000, "master entities for the e13 prefilter workload")
		e13Probes = flag.Int("e13-probes", 2000, "chase probes per rule count for e13")
		e13Out    = flag.String("e13-out", "BENCH_e13.json", "JSON results file for e13 (empty = don't write)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("=== %s ===\n", strings.ToUpper(name))
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("e1", runE1)
	run("e2", runE2)
	run("e3", func() error { return runE3(*entities, *tuples, *noise, *seed) })
	run("e4", func() error { return runE4(*entities, *tuples, *seed) })
	run("e5", func() error { return runE5(*tuples, *seed) })
	run("e6", func() error { return runE6(*entities, *tuples, *seed) })
	run("e7", func() error { return runE7(*seed) })
	run("e8", func() error { return runE8(*entities, *tuples, *seed) })
	// e9 never runs under "all": its default configuration loads
	// 500k-row master tables.
	if want["e9"] {
		fmt.Println("=== E9 ===")
		if err := runE9(*e9Sizes, *e9Probes, *seed, *e9Out); err != nil {
			fmt.Fprintf(os.Stderr, "e9: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	// e10 never runs under "all" either: its default grid loads
	// 100k-row master tables.
	if want["e10"] {
		fmt.Println("=== E10 ===")
		if err := runE10(*e10Rules, *e10Sizes, *e10Probes, *seed, *e10Out); err != nil {
			fmt.Fprintf(os.Stderr, "e10: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	// e11 never runs under "all" either: each cell is a warmed, timed
	// full-pipeline sweep.
	if want["e11"] {
		fmt.Println("=== E11 ===")
		if err := runE11(*e11Work, *e11Ents, *e11Tuples, *seed, *e11Out); err != nil {
			fmt.Fprintf(os.Stderr, "e11: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	// e12 never runs under "all" either: its default sizes build
	// million-row master tables.
	if want["e12"] {
		fmt.Println("=== E12 ===")
		if err := runE12(*e12Sizes, *e12Probes, *seed, *e12Out); err != nil {
			fmt.Fprintf(os.Stderr, "e12: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	// e13 never runs under "all" either: it is a timed multi-pass
	// decode and chase sweep.
	if want["e13"] {
		fmt.Println("=== E13 ===")
		if err := runE13(*e13Scan, *e13Rules, *e13Size, *e13Probes, *seed, *e13Out); err != nil {
			fmt.Fprintf(os.Stderr, "e13: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runE13(scanTuples int, ruleSpec string, masterSize, probes int, seed uint64, outPath string) error {
	ruleCounts, err := parseSizes(ruleSpec)
	if err != nil {
		return err
	}
	scanRows, chaseRows, err := experiments.RunE13(scanTuples, ruleCounts, masterSize, probes, seed)
	if err != nil {
		return err
	}
	fmt.Println("simd row scanning — pipeline sources vs the stdlib decoders they replaced (tuple-parity-gated)")
	st := textutil.NewTextTable("format", "kernel", "MB", "tuples", "ref ns/tuple", "ref MB/s", "simd ns/tuple", "simd MB/s", "speedup")
	for _, r := range scanRows {
		st.AddRow(r.Format, r.Kernel,
			fmt.Sprintf("%.1f", r.MegaBytes), fmt.Sprint(r.Tuples),
			fmt.Sprintf("%.0f", r.RefNsPerTuple), fmt.Sprintf("%.1f", r.RefMBPerSec),
			fmt.Sprintf("%.0f", r.SimdNsPerTuple), fmt.Sprintf("%.1f", r.SimdMBPerSec),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	fmt.Print(st.String())
	fmt.Println()
	fmt.Println("premise prefilter — chase ns/fix with the prefilter on vs off (legacy-oracle parity-gated)")
	ct := textutil.NewTextTable("rules", "mode", "master entities", "off ns/fix", "on ns/fix", "speedup", "skipped", "evaluated", "skip rate")
	for _, r := range chaseRows {
		ct.AddRow(fmt.Sprint(r.Rules), r.Mode, fmt.Sprint(r.MasterSize),
			fmt.Sprintf("%.0f", r.BaselineNsPerFix), fmt.Sprintf("%.0f", r.PrefilterNsPerFix),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprint(r.RulesSkipped), fmt.Sprint(r.RulesEvaluated),
			fmt.Sprintf("%.1f%%", r.SkipRate*100))
	}
	fmt.Print(ct.String())
	if outPath == "" {
		return nil
	}
	doc := map[string]any{
		"experiment":   "e13",
		"description":  "simd kernels & premise prefilter: JSONL/CSV row-scan throughput of the simd-scanned pipeline sources vs the exact stdlib decoders they replaced (bufio.Scanner+encoding/json, encoding/csv), every decoded tuple compared before timing; and steady-state chase latency with the compiled program's premise prefilter on vs off at growing rule counts over dirty inputs, parity-gated against Engine.ChaseLegacy, with the observed rule skip rate",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"kernel":       scanRows[0].Kernel,
		"scan_tuples":  scanTuples,
		"rule_counts":  ruleCounts,
		"master_size":  masterSize,
		"probes":       probes,
		"seed":         seed,
		"scan_rows":    scanRows,
		"chase_rows":   chaseRows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("results written to %s\n", outPath)
	return nil
}

func runE12(sizeSpec string, probes int, seed uint64, outPath string) error {
	sizes, err := parseSizes(sizeSpec)
	if err != nil {
		return err
	}
	rows, err := experiments.RunE12(sizes, probes, seed)
	if err != nil {
		return err
	}
	fmt.Println("Memory-scale master data — boxed vs columnar-packed bytes/row, snapshot latency, checkpoint vs WAL-append save")
	tbl := textutil.NewTextTable("master tuples", "boxed B/row", "packed B/row", "reduction",
		"snap boxed", "snap packed", "save ckpt", "save append", "load")
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.MasterSize),
			fmt.Sprintf("%.1f", r.BoxedBytesPerRow),
			fmt.Sprintf("%.1f", r.PackedBytesPerRow),
			fmt.Sprintf("%.2fx", r.Reduction),
			fmtNs(r.SnapshotNsBoxed), fmtNs(r.SnapshotNsPacked),
			fmtNs(r.SaveCheckpointNs), fmtNs(r.SaveAppendNs),
			fmtNs(r.LoadNs))
	}
	fmt.Print(tbl.String())
	fmt.Println("(chase output over the packed master is asserted identical to the boxed master before any number is reported)")
	if outPath == "" {
		return nil
	}
	doc := map[string]any{
		"experiment":   "e12",
		"description":  "memory-scale master data: per-row bytes of the boxed live layout (accounted value.V cells + per-row slice headers) vs the columnar frozen layout (one []Sym block per shard column, storage.Table.PackColumnar), O(1) snapshot latency before and after packing, full-checkpoint System.Save vs single-row WAL-append System.Save, and Load (CSV + WAL replay) latency; chase output over the packed master is parity-gated against the boxed master",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"sizes":        sizes,
		"probes":       probes,
		"seed":         seed,
		"rows":         rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("results written to %s\n", outPath)
	return nil
}

func runE11(workerSpec string, entities, tuples int, seed uint64, outPath string) error {
	workerCounts, err := parseSizes(workerSpec)
	if err != nil {
		return err
	}
	rows, baselines, err := experiments.RunE11(workerCounts, entities, tuples, seed)
	if err != nil {
		return err
	}
	fmt.Println("Zero-alloc batch pipeline — end-to-end throughput and allocs/tuple (recycled arenas vs per-tuple boxing)")
	fmt.Println("baseline = sequential PR 4-style loop: fresh tuples, allocating chase results, encoding/json records")
	btbl := textutil.NewTextTable("path", "baseline µs/tuple", "baseline allocs/tuple")
	for _, b := range baselines {
		btbl.AddRow(b.Path, fmt.Sprintf("%.2f", b.NsPerTuple/1000), fmt.Sprintf("%.1f", b.AllocsPerTuple))
	}
	fmt.Print(btbl.String())
	tbl := textutil.NewTextTable("path", "workers", "µs/tuple", "tuples/s", "allocs/tuple", "speedup vs 1w")
	for _, r := range rows {
		tbl.AddRow(r.Path, fmt.Sprint(r.Workers),
			fmt.Sprintf("%.2f", r.NsPerTuple/1000),
			fmt.Sprintf("%.0f", r.TuplesPerSec),
			fmt.Sprintf("%.2f", r.AllocsPerTuple),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	fmt.Print(tbl.String())
	fmt.Println("(every pipeline run is asserted byte-identical to the sequential baseline before any number is reported)")
	if outPath == "" {
		return nil
	}
	doc := map[string]any{
		"experiment":   "e11",
		"description":  "end-to-end batch-repair pipeline throughput and heap allocations per tuple: recycled batch arenas + ring resequencer + append-style encoders (pipeline.Run) at worker counts x slice/csv/jsonl I/O paths, vs the sequential per-tuple-boxing baseline (fresh tuples, allocating chase results, encoding/json records); all runs parity-gated byte-for-byte against the baseline output",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"workers":      workerCounts,
		"entities":     entities,
		"tuples":       tuples,
		"seed":         seed,
		"baselines":    baselines,
		"rows":         rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("results written to %s\n", outPath)
	return nil
}

func runE10(ruleSpec, sizeSpec string, probes int, seed uint64, outPath string) error {
	ruleCounts, err := parseSizes(ruleSpec)
	if err != nil {
		return err
	}
	sizes, err := parseSizes(sizeSpec)
	if err != nil {
		return err
	}
	rows, err := experiments.RunE10(ruleCounts, sizes, probes, seed)
	if err != nil {
		return err
	}
	fmt.Println("Compiled chase program (agenda-scheduled, scratch buffers) vs legacy round-robin loop")
	tbl := textutil.NewTextTable("rules", "master tuples", "compiled µs/fix", "legacy µs/fix", "speedup", "compiled allocs/fix", "legacy allocs/fix")
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.Rules), fmt.Sprint(r.MasterSize),
			fmt.Sprintf("%.2f", r.CompiledNsPerFix/1000),
			fmt.Sprintf("%.2f", r.LegacyNsPerFix/1000),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f", r.CompiledAllocsPerFix),
			fmt.Sprintf("%.1f", r.LegacyAllocsPerFix))
	}
	fmt.Print(tbl.String())
	fmt.Println("(compiled and legacy chases are asserted to produce identical results before any number is reported)")
	if outPath == "" {
		return nil
	}
	doc := map[string]any{
		"experiment":   "e10",
		"description":  "steady-state certain-fix chase latency and heap allocations per tuple: compiled agenda-scheduled chase program (core.Chaser.ChaseScratch) vs legacy round-robin loop (core.Engine.ChaseLegacy), over rule-count x master-size grid",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"rule_counts":  ruleCounts,
		"sizes":        sizes,
		"probes":       probes,
		"seed":         seed,
		"rows":         rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("results written to %s\n", outPath)
	return nil
}

// parseSizes turns "10000,100000" into ints.
func parseSizes(spec string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes")
	}
	return out, nil
}

func runE9(sizeSpec string, probes int, seed uint64, outPath string) error {
	sizes, err := parseSizes(sizeSpec)
	if err != nil {
		return err
	}
	rows, err := experiments.RunE9(sizes, probes, seed)
	if err != nil {
		return err
	}
	fmt.Println("Snapshot cost — legacy deep clone vs O(1) copy-on-write (latency flat vs master size is the COW claim)")
	tbl := textutil.NewTextTable("master tuples", "deep-clone snap", "COW snap", "deep µs/fix", "COW µs/fix", "COW insert µs")
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.MasterSize),
			fmtNs(r.DeepCloneNs), fmtNs(r.CowSnapshotNs),
			fmt.Sprintf("%.1f", r.DeepFixNs/1000),
			fmt.Sprintf("%.1f", r.CowFixNs/1000),
			fmt.Sprintf("%.1f", r.CowWriterNs/1000))
	}
	fmt.Print(tbl.String())
	fmt.Println("(both snapshot kinds are asserted to produce identical fixes before any number is reported)")
	if outPath == "" {
		return nil
	}
	doc := map[string]any{
		"experiment":   "e9",
		"description":  "snapshot latency and steady-state certain-fix throughput vs master size: legacy deep-clone snapshots (Engine.SnapshotDeep) vs O(1) copy-on-write snapshots (Engine.Snapshot)",
		"generated_at": time.Now().UTC().Format(time.RFC3339),
		"sizes":        sizes,
		"probes":       probes,
		"seed":         seed,
		"rows":         rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("results written to %s\n", outPath)
	return nil
}

// fmtNs renders a nanosecond latency with a readable unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func runE1() error {
	res, err := experiments.RunE1()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 2 — editing-rule management: consistency of φ1–φ9 w.r.t. the demo master data")
	tbl := textutil.NewTextTable("rules", "consistent", "errors", "warnings", "CR probes", "elapsed")
	tbl.AddRowf(res.Rules, res.Consistent, res.Errors, res.Warnings, res.ProbesRun, res.Elapsed.String())
	fmt.Print(tbl.String())
	fmt.Println("(cross-entity warnings are expected: they require contradictory user assertions; see DESIGN.md §5)")
	return nil
}

func runE2() error {
	res, err := experiments.RunE2()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 3 — data monitor walkthrough (input: the M./Mark tuple; user validates AC, phn, type, item first)")
	tbl := textutil.NewTextTable("round", "user validates", "CerFix fixes/confirms", "next suggestion")
	for i, r := range res.Rounds {
		tbl.AddRow(fmt.Sprint(i+1),
			strings.Join(r.Validated, ", "),
			strings.Join(r.Fixed, ", "),
			strings.Join(r.NextSuggestion, ", "))
	}
	fmt.Print(tbl.String())
	fmt.Printf("certain fix: %v; matches ground truth: %v; rounds: %d (paper: \"after two rounds of interactions\")\n",
		res.Certain, res.MatchesGroundTruth, len(res.Rounds))
	return nil
}

func runE3(entities, tuples int, noise float64, seed uint64) error {
	fmt.Printf("Fig. 4 — auditing statistics (%d tuples, %.0f%% cell noise)\n", tuples, noise*100)
	for _, mix := range []struct {
		name  string
		share float64
	}{{"mobile-only stream (the Fig. 3 scenario at scale)", 1.0}, {"50/50 home/mobile stream", 0.5}} {
		res, err := experiments.RunE3(entities, tuples, noise, mix.share, seed)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s --\n", mix.name)
		tbl := textutil.NewTextTable("attr", "user", "auto-fixed", "auto-confirmed", "user%", "auto%")
		for _, s := range res.PerAttr {
			tbl.AddRowf(s.Attr, s.UserValidated, s.AutoFixed, s.AutoConfirmed, s.UserPct(), s.AutoPct())
		}
		o := res.Overall
		tbl.AddRowf("OVERALL", o.UserValidated, o.AutoFixed, o.AutoConfirmed, o.UserPct(), o.AutoPct())
		fmt.Print(tbl.String())
		fmt.Printf("all sessions certain: %v; rewrite share of auto cells: %.1f%%\n",
			res.AllCertain, res.RewriteShare*100)
	}
	// HOSP: richer rule coverage brings the split near the paper's
	// headline number.
	res, err := experiments.RunE3Hosp(entities, tuples, noise, seed)
	if err != nil {
		return err
	}
	fmt.Println("-- HOSP stream (11-attribute schema, region covers 3) --")
	tbl := textutil.NewTextTable("attr", "user", "auto-fixed", "auto-confirmed", "user%", "auto%")
	for _, s := range res.PerAttr {
		tbl.AddRowf(s.Attr, s.UserValidated, s.AutoFixed, s.AutoConfirmed, s.UserPct(), s.AutoPct())
	}
	o := res.Overall
	tbl.AddRowf("OVERALL", o.UserValidated, o.AutoFixed, o.AutoConfirmed, o.UserPct(), o.AutoPct())
	fmt.Print(tbl.String())
	fmt.Printf("all sessions certain: %v\n", res.AllCertain)
	// DBLP: the key-determined schema reproduces the paper's headline
	// split.
	dblp, err := experiments.RunE3Dblp(entities, tuples, noise, seed)
	if err != nil {
		return err
	}
	fmt.Println("-- DBLP stream (6-attribute schema, region = {key}) --")
	tbl2 := textutil.NewTextTable("attr", "user", "auto-fixed", "auto-confirmed", "user%", "auto%")
	for _, s := range dblp.PerAttr {
		tbl2.AddRowf(s.Attr, s.UserValidated, s.AutoFixed, s.AutoConfirmed, s.UserPct(), s.AutoPct())
	}
	od := dblp.Overall
	tbl2.AddRowf("OVERALL", od.UserValidated, od.AutoFixed, od.AutoConfirmed, od.UserPct(), od.AutoPct())
	fmt.Print(tbl2.String())
	fmt.Printf("all sessions certain: %v\n", dblp.AllCertain)
	fmt.Println("(paper claim: ~20% user / ~80% auto on average; DBLP reproduces it at ~19/81)")
	return nil
}

func runE4(entities, tuples int, seed uint64) error {
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	rows, err := experiments.RunE4(rates, entities, tuples, seed)
	if err != nil {
		return err
	}
	fmt.Println("Accuracy vs noise — CerFix certain fixes vs CFD cost-based heuristic repair (Example 1 at scale)")
	tbl := textutil.NewTextTable("noise", "CerFix P", "CerFix R", "CerFix F1",
		"CFD P", "CFD R", "CFD F1", "CFD broke cells")
	for _, r := range rows {
		tbl.AddRowf(r.NoiseRate,
			r.CerFix.Precision(), r.CerFix.Recall(), r.CerFix.F1(),
			r.Baseline.Precision(), r.Baseline.Recall(), r.Baseline.F1(),
			r.BaselineBroken)
	}
	fmt.Print(tbl.String())
	fmt.Println("(CerFix precision is 1.0 by construction; the heuristic overwrites correct cells)")

	hrows, err := experiments.RunE4Hosp(rates, entities/2, tuples/2, seed)
	if err != nil {
		return err
	}
	fmt.Println("\nHOSP table-level variant — plurality FD repair vs CerFix sessions")
	htbl := textutil.NewTextTable("noise", "CerFix P", "CerFix R", "FD P", "FD R", "FD F1", "FD broke cells")
	for _, r := range hrows {
		htbl.AddRowf(r.NoiseRate,
			r.CerFix.Precision(), r.CerFix.Recall(),
			r.Baseline.Precision(), r.Baseline.Recall(), r.Baseline.F1(),
			r.BaselineBroken)
	}
	fmt.Print(htbl.String())
	return nil
}

func runE5(tuples int, seed uint64) error {
	fmt.Println("Scalability (a): certain-fix latency vs master size (access-path ablation)")
	sizes := []int{1000, 5000, 20000, 50000}
	rows, err := experiments.RunE5Master(sizes, tuples/4, 5000, seed)
	if err != nil {
		return err
	}
	tbl := textutil.NewTextTable("master tuples", "rule-index µs/fix", "plain-index µs/fix", "scan µs/fix")
	for _, r := range rows {
		scan := "skipped"
		if r.ScanMeasured {
			scan = fmt.Sprintf("%.1f", r.ScanNsPerFix/1000)
		}
		tbl.AddRow(fmt.Sprint(r.MasterSize),
			fmt.Sprintf("%.1f", r.RuleIdxNsPerFix/1000),
			fmt.Sprintf("%.1f", r.PlainIdxNsPerFix/1000), scan)
	}
	fmt.Print(tbl.String())
	fmt.Println("(rule-index = precomputed unique-RHS maps, O(1)/probe; plain-index groups grow with master size on non-key attributes like AC)")

	fmt.Println("\nScalability (b): certain-fix latency vs number of rules (demo rules replicated)")
	rrows, err := experiments.RunE5Rules([]int{1, 2, 4, 8}, 2000, tuples/4, seed)
	if err != nil {
		return err
	}
	tbl2 := textutil.NewTextTable("rules", "µs/fix")
	for _, r := range rrows {
		tbl2.AddRow(fmt.Sprint(r.Rules), fmt.Sprintf("%.1f", r.NsPerFix/1000))
	}
	fmt.Print(tbl2.String())
	return nil
}

func runE6(entities, tuples int, seed uint64) error {
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	rows, err := experiments.RunE6(rates, entities, tuples, seed)
	if err != nil {
		return err
	}
	fmt.Println("User effort vs noise (oracle follows suggestions; 9-attribute schema)")
	tbl := textutil.NewTextTable("noise", "avg attrs validated", "avg rounds", "user cell fraction", "auto-rewrite share")
	for _, r := range rows {
		tbl.AddRowf(r.NoiseRate, r.AvgValidated, r.AvgRounds, r.UserFraction, r.AutoRewriteShare)
	}
	fmt.Print(tbl.String())
	fmt.Println("(suggestions are value-independent: effort tracks region size; rewrites grow with noise)")
	return nil
}

func runE8(entities, tuples int, seed uint64) error {
	rows, err := experiments.RunE8([]int{1, 2, 4, 8}, entities, tuples, seed)
	if err != nil {
		return err
	}
	fmt.Println("Batch-repair pipeline — throughput vs worker count (sharded chase, re-sequenced output)")
	tbl := textutil.NewTextTable("access path", "workers", "µs/fix", "tuples/s", "speedup vs 1w")
	for _, r := range rows {
		tbl.AddRow(r.Mode.String(), fmt.Sprint(r.Workers),
			fmt.Sprintf("%.1f", r.NsPerFix/1000),
			fmt.Sprintf("%.0f", r.TuplesPerSec),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	fmt.Print(tbl.String())
	fmt.Println("(output is asserted byte-identical to the sequential path before any number is reported)")
	return nil
}

func runE7(seed uint64) error {
	rows, err := experiments.RunE7([]int{3, 4, 5, 6, 7}, seed)
	if err != nil {
		return err
	}
	fmt.Println("Region finder — exact vs greedy on pairs(m): 2m attrs, minimal regions have size m")
	tbl := textutil.NewTextTable("attrs", "exact ms", "greedy ms", "exact best |Z|", "greedy best |Z|", "exact regions")
	for _, r := range rows {
		tbl.AddRowf(r.Attrs,
			float64(r.ExactNs)/1e6, float64(r.GreedyNs)/1e6,
			r.ExactBestSize, r.GreedyBestSize, r.ExactRegions)
	}
	fmt.Print(tbl.String())
	fmt.Println("(exact enumerates the subset lattice — exponential in m; greedy stays polynomial)")
	return nil
}
