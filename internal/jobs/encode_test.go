package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// reference renders the record the encoder must reproduce: the
// original struct-building path through encoding/json.
func reference(t *testing.T, sch *schema.Schema, r *pipeline.Result) []byte {
	t.Helper()
	data, err := json.Marshal(NewTupleResult(sch, r))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestResultEncoderAgainstRealChases pins the encoder on results the
// engine actually produces — fixes, confirmations, conflicts — for a
// generated workload.
func TestResultEncoderAgainstRealChases(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 40, 200)
	sch := dataset.CustSchema()
	seed := schema.SetOfNames(sch, validated...)
	enc := NewResultEncoder(sch)
	var buf []byte
	for i, tu := range dirty {
		res := eng.Chase(tu, seed)
		r := &pipeline.Result{Seq: i, Input: tu, Fixed: res.Tuple, Chase: res}
		want := reference(t, sch, r)
		buf = enc.Append(buf[:0], r)
		if string(buf) != string(want) {
			t.Fatalf("tuple %d:\n got %s\nwant %s", i, buf, want)
		}
	}

	// Conflict-bearing chases: for a tuple whose chase rewrites some
	// attribute A, re-validating the original (wrong) A makes the same
	// rule derive a contradiction.
	for _, tu := range dirty {
		res := eng.Chase(tu, seed)
		var rewritten string
		for _, c := range res.Changes {
			if c.IsRewrite() {
				rewritten = c.Attr
				break
			}
		}
		if rewritten == "" {
			continue
		}
		cres := eng.Chase(tu, seed.With(sch.MustIndex(rewritten)))
		if len(cres.Conflicts) == 0 {
			continue
		}
		r := &pipeline.Result{Seq: 0, Input: tu, Fixed: cres.Tuple, Chase: cres}
		if got, want := string(enc.Append(nil, r)), string(reference(t, sch, r)); got != want {
			t.Fatalf("conflict record:\n got %s\nwant %s", got, want)
		}
		return
	}
	t.Fatal("workload produced no conflict-bearing chase to pin the encoder against")
}

// TestResultEncoderQuickCheck fuzzes synthetic ChaseResults — random
// validated sets, escape-heavy values, changes with and without
// rewrites, empty and missing optional fields — against the
// encoding/json reference.
func TestResultEncoderQuickCheck(t *testing.T) {
	sch := dataset.CustSchema()
	enc := NewResultEncoder(sch)
	rng := rand.New(rand.NewSource(23))
	junk := []string{"", "plain", `qu"ote`, `back\slash`, "new\nline", "é漢🚀", "<html>&", "\u2028sep", "ctrl\x01", "1e-9", "bad\xffutf8"}
	pick := func() value.V { return value.V(junk[rng.Intn(len(junk))]) }

	var buf []byte
	for i := 0; i < 2000; i++ {
		vals := make(value.List, sch.Len())
		for j := range vals {
			vals[j] = pick()
		}
		tu := &schema.Tuple{Schema: sch, Vals: vals}
		res := &core.ChaseResult{Tuple: tu, Validated: schema.AttrSet(rng.Uint64() % (1 << sch.Len())), Rounds: 1 + rng.Intn(3)}
		for n := rng.Intn(4); n > 0; n-- {
			old, new := pick(), pick()
			if rng.Intn(2) == 0 {
				new = old // confirmation, not a rewrite
			}
			res.Changes = append(res.Changes, core.Change{
				Attr:     sch.Attr(rng.Intn(sch.Len())).Name,
				Old:      old,
				New:      new,
				Source:   core.SourceRule,
				RuleID:   fmt.Sprintf("phi%d", rng.Intn(9)),
				MasterID: int64(rng.Intn(3)), // 0 exercises omitempty
				Round:    1,
			})
		}
		for n := rng.Intn(3); n > 0; n-- {
			res.Conflicts = append(res.Conflicts, core.Conflict{
				Kind:   core.ValidatedContradiction,
				RuleID: "phi1",
				Attr:   "AC",
				Have:   pick(),
				Want:   pick(),
			})
		}
		r := &pipeline.Result{Seq: i, Input: tu, Fixed: tu, Chase: res}
		want := reference(t, sch, r)
		buf = enc.Append(buf[:0], r)
		if string(buf) != string(want) {
			t.Fatalf("iteration %d:\n got %s\nwant %s", i, buf, want)
		}
	}
}

// TestResultEncoderMatchesArtifact re-pins the end-to-end contract: a
// real job's results.jsonl (written through the encoder) equals the
// struct path line for line. Complements the compiled/legacy artifact
// parity suite, which pins the same bytes against the legacy chase.
func TestResultEncoderMatchesArtifact(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 25, 60)
	m, err := Open(Config{Dir: t.TempDir(), Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	spec := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		spec[i] = tu.Map()
	}
	j, err := m.SubmitInline(validated, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	path, err := m.ResultsPath(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := readArtifact(t, path)
	sch := dataset.CustSchema()
	seed := schema.SetOfNames(sch, validated...)
	if len(got) != len(dirty) {
		t.Fatalf("artifact has %d lines, want %d", len(got), len(dirty))
	}
	for i, tu := range dirty {
		res := eng.Chase(tu, seed)
		want := reference(t, sch, &pipeline.Result{Seq: i, Input: tu, Fixed: res.Tuple, Chase: res})
		if string(got[i]) != string(want) {
			t.Fatalf("line %d:\n got %s\nwant %s", i, got[i], want)
		}
	}
}
