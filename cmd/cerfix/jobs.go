package main

// The jobs subcommand drives a running cerfixd's async batch-repair
// queue (/api/v1/jobs) over HTTP:
//
//	cerfix jobs submit  -addr URL -validated zip,type -data dirty.csv [-format csv|jsonl] [-server-path] [-wait]
//	cerfix jobs list    -addr URL
//	cerfix jobs status  -addr URL -id j000001
//	cerfix jobs results -addr URL -id j000001 [-out fixed.jsonl]
//	cerfix jobs cancel  -addr URL -id j000001
//
// submit reads the data file locally and sends its tuples inline
// unless -server-path is given, in which case the daemon opens the
// path itself (useful when the data already lives next to the
// daemon). -wait polls until the job reaches a terminal state.

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

func cmdJobs(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: cerfix jobs <submit|list|status|results|cancel> [flags]")
	}
	switch args[0] {
	case "submit":
		return cmdJobsSubmit(args[1:])
	case "list":
		return cmdJobsList(args[1:])
	case "status":
		return cmdJobsStatus(args[1:])
	case "results":
		return cmdJobsResults(args[1:])
	case "cancel":
		return cmdJobsCancel(args[1:])
	default:
		return fmt.Errorf("unknown jobs verb %q (want submit, list, status, results or cancel)", args[0])
	}
}

// jobsClient is the thin HTTP helper shared by the verbs.
type jobsClient struct {
	base string
	hc   http.Client
}

func newJobsClient(addr string) *jobsClient {
	// Timeout on connect and response headers only — a whole-request
	// timeout would cut off large inline submits and big results
	// downloads mid-body.
	return &jobsClient{base: strings.TrimRight(addr, "/"), hc: http.Client{
		Transport: &http.Transport{ResponseHeaderTimeout: 30 * time.Second},
	}}
}

// do issues one request and decodes the JSON reply (or the server's
// error object) into out.
func (c *jobsClient) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = strings.NewReader(string(data))
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return apiError(resp, fmt.Sprintf("%s %s", method, path))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiErr is a decoded daemon error: the HTTP status, machine code and
// Retry-After hint for programmatic handling (the -wait loop backs off
// on sheds instead of dying), and the formatted message for display.
type apiErr struct {
	status     int
	code       string
	retryAfter time.Duration
	msg        string
}

func (e *apiErr) Error() string { return e.msg }

// apiError turns the daemon's typed error envelope into an *apiErr,
// surfacing the machine code and — on shed responses — the computed
// Retry-After so callers know when a retry is worth it.
func apiError(resp *http.Response, what string) error {
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&env) != nil || env.Error.Code == "" {
		return &apiErr{status: resp.StatusCode, msg: fmt.Sprintf("%s: %s", what, resp.Status)}
	}
	e := &apiErr{status: resp.StatusCode, code: env.Error.Code}
	e.msg = fmt.Sprintf("%s: %s (%s, request %s)",
		resp.Status, env.Error.Message, env.Error.Code, env.Error.RequestID)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.retryAfter = time.Duration(secs) * time.Second
		}
		e.msg += fmt.Sprintf("; retry after %ss", ra)
	}
	return e
}

// jobView mirrors the daemon's job JSON for display.
type jobView struct {
	ID        string   `json:"id"`
	State     string   `json:"state"`
	Validated []string `json:"validated"`
	Format    string   `json:"format"`
	Attempts  int      `json:"attempts"`
	Processed int      `json:"processed"`
	Error     string   `json:"error,omitempty"`
	Stats     *struct {
		Tuples         int `json:"tuples"`
		FullyValidated int `json:"fully_validated"`
		WithConflicts  int `json:"with_conflicts"`
		CellsRewritten int `json:"cells_rewritten"`
		Workers        int `json:"workers"`
	} `json:"stats,omitempty"`
}

func printJob(j jobView) {
	line := fmt.Sprintf("%s  %-9s attempts=%d processed=%d", j.ID, j.State, j.Attempts, j.Processed)
	if j.Stats != nil {
		line += fmt.Sprintf("  tuples=%d fully_validated=%d with_conflicts=%d cells_rewritten=%d",
			j.Stats.Tuples, j.Stats.FullyValidated, j.Stats.WithConflicts, j.Stats.CellsRewritten)
	}
	if j.Error != "" {
		line += "  error=" + j.Error
	}
	fmt.Println(line)
}

// loadTuples reads a local CSV or JSONL file into attribute→value
// maps for inline submission.
func loadTuples(path, format string) ([]map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "csv":
		cr := csv.NewReader(f)
		header, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("csv header: %w", err)
		}
		var out []map[string]string
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			m := make(map[string]string, len(header))
			for i, h := range header {
				if i < len(rec) {
					m[h] = rec[i]
				}
			}
			out = append(out, m)
		}
	case "jsonl":
		dec := json.NewDecoder(f)
		var out []map[string]string
		for {
			var m map[string]string
			if err := dec.Decode(&m); err == io.EOF {
				return out, nil
			} else if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	default:
		return nil, fmt.Errorf("bad format %q (want csv or jsonl)", format)
	}
}

// guessFormat infers csv/jsonl from the filename when -format is not
// given.
func guessFormat(path string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson", ".json":
		return "jsonl"
	default:
		return "csv"
	}
}

func cmdJobsSubmit(args []string) error {
	fs := flag.NewFlagSet("jobs submit", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	validated := fs.String("validated", "", "comma-separated attributes asserted correct")
	dataPath := fs.String("data", "", "input tuples file (CSV or JSONL)")
	format := fs.String("format", "", "input format: csv or jsonl (default: by extension)")
	serverPath := fs.Bool("server-path", false, "send the path for the daemon to open instead of uploading tuples")
	wait := fs.Bool("wait", false, "poll until the job finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validated == "" || *dataPath == "" {
		return fmt.Errorf("-validated and -data are required")
	}
	attrs := strings.Split(*validated, ",")
	for i := range attrs {
		attrs[i] = strings.TrimSpace(attrs[i])
	}
	f := *format
	if f == "" {
		f = guessFormat(*dataPath)
	}
	body := map[string]any{"validated": attrs}
	if *serverPath {
		abs, err := filepath.Abs(*dataPath)
		if err != nil {
			return err
		}
		body["input_path"] = abs
		body["format"] = f
	} else {
		tuples, err := loadTuples(*dataPath, f)
		if err != nil {
			return err
		}
		if len(tuples) == 0 {
			return fmt.Errorf("no tuples in %s", *dataPath)
		}
		body["tuples"] = tuples
	}
	c := newJobsClient(*addr)
	var j jobView
	if err := c.do("POST", "/api/v1/jobs", body, &j); err != nil {
		return err
	}
	printJob(j)
	if !*wait {
		return nil
	}
	if err := waitForJob(c, j.ID, &j, time.Sleep); err != nil {
		return err
	}
	printJob(j)
	if j.State != "done" {
		return fmt.Errorf("job %s ended %s", j.ID, j.State)
	}
	return nil
}

// waitForJob polls one job until it is terminal, updating j in place.
// Sleeps go through sleep (time.Sleep in production; recorded by
// tests). A shed poll — 429 or 503 — backs off for the daemon's
// Retry-After hint instead of failing the wait, so -wait survives
// transient rate limiting, backlog pressure and memory sheds. Every
// sleep is jittered ±25% so a fleet of waiting clients does not
// phase-lock its polls against the daemon.
func waitForJob(c *jobsClient, id string, j *jobView, sleep func(time.Duration)) error {
	const base = 200 * time.Millisecond
	for !terminalState(j.State) {
		sleep(jitter(base))
		if err := c.do("GET", "/api/v1/jobs/"+id, nil, j); err != nil {
			var ae *apiErr
			if errors.As(err, &ae) &&
				(ae.status == http.StatusTooManyRequests || ae.status == http.StatusServiceUnavailable) {
				if ae.retryAfter > 0 {
					sleep(jitter(ae.retryAfter))
				}
				continue
			}
			return err
		}
	}
	return nil
}

// jitter spreads d uniformly over [0.75d, 1.25d].
func jitter(d time.Duration) time.Duration {
	return d*3/4 + time.Duration(rand.Int64N(int64(d)/2+1))
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}

func cmdJobsList(args []string) error {
	fs := flag.NewFlagSet("jobs list", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The list endpoint answers the uniform page envelope; pull pages
	// until the reported total is covered.
	c := newJobsClient(*addr)
	var all []jobView
	for offset := 0; ; {
		var resp struct {
			Items  []jobView `json:"items"`
			Total  int       `json:"total"`
			Limit  int       `json:"limit"`
			Offset int       `json:"offset"`
		}
		if err := c.do("GET", fmt.Sprintf("/api/v1/jobs?offset=%d", offset), nil, &resp); err != nil {
			return err
		}
		all = append(all, resp.Items...)
		offset += len(resp.Items)
		if offset >= resp.Total || len(resp.Items) == 0 {
			break
		}
	}
	if len(all) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	for _, j := range all {
		printJob(j)
	}
	return nil
}

func cmdJobsStatus(args []string) error {
	fs := flag.NewFlagSet("jobs status", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	id := fs.String("id", "", "job id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	var j jobView
	if err := newJobsClient(*addr).do("GET", "/api/v1/jobs/"+*id, nil, &j); err != nil {
		return err
	}
	printJob(j)
	return nil
}

func cmdJobsResults(args []string) error {
	fs := flag.NewFlagSet("jobs results", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	id := fs.String("id", "", "job id")
	outPath := fs.String("out", "", "write the JSONL artifact here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	c := newJobsClient(*addr)
	resp, err := c.hc.Get(c.base + "/api/v1/jobs/" + *id + "/results")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return apiError(resp, "results")
	}
	out := os.Stdout
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			return err
		}
		defer out.Close()
	}
	if _, err := io.Copy(out, resp.Body); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Println("results written to", *outPath)
	}
	return nil
}

func cmdJobsCancel(args []string) error {
	fs := flag.NewFlagSet("jobs cancel", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	id := fs.String("id", "", "job id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	// DELETE cancels a live job (returns its record) or purges a
	// terminal one (returns {"deleted": true}).
	var j struct {
		jobView
		Deleted bool `json:"deleted"`
	}
	if err := newJobsClient(*addr).do("DELETE", "/api/v1/jobs/"+*id, nil, &j); err != nil {
		return err
	}
	if j.Deleted {
		fmt.Printf("%s deleted\n", j.ID)
		return nil
	}
	printJob(j.jobView)
	return nil
}
