package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
)

// CSV in → pipeline → CSV out matches the sequential fix of the same
// file, byte for byte, at any worker count.
func TestCSVRoundTrip(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 40, 120)

	// Materialize the dirty tuples as CSV via a scratch table.
	tbl := storage.NewTable(dataset.CustSchema())
	for _, tu := range dirty {
		if _, err := tbl.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
	var input bytes.Buffer
	if err := tbl.WriteCSV(&input); err != nil {
		t.Fatal(err)
	}

	// Sequential reference output.
	var want bytes.Buffer
	refSink, err := NewCSVSink(dataset.CustSchema(), &want)
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range dirty {
		res := eng.Chase(tu, seed)
		if err := refSink.Write(&Result{Seq: i, Input: tu, Fixed: res.Tuple, Chase: res}); err != nil {
			t.Fatal(err)
		}
	}
	if err := refSink.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		src, err := NewCSVSource(dataset.CustSchema(), bytes.NewReader(input.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		sink, err := NewCSVSink(dataset.CustSchema(), &got)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Run(context.Background(), eng, seed, src, sink, &Options{Workers: workers, ChunkSize: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		if stats.Tuples != len(dirty) {
			t.Fatalf("workers=%d: %d tuples, want %d", workers, stats.Tuples, len(dirty))
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("workers=%d: csv output differs from sequential path", workers)
		}
	}
}

func TestCSVSourceErrors(t *testing.T) {
	sch := dataset.CustSchema()
	// Unknown column.
	if _, err := NewCSVSource(sch, strings.NewReader("FN,bogus\n")); err == nil {
		t.Fatal("unknown column accepted")
	}
	// Duplicate column.
	if _, err := NewCSVSource(sch, strings.NewReader("FN,FN\n")); err == nil {
		t.Fatal("duplicate column accepted")
	}
	// Missing columns.
	if _, err := NewCSVSource(sch, strings.NewReader("FN,LN\n")); err == nil {
		t.Fatal("partial header accepted")
	}
	// Ragged record under a good header.
	src, err := NewCSVSource(sch, strings.NewReader(
		strings.Join(sch.AttrNames(), ",")+"\nonly,two\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil || err == io.EOF {
		t.Fatalf("ragged record: err = %v", err)
	}
}

// JSONL in → pipeline → JSONL out: every line decodes, order holds,
// and the fixed values match the sequential path.
func TestJSONLRoundTrip(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 30, 60)
	var input bytes.Buffer
	enc := json.NewEncoder(&input)
	for _, tu := range dirty {
		if err := enc.Encode(tu.Map()); err != nil {
			t.Fatal(err)
		}
	}
	src := NewJSONLSource(dataset.CustSchema(), &input)
	var out bytes.Buffer
	stats, err := Run(context.Background(), eng, seed, src, NewJSONLSink(&out), &Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != len(dirty) {
		t.Fatalf("%d tuples, want %d", stats.Tuples, len(dirty))
	}
	dec := json.NewDecoder(&out)
	for i := 0; i < len(dirty); i++ {
		var rec jsonlRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		want := eng.Chase(dirty[i], seed)
		if !tupleEqualMap(want.Tuple, rec.Tuple) {
			t.Fatalf("line %d: tuple %v, want %v", i, rec.Tuple, want.Tuple.Map())
		}
		if rec.Done != (want.AllValidated() && len(want.Conflicts) == 0) {
			t.Fatalf("line %d: done = %v", i, rec.Done)
		}
	}
}

func tupleEqualMap(tu *schema.Tuple, m map[string]string) bool {
	got := tu.Map()
	if len(got) != len(m) {
		return false
	}
	for k, v := range got {
		if m[k] != v {
			return false
		}
	}
	return true
}

func TestJSONLSourceErrors(t *testing.T) {
	sch := dataset.CustSchema()
	src := NewJSONLSource(sch, strings.NewReader("{not json}\n"))
	if _, err := src.Next(); err == nil {
		t.Fatal("bad json accepted")
	}
	src = NewJSONLSource(sch, strings.NewReader(`{"bogus":"x"}`+"\n"))
	if _, err := src.Next(); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	// Blank lines are skipped, then EOF.
	src = NewJSONLSource(sch, strings.NewReader("\n\n"))
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// The engine snapshot layer: a snapshot keeps answering from its
// frozen state while the live store absorbs new rows.
func TestSnapshotIsolation(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 20, 40)
	snap := eng.Snapshot()
	before := make([]*core.ChaseResult, len(dirty))
	for i, tu := range dirty {
		before[i] = snap.Chase(tu, seed)
	}
	liveLen := eng.Master().Len()
	// Mutate the live store heavily.
	g := dataset.NewCustomerGen(5)
	for _, e := range g.GenerateEntities(50) {
		if _, err := eng.Master().InsertValues(e.Master...); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Master().Len() != liveLen+50 {
		t.Fatalf("live store len = %d", eng.Master().Len())
	}
	if snap.Master().Len() != liveLen {
		t.Fatalf("snapshot len = %d, want %d (leaked live inserts)", snap.Master().Len(), liveLen)
	}
	for i, tu := range dirty {
		after := snap.Chase(tu, seed)
		if !after.Tuple.Equal(before[i].Tuple) {
			t.Fatalf("tuple %d: snapshot answer changed after live mutation", i)
		}
	}
}
