package server

import (
	"fmt"
	"log"
	"net/http"
	"time"

	"cerfix/internal/admission"
)

// The API surface is one declarative route table mounted twice: the
// canonical versioned prefix /api/v1 and the original bare /api as a
// compatibility alias. Both prefixes dispatch to the same wrapped
// handler, so responses are byte-identical (pinned by regression
// test); new clients should use /api/v1.

// limitClass names the admission treatment a route gets beyond the
// global middleware chain (rate limiting applies to every class).
type limitClass int

const (
	// classRead and classMutate take no extra gating.
	classRead limitClass = iota
	classMutate
	// classSyncFix runs under the synchronous-fix concurrency gate
	// (-max-sync-fix): past the cap, requests shed with 429.
	classSyncFix
)

// route is one line of the API surface: method, path (under the
// prefix), limits class and handler. stream marks long-lived
// streaming responses, which are exempt from the per-request
// deadline.
type route struct {
	method string
	path   string
	class  limitClass
	stream bool
	h      http.HandlerFunc
}

// routeTable declares every endpoint once. Paths use net/http
// ServeMux patterns ({id} wildcards).
func (s *Server) routeTable() []route {
	return []route{
		{"GET", "/status", classRead, false, s.handleStatus},
		{"GET", "/rules", classRead, false, s.handleRulesList},
		{"POST", "/rules", classMutate, false, s.handleRulesAdd},
		{"DELETE", "/rules/{id}", classMutate, false, s.handleRulesDelete},
		{"POST", "/rules/check", classRead, false, s.handleRulesCheck},
		{"GET", "/regions", classRead, false, s.handleRegions},
		{"GET", "/master", classRead, false, s.handleMasterList},
		{"POST", "/master", classMutate, false, s.handleMasterAdd},
		{"POST", "/sessions", classMutate, false, s.handleSessionOpen},
		{"GET", "/sessions/{id}", classRead, false, s.handleSessionGet},
		{"POST", "/sessions/{id}/validate", classMutate, false, s.handleSessionValidate},
		{"GET", "/sessions/{id}/explain", classRead, false, s.handleSessionExplain},
		{"GET", "/audit/stats", classRead, false, s.handleAuditStats},
		{"GET", "/audit/tuples/{id}", classRead, false, s.handleAuditTuple},
		{"GET", "/audit/cell", classRead, false, s.handleAuditCell},
		{"POST", "/fix", classSyncFix, false, s.handleBatchFix},
		{"POST", "/jobs", classMutate, false, s.handleJobSubmit},
		{"GET", "/jobs", classRead, false, s.handleJobList},
		{"GET", "/jobs/{id}", classRead, false, s.handleJobGet},
		{"GET", "/jobs/{id}/results", classRead, true, s.handleJobResults},
		{"DELETE", "/jobs/{id}", classMutate, false, s.handleJobCancel},
	}
}

// Handler returns the HTTP surface: the route table mounted under
// /api/v1 and /api, wrapped in the admission middleware chain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routeTable() {
		h := rt.h
		if rt.class == classSyncFix {
			h = s.withSyncGate(h)
		}
		if !rt.stream {
			h = s.withDeadline(h)
		}
		mux.HandleFunc(rt.method+" /api/v1"+rt.path, h)
		mux.HandleFunc(rt.method+" /api"+rt.path, h)
	}
	// Unknown paths get the envelope too, not net/http's text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, r, http.StatusNotFound, codeNotFound,
			fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return s.chain(mux)
}

// Limits configures the front door. Zero values disable each control,
// preserving the unlimited development behavior.
type Limits struct {
	// Rate admits this many requests/second per key (X-Api-Key or
	// client IP); 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity per key (min 1 when rate
	// limiting is on).
	Burst int
	// MaxSyncFix caps concurrent POST /fix runs; 0 means unlimited.
	MaxSyncFix int
	// RequestTimeout bounds each non-streaming request's handler; the
	// expiry answer is the 504 deadline_exceeded envelope. 0 disables.
	RequestTimeout time.Duration
	// MaxBody caps request bodies in bytes (413 body_too_large past
	// it); 0 disables.
	MaxBody int64
}

// SetLimits installs the admission configuration. Call before
// Handler.
func (s *Server) SetLimits(l Limits) {
	s.limits = l
	if l.Rate > 0 {
		s.limiter = admission.NewLimiter(l.Rate, l.Burst)
	} else {
		s.limiter = nil
	}
	if l.MaxSyncFix > 0 {
		s.fixGate = admission.NewGate(l.MaxSyncFix)
	} else {
		s.fixGate = nil
	}
}

// SetAccessLog installs the structured per-request logger (nil keeps
// access logging off; panics always log to the error logger).
func (s *Server) SetAccessLog(l *log.Logger) { s.accessLog = l }

// SetErrorLog overrides the destination for panic and fault logs
// (default: the process-standard logger).
func (s *Server) SetErrorLog(l *log.Logger) { s.errorLog = l }
