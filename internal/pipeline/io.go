package pipeline

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"

	"cerfix/internal/jsonenc"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file provides the streaming sources and sinks of the batch
// pipeline: slice-backed (HTTP endpoint, tests), CSV (the CLI's
// file-to-file repair) and JSONL (one attribute→value object per
// line, the natural bulk format of the JSON API). The streaming pairs
// never materialize the dataset: rows are decoded on demand under the
// pipeline's in-flight window and encoded as results arrive.
//
// All of them follow the pipeline's recycling discipline. Sources
// decode into ONE reused tuple (the Source contract lets them: the
// pipeline copies it into arena storage before the next Next call) and
// amortize per-row decoding to at most one allocation — the immutable
// backing string of the row's values. Sinks encode through reused
// scratch buffers with the append-style jsonenc primitives, emitting
// bytes identical to the encoding/json output they replaced, which
// the byte-parity suites pin.

// SliceSource yields tuples from an in-memory slice.
type SliceSource struct {
	tuples []*schema.Tuple
	pos    int
}

// NewSliceSource wraps a tuple slice.
func NewSliceSource(tuples []*schema.Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Next implements Source.
func (s *SliceSource) Next() (*schema.Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, io.EOF
	}
	tu := s.tuples[s.pos]
	s.pos++
	return tu, nil
}

// SliceSink collects results in input order. Because it retains
// results past Write, it deep-copies each one out of the pipeline's
// recycled arenas (the Result contract); the stored clones are safe
// to keep indefinitely.
type SliceSink struct {
	// Results accumulates every result the pipeline emits.
	Results []*Result
}

// Write implements Sink.
func (s *SliceSink) Write(r *Result) error {
	s.Results = append(s.Results, r.Clone())
	return nil
}

// CSVSource streams tuples from CSV under a schema. The header row
// must list exactly the schema's attributes (any order); columns are
// mapped by name, matching storage.Table.ReadCSV's contract.
//
// Next reuses one tuple per the Source contract. The csv.Reader runs
// with ReuseRecord (the record slice is recycled); the field strings
// themselves are freshly sliced from one backing string per row —
// immutable, so results may retain them — making the steady-state
// decode cost one allocation per row.
type CSVSource struct {
	sch       *schema.Schema
	cr        *csv.Reader
	colToAttr []int
	line      int
	tuple     schema.Tuple // reused; valid until the next Next
}

// NewCSVSource reads the header and prepares the column mapping.
func NewCSVSource(sch *schema.Schema, r io.Reader) (*CSVSource, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading csv header: %w", err)
	}
	colToAttr := make([]int, len(header))
	seen := make(map[string]bool)
	for i, h := range header {
		idx, ok := sch.Index(h)
		if !ok {
			return nil, fmt.Errorf("pipeline: csv column %q not in schema %s", h, sch.Name())
		}
		if seen[h] {
			return nil, fmt.Errorf("pipeline: duplicate csv column %q", h)
		}
		seen[h] = true
		colToAttr[i] = idx
	}
	if len(seen) != sch.Len() {
		return nil, fmt.Errorf("pipeline: csv header has %d columns, schema %s has %d attributes",
			len(seen), sch.Name(), sch.Len())
	}
	cr.ReuseRecord = true
	s := &CSVSource{sch: sch, cr: cr, colToAttr: colToAttr, line: 1}
	s.tuple = schema.Tuple{Schema: sch, Vals: make(value.List, sch.Len())}
	return s, nil
}

// Next implements Source. The returned tuple is reused on the next
// call.
func (s *CSVSource) Next() (*schema.Tuple, error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	s.line++
	if err != nil {
		return nil, fmt.Errorf("csv line %d: %w", s.line, err)
	}
	for i, cell := range rec {
		s.tuple.Vals[s.colToAttr[i]] = value.V(cell)
	}
	return &s.tuple, nil
}

// CSVSink streams fixed tuples to CSV: a header row of attribute
// names, then one record per result in input order. Call Flush when
// the run completes. A reused record scratch keeps Write
// allocation-free.
type CSVSink struct {
	cw  *csv.Writer
	rec []string
}

// NewCSVSink writes the header row immediately.
func NewCSVSink(sch *schema.Schema, w io.Writer) (*CSVSink, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(sch.AttrNames()); err != nil {
		return nil, fmt.Errorf("pipeline: writing csv header: %w", err)
	}
	return &CSVSink{cw: cw, rec: make([]string, 0, sch.Len())}, nil
}

// Write implements Sink, emitting the fixed tuple's values.
func (s *CSVSink) Write(r *Result) error {
	s.rec = s.rec[:0]
	for _, v := range r.Fixed.Vals {
		s.rec = append(s.rec, string(v))
	}
	return s.cw.Write(s.rec)
}

// Flush drains buffered records and reports any deferred write error.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// JSONLSource streams tuples from JSON Lines input: one
// attribute→value object per line (blank lines are skipped). Unknown
// attributes are an error; absent ones become null, as in the HTTP
// batch endpoint.
//
// Next reuses one tuple per the Source contract. A fast path parses
// the common shape — a flat object of plain string values — straight
// out of the scanner's buffer with one allocation per line (the
// immutable backing string of the decoded values, the same economy
// encoding/csv uses). Anything beyond it — escape sequences, non-
// string values, invalid UTF-8, malformed lines, unknown attributes —
// falls back to encoding/json so behavior and error text match the
// original decoder exactly.
type JSONLSource struct {
	sch  *schema.Schema
	sc   *bufio.Scanner
	line int
	// idx mirrors the schema's name→position map locally: indexing a
	// map with string(bytes) compiles to an allocation-free lookup
	// only as a direct map access expression.
	idx    map[string]int
	tuple  schema.Tuple // reused; valid until the next Next
	valBuf []byte       // raw decoded values; one backing string per line
	spans  []valSpan    // per attribute position, offsets into valBuf
	m      map[string]string
}

// valSpan locates one decoded value inside valBuf; start < 0 means the
// attribute was absent from the line.
type valSpan struct{ start, end int }

// NewJSONLSource wraps a JSONL stream under sch.
func NewJSONLSource(sch *schema.Schema, r io.Reader) *JSONLSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	s := &JSONLSource{
		sch:   sch,
		sc:    sc,
		idx:   make(map[string]int, sch.Len()),
		spans: make([]valSpan, sch.Len()),
		m:     make(map[string]string, sch.Len()),
	}
	for i, name := range sch.AttrNames() {
		s.idx[name] = i
	}
	s.tuple = schema.Tuple{Schema: sch, Vals: make(value.List, sch.Len())}
	return s
}

// Next implements Source. The returned tuple is reused on the next
// call.
func (s *JSONLSource) Next() (*schema.Tuple, error) {
	for s.sc.Scan() {
		s.line++
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if s.parseFast(line) {
			return &s.tuple, nil
		}
		// Slow path: exact legacy behavior and error text. The scratch
		// map is cleared and reused; the resulting tuple is fresh,
		// which trivially satisfies the reuse contract.
		clear(s.m)
		if err := json.Unmarshal(line, &s.m); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		tu, err := schema.TupleFromMap(s.sch, s.m)
		if err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		return tu, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// parseFast decodes a flat {"attr":"value",...} object into the reused
// tuple, reporting false — deciding nothing — whenever the line strays
// from the plain shape, so the encoding/json fallback keeps semantics
// (duplicate keys last-wins, null handling, error text) authoritative.
func (s *JSONLSource) parseFast(line []byte) bool {
	for i := range s.spans {
		s.spans[i] = valSpan{-1, -1}
	}
	s.valBuf = s.valBuf[:0]
	p, n := 0, len(line)
	ws := func() {
		for p < n && (line[p] == ' ' || line[p] == '\t' || line[p] == '\n' || line[p] == '\r') {
			p++
		}
	}
	finish := func() bool {
		ws()
		if p != n {
			return false // trailing bytes: the fallback rejects them
		}
		backing := string(s.valBuf)
		for i := range s.tuple.Vals {
			sp := s.spans[i]
			if sp.start < 0 {
				s.tuple.Vals[i] = value.Null
			} else {
				s.tuple.Vals[i] = value.V(backing[sp.start:sp.end])
			}
		}
		return true
	}
	ws()
	if p >= n || line[p] != '{' {
		return false
	}
	p++
	ws()
	if p < n && line[p] == '}' {
		p++
		return finish()
	}
	for {
		ws()
		if p >= n || line[p] != '"' {
			return false
		}
		p++
		keyStart := p
		for p < n && line[p] != '"' {
			c := line[p]
			if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
				return false // escaped/exotic keys: slow path
			}
			p++
		}
		if p >= n {
			return false
		}
		ai, known := s.idx[string(line[keyStart:p])]
		if !known {
			return false // unknown attribute: slow path reports it
		}
		p++
		ws()
		if p >= n || line[p] != ':' {
			return false
		}
		p++
		ws()
		if p >= n || line[p] != '"' {
			return false // non-string value: slow path decides
		}
		p++
		start := len(s.valBuf)
		for {
			if p >= n {
				return false
			}
			c := line[p]
			if c == '"' {
				break
			}
			if c == '\\' || c < 0x20 {
				return false // escapes & control chars: slow path
			}
			if c < utf8.RuneSelf {
				s.valBuf = append(s.valBuf, c)
				p++
				continue
			}
			r, size := utf8.DecodeRune(line[p:])
			if r == utf8.RuneError && size == 1 {
				return false // invalid UTF-8: slow path coerces to U+FFFD
			}
			s.valBuf = append(s.valBuf, line[p:p+size]...)
			p += size
		}
		p++                                         // closing quote
		s.spans[ai] = valSpan{start, len(s.valBuf)} // duplicate keys: last wins
		ws()
		if p >= n {
			return false
		}
		switch line[p] {
		case ',':
			p++
		case '}':
			p++
			return finish()
		default:
			return false
		}
	}
}

// jsonlRecord is JSONLSink's per-result output shape. Retained as the
// documentation of the wire format and as the encoding/json reference
// the sink's append-style encoder is byte-parity-tested against.
type jsonlRecord struct {
	Tuple     map[string]string `json:"tuple"`
	Done      bool              `json:"done"`
	Conflicts []string          `json:"conflicts,omitempty"`
	Rewrites  int               `json:"rewrites"`
}

// JSONLSink streams one JSON object per result: the fixed tuple, the
// fully-validated flag, conflict messages and the rewrite count.
// Records are rendered through a reused buffer with the jsonenc
// primitives — byte-identical to json.Encoder encoding a jsonlRecord,
// without the per-result map, slices and reflection.
type JSONLSink struct {
	w   io.Writer
	buf []byte
	// Key order and names are bound to the first result's schema
	// (re-bound if it ever changes): encoding/json emits map keys
	// sorted, so the attribute order is computed once.
	sch      *schema.Schema
	keyOrder []int
	names    []string
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// bind computes the schema-derived encoding state.
func (s *JSONLSink) bind(sch *schema.Schema) {
	s.sch = sch
	s.names = sch.AttrNames()
	s.keyOrder = jsonenc.KeyOrder(s.names)
}

// Write implements Sink.
func (s *JSONLSink) Write(r *Result) error {
	if s.sch != r.Fixed.Schema {
		s.bind(r.Fixed.Schema)
	}
	b := append(s.buf[:0], `{"tuple":`...)
	b = jsonenc.AppendStringMap(b, s.names, s.keyOrder, r.Fixed.Vals)
	b = append(b, `,"done":`...)
	b = jsonenc.AppendBool(b, r.Chase.AllValidated() && len(r.Chase.Conflicts) == 0)
	if len(r.Chase.Conflicts) > 0 {
		b = append(b, `,"conflicts":[`...)
		for i := range r.Chase.Conflicts {
			if i > 0 {
				b = append(b, ',')
			}
			b = jsonenc.AppendString(b, r.Chase.Conflicts[i].Error())
		}
		b = append(b, ']')
	}
	b = append(b, `,"rewrites":`...)
	b = strconv.AppendInt(b, int64(r.Chase.RewriteCount()), 10)
	b = append(b, '}', '\n')
	s.buf = b
	_, err := s.w.Write(b)
	return err
}
