package jobs

import (
	"strconv"

	"cerfix/internal/core"
	"cerfix/internal/jsonenc"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// ResultEncoder renders TupleResult records — the per-tuple JSON shape
// shared by the jobs results.jsonl artifact and the synchronous
// POST /api/fix results array — straight from a pipeline.Result into a
// caller-owned buffer, byte-identical to
// json.Marshal(NewTupleResult(sch, r)) without building the
// intermediate map, slices or Change structs. It is the sink-side half
// of the pipeline's recycling contract: everything it reads from the
// result is consumed before Write returns, and the only steady-state
// allocation is the caller's buffer growth, which amortizes to zero.
//
// The byte equivalence is pinned by this package's quick-check suite
// (encode_test.go) and, transitively, by the jobs artifact parity
// tests — a drift here would break the "async output equals sync
// output" contract loudly.
//
// An encoder is bound to one schema and is not safe for concurrent
// use; each job run and each HTTP request builds its own (two small
// slices — nothing like the per-record cost it removes).
type ResultEncoder struct {
	sch      *schema.Schema
	names    []string
	keyOrder []int // attribute positions in encoding/json map-key order
}

// NewResultEncoder builds an encoder for results under sch.
func NewResultEncoder(sch *schema.Schema) *ResultEncoder {
	names := sch.AttrNames()
	return &ResultEncoder{sch: sch, names: names, keyOrder: jsonenc.KeyOrder(names)}
}

// Append appends the record for r (no trailing newline) and returns
// the extended buffer.
func (e *ResultEncoder) Append(dst []byte, r *pipeline.Result) []byte {
	// "tuple": every attribute, in sorted-key order (the map shape).
	dst = append(dst, `{"tuple":`...)
	dst = jsonenc.AppendStringMap(dst, e.names, e.keyOrder, r.Fixed.Vals)
	// "validated": names in schema order (AttrSet.Names), always
	// present — [] when empty, exactly like the non-nil empty slice
	// NewTupleResult builds.
	dst = append(dst, `,"validated":[`...)
	first := true
	for pos := 0; pos < e.sch.Len(); pos++ {
		if !r.Chase.Validated.Has(pos) {
			continue
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = jsonenc.AppendString(dst, e.names[pos])
	}
	dst = append(dst, `],"done":`...)
	dst = jsonenc.AppendBool(dst, r.Chase.AllValidated())
	// "conflicts" and "rewrites" are omitempty: absent unless non-empty.
	if len(r.Chase.Conflicts) > 0 {
		dst = append(dst, `,"conflicts":[`...)
		for i := range r.Chase.Conflicts {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = jsonenc.AppendString(dst, r.Chase.Conflicts[i].Error())
		}
		dst = append(dst, ']')
	}
	wrote := false
	for i := range r.Chase.Changes {
		c := &r.Chase.Changes[i]
		if !c.IsRewrite() {
			continue
		}
		if !wrote {
			dst = append(dst, `,"rewrites":[`...)
		} else {
			dst = append(dst, ',')
		}
		wrote = true
		dst = e.appendChange(dst, c)
	}
	if wrote {
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// appendChange renders one Change object (the jobs.Change wire twin).
func (e *ResultEncoder) appendChange(dst []byte, c *core.Change) []byte {
	dst = append(dst, `{"attr":`...)
	dst = jsonenc.AppendString(dst, c.Attr)
	dst = append(dst, `,"old":`...)
	dst = jsonenc.AppendString(dst, string(c.Old))
	dst = append(dst, `,"new":`...)
	dst = jsonenc.AppendString(dst, string(c.New))
	dst = append(dst, `,"source":`...)
	dst = jsonenc.AppendString(dst, c.Source.String())
	if c.RuleID != "" {
		dst = append(dst, `,"rule_id":`...)
		dst = jsonenc.AppendString(dst, c.RuleID)
	}
	if c.MasterID != 0 {
		dst = append(dst, `,"master_id":`...)
		dst = strconv.AppendInt(dst, c.MasterID, 10)
	}
	return append(dst, '}')
}
