package guard

import (
	"fmt"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"time"

	"cerfix/internal/admission"
)

// MemMonitor samples the Go heap against soft/hard watermarks and
// exposes the hysteresis state (admission.Watermarks) for load
// shedding: soft sheds new job submits with 429 + Retry-After, hard is
// the memory_degraded state surfaced on /api/v1/status. Admission by
// queue depth alone cannot see a queue of small jobs over huge rows;
// this closes that gap with the signal that actually OOMs a process.
type MemMonitor struct {
	marks admission.Watermarks
	// sample reads the current heap size; replaceable for tests.
	sample   func() uint64
	interval time.Duration

	mu          sync.Mutex
	state       admission.Pressure
	heap        uint64
	transitions int64
	onChange    func(old, new admission.Pressure, heapBytes uint64)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// MemConfig wires a MemMonitor.
type MemConfig struct {
	// Soft and Hard are heap watermarks in bytes (0 disables a level).
	Soft, Hard uint64
	// RecoverFrac is the hysteresis recovery fraction (default 0.9).
	RecoverFrac float64
	// Interval is the background sampling period (default 1s).
	Interval time.Duration
	// Sample overrides heap sampling — tests inject a fake heap. Nil
	// reads runtime/metrics' live-objects heap size.
	Sample func() uint64
}

// NewMemMonitor builds a monitor; call Start for background sampling
// or Poll directly for deterministic tests.
func NewMemMonitor(cfg MemConfig) *MemMonitor {
	m := &MemMonitor{
		marks:    admission.Watermarks{Soft: cfg.Soft, Hard: cfg.Hard, RecoverFrac: cfg.RecoverFrac},
		sample:   cfg.Sample,
		interval: cfg.Interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if m.sample == nil {
		m.sample = heapInUse
	}
	if m.interval <= 0 {
		m.interval = time.Second
	}
	return m
}

// heapInUse reads the bytes occupied by live heap objects — the
// runtime/metrics successor to MemStats.HeapAlloc, sampled without a
// stop-the-world.
func heapInUse() uint64 {
	s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// SetOnChange installs the transition hook (logging). Call before
// Start; the hook runs on the sampling goroutine.
func (m *MemMonitor) SetOnChange(fn func(old, new admission.Pressure, heapBytes uint64)) {
	m.mu.Lock()
	m.onChange = fn
	m.mu.Unlock()
}

// Start launches background sampling at the configured interval.
func (m *MemMonitor) Start() {
	m.startOnce.Do(func() {
		go func() {
			defer close(m.done)
			t := time.NewTicker(m.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					m.Poll()
				case <-m.stop:
					return
				}
			}
		}()
	})
}

// Close stops background sampling and waits for it to exit.
func (m *MemMonitor) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.startOnce.Do(func() { close(m.done) })
	<-m.done
}

// Poll takes one sample and advances the hysteresis state, returning
// the new state. Exported so tests drive transitions deterministically.
func (m *MemMonitor) Poll() admission.Pressure {
	heap := m.sample()
	m.mu.Lock()
	old := m.state
	next := m.marks.Next(old, heap)
	m.state = next
	m.heap = heap
	hook := m.onChange
	if next != old {
		m.transitions++
	}
	m.mu.Unlock()
	if next != old && hook != nil {
		hook(old, next, heap)
	}
	return next
}

// State returns the pressure level as of the last Poll.
func (m *MemMonitor) State() admission.Pressure {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// RetryAfter is the back-off hint attached to memory sheds: long
// enough for at least one sampling cycle (and GC) to observe a
// recovery, never under a second.
func (m *MemMonitor) RetryAfter() time.Duration {
	if r := 2 * m.interval; r > time.Second {
		return r
	}
	return time.Second
}

// MemStatus is the monitor's wire shape under /api/v1/status.
type MemStatus struct {
	// State is "ok", "soft" or "hard"; hard is the memory_degraded
	// condition.
	State string `json:"state"`
	// HeapBytes is the last sampled live-heap size.
	HeapBytes uint64 `json:"heap_bytes"`
	// SoftBytes and HardBytes echo the watermarks (0 = disabled).
	SoftBytes uint64 `json:"soft_bytes"`
	HardBytes uint64 `json:"hard_bytes"`
	// Transitions counts state changes since start — a flapping
	// detector that should stay near zero thanks to hysteresis.
	Transitions int64 `json:"transitions"`
}

// Status snapshots the monitor for the status endpoint.
func (m *MemMonitor) Status() MemStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemStatus{
		State:       m.state.String(),
		HeapBytes:   m.heap,
		SoftBytes:   m.marks.Soft,
		HardBytes:   m.marks.Hard,
		Transitions: m.transitions,
	}
}

// ParseBytes parses a human byte size: a bare number of bytes, or a
// number with a KiB/MiB/GiB/TiB (or KB/MB/GB/TB, same powers of 1024)
// suffix, case-insensitive, optional fraction ("1.5GiB"). Empty means
// 0 (disabled).
func ParseBytes(s string) (uint64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	upper := strings.ToUpper(t)
	mult := uint64(1)
	for _, u := range []struct {
		suffix string
		mult   uint64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"TB", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			upper = strings.TrimSuffix(upper, u.suffix)
			break
		}
	}
	num := strings.TrimSpace(upper)
	if num == "" {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return uint64(f * float64(mult)), nil
}
