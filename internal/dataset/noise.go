package dataset

import (
	"strings"

	"cerfix/internal/schema"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// NoiseKind enumerates the error classes the injector produces,
// mirroring the error taxonomy data-entry studies report.
type NoiseKind int

const (
	// NoiseTypo substitutes one character ("Edi" -> "Edx").
	NoiseTypo NoiseKind = iota
	// NoiseTranspose swaps two adjacent characters ("131" -> "311"),
	// the classic fat-finger error for digit strings.
	NoiseTranspose
	// NoiseWrongEntity copies the attribute value of another tuple in
	// the stream — the Example 1 situation where AC belongs to a
	// different city than the rest of the tuple.
	NoiseWrongEntity
	// NoiseAbbreviate truncates to an initial plus period
	// ("Mark" -> "M."), the Fig. 3 first-name error.
	NoiseAbbreviate
	// NoiseCase folds the value to lower case ("Elm St" -> "elm st").
	NoiseCase
	// NoiseNull blanks the value.
	NoiseNull
)

// String names the noise kind.
func (k NoiseKind) String() string {
	switch k {
	case NoiseTypo:
		return "typo"
	case NoiseTranspose:
		return "transpose"
	case NoiseWrongEntity:
		return "wrong-entity"
	case NoiseAbbreviate:
		return "abbreviate"
	case NoiseCase:
		return "case"
	case NoiseNull:
		return "null"
	default:
		return "unknown"
	}
}

// AllNoiseKinds lists every kind (the default mix).
var AllNoiseKinds = []NoiseKind{
	NoiseTypo, NoiseTranspose, NoiseWrongEntity, NoiseAbbreviate, NoiseCase, NoiseNull,
}

// Noise injects cell errors at a configurable rate.
type Noise struct {
	rng  *textutil.RNG
	rate float64
	// Kinds is the enabled error mix (default AllNoiseKinds).
	Kinds []NoiseKind
	// Protected lists attributes never dirtied (e.g. the key the
	// experiment treats as trusted); empty by default.
	Protected []string
}

// NewNoise builds an injector with cell error probability rate.
func NewNoise(seed uint64, rate float64) *Noise {
	return &Noise{rng: textutil.NewRNG(seed), rate: rate, Kinds: AllNoiseKinds}
}

// Dirty returns a noisy copy of truth and the number of cells
// actually changed. pool supplies donor tuples for NoiseWrongEntity
// (may be nil/empty; the kind is skipped then).
func (n *Noise) Dirty(truth *schema.Tuple, pool []*schema.Tuple) (*schema.Tuple, int) {
	dirty := truth.Clone()
	changed := 0
	for i := 0; i < truth.Schema.Len(); i++ {
		attr := truth.Schema.Attr(i).Name
		if n.isProtected(attr) {
			continue
		}
		if !n.rng.Bool(n.rate) {
			continue
		}
		old := dirty.At(i)
		nv := n.perturb(old, attr, i, pool)
		if nv != old {
			dirty.Vals[i] = nv
			changed++
		}
	}
	return dirty, changed
}

func (n *Noise) isProtected(attr string) bool {
	for _, p := range n.Protected {
		if p == attr {
			return true
		}
	}
	return false
}

// perturb applies one randomly chosen enabled noise kind; if the kind
// cannot change the value (e.g. transposing a 1-char string) it falls
// back to a typo, and ultimately to appending a marker, so a scheduled
// error always materializes for non-empty values.
func (n *Noise) perturb(v value.V, attr string, attrIdx int, pool []*schema.Tuple) value.V {
	kind := n.Kinds[n.rng.Intn(len(n.Kinds))]
	out := n.apply(kind, v, attrIdx, pool)
	if out == v {
		out = n.apply(NoiseTypo, v, attrIdx, pool)
	}
	if out == v && !v.IsNull() {
		out = v + "~"
	}
	return out
}

func (n *Noise) apply(kind NoiseKind, v value.V, attrIdx int, pool []*schema.Tuple) value.V {
	s := string(v)
	switch kind {
	case NoiseTypo:
		if len(s) == 0 {
			return v
		}
		i := n.rng.Intn(len(s))
		c := s[i]
		repl := byte('x')
		switch {
		case c >= '0' && c <= '9':
			repl = '0' + byte((int(c-'0')+1+n.rng.Intn(8))%10)
		case c == 'x':
			repl = 'q'
		}
		return value.V(s[:i] + string(repl) + s[i+1:])
	case NoiseTranspose:
		if len(s) < 2 {
			return v
		}
		i := n.rng.Intn(len(s) - 1)
		if s[i] == s[i+1] {
			return v
		}
		b := []byte(s)
		b[i], b[i+1] = b[i+1], b[i]
		return value.V(b)
	case NoiseWrongEntity:
		if len(pool) == 0 {
			return v
		}
		donor := pool[n.rng.Intn(len(pool))]
		return donor.At(attrIdx)
	case NoiseAbbreviate:
		if len(s) < 2 {
			return v
		}
		return value.V(s[:1] + ".")
	case NoiseCase:
		return value.V(strings.ToLower(s))
	case NoiseNull:
		return value.Null
	default:
		return v
	}
}
