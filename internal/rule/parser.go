package rule

import (
	"fmt"
	"strings"

	"cerfix/internal/pattern"
	"cerfix/internal/value"
)

// This file implements the editing-rule DSL. One rule per line:
//
//	phi6: match AC~AC, phn~Hphn set str := str when type = "1"
//	phi9: match AC~AC set city := city when AC != "0800"
//	phi1: match zip~zip set AC := AC            # empty pattern
//
// Grammar (informal):
//
//	rule     := ident ":" "match" corrs "set" assigns [ "when" conds ]
//	corrs    := corr { "," corr }           corr   := ident "~" ident
//	assigns  := assign { "," assign }       assign := ident ":=" ident
//	conds    := cond { "and" cond }
//	cond     := ident op constant | ident "in" "{" constant {"," constant} "}"
//	op       := "=" | "!=" | "<" | "<=" | ">" | ">="
//	constant := quoted string ("...") or bare token
//
// Lines starting with '#' (after whitespace) and blank lines are
// skipped; a trailing "# comment" on a rule line becomes the rule's
// Comment.

// ParseSet parses a multi-line DSL document into a rule set.
func ParseSet(src string) (*Set, error) {
	set := &Set{byID: make(map[string]*Rule)}
	for lineNo, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		r, err := Parse(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if err := set.Add(r); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	return set, nil
}

// Parse parses a single rule line.
func Parse(line string) (*Rule, error) {
	// Split off a trailing comment (only outside quotes).
	text, comment := splitComment(line)
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	r, err := p.rule()
	if err != nil {
		return nil, err
	}
	r.Comment = comment
	return r, nil
}

func splitComment(line string) (text, comment string) {
	inQuote := false
	for i, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
		case r == '#' && !inQuote:
			return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:])
		}
	}
	return strings.TrimSpace(line), ""
}

// token kinds
type tokKind int

const (
	tIdent tokKind = iota
	tString
	tSymbol // one of : , ~ { } and operators
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("rule: unterminated string at column %d", i+1)
			}
			toks = append(toks, token{tString, src[i+1 : j]})
			i = j + 1
		case strings.ContainsRune(":,~{}", rune(c)):
			// ":" may be ":" or ":=".
			if c == ':' && i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tSymbol, ":="})
				i += 2
			} else {
				toks = append(toks, token{tSymbol, string(c)})
				i++
			}
		case c == '!' || c == '<' || c == '>' || c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tSymbol, src[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tSymbol, string(c)})
				i++
			}
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t:,~{}!<>=\"", rune(src[j])) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("rule: unexpected character %q at column %d", c, i+1)
			}
			toks = append(toks, token{tIdent, src[i:j]})
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expectSymbol(sym string) error {
	t, ok := p.next()
	if !ok || t.kind != tSymbol || t.text != sym {
		return fmt.Errorf("rule: expected %q, got %q", sym, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t, ok := p.next()
	if !ok || t.kind != tIdent {
		return "", fmt.Errorf("rule: expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) expectKeyword(kw string) error {
	t, ok := p.next()
	if !ok || t.kind != tIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("rule: expected keyword %q, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t, ok := p.peek()
	return ok && t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) rule() (*Rule, error) {
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("match"); err != nil {
		return nil, err
	}
	match, err := p.correspondences("~")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	set, err := p.correspondences(":=")
	if err != nil {
		return nil, err
	}
	r := &Rule{ID: id, Match: match, Set: set}
	if p.atKeyword("when") {
		p.next()
		conds, err := p.conditions()
		if err != nil {
			return nil, err
		}
		r.When = pattern.NewPattern(conds...)
	}
	if t, ok := p.peek(); ok {
		return nil, fmt.Errorf("rule: trailing input starting at %q", t.text)
	}
	return r, nil
}

func (p *parser) correspondences(sep string) ([]Correspondence, error) {
	var out []Correspondence
	for {
		left, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(sep); err != nil {
			return nil, err
		}
		right, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, Correspondence{Input: left, Master: right})
		if t, ok := p.peek(); ok && t.kind == tSymbol && t.text == "," {
			p.next()
			continue
		}
		return out, nil
	}
}

func (p *parser) conditions() ([]pattern.Condition, error) {
	var out []pattern.Condition
	for {
		c, err := p.condition()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if p.atKeyword("and") {
			p.next()
			continue
		}
		return out, nil
	}
}

func (p *parser) condition() (pattern.Condition, error) {
	attr, err := p.expectIdent()
	if err != nil {
		return pattern.Condition{}, err
	}
	t, ok := p.next()
	if !ok {
		return pattern.Condition{}, fmt.Errorf("rule: condition on %q missing operator", attr)
	}
	if t.kind == tIdent && strings.EqualFold(t.text, "in") {
		vals, err := p.constantSet()
		if err != nil {
			return pattern.Condition{}, err
		}
		return pattern.In(attr, vals...), nil
	}
	if t.kind != tSymbol {
		return pattern.Condition{}, fmt.Errorf("rule: bad operator %q", t.text)
	}
	cv, err := p.constant()
	if err != nil {
		return pattern.Condition{}, err
	}
	switch t.text {
	case "=":
		if cv == "_" {
			return pattern.Any(attr), nil
		}
		return pattern.Eq(attr, cv), nil
	case "!=":
		return pattern.Ne(attr, cv), nil
	case "<":
		return pattern.Lt(attr, cv), nil
	case "<=":
		return pattern.Le(attr, cv), nil
	case ">":
		return pattern.Gt(attr, cv), nil
	case ">=":
		return pattern.Ge(attr, cv), nil
	default:
		return pattern.Condition{}, fmt.Errorf("rule: unknown operator %q", t.text)
	}
}

// constant reads a quoted string or bare identifier as a value.
func (p *parser) constant() (value.V, error) {
	t, ok := p.next()
	if !ok {
		return "", fmt.Errorf("rule: missing constant")
	}
	switch t.kind {
	case tString, tIdent:
		return value.V(t.text), nil
	default:
		return "", fmt.Errorf("rule: expected constant, got %q", t.text)
	}
}

func (p *parser) constantSet() ([]value.V, error) {
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	var out []value.V
	for {
		v, err := p.constant()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("rule: unterminated constant set")
		}
		if t.kind == tSymbol && t.text == "," {
			continue
		}
		if t.kind == tSymbol && t.text == "}" {
			return out, nil
		}
		return nil, fmt.Errorf("rule: expected , or } in constant set, got %q", t.text)
	}
}
