// customer_entry replays the paper's full demonstration (Figs. 2–4) on
// the built-in demo data: rule management with the consistency check,
// the two-round data-monitor walkthrough of Fig. 3, and the auditing
// views of Fig. 4 (per-cell provenance and per-attribute statistics).
package main

import (
	"fmt"
	"log"
	"strings"

	"cerfix"
	"cerfix/internal/dataset"
)

func main() {
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			log.Fatal(err)
		}
	}

	// --- Fig. 2: rule management -------------------------------------
	fmt.Println("== Editing rules (Fig. 2) ==")
	fmt.Print(sys.Rules())
	rep := sys.CheckConsistency()
	fmt.Printf("consistency: %v (%d errors, %d cross-entity warnings)\n\n",
		rep.Consistent(), len(rep.Errors()), len(rep.Warnings()))

	// --- certain regions (region finder) ------------------------------
	fmt.Println("== Certain regions (top 3) ==")
	for i, r := range sys.Regions(3) {
		fmt.Printf("%d. validate {%s} (%d tableau rows)\n",
			i+1, strings.Join(r.AttrNames(), ", "), len(r.Tableau.Rows))
	}
	fmt.Println()

	// --- Fig. 3: the data monitor walkthrough --------------------------
	fmt.Println("== Data monitor (Fig. 3) ==")
	in := dataset.DemoInputFig3()
	fmt.Println("entered:", in)
	sess, err := sys.NewSessionTuple(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial suggestion:", strings.Join(sess.Suggestion(), ", "))
	fmt.Println("the user instead validates: AC, phn, type, item (Fig. 3(a))")
	res, err := sess.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range res.Changes {
		if ch.IsRewrite() {
			fmt.Printf("  CerFix fixes %s: %q -> %q (rule %s)\n",
				ch.Attr, string(ch.Old), string(ch.New), ch.RuleID)
		} else {
			fmt.Printf("  CerFix confirms %s = %q (rule %s)\n", ch.Attr, string(ch.New), ch.RuleID)
		}
	}
	fmt.Println("new suggestion (Fig. 3(b)):", strings.Join(sess.Suggestion(), ", "))
	if _, err := sess.ValidateSuggested(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all attributes validated (Fig. 3(c)):", sess.Done())
	fmt.Println("fixed tuple:", sess.Tuple)
	fmt.Printf("certain: %v after %d rounds\n\n", sess.Certain(), sess.Rounds)

	// --- Fig. 4: auditing ----------------------------------------------
	fmt.Println("== Data auditing (Fig. 4) ==")
	if rec, ok := sys.Audit().CellProvenance(sess.ID, "FN"); ok {
		fmt.Printf("FN cell provenance: %s\n", rec)
	}
	fmt.Println("per-attribute statistics:")
	for _, s := range sys.Audit().StatsPerAttr() {
		fmt.Printf("  %-5s user %5.1f%%  auto %5.1f%%\n", s.Attr, s.UserPct(), s.AutoPct())
	}
	o := sys.Audit().Overall()
	fmt.Printf("overall: %.1f%% user-validated, %.1f%% fixed/confirmed by CerFix\n",
		o.UserPct(), o.AutoPct())
}
