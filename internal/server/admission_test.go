package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cerfix"
	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/jobs"
)

// This file exercises the production front door end to end: the sync
// concurrency gate, per-key rate limiting, backlog shedding over HTTP,
// panic recovery, the typed error envelope, and byte-parity between
// the /api and /api/v1 mounts. Run it with -race: the whole point is
// that admission state stays coherent under concurrent load.

// demoSys builds the standard demo system (schema + rules + master).
func demoSys(t *testing.T) *cerfix.System {
	t.Helper()
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// fixPayload is a minimal valid POST /fix body.
func fixPayload() []byte {
	b, _ := json.Marshal(map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
	})
	return b
}

// doRaw issues one request and returns status, body and headers.
func doRaw(t *testing.T, method, url string, body []byte, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header
}

// decodeEnvelope asserts a body is the typed error envelope and
// returns it.
func decodeEnvelope(t *testing.T, body []byte) errorEnvelope {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an error envelope: %v: %s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" || env.Error.RequestID == "" {
		t.Fatalf("incomplete envelope: %s", body)
	}
	return env
}

// The sync-fix gate admits at most K concurrent runs; excess requests
// shed immediately with a well-formed 429 overloaded envelope and a
// Retry-After, and never exceed K in flight under a concurrent blast.
func TestSyncFixConcurrencyCap(t *testing.T) {
	const gateCap = 2
	srv := New(demoSys(t))
	srv.SetLimits(Limits{MaxSyncFix: gateCap})

	block := make(chan struct{})
	entered := make(chan struct{}, 16)
	var gateHook atomic.Value // func()
	gateHook.Store(func() { entered <- struct{}{}; <-block })
	srv.syncFixHook = func() { gateHook.Load().(func())() }

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fill the gate: two requests park inside it.
	var wg sync.WaitGroup
	for i := 0; i < gateCap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
			if status != 200 {
				t.Errorf("admitted fix = %d: %s", status, body)
			}
		}()
	}
	for i := 0; i < gateCap; i++ {
		<-entered
	}

	// The cap+1'th request sheds: 429 overloaded with Retry-After.
	status, body, hdr := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-cap fix = %d: %s", status, body)
	}
	env := decodeEnvelope(t, body)
	if env.Error.Code != codeOverloaded {
		t.Fatalf("code = %q, want %q", env.Error.Code, codeOverloaded)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}

	// Status reports the live occupancy and the shed.
	var st statusResponse
	doJSON(t, "GET", ts.URL+"/api/v1/status", nil, 200, &st)
	if st.Admission.SyncInFlight != gateCap || st.Admission.MaxSyncFix != gateCap {
		t.Fatalf("admission status = %+v", st.Admission)
	}
	if st.Admission.Shed.Overloaded.Load() != 1 {
		t.Fatalf("shed.overloaded = %d, want 1", st.Admission.Shed.Overloaded.Load())
	}

	close(block)
	wg.Wait()

	// Under a 16-way concurrent blast the observed in-flight count
	// never exceeds the cap, and every request either succeeds or
	// sheds 429.
	var cur, max, ok200, shed429 atomic.Int64
	gateHook.Store(func() {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		cur.Add(-1)
	})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
			switch status {
			case 200:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				shed429.Add(1)
				decodeEnvelope(t, body)
			default:
				t.Errorf("unexpected status %d: %s", status, body)
			}
		}()
	}
	wg.Wait()
	if got := max.Load(); got > gateCap {
		t.Fatalf("max in-flight = %d, want <= %d", got, gateCap)
	}
	if ok200.Load()+shed429.Load() != 16 {
		t.Fatalf("200s %d + 429s %d != 16", ok200.Load(), shed429.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("blast admitted nothing")
	}
}

// A submission past -max-queued-jobs sheds over HTTP with 429
// backlog_full and a computed Retry-After, without growing the jobs
// directory; draining the backlog reopens admission.
func TestJobsBacklogShedOverHTTP(t *testing.T) {
	srv := New(demoSys(t))
	dir := t.TempDir()
	gate := make(chan struct{})
	mgr, err := jobs.Open(jobs.Config{
		Dir:    dir,
		Schema: dataset.CustSchema(),
		Snapshot: func() *core.Engine {
			<-gate
			return srv.SnapshotEngine()
		},
		MaxQueued: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer func() {
		release()
		mgr.Close(context.Background())
	}()
	srv.AttachJobs(mgr)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func() (int, []byte, http.Header) {
		body, _ := json.Marshal(map[string]any{
			"validated": []string{"zip", "phn", "type", "item"},
			"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
		})
		return doRaw(t, "POST", ts.URL+"/api/v1/jobs", body, nil)
	}

	// A occupies the runner (blocked at snapshot), B fills the queue.
	status, body, _ := submit()
	if status != http.StatusAccepted {
		t.Fatalf("submit A = %d: %s", status, body)
	}
	var a jobJSON
	_ = json.Unmarshal(body, &a)
	status, body, _ = submit()
	if status != http.StatusAccepted {
		t.Fatalf("submit B = %d: %s", status, body)
	}
	var b jobJSON
	_ = json.Unmarshal(body, &b)
	dirsBefore := countDirs(t, dir)

	// C sheds: 429 backlog_full, Retry-After, no new job directory.
	status, body, hdr := submit()
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-backlog submit = %d: %s", status, body)
	}
	env := decodeEnvelope(t, body)
	if env.Error.Code != codeBacklogFull {
		t.Fatalf("code = %q, want %q", env.Error.Code, codeBacklogFull)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	if got := countDirs(t, dir); got != dirsBefore {
		t.Fatalf("job dirs %d -> %d: shed touched disk", dirsBefore, got)
	}

	// Status reports the queue and the shed.
	var st statusResponse
	doJSON(t, "GET", ts.URL+"/api/v1/status", nil, 200, &st)
	if st.Jobs == nil || st.Jobs.Queued != 1 || st.Jobs.MaxQueued != 1 {
		t.Fatalf("jobs status = %+v", st.Jobs)
	}
	if st.Admission.Shed.BacklogFull.Load() != 1 {
		t.Fatalf("shed.backlog_full = %d, want 1", st.Admission.Shed.BacklogFull.Load())
	}

	// Draining reopens admission.
	release()
	pollJobDone(t, ts.URL, a.ID)
	pollJobDone(t, ts.URL, b.ID)
	status, body, _ = submit()
	if status != http.StatusAccepted {
		t.Fatalf("submit after drain = %d: %s", status, body)
	}
}

// discardLogger swallows injected-fault noise in panic tests.
func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// countDirs returns the number of subdirectories (job workspaces).
func countDirs(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// A handler panic becomes a 500 envelope, the server keeps serving,
// and the sync gate slot is released through the unwind.
func TestPanicRecoveryKeepsServing(t *testing.T) {
	srv := New(demoSys(t))
	srv.SetLimits(Limits{MaxSyncFix: 1})
	var boom atomic.Bool
	boom.Store(true)
	srv.syncFixHook = func() {
		if boom.Swap(false) {
			panic("injected fault")
		}
	}
	srv.SetErrorLog(discardLogger())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking fix = %d: %s", status, body)
	}
	env := decodeEnvelope(t, body)
	if env.Error.Code != codeInternal {
		t.Fatalf("code = %q, want %q", env.Error.Code, codeInternal)
	}

	// Still serving, and the single gate slot was not leaked: the next
	// fix is admitted and succeeds.
	doJSON(t, "GET", ts.URL+"/api/v1/status", nil, 200, nil)
	status, body, _ = doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != 200 {
		t.Fatalf("fix after panic = %d: %s (gate slot leaked?)", status, body)
	}
}

// Rate limiting is per key: exhausting one API key's bucket sheds that
// key with 429 rate_limited while other keys stay admitted.
func TestRateLimitPerKey(t *testing.T) {
	srv := New(demoSys(t))
	srv.SetLimits(Limits{Rate: 0.001, Burst: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(key string) (int, []byte, http.Header) {
		hdr := map[string]string{}
		if key != "" {
			hdr["X-Api-Key"] = key
		}
		return doRaw(t, "GET", ts.URL+"/api/v1/rules", nil, hdr)
	}

	// Key A spends its burst of 2, then sheds.
	for i := 0; i < 2; i++ {
		status, body, hdr := get("alice")
		if status != 200 {
			t.Fatalf("request %d = %d: %s", i, status, body)
		}
		if got := hdr.Get("X-RateLimit-Remaining"); got != strconv.Itoa(1-i) {
			t.Fatalf("remaining after %d = %q", i+1, got)
		}
	}
	status, body, hdr := get("alice")
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget = %d: %s", status, body)
	}
	env := decodeEnvelope(t, body)
	if env.Error.Code != codeRateLimited {
		t.Fatalf("code = %q, want %q", env.Error.Code, codeRateLimited)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q", hdr.Get("Retry-After"))
	}

	// Key B is an independent bucket.
	if status, body, _ := get("bob"); status != 200 {
		t.Fatalf("other key = %d: %s", status, body)
	}
	// And key A stays shed.
	if status, _, _ := get("alice"); status != http.StatusTooManyRequests {
		t.Fatalf("spent key = %d, want 429", status)
	}

	// The shed counter shows up on status (read under a fresh key).
	var st statusResponse
	status, body, _ = doRaw(t, "GET", ts.URL+"/api/v1/status", nil,
		map[string]string{"X-Api-Key": "admin"})
	if status != 200 {
		t.Fatalf("status read = %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Shed.RateLimited.Load() < 2 {
		t.Fatalf("shed.rate_limited = %d, want >= 2", st.Admission.Shed.RateLimited.Load())
	}
	if st.Admission.RatePerKey != 0.001 || st.Admission.Burst != 2 {
		t.Fatalf("admission config = %+v", st.Admission)
	}
}

// The bare /api mount is a byte-identical alias of /api/v1: the same
// logical request under either prefix (with a pinned request ID)
// produces the same body and status — success and error paths both.
func TestAliasPrefixByteParity(t *testing.T) {
	ts := jobsServer(t)
	cases := []struct {
		method string
		path   string
		body   []byte
	}{
		{"GET", "/status", nil},
		{"GET", "/rules", nil},
		{"GET", "/master", nil},
		{"GET", "/jobs", nil},
		{"GET", "/audit/stats", nil},
		{"POST", "/fix", fixPayload()},
		{"GET", "/jobs/nope", nil},                  // 404 envelope
		{"GET", "/sessions/bogus", nil},             // 400 envelope
		{"POST", "/fix", []byte(`{"validated":[]`)}, // 400 envelope
	}
	for _, tc := range cases {
		hdr := map[string]string{"X-Request-Id": "parity-probe"}
		s1, b1, _ := doRaw(t, tc.method, ts.URL+"/api"+tc.path, tc.body, hdr)
		s2, b2, _ := doRaw(t, tc.method, ts.URL+"/api/v1"+tc.path, tc.body, hdr)
		if s1 != s2 {
			t.Fatalf("%s %s: /api=%d /api/v1=%d", tc.method, tc.path, s1, s2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s %s bodies differ:\n /api    %s\n /api/v1 %s", tc.method, tc.path, b1, b2)
		}
	}
}

// Every error answers the one envelope shape with its documented
// status and stable code.
func TestErrorEnvelopeTable(t *testing.T) {
	ts := jobsServer(t)
	plain := demoServer(t) // no jobs manager
	cases := []struct {
		name       string
		base       string
		method     string
		path       string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"malformed body", ts.URL, "POST", "/api/v1/rules", []byte(`{`), 400, codeInvalidArgument},
		{"bad rule dsl", ts.URL, "POST", "/api/v1/rules", []byte(`{"dsl":"garbage"}`), 422, codeInvalidInput},
		{"unknown rule", ts.URL, "DELETE", "/api/v1/rules/nope", nil, 404, codeNotFound},
		{"bad session id", ts.URL, "GET", "/api/v1/sessions/abc", nil, 400, codeInvalidArgument},
		{"unknown session", ts.URL, "GET", "/api/v1/sessions/999", nil, 404, codeNotFound},
		{"bad page limit", ts.URL, "GET", "/api/v1/master?limit=-1", nil, 400, codeInvalidArgument},
		{"bad audit cell", ts.URL, "GET", "/api/v1/audit/cell?tuple=1&attr=", nil, 400, codeInvalidArgument},
		{"unknown route", ts.URL, "GET", "/api/v1/nope", nil, 404, codeNotFound},
		{"unknown job", ts.URL, "GET", "/api/v1/jobs/nope", nil, 404, codeNotFound},
		{"empty job submit", ts.URL, "POST", "/api/v1/jobs", []byte(`{}`), 422, codeInvalidInput},
		{"empty fix", ts.URL, "POST", "/api/v1/fix", []byte(`{"validated":["zip"],"tuples":[]}`), 422, codeInvalidInput},
		{"jobs disabled", plain.URL, "GET", "/api/v1/jobs", nil, 503, codeJobsDisabled},
	}
	for _, tc := range cases {
		status, body, _ := doRaw(t, tc.method, tc.base+tc.path, tc.body, nil)
		if status != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d: %s", tc.name, status, tc.wantStatus, body)
			continue
		}
		env := decodeEnvelope(t, body)
		if env.Error.Code != tc.wantCode {
			t.Errorf("%s: code = %q, want %q", tc.name, env.Error.Code, tc.wantCode)
		}
	}
}

// The acceptance criterion end to end: a saturated limited server
// sheds overload with 429 + Retry-After, and the work it does admit
// returns bytes identical to an unlimited server's answer for the
// same input.
func TestSaturationAdmittedWorkByteIdentical(t *testing.T) {
	// Unlimited reference.
	ref := httptest.NewServer(New(demoSys(t)).Handler())
	defer ref.Close()
	_, want, _ := doRaw(t, "POST", ref.URL+"/api/v1/fix", fixPayload(), nil)

	// Limited server, gate capacity 1, first request parked inside.
	srv := New(demoSys(t))
	srv.SetLimits(Limits{MaxSyncFix: 1})
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	var parked atomic.Bool
	parked.Store(true)
	srv.syncFixHook = func() {
		if parked.Swap(false) {
			entered <- struct{}{}
			<-block
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan []byte, 1)
	go func() {
		_, body, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
		done <- body
	}()
	<-entered

	// Saturated: the second request sheds.
	status, body, hdr := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated fix = %d: %s", status, body)
	}
	decodeEnvelope(t, body)
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}

	// The admitted request's answer is byte-identical to the
	// unlimited server's, and so is the shed request once retried.
	close(block)
	if got := <-done; !bytes.Equal(got, want) {
		t.Fatalf("admitted body differs from unlimited reference:\n got  %s\n want %s", got, want)
	}
	status, got, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != 200 || !bytes.Equal(got, want) {
		t.Fatalf("retried body = %d %s, want 200 %s", status, got, want)
	}
}

// The access log emits one structured line per request with status,
// duration, request ID — and the shed reason as its code column.
func TestAccessLogLines(t *testing.T) {
	srv := New(demoSys(t))
	srv.SetLimits(Limits{Rate: 0.001, Burst: 1})
	var buf bytes.Buffer
	srv.SetAccessLog(log.New(&buf, "", 0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doRaw(t, "GET", ts.URL+"/api/v1/status", nil, map[string]string{"X-Request-Id": "log-probe"})
	doRaw(t, "GET", ts.URL+"/api/v1/status", nil, nil) // bucket spent: shed

	out := buf.String()
	if !strings.Contains(out, "method=GET path=/api/v1/status status=200") ||
		!strings.Contains(out, "req=log-probe") || !strings.Contains(out, "dur=") {
		t.Fatalf("success line malformed:\n%s", out)
	}
	if !strings.Contains(out, "status=429") || !strings.Contains(out, "code=rate_limited") {
		t.Fatalf("shed line missing its reason:\n%s", out)
	}
}

// Request IDs: a well-formed inbound X-Request-Id is honored and
// echoed in both the response header and the error envelope; a
// missing or invalid one is replaced server-side.
func TestRequestIDPropagation(t *testing.T) {
	ts := demoServer(t)

	_, body, hdr := doRaw(t, "GET", ts.URL+"/api/v1/sessions/999", nil,
		map[string]string{"X-Request-Id": "trace-42"})
	if got := hdr.Get("X-Request-Id"); got != "trace-42" {
		t.Fatalf("echoed id = %q, want trace-42", got)
	}
	if env := decodeEnvelope(t, body); env.Error.RequestID != "trace-42" {
		t.Fatalf("envelope id = %q, want trace-42", env.Error.RequestID)
	}

	// Header-injection shaped IDs are rejected in favor of a
	// server-assigned one.
	_, body, hdr = doRaw(t, "GET", ts.URL+"/api/v1/sessions/999", nil,
		map[string]string{"X-Request-Id": "bad id!"})
	got := hdr.Get("X-Request-Id")
	if got == "" || got == "bad id!" {
		t.Fatalf("server-assigned id = %q", got)
	}
	if env := decodeEnvelope(t, body); env.Error.RequestID != got {
		t.Fatalf("envelope id %q != header id %q", env.Error.RequestID, got)
	}
}
