package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cerfix"
	"cerfix/internal/dataset"
)

func TestBatchFix(t *testing.T) {
	ts := demoServer(t)
	var resp batchResponse
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples": []map[string]string{
			dataset.DemoInputFig3().Map(),
			dataset.DemoInputExample1().Map(),
		},
	}, 200, &resp)
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	// Fig. 3 tuple: the 4 validated attributes form the mobile region —
	// fully fixed.
	r0 := resp.Results[0]
	if !r0.Done || r0.Tuple["FN"] != "Mark" || r0.Tuple["str"] != "20 Baker St" {
		t.Fatalf("result 0 = %+v", r0)
	}
	// Example 1 tuple: zip correct so AC fixed to 131.
	r1 := resp.Results[1]
	if r1.Tuple["AC"] != "131" || r1.Tuple["city"] != "Edi" {
		t.Fatalf("result 1 = %+v", r1)
	}
	if resp.FullyValidated < 1 || resp.CellsRewritten < 3 {
		t.Fatalf("aggregates = %+v", resp)
	}
	// Rewrites carry provenance.
	foundProv := false
	for _, c := range r0.Rewrites {
		if c.Attr == "FN" && c.RuleID == "phi4" {
			foundProv = true
		}
	}
	if !foundProv {
		t.Fatalf("FN rewrite provenance missing: %+v", r0.Rewrites)
	}
}

func TestBatchFixErrors(t *testing.T) {
	ts := demoServer(t)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{},
		"tuples":    []map[string]string{{"FN": "x"}},
	}, 422, nil)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"zip"},
		"tuples":    []map[string]string{},
	}, 422, nil)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"bogus"},
		"tuples":    []map[string]string{{"FN": "x"}},
	}, 422, nil)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"zip"},
		"tuples":    []map[string]string{{"bogus": "x"}},
	}, 422, nil)
}

// The server is safe under concurrent mixed traffic: sessions, batch
// fixes, audits and rule reads racing on the shared system.
func TestServerConcurrentTraffic(t *testing.T) {
	ts := demoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (g + i) % 4 {
				case 0:
					var sess sessionJSON
					doJSONq(ts.URL+"/api/sessions", map[string]any{
						"tuple": dataset.DemoInputFig3().Map(),
					}, &sess, errs)
					if sess.ID != 0 {
						doJSONq(fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
							"assertions": map[string]string{"zip": "NW1 6XE", "phn": "075568485", "type": "2", "item": "DVD"},
						}, nil, errs)
					}
				case 1:
					doJSONq(ts.URL+"/api/fix", map[string]any{
						"validated": []string{"zip", "phn", "type", "item"},
						"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
					}, nil, errs)
				case 2:
					getq(ts.URL+"/api/audit/stats", errs)
				default:
					getq(ts.URL+"/api/rules", errs)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// genServer serves a system loaded with a generated workload and
// returns the dirty tuples to batch-fix.
func genServer(t *testing.T, entities, inputs int) (*httptest.Server, []map[string]string) {
	t.Helper()
	g := dataset.NewCustomerGen(11)
	w, err := g.GenerateWorkload(entities, inputs, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range w.Entities {
		if err := sys.AddMasterRow(e.Master.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	tuples := make([]map[string]string, len(w.Dirty))
	for i, tu := range w.Dirty {
		tuples[i] = tu.Map()
	}
	ts := httptest.NewServer(New(sys).Handler())
	t.Cleanup(ts.Close)
	return ts, tuples
}

// Parallel identical batches on an unchanging system must all produce
// the same bytes — the pipeline's re-sequencing guarantee observed
// end-to-end through the HTTP layer.
func TestBatchFixParallelDeterministic(t *testing.T) {
	ts, tuples := genServer(t, 40, 120)
	req := map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples":    tuples,
	}
	readBody := func() ([]byte, error) {
		resp, err := postJSON(ts.URL+"/api/fix", req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	want, err := readBody()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := readBody()
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("parallel batch response differs from reference")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Batch fixes race rule and master mutations: the snapshot taken
// under the lock must isolate in-flight batches from every mutation
// (the race detector proves no shared state leaks), and each response
// must stay well-formed.
func TestBatchFixParallelUnderMutation(t *testing.T) {
	ts, tuples := genServer(t, 30, 60)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var resp batchResponse
				doJSONq(ts.URL+"/api/fix", map[string]any{
					"validated": []string{"zip", "phn", "type", "item"},
					"tuples":    tuples,
				}, &resp, errs)
				if len(resp.Results) != len(tuples) {
					errs <- fmt.Errorf("batch returned %d results, want %d", len(resp.Results), len(tuples))
					return
				}
			}
		}()
	}
	// Mutators: master inserts and rule add/delete racing the batches.
	wg.Add(2)
	go func() {
		defer wg.Done()
		g := dataset.NewCustomerGen(77)
		for i, e := range g.GenerateEntities(40) {
			vals := make(map[string]string)
			for j, a := range dataset.PersonSchema().AttrNames() {
				vals[a] = string(e.Master[j]) + fmt.Sprint(1000+i) // keep keys unique
			}
			doJSONq(ts.URL+"/api/master", map[string]any{"values": vals}, nil, errs)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			id := fmt.Sprintf("stress%d", i)
			doJSONq(ts.URL+"/api/rules", map[string]any{
				"dsl": id + `: match zip~zip set str := str`,
			}, nil, errs)
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/rules/"+id, nil)
			if err != nil {
				errs <- err
				continue
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				continue
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// doJSONq is doJSON without *testing.T (for goroutines).
func doJSONq(url string, body any, out any, errs chan<- error) {
	resp, err := postJSON(url, body)
	if err != nil {
		errs <- err
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		errs <- fmt.Errorf("POST %s = %d", url, resp.StatusCode)
		return
	}
	if out != nil {
		if err := decodeJSONBody(resp, out); err != nil {
			errs <- err
		}
	}
}

func getq(url string, errs chan<- error) {
	resp, err := http.Get(url)
	if err != nil {
		errs <- err
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		errs <- fmt.Errorf("GET %s = %d", url, resp.StatusCode)
	}
}

func TestSessionExplain(t *testing.T) {
	ts := demoServer(t)
	var sess sessionJSON
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]any{
		"tuple": dataset.DemoInputFig3().Map(),
	}, 201, &sess)
	doJSON(t, "POST", fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"AC": "201", "phn": "075568485", "type": "2", "item": "DVD"},
	}, 200, nil)
	var out struct {
		Suggestion  []string `json:"suggestion"`
		Explanation string   `json:"explanation"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/api/sessions/%d/explain", ts.URL, sess.ID), nil, 200, &out)
	if len(out.Suggestion) != 1 || out.Suggestion[0] != "zip" {
		t.Fatalf("suggestion = %v", out.Suggestion)
	}
	if out.Explanation == "" {
		t.Fatal("empty explanation")
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/999/explain", nil, 404, nil)
}
