package core

import (
	"fmt"
	"math/bits"
	"sync"

	"cerfix/internal/counter"
	"cerfix/internal/master"
	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file implements the compiled chase program: the engine's rule
// set resolved ONCE into a form the per-tuple hot path can execute
// without re-deriving anything. The legacy loop (Engine.ChaseLegacy)
// re-resolves attribute names to indexes, rebuilds premise/target
// AttrSets, re-projects match keys and rescans the entire rule set
// every round; the compiled program precomputes all of it per engine
// and replaces the O(rounds × |rules|) rescan with an agenda
// scheduler driven by an attr→dependent-rules index, so a round only
// touches rules whose premise actually became satisfiable. Results
// are byte-identical to the legacy loop — same changes in the same
// order with the same Round stamps, same conflicts, same Rounds —
// which the parity suite (parity_test.go and the pipeline artifact
// tests) pins. See ARCHITECTURE.md, "The compiled chase program".

// chaseProgram is the store-independent compiled form of one
// (input schema, rule set) pair. It is built once in NewEngine and
// shared by every snapshot of the engine (snapshots share the schema
// and the immutable-after-publish rule set, so the compile stays
// valid). Store-dependent state — the master lookup handles — binds
// per Chaser, since each engine view carries its own store.
type chaseProgram struct {
	input *schema.Schema
	rules []compiledRule
	// deps[a] lists the indices of rules whose premise contains input
	// attribute position a — the agenda's dependency index: when a is
	// newly validated, exactly these rules move closer to readiness.
	deps [][]int32
	// words is the rule-bitset width in uint64 words (≥ 1).
	words int
	// anyTargets is the union of every rule's target set. A position
	// outside it can never be written by any chase, so its seed value is
	// fixed for the whole run — the prefilter's stability test (a
	// position validated at seed is equally immutable).
	anyTargets schema.AttrSet
	// staticSkip flags rules whose pattern is unsatisfiable over the
	// input schema: matches() is false for every tuple, so the agenda
	// would evaluate them to no-fire on every chase. Folded into each
	// chase's skip set.
	staticSkip []uint64
	// prefAttrs is the premise prefilter, grouped by input position: the
	// cheap per-tuple rejects that can be decided once per chase from a
	// stable position's value, before any rule reaches the agenda. See
	// Chaser.buildSkip for the soundness argument.
	prefAttrs []prefAttr
	// skipped/evaluated are program-lifetime prefilter effectiveness
	// totals across every chase on any view sharing this program
	// (snapshots included), surfaced through Engine.PrefilterStats and
	// /api/v1/status. They reset when the rule set changes, because a
	// rule edit builds a new engine and with it a new program.
	skipped, evaluated counter.Monotonic
	// pool holds idle Chasers for reuse across runs and across engine
	// views (snapshots share the program, so a chaser released by one
	// batch run can be rebound to the next run's snapshot without
	// rebuilding its scratch). See Engine.AcquireChaser.
	pool chaserPool
}

// chaserPool is a mutex-guarded free list of idle Chasers. A plain
// list (rather than sync.Pool) keeps reuse deterministic — a released
// chaser is never dropped on a GC whim — and acquisition happens once
// per run or per pipeline worker, never per tuple, so the lock is
// cold. The list is bounded by the peak number of concurrently live
// chasers, which the worker counts of the pipeline and job runners
// bound in turn.
type chaserPool struct {
	mu   sync.Mutex
	idle []*Chaser
}

func (p *chaserPool) get() *Chaser {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		return c
	}
	return nil
}

func (p *chaserPool) put(c *Chaser) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle = append(p.idle, c)
}

// compiledRule is one rule with every name resolved and every derived
// set precomputed.
type compiledRule struct {
	src *rule.Rule
	id  string
	// premise is X ∪ Xp; targets is B (both resolved bitsets).
	premise, targets schema.AttrSet
	// matchInputPos are the input positions of X in rule order — the
	// probe key's projection, encoded without materialization.
	matchInputPos []int
	// targetInputPos are the input positions of B in rule order.
	targetInputPos []int
	// conds is the compiled pattern: per condition, the input position
	// and domain are pre-resolved so a match is a slice walk.
	conds []compiledCond
	// matchInputAttrs/matchMasterAttrs/rhsMasterAttrs are the rule's
	// attribute lists, captured once (the rule methods allocate fresh
	// slices per call). The master lists feed handle resolution and
	// the slow-path lookup; the input list feeds conflict details.
	matchInputAttrs  []string
	matchMasterAttrs []string
	rhsMasterAttrs   []string
	// handleKey is the (Xm, Bm) registry key, canonicalized once so
	// binding (or rebinding) a Chaser — one handle per rule, re-resolved
	// every time a pooled chaser moves to a new engine view — skips the
	// per-handle string build.
	handleKey string
}

// compiledCond is one pattern condition with its attribute resolved.
type compiledCond struct {
	pos  int
	dom  value.Domain
	cond pattern.Condition
}

// prefAttr is the prefilter state for one input position.
type prefAttr struct {
	pos int
	// conds are the string-domain pattern conditions on pos, tagged with
	// their rule. Non-string domains are excluded on purpose:
	// value.Compare parses numeric and date operands per call, which
	// both costs more than the reject saves and allocates on malformed
	// input — the string domain compares allocation-free.
	conds []prefCond
	// matchMask flags every rule whose match key X includes pos (nil
	// when none does). When a stable position's value is absent from the
	// store's interning dictionary, no master cell carries it, so every
	// lookup probing pos must return NoMatch — the whole mask skips.
	matchMask []uint64
}

// prefCond is one prefilterable condition: rule bit to set when the
// stable value fails the condition.
type prefCond struct {
	rule int32
	dom  value.Domain
	cond pattern.Condition
}

// matches reports whether the tuple satisfies the compiled pattern.
func (r *compiledRule) matches(t *schema.Tuple) bool {
	for i := range r.conds {
		c := &r.conds[i]
		if !c.cond.Matches(t.Vals[c.pos], c.dom) {
			return false
		}
	}
	return true
}

// compileProgram resolves the rule set against the input schema. The
// rules must already be validated (NewEngine runs Set.Validate
// first), so every attribute resolves.
func compileProgram(input *schema.Schema, rules []*rule.Rule) *chaseProgram {
	p := &chaseProgram{
		input: input,
		rules: make([]compiledRule, len(rules)),
		deps:  make([][]int32, input.Len()),
		words: (len(rules) + 63) / 64,
	}
	if p.words == 0 {
		p.words = 1
	}
	p.staticSkip = make([]uint64, p.words)
	condsAt := make([][]prefCond, input.Len())
	matchAt := make([][]uint64, input.Len())
	for i, r := range rules {
		cr := &p.rules[i]
		cr.src = r
		cr.id = r.ID
		cr.premise = r.PremiseAttrs(input)
		cr.targets = r.TargetAttrs(input)
		cr.matchInputAttrs = r.MatchInputAttrs()
		cr.matchMasterAttrs = r.MatchMasterAttrs()
		cr.rhsMasterAttrs = r.SetMasterAttrs()
		cr.handleKey = master.HandleKey(cr.matchMasterAttrs, cr.rhsMasterAttrs)
		cr.matchInputPos = make([]int, len(cr.matchInputAttrs))
		for j, a := range cr.matchInputAttrs {
			cr.matchInputPos[j] = input.MustIndex(a)
		}
		cr.targetInputPos = make([]int, len(r.Set))
		for j, c := range r.Set {
			cr.targetInputPos[j] = input.MustIndex(c.Input)
		}
		cr.conds = make([]compiledCond, len(r.When.Conds))
		for j, cond := range r.When.Conds {
			pos := input.MustIndex(cond.Attr)
			cr.conds[j] = compiledCond{pos: pos, dom: input.Attr(pos).Domain, cond: cond}
		}
		for _, a := range cr.premise.Positions() {
			p.deps[a] = append(p.deps[a], int32(i))
		}
		p.anyTargets = p.anyTargets.Union(cr.targets)
		if !pattern.Satisfiable(r.When, input) {
			p.staticSkip[i>>6] |= 1 << uint(i&63)
		}
		for _, cc := range cr.conds {
			if cc.dom == value.DString {
				condsAt[cc.pos] = append(condsAt[cc.pos], prefCond{rule: int32(i), dom: cc.dom, cond: cc.cond})
			}
		}
		for _, pos := range cr.matchInputPos {
			if matchAt[pos] == nil {
				matchAt[pos] = make([]uint64, p.words)
			}
			matchAt[pos][i>>6] |= 1 << uint(i&63)
		}
	}
	for pos := 0; pos < input.Len(); pos++ {
		if condsAt[pos] == nil && matchAt[pos] == nil {
			continue
		}
		p.prefAttrs = append(p.prefAttrs, prefAttr{pos: pos, conds: condsAt[pos], matchMask: matchAt[pos]})
	}
	return p
}

// Chaser executes the compiled chase program against one engine view,
// reusing all scratch state (ready bitsets, missing-premise counters,
// the key-encode buffer and — via ChaseScratch — the result itself)
// across calls, so tight fixing loops run
// allocation-free per tuple in steady state. A Chaser is NOT safe for
// concurrent use — create one per goroutine; the batch pipeline gives
// each worker its own. The engine's rules and master data must not be
// mutated while chases run (snapshot the engine first when mutation
// is possible — see Engine.Snapshot).
type Chaser struct {
	eng  *Engine
	prog *chaseProgram
	// handles are the per-rule master lookup handles, index-aligned
	// with prog.rules (a value slice: one allocation per Chaser, not
	// one per rule). On frozen stores each handle holds the resolved
	// rule index; on live stores it holds the prebuilt registry key.
	handles []master.RuleHandle

	// Agenda scratch, sized to the rule set. No conflict-dedup state
	// is needed: the legacy loop dedups MasterAmbiguous per rule and
	// ValidatedContradiction per (rule, target) because it rescans
	// every rule every round, but the agenda evaluates each rule at
	// most once per chase (see run), so duplicates are impossible by
	// construction.
	missing   []int32  // unvalidated premise attrs per rule
	cur, next []uint64 // this round's / next round's ready bitsets

	// skip is the per-chase rule skip set — staticSkip plus the tuple's
	// prefilter rejects (see buildSkip). A skipped rule never reaches
	// the agenda; skipped/evaluated count this chase's prefilter
	// effectiveness, flushed to the program totals when the run ends.
	skip               []uint64
	skipped, evaluated int
	// noPrefilter disables the premise prefilter (the parity sweep and
	// the e13 baseline measure against it); results are byte-identical
	// either way — only the counters and the work done move.
	noPrefilter bool

	// keyBuf is the probe key-encode scratch; dict is the bound
	// store's interning dictionary (probe keys are sym-encoded).
	keyBuf []byte
	dict   *value.Dict

	// ChaseScratch's reusable result (tuple values, change/conflict
	// slices keep their capacity across calls).
	scratchRes   ChaseResult
	scratchTuple schema.Tuple
}

// NewChaser builds a reusable single-goroutine chase runner bound to
// the engine's compiled program and its master view. Callers that run
// repeatedly (pipeline workers, job runners, one-off Engine.Chase
// calls) should prefer AcquireChaser/Release, which recycle chasers —
// scratch buffers included — through the engine's program-level pool.
func (e *Engine) NewChaser() *Chaser {
	p := e.prog
	c := &Chaser{
		prog:    p,
		handles: make([]master.RuleHandle, len(p.rules)),
		missing: make([]int32, len(p.rules)),
		cur:     make([]uint64, p.words),
		next:    make([]uint64, p.words),
		skip:    make([]uint64, p.words),
	}
	c.rebind(e)
	return c
}

// AcquireChaser returns a Chaser bound to this engine view, reusing an
// idle one from the compiled program's pool when available. The pool
// is shared by every snapshot of the engine (snapshots share the
// program), so a chaser released after one batch run serves the next
// run's snapshot with all its scratch — agenda bitsets, key buffer,
// warmed result capacities — intact; only the per-rule master handles
// are re-resolved against this view's store. Release the chaser with
// Chaser.Release when done; like NewChaser's, the returned chaser is
// single-goroutine.
func (e *Engine) AcquireChaser() *Chaser {
	if c := e.prog.pool.get(); c != nil {
		c.rebind(e)
		return c
	}
	return e.NewChaser()
}

// Release parks the chaser in its program's pool for the next
// AcquireChaser. The chaser must not be used afterwards. Master-store
// references are dropped so a released chaser never pins a dead
// snapshot's store.
func (c *Chaser) Release() {
	c.eng = nil
	c.dict = nil          // don't pin a dead snapshot's dictionary arena
	c.noPrefilter = false // a pooled chaser always starts filtered
	for i := range c.handles {
		c.handles[i] = master.RuleHandle{}
	}
	c.prog.pool.put(c)
}

// rebind points the chaser at an engine view, re-resolving every rule
// handle against that view's store. The engine must share c.prog (all
// snapshots of one engine do); scratch state carries over untouched.
func (c *Chaser) rebind(e *Engine) {
	c.eng = e
	c.dict = e.store.Dict()
	for i := range c.prog.rules {
		c.handles[i] = e.store.HandleByKey(c.prog.rules[i].handleKey)
	}
}

// Chase runs the compiled chase on a copy of t, starting from the
// validated attribute set. The result is freshly allocated and safe
// to retain (the pipeline's resequencing window holds many at once);
// use ChaseScratch when the result is consumed before the next call.
// Results are byte-identical to Engine.ChaseLegacy.
func (c *Chaser) Chase(t *schema.Tuple, validated schema.AttrSet) *ChaseResult {
	res := &ChaseResult{Tuple: t.Clone(), Validated: validated}
	c.run(res)
	return res
}

// ChaseScratch is Chase into the Chaser's reusable result: the
// returned ChaseResult — its tuple, changes and conflicts included —
// is valid only until the next call on this Chaser. In steady state
// (buffers warmed, rule-index access path, no conflicts) a call
// performs zero heap allocations; the benchmark suite asserts this.
func (c *Chaser) ChaseScratch(t *schema.Tuple, validated schema.AttrSet) *ChaseResult {
	if c.scratchRes.Tuple == nil {
		c.scratchRes.Tuple = &c.scratchTuple
	}
	return c.ChaseInto(&c.scratchRes, t, validated)
}

// ChaseInto is ChaseScratch into a caller-owned result: the chase runs
// on a copy of t written into dst, reusing every buffer dst already
// carries — its tuple's value slice and its change/conflict capacity
// survive across calls, so arenas of ChaseResults (the batch
// pipeline's per-window result slots) reach zero steady-state
// allocations the same way the Chaser's own scratch does. dst is
// overwritten wholesale; whatever it references is invalid the moment
// the caller reuses it. A nil dst.Tuple gets one allocated on first
// use. Returns dst. Results are byte-identical to Engine.ChaseLegacy.
func (c *Chaser) ChaseInto(dst *ChaseResult, t *schema.Tuple, validated schema.AttrSet) *ChaseResult {
	tu := dst.Tuple
	if tu == nil {
		tu = &schema.Tuple{}
		dst.Tuple = tu
	}
	if cap(tu.Vals) < len(t.Vals) {
		tu.Vals = make(value.List, len(t.Vals))
	}
	tu.Vals = tu.Vals[:len(t.Vals)]
	copy(tu.Vals, t.Vals)
	tu.Schema = t.Schema
	tu.ID = t.ID
	dst.Validated = validated
	dst.Changes = dst.Changes[:0]
	dst.Conflicts = dst.Conflicts[:0]
	dst.Rounds = 0
	c.run(dst)
	return dst
}

// SetPrefilter enables or disables the premise prefilter for this
// chaser. Disabling it never changes any chase result — the prefilter
// only skips rules the agenda would have evaluated to no-fire (the
// parity sweep in prefilter_test.go pins this) — it just restores the
// pre-prefilter amount of per-rule work, which the e13 benchmark
// measures against. Release resets the chaser to filtered.
func (c *Chaser) SetPrefilter(on bool) { c.noPrefilter = !on }

// buildSkip computes the chase's skip set: rules that, were the agenda
// to evaluate them, would provably return no-fire without side
// effects, decided once per chase instead of once per evaluation.
//
// Soundness rests on stability: a prefilter position's value must be
// the value evaluate() would see. Positions validated at seed are
// immutable (evaluate never writes a validated cell); positions
// outside anyTargets are never written by any rule. All other
// positions contribute nothing to the skip set. For a stable position,
//
//   - a failing pattern condition means matches() returns false
//     whenever the rule is evaluated — evaluate()'s first exit, taken
//     before any side effect;
//   - a value absent from the store's interning dictionary cannot
//     equal any master cell (PrepareForRules indexes every rule's
//     match columns in every mode, and index maintenance interns each
//     cell), so every lookup probing the position returns NoMatch on
//     every access path — evaluate()'s second silent exit.
//
// Statically unsatisfiable patterns (staticSkip) are the degenerate
// tuple-independent case of the first argument.
func (c *Chaser) buildSkip(res *ChaseResult) {
	p := c.prog
	if c.noPrefilter {
		for i := range c.skip {
			c.skip[i] = 0
		}
		return
	}
	copy(c.skip, p.staticSkip)
	// Match masks first: one dictionary lookup per stable position
	// covers every rule probing it — the prefilter's economy of scale.
	for i := range p.prefAttrs {
		pa := &p.prefAttrs[i]
		if pa.matchMask == nil {
			continue
		}
		if !res.Validated.Has(pa.pos) && p.anyTargets.Has(pa.pos) {
			continue // value may change mid-chase; not prefilterable
		}
		if _, ok := c.dict.LookupV(res.Tuple.Vals[pa.pos]); !ok {
			for w := range c.skip {
				c.skip[w] |= pa.matchMask[w]
			}
		}
	}
	// Conditions second, and only for rules the masks left alive: a
	// condition probe here costs the same as evaluate()'s own matches()
	// walk, so re-deciding an already-skipped rule is pure waste.
	for i := range p.prefAttrs {
		pa := &p.prefAttrs[i]
		if len(pa.conds) == 0 {
			continue
		}
		if !res.Validated.Has(pa.pos) && p.anyTargets.Has(pa.pos) {
			continue
		}
		v := res.Tuple.Vals[pa.pos]
		for j := range pa.conds {
			pc := &pa.conds[j]
			if c.skip[pc.rule>>6]&(1<<uint(pc.rule&63)) == 0 && !pc.cond.Matches(v, pc.dom) {
				c.skip[pc.rule>>6] |= 1 << uint(pc.rule&63)
			}
		}
	}
}

// run executes the agenda loop. The scheduling reproduces the legacy
// round-robin scan exactly:
//
//   - a rule is evaluated at most once per chase, at the first moment
//     its premise X ∪ Xp is fully validated. Premise attributes are
//     immutable once validated, so a premise-satisfied rule's pattern
//     and master lookup outcomes are fixed from that moment on, and
//     re-scanning it (as the legacy loop does every round) can never
//     produce anything new — the single evaluation is exhaustive;
//   - within a round, ready rules evaluate in rule-set order. A rule
//     made ready by a firing at position p joins the CURRENT round if
//     its position follows p (the legacy scan would still reach it)
//     and the NEXT round otherwise;
//   - the round counter advances exactly when the legacy pass flag
//     would: a round with no productive evaluation is terminal.
func (c *Chaser) run(res *ChaseResult) {
	p := c.prog
	for i := range c.cur {
		c.cur[i], c.next[i] = 0, 0
	}
	c.skipped, c.evaluated = 0, 0
	c.buildSkip(res)
	// Seed: per-rule missing-premise counts under the initial
	// validated set; rules already satisfied form round 1's agenda —
	// unless prefiltered, in which case they never enter it.
	for i := range p.rules {
		miss := int32(p.rules[i].premise.Minus(res.Validated).Count())
		c.missing[i] = miss
		if miss == 0 {
			if c.skip[i>>6]&(1<<uint(i&63)) != 0 {
				c.skipped++
				continue
			}
			c.cur[i>>6] |= 1 << uint(i&63)
		}
	}
	round := 1
	for {
		progressed := false
		for w := 0; w < len(c.cur); w++ {
			for c.cur[w] != 0 {
				b := bits.TrailingZeros64(c.cur[w])
				c.cur[w] &^= 1 << uint(b)
				// Firings enqueue later-positioned rules into cur, so
				// re-reading cur[w] (and continuing to later words)
				// picks them up within this round, in position order.
				c.evaluated++
				if c.evaluate(w<<6|b, round, res) {
					progressed = true
				}
			}
		}
		res.Rounds = round
		if !progressed {
			res.Stats = ChaseStats{RulesSkipped: c.skipped, RulesEvaluated: c.evaluated}
			p.skipped.Add(int64(c.skipped))
			p.evaluated.Add(int64(c.evaluated))
			return
		}
		round++
		// cur is fully drained (all zeros): swap in the next round's
		// agenda and reuse cur's storage for the round after.
		c.cur, c.next = c.next, c.cur
	}
}

// evaluate applies rule ri (premise known satisfied), returning
// whether it made progress. Single master lookup per evaluation: the
// same probe serves fixing, the contradiction sweep over validated
// targets and ambiguity detection.
func (c *Chaser) evaluate(ri, round int, res *ChaseResult) bool {
	cr := &c.prog.rules[ri]
	if !cr.matches(res.Tuple) {
		return false
	}
	rhs, witness, status := c.lookup(ri, cr, res.Tuple)
	switch status {
	case master.NoMatch:
		return false
	case master.Conflict:
		// When every target is already validated the rule has nothing
		// left to fix and the ambiguity is moot — the legacy loop
		// skips silently (its all-validated short-circuit), so the
		// compiled path must too.
		if res.Validated.ContainsAll(cr.targets) {
			return false
		}
		res.Conflicts = append(res.Conflicts, Conflict{
			Kind:   MasterAmbiguous,
			RuleID: cr.id,
			Detail: fmt.Sprintf("key %v on %v", res.Tuple.Project(cr.matchInputAttrs).Strings(), cr.matchMasterAttrs),
		})
		return false
	}
	progressed := false
	for i, bi := range cr.targetInputPos {
		want := rhs[i]
		have := res.Tuple.Vals[bi]
		if res.Validated.Has(bi) {
			if have != want {
				res.Conflicts = append(res.Conflicts, Conflict{
					Kind:     ValidatedContradiction,
					RuleID:   cr.id,
					Attr:     cr.src.Set[i].Input,
					Have:     have,
					Want:     want,
					MasterID: witness,
				})
			}
			continue
		}
		res.Tuple.Vals[bi] = want
		res.Validated = res.Validated.With(bi)
		res.Changes = append(res.Changes, Change{
			Attr:     cr.src.Set[i].Input,
			Old:      have,
			New:      want,
			Source:   SourceRule,
			RuleID:   cr.id,
			MasterID: witness,
			Round:    round,
		})
		progressed = true
		// Agenda maintenance: bi just went unvalidated → validated, so
		// every rule with bi in its premise moves one attribute closer
		// to readiness. (Already-evaluated rules can't appear here:
		// their premises were fully validated, bi wasn't.)
		for _, rj := range c.prog.deps[bi] {
			c.missing[rj]--
			if c.missing[rj] == 0 {
				if c.skip[rj>>6]&(1<<uint(rj&63)) != 0 {
					c.skipped++
					continue
				}
				if int(rj) > ri {
					c.cur[rj>>6] |= 1 << uint(rj&63)
				} else {
					c.next[rj>>6] |= 1 << uint(rj&63)
				}
			}
		}
	}
	return progressed
}

// lookup performs the rule's unique-RHS probe. On the rule-index
// access path the key sym-encodes into the Chaser's scratch buffer —
// one lock-free dictionary hit per match attribute — and the
// pre-resolved handle answers in O(1) with no allocation. A probe
// value the dictionary has never seen short-circuits to NoMatch for
// registered pairs (no master tuple carries it); other modes and
// unregistered ad-hoc pairs take the store's general path,
// byte-identical to the legacy engine's.
func (c *Chaser) lookup(ri int, cr *compiledRule, t *schema.Tuple) (value.List, int64, master.LookupStatus) {
	if c.eng.store.Mode() == master.ModeRuleIndex {
		var encoded bool
		c.keyBuf, encoded = master.AppendProbeKey(c.dict, c.keyBuf[:0], t, cr.matchInputPos)
		if rhs, witness, status, ok := c.handles[ri].Lookup(c.keyBuf, encoded); ok {
			return rhs, witness, status
		}
	}
	return c.eng.store.UniqueRHS(cr.matchMasterAttrs, t.ProjectAt(cr.matchInputPos), cr.rhsMasterAttrs)
}
