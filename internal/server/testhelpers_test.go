package server

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// postJSON and decodeJSONBody support goroutine-safe test traffic.
func postJSON(url string, body any) (*http.Response, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
	}
	return http.Post(url, "application/json", &buf)
}

func decodeJSONBody(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}
