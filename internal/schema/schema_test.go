package schema

import (
	"strings"
	"testing"

	"cerfix/internal/value"
)

func custSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New("CUST",
		Str("FN"), Str("LN"), Str("AC"), Str("phn"),
		Str("type"), Str("str"), Str("city"), Str("zip"), Str("item"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("R"); err == nil {
		t.Error("zero attributes accepted")
	}
	if _, err := New("R", Str("a"), Str("a")); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := New("R", Attribute{Name: ""}); err == nil {
		t.Error("empty attribute name accepted")
	}
	attrs := make([]Attribute, MaxAttrs+1)
	for i := range attrs {
		attrs[i] = Str(strings.Repeat("a", i+1))
	}
	if _, err := New("R", attrs...); err == nil {
		t.Error("oversized schema accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid schema")
		}
	}()
	MustNew("")
}

func TestSchemaAccessors(t *testing.T) {
	s := custSchema(t)
	if s.Name() != "CUST" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Len() != 9 {
		t.Errorf("Len = %d", s.Len())
	}
	if i, ok := s.Index("zip"); !ok || i != 7 {
		t.Errorf("Index(zip) = %d, %v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index found missing attribute")
	}
	if !s.Has("FN") || s.Has("xx") {
		t.Error("Has misbehaved")
	}
	if s.MustIndex("item") != 8 {
		t.Error("MustIndex(item) wrong")
	}
	names := s.AttrNames()
	if len(names) != 9 || names[0] != "FN" || names[8] != "item" {
		t.Errorf("AttrNames = %v", names)
	}
	if got := s.String(); got != "CUST(FN,LN,AC,phn,type,str,city,zip,item)" {
		t.Errorf("String = %q", got)
	}
	if s.Domain("FN") != value.DString {
		t.Error("Domain(FN) wrong")
	}
	// Attrs returns a copy: mutating it must not affect the schema.
	a := s.Attrs()
	a[0].Name = "HACKED"
	if s.Attr(0).Name != "FN" {
		t.Error("Attrs leaked internal state")
	}
}

func TestMustIndexPanics(t *testing.T) {
	s := custSchema(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex did not panic")
		}
	}()
	s.MustIndex("missing")
}

func TestTupleBasics(t *testing.T) {
	s := custSchema(t)
	tu, err := NewTuple(s, "Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD")
	if err != nil {
		t.Fatal(err)
	}
	if tu.Get("city") != "Edi" {
		t.Errorf("Get(city) = %q", tu.Get("city"))
	}
	tu.Set("city", "Ldn")
	if tu.Get("city") != "Ldn" {
		t.Error("Set did not stick")
	}
	if tu.At(0) != "Bob" {
		t.Error("At(0) wrong")
	}
	if _, err := NewTuple(s, "too", "few"); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestMustTuplePanics(t *testing.T) {
	s := custSchema(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustTuple did not panic")
		}
	}()
	MustTuple(s, "only-one")
}

func TestTupleFromMap(t *testing.T) {
	s := custSchema(t)
	tu, err := TupleFromMap(s, map[string]string{"FN": "Bob", "zip": "EH8 4AH"})
	if err != nil {
		t.Fatal(err)
	}
	if tu.Get("FN") != "Bob" || tu.Get("zip") != "EH8 4AH" {
		t.Error("values not mapped")
	}
	if !tu.Get("LN").IsNull() {
		t.Error("absent attribute not null")
	}
	if _, err := TupleFromMap(s, map[string]string{"bogus": "x"}); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	s := custSchema(t)
	orig := MustTuple(s, "Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD")
	cp := orig.Clone()
	cp.Set("FN", "Robert")
	if orig.Get("FN") != "Bob" {
		t.Fatal("Clone shares storage with original")
	}
	if !cp.Equal(cp.Clone()) {
		t.Fatal("clone of clone differs")
	}
}

func TestTupleEqualAndDiff(t *testing.T) {
	s := custSchema(t)
	a := MustTuple(s, "Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clones unequal")
	}
	b.Set("AC", "131")
	b.Set("FN", "Robert")
	if a.Equal(b) {
		t.Fatal("modified tuple equal")
	}
	diff := a.DiffAttrs(b)
	if len(diff) != 2 || diff[0] != "AC" || diff[1] != "FN" {
		t.Fatalf("DiffAttrs = %v", diff)
	}
}

func TestTupleProjectAndMap(t *testing.T) {
	s := custSchema(t)
	tu := MustTuple(s, "Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD")
	p := tu.Project([]string{"zip", "AC"})
	if len(p) != 2 || p[0] != "EH8 4AH" || p[1] != "020" {
		t.Fatalf("Project = %v", p)
	}
	m := tu.Map()
	if m["city"] != "Edi" || len(m) != 9 {
		t.Fatalf("Map = %v", m)
	}
	if !strings.Contains(tu.String(), "city=Edi") {
		t.Errorf("String = %q", tu.String())
	}
}

// ProjectAt and AppendKeyAt are the position-resolved siblings of
// Project and Project(...).Key(): same values, same bytes.
func TestTupleProjectAtAndAppendKeyAt(t *testing.T) {
	s := custSchema(t)
	tu := MustTuple(s, "Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD")
	names := []string{"zip", "AC", "FN"}
	positions := make([]int, len(names))
	for i, n := range names {
		positions[i] = s.MustIndex(n)
	}
	want := tu.Project(names)
	if got := tu.ProjectAt(positions); !got.Equal(want) {
		t.Fatalf("ProjectAt = %v, want %v", got, want)
	}
	if got := string(tu.AppendKeyAt(nil, positions)); got != want.Key() {
		t.Fatalf("AppendKeyAt = %q, want %q", got, want.Key())
	}
	// Appends extend an existing buffer.
	buf := tu.AppendKeyAt([]byte("x"), positions)
	if string(buf) != "x"+want.Key() {
		t.Fatalf("AppendKeyAt clobbered the buffer: %q", buf)
	}
	// Empty projection encodes to nothing.
	if got := tu.AppendKeyAt(nil, nil); len(got) != 0 {
		t.Fatalf("empty AppendKeyAt = %q", got)
	}
}
