package core

import (
	"fmt"
	"reflect"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// The compiled/legacy parity suite: the compiled agenda chase (Chase,
// Chaser.Chase, Chaser.ChaseScratch) must reproduce the legacy
// round-robin loop (ChaseLegacy) byte for byte — same fixed tuple,
// same validated set, same changes in the same order with the same
// Round stamps, same conflicts in the same order, same Rounds — for
// arbitrary schemas, rule sets, master contents, inputs and seeds,
// across every master access path.

// assertSameResult deep-compares two chase results.
func assertSameResult(t *testing.T, label string, got, want *ChaseResult) {
	t.Helper()
	if !got.Tuple.Equal(want.Tuple) {
		t.Fatalf("%s: tuple %v != legacy %v", label, got.Tuple, want.Tuple)
	}
	if got.Validated != want.Validated {
		t.Fatalf("%s: validated %v != legacy %v", label, got.Validated, want.Validated)
	}
	// ChaseScratch reuses buffers, so an empty slice may be non-nil
	// where the allocating paths leave nil: element equality is the
	// contract, not backing-array identity.
	if len(got.Changes) != len(want.Changes) ||
		(len(got.Changes) > 0 && !reflect.DeepEqual(got.Changes, want.Changes)) {
		t.Fatalf("%s: changes diverge\ncompiled: %+v\nlegacy:   %+v", label, got.Changes, want.Changes)
	}
	if len(got.Conflicts) != len(want.Conflicts) ||
		(len(got.Conflicts) > 0 && !reflect.DeepEqual(got.Conflicts, want.Conflicts)) {
		t.Fatalf("%s: conflicts diverge\ncompiled: %+v\nlegacy:   %+v", label, got.Conflicts, want.Conflicts)
	}
	if got.Rounds != want.Rounds {
		t.Fatalf("%s: rounds %d != legacy %d", label, got.Rounds, want.Rounds)
	}
}

// randomWorld builds a random (schemas, rules, master, inputs) setup.
// Small value alphabets force key collisions (MasterAmbiguous) and
// wrong seed-validated cells (ValidatedContradiction); random pattern
// conditions exercise the compiled matcher, including multi-round
// premise chains through pattern scopes.
type randomWorld struct {
	eng    *Engine
	inputs []*schema.Tuple
	rng    *textutil.RNG
}

func newRandomWorld(t *testing.T, seed uint64) *randomWorld {
	t.Helper()
	rng := textutil.NewRNG(seed)
	width := 4 + rng.Intn(6) // 4..9 attributes
	inAttrs := make([]schema.Attribute, width)
	mAttrs := make([]schema.Attribute, width)
	for i := range inAttrs {
		inAttrs[i] = schema.Str(fmt.Sprintf("a%d", i))
		mAttrs[i] = schema.Str(fmt.Sprintf("m%d", i))
	}
	input := schema.MustNew("IN", inAttrs...)
	msch := schema.MustNew("MD", mAttrs...)

	alphabet := 2 + rng.Intn(3) // 2..4 distinct values per column
	randVal := func() value.V { return value.V(fmt.Sprintf("c%d", rng.Intn(alphabet))) }

	st := master.New(msch)
	rows := 3 + rng.Intn(25)
	for r := 0; r < rows; r++ {
		vals := make(value.List, width)
		for i := range vals {
			vals[i] = randVal()
		}
		if _, err := st.InsertValues(vals...); err != nil {
			t.Fatal(err)
		}
	}

	pickDistinct := func(n int) []int {
		perm := rng.Perm(width)
		return perm[:n]
	}
	nRules := 1 + rng.Intn(12)
	var rules []*rule.Rule
	for ri := 0; ri < nRules; ri++ {
		nMatch := 1 + rng.Intn(2)
		nSet := 1 + rng.Intn(2)
		pos := pickDistinct(min(nMatch+nSet, width))
		if len(pos) < 2 {
			continue // need at least one match and one set attribute
		}
		nMatch = min(nMatch, len(pos)-1)
		r := &rule.Rule{ID: fmt.Sprintf("r%d", ri)}
		for _, p := range pos[:nMatch] {
			r.Match = append(r.Match, rule.Correspondence{Input: fmt.Sprintf("a%d", p), Master: fmt.Sprintf("m%d", p)})
		}
		for _, p := range pos[nMatch:] {
			r.Set = append(r.Set, rule.Correspondence{Input: fmt.Sprintf("a%d", p), Master: fmt.Sprintf("m%d", p)})
		}
		if rng.Bool(0.4) {
			attr := fmt.Sprintf("a%d", rng.Intn(width))
			switch rng.Intn(4) {
			case 0:
				r.When = pattern.NewPattern(pattern.Eq(attr, randVal()))
			case 1:
				r.When = pattern.NewPattern(pattern.Ne(attr, randVal()))
			case 2:
				r.When = pattern.NewPattern(pattern.In(attr, randVal(), randVal()))
			default:
				r.When = pattern.NewPattern(pattern.Any(attr))
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		rules = append(rules, &rule.Rule{
			ID:    "r0",
			Match: []rule.Correspondence{{Input: "a0", Master: "m0"}},
			Set:   []rule.Correspondence{{Input: "a1", Master: "m1"}},
		})
	}
	rs, err := rule.NewSet(rules...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(input, rs, st)
	if err != nil {
		t.Fatal(err)
	}

	nInputs := 10 + rng.Intn(15)
	inputs := make([]*schema.Tuple, nInputs)
	for i := range inputs {
		vals := make(value.List, width)
		for j := range vals {
			vals[j] = randVal()
		}
		inputs[i] = &schema.Tuple{Schema: input, Vals: vals}
	}
	return &randomWorld{eng: eng, inputs: inputs, rng: rng}
}

// TestCompiledLegacyParityRandom is the randomized parity sweep: many
// random worlds, every lookup mode, random seeds, three compiled
// entry points against the legacy oracle.
func TestCompiledLegacyParityRandom(t *testing.T) {
	modes := []master.LookupMode{master.ModeRuleIndex, master.ModePlainIndex, master.ModeScan}
	for trial := uint64(0); trial < 40; trial++ {
		w := newRandomWorld(t, 1000+trial)
		mode := modes[trial%3]
		w.eng.Master().SetMode(mode)
		chaser := w.eng.NewChaser()
		scratcher := w.eng.NewChaser()
		for i, in := range w.inputs {
			seed := schema.EmptySet
			for p := 0; p < w.eng.InputSchema().Len(); p++ {
				if w.rng.Bool(0.45) {
					seed = seed.With(p)
				}
			}
			label := fmt.Sprintf("trial %d mode %s tuple %d seed %v", trial, mode, i, seed)
			want := w.eng.ChaseLegacy(in, seed)
			assertSameResult(t, label+" [Engine.Chase]", w.eng.Chase(in, seed), want)
			assertSameResult(t, label+" [Chaser.Chase]", chaser.Chase(in, seed), want)
			assertSameResult(t, label+" [ChaseScratch]", scratcher.ChaseScratch(in, seed), want)
		}
	}
}

// TestCompiledLegacyParitySnapshots pins parity on frozen engine
// views — the handle fast path resolves the rule index directly there,
// which is the access path of the batch pipeline and job runners.
func TestCompiledLegacyParitySnapshots(t *testing.T) {
	for trial := uint64(0); trial < 10; trial++ {
		w := newRandomWorld(t, 9000+trial)
		snap := w.eng.Snapshot()
		chaser := snap.NewChaser()
		for i, in := range w.inputs {
			seed := schema.EmptySet
			for p := 0; p < w.eng.InputSchema().Len(); p++ {
				if w.rng.Bool(0.45) {
					seed = seed.With(p)
				}
			}
			want := snap.ChaseLegacy(in, seed)
			assertSameResult(t, fmt.Sprintf("trial %d tuple %d [snapshot]", trial, i),
				chaser.ChaseScratch(in, seed), want)
		}
	}
}

// TestCompiledLegacyParityDemo pins parity on the paper's demo
// configuration and the generated CUST workload — the fixtures every
// other suite leans on.
func TestCompiledLegacyParityDemo(t *testing.T) {
	e := demoEngine(t)
	fullSeeds := []schema.AttrSet{
		schema.EmptySet,
		validatedSet(t, e, "zip"),
		validatedSet(t, e, "AC", "phn", "type", "item"),
		validatedSet(t, e, "AC", "phn", "type", "item", "zip"),
		schema.FullSet(e.InputSchema()),
	}
	for _, in := range []*schema.Tuple{dataset.DemoInputExample1(), dataset.DemoInputFig3()} {
		for _, seed := range fullSeeds {
			assertSameResult(t, fmt.Sprintf("demo seed %v", seed),
				e.Chase(in, seed), e.ChaseLegacy(in, seed))
		}
	}

	g := dataset.NewCustomerGen(17)
	w, err := g.GenerateWorkload(40, 80, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	rng := textutil.NewRNG(23)
	chaser := eng.NewChaser()
	for i, in := range w.Dirty {
		seed := randomSeedSet(rng, eng.InputSchema())
		assertSameResult(t, fmt.Sprintf("workload tuple %d", i),
			chaser.Chase(in, seed), eng.ChaseLegacy(in, seed))
	}
}

// TestChaseScratchReuse pins the ChaseScratch contract: the result is
// overwritten by the next call (so callers must consume it first) and
// the input tuple is never mutated.
func TestChaseScratchReuse(t *testing.T) {
	e := demoEngine(t)
	ch := e.NewChaser()
	in := dataset.DemoInputFig3()
	orig := in.Clone()
	seed := validatedSet(t, e, "AC", "phn", "type", "item", "zip")
	r1 := ch.ChaseScratch(in, seed)
	if !r1.AllValidated() {
		t.Fatal("demo chase incomplete")
	}
	fixed := r1.Tuple.Clone()
	r2 := ch.ChaseScratch(dataset.DemoInputExample1(), validatedSet(t, e, "zip"))
	if r1 != r2 {
		t.Fatal("ChaseScratch should return the same reusable result")
	}
	if r1.Tuple.Equal(fixed) {
		t.Fatal("second ChaseScratch left the first result intact — reuse contract untested")
	}
	if !in.Equal(orig) {
		t.Fatal("ChaseScratch mutated its input tuple")
	}
}

// TestCompiledAgendaSkipsUnreadyRules is the scheduling regression:
// with a large rule set whose premises are unreachable from the seed,
// the agenda must still terminate in one round with nothing fired
// (the legacy loop scans them all; both agree on the result).
func TestCompiledAgendaSkipsUnreadyRules(t *testing.T) {
	const width = 12
	attrs := make([]schema.Attribute, width)
	for i := range attrs {
		attrs[i] = schema.Str(fmt.Sprintf("a%d", i))
	}
	sch := schema.MustNew("W", attrs...)
	rs, err := rule.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	// 80 rules, all keyed off a11 — never validated below.
	for i := 0; i < 80; i++ {
		r := &rule.Rule{
			ID:    fmt.Sprintf("r%03d", i),
			Match: []rule.Correspondence{{Input: "a11", Master: "a11"}},
			Set:   []rule.Correspondence{{Input: fmt.Sprintf("a%d", i%10), Master: fmt.Sprintf("a%d", i%10)}},
		}
		if err := rs.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	st := master.New(sch)
	vals := make(value.List, width)
	for i := range vals {
		vals[i] = value.V(fmt.Sprintf("v%d", i))
	}
	if _, err := st.InsertValues(vals...); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sch, rs, st)
	if err != nil {
		t.Fatal(err)
	}
	in := &schema.Tuple{Schema: sch, Vals: make(value.List, width)}
	res := eng.Chase(in, schema.SetOf(0, 1))
	if res.Rounds != 1 || len(res.Changes) != 0 {
		t.Fatalf("rounds=%d changes=%d, want an immediate fixpoint", res.Rounds, len(res.Changes))
	}
	assertSameResult(t, "unready rules", res, eng.ChaseLegacy(in, schema.SetOf(0, 1)))
}
