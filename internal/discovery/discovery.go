// Package discovery implements profiling of master data to find the
// integrity constraints editing rules can be derived from. The paper
// notes that eRs "may either be designed by experts or be discovered
// from cfds or mds ... for which discovery algorithms are already in
// place" (§3); this package provides that missing substrate:
//
//   - functional-dependency discovery X → A over a relation instance
//     (levelwise search over LHS candidates up to a size bound, with
//     minimality pruning);
//   - constant-CFD discovery (X = c̄ → A = a) with support/confidence
//     thresholds, the class ψ1/ψ2 of the paper's Example 1 belong to;
//   - a pipeline that turns discovered dependencies into editing rules
//     via cfd.DeriveRules.
//
// Discovery is exact on the given instance (dependencies hold with the
// required confidence on the data); as always with instance-based
// profiling, the results are hypotheses to be reviewed — which is why
// CerFix surfaces them in the rule manager rather than auto-installing
// them.
package discovery

import (
	"fmt"
	"sort"

	"cerfix/internal/cfd"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Options bounds the search.
type Options struct {
	// MaxLHS caps the size of discovered left-hand sides (default 2).
	MaxLHS int
	// MinSupport is the minimum number of rows a constant pattern must
	// cover (default 2).
	MinSupport int
	// MinConfidence is the fraction of covered rows that must agree on
	// the RHS constant (default 1.0 — exact CFDs).
	MinConfidence float64
}

func (o *Options) withDefaults() Options {
	out := Options{MaxLHS: 2, MinSupport: 2, MinConfidence: 1.0}
	if o == nil {
		return out
	}
	if o.MaxLHS > 0 {
		out.MaxLHS = o.MaxLHS
	}
	if o.MinSupport > 0 {
		out.MinSupport = o.MinSupport
	}
	if o.MinConfidence > 0 {
		out.MinConfidence = o.MinConfidence
	}
	return out
}

// FD is a discovered functional dependency X → A that holds exactly on
// the profiled instance.
type FD struct {
	// LHS lists the determining attributes (sorted).
	LHS []string
	// RHS is the determined attribute.
	RHS string
}

// String renders "zip,phn -> city".
func (f FD) String() string {
	out := ""
	for i, a := range f.LHS {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out + " -> " + f.RHS
}

// DiscoverFDs finds minimal functional dependencies with |LHS| <=
// opts.MaxLHS holding on rows. Minimality: no proper subset of the LHS
// also determines the RHS (trivial and transitively-implied larger
// LHSs are pruned).
func DiscoverFDs(sch *schema.Schema, rows []*schema.Tuple, opts *Options) []FD {
	o := opts.withDefaults()
	if len(rows) == 0 {
		return nil
	}
	attrs := sch.AttrNames()
	var out []FD
	// found[rhs] records discovered LHS sets for minimality pruning.
	found := make(map[string][]schema.AttrSet)
	for size := 1; size <= o.MaxLHS && size < len(attrs); size++ {
		forEachCombination(len(attrs), size, func(idxs []int) {
			lhs := make([]string, len(idxs))
			for i, ix := range idxs {
				lhs[i] = attrs[ix]
			}
			lhsSet := schema.SetOfNames(sch, lhs...)
			for _, rhs := range attrs {
				if lhsSet.Has(sch.MustIndex(rhs)) {
					continue
				}
				// Minimality: skip if a subset LHS already determines rhs.
				subsumed := false
				for _, prev := range found[rhs] {
					if lhsSet.ContainsAll(prev) {
						subsumed = true
						break
					}
				}
				if subsumed {
					continue
				}
				if holdsFD(rows, lhs, rhs) {
					out = append(out, FD{LHS: lhs, RHS: rhs})
					found[rhs] = append(found[rhs], lhsSet)
				}
			}
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// holdsFD checks X → A exactly on rows.
func holdsFD(rows []*schema.Tuple, lhs []string, rhs string) bool {
	seen := make(map[string]value.V, len(rows))
	for _, t := range rows {
		k := t.Project(lhs).Key()
		v := t.Get(rhs)
		if prev, ok := seen[k]; ok {
			if prev != v {
				return false
			}
			continue
		}
		seen[k] = v
	}
	return true
}

// forEachCombination enumerates size-k index combinations of [0, n).
func forEachCombination(n, k int, fn func([]int)) {
	if k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// ConstantCFD is a discovered constant pattern (X = c̄ → A = a).
type ConstantCFD struct {
	// LHS pairs attributes with their pattern constants.
	LHS []cfd.Atom
	// RHSAttr and RHSConst are the implied attribute and value.
	RHSAttr  string
	RHSConst value.V
	// Support is the number of rows matching the LHS pattern.
	Support int
	// Confidence is the fraction of matching rows with the RHS value.
	Confidence float64
}

// String renders `AC = "020" -> city = "Ldn" [sup=12 conf=1.00]`.
func (c ConstantCFD) String() string {
	out := ""
	for i, a := range c.LHS {
		if i > 0 {
			out += ", "
		}
		out += a.String()
	}
	return fmt.Sprintf("%s -> %s = %q [sup=%d conf=%.2f]",
		out, c.RHSAttr, string(c.RHSConst), c.Support, c.Confidence)
}

// DiscoverConstantCFDs finds single-attribute constant CFDs
// (A = c → B = d) meeting the support and confidence thresholds —
// exactly the ψ1/ψ2 class of the paper's Example 1. (Wider LHSs
// follow from composing with DiscoverFDs; single-attribute patterns
// are what data-quality tools surface to reviewers first.)
func DiscoverConstantCFDs(sch *schema.Schema, rows []*schema.Tuple, opts *Options) []ConstantCFD {
	o := opts.withDefaults()
	if len(rows) == 0 {
		return nil
	}
	attrs := sch.AttrNames()
	var out []ConstantCFD
	for _, lhsAttr := range attrs {
		// Group rows by the LHS value.
		groups := make(map[value.V][]*schema.Tuple)
		for _, t := range rows {
			v := t.Get(lhsAttr)
			groups[v] = append(groups[v], t)
		}
		var lhsVals []value.V
		for v := range groups {
			lhsVals = append(lhsVals, v)
		}
		sort.Slice(lhsVals, func(i, j int) bool { return lhsVals[i] < lhsVals[j] })
		for _, lv := range lhsVals {
			group := groups[lv]
			if len(group) < o.MinSupport || lv.IsNull() {
				continue
			}
			for _, rhsAttr := range attrs {
				if rhsAttr == lhsAttr {
					continue
				}
				counts := make(map[value.V]int)
				for _, t := range group {
					counts[t.Get(rhsAttr)]++
				}
				var best value.V
				bestN := -1
				var rhsVals []value.V
				for v := range counts {
					rhsVals = append(rhsVals, v)
				}
				sort.Slice(rhsVals, func(i, j int) bool { return rhsVals[i] < rhsVals[j] })
				for _, v := range rhsVals {
					if counts[v] > bestN {
						best, bestN = v, counts[v]
					}
				}
				conf := float64(bestN) / float64(len(group))
				if conf >= o.MinConfidence && !best.IsNull() {
					out = append(out, ConstantCFD{
						LHS:        []cfd.Atom{cfd.ConstAtom(lhsAttr, lv)},
						RHSAttr:    rhsAttr,
						RHSConst:   best,
						Support:    len(group),
						Confidence: conf,
					})
				}
			}
		}
	}
	return out
}

// ToCFDs converts discovered FDs into cfd.CFD values (variable CFDs)
// with generated IDs.
func ToCFDs(fds []FD) []*cfd.CFD {
	out := make([]*cfd.CFD, len(fds))
	for i, f := range fds {
		c := &cfd.CFD{ID: fmt.Sprintf("fd%d", i+1)}
		for _, a := range f.LHS {
			c.LHS = append(c.LHS, cfd.VarAtom(a))
		}
		c.RHS = []cfd.Atom{cfd.VarAtom(f.RHS)}
		out[i] = c
	}
	return out
}

// DeriveRulesFromMaster is the full pipeline: profile the master
// relation (same-schema setting), keep FDs whose LHS looks like a key
// for the RHS, and derive editing rules. It returns the rules plus the
// discovered FDs for review.
func DeriveRulesFromMaster(sch *schema.Schema, rows []*schema.Tuple, opts *Options) ([]*rule.Rule, []FD, error) {
	fds := DiscoverFDs(sch, rows, opts)
	cfds := ToCFDs(fds)
	rules, err := cfd.DeriveRules(cfds, sch)
	if err != nil {
		return nil, nil, err
	}
	return rules, fds, nil
}
