package core

import (
	"fmt"
	"strings"

	"cerfix/internal/rule"
	"cerfix/internal/schema"
)

// This file implements derivation plans: the explanation facility
// behind "where the correct values come from" (paper §3, data
// auditing) applied *prospectively*. Given a validated seed set, a plan
// lists the rule applications, in firing order, that the closure
// computation relies on — what the UI shows a user who asks "why is it
// enough to validate these attributes?".

// PlanStep is one rule application in a derivation plan.
type PlanStep struct {
	// RuleID is the editing rule that fires.
	RuleID string
	// Needs lists the premise attributes (X ∪ Xp), sorted.
	Needs []string
	// Gives lists the attributes the step validates (targets not
	// already validated), sorted.
	Gives []string
}

// String renders "phi1: {zip} => {AC}".
func (s PlanStep) String() string {
	return fmt.Sprintf("%s: {%s} => {%s}",
		s.RuleID, strings.Join(s.Needs, ", "), strings.Join(s.Gives, ", "))
}

// Plan computes the derivation plan from seed under the admitted
// rules: the sequence of productive rule applications the closure
// performs, plus whether the plan reaches goal. Rules are considered
// in set order per round (the chase's order), so the plan mirrors what
// the engine will actually do; steps that validate nothing new are
// omitted.
func Plan(input *schema.Schema, rules []*rule.Rule, seed, goal schema.AttrSet, admit RuleFilter) ([]PlanStep, bool) {
	cur := seed
	var steps []PlanStep
	for {
		progressed := false
		for _, r := range rules {
			if admit != nil && !admit(r) {
				continue
			}
			premise := r.PremiseAttrs(input)
			if !cur.ContainsAll(premise) {
				continue
			}
			targets := r.TargetAttrs(input)
			gives := targets.Minus(cur)
			if gives.IsEmpty() {
				continue
			}
			steps = append(steps, PlanStep{
				RuleID: r.ID,
				Needs:  premise.SortedNames(input),
				Gives:  gives.SortedNames(input),
			})
			cur = cur.Union(targets)
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return steps, cur.ContainsAll(goal)
}

// ExplainSuggestion renders why validating the suggested attributes
// completes a tuple: the suggestion itself plus the plan that follows.
// Used by the CLI's regions/monitor views.
func ExplainSuggestion(input *schema.Schema, rules []*rule.Rule, validated, suggestion schema.AttrSet, admit RuleFilter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "validate %s", suggestion.Format(input))
	steps, complete := Plan(input, rules, validated.Union(suggestion), schema.FullSet(input), admit)
	for _, s := range steps {
		fmt.Fprintf(&b, "\n  then %s", s)
	}
	if !complete {
		b.WriteString("\n  (does not complete the tuple)")
	}
	return b.String()
}
