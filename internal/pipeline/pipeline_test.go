package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/schema"
)

// workloadEngine builds a generated CUST workload plus its engine.
func workloadEngine(t testing.TB, entities, inputs int) (*core.Engine, []*schema.Tuple, schema.AttrSet) {
	t.Helper()
	g := dataset.NewCustomerGen(7)
	w, err := g.GenerateWorkload(entities, inputs, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w.Dirty, schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
}

// TestPipelineDeterministic is the core guarantee: at 8 workers the
// pipeline's output — every fixed value, validated set, change list,
// conflict list, in input order — equals the sequential engine path
// byte for byte.
func TestPipelineDeterministic(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 60, 400)

	// Sequential reference.
	want := make([]*core.ChaseResult, len(dirty))
	for i, tu := range dirty {
		want[i] = eng.Chase(tu, seed)
	}

	for _, workers := range []int{1, 3, 8} {
		sink := &SliceSink{}
		stats, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), sink,
			&Options{Workers: workers, ChunkSize: 5, Window: 40})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Tuples != len(dirty) || stats.Workers != workers {
			t.Fatalf("workers=%d: stats = %+v", workers, stats)
		}
		if len(sink.Results) != len(dirty) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(sink.Results), len(dirty))
		}
		for i, r := range sink.Results {
			if r.Seq != i {
				t.Fatalf("workers=%d: result %d has seq %d (order broken)", workers, i, r.Seq)
			}
			if !r.Fixed.Equal(want[i].Tuple) {
				t.Fatalf("workers=%d tuple %d: fixed %v, want %v", workers, i, r.Fixed, want[i].Tuple)
			}
			if r.Chase.Validated != want[i].Validated {
				t.Fatalf("workers=%d tuple %d: validated %v, want %v",
					workers, i, r.Chase.Validated, want[i].Validated)
			}
			if !reflect.DeepEqual(r.Chase.Changes, want[i].Changes) {
				t.Fatalf("workers=%d tuple %d: changes differ\n got %+v\nwant %+v",
					workers, i, r.Chase.Changes, want[i].Changes)
			}
			if !reflect.DeepEqual(r.Chase.Conflicts, want[i].Conflicts) {
				t.Fatalf("workers=%d tuple %d: conflicts differ", workers, i)
			}
			if r.Chase.Rounds != want[i].Rounds {
				t.Fatalf("workers=%d tuple %d: rounds %d, want %d",
					workers, i, r.Chase.Rounds, want[i].Rounds)
			}
		}
	}
}

// The stats mirror what a sequential loop would count.
func TestPipelineStats(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 40, 200)
	wantStats := Stats{Workers: 4}
	for _, tu := range dirty {
		res := eng.Chase(tu, seed)
		wantStats.Tuples++
		if res.AllValidated() && len(res.Conflicts) == 0 {
			wantStats.FullyValidated++
		}
		if len(res.Conflicts) > 0 {
			wantStats.WithConflicts++
		}
		wantStats.CellsRewritten += len(res.Rewrites())
	}
	got, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), Discard, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantStats {
		t.Fatalf("stats = %+v, want %+v", got, wantStats)
	}
}

// A tiny in-flight window on a large input must still complete (the
// backpressure bound throttles, never deadlocks) and preserve order.
func TestPipelineTinyWindow(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 30, 500)
	sink := &SliceSink{}
	stats, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), sink,
		&Options{Workers: 8, Window: 1, ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != len(dirty) {
		t.Fatalf("processed %d of %d", stats.Tuples, len(dirty))
	}
	for i, r := range sink.Results {
		if r.Seq != i {
			t.Fatalf("result %d has seq %d", i, r.Seq)
		}
	}
}

// Source errors abort the run and surface to the caller.
func TestPipelineSourceError(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 10, 10)
	src := &errAfterSource{tuples: dirty, errAt: 5}
	_, err := Run(context.Background(), eng, seed, src, Discard, &Options{Workers: 4})
	if err == nil || !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
}

var errBoom = errors.New("boom")

type errAfterSource struct {
	tuples []*schema.Tuple
	pos    int
	errAt  int
}

func (s *errAfterSource) Next() (*schema.Tuple, error) {
	if s.pos >= s.errAt {
		return nil, errBoom
	}
	if s.pos >= len(s.tuples) {
		return nil, io.EOF
	}
	tu := s.tuples[s.pos]
	s.pos++
	return tu, nil
}

// Sink errors abort the run, even with many tuples still in flight.
func TestPipelineSinkError(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 30, 300)
	n := 0
	sink := SinkFunc(func(*Result) error {
		n++
		if n == 10 {
			return errBoom
		}
		return nil
	})
	_, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), sink, &Options{Workers: 8, Window: 16})
	if err == nil || !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
}

// An empty source is a clean no-op.
func TestPipelineEmpty(t *testing.T) {
	eng, _, seed := workloadEngine(t, 5, 1)
	stats, err := Run(context.Background(), eng, seed, NewSliceSource(nil), Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// The pipeline against a snapshot engine is unaffected by concurrent
// mutation of the live system (run under -race this is the isolation
// proof at the engine layer).
func TestPipelineAgainstSnapshotUnderMutation(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 40, 200)
	snap := eng.Snapshot()
	want := make([]*core.ChaseResult, len(dirty))
	for i, tu := range dirty {
		want[i] = snap.Chase(tu, seed)
	}
	stop := make(chan struct{})
	go func() {
		g := dataset.NewCustomerGen(99)
		rows := g.GenerateEntities(200)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Master().InsertValues(rows[i%len(rows)].Master...); err != nil {
				panic(err)
			}
		}
	}()
	sink := &SliceSink{}
	_, err := Run(context.Background(), snap, seed, NewSliceSource(dirty), sink, &Options{Workers: 8})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sink.Results {
		if !r.Fixed.Equal(want[i].Tuple) {
			t.Fatalf("tuple %d drifted under live mutation", i)
		}
	}
}

// BenchmarkPipeline measures batch throughput at several worker
// counts (CI's bench smoke job runs this at -benchtime=1x).
func BenchmarkPipeline(b *testing.B) {
	eng, dirty, seed := workloadEngine(b, 100, 1000)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), Discard, &Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// blockingSink parks mid-stream until released, holding the pipeline
// at its backpressure bound so cancellation arrives while every stage
// is full.
type blockingSink struct {
	n       int
	blockAt int
	gate    chan struct{}
}

func (s *blockingSink) Write(*Result) error {
	s.n++
	if s.n == s.blockAt {
		<-s.gate
	}
	return nil
}

// Cancelling mid-run must release all admission tokens, drain the
// workers and return the partial stats — no deadlock even when the
// sink is wedged at the moment of cancellation (run under -race).
func TestPipelineCancelMidStream(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 30, 500)
	ctx, cancel := context.WithCancel(context.Background())
	sink := &blockingSink{blockAt: 20, gate: make(chan struct{})}
	done := make(chan struct{})
	var stats Stats
	var err error
	go func() {
		defer close(done)
		stats, err = Run(ctx, eng, seed, NewSliceSource(dirty), sink,
			&Options{Workers: 4, Window: 8, ChunkSize: 2})
	}()
	cancel()
	close(sink.gate) // release the wedged sink so the abort can drain
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Tuples >= len(dirty) {
		t.Fatalf("processed all %d tuples despite cancellation", stats.Tuples)
	}
}

// A context cancelled before Run starts is rejected synchronously:
// zero tuples processed, no dependence on watcher scheduling.
func TestPipelineCancelBeforeStart(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 10, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := Run(ctx, eng, seed, NewSliceSource(dirty), Discard,
		&Options{Workers: 2, Window: 4, ChunkSize: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Tuples != 0 {
		t.Fatalf("processed %d tuples on a pre-cancelled context, want 0", stats.Tuples)
	}
}
