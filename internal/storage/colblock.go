package storage

import (
	"slices"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file is the columnar half of the table's memory model. Live
// shards hold rows as boxed *schema.Tuple maps — cheap to mutate.
// Cold shards can be packed into column-major []value.Sym blocks: one
// allocation per shard instead of one per row, 4 bytes per cell
// instead of a 16-byte string header plus per-row data. Packed shards
// are immutable, so they are shared freely between the live table and
// every snapshot; the first write into one unpacks it back to map
// form under the usual copy-on-write discipline.

// rowShard is one segment of the row registry. Exactly one of m
// (boxed map form) and col (packed columnar form) is non-nil. shared
// marks the shard as referenced by a snapshot: a writer copies (or
// unpacks) it before mutating. bytes is the shard's memory account —
// an estimate for map form (see rowBoxedCost), exact for packed form.
type rowShard struct {
	m      map[int64]*schema.Tuple
	col    *colBlock
	shared bool
	bytes  int64
}

func newRowShard() *rowShard {
	return &rowShard{m: make(map[int64]*schema.Tuple)}
}

// rows returns the shard's row count in either form.
func (sh *rowShard) rows() int {
	if sh.col != nil {
		return len(sh.col.ids)
	}
	return len(sh.m)
}

// colBlock is a packed shard: row ids sorted ascending and every cell
// interned, laid out column-major (column c of row r is
// syms[c*len(ids)+r]). Blocks are immutable after construction.
type colBlock struct {
	ids  []int64
	syms []value.Sym
	k    int // columns
}

// find binary-searches for id (ids are sorted; the table never reuses
// an id, so insertion order is id order).
func (c *colBlock) find(id int64) (int, bool) {
	return slices.BinarySearch(c.ids, id)
}

// materializeInto rebuilds row r as a boxed tuple in tu, reusing
// tu.Vals' backing array. The cell strings alias the dictionary's
// immutable arena, so no per-cell copy happens.
func (c *colBlock) materializeInto(tu *schema.Tuple, sch *schema.Schema, dict *value.Dict, r int) {
	tu.Schema = sch
	tu.ID = c.ids[r]
	vals := tu.Vals[:0]
	n := len(c.ids)
	for col := 0; col < c.k; col++ {
		vals = append(vals, dict.Val(c.syms[col*n+r]))
	}
	tu.Vals = vals
}

// materialize builds a fresh boxed tuple for row r.
func (c *colBlock) materialize(sch *schema.Schema, dict *value.Dict, r int) *schema.Tuple {
	tu := &schema.Tuple{Vals: make(value.List, 0, c.k)}
	c.materializeInto(tu, sch, dict, r)
	return tu
}

func (c *colBlock) memBytes() int64 {
	return int64(len(c.ids))*8 + int64(len(c.syms))*4
}

// packShard converts a map-form shard into its packed columnar form,
// interning every cell. Allocation is O(columns), not O(rows): one
// ids slice, one syms block, the block and shard headers (interning a
// never-seen string still costs arena space in the dictionary — on
// typical master data most cells are repeats and intern to hits).
func packShard(sh *rowShard, sch *schema.Schema, dict *value.Dict) *rowShard {
	n := len(sh.m)
	k := sch.Len()
	col := &colBlock{
		ids:  make([]int64, 0, n),
		syms: make([]value.Sym, n*k),
		k:    k,
	}
	for id := range sh.m {
		col.ids = append(col.ids, id)
	}
	slices.Sort(col.ids)
	for r, id := range col.ids {
		tu := sh.m[id]
		for c := 0; c < k; c++ {
			col.syms[c*n+r] = dict.InternV(tu.Vals[c])
		}
	}
	return &rowShard{col: col, shared: sh.shared, bytes: col.memBytes()}
}

// unpack converts a shard back to a privately-owned map form —
// the write path into a packed (or shared map-form) shard.
func (sh *rowShard) unpack(sch *schema.Schema, dict *value.Dict) *rowShard {
	ns := &rowShard{}
	if sh.col != nil {
		c := sh.col
		ns.m = make(map[int64]*schema.Tuple, len(c.ids))
		for r, id := range c.ids {
			tu := c.materialize(sch, dict, r)
			ns.m[id] = tu
			ns.bytes += rowBoxedCost(tu)
		}
		return ns
	}
	ns.m = make(map[int64]*schema.Tuple, len(sh.m))
	for id, tu := range sh.m {
		ns.m[id] = tu
	}
	ns.bytes = sh.bytes
	return ns
}

// rowBoxedCost estimates the heap bytes one boxed row pins: the tuple
// struct, its value-header slice, the cell bytes, and the row-map
// entry. It deliberately ignores allocator rounding and string
// sharing between rows — the account is for trend and ratio, not for
// a byte-exact heap profile.
func rowBoxedCost(tu *schema.Tuple) int64 {
	b := int64(48 + 48) // tuple struct (+Vals header) + map entry
	b += int64(len(tu.Vals)) * 16
	for _, v := range tu.Vals {
		b += int64(len(v))
	}
	return b
}

// TableMem is a point-in-time memory account of one table (or
// snapshot). The accounting contract: BoxedBytes is an estimate of
// the heap pinned by map-form shards, PackedBytes is the exact size
// of columnar blocks, SharedBytes is the portion of both currently
// referenced by at least one snapshot (copy-on-write debt that a
// write would duplicate), and CowCopiedBytes is the cumulative bytes
// this table has duplicated by copying shared shards — the COW debt
// already paid. Dictionary bytes are shared by every snapshot and
// reported once.
type TableMem struct {
	Rows         int    `json:"rows"`
	PackedRows   int    `json:"packed_rows"`
	PackedShards int    `json:"packed_shards"`
	BoxedBytes   int64  `json:"boxed_bytes"`
	PackedBytes  int64  `json:"packed_bytes"`
	OrderBytes   int64  `json:"order_bytes"`
	SharedBytes  int64  `json:"shared_bytes"`
	CowCopied    int64  `json:"cow_copied_bytes"`
	Generation   uint64 `json:"generation"`

	Dict value.DictStats `json:"dict"`
}

// TotalBytes sums the table-owned accounts plus the dictionary.
func (m TableMem) TotalBytes() int64 {
	return m.BoxedBytes + m.PackedBytes + m.OrderBytes + m.Dict.Bytes
}

// MemStats returns the table's memory account.
func (t *Table) MemStats() TableMem {
	t.rlock()
	defer t.runlock()
	out := TableMem{
		Rows:       t.count,
		OrderBytes: int64(len(t.order)) * 8,
		CowCopied:  t.cowCopied,
		Generation: t.gen,
		Dict:       t.dict.Stats(),
	}
	for _, sh := range &t.rows {
		if sh.col != nil {
			out.PackedBytes += sh.bytes
			out.PackedRows += len(sh.col.ids)
			out.PackedShards++
		} else {
			out.BoxedBytes += sh.bytes
		}
		if sh.shared {
			out.SharedBytes += sh.bytes
		}
	}
	return out
}

// PackColumnar packs up to maxShards map-form shards holding at least
// the pack threshold (SetPackMinRows) into columnar form, returning
// how many it packed. maxShards <= 0 packs every eligible shard.
//
// Packing is deliberately decoupled from Snapshot: freezing stays
// O(1) (it only marks shards shared), while packing pays O(rows) per
// shard to intern cells. Callers amortize it off the latency path —
// cerfixd runs it on a ticker, the jobs runner after each job, and
// Save's checkpoint path before writing. A packed shard is immutable,
// so the live table and every subsequent snapshot share one block;
// the first write into it unpacks a private map copy.
func (t *Table) PackColumnar(maxShards int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return 0
	}
	packed := 0
	for i, sh := range &t.rows {
		if maxShards > 0 && packed >= maxShards {
			break
		}
		if sh.col != nil || len(sh.m) < t.packMinRows {
			continue
		}
		t.rows[i] = packShard(sh, t.sch, t.dict)
		packed++
	}
	if packed > 0 {
		// Representation changed: bump the generation so the cached
		// snapshot (which still references the map-form shards) is not
		// handed out for the packed state.
		t.gen++
	}
	return packed
}

// SetPackMinRows overrides the per-shard row threshold below which
// PackColumnar leaves a shard in map form (packing a tiny shard buys
// nothing and costs an unpack on the next write). Values < 1 are
// clamped to 1; tests use that to force-pack small tables.
func (t *Table) SetPackMinRows(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 1 {
		n = 1
	}
	t.packMinRows = n
}

// Dict returns the table's interning dictionary. It is append-only
// and shared with every snapshot and clone of this table, so callers
// may intern and look up concurrently with readers and writers.
func (t *Table) Dict() *value.Dict { return t.dict }
