package storage

import (
	"fmt"
	"reflect"
	"testing"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// dumpRows captures a full table scan as (id, values) pairs — the
// byte-level fingerprint the packed representation must reproduce.
func dumpRows(t *Table) []string {
	var out []string
	t.Scan(func(tu *schema.Tuple) bool {
		out = append(out, fmt.Sprintf("%d|%v", tu.ID, tu.Vals))
		return true
	})
	return out
}

// fillVaried inserts n rows mixing repeated pool values, unique
// values, and nulls — every representation case the packer handles.
func fillVaried(t *testing.T, tb *Table, n int) []int64 {
	t.Helper()
	pool := []value.V{"Robert", "Mark", "", "Luth", "W1B 1JL"}
	ids := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		id, err := tb.InsertValues(
			pool[i%len(pool)],
			value.V(fmt.Sprintf("uniq-%d", i)),
			pool[(i/2)%len(pool)],
		)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestPackedScanByteIdentical is the satellite parity check: packing
// frozen shards into columnar form must not change a single byte of
// what scans, gets and indexed lookups observe — on the live table,
// on snapshots taken before the pack, and on snapshots taken after.
func TestPackedScanByteIdentical(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fillVaried(t, tb, 500)
	if err := tb.CreateIndex([]string{"FN"}); err != nil {
		t.Fatal(err)
	}
	// Delete a few rows so packed shards carry tombstoned order slots.
	for _, id := range []int64{ids[10], ids[333]} {
		if !tb.Delete(id) {
			t.Fatalf("delete %d", id)
		}
	}
	before := dumpRows(tb)
	preSnap := tb.Snapshot()
	preDump := dumpRows(preSnap)

	tb.SetPackMinRows(1)
	if packed := tb.PackColumnar(0); packed == 0 {
		t.Fatal("PackColumnar packed nothing")
	}
	var packedShards int
	for _, sh := range &tb.rows {
		if sh.col != nil {
			packedShards++
		}
	}
	if packedShards == 0 {
		t.Fatal("no shard is in columnar form after pack")
	}

	if got := dumpRows(tb); !reflect.DeepEqual(got, before) {
		t.Fatalf("live scan changed after pack:\n got %v\nwant %v", got[:3], before[:3])
	}
	if got := dumpRows(preSnap); !reflect.DeepEqual(got, preDump) {
		t.Fatal("pre-pack snapshot changed after pack")
	}
	postSnap := tb.Snapshot()
	if got := dumpRows(postSnap); !reflect.DeepEqual(got, before) {
		t.Fatal("post-pack snapshot disagrees with pre-pack live scan")
	}
	if postSnap == preSnap {
		t.Fatal("pack did not invalidate the cached snapshot")
	}

	// Point reads and indexed lookups agree with the boxed layout.
	for _, id := range []int64{ids[0], ids[77], ids[499]} {
		tu, ok := tb.Get(id)
		if !ok {
			t.Fatalf("Get(%d) lost a row", id)
		}
		if tu.ID != id {
			t.Fatalf("Get(%d) returned ID %d", id, tu.ID)
		}
	}
	if _, ok := tb.Get(ids[10]); ok {
		t.Fatal("deleted row resurfaced from packed shard")
	}
	got := tb.LookupEq([]string{"FN"}, value.List{"Robert"})
	want := 0
	preSnap.Scan(func(tu *schema.Tuple) bool {
		if tu.Get("FN") == "Robert" {
			want++
		}
		return true
	})
	if len(got) != want {
		t.Fatalf("LookupEq(FN=Robert) = %d rows, want %d", len(got), want)
	}
	if probe := tb.LookupEq([]string{"FN"}, value.List{"NeverSeen"}); len(probe) != 0 {
		t.Fatalf("LookupEq on un-interned value returned %d rows", len(probe))
	}
}

// TestPackedShardCOW: writes into a packed shard unpack a private map
// copy; snapshots holding the packed block never observe the write.
func TestPackedShardCOW(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fillVaried(t, tb, 200)
	tb.SetPackMinRows(1)
	tb.PackColumnar(0)
	snap := tb.Snapshot()
	snapDump := dumpRows(snap)

	// Update through a packed shard.
	tu, _ := tb.Get(ids[5])
	tu.Set("LN", "rewritten")
	if err := tb.Update(tu); err != nil {
		t.Fatal(err)
	}
	if !tb.Delete(ids[6]) {
		t.Fatal("delete through packed shard failed")
	}
	if _, err := tb.InsertValues("New", "Row", "zip"); err != nil {
		t.Fatal(err)
	}

	if got := dumpRows(snap); !reflect.DeepEqual(got, snapDump) {
		t.Fatal("snapshot observed writes that unpacked its shards")
	}
	got, _ := tb.Get(ids[5])
	if got.Get("LN") != "rewritten" {
		t.Fatalf("update lost: LN = %q", got.Get("LN"))
	}
	if _, ok := tb.Get(ids[6]); ok {
		t.Fatal("delete lost after unpack")
	}
}

func TestPackRespectsMinRows(t *testing.T) {
	tb := NewTable(personSchema(t))
	fillVaried(t, tb, 100) // ~1.5 rows per shard, below any sane threshold
	if packed := tb.PackColumnar(0); packed != 0 {
		t.Fatalf("packed %d shards below the default threshold", packed)
	}
	gen := tb.Generation()
	if tb.PackColumnar(0) != 0 {
		t.Fatal("second no-op pack packed shards")
	}
	if tb.Generation() != gen {
		t.Fatal("no-op pack bumped the generation")
	}
}

func TestMemStatsAccounting(t *testing.T) {
	tb := NewTable(personSchema(t))
	fillVaried(t, tb, 400)
	m := tb.MemStats()
	if m.Rows != 400 || m.BoxedBytes == 0 || m.PackedBytes != 0 {
		t.Fatalf("boxed stats: %+v", m)
	}
	if m.SharedBytes != 0 {
		t.Fatalf("SharedBytes = %d before any snapshot", m.SharedBytes)
	}

	snap := tb.Snapshot()
	m = tb.MemStats()
	if m.SharedBytes != m.BoxedBytes+m.PackedBytes {
		t.Fatalf("after snapshot every shard is shared: %+v", m)
	}

	// A write into a shared shard pays COW debt.
	tu, _ := tb.Get(1)
	tu.Set("FN", "X")
	if err := tb.Update(tu); err != nil {
		t.Fatal(err)
	}
	m = tb.MemStats()
	if m.CowCopied == 0 {
		t.Fatal("COW copy not accounted")
	}

	tb.SetPackMinRows(1)
	tb.PackColumnar(0)
	m2 := tb.MemStats()
	if m2.PackedShards == 0 || m2.PackedRows == 0 || m2.PackedBytes == 0 {
		t.Fatalf("pack stats: %+v", m2)
	}
	if m2.BoxedBytes != 0 {
		t.Fatalf("BoxedBytes = %d after full pack", m2.BoxedBytes)
	}
	if m2.PackedBytes >= m.BoxedBytes {
		t.Fatalf("packing did not shrink the account: boxed %d → packed %d",
			m.BoxedBytes, m2.PackedBytes)
	}
	if m2.Dict.Syms == 0 {
		t.Fatal("dictionary empty after pack")
	}
	// The snapshot's own account still reports its boxed shards.
	sm := snap.MemStats()
	if sm.BoxedBytes == 0 {
		t.Fatalf("snapshot stats lost its boxed shards: %+v", sm)
	}
}

func TestCloneSharesPackedBlocks(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fillVaried(t, tb, 300)
	tb.SetPackMinRows(1)
	tb.PackColumnar(0)
	before := dumpRows(tb)

	cp := tb.Clone()
	if got := dumpRows(cp); !reflect.DeepEqual(got, before) {
		t.Fatal("clone of packed table scans differently")
	}
	// The clone is mutable and isolated.
	tu, _ := cp.Get(ids[0])
	tu.Set("FN", "clone-only")
	if err := cp.Update(tu); err != nil {
		t.Fatal(err)
	}
	orig, _ := tb.Get(ids[0])
	if orig.Get("FN") == "clone-only" {
		t.Fatal("clone write leaked into the original")
	}
}
