package cfd

import (
	"testing"
	"testing/quick"
)

// The CFD parser must never panic on arbitrary input.
func TestCFDParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCFDParseSetNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseSet(%q) panicked: %v", s, r)
			}
		}()
		_, _ = ParseSet(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Structured fuzz: whatever parses reaches a print/parse fixpoint.
func TestCFDPrintParseFixpoint(t *testing.T) {
	attrs := []string{"a", "b", "zip", "city"}
	f := func(seed uint32, constant bool) bool {
		pick := func(n uint32) string { return attrs[int(n)%len(attrs)] }
		src := "id_x: " + pick(seed)
		if constant {
			src += ` = "c1"`
		}
		src += " -> " + pick(seed>>4)
		if seed%2 == 0 {
			src += ` = "c2"`
		}
		c1, err := Parse(src)
		if err != nil {
			return true
		}
		c2, err := Parse(c1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", c1.String(), err)
		}
		return c1.String() == c2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Quoted metacharacters in constants survive.
func TestCFDQuotedConstants(t *testing.T) {
	for _, v := range []string{"a, b", "x -> y", "# hash", "Ldn"} {
		src := `r: AC = "` + v + `" -> city = "` + v + `"`
		c, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse with %q: %v", v, err)
		}
		if string(*c.LHS[0].Const) != v || string(*c.RHS[0].Const) != v {
			t.Fatalf("constant %q mangled: %v", v, c)
		}
	}
}
