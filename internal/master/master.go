// Package master implements CerFix's master data manager. Master data
// (a.k.a. reference data) is "a single repository of high-quality data
// ... assumed consistent and accurate" (paper §2). The manager wraps a
// storage table, pre-builds hash indexes over the master-side attribute
// lists (Xm) of every editing rule — the access path rule application
// probes — and exposes the unique-right-hand-side lookup that the
// certain-fix semantics requires: a fix is only certain if every master
// tuple matching the key agrees on the source values.
package master

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
	"cerfix/internal/value"
)

// LookupStatus classifies a unique-RHS lookup outcome.
type LookupStatus int

const (
	// NoMatch means no master tuple carries the key.
	NoMatch LookupStatus = iota
	// Unique means at least one tuple matched and all agree on the
	// requested source attributes — the fix is certain.
	Unique
	// Conflict means matching tuples disagree on a source attribute;
	// applying the rule would not yield a unique fix.
	Conflict
)

// String names the status for diagnostics.
func (s LookupStatus) String() string {
	switch s {
	case NoMatch:
		return "no-match"
	case Unique:
		return "unique"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Store is the master data manager. A store built by New or FromTable
// is live and thread-safe: its own mutex serializes mutators with
// Snapshot, so a snapshot is always an atomic view of table plus rule
// indexes — no caller-side locking required. A store returned by
// Snapshot is a frozen read-only view that any number of goroutines
// read without synchronization.
type Store struct {
	// mu serializes mutators (Insert, PrepareForRules) with Snapshot
	// on the live store and guards live rule-index lookups against
	// them. Frozen stores are immutable and skip it.
	mu     sync.RWMutex
	frozen bool
	table  *storage.Table
	// mode selects the lookup access path; see LookupMode. It is an
	// atomic so mode flips (the E5 ablation knob, SetUseIndexes) are
	// race-free against concurrent lookups, on live stores and
	// snapshots alike — the mode is a per-view knob, not data.
	mode atomic.Int32
	// ruleIdx holds the precomputed unique-RHS maps (the fast path).
	ruleIdx *ruleIndexes
	// version counts rule-index mutations (Insert, PrepareRuleIndexes);
	// together with the table snapshot identity it keys the snapshot
	// cache below.
	version uint64
	// snapRuleIdx/snapTable/snapVersion cache the frozen internals of
	// the most recent snapshot: an unchanged store reuses them instead
	// of re-marking shards. Each Snapshot call still returns a fresh
	// *Store wrapper with its own mode atomic, so the per-view SetMode
	// contract holds even when the underlying data is shared.
	snapRuleIdx *ruleIndexes
	snapTable   *storage.Table
	snapVersion uint64
}

// New wraps an empty master relation under sch.
func New(sch *schema.Schema) *Store {
	m := &Store{table: storage.NewTable(sch), ruleIdx: newRuleIndexes()}
	m.mode.Store(int32(ModeRuleIndex))
	return m
}

// FromTable wraps an existing table (e.g. loaded from CSV).
func FromTable(t *storage.Table) *Store {
	m := &Store{table: t, ruleIdx: newRuleIndexes()}
	m.mode.Store(int32(ModeRuleIndex))
	return m
}

// lock/unlock guard mutators; rlock/runlock guard live readers of the
// rule indexes. Frozen stores are immutable: readers skip the mutex
// and mutators must never run (callers check frozen first).
func (m *Store) lock() {
	if m.frozen {
		panic("master: mutating a read-only snapshot")
	}
	m.mu.Lock()
}

func (m *Store) unlock() { m.mu.Unlock() }

func (m *Store) rlock() {
	if !m.frozen {
		m.mu.RLock()
	}
}

func (m *Store) runlock() {
	if !m.frozen {
		m.mu.RUnlock()
	}
}

// Snapshot returns a frozen O(1) view of the store: the table and the
// unique-RHS rule indexes of this instant, captured atomically under
// the store's own lock — callers need no external serialization with
// writers. The snapshot is immutable (mutators fail with
// storage.ErrFrozen) and lock-free to read, so any number of
// goroutines — the batch pipeline's workers, concurrent job runners —
// chase against it while the live store keeps absorbing inserts. Cost
// is independent of master size: both layers only mark their
// constant-size shard directories copy-on-write (see storage.Table
// and the rule-index registry). Snapshotting a snapshot returns the
// same view. The snapshot inherits the live store's lookup mode at
// capture; its mode remains independently settable (a per-view knob).
func (m *Store) Snapshot() *Store {
	if m.frozen {
		return m
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tsnap := m.table.Snapshot()
	// Re-freeze the rule indexes only when something changed since the
	// last capture: a different table snapshot (the table caches by
	// generation, covering direct-table bulk writes too) or a new
	// rule-index version. Otherwise the previous frozen view is
	// bit-for-bit current and re-marking shards would only re-tax
	// writers.
	if m.snapRuleIdx == nil || m.snapTable != tsnap || m.snapVersion != m.version {
		m.snapRuleIdx = m.ruleIdx.snapshot()
		m.snapTable = tsnap
		m.snapVersion = m.version
	}
	// A fresh wrapper per call: callers own their view's mode knob
	// even when the frozen data underneath is shared.
	cp := &Store{
		frozen:  true,
		table:   tsnap,
		ruleIdx: m.snapRuleIdx,
	}
	cp.mode.Store(m.mode.Load())
	return cp
}

// CloneDeep returns an isolated deep copy of the store — cloned table
// (rows, hash indexes) and deep-copied rule indexes — that is itself
// live and mutable. This is the legacy O(master size) snapshot path,
// retained for callers that need a private mutable copy and as the
// benchmark baseline for Snapshot (cerfixbench e9).
func (m *Store) CloneDeep() *Store {
	m.rlock()
	defer m.runlock()
	cp := &Store{table: m.table.Clone(), ruleIdx: m.ruleIdx.clone()}
	cp.mode.Store(m.mode.Load())
	return cp
}

// Frozen reports whether the store is a read-only snapshot.
func (m *Store) Frozen() bool { return m.frozen }

// Schema returns the master schema.
func (m *Store) Schema() *schema.Schema { return m.table.Schema() }

// Table exposes the underlying table (for CSV I/O and the server).
// Bulk writes that bypass the Store (ReadCSV) must be followed by
// PrepareForRules and serialized with Snapshot by the caller; the
// Store-level mutators need no such care.
func (m *Store) Table() *storage.Table { return m.table }

// Len returns the number of master tuples.
func (m *Store) Len() int { return m.table.Len() }

// SetUseIndexes toggles between hash-indexed lookups and full scans —
// kept for the E5 ablation; SetMode is the general knob. on=true maps
// to ModeRuleIndex, false to ModeScan.
func (m *Store) SetUseIndexes(on bool) {
	if on {
		m.SetMode(ModeRuleIndex)
	} else {
		m.SetMode(ModeScan)
	}
}

// SetMode selects the lookup access path. Safe to call concurrently
// with lookups; on a snapshot it retargets only that view.
func (m *Store) SetMode(mode LookupMode) { m.mode.Store(int32(mode)) }

// Mode returns the current access path.
func (m *Store) Mode() LookupMode { return LookupMode(m.mode.Load()) }

// Insert adds a master tuple and maintains the rule indexes. The
// table row and its index entries become visible atomically: a
// concurrent Snapshot sees either both or neither.
func (m *Store) Insert(tu *schema.Tuple) (int64, error) {
	if m.frozen {
		return 0, storage.ErrFrozen
	}
	m.lock()
	defer m.unlock()
	id, err := m.table.Insert(tu)
	if err != nil {
		return 0, err
	}
	stored, _ := m.table.Get(id)
	m.ruleIdx.insert(stored, m.table.Dict())
	m.version++
	return id, nil
}

// InsertValues adds a master tuple from values.
func (m *Store) InsertValues(vals ...value.V) (int64, error) {
	tu, err := schema.NewTuple(m.table.Schema(), vals...)
	if err != nil {
		return 0, err
	}
	return m.Insert(tu)
}

// All returns every master tuple.
func (m *Store) All() []*schema.Tuple { return m.table.All() }

// Get returns the master tuple with the given ID.
func (m *Store) Get(id int64) (*schema.Tuple, bool) { return m.table.Get(id) }

// PrepareForRules creates one index per distinct master-side match
// attribute list across the rule set, so every rule's lookup is O(1)
// expected. Must be re-run after adding rules with new Xm lists (extra
// runs are idempotent).
func (m *Store) PrepareForRules(rs *rule.Set) error {
	if m.frozen {
		return fmt.Errorf("master: PrepareForRules: %w", storage.ErrFrozen)
	}
	for _, r := range rs.Rules() {
		if err := m.table.CreateIndex(r.MatchMasterAttrs()); err != nil {
			return fmt.Errorf("master: indexing for rule %s: %w", r.ID, err)
		}
	}
	m.PrepareRuleIndexes(rs)
	return nil
}

// Lookup returns all master tuples whose attrs project to key.
func (m *Store) Lookup(attrs []string, key value.List) []*schema.Tuple {
	if m.Mode() != ModeScan {
		return m.table.LookupEq(attrs, key)
	}
	// Forced-scan path: bypass any index. Attribute positions are
	// resolved once up front and every row compares in place over the
	// shared-scan iterator, so the per-row cost is a few value
	// comparisons — not a tuple clone plus a projection allocation.
	if len(attrs) != len(key) {
		return nil
	}
	sch := m.table.Schema()
	positions := make([]int, len(attrs))
	for i, a := range attrs {
		positions[i] = sch.MustIndex(a)
	}
	var out []*schema.Tuple
	m.table.ScanShared(func(tu *schema.Tuple) bool {
		for i, p := range positions {
			if tu.Vals[p] != key[i] {
				return true
			}
		}
		out = append(out, tu.Clone())
		return true
	})
	return out
}

// UniqueRHS performs the certain-fix lookup for one rule application:
// find master tuples with matchAttrs = key; if none, return NoMatch; if
// all agree on rhsAttrs, return those values, the witness tuple's ID
// and Unique; otherwise Conflict.
func (m *Store) UniqueRHS(matchAttrs []string, key value.List, rhsAttrs []string) (value.List, int64, LookupStatus) {
	if m.Mode() == ModeRuleIndex {
		m.rlock()
		rhs, witness, status, ok := m.ruleIdx.lookup(matchAttrs, key, rhsAttrs, m.table.Dict())
		m.runlock()
		if ok {
			return rhs, witness, status
		}
		// No index for this pair (ad-hoc query): fall through to the
		// group-verification path.
	}
	matches := m.Lookup(matchAttrs, key)
	if len(matches) == 0 {
		return nil, 0, NoMatch
	}
	rhs := matches[0].Project(rhsAttrs)
	witness := matches[0].ID
	for _, tu := range matches[1:] {
		if !tu.Project(rhsAttrs).Equal(rhs) {
			return nil, 0, Conflict
		}
	}
	return rhs, witness, Unique
}

// UniqueRHSForRule is UniqueRHS specialized to a rule: the key is the
// input tuple's projection on X, matched against Xm, sourcing Bm.
func (m *Store) UniqueRHSForRule(r *rule.Rule, input *schema.Tuple) (value.List, int64, LookupStatus) {
	key := input.Project(r.MatchInputAttrs())
	return m.UniqueRHS(r.MatchMasterAttrs(), key, r.SetMasterAttrs())
}

// Dict returns the store's interning dictionary (the table's).
// Append-only and shared with every snapshot, so probe-key encoders
// may use it lock-free.
func (m *Store) Dict() *value.Dict { return m.table.Dict() }

// PackColumnar packs cold master shards into columnar form (see
// storage.Table.PackColumnar), returning how many shards it packed.
// Amortized off the snapshot path: cerfixd's pack ticker and the jobs
// runner call it between requests.
func (m *Store) PackColumnar(maxShards int) int {
	if m.frozen {
		return 0
	}
	m.lock()
	defer m.unlock()
	packed := m.table.PackColumnar(maxShards)
	if packed > 0 {
		// Representation changed: force the next Snapshot to re-freeze
		// so it shares the packed shards instead of the cached view.
		m.version++
	}
	return packed
}

// MemStats is the store's memory account: the table's (rows, shards,
// COW debt, dictionary) plus an estimate of the unique-RHS rule
// indexes.
type MemStats struct {
	Table storage.TableMem `json:"table"`
	// RuleIndexKeys counts entries across all rule indexes;
	// RuleIndexBytes estimates their footprint (sym-encoded keys, map
	// entries, and the RHS value headers each entry retains).
	RuleIndexKeys  int   `json:"rule_index_keys"`
	RuleIndexBytes int64 `json:"rule_index_bytes"`
}

// TotalBytes sums the account.
func (s MemStats) TotalBytes() int64 { return s.Table.TotalBytes() + s.RuleIndexBytes }

// MemStats returns the store's memory account.
func (m *Store) MemStats() MemStats {
	m.rlock()
	defer m.runlock()
	out := MemStats{Table: m.table.MemStats()}
	for _, ix := range m.ruleIdx.indexes {
		keyBytes := int64(4*len(ix.matchAttrs)) + 16 // sym key + string header
		entryBytes := keyBytes + 48 + 40 + int64(16*len(ix.rhsAttrs))
		for _, sh := range &ix.shards {
			n := len(sh.M)
			out.RuleIndexKeys += n
			out.RuleIndexBytes += int64(n) * entryBytes
		}
	}
	return out
}

// Stats summarizes the store for the web interface and CLIs.
type Stats struct {
	// Tuples is the number of master tuples.
	Tuples int
	// Attributes is the master schema width.
	Attributes int
	// Schema is the schema's display form.
	Schema string
}

// Stats returns a snapshot summary.
func (m *Store) Stats() Stats {
	return Stats{
		Tuples:     m.table.Len(),
		Attributes: m.table.Schema().Len(),
		Schema:     m.table.Schema().String(),
	}
}
