module cerfix

go 1.24
