package master

import (
	"sort"
	"strings"

	"cerfix/internal/cowmap"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file implements the unique-RHS rule index, the master data
// manager's fast path. The certain-fix lookup of a rule φ asks one
// question per probe key k = t[X]: do all master tuples with s[Xm] = k
// agree on s[Bm], and on what value? A plain hash index answers it in
// O(|group|) by materializing the group; for non-key match attributes
// (the demo's φ9 matches on area code, shared by every customer of a
// city) groups grow linearly with master size and dominate fix
// latency (benchmark E5's plain-index column shows this).
//
// The rule index precomputes the answer per key: a map from k to
// either the agreed RHS values plus a witness tuple ID, or a conflict
// marker. Lookups become O(1) regardless of group size. The index is
// maintained incrementally on Store inserts (master data is
// append-mostly); bulk loads that bypass the Store rebuild it via
// PrepareForRules.
//
// Like the storage layer, the registry is versioned copy-on-write:
// Store.Snapshot marks the registry, every index header and every
// entry shard shared in O(#indexes) — constant in master size — and
// the live store copies only what it touches afterwards. Entries are
// immutable once published (a conflict transition swaps in a fresh
// entry), so snapshot readers never see a torn record.
//
// Synchronization lives entirely in Store.mu: mutators run under its
// write lock, live lookups under its read lock, and frozen snapshots
// are immutable so their readers take no lock at all. ruleIndexes has
// no mutex of its own.

// LookupMode selects the master access path (E5's ablation knob).
type LookupMode int32

const (
	// ModeRuleIndex uses the precomputed unique-RHS map: O(1) per
	// probe. The default.
	ModeRuleIndex LookupMode = iota
	// ModePlainIndex uses the storage hash index and verifies RHS
	// agreement per probe: O(|key group|).
	ModePlainIndex
	// ModeScan performs full relation scans: O(|master|).
	ModeScan
)

// String names the mode.
func (m LookupMode) String() string {
	switch m {
	case ModeRuleIndex:
		return "rule-index"
	case ModePlainIndex:
		return "plain-index"
	case ModeScan:
		return "scan"
	default:
		return "unknown"
	}
}

// rhsEntry is the per-key precomputed answer. Entries are immutable
// after publication: snapshots share them, so a state change replaces
// the entry instead of flipping fields in place.
type rhsEntry struct {
	rhs      value.List
	witness  int64
	conflict bool
}

// entryShardCount sizes the copy-on-write granularity of one rule
// index's entry map (power of two).
const entryShardCount = 64

// entryShard is one segment of a rule index's entry map (see cowmap
// for the shared/copy-on-write discipline).
type entryShard = cowmap.Shard[string, *rhsEntry]

// entryShardOf routes a probe key to its shard. entryShardOfBytes is
// its byte-slice sibling and MUST agree with it byte for byte:
// indexes are built with string keys and probed with scratch-encoded
// []byte keys, so divergent routing would silently read the wrong
// shard (NoMatch for a present key).
func entryShardOf(k string) int { return cowmap.FNV(k, entryShardCount) }

func entryShardOfBytes(k []byte) int { return cowmap.FNVBytes(k, entryShardCount) }

// ruleIndex holds one (Xm, Bm) unique-RHS map. The header follows the
// shared/copy-on-write discipline: once a snapshot references it, the
// live store copies the header before replacing any shard pointer.
//
// Entry keys are sym-encoded: the fixed-width dictionary ids of the
// projected match values (value.AppendSym), 4 bytes per attribute
// instead of a length-prefixed copy of every string. Build and probe
// sides MUST use the same dictionary — the store's table dictionary —
// and the encoding makes the dictionary a sound prefilter: every key
// in the index interned its values at add time, so a probe value the
// dictionary has never seen cannot match any key (a certain NoMatch).
type ruleIndex struct {
	matchAttrs []string
	rhsAttrs   []string
	matchPos   []int // schema positions of matchAttrs
	shared     bool
	shards     [entryShardCount]*entryShard
}

func newRuleIndex(sch *schema.Schema, matchAttrs, rhsAttrs []string) *ruleIndex {
	ix := &ruleIndex{
		matchAttrs: append([]string(nil), matchAttrs...),
		rhsAttrs:   append([]string(nil), rhsAttrs...),
		matchPos:   make([]int, len(matchAttrs)),
	}
	for i, a := range matchAttrs {
		ix.matchPos[i] = sch.MustIndex(a)
	}
	for i := range ix.shards {
		ix.shards[i] = cowmap.New[string, *rhsEntry]()
	}
	return ix
}

// shardMut returns a privately-owned entry shard for key k.
func (ix *ruleIndex) shardMut(k string) *entryShard {
	return cowmap.Mut(&ix.shards[entryShardOf(k)])
}

// add folds one master tuple into the index, interning its match
// values into dict.
func (ix *ruleIndex) add(s *schema.Tuple, dict *value.Dict) {
	kb := make([]byte, 0, 4*len(ix.matchPos))
	for _, p := range ix.matchPos {
		kb = value.AppendSym(kb, dict.InternV(s.Vals[p]))
	}
	k := string(kb)
	sh := ix.shardMut(k)
	e, ok := sh.M[k]
	if !ok {
		sh.M[k] = &rhsEntry{rhs: s.Project(ix.rhsAttrs), witness: s.ID}
		return
	}
	if !e.conflict && !e.rhs.Equal(s.Project(ix.rhsAttrs)) {
		// Replace, never mutate: snapshots may share the old entry.
		sh.M[k] = &rhsEntry{rhs: e.rhs, witness: e.witness, conflict: true}
	}
}

// getBytes is get for a scratch-encoded key. The string conversion in
// the map index expression does not allocate (compiler-recognized
// pattern), so a probe against a reused []byte buffer is
// allocation-free.
func (ix *ruleIndex) getBytes(k []byte) *rhsEntry {
	return ix.shards[entryShardOfBytes(k)].M[string(k)]
}

// ruleIndexKey canonicalizes the (Xm, Bm) pair.
func ruleIndexKey(matchAttrs, rhsAttrs []string) string {
	var b strings.Builder
	for _, a := range matchAttrs {
		b.WriteByte(byte(len(a)))
		b.WriteString(a)
	}
	b.WriteByte(0xff)
	for _, a := range rhsAttrs {
		b.WriteByte(byte(len(a)))
		b.WriteString(a)
	}
	return b.String()
}

// ruleIndexes is the Store's registry (separate struct to keep the
// main file focused). All access is synchronized by Store.mu or by
// snapshot immutability.
type ruleIndexes struct {
	indexes map[string]*ruleIndex
	// shared marks the registry map itself as referenced by a
	// snapshot; the live store copies it before the next write.
	shared bool
}

func newRuleIndexes() *ruleIndexes {
	return &ruleIndexes{indexes: make(map[string]*ruleIndex)}
}

// registryMut returns the registry map, copying it first when a
// snapshot shares it.
func (ri *ruleIndexes) registryMut() map[string]*ruleIndex {
	return cowmap.MutMap(&ri.indexes, &ri.shared)
}

// build constructs the index for one (Xm, Bm) pair from all rows.
func (ri *ruleIndexes) build(sch *schema.Schema, matchAttrs, rhsAttrs []string, rows []*schema.Tuple, dict *value.Dict) {
	idx := newRuleIndex(sch, matchAttrs, rhsAttrs)
	for _, s := range rows {
		idx.add(s, dict)
	}
	ri.registryMut()[ruleIndexKey(matchAttrs, rhsAttrs)] = idx
}

// insert maintains every registered index for a new master tuple.
func (ri *ruleIndexes) insert(s *schema.Tuple, dict *value.Dict) {
	if len(ri.indexes) == 0 {
		return
	}
	reg := ri.registryMut()
	for key, ix := range reg {
		if ix.shared {
			cp := &ruleIndex{matchAttrs: ix.matchAttrs, rhsAttrs: ix.rhsAttrs, matchPos: ix.matchPos, shards: ix.shards}
			reg[key] = cp
			ix = cp
		}
		ix.add(s, dict)
	}
}

// snapshot returns a frozen O(1) view: the registry, every index
// header and every entry shard are marked shared, so the live store
// copies only what it subsequently touches.
func (ri *ruleIndexes) snapshot() *ruleIndexes {
	ri.shared = true
	for _, ix := range ri.indexes {
		ix.shared = true
		for _, sh := range &ix.shards {
			sh.Shared = true
		}
	}
	return &ruleIndexes{indexes: ri.indexes, shared: true}
}

// clone deep-copies the registry (the legacy snapshot path, retained
// for Store.CloneDeep and the e9 benchmark baseline). Entry objects
// are shared — they are immutable after publication.
func (ri *ruleIndexes) clone() *ruleIndexes {
	cp := newRuleIndexes()
	for k, ix := range ri.indexes {
		icp := &ruleIndex{matchAttrs: ix.matchAttrs, rhsAttrs: ix.rhsAttrs, matchPos: ix.matchPos}
		for i, sh := range &ix.shards {
			m := make(map[string]*rhsEntry, len(sh.M))
			for ek, e := range sh.M {
				m[ek] = e
			}
			icp.shards[i] = &entryShard{M: m}
		}
		cp.indexes[k] = icp
	}
	return cp
}

// lookup answers the unique-RHS question for a registered pair; the
// final result reports whether the pair has an index. A key value the
// dictionary has never seen is a certain NoMatch for a registered
// pair — no master tuple carries it (see ruleIndex).
func (ri *ruleIndexes) lookup(matchAttrs []string, key value.List, rhsAttrs []string, dict *value.Dict) (value.List, int64, LookupStatus, bool) {
	ix, ok := ri.indexes[ruleIndexKey(matchAttrs, rhsAttrs)]
	if !ok {
		return nil, 0, NoMatch, false
	}
	kb := make([]byte, 0, 4*len(key))
	for _, v := range key {
		sym, found := dict.LookupV(v)
		if !found {
			return nil, 0, NoMatch, true
		}
		kb = value.AppendSym(kb, sym)
	}
	return entryResult(ix.getBytes(kb))
}

// AppendProbeKey appends the sym-encoded rule-index probe key for t's
// projection on positions, resolving each value through dict without
// interning. ok=false means some value has never been interned: no
// master tuple carries it, so for any registered (Xm, Bm) pair the
// probe is a certain NoMatch (pass encoded=false to RuleHandle.Lookup
// and it answers accordingly). The compiled chase calls this with a
// reused scratch buffer; it never allocates.
func AppendProbeKey(dict *value.Dict, dst []byte, t *schema.Tuple, positions []int) ([]byte, bool) {
	for _, p := range positions {
		sym, found := dict.LookupV(t.Vals[p])
		if !found {
			return dst, false
		}
		dst = value.AppendSym(dst, sym)
	}
	return dst, true
}

// RuleHandle is a pre-resolved unique-RHS lookup handle for one
// (Xm, Bm) pair — the compiled chase's direct line to a rule's index.
// Resolving a handle pays the registry-key build once; every probe
// after that skips the per-lookup ruleIndexKey string construction,
// and on frozen stores (the batch pipeline's and job runners' view)
// the index itself is resolved at handle creation, so a probe is one
// shard hash plus one map hit with no locking at all. On live stores
// the handle keeps the prebuilt key and re-resolves the index under
// the read lock per probe, staying correct across copy-on-write
// registry swaps (Insert after Snapshot replaces shared index
// headers).
type RuleHandle struct {
	store *Store
	key   string
	idx   *ruleIndex // resolved once when the store is frozen
}

// HandleKey canonicalizes a (Xm, Bm) pair into the registry key a
// RuleHandle resolves by. It depends only on the attribute lists, so
// callers that bind handles repeatedly (the compiled chase binds one
// per rule per Chaser) compute it once and pass it to HandleByKey.
func HandleKey(matchAttrs, rhsAttrs []string) string {
	return ruleIndexKey(matchAttrs, rhsAttrs)
}

// Handle resolves a (Xm, Bm) pair to a lookup handle. The handle is
// valid for the lifetime of the store view it was created from and is
// safe for concurrent use on frozen stores; on live stores each probe
// synchronizes with writers via the store's read lock.
func (m *Store) Handle(matchAttrs, rhsAttrs []string) *RuleHandle {
	h := m.HandleByKey(HandleKey(matchAttrs, rhsAttrs))
	return &h
}

// HandleByKey is Handle for a key prebuilt with HandleKey, skipping
// the per-call key construction. It returns the handle by value so
// callers binding one per rule (every compiled Chaser) fill a slice
// with a single allocation instead of one per handle.
func (m *Store) HandleByKey(key string) RuleHandle {
	h := RuleHandle{store: m, key: key}
	if m.frozen {
		h.idx = m.ruleIdx.indexes[key]
	}
	return h
}

// Lookup answers the unique-RHS probe for a sym-encoded composite key
// (the AppendProbeKey encoding of t[X]). encoded=false means the
// probe could not be encoded because some value is absent from the
// dictionary: for a registered pair that is a certain NoMatch (every
// key in the index interned its values when its row was added), so
// the handle answers without touching the shards. The final result
// reports whether a rule index is registered for the pair — false
// means the caller must fall back to the group verification path
// (Store.UniqueRHS), exactly as an unregistered pair does there.
func (h *RuleHandle) Lookup(encKey []byte, encoded bool) (value.List, int64, LookupStatus, bool) {
	ix := h.idx
	if ix == nil {
		m := h.store
		if m.frozen {
			return nil, 0, NoMatch, false // no index at capture: permanent
		}
		m.mu.RLock()
		ix = m.ruleIdx.indexes[h.key]
		if ix == nil {
			m.mu.RUnlock()
			return nil, 0, NoMatch, false
		}
		if !encoded {
			m.mu.RUnlock()
			return nil, 0, NoMatch, true
		}
		e := ix.getBytes(encKey)
		m.mu.RUnlock()
		return entryResult(e)
	}
	if !encoded {
		return nil, 0, NoMatch, true
	}
	return entryResult(ix.getBytes(encKey))
}

// entryResult decodes a probe's entry into the UniqueRHS result shape.
func entryResult(e *rhsEntry) (value.List, int64, LookupStatus, bool) {
	if e == nil {
		return nil, 0, NoMatch, true
	}
	if e.conflict {
		return nil, 0, Conflict, true
	}
	return e.rhs, e.witness, Unique, true
}

// registered lists the (Xm, Bm) pairs with indexes, sorted, for
// diagnostics.
func (ri *ruleIndexes) registered() []string {
	out := make([]string, 0, len(ri.indexes))
	for _, ix := range ri.indexes {
		out = append(out, strings.Join(ix.matchAttrs, ",")+"->"+strings.Join(ix.rhsAttrs, ","))
	}
	sort.Strings(out)
	return out
}

// PrepareRuleIndexes (re)builds the unique-RHS index of every rule in
// the set. Called by PrepareForRules; callers that mutate the
// underlying table directly must re-run it.
func (m *Store) PrepareRuleIndexes(rs *rule.Set) {
	m.lock()
	defer m.unlock()
	rows := m.table.All()
	sch, dict := m.table.Schema(), m.table.Dict()
	for _, r := range rs.Rules() {
		m.ruleIdx.build(sch, r.MatchMasterAttrs(), r.SetMasterAttrs(), rows, dict)
	}
	m.version++
}

// RegisteredRuleIndexes lists the built indexes (diagnostics).
func (m *Store) RegisteredRuleIndexes() []string {
	m.rlock()
	defer m.runlock()
	return m.ruleIdx.registered()
}
