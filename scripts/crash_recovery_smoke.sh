#!/usr/bin/env bash
# Crash-recovery smoke for the async jobs subsystem: boot cerfixd with
# a jobs directory, submit a large batch-repair job, SIGKILL the daemon
# mid-run, restart it over the same directory, and demand the recovered
# job complete with a results artifact byte-identical to an undisturbed
# reference run of the same input. This is the process-level proof of
# the journal/recovery contract the in-process fault harness
# (internal/faultfs + TestCrashSweepJobLifecycle) enumerates crash
# points for.
#
# Environment knobs: PORT (default 18091), TUPLES (default 50000),
# WORK (scratch dir, default mktemp -d).
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-$(mktemp -d)/cerfixd}
WORK=${WORK:-$(mktemp -d)}
PORT=${PORT:-18091}
BASE="http://127.0.0.1:$PORT"
TUPLES=${TUPLES:-300000}
DAEMON=""

go build -o "$BIN" ./cmd/cerfixd

mkdir -p "$WORK/inputs"
# A large CSV over the demo CUST schema; every tuple needs one cell
# rewritten, so the run does real per-tuple work.
{
  echo "FN,LN,AC,phn,type,str,city,zip,item"
  awk -v n="$TUPLES" 'BEGIN {
    for (i = 0; i < n; i++)
      printf "Bob,Brady,020,079172485,2,501 Elm St.,Edi,EH7 4AH,CD\n"
  }'
} > "$WORK/inputs/big.csv"

start_daemon() { # $1 = jobs dir
  "$BIN" -addr "127.0.0.1:$PORT" -demo \
    -jobs-dir "$1" -jobs-input-root "$WORK/inputs" &
  DAEMON=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/api/v1/status" > /dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: daemon did not come up" >&2
  return 1
}

stop_daemon() {
  kill "$DAEMON" 2>/dev/null || true
  wait "$DAEMON" 2>/dev/null || true
}

submit_job() {
  curl -sf -X POST "$BASE/api/v1/jobs" -H 'Content-Type: application/json' \
    -d "{\"validated\":[\"zip\",\"phn\",\"type\",\"item\"],\"input_path\":\"$WORK/inputs/big.csv\",\"format\":\"csv\"}" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

wait_done() { # $1 = job id
  for _ in $(seq 1 600); do
    state=$(curl -sf "$BASE/api/v1/jobs/$1" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p' || true)
    case "$state" in
      done) return 0 ;;
      failed|cancelled)
        echo "FAIL: job $1 ended $state" >&2
        curl -sf "$BASE/api/v1/jobs/$1" >&2 || true
        return 1 ;;
    esac
    sleep 0.2
  done
  echo "FAIL: job $1 never finished" >&2
  return 1
}

# --- reference run: same input, no crash --------------------------------
start_daemon "$WORK/jobs-ref"
REF=$(submit_job)
[ -n "$REF" ] || { echo "FAIL: reference submit returned no job id" >&2; exit 1; }
wait_done "$REF"
cp "$WORK/jobs-ref/$REF/results.jsonl" "$WORK/reference.jsonl"
stop_daemon

# --- crash run: SIGKILL mid-job, restart, recover -----------------------
start_daemon "$WORK/jobs-crash"
JOB=$(submit_job)
[ -n "$JOB" ] || { echo "FAIL: crash-run submit returned no job id" >&2; exit 1; }
# Give the run a moment to get under way, then kill -9 — no drain, no
# shutdown hooks. (A job that finished before the kill still exercises
# the restart path and is tolerated, but the input is sized so the kill
# lands mid-run.)
sleep 0.1
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true

start_daemon "$WORK/jobs-crash"
trap stop_daemon EXIT
state=$(curl -sf "$BASE/api/v1/jobs/$JOB" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
echo "after restart, job $JOB is: $state (queued = interrupted mid-run and recovered)"
wait_done "$JOB"
cmp "$WORK/reference.jsonl" "$WORK/jobs-crash/$JOB/results.jsonl"
echo "crash-recovery smoke OK: job $JOB recovered after SIGKILL with a byte-identical $(wc -l < "$WORK/reference.jsonl" | tr -d ' ')-line artifact"
