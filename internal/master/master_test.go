package master

import (
	"errors"
	"testing"

	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
	"cerfix/internal/value"
)

func personSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew("PERSON",
		schema.Str("FN"), schema.Str("LN"), schema.Str("AC"),
		schema.Str("Hphn"), schema.Str("Mphn"), schema.Str("str"),
		schema.Str("city"), schema.Str("zip"))
}

func custSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew("CUST",
		schema.Str("FN"), schema.Str("LN"), schema.Str("AC"), schema.Str("phn"),
		schema.Str("type"), schema.Str("str"), schema.Str("city"), schema.Str("zip"),
		schema.Str("item"))
}

func demoStore(t *testing.T) *Store {
	t.Helper()
	m := New(personSchema(t))
	rows := [][]value.V{
		{"Robert", "Brady", "131", "6884563", "079172485", "501 Elm St", "Edi", "EH8 4AH"},
		{"Mark", "Smith", "020", "6884563", "075568485", "20 Baker St", "Ldn", "NW1 6XE"},
		{"Robert", "Brady", "131", "9999999", "079172485", "501 Elm St", "Edi", "EH8 4AH"},
	}
	for _, r := range rows {
		if _, err := m.InsertValues(r...); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestLookup(t *testing.T) {
	m := demoStore(t)
	got := m.Lookup([]string{"zip"}, value.List{"EH8 4AH"})
	if len(got) != 2 {
		t.Fatalf("Lookup = %d rows", len(got))
	}
	if got = m.Lookup([]string{"zip"}, value.List{"none"}); len(got) != 0 {
		t.Fatalf("phantom rows: %v", got)
	}
}

func TestLookupScanPathMatchesIndexed(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	indexed := m.Lookup([]string{"zip"}, value.List{"EH8 4AH"})
	m.SetUseIndexes(false)
	scanned := m.Lookup([]string{"zip"}, value.List{"EH8 4AH"})
	if len(indexed) != len(scanned) {
		t.Fatalf("indexed %d vs scanned %d", len(indexed), len(scanned))
	}
}

func mustParse(t *testing.T, line string) *rule.Rule {
	t.Helper()
	r, err := rule.Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestUniqueRHS(t *testing.T) {
	m := demoStore(t)
	// Both EH8 4AH tuples agree on AC=131: Unique.
	rhs, witness, st := m.UniqueRHS([]string{"zip"}, value.List{"EH8 4AH"}, []string{"AC"})
	if st != Unique {
		t.Fatalf("status = %v", st)
	}
	if len(rhs) != 1 || rhs[0] != "131" {
		t.Fatalf("rhs = %v", rhs)
	}
	if witness == 0 {
		t.Fatal("witness id missing")
	}
	// They disagree on Hphn: Conflict.
	_, _, st = m.UniqueRHS([]string{"zip"}, value.List{"EH8 4AH"}, []string{"Hphn"})
	if st != Conflict {
		t.Fatalf("status = %v, want Conflict", st)
	}
	// Unknown key: NoMatch.
	_, _, st = m.UniqueRHS([]string{"zip"}, value.List{"XX"}, []string{"AC"})
	if st != NoMatch {
		t.Fatalf("status = %v, want NoMatch", st)
	}
}

func TestUniqueRHSForRule(t *testing.T) {
	m := demoStore(t)
	cust := custSchema(t)
	r := mustParse(t, `phi4: match phn~Mphn set FN := FN when type = "2"`)
	input := schema.MustTuple(cust, "M.", "Smith", "020", "075568485", "2", "20 Baker St", "Ldn", "NW1 6XE", "DVD")
	rhs, _, st := m.UniqueRHSForRule(r, input)
	if st != Unique || rhs[0] != "Mark" {
		t.Fatalf("rhs = %v, status = %v", rhs, st)
	}
}

func TestPrepareForRules(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(
		mustParse(t, `a: match zip~zip set AC := AC`),
		mustParse(t, `b: match AC~AC, phn~Hphn set str := str`),
	)
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	if !m.Table().HasIndex([]string{"zip"}) {
		t.Error("zip index missing")
	}
	if !m.Table().HasIndex([]string{"AC", "Hphn"}) {
		t.Error("composite index missing")
	}
	// Idempotent.
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	// Unknown master attr errors.
	bad := rule.MustSet(mustParse(t, `c: match zip~bogus set AC := AC`))
	if err := m.PrepareForRules(bad); err == nil {
		t.Fatal("bad rule index accepted")
	}
}

func TestStatusString(t *testing.T) {
	if NoMatch.String() != "no-match" || Unique.String() != "unique" || Conflict.String() != "conflict" {
		t.Fatal("status names wrong")
	}
}

func TestStats(t *testing.T) {
	m := demoStore(t)
	s := m.Stats()
	if s.Tuples != 3 || s.Attributes != 8 || s.Schema == "" {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestGet(t *testing.T) {
	m := demoStore(t)
	id, err := m.InsertValues("A", "B", "1", "2", "3", "4", "5", "6")
	if err != nil {
		t.Fatal(err)
	}
	tu, ok := m.Get(id)
	if !ok || tu.Get("FN") != "A" {
		t.Fatal("Get failed")
	}
}

// A snapshot keeps answering from its frozen state — across all three
// access paths — while the live store absorbs inserts, and vice versa:
// the two share no mutable structures.
func TestSnapshotIsolation(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Len() != 3 || snap.Mode() != m.Mode() {
		t.Fatalf("snapshot: len %d mode %v", snap.Len(), snap.Mode())
	}

	// Insert a conflicting row into the live store: same zip, new AC.
	if _, err := m.InsertValues("Eve", "Jones", "999", "1", "2", "3 Elm", "Edi", "EH8 4AH"); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LookupMode{ModeRuleIndex, ModePlainIndex, ModeScan} {
		snap.SetMode(mode)
		rhs, _, status := snap.UniqueRHS([]string{"zip"}, value.List{"EH8 4AH"}, []string{"AC"})
		if status != Unique || rhs[0] != "131" {
			t.Fatalf("mode %v: snapshot sees live insert: %v %v", mode, rhs, status)
		}
	}
	// The live store, by contrast, now conflicts.
	if _, _, status := m.UniqueRHS([]string{"zip"}, value.List{"EH8 4AH"}, []string{"AC"}); status != Conflict {
		t.Fatalf("live store status = %v, want Conflict", status)
	}

	// Snapshots are read-only views: writes are rejected and nothing
	// leaks into either side.
	if !snap.Frozen() {
		t.Fatal("snapshot not marked frozen")
	}
	if _, err := snap.InsertValues("Zed", "Hall", "111", "1", "2", "9 Oak", "Ldn", "ZZ1 1ZZ"); !errors.Is(err, storage.ErrFrozen) {
		t.Fatalf("snapshot insert: err = %v, want ErrFrozen", err)
	}
	if m.Len() != 4 || snap.Len() != 3 {
		t.Fatalf("lens = live %d snap %d", m.Len(), snap.Len())
	}
	// A deep clone, by contrast, stays mutable and isolated both ways.
	cl := m.CloneDeep()
	if _, err := cl.InsertValues("Zed", "Hall", "111", "1", "2", "9 Oak", "Ldn", "ZZ1 1ZZ"); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 4 || cl.Len() != 5 {
		t.Fatalf("lens = live %d clone %d", m.Len(), cl.Len())
	}
	if got := m.Lookup([]string{"zip"}, value.List{"ZZ1 1ZZ"}); len(got) != 0 {
		t.Fatalf("clone insert leaked into live store: %v", got)
	}
}
