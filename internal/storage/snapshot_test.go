package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// TestSnapshotReadOnly: a snapshot is a frozen view — every mutator
// is rejected, reads need no locks, and snapshotting a snapshot is
// the identity.
func TestSnapshotReadOnly(t *testing.T) {
	tb := NewTable(personSchema(t))
	if err := tb.CreateIndex([]string{"zip"}); err != nil {
		t.Fatal(err)
	}
	id, err := tb.InsertValues("F", "L", "Z1")
	if err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()
	if !snap.Frozen() || tb.Frozen() {
		t.Fatalf("frozen flags: snap %v live %v", snap.Frozen(), tb.Frozen())
	}
	if snap.Snapshot() != snap {
		t.Fatal("snapshot of a snapshot is not the same view")
	}
	if _, err := snap.InsertValues("A", "B", "Z2"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Insert on snapshot: %v, want ErrFrozen", err)
	}
	row, _ := snap.Get(id)
	row.Set("zip", "Z9")
	if err := snap.Update(row); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Update on snapshot: %v, want ErrFrozen", err)
	}
	if _, err := snap.ApplyBatch([]Op{Delete(id)}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("ApplyBatch on snapshot: %v, want ErrFrozen", err)
	}
	// A new index cannot be built on a frozen view; an existing one
	// is answered idempotently.
	if err := snap.CreateIndex([]string{"FN"}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("CreateIndex on snapshot: %v, want ErrFrozen", err)
	}
	if err := snap.CreateIndex([]string{"zip"}); err != nil {
		t.Fatalf("idempotent CreateIndex on snapshot: %v", err)
	}
	if snap.Delete(id) {
		t.Error("Delete on snapshot reported success")
	}
	// The rejected mutations disturbed nothing.
	if snap.Len() != 1 || tb.Len() != 1 {
		t.Fatalf("lens: snap %d live %d", snap.Len(), tb.Len())
	}
	if got, _ := snap.Get(id); got.Get("zip") != "Z1" {
		t.Fatalf("snapshot row = %v", got)
	}
}

// snapExpect pairs a published snapshot with the writer-side truth at
// capture time.
type snapExpect struct {
	snap    *Table
	wantLen int
	wantGen uint64
	lastZip string // zip of the newest live row
	goneZip string // zip removed (deleted or overwritten) before capture
	nextZip string // zip of a row the writer inserts only after capture
}

// TestSnapshotHammer interleaves one writer (inserts, updates,
// deletes), O(1) snapshot captures, and concurrent snapshot readers.
// Under -race this is the copy-on-write soundness proof: every
// snapshot must see exactly its generation's rows and index contents
// — nothing torn, nothing from the future — while the writer keeps
// touching the shared shards.
func TestSnapshotHammer(t *testing.T) {
	tb := NewTable(personSchema(t))
	if err := tb.CreateIndex([]string{"zip"}); err != nil {
		t.Fatal(err)
	}

	const (
		iters   = 400
		readers = 4
	)
	snaps := make(chan snapExpect, iters)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range snaps {
				if got := e.snap.Generation(); got != e.wantGen {
					t.Errorf("snapshot generation = %d, want %d", got, e.wantGen)
					return
				}
				if got := e.snap.Len(); got != e.wantLen {
					t.Errorf("gen %d: Len = %d, want %d", e.wantGen, got, e.wantLen)
					return
				}
				if n := len(e.snap.LookupEq([]string{"zip"}, value.List{value.V(e.lastZip)})); n != 1 {
					t.Errorf("gen %d: newest row %q matched %d times via index", e.wantGen, e.lastZip, n)
					return
				}
				if e.goneZip != "" {
					if n := len(e.snap.LookupEq([]string{"zip"}, value.List{value.V(e.goneZip)})); n != 0 {
						t.Errorf("gen %d: removed row %q still indexed (%d hits)", e.wantGen, e.goneZip, n)
						return
					}
				}
				if n := len(e.snap.LookupEq([]string{"zip"}, value.List{value.V(e.nextZip)})); n != 0 {
					t.Errorf("gen %d: future row %q visible", e.wantGen, e.nextZip)
					return
				}
				// Scan agrees with Len and never surfaces a tombstone.
				count := 0
				e.snap.Scan(func(*schema.Tuple) bool { count++; return true })
				if count != e.wantLen {
					t.Errorf("gen %d: Scan yielded %d rows, want %d", e.wantGen, count, e.wantLen)
					return
				}
			}
		}()
	}

	// Single writer; the model (count, gen, zips) is its ground truth.
	// gen starts at the post-CreateIndex generation.
	var (
		ids   []int64
		zips  []string
		count int
		gen   = tb.Generation()
	)
	for i := 1; i <= iters; i++ {
		zip := fmt.Sprintf("Z%d", i)
		id, err := tb.InsertValues("F", "L", value.V(zip))
		if err != nil {
			t.Fatal(err)
		}
		ids, zips = append(ids, id), append(zips, zip)
		count++
		gen++
		lastZip, goneZip := zip, ""
		if i%3 == 0 {
			// Delete the oldest remaining row (tombstone path).
			if !tb.Delete(ids[0]) {
				t.Fatalf("delete of %d failed", ids[0])
			}
			goneZip = zips[0]
			ids, zips = ids[1:], zips[1:]
			count--
			gen++
		}
		if i%5 == 0 {
			// Rewrite the newest row's zip (update path: index remove+add).
			newZip := zip + "u"
			row, ok := tb.Get(id)
			if !ok {
				t.Fatalf("row %d vanished", id)
			}
			row.Set("zip", value.V(newZip))
			if err := tb.Update(row); err != nil {
				t.Fatal(err)
			}
			goneZip = zip
			zips[len(zips)-1] = newZip
			lastZip = newZip
			gen++
		}
		snaps <- snapExpect{
			snap:    tb.Snapshot(),
			wantLen: count,
			wantGen: gen,
			lastZip: lastZip,
			goneZip: goneZip,
			nextZip: fmt.Sprintf("Z%d", i+1),
		}
	}
	close(snaps)
	wg.Wait()
}

// TestDeleteTombstoneCompaction: deletes tombstone the order slice in
// O(1) and compaction reclaims it, while an earlier snapshot keeps
// the full view.
func TestDeleteTombstoneCompaction(t *testing.T) {
	tb := NewTable(personSchema(t))
	const total, dead = 1000, 900
	ids := make([]int64, 0, total)
	for i := 0; i < total; i++ {
		id, err := tb.InsertValues("F", "L", value.V(fmt.Sprintf("Z%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	snap := tb.Snapshot()
	for i := 0; i < dead; i++ {
		if !tb.Delete(ids[i]) {
			t.Fatalf("delete %d failed", ids[i])
		}
	}
	if tb.Len() != total-dead {
		t.Fatalf("Len = %d, want %d", tb.Len(), total-dead)
	}
	tb.mu.RLock()
	orderLen, tombs := len(tb.order), tb.dead
	tb.mu.RUnlock()
	if orderLen > 3*(total-dead) {
		t.Fatalf("order not compacted: %d slots for %d live rows (%d tombstones)", orderLen, total-dead, tombs)
	}
	// Scan yields exactly the survivors, in insertion order.
	var got []int64
	tb.Scan(func(tu *schema.Tuple) bool { got = append(got, tu.ID); return true })
	if len(got) != total-dead {
		t.Fatalf("scan found %d rows", len(got))
	}
	for i, id := range got {
		if id != ids[dead+i] {
			t.Fatalf("scan order[%d] = %d, want %d", i, id, ids[dead+i])
		}
	}
	// The pre-delete snapshot still sees everything.
	if snap.Len() != total {
		t.Fatalf("snapshot Len = %d after live compaction, want %d", snap.Len(), total)
	}
	n := 0
	snap.Scan(func(*schema.Tuple) bool { n++; return true })
	if n != total {
		t.Fatalf("snapshot scan = %d rows, want %d", n, total)
	}
}

// TestSnapshotCache: re-snapshotting an unchanged table returns the
// identical frozen view (no re-marking, no fresh COW debt); any
// mutation — row change or index build — invalidates the cache.
func TestSnapshotCache(t *testing.T) {
	tb := NewTable(personSchema(t))
	if _, err := tb.InsertValues("F", "L", "Z1"); err != nil {
		t.Fatal(err)
	}
	s1 := tb.Snapshot()
	if s2 := tb.Snapshot(); s2 != s1 {
		t.Fatal("unchanged table did not reuse its cached snapshot")
	}
	if _, err := tb.InsertValues("A", "B", "Z2"); err != nil {
		t.Fatal(err)
	}
	s3 := tb.Snapshot()
	if s3 == s1 {
		t.Fatal("mutation did not invalidate the snapshot cache")
	}
	if s1.Len() != 1 || s3.Len() != 2 {
		t.Fatalf("lens: s1 %d s3 %d", s1.Len(), s3.Len())
	}
	if err := tb.CreateIndex([]string{"zip"}); err != nil {
		t.Fatal(err)
	}
	s4 := tb.Snapshot()
	if s4 == s3 {
		t.Fatal("index build did not invalidate the snapshot cache")
	}
	if !s4.HasIndex([]string{"zip"}) || s3.HasIndex([]string{"zip"}) {
		t.Fatal("index visibility wrong across cached snapshots")
	}
}
