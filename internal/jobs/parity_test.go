package jobs

import (
	"context"
	"encoding/json"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// legacyArtifact renders the results.jsonl the LEGACY chase loop
// implies for the tuples: the compiled/legacy parity contract applied
// to pipeline artifacts (every job runs through pipeline workers,
// whose chasers execute the compiled program).
func legacyArtifact(t *testing.T, eng *core.Engine, tuples []*schema.Tuple, validated []string) [][]byte {
	t.Helper()
	sch := dataset.CustSchema()
	seed := schema.SetOfNames(sch, validated...)
	var lines [][]byte
	for i, tu := range tuples {
		res := eng.ChaseLegacy(tu, seed)
		rec := NewTupleResult(sch, &pipeline.Result{Seq: i, Input: tu, Fixed: res.Tuple, Chase: res})
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, data)
	}
	return lines
}

// TestCompiledLegacyArtifactParity proves the compiled agenda chase
// and the legacy loop agree byte for byte on pipeline artifacts: a
// real job's results.jsonl (compiled chasers in pipeline workers)
// equals the artifact rendered from Engine.ChaseLegacy, line by line.
func TestCompiledLegacyArtifactParity(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 30, 80)
	m, err := Open(Config{Dir: t.TempDir(), Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	spec := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		spec[i] = tu.Map()
	}
	j, err := m.SubmitInline(validated, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	path, err := m.ResultsPath(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := readArtifact(t, path)
	want := legacyArtifact(t, eng, dirty, validated)
	if len(got) != len(want) {
		t.Fatalf("artifact has %d lines, legacy reference %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("line %d differs from the legacy chase:\ncompiled: %s\nlegacy:   %s", i, got[i], want[i])
		}
	}
}
