package jobs

import (
	"context"
	"testing"
	"time"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
)

// countingGate blocks each job run at its snapshot hook and reports
// arrivals, letting tests observe true runner concurrency.
type countingGate struct {
	eng     *core.Engine
	arrived chan string
	release chan struct{}
}

func (g *countingGate) snapshot() *core.Engine {
	g.arrived <- "run"
	<-g.release
	return g.eng.Snapshot()
}

// TestConcurrentRunnersOverlapFIFO: with Workers=2 the manager runs
// two jobs at once — and admission stays fair FIFO: the two oldest
// queued jobs start, the newest waits for a free runner, and no third
// run is admitted while both runners are busy.
func TestConcurrentRunnersOverlapFIFO(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 30)
	g := &countingGate{eng: eng, arrived: make(chan string, 8), release: make(chan struct{})}
	m, err := Open(Config{Dir: t.TempDir(), Schema: dataset.CustSchema(), Snapshot: g.snapshot, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	tuples := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		tuples[i] = tu.Map()
	}
	j1, err := m.SubmitInline(validated, tuples)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.SubmitInline(validated, tuples[:10])
	if err != nil {
		t.Fatal(err)
	}
	j3, err := m.SubmitInline(validated, tuples[:5])
	if err != nil {
		t.Fatal(err)
	}

	// Both runners reach their (gated) snapshots concurrently.
	for i := 0; i < 2; i++ {
		select {
		case <-g.arrived:
		case <-time.After(10 * time.Second):
			t.Fatalf("runner %d never started a job", i+1)
		}
	}
	waitState(t, m, j1.ID, StateRunning)
	waitState(t, m, j2.ID, StateRunning)
	if j, _ := m.Get(j3.ID); j.State != StateQueued {
		t.Fatalf("newest job = %s while both runners busy, want queued (FIFO admission)", j.State)
	}
	// No third admission beyond the configured runner count.
	select {
	case <-g.arrived:
		t.Fatal("a third job was admitted with Workers=2")
	case <-time.After(100 * time.Millisecond):
	}

	close(g.release)
	for _, id := range []string{j1.ID, j2.ID, j3.ID} {
		waitState(t, m, id, StateDone)
	}
}

// TestConcurrentRunnersArtifactParity is the output-stability
// regression test for concurrent runners: the artifacts of jobs run
// by two overlapping runners are byte-identical to the same jobs run
// sequentially by one runner — and both match the sequential
// reference chase.
func TestConcurrentRunnersArtifactParity(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 30, 60)
	specs := [][]map[string]string{}
	full := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		full[i] = tu.Map()
	}
	specs = append(specs, full, full[:20], full[20:45], full[45:])

	run := func(workers int) map[int][][]byte {
		t.Helper()
		m, err := Open(Config{Dir: t.TempDir(), Schema: dataset.CustSchema(), Snapshot: eng.Snapshot, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close(context.Background())
		ids := make([]string, len(specs))
		for i, spec := range specs {
			j, err := m.SubmitInline(validated, spec)
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = j.ID
		}
		out := make(map[int][][]byte, len(specs))
		for i, id := range ids {
			waitState(t, m, id, StateDone)
			path, err := m.ResultsPath(id)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = readArtifact(t, path)
		}
		return out
	}

	sequential := run(1)
	concurrent := run(2)
	for i := range specs {
		seq, conc := sequential[i], concurrent[i]
		if len(seq) != len(conc) || len(seq) != len(specs[i]) {
			t.Fatalf("job %d: %d sequential vs %d concurrent lines for %d tuples",
				i, len(seq), len(conc), len(specs[i]))
		}
		for l := range seq {
			if string(seq[l]) != string(conc[l]) {
				t.Fatalf("job %d line %d differs between 1-runner and 2-runner managers:\nseq:  %s\nconc: %s",
					i, l, seq[l], conc[l])
			}
		}
	}
	// Both match the reference sequential chase, byte for byte.
	want := expectedArtifact(t, eng, dirty, validated)
	for l := range want {
		if string(concurrent[0][l]) != string(want[l]) {
			t.Fatalf("line %d differs from sequential chase reference", l)
		}
	}
}
