package experiments

import (
	"os"
	"runtime"
	"strings"
	"testing"

	"cerfix/internal/master"
)

func TestRunE1(t *testing.T) {
	res, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("E1: demo rules inconsistent")
	}
	if res.Errors != 0 {
		t.Fatalf("E1: errors = %d", res.Errors)
	}
	if res.Rules != 9 {
		t.Fatalf("E1: rules = %d", res.Rules)
	}
	if res.ProbesRun == 0 {
		t.Fatal("E1: no probes")
	}
}

func TestRunE2ReproducesFig3(t *testing.T) {
	res, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	// "After two rounds of interactions, all the attributes are
	// validated" (paper §3).
	if len(res.Rounds) != 2 {
		t.Fatalf("E2: rounds = %d, want 2", len(res.Rounds))
	}
	if !res.Certain || !res.MatchesGroundTruth {
		t.Fatalf("E2: certain=%v truth=%v", res.Certain, res.MatchesGroundTruth)
	}
	// Round 1 fixed FN with the M.->Mark normalization.
	foundFN := false
	for _, f := range res.Rounds[0].Fixed {
		if strings.HasPrefix(f, "FN:M.->Mark") {
			foundFN = true
		}
	}
	if !foundFN {
		t.Fatalf("E2 round 1 fixes = %v", res.Rounds[0].Fixed)
	}
	// Round 1's next suggestion is zip (Fig. 3(b)).
	if strings.Join(res.Rounds[0].NextSuggestion, ",") != "zip" {
		t.Fatalf("E2 next suggestion = %v", res.Rounds[0].NextSuggestion)
	}
	// Round 2 ends the session.
	if len(res.Rounds[1].NextSuggestion) != 0 {
		t.Fatalf("E2 round 2 suggestion = %v", res.Rounds[1].NextSuggestion)
	}
}

func TestRunE3Shape(t *testing.T) {
	// Mobile-only stream: the Fig. 3 scenario at scale. The smallest
	// region {item, phn, type, zip} covers 4 of 9 attributes, so the
	// auto share is ≈ 5/9 and the rule-covered columns are 100% auto.
	res, err := RunE3(30, 60, 0.3, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCertain {
		t.Fatal("E3: some sessions not certain")
	}
	o := res.Overall
	if o.Total() == 0 {
		t.Fatal("E3: empty stats")
	}
	// The auto share is bounded by the rule coverage of the schema: the
	// mobile region covers 4 of 9 attributes, and noise on `type` can
	// push single tuples into larger regions. Require the auto share
	// stays in the structural band (~40–60%).
	if o.AutoPct() < 40 {
		t.Fatalf("E3 mobile: auto %.1f%% below structural band", o.AutoPct())
	}
	if len(res.PerAttr) == 0 {
		t.Fatal("E3: no per-attr stats")
	}
	// str and city are rule targets in every pattern cell and belong to
	// no suggested region of a mobile stream: 100% auto-validated —
	// the per-column Fig. 4 statistic at its extreme.
	for _, s := range res.PerAttr {
		switch s.Attr {
		case "str", "city":
			if s.UserValidated != 0 {
				t.Fatalf("E3: %s user-validated %d times", s.Attr, s.UserValidated)
			}
			if s.AutoPct() != 100 {
				t.Fatalf("E3: %s auto = %.1f%%", s.Attr, s.AutoPct())
			}
		}
	}
	if res.RewriteShare <= 0 {
		t.Fatal("E3: no rewrites despite noise")
	}
}

func TestRunE3MixedStream(t *testing.T) {
	// A 50/50 home/mobile mix needs bigger regions for home tuples
	// (FN/LN are underivable when type=1): user effort grows but all
	// fixes stay certain.
	res, err := RunE3(30, 60, 0.3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCertain {
		t.Fatal("E3 mixed: not all certain")
	}
	mobile, err := RunE3(30, 60, 0.3, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.UserPct() <= mobile.Overall.UserPct() {
		t.Fatalf("E3: mixed user%% %.1f <= mobile user%% %.1f",
			res.Overall.UserPct(), mobile.Overall.UserPct())
	}
}

func TestRunE4Shape(t *testing.T) {
	rows, err := RunE4([]float64{0.1, 0.4}, 20, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("E4: rows = %d", len(rows))
	}
	for _, r := range rows {
		// The defining property: certain fixes have precision 1.0.
		if p := r.CerFix.Precision(); p != 1.0 {
			t.Fatalf("E4 noise %.1f: CerFix precision %v != 1.0", r.NoiseRate, p)
		}
		// And they fix everything (oracle supplies the region, rules
		// the rest).
		if rec := r.CerFix.Recall(); rec != 1.0 {
			t.Fatalf("E4 noise %.1f: CerFix recall %v != 1.0", r.NoiseRate, rec)
		}
		// The heuristic baseline is strictly worse on F1.
		if r.Baseline.F1() >= r.CerFix.F1() {
			t.Fatalf("E4 noise %.1f: baseline F1 %v >= CerFix %v",
				r.NoiseRate, r.Baseline.F1(), r.CerFix.F1())
		}
	}
	// At higher noise, the baseline breaks correct cells (Example 1's
	// failure materializes at scale).
	if rows[1].BaselineBroken == 0 {
		t.Fatal("E4: baseline broke no cells at 40% noise")
	}
}

func TestRunE5MasterShape(t *testing.T) {
	rows, err := RunE5Master([]int{100, 1000}, 20, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RuleIdxNsPerFix <= 0 || r.PlainIdxNsPerFix <= 0 {
			t.Fatalf("bad timing: %+v", r)
		}
		if !r.ScanMeasured {
			t.Fatalf("scan skipped at %d", r.MasterSize)
		}
	}
	// Ordering at 1000 master rows: rule-index <= plain-index <= scan
	// (allow slack on the first inequality; both are fast).
	if rows[1].ScanNsPerFix <= rows[1].PlainIdxNsPerFix {
		t.Fatalf("scan (%.0f ns) not slower than plain index (%.0f ns)",
			rows[1].ScanNsPerFix, rows[1].PlainIdxNsPerFix)
	}
	if rows[1].RuleIdxNsPerFix > rows[1].ScanNsPerFix {
		t.Fatalf("rule index (%.0f ns) slower than scan (%.0f ns)",
			rows[1].RuleIdxNsPerFix, rows[1].ScanNsPerFix)
	}
}

func TestRunE5RulesShape(t *testing.T) {
	rows, err := RunE5Rules([]int{1, 4}, 200, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Rules != 9 || rows[1].Rules != 36 {
		t.Fatalf("rule counts = %d, %d", rows[0].Rules, rows[1].Rules)
	}
	if rows[0].NsPerFix <= 0 || rows[1].NsPerFix <= 0 {
		t.Fatal("bad timings")
	}
}

func TestRunE6Shape(t *testing.T) {
	rows, err := RunE6([]float64{0.1, 0.5}, 20, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Effort is driven by region size: about 4-6 of 9 attributes.
		if r.AvgValidated < 3 || r.AvgValidated > 7 {
			t.Fatalf("E6 noise %.1f: AvgValidated = %v", r.NoiseRate, r.AvgValidated)
		}
		if r.AvgRounds < 1 || r.AvgRounds > 3 {
			t.Fatalf("E6 noise %.1f: AvgRounds = %v", r.NoiseRate, r.AvgRounds)
		}
		if r.UserFraction <= 0 || r.UserFraction >= 1 {
			t.Fatalf("E6: UserFraction = %v", r.UserFraction)
		}
	}
	// More noise → larger share of auto-validated cells are rewrites.
	if rows[1].AutoRewriteShare <= rows[0].AutoRewriteShare {
		t.Fatalf("E6: rewrite share did not grow with noise: %v vs %v",
			rows[0].AutoRewriteShare, rows[1].AutoRewriteShare)
	}
}

func TestRunE7Shape(t *testing.T) {
	rows, err := RunE7([]int{2, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		m := r.Attrs / 2
		// Minimal regions pick one attribute per pair.
		if r.ExactBestSize != m {
			t.Fatalf("E7 m=%d: exact best size = %d", m, r.ExactBestSize)
		}
		// Greedy covers but may be larger; never smaller than exact.
		if r.GreedyBestSize < r.ExactBestSize {
			t.Fatalf("E7 m=%d: greedy %d < exact %d", m, r.GreedyBestSize, r.ExactBestSize)
		}
		if r.ExactNs <= 0 || r.GreedyNs <= 0 {
			t.Fatal("bad timings")
		}
		if r.ExactRegions == 0 {
			t.Fatal("no exact regions")
		}
	}
}

func TestRunE3HospApproachesPaperSplit(t *testing.T) {
	res, err := RunE3Hosp(50, 80, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCertain {
		t.Fatal("E3-HOSP: not all certain")
	}
	o := res.Overall
	// The minimal HOSP region covers 3 of 11 attributes: the user share
	// is structurally 3/11 ≈ 27%, the closest our schemas come to the
	// paper's 20/80 headline.
	if o.UserPct() < 20 || o.UserPct() > 35 {
		t.Fatalf("E3-HOSP: user%% = %.1f, want ~27", o.UserPct())
	}
	if o.AutoPct() < 65 {
		t.Fatalf("E3-HOSP: auto%% = %.1f", o.AutoPct())
	}
}

func TestRunE3DblpSplit(t *testing.T) {
	res, err := RunE3Dblp(60, 80, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCertain {
		t.Fatal("E3-DBLP: not all certain")
	}
	o := res.Overall
	// The minimal DBLP region is {key} alone (the DBLP key determines
	// everything, then venue -> vfull chains): 1 of 6 attributes, a
	// structural floor of ~17%% user. Measured ~19%% — landing on the
	// paper's headline "20%% validated by users / 80%% fixed by
	// CerFix" almost exactly.
	if o.UserPct() < 15 || o.UserPct() > 28 {
		t.Fatalf("E3-DBLP: user%% = %.1f, want ~17-20", o.UserPct())
	}
	if o.AutoPct() < 72 {
		t.Fatalf("E3-DBLP: auto%% = %.1f", o.AutoPct())
	}
}

func TestRunE4HospShape(t *testing.T) {
	rows, err := RunE4Hosp([]float64{0.25}, 25, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.CerFix.Precision() != 1.0 || r.CerFix.Recall() != 1.0 {
		t.Fatalf("CerFix P/R = %v/%v", r.CerFix.Precision(), r.CerFix.Recall())
	}
	if r.Baseline.F1() >= r.CerFix.F1() {
		t.Fatalf("baseline F1 %v >= CerFix", r.Baseline.F1())
	}
	// Plurality alignment recovers *some* errors (duplicated groups)
	// but stays well below CerFix recall.
	if r.Baseline.Recall() >= 0.9 {
		t.Fatalf("baseline recall suspiciously high: %v", r.Baseline.Recall())
	}
}

// E8's shape: one row per (mode, workers), throughput positive,
// speedup normalized to the 1-worker run of each mode. The pipeline's
// output-equality assertion runs inside RunE8 itself, so a passing
// run also certifies determinism. The ≥2x scaling bar needs real
// cores — asserted only where the hardware can physically show it.
func TestRunE8Shape(t *testing.T) {
	counts := []int{1, 4}
	rows, err := RunE8(counts, 40, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(counts) {
		t.Fatalf("rows = %d, want %d", len(rows), 2*len(counts))
	}
	for _, r := range rows {
		if r.TuplesPerSec <= 0 || r.NsPerFix <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
		if r.Workers == 1 && r.Speedup != 1.0 {
			t.Fatalf("1-worker speedup = %v", r.Speedup)
		}
	}
	// Wall-clock scaling needs ≥4 real cores and no race-detector
	// serialization — conditions shared CI runners don't guarantee —
	// so the hard ≥2x bar is opt-in (CERFIX_STRICT_SCALING=1 on
	// dedicated hardware); elsewhere the measurement is logged, and
	// cerfixbench -exp e8 reports it per run.
	strict := os.Getenv("CERFIX_STRICT_SCALING") == "1" && runtime.NumCPU() >= 4
	for _, r := range rows {
		if r.Mode == master.ModePlainIndex && r.Workers == 4 {
			t.Logf("plain-index speedup at 4 workers: %.2fx (NumCPU=%d)", r.Speedup, runtime.NumCPU())
			if strict && r.Speedup < 2.0 {
				t.Errorf("plain-index speedup at 4 workers = %.2fx, want >= 2x", r.Speedup)
			}
		}
	}
}

// E9's shape: one row per master size, every latency populated, and —
// the point of the COW rework — the copy-on-write snapshot orders of
// magnitude cheaper than the deep clone even at test sizes. The
// deep-vs-COW fix-parity assertion runs inside RunE9 itself, so a
// passing run also certifies the two snapshot kinds agree.
func TestRunE9Shape(t *testing.T) {
	sizes := []int{500, 2000}
	rows, err := RunE9(sizes, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sizes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(sizes))
	}
	for i, r := range rows {
		if r.MasterSize != sizes[i] {
			t.Fatalf("row %d size = %d, want %d", i, r.MasterSize, sizes[i])
		}
		if r.DeepCloneNs <= 0 || r.CowSnapshotNs <= 0 || r.DeepFixNs <= 0 || r.CowFixNs <= 0 || r.CowWriterNs <= 0 {
			t.Fatalf("row %d has unpopulated measurements: %+v", i, r)
		}
		if r.CowSnapshotNs*10 > r.DeepCloneNs {
			t.Fatalf("size %d: COW snapshot %dns not clearly cheaper than deep clone %dns",
				r.MasterSize, r.CowSnapshotNs, r.DeepCloneNs)
		}
	}
}

func TestRunE10Shape(t *testing.T) {
	ruleCounts := []int{1, 8}
	sizes := []int{500}
	rows, err := RunE10(ruleCounts, sizes, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ruleCounts)*len(sizes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ruleCounts)*len(sizes))
	}
	for i, r := range rows {
		if r.Rules != ruleCounts[i%len(ruleCounts)] || r.MasterSize != sizes[i/len(ruleCounts)] {
			t.Fatalf("row %d is cell (%d rules, %d size), want (%d, %d)",
				i, r.Rules, r.MasterSize, ruleCounts[i%len(ruleCounts)], sizes[i/len(ruleCounts)])
		}
		if r.CompiledNsPerFix <= 0 || r.LegacyNsPerFix <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %d has unpopulated measurements: %+v", i, r)
		}
		// The legacy loop allocates per call (result clone, dedup maps,
		// key strings); the compiled scratch path must allocate far
		// less. The strict 0 steady-state claim is pinned by the alloc
		// suite — here a loose bound keeps the shape test robust on
		// noisy CI machines.
		if r.LegacyAllocsPerFix < 10 {
			t.Fatalf("rules=%d: legacy allocs/fix = %.1f, expected the allocating baseline", r.Rules, r.LegacyAllocsPerFix)
		}
		if r.CompiledAllocsPerFix > r.LegacyAllocsPerFix/4 {
			t.Fatalf("rules=%d: compiled allocs/fix %.1f not clearly below legacy %.1f",
				r.Rules, r.CompiledAllocsPerFix, r.LegacyAllocsPerFix)
		}
	}
}

// ruleSetOfSize must produce exactly n valid rules whose extra copies
// are idempotent clones (same fixes as the base prefix).
func TestRuleSetOfSize(t *testing.T) {
	for _, n := range []int{1, 9, 10, 64} {
		rs, err := ruleSetOfSize(n)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() != n {
			t.Fatalf("ruleSetOfSize(%d) has %d rules", n, rs.Len())
		}
	}
}
