package value

import (
	"testing"
	"testing/quick"
)

func TestNull(t *testing.T) {
	var v V
	if !v.IsNull() {
		t.Fatal("zero value is not null")
	}
	if V("x").IsNull() {
		t.Fatal("non-empty value reported null")
	}
}

func TestDomainRoundTrip(t *testing.T) {
	for _, d := range []Domain{DString, DInt, DFloat} {
		got, err := ParseDomain(d.String())
		if err != nil {
			t.Fatalf("ParseDomain(%q): %v", d.String(), err)
		}
		if got != d {
			t.Fatalf("round trip %v -> %v", d, got)
		}
	}
	if _, err := ParseDomain("bogus"); err == nil {
		t.Fatal("ParseDomain accepted bogus domain")
	}
	if d, err := ParseDomain(""); err != nil || d != DString {
		t.Fatalf("empty domain should default to string, got %v, %v", d, err)
	}
}

func TestCompareString(t *testing.T) {
	if Compare("a", "b", DString) != -1 {
		t.Error("a < b failed")
	}
	if Compare("b", "a", DString) != 1 {
		t.Error("b > a failed")
	}
	if Compare("a", "a", DString) != 0 {
		t.Error("a == a failed")
	}
}

func TestCompareNullOrdering(t *testing.T) {
	for _, d := range []Domain{DString, DInt, DFloat} {
		if Compare(Null, "0", d) != -1 {
			t.Errorf("null should sort first under %v", d)
		}
		if Compare("0", Null, d) != 1 {
			t.Errorf("non-null should sort after null under %v", d)
		}
		if Compare(Null, Null, d) != 0 {
			t.Errorf("null != null under %v", d)
		}
	}
}

func TestCompareInt(t *testing.T) {
	if Compare("9", "10", DInt) != -1 {
		t.Error("numeric ordering failed for ints")
	}
	if Compare("9", "10", DString) != 1 {
		t.Error("string ordering sanity check failed")
	}
	if !Equal("07", "7", DInt) {
		t.Error("07 should equal 7 under DInt")
	}
	// Unparsable values sort after parsable ones.
	if Compare("abc", "999999", DInt) != 1 {
		t.Error("unparsable int should sort after parsable")
	}
	if Compare("999999", "abc", DInt) != -1 {
		t.Error("parsable int should sort before unparsable")
	}
	if Compare("abc", "abd", DInt) != -1 {
		t.Error("two unparsable ints should fall back to string order")
	}
}

func TestCompareFloat(t *testing.T) {
	if Compare("2.5", "10.0", DFloat) != -1 {
		t.Error("numeric ordering failed for floats")
	}
	if !Equal("1.50", "1.5", DFloat) {
		t.Error("1.50 should equal 1.5 under DFloat")
	}
	if Compare("x", "1.0", DFloat) != 1 {
		t.Error("unparsable float should sort after parsable")
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b string) bool {
		for _, d := range []Domain{DString, DInt, DFloat} {
			if Compare(V(a), V(b), d) != -Compare(V(b), V(a), d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareReflexive(t *testing.T) {
	f := func(a string) bool {
		for _, d := range []Domain{DString, DInt, DFloat} {
			if Compare(V(a), V(a), d) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestListKeyInjective(t *testing.T) {
	a := List{"ab", "c"}
	b := List{"a", "bc"}
	if a.Key() == b.Key() {
		t.Fatal("composite keys collided")
	}
	if a.Key() != (List{"ab", "c"}).Key() {
		t.Fatal("equal lists produced different keys")
	}
}

func TestListKeyProperty(t *testing.T) {
	f := func(a, b []string) bool {
		la, lb := FromStrings(a), FromStrings(b)
		if la.Equal(lb) {
			return la.Key() == lb.Key()
		}
		return la.Key() != lb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// AppendKey must emit byte-for-byte what Key returns — the rule
// indexes are built with Key strings and probed with AppendKey
// buffers, so any drift would silently miss every entry.
func TestAppendKeyMatchesKey(t *testing.T) {
	cases := []List{
		nil,
		{""},
		{"a"},
		{"ab", "c"},
		{"a", "bc"},
		{"", "", ""},
		{"EH8 4AH", "131"},
		{"with:colon", "12:34"},
	}
	for _, l := range cases {
		if got := string(l.AppendKey(nil)); got != l.Key() {
			t.Errorf("AppendKey(%v) = %q, Key = %q", l, got, l.Key())
		}
	}
	// Appends extend, never restart.
	buf := []byte("prefix")
	buf = (List{"x"}).AppendKey(buf)
	if string(buf) != "prefix"+(List{"x"}).Key() {
		t.Errorf("AppendKey clobbered the buffer: %q", buf)
	}
	f := func(a []string) bool {
		l := FromStrings(a)
		return string(l.AppendKey(nil)) == l.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestListEqual(t *testing.T) {
	if !(List{"a", "b"}).Equal(List{"a", "b"}) {
		t.Error("equal lists reported unequal")
	}
	if (List{"a"}).Equal(List{"a", "b"}) {
		t.Error("length mismatch reported equal")
	}
	if (List{"a", "b"}).Equal(List{"a", "c"}) {
		t.Error("different lists reported equal")
	}
}

func TestListStringsRoundTrip(t *testing.T) {
	in := []string{"x", "", "z"}
	out := FromStrings(in).Strings()
	if len(out) != 3 || out[0] != "x" || out[1] != "" || out[2] != "z" {
		t.Fatalf("round trip failed: %v", out)
	}
}

func TestCompareDate(t *testing.T) {
	if Compare("25/12/67", "03/04/79", DDate) != -1 {
		t.Error("1967 should precede 1979")
	}
	if Compare("01/01/29", "31/12/30", DDate) != 1 {
		t.Error("two-digit pivot: 2029 should follow 1930")
	}
	if Compare("05/06/2001", "05/06/01", DDate) != 0 {
		t.Error("two- and four-digit years should agree")
	}
	if Compare("02/03/99", "01/03/99", DDate) != 1 {
		t.Error("day ordering failed")
	}
	// Unparsable dates sort after parsable, by string among themselves.
	if Compare("notadate", "01/01/70", DDate) != 1 {
		t.Error("unparsable should sort after parsable")
	}
	if Compare("aaa", "bbb", DDate) != -1 {
		t.Error("unparsable fallback ordering")
	}
	for _, bad := range []string{"1/2", "a/b/c", "32/01/99", "01/13/99", "1/2/3/4", ""} {
		if _, ok := parseDate(bad); ok {
			t.Errorf("parseDate(%q) accepted", bad)
		}
	}
	if d, err := ParseDomain("date"); err != nil || d != DDate {
		t.Error("date domain name")
	}
	if DDate.String() != "date" {
		t.Error("DDate.String")
	}
}
