//go:build !race

// External test package: internal/experiments imports cerfix (for the
// e12 persistence measurements), so an in-package test file could not
// import experiments back without a cycle.
package cerfix_test

import (
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/experiments"
	"cerfix/internal/schema"
)

// TestChaseSteadyStateZeroAlloc is the allocation companion of
// BenchmarkChaseSingle: once a Chaser's scratch buffers are warm, the
// full Fig. 3 chase on the happy path (rule-index access, no
// conflicts) must perform ZERO heap allocations per tuple. Guarded
// out under the race detector, whose instrumentation allocates; the
// finer-grained variant (live vs snapshot engines) lives in
// internal/core's alloc suite.
func TestChaseSteadyStateZeroAlloc(t *testing.T) {
	eng, err := experiments.DemoEngine()
	if err != nil {
		t.Fatal(err)
	}
	ch := eng.NewChaser()
	in := dataset.DemoInputFig3()
	seed := schema.SetOfNames(dataset.CustSchema(), "AC", "phn", "type", "item", "zip")
	ok := true
	for i := 0; i < 8; i++ { // warm the scratch buffers
		ok = ok && ch.ChaseScratch(in, seed).AllValidated()
	}
	avg := testing.AllocsPerRun(200, func() {
		ok = ok && ch.ChaseScratch(in, seed).AllValidated()
	})
	if !ok {
		t.Fatal("chase incomplete")
	}
	if avg != 0 {
		t.Errorf("steady-state chase allocates %v per tuple, want 0", avg)
	}
}
