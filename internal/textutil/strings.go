package textutil

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete and substitute). It is used by the noise injector to
// verify perturbations and by the heuristic-repair cost model, where the
// cost of changing a cell is proportional to the distance between the
// old and new values.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// NormalizeSpace collapses runs of whitespace into single spaces and
// trims the ends. Master-data values and user input are normalized this
// way before comparison so that formatting noise does not defeat exact
// match semantics.
func NormalizeSpace(s string) string {
	fields := strings.Fields(s)
	return strings.Join(fields, " ")
}

// IsDigits reports whether s is non-empty and consists only of ASCII
// digits; used for light validation of phone numbers and area codes.
func IsDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// TitleCase upper-cases the first letter of every word and lower-cases
// the rest ("eLm sTreet" -> "Elm Street"). The dataset generator uses it
// to build consistent reference values.
func TitleCase(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	startWord := true
	for _, r := range s {
		switch {
		case unicode.IsSpace(r):
			startWord = true
			b.WriteRune(r)
		case startWord:
			b.WriteRune(unicode.ToUpper(r))
			startWord = false
		default:
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}

// PadRight pads s with spaces to at least width characters; used by the
// benchmark drivers to print aligned text tables.
func PadRight(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// PadLeft pads s with spaces on the left to at least width characters.
func PadLeft(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}
