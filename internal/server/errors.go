package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// This file defines the API's one error shape. Every handler, the
// panic-recovery middleware and the rate limiter answer failures with
// the same typed envelope,
//
//	{"error": {"code": "...", "message": "...", "request_id": "..."}}
//
// where code is a stable machine-readable identifier (clients switch
// on it; the message is for humans and may change), and request_id
// echoes the X-Request-Id the request was served under, so a client
// report can be joined against the access log.
//
// Status mapping is uniform across the surface:
//
//	400 invalid_argument   malformed body/query/path — not valid input
//	404 not_found          no such rule/session/job/tuple/route
//	409 conflict           valid request, wrong lifecycle state
//	413 body_too_large     request body past the -max-body cap
//	422 invalid_input      well-formed but semantically rejected
//	429 rate_limited       per-key token bucket empty
//	429 overloaded         sync fix concurrency cap reached
//	429 backlog_full       jobs queue at -max-queued-jobs
//	429 memory_pressure    heap past the soft watermark; submits shed
//	500 internal           server fault (I/O, panic)
//	503 jobs_disabled      daemon started without -jobs-dir
//	503 shutting_down      draining; queue closed
//	503 persistence_degraded  durable storage unhealthy; retry later
//	503 memory_degraded    heap past the hard watermark
//	504 deadline_exceeded  request ran past -request-timeout
//
// Every 429 — and the persistence_degraded and memory_degraded 503s —
// carries a computed Retry-After (seconds).

// The stable error codes.
const (
	codeInvalidArgument = "invalid_argument"
	codeInvalidInput    = "invalid_input"
	codeNotFound        = "not_found"
	codeConflict        = "conflict"
	codeRateLimited     = "rate_limited"
	codeOverloaded      = "overloaded"
	codeBacklogFull     = "backlog_full"
	codeInternal        = "internal"
	codeJobsDisabled    = "jobs_disabled"
	codeShuttingDown    = "shutting_down"
	// codePersistenceDegraded marks work refused because durable
	// storage is unhealthy (failed fsync, ENOSPC): job submissions are
	// shed rather than acknowledged into a journal that could lose
	// them, while read-only and in-memory work (sync /fix) continues.
	// The daemon recovers automatically once its health probe succeeds.
	codePersistenceDegraded = "persistence_degraded"
	// codeDeadlineExceeded: the handler ran past -request-timeout and
	// its per-request context expired mid-work.
	codeDeadlineExceeded = "deadline_exceeded"
	// codeBodyTooLarge: the request body exceeded -max-body; the read
	// stopped at the cap, so the daemon never buffered the excess.
	codeBodyTooLarge = "body_too_large"
	// codeMemoryPressure / codeMemoryDegraded are the soft and hard
	// heap-watermark sheds (-mem-soft/-mem-hard): soft sheds new job
	// submits with 429, hard is the degraded 503 surfaced on /status.
	codeMemoryPressure = "memory_pressure"
	codeMemoryDegraded = "memory_degraded"
)

// errorBody is the envelope payload.
type errorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

// errorEnvelope is the wire shape of every non-2xx response.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// reqMeta travels in the request context: the assigned request ID,
// plus the error code of the response (set by writeErr) for the
// access log's shed/fault column.
type reqMeta struct {
	id   string
	code string
}

type reqMetaKey struct{}

// metaFrom returns the request's meta, or a zero placeholder when the
// middleware chain is absent (direct handler tests).
func metaFrom(r *http.Request) *reqMeta {
	if m, ok := r.Context().Value(reqMetaKey{}).(*reqMeta); ok {
		return m
	}
	return &reqMeta{}
}

// withMeta stores meta in the request context.
func withMeta(r *http.Request, m *reqMeta) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), reqMetaKey{}, m))
}

// writeDecodeErr classifies a request-body decode failure: a body the
// -max-body reader truncated is the typed 413; anything else is the
// plain 400 malformed-body envelope.
func writeDecodeErr(w http.ResponseWriter, r *http.Request, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeErr(w, r, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
			fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit))
		return
	}
	writeErr(w, r, http.StatusBadRequest, codeInvalidArgument, err)
}

// writeErr renders the typed envelope. All error paths funnel through
// here — writeError-style ad-hoc shapes are gone.
func writeErr(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	m := metaFrom(r)
	m.code = code
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code:      code,
		Message:   err.Error(),
		RequestID: m.id,
	}})
}
