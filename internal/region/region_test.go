package region

import (
	"strings"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func demoEngine(t *testing.T) *core.Engine {
	t.Helper()
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTopKDemoSmallestRegion(t *testing.T) {
	f := NewFinder(demoEngine(t))
	regions := f.TopK(nil)
	if len(regions) == 0 {
		t.Fatal("no regions found")
	}
	// The smallest certain region of the demo configuration is
	// {item, phn, type, zip}: in the mobile cell, zip covers AC/str/
	// city (φ1–φ3) and phn+type cover FN/LN (φ4/φ5); item is dead.
	best := regions[0]
	want := []string{"item", "phn", "type", "zip"}
	got := best.AttrNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("best region = %v, want %v", got, want)
	}
	if best.Size() != 4 {
		t.Fatalf("Size = %d", best.Size())
	}
	if len(best.Tableau.Rows) == 0 {
		t.Fatal("best region has no tableau rows")
	}
	// Ranking is ascending by size.
	for i := 1; i < len(regions); i++ {
		if regions[i].Size() < regions[i-1].Size() {
			t.Fatalf("regions not sorted by size: %v", regions)
		}
	}
}

// Every region's guarantee must hold concretely: take any master
// tuple matched by a tableau row, build an input with garbage in all
// non-Z attributes, chase with Z validated — everything must come back
// validated and equal to the entity's values.
func TestRegionGuaranteeHolds(t *testing.T) {
	e := demoEngine(t)
	f := NewFinder(e)
	regions := f.TopK(nil)
	input := e.InputSchema()
	for _, reg := range regions {
		for _, row := range reg.Tableau.Rows {
			// Build a tuple satisfying the row with junk elsewhere.
			vals := make(value.List, input.Len())
			for i := range vals {
				vals[i] = value.V("garbage")
			}
			ok := true
			for _, cond := range row.Conds {
				i := input.MustIndex(cond.Attr)
				if cond.Op == pattern.OpEq {
					vals[i] = cond.Const
				}
				if !cond.Matches(vals[i], input.Attr(i).Domain) {
					ok = false
				}
			}
			if !ok {
				continue // row with non-equality conditions; guarantee checked via probe in finder
			}
			tu := &schema.Tuple{Schema: input, Vals: vals}
			if !reg.Covers(tu) {
				continue
			}
			res := e.Chase(tu, reg.Z)
			if !res.AllValidated() {
				t.Fatalf("region %v row %v: chase left %v unvalidated",
					reg, row, schema.FullSet(input).Minus(res.Validated).Format(input))
			}
			if len(res.Conflicts) != 0 {
				t.Fatalf("region %v row %v: conflicts %v", reg, row, res.Conflicts)
			}
		}
	}
}

func TestRegionCovers(t *testing.T) {
	e := demoEngine(t)
	f := NewFinder(e)
	regions := f.TopK(nil)
	best := regions[0] // {item, phn, type, zip}
	// The Fig. 3 ground-truth tuple (Mark Smith, mobile) projects onto
	// master values: covered.
	if !best.Covers(dataset.DemoGroundTruthFig3()) {
		t.Fatalf("ground-truth tuple not covered by %v", best)
	}
	// A tuple with an unknown zip is not covered.
	odd := dataset.DemoGroundTruthFig3().Clone()
	odd.Set("zip", "ZZ9 9ZZ")
	if best.Covers(odd) {
		t.Fatal("tuple with foreign zip covered")
	}
}

func TestTopKLimit(t *testing.T) {
	f := NewFinder(demoEngine(t))
	all := f.TopK(nil)
	if len(all) < 2 {
		t.Skipf("only %d regions; cannot test K", len(all))
	}
	one := f.TopK(&Options{K: 1})
	if len(one) != 1 {
		t.Fatalf("K=1 returned %d", len(one))
	}
	if one[0].String() != all[0].String() {
		t.Fatal("K=1 did not return the best region")
	}
}

func TestGreedyFindsCoveringRegions(t *testing.T) {
	f := NewFinder(demoEngine(t))
	regions := f.TopK(&Options{Greedy: true})
	if len(regions) == 0 {
		t.Fatal("greedy found nothing")
	}
	e := demoEngine(t)
	for _, reg := range regions {
		// Greedy regions still satisfy the symbolic cover in their
		// cells (verified inside finder by chase); sanity: sizes sane.
		if reg.Size() == 0 || reg.Size() > e.InputSchema().Len() {
			t.Fatalf("weird region size: %v", reg)
		}
	}
}

func TestGreedyNotSmallerThanExact(t *testing.T) {
	f := NewFinder(demoEngine(t))
	exact := f.TopK(nil)
	greedy := f.TopK(&Options{Greedy: true})
	if len(exact) == 0 || len(greedy) == 0 {
		t.Fatal("missing regions")
	}
	if greedy[0].Size() < exact[0].Size() {
		t.Fatalf("greedy best %d < exact best %d", greedy[0].Size(), exact[0].Size())
	}
}

// Without master data there is no coverage: no regions.
func TestNoMasterNoRegions(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	regions := NewFinder(e).TopK(nil)
	if len(regions) != 0 {
		t.Fatalf("regions without master data: %v", regions)
	}
}

// A rule set with no rules: the only region is the full attribute set,
// but with no rules there is no master coverage requirement at all —
// Z = all attributes and every tuple trivially matches. Our finder
// requires tableau rows instantiated from master tuples; with no rules
// the bound attribute set is empty so a single unconstrained row per
// cell appears.
func TestEmptyRuleSet(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := rule.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	regions := NewFinder(e).TopK(nil)
	if len(regions) != 1 {
		t.Fatalf("regions = %v, want exactly the full-set region", regions)
	}
	if regions[0].Size() != e.InputSchema().Len() {
		t.Fatalf("size = %d", regions[0].Size())
	}
	// Full-set region covers any tuple.
	if !regions[0].Covers(dataset.DemoInputExample1()) {
		t.Fatal("full-set region must cover everything")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var nilOpts *Options
	o := nilOpts.withDefaults()
	if o.MaxRegionsPerCell != 8 || o.MaxCells != 64 || o.K != 0 || o.Greedy {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := (&Options{K: 3, MaxCells: 5}).withDefaults()
	if o2.K != 3 || o2.MaxCells != 5 || o2.MaxRegionsPerCell != 8 {
		t.Fatalf("merged = %+v", o2)
	}
}

func TestRegionString(t *testing.T) {
	f := NewFinder(demoEngine(t))
	regions := f.TopK(&Options{K: 1})
	if len(regions) == 0 {
		t.Fatal("no regions")
	}
	s := regions[0].String()
	if !strings.Contains(s, "item") || !strings.Contains(s, "rows") {
		t.Fatalf("String = %q", s)
	}
}
