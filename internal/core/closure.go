package core

import (
	"sort"

	"cerfix/internal/rule"
	"cerfix/internal/schema"
)

// This file implements the inference system of the rule engine:
// "provided that some attributes of a tuple are correct, it
// automatically derives what other attributes can be validated by
// using editing rules and master data" (paper §2). The derivation is
// symbolic at the attribute level: a rule can extend the validated set
// from Z to Z ∪ B whenever its premise X ∪ Xp ⊆ Z and its pattern is
// assumed to hold. Whether the pattern holds and whether master data
// actually covers the key are supplied by the caller: the monitor
// passes the concrete tuple (both checks concrete), the region finder
// passes a pattern-cell assumption (master coverage handled by tableau
// instantiation).

// RuleFilter decides which rules participate in a symbolic closure.
// Returning false excludes the rule (e.g. its pattern cannot hold in
// the current pattern cell).
type RuleFilter func(r *rule.Rule) bool

// AllRules is the filter that admits every rule.
func AllRules(*rule.Rule) bool { return true }

// Closure computes the validated-attribute closure of seed under the
// admitted rules: the largest set reachable by repeatedly firing rules
// whose premises are contained in the running set. Master coverage is
// assumed (see package comment); the result is therefore an upper
// bound on what a concrete chase can validate.
func Closure(input *schema.Schema, rules []*rule.Rule, seed schema.AttrSet, admit RuleFilter) schema.AttrSet {
	cur := seed
	for {
		grew := false
		for _, r := range rules {
			if admit != nil && !admit(r) {
				continue
			}
			premise := r.PremiseAttrs(input)
			if !cur.ContainsAll(premise) {
				continue
			}
			targets := r.TargetAttrs(input)
			if !cur.ContainsAll(targets) {
				cur = cur.Union(targets)
				grew = true
			}
		}
		if !grew {
			return cur
		}
	}
}

// MinimalExtension finds a minimum-cardinality set Δ of attributes such
// that Closure(seed ∪ Δ) covers all of goal. This is the monitor's "new
// suggestion" computation: the minimal number of attributes the user
// should validate next (paper §2, data monitor step 3).
//
// The problem generalizes set cover, so exact search is exponential;
// we run breadth-first over candidate subsets in ascending size with
// pruning, which is exact and fast for the schema widths the system
// targets (≤ ~20 attributes). For wider schemas use GreedyExtension.
func MinimalExtension(input *schema.Schema, rules []*rule.Rule, seed, goal schema.AttrSet, admit RuleFilter) schema.AttrSet {
	if Closure(input, rules, seed, admit).ContainsAll(goal) {
		return schema.EmptySet
	}
	// Candidate attributes: anything in goal not derivable plus any
	// premise attribute that could unlock rules. Conservatively: all
	// attributes not already in the seed's closure.
	base := Closure(input, rules, seed, admit)
	var candidates []int
	for i := 0; i < input.Len(); i++ {
		if !base.Has(i) {
			candidates = append(candidates, i)
		}
	}
	// BFS by subset size.
	for size := 1; size <= len(candidates); size++ {
		if found, ok := searchSubsets(input, rules, seed, goal, admit, candidates, size); ok {
			return found
		}
	}
	return schema.SetOf(candidates...) // everything (should be covered by loop)
}

// searchSubsets enumerates size-k subsets of candidates in
// lexicographic order and returns the first whose extension closure
// covers goal.
func searchSubsets(input *schema.Schema, rules []*rule.Rule, seed, goal schema.AttrSet,
	admit RuleFilter, candidates []int, k int) (schema.AttrSet, bool) {

	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		delta := schema.EmptySet
		for _, i := range idx {
			delta = delta.With(candidates[i])
		}
		if Closure(input, rules, seed.Union(delta), admit).ContainsAll(goal) {
			return delta, true
		}
		// next combination
		i := k - 1
		for i >= 0 && idx[i] == len(candidates)-k+i {
			i--
		}
		if i < 0 {
			return schema.EmptySet, false
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// GreedyExtension approximates MinimalExtension in polynomial time:
// repeatedly add the candidate attribute whose addition grows the
// closure the most (ties broken by schema position). Guaranteed to
// terminate with a covering set; size within the usual ln(n) set-cover
// factor of optimal in the common case.
func GreedyExtension(input *schema.Schema, rules []*rule.Rule, seed, goal schema.AttrSet, admit RuleFilter) schema.AttrSet {
	delta := schema.EmptySet
	cur := seed
	for !Closure(input, rules, cur, admit).ContainsAll(goal) {
		bestGain, bestAttr := 0, -1
		closureNow := Closure(input, rules, cur, admit)
		coveredNow := closureNow.Intersect(goal).Count()
		for i := 0; i < input.Len(); i++ {
			if closureNow.Has(i) || delta.Has(i) {
				continue
			}
			// Gain counts newly covered *goal* attributes only; adding
			// an attribute that unlocks rules but covers no goal is
			// useless for the cover.
			gain := Closure(input, rules, cur.With(i), admit).Intersect(goal).Count() - coveredNow
			if gain > bestGain {
				bestGain, bestAttr = gain, i
			}
		}
		if bestAttr < 0 {
			// No single candidate covers new goal attributes (goal
			// unreachable by rules): validate the remainder directly.
			missing := goal.Minus(closureNow)
			return delta.Union(missing)
		}
		delta = delta.With(bestAttr)
		cur = cur.With(bestAttr)
	}
	return delta
}

// DeadAttrs returns the attributes no rule can ever fix (they appear in
// no rule's target set). These must be validated by the user in every
// session — e.g. the demo's "item" attribute.
func DeadAttrs(input *schema.Schema, rules []*rule.Rule) schema.AttrSet {
	fixable := schema.EmptySet
	for _, r := range rules {
		fixable = fixable.Union(r.TargetAttrs(input))
	}
	return schema.FullSet(input).Minus(fixable)
}

// SortAttrNames resolves an AttrSet to sorted attribute names — the
// stable order used when presenting suggestions to users.
func SortAttrNames(input *schema.Schema, s schema.AttrSet) []string {
	names := s.Names(input)
	sort.Strings(names)
	return names
}
