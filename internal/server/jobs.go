package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"cerfix/internal/core"
	"cerfix/internal/jobs"
	"cerfix/internal/pipeline"
)

// This file exposes the async batch-repair job subsystem
// (internal/jobs) over HTTP. Where POST /api/fix holds the connection
// open for the whole repair, /api/jobs submits work to a persistent
// queue that survives daemon restarts:
//
//	POST   /api/jobs              submit (inline tuples or server-side file)
//	GET    /api/jobs              list all jobs, oldest first
//	GET    /api/jobs/{id}         one job's lifecycle record
//	GET    /api/jobs/{id}/results stream the JSONL results artifact
//	DELETE /api/jobs/{id}         cancel a queued/running job; purge a
//	                              terminal one (record + artifacts)
//
// The endpoints answer 503 when the daemon runs without a jobs
// directory (cerfixd -jobs-dir).

// AttachJobs enables the /api/jobs endpoints. Call before Handler.
func (s *Server) AttachJobs(m *jobs.Manager) { s.jobs = m }

// SnapshotEngine freezes a consistent engine view under the server
// lock — the jobs manager's per-run snapshot hook.
func (s *Server) SnapshotEngine() *core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.SnapshotEngine()
}

// jobJSON is the wire shape of one job record (the journal's Input
// path stays server-side).
type jobJSON struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Validated []string        `json:"validated"`
	Format    string          `json:"format"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Attempts  int             `json:"attempts"`
	Processed int             `json:"processed"`
	Error     string          `json:"error,omitempty"`
	Stats     *pipeline.Stats `json:"stats,omitempty"`
}

func toJobJSON(j jobs.Job) jobJSON {
	out := jobJSON{
		ID:        j.ID,
		State:     string(j.State),
		Validated: j.Validated,
		Format:    j.Format,
		Submitted: j.Submitted,
		Attempts:  j.Attempts,
		Processed: j.Processed,
		Error:     j.Error,
		Stats:     j.Stats,
	}
	if !j.Started.IsZero() {
		t := j.Started
		out.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		out.Finished = &t
	}
	return out
}

// jobsEnabled answers 503 when the subsystem is not configured.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("jobs disabled (start the daemon with -jobs-dir)"))
		return false
	}
	return true
}

// jobSubmitRequest is the POST /api/jobs payload: validated plus
// exactly one of tuples (inline) or input_path (server-side file,
// format required; accepted only under the daemon's configured jobs
// input root).
type jobSubmitRequest struct {
	Validated []string            `json:"validated"`
	Tuples    []map[string]string `json:"tuples,omitempty"`
	InputPath string              `json:"input_path,omitempty"`
	Format    string              `json:"format,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	var req jobSubmitRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		job jobs.Job
		err error
	)
	switch {
	case len(req.Tuples) > 0 && req.InputPath != "":
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("give tuples or input_path, not both"))
		return
	case len(req.Tuples) > 0:
		job, err = s.jobs.SubmitInline(req.Validated, req.Tuples)
	case req.InputPath != "":
		job, err = s.jobs.SubmitFile(req.Validated, req.InputPath, req.Format)
	default:
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("tuples or input_path required"))
		return
	}
	if err != nil {
		// Client-side rejections are 422; a shutting-down queue is
		// 503; anything else (journal/directory I/O) is a genuine
		// server fault, not the client's payload.
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, jobs.ErrInvalid):
			status = http.StatusUnprocessableEntity
		case errors.Is(err, jobs.ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, toJobJSON(job))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	list := s.jobs.List()
	out := make([]jobJSON, len(list))
	for i, j := range list {
		out[i] = toJobJSON(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(job))
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	path, err := s.jobs.ResultsPath(id)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, jobs.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	// Open before committing headers: a job that failed before
	// creating its artifact must answer 404, not an empty 200.
	f, err := os.Open(path)
	if err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no results artifact", id))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Errors past this point only truncate the stream; the status is
	// already committed.
	_, _ = io.Copy(w, f)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	job, err := s.jobs.Cancel(id)
	if errors.Is(err, jobs.ErrFinished) {
		// DELETE on a terminal job purges it — record, directory and
		// artifacts — so the persistent queue stays reclaimable.
		if err := s.jobs.Remove(id); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
		return
	}
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, jobs.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(job))
}
