package server

import (
	"cerfix"
	"cerfix/internal/schema"
)

// schemaTupleFromMap adapts schema.TupleFromMap to the facade types.
func schemaTupleFromMap(sch *cerfix.Schema, m map[string]string) (*cerfix.Tuple, error) {
	return schema.TupleFromMap(sch, m)
}
