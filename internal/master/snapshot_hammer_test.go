package master

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cerfix/internal/rule"
	"cerfix/internal/value"
)

// storeExpect pairs a published store snapshot with the writer-side
// truth at capture time.
type storeExpect struct {
	snap    *Store
	count   int
	lastZip string
	lastAC  string
	nextZip string
}

// TestSnapshotAtomicHammer interleaves a Store-level writer with O(1)
// snapshot captures and concurrent snapshot readers. The load-bearing
// assertion is atomicity: the tentpole contract says Snapshot is
// internally consistent with no caller-side lock, so a snapshot that
// contains a row in its table MUST also answer for it from the
// unique-RHS rule index (and one without the row answers NoMatch from
// both) — a torn capture of "row in table, not yet in index" (or the
// reverse) fails loudly. Run under -race this also proves the COW
// sharing across table and rule-index shards is data-race free.
func TestSnapshotAtomicHammer(t *testing.T) {
	m := New(personSchema(t))
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}

	const (
		iters   = 400
		readers = 4
	)
	snaps := make(chan storeExpect, iters)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range snaps {
				if got := e.snap.Len(); got != e.count {
					t.Errorf("snapshot Len = %d, want %d", got, e.count)
					return
				}
				// Rule-index path: the newest row must be fully indexed.
				rhs, _, status := e.snap.UniqueRHS([]string{"zip"}, value.List{value.V(e.lastZip)}, []string{"AC"})
				if status != Unique || string(rhs[0]) != e.lastAC {
					t.Errorf("snapshot torn: newest row %q → %v/%v, want Unique/%q",
						e.lastZip, status, rhs, e.lastAC)
					return
				}
				// Table hash-index path agrees.
				if n := len(e.snap.Lookup([]string{"zip"}, value.List{value.V(e.lastZip)})); n != 1 {
					t.Errorf("snapshot table lookup for %q = %d rows, want 1", e.lastZip, n)
					return
				}
				// The row inserted after the capture is invisible to both.
				if _, _, status := e.snap.UniqueRHS([]string{"zip"}, value.List{value.V(e.nextZip)}, []string{"AC"}); status != NoMatch {
					t.Errorf("future row %q visible in rule index: %v", e.nextZip, status)
					return
				}
				if n := len(e.snap.Lookup([]string{"zip"}, value.List{value.V(e.nextZip)})); n != 0 {
					t.Errorf("future row %q visible in table: %d rows", e.nextZip, n)
					return
				}
			}
		}()
	}

	for i := 1; i <= iters; i++ {
		zip := fmt.Sprintf("Z%d %dAA", i, i%10)
		ac := fmt.Sprintf("%03d", i%997)
		if _, err := m.InsertValues("F", "L", value.V(ac), "1", "2", "3 Elm", "Edi", value.V(zip)); err != nil {
			t.Fatal(err)
		}
		snaps <- storeExpect{
			snap:    m.Snapshot(),
			count:   i,
			lastZip: zip,
			lastAC:  ac,
			nextZip: fmt.Sprintf("Z%d %dAA", i+1, (i+1)%10),
		}
	}
	close(snaps)
	wg.Wait()
}

// TestModeFlipsRaceFree: SetMode/SetUseIndexes/Mode are safe against
// concurrent lookups and inserts (the mode is an atomic per-view
// knob). Under -race this is the regression test for the previously
// unsynchronized m.mode field.
func TestModeFlipsRaceFree(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mode flipper
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.SetMode(LookupMode(i % 3))
			m.SetUseIndexes(i%2 == 0)
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // lookup load
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.UniqueRHS([]string{"zip"}, value.List{"EH8 4AH"}, []string{"AC"})
				m.Lookup([]string{"zip"}, value.List{"NW1 6XE"})
				_ = m.Mode()
			}
		}()
	}
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			zip := fmt.Sprintf("W%d 1AA", i)
			if _, err := m.InsertValues("F", "L", "111", "1", "2", "3 Elm", "Edi", value.V(zip)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestStoreSnapshotCache: an unchanged store reuses its frozen
// internals (table + rule indexes) across snapshots while every call
// still returns its own view wrapper — SetMode on one snapshot never
// leaks into another. Inserts and rule-index rebuilds refresh the
// cached internals.
func TestStoreSnapshotCache(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	s1 := m.Snapshot()
	s2 := m.Snapshot()
	if s2.table != s1.table || s2.ruleIdx != s1.ruleIdx {
		t.Fatal("unchanged store did not reuse its frozen internals")
	}
	if s2 == s1 {
		t.Fatal("snapshots must be distinct views (per-view mode knob)")
	}
	// The mode knob is per view, even over shared internals.
	s1.SetMode(ModeScan)
	if s2.Mode() != ModeRuleIndex || m.Mode() != ModeRuleIndex {
		t.Fatalf("SetMode leaked across views: s2 %v live %v", s2.Mode(), m.Mode())
	}
	if _, err := m.InsertValues("Zed", "Hall", "111", "1", "2", "9 Oak", "Ldn", "ZZ1 1ZZ"); err != nil {
		t.Fatal(err)
	}
	s3 := m.Snapshot()
	if s3.table == s1.table || s3.Len() != 4 || s1.Len() != 3 {
		t.Fatalf("insert not reflected: shared table %v lens %d/%d", s3.table == s1.table, s1.Len(), s3.Len())
	}
	m.PrepareRuleIndexes(rs)
	if s4 := m.Snapshot(); s4.ruleIdx == s3.ruleIdx {
		t.Fatal("rule-index rebuild did not refresh the cached internals")
	}
}
