package dataset

import (
	"fmt"

	"cerfix/internal/master"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// This file provides a DBLP-like workload: the second evaluation
// dataset of the companion paper [7] (bibliography records). We
// synthesize it with the functional structure citation cleaning
// exploits:
//
//	key          -> title, authors, venue, year   (the DBLP key is a key)
//	title, year  -> key                           (titles are unique per year)
//	venue        -> vfull                         (abbreviation catalogue)
//
// As with HOSP, input and master share the schema.

var dblpSchema = schema.MustNew("DBLP",
	schema.Attribute{Name: "key", Domain: value.DString, Desc: "DBLP key (conf/vldb/...)"},
	schema.Attribute{Name: "title", Domain: value.DString, Desc: "paper title"},
	schema.Attribute{Name: "authors", Domain: value.DString, Desc: "author list"},
	schema.Attribute{Name: "venue", Domain: value.DString, Desc: "venue abbreviation"},
	schema.Attribute{Name: "vfull", Domain: value.DString, Desc: "venue full name"},
	schema.Attribute{Name: "year", Domain: value.DInt, Desc: "publication year"},
)

// DblpSchema returns the DBLP relation schema (shared input/master
// singleton).
func DblpSchema() *schema.Schema { return dblpSchema }

// DblpRulesDSL is the editing-rule set for DBLP.
const DblpRulesDSL = `
# DBLP editing rules (input and master share the DBLP schema).
d1: match key~key set title := title
d2: match key~key set authors := authors
d3: match key~key set venue := venue
d4: match key~key set year := year
d5: match venue~venue set vfull := vfull
d6: match title~title, year~year set key := key
`

// DblpRules parses DblpRulesDSL.
func DblpRules() *rule.Set {
	s, err := rule.ParseSet(DblpRulesDSL)
	if err != nil {
		panic("dataset: dblp rules do not parse: " + err.Error())
	}
	return s
}

var dblpVenues = []struct{ abbr, full string }{
	{"VLDB", "Very Large Data Bases"},
	{"SIGMOD", "ACM SIGMOD Conference"},
	{"ICDE", "IEEE International Conference on Data Engineering"},
	{"EDBT", "Extending Database Technology"},
	{"PODS", "Symposium on Principles of Database Systems"},
	{"CIKM", "Conference on Information and Knowledge Management"},
}

var dblpTopics = []string{
	"Query Optimization", "Data Cleaning", "Record Matching", "Consistent Query Answering",
	"Schema Mapping", "Provenance Tracking", "Stream Processing", "Index Structures",
	"Transaction Processing", "View Maintenance",
}

var dblpQualifiers = []string{
	"Scalable", "Adaptive", "Incremental", "Distributed", "Certain",
	"Approximate", "Robust", "Efficient",
}

// DblpGen generates DBLP workloads.
type DblpGen struct {
	rng *textutil.RNG
}

// NewDblpGen builds a deterministic DBLP generator.
func NewDblpGen(seed uint64) *DblpGen {
	return &DblpGen{rng: textutil.NewRNG(seed)}
}

// GenerateMasterRows produces n publication records. Titles embed a
// serial so (title, year) is unique; keys are unique by construction.
func (g *DblpGen) GenerateMasterRows(n int) []value.List {
	rows := make([]value.List, n)
	for i := 0; i < n; i++ {
		v := dblpVenues[i%len(dblpVenues)]
		year := 1995 + g.rng.Intn(16)
		title := fmt.Sprintf("%s %s %d",
			textutil.Pick(g.rng, dblpQualifiers), textutil.Pick(g.rng, dblpTopics), i)
		a1 := textutil.Pick(g.rng, firstNames) + " " + textutil.Pick(g.rng, lastNames)
		a2 := textutil.Pick(g.rng, firstNames) + " " + textutil.Pick(g.rng, lastNames)
		key := fmt.Sprintf("conf/%s/%d-%d", v.abbr, year, i)
		rows[i] = value.List{
			value.V(key), value.V(title), value.V(a1 + ", " + a2),
			value.V(v.abbr), value.V(v.full), value.V(fmt.Sprint(year)),
		}
	}
	return rows
}

// DblpWorkload bundles a DBLP experiment input.
type DblpWorkload struct {
	Store *master.Store
	Truth []*schema.Tuple
	Dirty []*schema.Tuple
	// ErrorCells counts injected errors.
	ErrorCells int
}

// GenerateWorkload builds master data for nPubs publications and
// nInputs dirty citation tuples drawn from them.
func (g *DblpGen) GenerateWorkload(nPubs, nInputs int, noiseRate float64) (*DblpWorkload, error) {
	rows := g.GenerateMasterRows(nPubs)
	st := master.New(DblpSchema())
	for _, r := range rows {
		if _, err := st.InsertValues(r...); err != nil {
			return nil, err
		}
	}
	inj := NewNoise(g.rng.Split().Uint64(), noiseRate)
	w := &DblpWorkload{Store: st}
	sch := DblpSchema()
	pool := make([]*schema.Tuple, 0, nInputs)
	for i := 0; i < nInputs; i++ {
		r := rows[g.rng.Intn(len(rows))]
		pool = append(pool, schema.MustTuple(sch, r...))
	}
	for _, truth := range pool {
		dirty, nerr := inj.Dirty(truth, pool)
		w.Truth = append(w.Truth, truth)
		w.Dirty = append(w.Dirty, dirty)
		w.ErrorCells += nerr
	}
	return w, nil
}
