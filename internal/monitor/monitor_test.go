package monitor

import (
	"strings"
	"testing"

	"cerfix/internal/audit"
	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/schema"
)

func demoMonitor(t *testing.T) *Monitor {
	t.Helper()
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	return New(e, nil)
}

func TestNewSessionValidation(t *testing.T) {
	m := demoMonitor(t)
	s, err := m.NewSession(dataset.DemoInputFig3())
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 1 {
		t.Fatalf("first session ID = %d", s.ID)
	}
	s2, _ := m.NewSession(dataset.DemoInputFig3())
	if s2.ID != 2 {
		t.Fatalf("second session ID = %d", s2.ID)
	}
	other := schema.MustNew("OTHER", schema.Str("x"))
	if _, err := m.NewSession(schema.MustTuple(other, "v")); err == nil {
		t.Fatal("foreign-schema tuple accepted")
	}
}

func TestInitialSuggestionIsRegion(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoGroundTruthFig3())
	sug := s.Suggestion()
	// The ground-truth tuple is covered by the smallest region
	// {item, phn, type, zip}.
	if strings.Join(sug, ",") != "item,phn,type,zip" {
		t.Fatalf("initial suggestion = %v", sug)
	}
}

func TestInitialSuggestionFallsBackToSmallest(t *testing.T) {
	m := demoMonitor(t)
	// A tuple matching no tableau row (foreign values everywhere).
	tu := schema.MustTuple(dataset.CustSchema(),
		"X", "Y", "999", "000", "9", "st", "ct", "ZZ", "thing")
	s, _ := m.NewSession(tu)
	sug := s.Suggestion()
	if len(sug) == 0 {
		t.Fatal("no fallback suggestion")
	}
	if strings.Join(sug, ",") != strings.Join(m.Regions()[0].AttrNames(), ",") {
		t.Fatalf("fallback = %v, want smallest region %v", sug, m.Regions()[0].AttrNames())
	}
}

// Reenact the full Fig. 3 walkthrough:
// (a) the user validates their own choice {AC, phn, type, item};
// (b) CerFix fixes FN (M.->Mark), LN, city and then suggests zip;
// (c) validating zip completes the certain fix.
func TestFig3Walkthrough(t *testing.T) {
	m := demoMonitor(t)
	s, err := m.NewSession(dataset.DemoInputFig3())
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: the user validates four attributes with the entered
	// values (which are correct).
	res, err := s.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Tuple.Get("FN") != "Mark" {
		t.Fatalf(`FN = %q after round 1, want "Mark"`, s.Tuple.Get("FN"))
	}
	if s.Tuple.Get("city") != "Ldn" {
		t.Fatalf("city = %q after round 1", s.Tuple.Get("city"))
	}
	if s.Done() {
		t.Fatal("done too early")
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
	// Fig. 3(b): CerFix suggests zip.
	sug := s.Suggestion()
	if strings.Join(sug, ",") != "zip" {
		t.Fatalf("round-2 suggestion = %v, want [zip]", sug)
	}
	// Round 2: validate zip as entered.
	if _, err := s.ValidateSuggested(); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || !s.Certain() {
		t.Fatalf("not certain after round 2: remaining %v, conflicts %v",
			s.Remaining(), s.Conflicts)
	}
	if !s.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
		t.Fatalf("final tuple %v != ground truth", s.Tuple)
	}
	if s.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (the paper: 'after two rounds of interactions')", s.Rounds)
	}
	if got := s.Suggestion(); got != nil {
		t.Fatalf("suggestion after done = %v", got)
	}
}

// One-shot path: validating a covering certain region fixes everything
// in a single round.
func TestCertainRegionOneShot(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	res, err := s.Validate(map[string]string{
		"zip": "NW1 6XE", "phn": "075568485", "type": "2", "item": "DVD",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Done() || !s.Certain() {
		t.Fatalf("region validation did not complete: remaining %v", s.Remaining())
	}
	if !s.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
		t.Fatalf("tuple = %v", s.Tuple)
	}
	if s.Rounds != 1 {
		t.Fatalf("rounds = %d", s.Rounds)
	}
	_ = res
}

// The user corrects a value while validating: Example 1's tuple with
// the zip asserted — the monitor must fix AC without breaking city.
func TestExample1Flow(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputExample1())
	if _, err := s.Validate(map[string]string{"zip": "EH8 4AH"}); err != nil {
		t.Fatal(err)
	}
	if s.Tuple.Get("AC") != "131" {
		t.Fatalf("AC = %q", s.Tuple.Get("AC"))
	}
	if s.Tuple.Get("city") != "Edi" {
		t.Fatal("city was broken")
	}
	// phn/type/FN/LN/item remain; next suggestion must include them.
	if s.Done() {
		t.Fatal("cannot be done")
	}
	sug := s.Suggestion()
	if len(sug) == 0 {
		t.Fatal("no new suggestion")
	}
}

func TestValidateErrors(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	if _, err := s.Validate(nil); err == nil {
		t.Fatal("empty validation accepted")
	}
	if _, err := s.Validate(map[string]string{"bogus": "x"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestAuditTrail(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	if _, err := s.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	}); err != nil {
		t.Fatal(err)
	}
	hist := m.Log().TupleHistory(s.ID)
	if len(hist) < 7 { // 4 user + FN/LN/city rule events
		t.Fatalf("history too short: %d records", len(hist))
	}
	rec, ok := m.Log().CellProvenance(s.ID, "FN")
	if !ok || rec.RuleID != "phi4" || rec.Source != core.SourceRule {
		t.Fatalf("FN provenance = %+v", rec)
	}
	if rec.Old != "M." || rec.New != "Mark" {
		t.Fatalf("FN old/new = %q/%q", rec.Old, rec.New)
	}
}

func TestSummary(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	if _, err := s.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ValidateSuggested(); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if !sum.Done || !sum.Certain {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Rounds != 2 {
		t.Fatalf("rounds = %d", sum.Rounds)
	}
	if sum.UserValidated != 5 { // AC, phn, type, item, zip
		t.Fatalf("UserValidated = %d", sum.UserValidated)
	}
	if sum.AutoValidated != 4 { // FN, LN, city, str
		t.Fatalf("AutoValidated = %d", sum.AutoValidated)
	}
	// FN (M.->Mark), str (Baker Street->20 Baker St), city (Lon->Ldn)
	// were rewritten; LN was confirmed.
	if sum.Rewritten != 3 {
		t.Fatalf("Rewritten = %d", sum.Rewritten)
	}
	want := []string{"FN", "city", "str"}
	if strings.Join(sum.ChangedAttrs, ",") != strings.Join(want, ",") {
		t.Fatalf("ChangedAttrs = %v", sum.ChangedAttrs)
	}
}

func TestSharedLogOption(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	shared := audit.NewLog()
	m := New(e, &Options{Log: shared})
	if m.Log() != shared {
		t.Fatal("shared log not used")
	}
	s, _ := m.NewSession(dataset.DemoInputFig3())
	if _, err := s.Validate(map[string]string{"zip": "NW1 6XE"}); err != nil {
		t.Fatal(err)
	}
	if shared.Len() == 0 {
		t.Fatal("shared log empty")
	}
}

func TestRegionKOption(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	m := New(e, &Options{RegionK: 1})
	if len(m.Regions()) != 1 {
		t.Fatalf("regions = %d", len(m.Regions()))
	}
}

// Monotone progress: each Validate round can only grow the validated
// set; the session always terminates when the user follows suggestions.
func TestSuggestionLoopTerminates(t *testing.T) {
	m := demoMonitor(t)
	truth := dataset.DemoGroundTruthFig3()
	s, _ := m.NewSession(dataset.DemoInputFig3())
	for round := 0; !s.Done(); round++ {
		if round > s.Tuple.Schema.Len() {
			t.Fatalf("no termination after %d rounds; remaining %v", round, s.Remaining())
		}
		sug := s.Suggestion()
		if len(sug) == 0 {
			t.Fatalf("empty suggestion while not done; remaining %v", s.Remaining())
		}
		// The oracle-style user: assert ground-truth values.
		m2 := make(map[string]string, len(sug))
		for _, a := range sug {
			m2[a] = string(truth.Get(a))
		}
		before := s.Validated.Count()
		if _, err := s.Validate(m2); err != nil {
			t.Fatal(err)
		}
		if s.Validated.Count() <= before {
			t.Fatal("validated set did not grow")
		}
	}
	if !s.Certain() {
		t.Fatalf("loop finished uncertain: %v", s.Conflicts)
	}
	if !s.Tuple.Equal(truth) {
		t.Fatalf("final tuple = %v", s.Tuple)
	}
}
