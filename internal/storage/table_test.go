package storage

import (
	"sync"
	"testing"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func personSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew("PERSON",
		schema.Str("FN"), schema.Str("LN"), schema.Str("zip"))
}

func fill(t *testing.T, tb *Table) []int64 {
	t.Helper()
	rows := [][]value.V{
		{"Robert", "Brady", "EH8 4AH"},
		{"Mark", "Smith", "W1B 1JL"},
		{"Robert", "Luth", "EH8 4AH"},
	}
	var ids []int64
	for _, r := range rows {
		id, err := tb.InsertValues(r...)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestInsertGet(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fill(t, tb)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	tu, ok := tb.Get(ids[1])
	if !ok || tu.Get("FN") != "Mark" {
		t.Fatalf("Get = %v, %v", tu, ok)
	}
	if _, ok := tb.Get(999); ok {
		t.Fatal("Get(999) found phantom row")
	}
	// IDs are unique and ascending.
	if !(ids[0] < ids[1] && ids[1] < ids[2]) {
		t.Fatalf("IDs not ascending: %v", ids)
	}
}

// TestScanSharedTail pins the WAL writer's tail-scan contract: for an
// append-only history past minID, ScanSharedTail visits exactly the
// rows ScanShared would visit filtered to id >= minID, in the same
// order — across boxed and packed shards and over tombstones.
func TestScanSharedTail(t *testing.T) {
	tb := NewTable(personSchema(t))
	tb.SetPackMinRows(1)
	var ids []int64
	for i := 0; i < 300; i++ {
		id, err := tb.InsertValues(value.V(string(rune('A'+i%26))), "L", "Z")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	tb.Delete(ids[10])
	tb.Delete(ids[250])
	tb.PackColumnar(16) // some shards packed, some boxed
	for _, minID := range []int64{ids[0], ids[137], ids[299], ids[299] + 1} {
		var want, got []int64
		tb.ScanShared(func(tu *schema.Tuple) bool {
			if tu.ID >= minID {
				want = append(want, tu.ID)
			}
			return true
		})
		tb.ScanSharedTail(minID, func(tu *schema.Tuple) bool {
			got = append(got, tu.ID)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("tail scan from %d saw %d rows, want %d", minID, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tail scan from %d: row %d = id %d, want %d", minID, i, got[i], want[i])
			}
		}
	}
}

func TestInsertCopies(t *testing.T) {
	tb := NewTable(personSchema(t))
	tu := schema.MustTuple(tb.Schema(), "A", "B", "C")
	id, _ := tb.Insert(tu)
	tu.Set("FN", "MUTATED")
	got, _ := tb.Get(id)
	if got.Get("FN") != "A" {
		t.Fatal("Insert did not copy the tuple")
	}
	got.Set("FN", "MUTATED2")
	got2, _ := tb.Get(id)
	if got2.Get("FN") != "A" {
		t.Fatal("Get did not return a copy")
	}
}

func TestInsertSchemaMismatch(t *testing.T) {
	tb := NewTable(personSchema(t))
	other := schema.MustNew("OTHER", schema.Str("x"))
	if _, err := tb.Insert(schema.MustTuple(other, "v")); err == nil {
		t.Fatal("foreign-schema tuple accepted")
	}
	if _, err := tb.InsertValues("too", "few"); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestUpdateDelete(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fill(t, tb)
	tu, _ := tb.Get(ids[0])
	tu.Set("LN", "Changed")
	if err := tb.Update(tu); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Get(ids[0])
	if got.Get("LN") != "Changed" {
		t.Fatal("Update lost")
	}
	ghost := tu.Clone()
	ghost.ID = 999
	if err := tb.Update(ghost); err == nil {
		t.Fatal("Update of missing row accepted")
	}
	if !tb.Delete(ids[0]) || tb.Delete(ids[0]) {
		t.Fatal("Delete semantics wrong")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len after delete = %d", tb.Len())
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	tb := NewTable(personSchema(t))
	fill(t, tb)
	var names []string
	tb.Scan(func(tu *schema.Tuple) bool {
		names = append(names, string(tu.Get("FN")))
		return len(names) < 2
	})
	if len(names) != 2 || names[0] != "Robert" || names[1] != "Mark" {
		t.Fatalf("Scan = %v", names)
	}
}

// ScanShared yields the stored rows themselves (no copies) in
// insertion order, honours early stop, and skips tombstones.
func TestScanShared(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fill(t, tb)
	var names []string
	tb.ScanShared(func(tu *schema.Tuple) bool {
		names = append(names, string(tu.Get("FN")))
		return len(names) < 2
	})
	if len(names) != 2 || names[0] != "Robert" || names[1] != "Mark" {
		t.Fatalf("ScanShared = %v", names)
	}
	// Identity: the callback sees the stored row, not a clone.
	var seen *schema.Tuple
	tb.ScanShared(func(tu *schema.Tuple) bool {
		if tu.ID == ids[0] {
			seen = tu
			return false
		}
		return true
	})
	stored, _ := tb.Get(ids[0]) // Get clones
	if seen == nil || !seen.Equal(stored) {
		t.Fatal("ScanShared row differs from stored content")
	}
	var again *schema.Tuple
	tb.ScanShared(func(tu *schema.Tuple) bool {
		if tu.ID == ids[0] {
			again = tu
			return false
		}
		return true
	})
	if seen != again {
		t.Fatal("ScanShared copied the row (want the shared instance)")
	}
	// Tombstones are skipped.
	tb.Delete(ids[1])
	count := 0
	tb.ScanShared(func(*schema.Tuple) bool { count++; return true })
	if count != 2 {
		t.Fatalf("ScanShared visited %d rows after delete, want 2", count)
	}
}

func TestSelect(t *testing.T) {
	tb := NewTable(personSchema(t))
	fill(t, tb)
	rob := tb.Select(func(tu *schema.Tuple) bool { return tu.Get("FN") == "Robert" })
	if len(rob) != 2 {
		t.Fatalf("Select = %d rows", len(rob))
	}
	if len(tb.All()) != 3 {
		t.Fatal("All wrong")
	}
}

func TestLookupEqScanAndIndex(t *testing.T) {
	tb := NewTable(personSchema(t))
	fill(t, tb)
	attrs := []string{"zip"}
	key := value.List{"EH8 4AH"}

	scanRes := tb.LookupEq(attrs, key)
	if len(scanRes) != 2 {
		t.Fatalf("scan lookup = %d rows", len(scanRes))
	}
	if err := tb.CreateIndex(attrs); err != nil {
		t.Fatal(err)
	}
	if !tb.HasIndex(attrs) {
		t.Fatal("HasIndex false after CreateIndex")
	}
	idxRes := tb.LookupEq(attrs, key)
	if len(idxRes) != 2 {
		t.Fatalf("indexed lookup = %d rows", len(idxRes))
	}
	// Composite, order-insensitive.
	if err := tb.CreateIndex([]string{"FN", "LN"}); err != nil {
		t.Fatal(err)
	}
	got := tb.LookupEq([]string{"LN", "FN"}, value.List{"Brady", "Robert"})
	if len(got) != 1 || got[0].Get("zip") != "EH8 4AH" {
		t.Fatalf("composite lookup = %v", got)
	}
	if res := tb.LookupEq(attrs, value.List{"a", "b"}); res != nil {
		t.Fatal("arity-mismatched lookup returned rows")
	}
	if err := tb.CreateIndex([]string{"bogus"}); err == nil {
		t.Fatal("index on unknown attribute accepted")
	}
}

func TestIndexMaintenance(t *testing.T) {
	tb := NewTable(personSchema(t))
	if err := tb.CreateIndex([]string{"zip"}); err != nil {
		t.Fatal(err)
	}
	ids := fill(t, tb)
	if n := len(tb.LookupEq([]string{"zip"}, value.List{"EH8 4AH"})); n != 2 {
		t.Fatalf("after insert: %d", n)
	}
	tu, _ := tb.Get(ids[0])
	tu.Set("zip", "XX1 1XX")
	if err := tb.Update(tu); err != nil {
		t.Fatal(err)
	}
	if n := len(tb.LookupEq([]string{"zip"}, value.List{"EH8 4AH"})); n != 1 {
		t.Fatalf("after update: %d", n)
	}
	if n := len(tb.LookupEq([]string{"zip"}, value.List{"XX1 1XX"})); n != 1 {
		t.Fatalf("after update new key: %d", n)
	}
	tb.Delete(ids[2])
	if n := len(tb.LookupEq([]string{"zip"}, value.List{"EH8 4AH"})); n != 0 {
		t.Fatalf("after delete: %d", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	tb := NewTable(personSchema(t))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := tb.InsertValues("F", "L", "Z"); err != nil {
					t.Error(err)
					return
				}
				tb.LookupEq([]string{"zip"}, value.List{"Z"})
				tb.Len()
			}
		}(g)
	}
	wg.Wait()
	if tb.Len() != 800 {
		t.Fatalf("Len = %d after concurrent inserts", tb.Len())
	}
}

// Clone yields an isolated table: inserts, updates and deletes on
// either side stay invisible to the other, including through indexes.
func TestTableClone(t *testing.T) {
	tb := NewTable(personSchema(t))
	if err := tb.CreateIndex([]string{"zip"}); err != nil {
		t.Fatal(err)
	}
	id, err := tb.InsertValues("F", "L", "Z1")
	if err != nil {
		t.Fatal(err)
	}
	cp := tb.Clone()
	if cp.Len() != 1 || !cp.HasIndex([]string{"zip"}) {
		t.Fatalf("clone: len %d", cp.Len())
	}

	// Diverge both sides.
	if _, err := tb.InsertValues("A", "B", "Z2"); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.InsertValues("C", "D", "Z3"); err != nil {
		t.Fatal(err)
	}
	if n := len(tb.LookupEq([]string{"zip"}, value.List{"Z3"})); n != 0 {
		t.Fatalf("clone insert visible in original: %d", n)
	}
	if n := len(cp.LookupEq([]string{"zip"}, value.List{"Z2"})); n != 0 {
		t.Fatalf("original insert visible in clone: %d", n)
	}

	// Updating the original does not rewrite the clone's row.
	row, _ := tb.Get(id)
	row.Set("zip", "Z9")
	if err := tb.Update(row); err != nil {
		t.Fatal(err)
	}
	got, ok := cp.Get(id)
	if !ok || got.Get("zip") != "Z1" {
		t.Fatalf("clone row = %v", got)
	}
	if n := len(cp.LookupEq([]string{"zip"}, value.List{"Z1"})); n != 1 {
		t.Fatalf("clone index after original update: %d", n)
	}

	// Fresh IDs never collide across the pair.
	id2, err := cp.InsertValues("E", "F", "Z4")
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := tb.Get(id2); clash {
		t.Fatalf("id %d allocated on both sides refers to original's row", id2)
	}
}
