package guard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog detects wedged runs. Each watched run exposes a progress
// counter (the jobs subsystem's atomic per-tuple count); a background
// sweeper compares counters between ticks and, when one has not
// advanced for the stall timeout, cancels that run with a cause that
// wraps ErrStalled. Deadlines catch runs that are too slow overall;
// the watchdog catches runs that stopped — a hung rule, a blocked
// sink — long before any generous wall-clock deadline would.
type Watchdog struct {
	stall time.Duration
	tick  time.Duration

	mu     sync.Mutex
	runs   map[uint64]*watched
	nextID uint64

	stalls atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// watched is one registered run.
type watched struct {
	label    string
	progress func() int64
	cancel   func(error)
	last     int64
	since    time.Time
	fired    bool
}

// NewWatchdog builds a watchdog with the given stall timeout. The
// sweep interval is a quarter of the timeout (clamped to [1ms, 1s]),
// so a stall is detected within at most 1.25× the timeout.
func NewWatchdog(stall time.Duration) *Watchdog {
	tick := stall / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	return &Watchdog{
		stall: stall,
		tick:  tick,
		runs:  make(map[uint64]*watched),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Stall returns the configured stall timeout.
func (w *Watchdog) Stall() time.Duration { return w.stall }

// Start launches the background sweeper. Safe to call once; Close
// stops it.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		go func() {
			defer close(w.done)
			t := time.NewTicker(w.tick)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					w.Sweep(now)
				case <-w.stop:
					return
				}
			}
		}()
	})
}

// Close stops the sweeper and waits for it to exit. Registered runs
// are left alone — their contexts belong to their owners.
func (w *Watchdog) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: nothing to wait for
	<-w.done
}

// Watch registers a run: label for the stall message, progress for
// the heartbeat (must be cheap and lock-free — an atomic load), and
// cancel to fire on stall (called exactly once, with an error wrapping
// ErrStalled). The returned unwatch deregisters the run; call it when
// the run ends, however it ends.
func (w *Watchdog) Watch(label string, progress func() int64, cancel func(error)) (unwatch func()) {
	w.mu.Lock()
	id := w.nextID
	w.nextID++
	w.runs[id] = &watched{
		label:    label,
		progress: progress,
		cancel:   cancel,
		last:     progress(),
		since:    time.Now(),
	}
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		delete(w.runs, id)
		w.mu.Unlock()
	}
}

// Sweep runs one detection pass at the given time. The background
// sweeper calls it every tick; tests call it directly for determinism.
func (w *Watchdog) Sweep(now time.Time) {
	type firing struct {
		cancel func(error)
		err    error
	}
	var fires []firing
	w.mu.Lock()
	for _, r := range w.runs {
		p := r.progress()
		if p != r.last {
			r.last = p
			r.since = now
			continue
		}
		if !r.fired && now.Sub(r.since) >= w.stall {
			r.fired = true
			fires = append(fires, firing{
				cancel: r.cancel,
				err: fmt.Errorf("%w: %s made no progress past tuple %d for %s",
					ErrStalled, r.label, p, w.stall),
			})
		}
	}
	w.mu.Unlock()
	// Fire outside the lock: cancel funcs may do arbitrary work.
	for _, f := range fires {
		w.stalls.Add(1)
		f.cancel(f.err)
	}
}

// Stalls returns the number of stall cancellations fired since start.
func (w *Watchdog) Stalls() int64 { return w.stalls.Load() }
