package core

import (
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func demoRuleList() []*rule.Rule { return dataset.DemoRules().Rules() }

// typeEq returns a filter admitting rules whose pattern is empty or
// consistent with type = v (the region finder's cell filters).
func typeEq(sch *schema.Schema, v value.V) RuleFilter {
	cell := pattern.NewPattern(pattern.Eq("type", v))
	return func(r *rule.Rule) bool {
		if r.When.IsEmpty() {
			return true
		}
		return pattern.JointlySatisfiable(r.When, cell, sch)
	}
}

func TestClosureZipUnlocksAddress(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	seed := schema.SetOfNames(sch, "zip")
	got := Closure(sch, rules, seed, AllRules)
	// zip -> AC (phi1), str (phi2), city (phi3); then AC -> city (phi9,
	// pattern attr AC already in set). FN/LN need phn+type; item dead.
	want := schema.SetOfNames(sch, "zip", "AC", "str", "city")
	if got != want {
		t.Fatalf("closure = %v, want %v", got.Format(sch), want.Format(sch))
	}
}

func TestClosureMobileCell(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	// In the type=2 cell with {zip, phn, type} validated, everything
	// except item is derivable.
	seed := schema.SetOfNames(sch, "zip", "phn", "type")
	got := Closure(sch, rules, seed, typeEq(sch, "2"))
	want := schema.FullSet(sch).Without(sch.MustIndex("item"))
	if got != want {
		t.Fatalf("closure = %v, want %v", got.Format(sch), want.Format(sch))
	}
}

func TestClosureHomeCellNeedsNames(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	// type=1: phi4/phi5 are inactive, so FN/LN are not derivable even
	// from a large seed.
	seed := schema.SetOfNames(sch, "AC", "phn", "type", "zip")
	got := Closure(sch, rules, seed, typeEq(sch, "1"))
	if got.Has(sch.MustIndex("FN")) || got.Has(sch.MustIndex("LN")) {
		t.Fatalf("FN/LN derivable in home cell: %v", got.Format(sch))
	}
	for _, a := range []string{"str", "city", "zip"} {
		if !got.Has(sch.MustIndex(a)) {
			t.Fatalf("%s not derivable in home cell: %v", a, got.Format(sch))
		}
	}
}

func TestClosureMonotoneAndIdempotent(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	seeds := []schema.AttrSet{
		schema.EmptySet,
		schema.SetOfNames(sch, "zip"),
		schema.SetOfNames(sch, "phn", "type"),
		schema.FullSet(sch),
	}
	for _, s := range seeds {
		c := Closure(sch, rules, s, AllRules)
		if !c.ContainsAll(s) {
			t.Fatalf("closure not extensive for %v", s.Format(sch))
		}
		if Closure(sch, rules, c, AllRules) != c {
			t.Fatalf("closure not idempotent for %v", s.Format(sch))
		}
	}
	// Monotone: seed1 ⊆ seed2 ⇒ closure1 ⊆ closure2.
	c1 := Closure(sch, rules, seeds[1], AllRules)
	c2 := Closure(sch, rules, seeds[1].Union(seeds[2]), AllRules)
	if !c2.ContainsAll(c1) {
		t.Fatal("closure not monotone")
	}
}

func TestDeadAttrs(t *testing.T) {
	sch := dataset.CustSchema()
	dead := DeadAttrs(sch, demoRuleList())
	// item and phn and type are never rule targets (phn/type are only
	// premises in the demo rules).
	want := schema.SetOfNames(sch, "item", "phn", "type")
	if dead != want {
		t.Fatalf("dead = %v, want %v", dead.Format(sch), want.Format(sch))
	}
}

func TestMinimalExtensionAlreadyCovered(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	seed := schema.FullSet(sch)
	got := MinimalExtension(sch, rules, seed, schema.FullSet(sch), AllRules)
	if !got.IsEmpty() {
		t.Fatalf("extension = %v, want empty", got.Format(sch))
	}
}

// After Fig. 3 round 1 ({AC, phn, type, item} validated and FN/LN/city
// derived), the minimal new suggestion is exactly {zip} — what the
// paper shows CerFix suggesting in Fig. 3(b).
func TestMinimalExtensionFig3SuggestsZip(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	seed := schema.SetOfNames(sch, "AC", "phn", "type", "item", "FN", "LN", "city")
	delta := MinimalExtension(sch, rules, seed, schema.FullSet(sch), typeEq(sch, "2"))
	want := schema.SetOfNames(sch, "zip")
	if delta != want {
		t.Fatalf("suggestion = %v, want {zip}", delta.Format(sch))
	}
}

func TestMinimalExtensionFromScratchMobile(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	delta := MinimalExtension(sch, rules, schema.EmptySet, schema.FullSet(sch), typeEq(sch, "2"))
	// Minimum covering seed in the mobile cell: {zip, phn, type, item}
	// (4 attributes). Any 3-attribute seed misses FN/LN or item.
	if delta.Count() != 4 {
		t.Fatalf("suggestion size = %d (%v), want 4", delta.Count(), delta.Format(sch))
	}
	cl := Closure(sch, rules, delta, typeEq(sch, "2"))
	if cl != schema.FullSet(sch) {
		t.Fatalf("suggested set does not cover: %v", cl.Format(sch))
	}
}

func TestGreedyExtensionCovers(t *testing.T) {
	sch := dataset.CustSchema()
	rules := demoRuleList()
	for _, cellType := range []value.V{"1", "2"} {
		admit := typeEq(sch, cellType)
		delta := GreedyExtension(sch, rules, schema.EmptySet, schema.FullSet(sch), admit)
		cl := Closure(sch, rules, delta, admit)
		if cl != schema.FullSet(sch) {
			t.Fatalf("cell type=%s: greedy set %v does not cover (%v)",
				cellType, delta.Format(sch), cl.Format(sch))
		}
		exact := MinimalExtension(sch, rules, schema.EmptySet, schema.FullSet(sch), admit)
		if delta.Count() < exact.Count() {
			t.Fatalf("greedy (%d) beat exact (%d)?", delta.Count(), exact.Count())
		}
	}
}

func TestGreedyExtensionUnreachableGoal(t *testing.T) {
	sch := dataset.CustSchema()
	// No rules at all: greedy must fall back to validating the goal
	// attributes directly.
	delta := GreedyExtension(sch, nil, schema.EmptySet, schema.SetOfNames(sch, "FN", "zip"), AllRules)
	if delta != schema.SetOfNames(sch, "FN", "zip") {
		t.Fatalf("fallback = %v", delta.Format(sch))
	}
}

func TestSortAttrNames(t *testing.T) {
	sch := dataset.CustSchema()
	s := schema.SetOfNames(sch, "zip", "AC", "item")
	got := SortAttrNames(sch, s)
	if len(got) != 3 || got[0] != "AC" || got[1] != "item" || got[2] != "zip" {
		t.Fatalf("SortAttrNames = %v", got)
	}
}
