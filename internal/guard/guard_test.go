package guard

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cerfix/internal/admission"
)

// The watchdog fires exactly once for a run whose progress counter
// stops, with a cause wrapping ErrStalled, and never for one that
// keeps advancing.
func TestWatchdogFiresOnStall(t *testing.T) {
	w := NewWatchdog(100 * time.Millisecond)
	var progress atomic.Int64
	var got atomic.Value
	unwatch := w.Watch("j000001", progress.Load, func(err error) { got.Store(err) })
	defer unwatch()

	base := time.Now()
	// Advancing progress resets the stall clock.
	w.Sweep(base)
	progress.Store(5)
	w.Sweep(base.Add(90 * time.Millisecond))
	w.Sweep(base.Add(170 * time.Millisecond)) // 80ms without progress: no fire
	if got.Load() != nil {
		t.Fatalf("fired while progressing: %v", got.Load())
	}
	// Now stall past the timeout.
	w.Sweep(base.Add(300 * time.Millisecond))
	err, _ := got.Load().(error)
	if err == nil {
		t.Fatal("watchdog did not fire after stall timeout")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("cause = %v, want ErrStalled", err)
	}
	if w.Stalls() != 1 {
		t.Fatalf("Stalls() = %d, want 1", w.Stalls())
	}
	// Only once per registration.
	w.Sweep(base.Add(time.Hour))
	if w.Stalls() != 1 {
		t.Fatalf("fired twice for one run")
	}
}

// Unwatching before the timeout elapses prevents the fire.
func TestWatchdogUnwatch(t *testing.T) {
	w := NewWatchdog(50 * time.Millisecond)
	fired := false
	unwatch := w.Watch("j1", func() int64 { return 0 }, func(error) { fired = true })
	unwatch()
	w.Sweep(time.Now().Add(time.Hour))
	if fired {
		t.Fatal("fired after unwatch")
	}
}

// The background sweeper cancels a stalled context end to end.
func TestWatchdogBackgroundSweep(t *testing.T) {
	w := NewWatchdog(20 * time.Millisecond)
	w.Start()
	defer w.Close()
	ctx, cancel := context.WithCancelCause(context.Background())
	unwatch := w.Watch("bg", func() int64 { return 0 }, func(err error) { cancel(err) })
	defer unwatch()
	select {
	case <-ctx.Done():
		if !errors.Is(context.Cause(ctx), ErrStalled) {
			t.Fatalf("cause = %v", context.Cause(ctx))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never cancelled the stalled run")
	}
}

// Watermark hysteresis: states are entered at the mark, left only
// below RecoverFrac of it, so oscillation around a mark cannot flap.
func TestWatermarkHysteresis(t *testing.T) {
	heap := uint64(0)
	m := NewMemMonitor(MemConfig{
		Soft:   1000,
		Hard:   2000,
		Sample: func() uint64 { return heap },
	})
	step := func(h uint64, want admission.Pressure) {
		t.Helper()
		heap = h
		if got := m.Poll(); got != want {
			t.Fatalf("heap %d: state = %v, want %v", h, got, want)
		}
	}
	step(500, admission.PressureOK)
	step(1000, admission.PressureSoft)
	// Dipping just below soft keeps the state (hysteresis band is
	// [900, 1000)).
	step(950, admission.PressureSoft)
	step(899, admission.PressureOK)
	step(2500, admission.PressureHard)
	// Below hard but above its recovery point stays hard.
	step(1900, admission.PressureHard)
	// Recovering from hard lands on soft while still above soft.
	step(1500, admission.PressureSoft)
	step(100, admission.PressureOK)

	st := m.Status()
	if st.State != "ok" || st.HeapBytes != 100 || st.SoftBytes != 1000 || st.HardBytes != 2000 {
		t.Fatalf("status = %+v", st)
	}
	// ok→soft→ok→hard→soft→ok: five transitions.
	if st.Transitions != 5 {
		t.Fatalf("transitions = %d, want 5", st.Transitions)
	}
}

// The transition hook sees every state change with the heap reading
// that caused it.
func TestMemMonitorOnChange(t *testing.T) {
	heap := uint64(0)
	m := NewMemMonitor(MemConfig{Soft: 100, Sample: func() uint64 { return heap }})
	var calls []string
	m.SetOnChange(func(old, new admission.Pressure, h uint64) {
		calls = append(calls, old.String()+"->"+new.String())
	})
	heap = 50
	m.Poll()
	heap = 150
	m.Poll()
	m.Poll() // unchanged: no call
	heap = 10
	m.Poll()
	if len(calls) != 2 || calls[0] != "ok->soft" || calls[1] != "soft->ok" {
		t.Fatalf("calls = %v", calls)
	}
}

// The default sampler reads a live, plausible heap size.
func TestHeapSampler(t *testing.T) {
	m := NewMemMonitor(MemConfig{Soft: 1 << 40})
	m.Poll()
	if st := m.Status(); st.HeapBytes == 0 {
		t.Fatal("runtime/metrics heap sample is zero")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"1024", 1024, true},
		{"64MiB", 64 << 20, true},
		{"64mb", 64 << 20, true},
		{"1.5GiB", 3 << 29, true},
		{"2KB", 2048, true},
		{"512 MiB", 512 << 20, true},
		{"10B", 10, true},
		{"1TiB", 1 << 40, true},
		{"junk", 0, false},
		{"-1", 0, false},
		{"MiB", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseBytes(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// PanicError carries the panic value and stack through the error
// interface.
func TestPanicError(t *testing.T) {
	err := NewPanicError("pipeline worker", "boom", []byte("stack trace"))
	if err.Error() != "pipeline worker: panic: boom" {
		t.Fatalf("Error() = %q", err.Error())
	}
	var pe *PanicError
	if !errors.As(error(err), &pe) || string(pe.Stack) != "stack trace" {
		t.Fatalf("errors.As round trip failed")
	}
}

// The stall budget is consumed per hit; the panic value always fires.
func TestChaosSeam(t *testing.T) {
	SetChaos(true)
	defer SetChaos(false)

	// Budget of 1: first stall parks until cancel, second passes through.
	ArmStalls(1)
	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan struct{})
	go func() {
		ChaosValue(ctx, ChaosStallValue)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("stall did not block")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("stall did not release on cancel")
	}
	ChaosValue(ctx, ChaosStallValue) // budget exhausted: returns immediately

	defer func() {
		if recover() == nil {
			t.Fatal("chaos panic value did not panic")
		}
	}()
	ChaosValue(ctx, ChaosPanicValue)
}
