package schema

import (
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := SetOf(0, 3, 5)
	if !s.Has(0) || !s.Has(3) || !s.Has(5) || s.Has(1) {
		t.Fatal("membership wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.With(1).Count() != 4 {
		t.Fatal("With failed")
	}
	if s.Without(3).Has(3) {
		t.Fatal("Without failed")
	}
	if !EmptySet.IsEmpty() || s.IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
	ps := s.Positions()
	if len(ps) != 3 || ps[0] != 0 || ps[1] != 3 || ps[2] != 5 {
		t.Fatalf("Positions = %v", ps)
	}
}

func TestAttrSetAlgebra(t *testing.T) {
	a := SetOf(0, 1, 2)
	b := SetOf(2, 3)
	if a.Union(b) != SetOf(0, 1, 2, 3) {
		t.Error("Union wrong")
	}
	if a.Intersect(b) != SetOf(2) {
		t.Error("Intersect wrong")
	}
	if a.Minus(b) != SetOf(0, 1) {
		t.Error("Minus wrong")
	}
	if !a.ContainsAll(SetOf(0, 2)) {
		t.Error("ContainsAll false negative")
	}
	if a.ContainsAll(b) {
		t.Error("ContainsAll false positive")
	}
	if !a.ContainsAll(EmptySet) {
		t.Error("every set contains the empty set")
	}
}

func TestAttrSetAlgebraProperties(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := AttrSet(x), AttrSet(y)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Intersect(b) != b.Intersect(a) {
			return false
		}
		if !a.Union(b).ContainsAll(a) {
			return false
		}
		if a.Minus(b).Intersect(b) != EmptySet {
			return false
		}
		if a.Union(b).Count() != a.Count()+b.Count()-a.Intersect(b).Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrSetNames(t *testing.T) {
	sch := MustNew("R", Str("b"), Str("a"), Str("c"))
	s := SetOfNames(sch, "a", "c", "bogus")
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	names := s.Names(sch)
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("Names = %v (schema order expected)", names)
	}
	sorted := s.SortedNames(sch)
	if sorted[0] != "a" || sorted[1] != "c" {
		t.Fatalf("SortedNames = %v", sorted)
	}
	if got := s.Format(sch); got != "{a, c}" {
		t.Fatalf("Format = %q", got)
	}
}

func TestFullSet(t *testing.T) {
	sch := MustNew("R", Str("a"), Str("b"), Str("c"))
	fs := FullSet(sch)
	if fs.Count() != 3 || !fs.Has(0) || !fs.Has(2) || fs.Has(3) {
		t.Fatalf("FullSet wrong: %b", fs)
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		s := AttrSet(x)
		return SetOf(s.Positions()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
