package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cerfix/internal/admission"
	"cerfix/internal/core"
	"cerfix/internal/faultfs"
	"cerfix/internal/guard"
	"cerfix/internal/master"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// Errors the Manager reports to callers.
var (
	// ErrNotFound means no job has the given ID.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrFinished means the job already reached a terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrClosed means the manager is shutting down.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrInvalid marks a submission rejected for client-side reasons
	// (unknown attributes, malformed tuples, bad formats, disallowed
	// paths). Server-side faults — journal or directory I/O — are
	// deliberately NOT Invalid, so the HTTP layer can answer 422 for
	// the former and 5xx for the latter.
	ErrInvalid = errors.New("jobs: invalid submission")
	// ErrBacklogFull means the queue holds Config.MaxQueued jobs
	// already: admission is load shedding, not disk growth. The HTTP
	// layer answers 429 with a Retry-After computed from QueueStats.
	ErrBacklogFull = errors.New("jobs: backlog full")
	// ErrDegraded means persistence is unhealthy (Config.Health): the
	// journal directory cannot take durable writes, so submissions are
	// refused rather than acknowledged into a queue that could lose
	// them. The HTTP layer answers a typed 503 with a Retry-After; the
	// manager recovers automatically when the health probe succeeds.
	ErrDegraded = faultfs.ErrDegraded
	// ErrDeadline marks a run cancelled for exceeding Config.JobTimeout.
	// The job journals as a terminal failure with this reason — unlike a
	// watchdog stall, a deadline means the job ran and was simply too
	// big for the configured budget, so re-running it would only burn
	// another budget.
	ErrDeadline = errors.New("jobs: job deadline exceeded")
)

// invalid tags err as a client-input failure:
// errors.Is(invalid(err), ErrInvalid) holds while the message and the
// wrapped cause stay intact.
func invalid(err error) error { return invalidError{err} }

type invalidError struct{ err error }

func (e invalidError) Error() string        { return e.err.Error() }
func (e invalidError) Unwrap() error        { return e.err }
func (e invalidError) Is(target error) bool { return target == ErrInvalid }

// Config wires a Manager.
type Config struct {
	// Dir is the jobs directory (created if needed); see the package
	// comment for its layout.
	Dir string
	// Schema is the input relation every job's tuples live under.
	Schema *schema.Schema
	// Snapshot returns an isolated engine for one job run — typically
	// the HTTP server's lock-and-snapshot. Called once per run, at
	// job start, so each attempt sees the rules and master data of
	// that moment.
	Snapshot func() *core.Engine
	// MasterMemory optionally reports the master data manager's byte
	// accounting for QueueStats. Unlike Snapshot it is called on every
	// Stats read, so it must be cheap and non-blocking (nil omits the
	// field).
	MasterMemory func() master.MemStats
	// InputRoot confines SubmitFile paths: only files under this
	// directory (after resolving symlinks) may be opened by jobs.
	// Empty rejects every server-side path submission — inline
	// tuples, which are materialized into the jobs directory, are
	// always allowed.
	InputRoot string
	// MaxQueued bounds the number of jobs waiting to run (<=0 means
	// unbounded). A submission past the bound fails with
	// ErrBacklogFull before touching disk — the persistent backlog
	// must not grow just because callers outpace the runners. The
	// bound gates new admissions only: restart recovery re-queues
	// every interrupted job even when that exceeds it.
	MaxQueued int
	// Workers is the number of concurrent job runners (<=0 means 1).
	// Each runner executes one job at a time against its own O(1)
	// engine snapshot; admission is fair FIFO — whenever a runner
	// frees up it starts the oldest queued job, so no job is ever
	// overtaken by a later submission. More runners let short jobs
	// proceed alongside long ones instead of queueing behind them.
	Workers int
	// Pipeline tunes the underlying batch runs (nil = defaults).
	Pipeline *pipeline.Options
	// FS routes every durable I/O the manager performs — journals,
	// materialized inline inputs, results artifacts. Nil means the
	// real filesystem; the fault harness installs an injector.
	FS faultfs.FS
	// Health, when set, gates submissions on persistence health
	// (Submit* fail fast with ErrDegraded while the journal directory
	// cannot take durable writes) and receives the outcome of every
	// journal and artifact write.
	Health *faultfs.Health
	// MaxAttempts bounds run attempts per job across transient storage
	// failures — ENOSPC, EIO, failed fsync — which retry with backoff
	// (default 3). Permanent input errors never retry.
	MaxAttempts int
	// RetryBackoff is the base delay before a transient-failure retry,
	// doubled per attempt (default 100ms; tests shrink it).
	RetryBackoff time.Duration
	// JobTimeout bounds one run's wall clock (0 = unbounded). A run
	// past it is cancelled and journaled as failed with the deadline
	// reason — the guardrail against jobs that are making progress but
	// will never fit the operator's budget.
	JobTimeout time.Duration
	// StallTimeout arms the stuck-job watchdog (0 = off): a running
	// job whose per-tuple progress counter has not advanced for this
	// long is cancelled and re-queued for another attempt — bounded by
	// MaxAttempts, after which it fails with the stall reason.
	StallTimeout time.Duration
}

// job is the Manager's runtime view of one Job record.
type job struct {
	rec Job
	dir string
	// cancel aborts the run with a cause: nil for user cancels and
	// shutdown, a guard.ErrStalled-wrapped error when the watchdog
	// fires. Non-nil while running.
	cancel    context.CancelCauseFunc
	stopTimer context.CancelFunc // releases the JobTimeout timer, if any
	unwatch   func()             // deregisters from the watchdog, if any
	ctxForRun context.Context    // the run's context, set with cancel
	requeue   bool               // shutdown drain: re-queue instead of cancelling
	// processed is the live run's counter — atomic so the per-tuple
	// sink never touches the manager lock. It doubles as the watchdog
	// heartbeat.
	processed atomic.Int64
}

// snapshotLocked copies the record, folding in the live counter for a
// running job. Callers hold m.mu.
func (j *job) snapshotLocked() Job {
	rec := j.rec
	if rec.State == StateRunning {
		rec.Processed = int(j.processed.Load())
	}
	return rec
}

// Manager owns the job queue: submission, the background worker,
// journal persistence and restart recovery.
type Manager struct {
	cfg  Config
	fs   faultfs.FS
	mu   sync.Mutex
	cond *sync.Cond
	jobs map[string]*job
	seq  int
	// quarantined counts job directories set aside at recovery because
	// their journal failed its checksum (surfaced in QueueStats).
	quarantined int
	// reserved counts submissions between backlog admission and
	// appearing in jobs — in-flight enqueues hold a reservation so
	// concurrent submitters cannot jointly overshoot MaxQueued.
	reserved int
	// closed stops the worker from starting new jobs; Close waits for
	// the in-flight one.
	closed bool
	wg     sync.WaitGroup
	// svc tracks the moving average of completed-job service time
	// (started → finished) — the basis for backlog Retry-After hints.
	svc admission.EWMA
	// watchdog cancels runs whose progress counter stalls past
	// Config.StallTimeout (nil when the guardrail is off).
	watchdog *guard.Watchdog
	// panics counts runner panics converted into job failures.
	panics atomic.Int64
}

// QueueStats is a point-in-time view of the queue for status
// endpoints and load-shedding decisions.
type QueueStats struct {
	// Queued through Cancelled count jobs per lifecycle state.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Workers and MaxQueued echo the configuration (MaxQueued 0 =
	// unbounded).
	Workers   int `json:"workers"`
	MaxQueued int `json:"max_queued"`
	// Quarantined counts job directories set aside at recovery because
	// their journal failed its integrity check (kept on disk as
	// <id>.corrupt for inspection, never run).
	Quarantined int `json:"quarantined"`
	// AvgServiceMS is the moving average of completed-job service
	// time in milliseconds (0 until a job completes).
	AvgServiceMS float64 `json:"avg_service_ms"`
	// MasterMemory is the memory accounting of the master data the
	// jobs run against (nil when the manager has no snapshot source).
	// Job runners chase against O(1) COW snapshots, so this shows the
	// shared bytes those snapshots pin and the COW debt live writes
	// have accrued against them.
	MasterMemory *master.MemStats `json:"master_memory,omitempty"`
	// Stalls counts watchdog cancellations of wedged runs; Panics
	// counts runner panics converted into job failures.
	Stalls int64 `json:"stalls"`
	Panics int64 `json:"panics"`
	// JobTimeoutMS and StallTimeoutMS echo the runtime guardrails
	// (0 = disabled).
	JobTimeoutMS   int64 `json:"job_timeout_ms"`
	StallTimeoutMS int64 `json:"stall_timeout_ms"`
}

// AvgService returns the average service time as a duration.
func (s QueueStats) AvgService() time.Duration {
	return time.Duration(s.AvgServiceMS * float64(time.Millisecond))
}

// Stats returns current queue depths, configuration, the observed
// service-time average and the master-memory accounting.
func (m *Manager) Stats() QueueStats {
	// Resolve master memory before taking m.mu: the hook typically
	// reaches into the HTTP server's system, and nesting its lock
	// under ours would invert the order other handlers use.
	var mem *master.MemStats
	if m.cfg.MasterMemory != nil {
		ms := m.cfg.MasterMemory()
		mem = &ms
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := QueueStats{
		Workers:        m.cfg.Workers,
		MaxQueued:      m.cfg.MaxQueued,
		Quarantined:    m.quarantined,
		AvgServiceMS:   float64(m.svc.Value()) / float64(time.Millisecond),
		MasterMemory:   mem,
		Panics:         m.panics.Load(),
		JobTimeoutMS:   m.cfg.JobTimeout.Milliseconds(),
		StallTimeoutMS: m.cfg.StallTimeout.Milliseconds(),
	}
	if m.watchdog != nil {
		st.Stalls = m.watchdog.Stalls()
	}
	st.Queued = m.reserved
	for _, j := range m.jobs {
		switch j.rec.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Open loads the jobs directory, re-queues every job found queued or
// running (discarding partial artifacts), and starts the configured
// number of background runners (Config.Workers, default 1).
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" || cfg.Schema == nil || cfg.Snapshot == nil {
		return nil, errors.New("jobs: Config needs Dir, Schema and Snapshot")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	m := &Manager{cfg: cfg, fs: cfg.FS, jobs: make(map[string]*job)}
	m.cond = sync.NewCond(&m.mu)
	if cfg.StallTimeout > 0 {
		m.watchdog = guard.NewWatchdog(cfg.StallTimeout)
		m.watchdog.Start()
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover scans the directory and rebuilds the in-memory table from
// the job.json journals. A journal that exists but fails its
// integrity check (bad JSON, checksum mismatch, wrong ID) is real
// corruption, not a torn submit: the whole job directory is set aside
// as <id>.corrupt for inspection — never run, never silently dropped
// — and counted in QueueStats.Quarantined.
func (m *Manager) recover() error {
	entries, err := m.fs.ReadDir(m.cfg.Dir)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasSuffix(e.Name(), ".corrupt") {
			continue
		}
		dir := filepath.Join(m.cfg.Dir, e.Name())
		data, err := m.fs.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			// A directory without a readable journal is a torn submit
			// (the crash hit before the journal rename); nothing was
			// acknowledged, so skip it rather than refuse to start.
			continue
		}
		rec, derr := decodeJournal(data)
		if derr != nil || rec.ID != e.Name() {
			if derr == nil {
				derr = fmt.Errorf("journal names job %q", rec.ID)
			}
			m.quarantine(dir, derr)
			continue
		}
		j := &job{rec: rec, dir: dir}
		if !rec.State.Terminal() {
			// Interrupted mid-queue or mid-run: start over. The stale
			// artifact is truncated when the run begins.
			j.rec.State = StateQueued
			j.rec.Started = time.Time{}
			j.rec.Processed = 0
			if err := m.persist(j); err != nil {
				return err
			}
		}
		m.jobs[rec.ID] = j
		if n, err := strconv.Atoi(e.Name()[1:]); err == nil && n > m.seq {
			m.seq = n
		}
	}
	return nil
}

// quarantine sets a corrupt job directory aside as <dir>.corrupt.
func (m *Manager) quarantine(dir string, cause error) {
	q := dir + ".corrupt"
	_ = m.fs.RemoveAll(q)
	if err := m.fs.Rename(dir, q); err != nil {
		log.Printf("jobs: %s: corrupt journal (%v); quarantine failed: %v", dir, cause, err)
		return
	}
	log.Printf("jobs: %s: corrupt journal (%v); directory preserved at %s", dir, cause, q)
	m.quarantined++
}

// journalEnvelope is the on-disk shape of job.json: the compact job
// record plus a CRC32-IEEE of its bytes, so restart recovery can tell
// a damaged journal from a valid one instead of trusting whatever
// parses.
type journalEnvelope struct {
	CRC uint32          `json:"crc"`
	Job json.RawMessage `json:"job"`
}

// decodeJournal verifies and decodes a job.json. Journals written
// before the envelope (a bare record) are accepted as-is.
func decodeJournal(data []byte) (Job, error) {
	var env journalEnvelope
	if err := json.Unmarshal(data, &env); err == nil && len(env.Job) > 0 {
		if got := crc32.ChecksumIEEE(env.Job); got != env.CRC {
			return Job{}, fmt.Errorf("journal checksum mismatch (want %08x, have %08x)", env.CRC, got)
		}
		var rec Job
		if err := json.Unmarshal(env.Job, &rec); err != nil {
			return Job{}, fmt.Errorf("journal: %w", err)
		}
		return rec, nil
	}
	var rec Job
	if err := json.Unmarshal(data, &rec); err != nil {
		return Job{}, fmt.Errorf("journal: %w", err)
	}
	return rec, nil
}

// persist journals the job record atomically and durably: checksummed
// envelope into a temp file, fsync, rename over job.json, directory
// sync — so a crash at any point leaves either the previous journal
// or the new one, both checksum-valid, never a torn or hollow file.
// The outcome feeds the persistence health tracker.
func (m *Manager) persist(j *job) error {
	err := m.persistJournal(j)
	m.reportHealth(err)
	return err
}

// reportHealth feeds a durable-I/O outcome to the health tracker (a
// no-op without one; permanent errors are filtered by Health itself).
func (m *Manager) reportHealth(err error) {
	if m.cfg.Health != nil {
		m.cfg.Health.ReportResult(err)
	}
}

func (m *Manager) persistJournal(j *job) error {
	payload, err := json.Marshal(j.rec)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	data, err := json.Marshal(journalEnvelope{CRC: crc32.ChecksumIEEE(payload), Job: payload})
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	tmp := filepath.Join(j.dir, ".job.json.tmp")
	if err := faultfs.WriteFileSync(m.fs, tmp, data, 0o644); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if err := m.fs.Rename(tmp, filepath.Join(j.dir, "job.json")); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if err := m.fs.SyncDir(j.dir); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// healthGate fails fast with ErrDegraded while persistence is
// unhealthy. The Check itself drives recovery: once the probe
// interval elapses it re-probes the journal directory and, on
// success, flips back to healthy and admits the triggering caller.
func (m *Manager) healthGate() error {
	if m.cfg.Health == nil {
		return nil
	}
	if err := m.cfg.Health.Check(); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// validateAttrs rejects unknown or empty validated lists up front.
func (m *Manager) validateAttrs(validated []string) error {
	if len(validated) == 0 {
		return invalid(errors.New("jobs: validated attribute list required"))
	}
	for _, a := range validated {
		if !m.cfg.Schema.Has(a) {
			return invalid(fmt.Errorf("jobs: unknown attribute %q", a))
		}
	}
	return nil
}

// SubmitInline queues a job over tuples given directly; they are
// materialized to the job's input.jsonl so the job survives restarts.
func (m *Manager) SubmitInline(validated []string, tuples []map[string]string) (Job, error) {
	// Shed before the O(tuples) parse below — under overload the
	// rejection itself must stay cheap. enqueue re-checks
	// authoritatively under its reservation.
	if err := m.backlogRoom(); err != nil {
		return Job{}, err
	}
	if err := m.healthGate(); err != nil {
		return Job{}, err
	}
	if err := m.validateAttrs(validated); err != nil {
		return Job{}, err
	}
	if len(tuples) == 0 {
		return Job{}, invalid(errors.New("jobs: no tuples"))
	}
	// Parse now so submission fails fast on malformed input.
	for i, tm := range tuples {
		if _, err := schema.TupleFromMap(m.cfg.Schema, tm); err != nil {
			return Job{}, invalid(fmt.Errorf("jobs: tuple %d: %w", i, err))
		}
	}
	return m.enqueue(validated, "input.jsonl", FormatJSONL, func(dir string) error {
		// The materialized input must be durable before the journal
		// acknowledges the job: on restart the job is re-run from this
		// file, so an unsynced copy could vanish with the crash that
		// made the re-run necessary.
		f, err := faultfs.Create(m.fs, filepath.Join(dir, "input.jsonl"))
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		for _, tm := range tuples {
			if err := enc.Encode(tm); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}

// SubmitFile queues a job over a server-side CSV or JSONL file. The
// path must resolve inside Config.InputRoot (the daemon must not
// become an arbitrary-file reader for any HTTP client) and stay
// readable until the job completes (it is re-read on restart
// recovery).
func (m *Manager) SubmitFile(validated []string, path, format string) (Job, error) {
	if err := m.healthGate(); err != nil {
		return Job{}, err
	}
	if err := m.validateAttrs(validated); err != nil {
		return Job{}, err
	}
	if format != FormatCSV && format != FormatJSONL {
		return Job{}, invalid(fmt.Errorf("jobs: bad format %q (want %s or %s)", format, FormatCSV, FormatJSONL))
	}
	abs, err := m.confineInput(path)
	if err != nil {
		return Job{}, invalid(err)
	}
	if _, err := os.Stat(abs); err != nil {
		return Job{}, invalid(fmt.Errorf("jobs: input: %w", err))
	}
	return m.enqueue(validated, abs, format, nil)
}

// confineInput resolves path and rejects anything outside InputRoot,
// following symlinks so a link inside the root cannot escape it.
func (m *Manager) confineInput(path string) (string, error) {
	if m.cfg.InputRoot == "" {
		return "", errors.New("jobs: server-side input paths are disabled (no input root configured)")
	}
	root, err := filepath.EvalSymlinks(m.cfg.InputRoot)
	if err != nil {
		return "", fmt.Errorf("jobs: input root: %w", err)
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	resolved, err := filepath.EvalSymlinks(abs)
	if err != nil {
		return "", fmt.Errorf("jobs: input: %w", err)
	}
	rel, err := filepath.Rel(root, resolved)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("jobs: input %q is outside the input root", path)
	}
	return resolved, nil
}

// enqueue allocates the job directory, runs the optional materializer
// inside it, journals the queued record and wakes the worker. The
// backlog bound is enforced here, under the lock, BEFORE any disk
// work: a shed submission leaves no trace, and the reservation held
// until the job lands in the table keeps concurrent submitters from
// jointly overshooting MaxQueued.
func (m *Manager) enqueue(validated []string, input, format string, materialize func(dir string) error) (Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Job{}, ErrClosed
	}
	if m.cfg.MaxQueued > 0 && m.queuedLocked() >= m.cfg.MaxQueued {
		m.mu.Unlock()
		return Job{}, ErrBacklogFull
	}
	m.reserved++
	m.seq++
	id := fmt.Sprintf("j%06d", m.seq)
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		m.reserved--
		m.mu.Unlock()
	}

	dir := filepath.Join(m.cfg.Dir, id)
	if err := m.fs.MkdirAll(dir, 0o755); err != nil {
		release()
		m.reportHealth(err)
		return Job{}, fmt.Errorf("jobs: %w", err)
	}
	if materialize != nil {
		if err := materialize(dir); err != nil {
			_ = m.fs.RemoveAll(dir)
			release()
			m.reportHealth(err)
			return Job{}, fmt.Errorf("jobs: %w", err)
		}
	}
	j := &job{
		rec: Job{
			ID:        id,
			State:     StateQueued,
			Validated: append([]string(nil), validated...),
			Input:     input,
			Format:    format,
			Submitted: time.Now().UTC(),
		},
		dir: dir,
	}
	if err := m.persist(j); err != nil {
		_ = m.fs.RemoveAll(dir)
		release()
		return Job{}, err
	}
	m.mu.Lock()
	m.jobs[id] = j
	m.reserved--
	rec := j.rec // copy under the lock; the worker may pick it up immediately
	m.mu.Unlock()
	m.cond.Broadcast()
	return rec, nil
}

// backlogRoom is the advisory fast-path backlog check: it sheds
// without disk or parse work when the queue is already full. The
// authoritative check lives in enqueue.
func (m *Manager) backlogRoom() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.MaxQueued > 0 && m.queuedLocked() >= m.cfg.MaxQueued {
		return ErrBacklogFull
	}
	return nil
}

// queuedLocked counts jobs waiting to run plus in-flight enqueue
// reservations. Callers hold m.mu.
func (m *Manager) queuedLocked() int {
	n := m.reserved
	for _, j := range m.jobs {
		if j.rec.State == StateQueued {
			n++
		}
	}
	return n
}

// Workers returns the effective number of concurrent runners the
// manager started (Config.Workers after normalization).
func (m *Manager) Workers() int { return m.cfg.Workers }

// jobIDLess orders job IDs by submission: IDs are "j" + a zero-padded
// sequence number, so shorter strings sort first and equal lengths
// compare lexicographically — correct even past the pad width, where
// a plain string compare would put "j1000000" before "j999999".
func jobIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Get returns a snapshot of one job record.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.snapshotLocked(), nil
}

// List returns snapshots of every job, oldest first.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshotLocked())
	}
	sort.Slice(out, func(a, b int) bool { return jobIDLess(out[a].ID, out[b].ID) })
	return out
}

// ResultsPath returns the job's results artifact path once the job is
// terminal (a cancelled or failed job exposes its partial prefix).
func (m *Manager) ResultsPath(id string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return "", ErrNotFound
	}
	if !j.rec.State.Terminal() {
		return "", fmt.Errorf("jobs: job %s is %s, results not final", id, j.rec.State)
	}
	return filepath.Join(j.dir, "results.jsonl"), nil
}

// Cancel aborts a job: a queued job turns cancelled immediately, a
// running one has its pipeline context cancelled (the worker journals
// the terminal state within one backpressure window). The returned
// snapshot reflects the record at call time.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.rec.State {
	case StateQueued:
		j.rec.State = StateCancelled
		j.rec.Finished = time.Now().UTC()
		if err := m.persist(j); err != nil {
			return Job{}, err
		}
	case StateRunning:
		j.cancel(nil)
	default:
		return Job{}, ErrFinished
	}
	return j.snapshotLocked(), nil
}

// Remove purges a terminal job: its record, its directory and every
// artifact in it. Live jobs must reach a terminal state (Cancel)
// first. This is the retention mechanism — terminal jobs are kept
// until removed.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if !j.rec.State.Terminal() {
		return fmt.Errorf("jobs: job %s is %s; cancel it before removing", id, j.rec.State)
	}
	if err := m.fs.RemoveAll(j.dir); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	delete(m.jobs, id)
	return nil
}

// Close drains the manager: no new job starts, and every in-flight
// job gets until ctx expires to finish before being interrupted and
// re-queued for the next start. Safe to call once.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.rec.State == StateRunning && j.cancel != nil {
				j.requeue = true
				j.cancel(nil)
			}
		}
		m.mu.Unlock()
		<-finished
		err = ctx.Err()
	}
	if m.watchdog != nil {
		m.watchdog.Close()
	}
	return err
}

// worker is one background runner. Config.Workers of them run
// concurrently, each executing one job at a time against its own
// engine snapshot — snapshots are O(1) copy-on-write views, so N
// runners cost no more to start than one. Admission stays fair FIFO:
// next() always hands out the oldest queued job, so concurrency never
// reorders starts, only overlaps executions. (Intra-job parallelism
// additionally lives inside each run: the pipeline's worker pool.)
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.run(j)
	}
}

// next blocks until a queued job exists (returning the oldest) or the
// manager closes (returning nil). It transitions the job to running
// under the lock.
func (m *Manager) next() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return nil
		}
		var pick *job
		for _, j := range m.jobs {
			if j.rec.State != StateQueued {
				continue
			}
			if pick == nil || jobIDLess(j.rec.ID, pick.rec.ID) {
				pick = j
			}
		}
		if pick != nil {
			pick.rec.State = StateRunning
			pick.rec.Started = time.Now().UTC()
			pick.rec.Attempts++
			pick.rec.Processed = 0
			pick.processed.Store(0)
			pick.rec.Error = ""
			pick.rec.PanicStack = ""
			// The run's context carries its own termination story in the
			// cancellation cause: nil for user cancel and shutdown, the
			// stall error when the watchdog fires, the deadline error
			// when JobTimeout elapses — run() classifies on it.
			ctx, cancel := context.WithCancelCause(context.Background())
			runCtx := ctx
			var stopTimer context.CancelFunc = func() {}
			if m.cfg.JobTimeout > 0 {
				runCtx, stopTimer = context.WithTimeoutCause(ctx, m.cfg.JobTimeout,
					fmt.Errorf("%w after %s", ErrDeadline, m.cfg.JobTimeout))
			}
			pick.cancel = cancel
			pick.stopTimer = stopTimer
			pick.ctxForRun = runCtx
			if err := m.persist(pick); err != nil {
				// Journal write failure: fail the job rather than run
				// it unrecorded.
				pick.rec.State = StateFailed
				pick.rec.Error = err.Error()
				pick.rec.Finished = time.Now().UTC()
				pick.cancel = nil
				pick.stopTimer = nil
				pick.ctxForRun = nil
				stopTimer()
				cancel(nil)
				continue
			}
			if m.watchdog != nil {
				pick.unwatch = m.watchdog.Watch(pick.rec.ID, pick.processed.Load,
					func(cause error) { cancel(cause) })
			}
			return pick
		}
		m.cond.Wait()
	}
}

// run executes one job through the pipeline and journals the outcome.
// Transient storage faults — ENOSPC, EIO, a failed fsync — retry in
// place with exponential backoff up to Config.MaxAttempts: the input
// is fine, the disk hiccuped, and each retry restarts the attempt
// from scratch (the artifact is truncated on open). Permanent errors
// — bad input, pipeline failures — never retry.
func (m *Manager) run(j *job) {
	ctx := j.ctxForRun
	err := m.safeRunPipeline(ctx, j)
	m.reportHealth(err)
	for err != nil && faultfs.Transient(err) && ctx.Err() == nil {
		m.mu.Lock()
		if j.rec.Attempts >= m.cfg.MaxAttempts {
			m.mu.Unlock()
			break
		}
		j.rec.Attempts++
		attempt := j.rec.Attempts
		j.rec.Processed = 0
		j.processed.Store(0)
		// Best-effort: the attempt count is advisory; if the journal
		// write fails too the retry itself may still succeed.
		_ = m.persist(j)
		m.mu.Unlock()
		select {
		case <-ctx.Done():
		case <-time.After(m.cfg.RetryBackoff << (attempt - 2)):
		}
		if ctx.Err() != nil {
			break
		}
		err = m.safeRunPipeline(ctx, j)
		m.reportHealth(err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if j.unwatch != nil {
		j.unwatch()
		j.unwatch = nil
	}
	// Read the cause before the cleanup cancel below overwrites it: a
	// never-cancelled context would otherwise report plain Canceled.
	cause := context.Cause(ctx)
	j.cancel(nil)
	j.stopTimer()
	j.cancel = nil
	j.stopTimer = nil
	j.ctxForRun = nil
	j.rec.Processed = int(j.processed.Load())
	var pe *guard.PanicError
	switch {
	case err == nil:
		j.rec.State = StateDone
	case errors.As(err, &pe):
		// A recovered panic — one poisoned tuple or rule — is a
		// terminal failure with the stack journaled; never retried (the
		// same input would panic again).
		m.panics.Add(1)
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
		j.rec.PanicStack = string(pe.Stack)
	case errors.Is(cause, guard.ErrStalled):
		// The watchdog cancelled a wedged run. Re-queue for another
		// attempt while the MaxAttempts budget lasts (the stall may
		// have been environmental); past it, fail with the stall
		// reason.
		if j.requeue || j.rec.Attempts < m.cfg.MaxAttempts {
			j.rec.State = StateQueued
			j.rec.Started = time.Time{}
			j.rec.Processed = 0
			j.requeue = false
		} else {
			j.rec.State = StateFailed
			j.rec.Error = cause.Error()
		}
	case errors.Is(cause, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		j.rec.State = StateFailed
		if cause != nil {
			j.rec.Error = cause.Error()
		} else {
			j.rec.Error = err.Error()
		}
	case errors.Is(err, context.Canceled) && j.requeue:
		// Shutdown drain interrupted the run: journal it back to
		// queued so the next Open re-runs it.
		j.rec.State = StateQueued
		j.rec.Started = time.Time{}
		j.rec.Processed = 0
		j.requeue = false
	case errors.Is(err, context.Canceled):
		j.rec.State = StateCancelled
	default:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
	}
	if j.rec.State.Terminal() {
		j.rec.Finished = time.Now().UTC()
	}
	if perr := m.persist(j); perr != nil && j.rec.State == StateDone {
		// A job whose completion cannot be journaled must not report
		// done: it would re-run after restart anyway.
		j.rec.State = StateFailed
		j.rec.Error = perr.Error()
		_ = m.persist(j)
	}
	if j.rec.State == StateDone {
		// Completed-job service time feeds the backlog Retry-After
		// estimate (QueueStats.AvgServiceMS).
		m.svc.Observe(j.rec.Finished.Sub(j.rec.Started))
	}
	if j.rec.State == StateQueued && !m.closed {
		// A stall re-queue must wake a runner the way a fresh
		// submission would.
		m.cond.Broadcast()
	}
}

// safeRunPipeline shields the runner goroutine: a panic anywhere in
// the run that the pipeline's own worker/reader recovery does not
// catch — source construction, the artifact sink, journal encoding —
// is converted into a typed *guard.PanicError instead of killing the
// daemon.
func (m *Manager) safeRunPipeline(ctx context.Context, j *job) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = guard.NewPanicError("jobs runner", p, debug.Stack())
		}
	}()
	return m.runPipeline(ctx, j)
}

// runPipeline opens the source, streams results to the artifact, and
// returns the pipeline's error (nil on full completion).
func (m *Manager) runPipeline(ctx context.Context, j *job) error {
	input := j.rec.Input
	if !filepath.IsAbs(input) {
		input = filepath.Join(j.dir, input)
	}
	in, err := m.fs.Open(input)
	if err != nil {
		return err
	}
	defer in.Close()
	var src pipeline.Source
	switch j.rec.Format {
	case FormatCSV:
		src, err = pipeline.NewCSVSource(m.cfg.Schema, in)
		if err != nil {
			return err
		}
	case FormatJSONL:
		src = pipeline.NewJSONLSource(m.cfg.Schema, in)
	default:
		return fmt.Errorf("bad input format %q", j.rec.Format)
	}

	out, err := faultfs.Create(m.fs, filepath.Join(j.dir, "results.jsonl"))
	if err != nil {
		return err
	}
	defer out.Close()
	bw := bufio.NewWriter(out)
	// Results are rendered through the append-style encoder — byte-
	// identical to json.Encoder encoding a TupleResult, but through one
	// buffer recycled per record, honoring the pipeline's contract that
	// a result is dead once Write returns: nothing per-tuple survives
	// the write, so a steady-state job run allocates O(window), not
	// O(tuples).
	enc := NewResultEncoder(m.cfg.Schema)
	var line []byte
	sink := pipeline.SinkFunc(func(r *pipeline.Result) error {
		line = enc.Append(line[:0], r)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
		j.processed.Add(1)
		return nil
	})

	seed := schema.SetOfNames(m.cfg.Schema, j.rec.Validated...)
	stats, err := pipeline.Run(ctx, m.cfg.Snapshot(), seed, src, sink, m.cfg.Pipeline)
	if err != nil {
		_ = bw.Flush()
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := out.Sync(); err != nil {
		return err
	}
	m.mu.Lock()
	j.rec.Stats = &stats
	m.mu.Unlock()
	return nil
}
