// Package jobs is the persistent async batch-repair subsystem: long
// batch repairs run off the interactive request path entirely —
// submitted, tracked, and durable across daemon restarts. It layers a
// job queue on internal/pipeline the way the paper positions the data
// monitor as an integration point for "other database applications"
// (§3): a caller hands over a validated-attribute list plus an input
// source, and polls for the outcome instead of holding a connection
// open for the duration of the repair. A configurable pool of
// concurrent runners (Config.Workers) executes queued jobs with fair
// FIFO admission, each run against its own O(1) copy-on-write engine
// snapshot (core.Engine.Snapshot), so overlapping jobs neither block
// each other nor pay a per-run deep copy of master data.
//
// # Lifecycle
//
// A job moves through the states
//
//	queued → running → done
//	                 ↘ failed     (source/sink error)
//	                 ↘ cancelled  (user cancel)
//
// with one extra edge: a running job interrupted by daemon shutdown
// is re-marked queued, so the next start re-runs it from scratch.
// Cancellation aborts the pipeline through its context hook and is
// observed within one backpressure window. Terminal jobs — journal,
// input and results artifacts — are retained until explicitly purged
// (Manager.Remove; DELETE /api/jobs/{id} on a finished job); there is
// no automatic retention window.
//
// # Directory layout
//
// Each job owns one subdirectory of the manager's jobs directory:
//
//	<jobs-dir>/<job-id>/
//	    job.json       — the journal record: spec, state, timestamps,
//	                     final stats; rewritten atomically (temp file
//	                     + rename) on every transition
//	    input.jsonl    — inline tuples materialized at submit time
//	                     (absent for server-side file inputs)
//	    results.jsonl  — the results artifact, one TupleResult object
//	                     per input tuple in input order
//
// job.json is the source of truth at recovery: on Open, every job
// found queued or running is re-queued (its partial results artifact
// is discarded), and terminal jobs are retained for listing.
//
// The results artifact uses the same per-tuple JSON shape as the
// synchronous POST /api/fix results array, so an async job's output
// is byte-identical, line for line, to the sync path for the same
// input.
package jobs

import (
	"time"

	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// State is a job's lifecycle position.
type State string

// The job states. Queued and Running are live (recovered after a
// restart); Done, Failed and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Format names an input encoding for server-side job inputs.
const (
	FormatCSV   = "csv"
	FormatJSONL = "jsonl"
)

// Job is the journal record persisted as job.json — the durable
// description of one batch repair. Copies returned by the Manager are
// snapshots; mutate nothing.
type Job struct {
	// ID names the job and its subdirectory.
	ID string `json:"id"`
	// State is the current lifecycle position.
	State State `json:"state"`
	// Validated lists the attributes asserted correct on every tuple.
	Validated []string `json:"validated"`
	// Input is the tuple source: a path relative to the job directory
	// for materialized inline submissions, absolute for server-side
	// files.
	Input string `json:"input"`
	// Format is the input encoding (FormatCSV or FormatJSONL).
	Format string `json:"format"`
	// Submitted, Started and Finished stamp the transitions (zero
	// until reached).
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Attempts counts runs, >1 after restart recovery.
	Attempts int `json:"attempts"`
	// Processed is the live progress counter: results written so far.
	Processed int `json:"processed"`
	// Error holds the failure cause for StateFailed.
	Error string `json:"error,omitempty"`
	// PanicStack is the goroutine stack of a recovered runner panic —
	// journaled with the failure so a poisoned tuple or rule can be
	// diagnosed from the job record alone.
	PanicStack string `json:"panic_stack,omitempty"`
	// Stats is the pipeline aggregate, set when the job completes.
	Stats *pipeline.Stats `json:"stats,omitempty"`
}

// Change is one cell rewrite or confirmation in a job's results
// artifact — the wire twin of the HTTP API's change object.
type Change struct {
	Attr     string `json:"attr"`
	Old      string `json:"old"`
	New      string `json:"new"`
	Source   string `json:"source"`
	RuleID   string `json:"rule_id,omitempty"`
	MasterID int64  `json:"master_id,omitempty"`
}

// TupleResult is one tuple's outcome: the record shape of the
// results.jsonl artifact and of the synchronous batch endpoint's
// results array (both encode it identically). Validated is in schema
// order.
type TupleResult struct {
	Tuple     map[string]string `json:"tuple"`
	Validated []string          `json:"validated"`
	Done      bool              `json:"done"`
	Conflicts []string          `json:"conflicts,omitempty"`
	Rewrites  []Change          `json:"rewrites,omitempty"`
}

// NewTupleResult builds the record for one pipeline result. It is the
// struct-building reference implementation: the hot paths (the job
// runner's results.jsonl writer, the HTTP batch endpoint) render the
// identical bytes through ResultEncoder without materializing the
// struct, and the quick-check suite pins the two against each other.
func NewTupleResult(sch *schema.Schema, r *pipeline.Result) TupleResult {
	tr := TupleResult{
		Tuple:     r.Fixed.Map(),
		Validated: r.Chase.Validated.Names(sch),
		Done:      r.Chase.AllValidated(),
	}
	for _, c := range r.Chase.Conflicts {
		tr.Conflicts = append(tr.Conflicts, c.Error())
	}
	for _, c := range r.Chase.Rewrites() {
		tr.Rewrites = append(tr.Rewrites, Change{
			Attr: c.Attr, Old: string(c.Old), New: string(c.New),
			Source: c.Source.String(), RuleID: c.RuleID, MasterID: c.MasterID,
		})
	}
	return tr
}
