// Package oracle simulates the human in CerFix's loop. The demo's data
// monitor asks a user to validate attributes; our experiments replace
// the user with an oracle backed by ground truth (the dataset
// generators track the clean version of every dirty tuple). Policies
// control how closely the simulated user follows CerFix's suggestions,
// reproducing the interaction patterns of the paper's walkthrough and
// the 20/80 auditing statistic.
package oracle

import (
	"fmt"
	"sort"

	"cerfix/internal/monitor"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
)

// Policy selects which attributes the simulated user validates each
// round.
type Policy int

const (
	// FollowSuggestions validates exactly what CerFix suggests — the
	// minimal-effort flow the paper optimizes for.
	FollowSuggestions Policy = iota
	// OwnChoice validates a fixed preferred attribute list first (like
	// the Fig. 3 user who picks AC/phn/type/item), then follows
	// suggestions.
	OwnChoice
	// RandomChoice validates a random unvalidated subset each round
	// (stress-tests monitor convergence off the suggested path).
	RandomChoice
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FollowSuggestions:
		return "follow-suggestions"
	case OwnChoice:
		return "own-choice"
	case RandomChoice:
		return "random-choice"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// User is the simulated user.
type User struct {
	// Truth is the ground-truth tuple the user "knows".
	Truth *schema.Tuple
	// Policy picks attributes per round.
	Policy Policy
	// Preferred is the OwnChoice attribute list for the first round.
	Preferred []string
	// ErrorRate is the probability that the user asserts an attribute
	// *without correcting it* (keeping the entered value even when
	// wrong) — the careless-user failure mode. The certain-fix
	// guarantee is conditional on correct assertions; with ErrorRate >
	// 0 the system must surface contradictions rather than silently
	// trusting them (see TestImperfectUserSurfacesConflicts).
	ErrorRate float64
	// Session supplies the entered values the careless user repeats;
	// set automatically by RunSession.
	entered *schema.Tuple
	// RNG drives RandomChoice and ErrorRate; nil defaults to a fixed
	// seed.
	RNG *textutil.RNG
}

// NewUser builds an oracle for a ground-truth tuple.
func NewUser(truth *schema.Tuple, policy Policy) *User {
	return &User{Truth: truth, Policy: policy, RNG: textutil.NewRNG(99)}
}

// Answer returns the attribute→value assertions for one round, given
// the session's current suggestion. The values are ground truth,
// except that with probability ErrorRate per attribute the careless
// user repeats the entered value uncorrected.
func (u *User) Answer(s *monitor.Session) map[string]string {
	attrs := u.chooseAttrs(s)
	out := make(map[string]string, len(attrs))
	for _, a := range attrs {
		v := u.Truth.Get(a)
		if u.ErrorRate > 0 && u.entered != nil && u.rng().Bool(u.ErrorRate) {
			v = u.entered.Get(a)
		}
		out[a] = string(v)
	}
	return out
}

func (u *User) rng() *textutil.RNG {
	if u.RNG == nil {
		u.RNG = textutil.NewRNG(99)
	}
	return u.RNG
}

func (u *User) chooseAttrs(s *monitor.Session) []string {
	switch u.Policy {
	case OwnChoice:
		if s.Rounds == 0 && len(u.Preferred) > 0 {
			return u.Preferred
		}
		return s.Suggestion()
	case RandomChoice:
		remaining := s.Remaining()
		if len(remaining) == 0 {
			return nil
		}
		rng := u.rng()
		n := 1 + rng.Intn(len(remaining))
		textutil.Shuffle(rng, remaining)
		picked := remaining[:n]
		sort.Strings(picked)
		return picked
	default:
		return s.Suggestion()
	}
}

// RunSession drives a session to completion: each round the user
// validates per policy, the monitor chases, and the loop ends when all
// attributes are validated (or no progress is possible). It returns
// the number of interaction rounds.
func (u *User) RunSession(s *monitor.Session) (int, error) {
	u.entered = s.Original
	maxRounds := s.Tuple.Schema.Len() + 2
	for round := 0; !s.Done(); round++ {
		if round >= maxRounds {
			return s.Rounds, fmt.Errorf("oracle: session stuck after %d rounds; remaining %v",
				round, s.Remaining())
		}
		ans := u.Answer(s)
		if len(ans) == 0 {
			// Degenerate suggestion: validate everything remaining.
			for _, a := range s.Remaining() {
				ans[a] = string(u.Truth.Get(a))
			}
		}
		if _, err := s.Validate(ans); err != nil {
			return s.Rounds, err
		}
	}
	return s.Rounds, nil
}
