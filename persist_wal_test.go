package cerfix

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cerfix/internal/value"
)

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A Save after nothing but inserts must append to the WAL and leave
// the checkpoint files byte-for-byte untouched; Load must replay the
// log and report it in its provenance.
func TestSaveAppendsWALAfterInserts(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	csvBefore := readFileT(t, filepath.Join(dir, "master.csv"))
	baseRows := sys.Master().Len()

	if err := sys.AddMasterRow("Walter", "White", "505", "5550001", "5550002", "Negra Arroyo", "Albuquerque", "NM 87104", "07/09/58", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBefore, readFileT(t, filepath.Join(dir, "master.csv"))) {
		t.Fatal("incremental save rewrote master.csv")
	}
	wal := readFileT(t, filepath.Join(dir, walFile))
	if len(wal) == 0 {
		t.Fatal("incremental save wrote no WAL")
	}
	if !strings.Contains(string(wal), `"op":"ins"`) || !strings.Contains(string(wal), `"op":"dict"`) {
		t.Fatalf("WAL missing expected records:\n%s", wal)
	}

	// A second append batch lands in the same log.
	if err := sys.AddMasterRow("Jesse", "Pinkman", "505", "5550003", "5550004", "Margo", "Albuquerque", "NM 87104", "24/09/84", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMasterRow("Saul", "Goodman", "505", "5550005", "5550006", "Juan Tabo", "Albuquerque", "NM 87111", "12/11/60", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBefore, readFileT(t, filepath.Join(dir, "master.csv"))) {
		t.Fatal("second incremental save rewrote master.csv")
	}

	// Saving with no changes at all is a durable no-op.
	walBefore := readFileT(t, filepath.Join(dir, walFile))
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(walBefore, readFileT(t, filepath.Join(dir, walFile))) {
		t.Fatal("no-op save grew the WAL")
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Master().Len() != baseRows+3 {
		t.Fatalf("replayed %d rows, want %d", loaded.Master().Len(), baseRows+3)
	}
	rhs, _, st := loaded.Master().UniqueRHS([]string{"zip"}, value.List{"NM 87111"}, []string{"FN"})
	if st.String() != "unique" || rhs[0] != "Saul" {
		t.Fatalf("replayed row not indexed: %v %v", rhs, st)
	}
	info := loaded.LoadInfo()
	if info == nil || info.UsedBackup || info.Dir != dir {
		t.Fatalf("bad provenance: %+v", info)
	}
	if info.WALRows != 3 || info.WALRecords < 4 || info.WALBytes != int64(len(walBefore)) {
		t.Fatalf("bad WAL provenance: %+v", info)
	}

	// A loaded system has no append cursor (dictionary ids are
	// process-local): its first save must checkpoint and clear the WAL.
	if err := loaded.AddMasterRow("Kim", "Wexler", "505", "5550007", "5550008", "Marble", "Albuquerque", "NM 87102", "13/02/68", "F"); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFile)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint left a stale WAL behind: %v", err)
	}
	final, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Master().Len() != baseRows+4 {
		t.Fatalf("post-checkpoint load: %d rows, want %d", final.Master().Len(), baseRows+4)
	}
}

// A crash mid-append leaves a truncated final line; Load must apply
// every complete record and ignore the tail.
func TestWALTornTailTolerated(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	baseRows := sys.Master().Len()
	if err := sys.AddMasterRow("Walter", "White", "505", "1", "2", "3", "4", "NM 87104", "07/09/58", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMasterRow("Jesse", "Pinkman", "505", "1", "2", "3", "4", "NM 87104", "24/09/84", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFile)
	intact := readFileT(t, walPath)

	// Tear inside the last record (drop its closing bytes).
	if err := os.WriteFile(walPath, intact[:len(intact)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("torn tail broke the load: %v", err)
	}
	if loaded.Master().Len() != baseRows+1 {
		t.Fatalf("torn-tail replay got %d rows, want %d", loaded.Master().Len(), baseRows+1)
	}
	if info := loaded.LoadInfo(); !info.WALTornTail || info.WALCorrupt {
		t.Fatalf("torn tail misreported: %+v", info)
	}

	// Garbage appended after valid records (e.g. a partially flushed
	// next batch) is ignored the same way.
	torn := append(append([]byte{}, intact...), []byte(`{"op":"ins","row":99,"ce`)...)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err = Load(dir)
	if err != nil {
		t.Fatalf("garbage tail broke the load: %v", err)
	}
	if loaded.Master().Len() != baseRows+2 {
		t.Fatalf("garbage-tail replay got %d rows, want %d", loaded.Master().Len(), baseRows+2)
	}
	if info := loaded.LoadInfo(); !info.WALTornTail || info.WALCorrupt {
		t.Fatalf("garbage tail misreported: %+v", info)
	}

	// A decodable but uncommitted record at the tail (e.g. a batch
	// whose commit never landed) is discarded whole — acknowledged
	// data always carries a commit, so nothing acknowledged is lost.
	bad := append(append([]byte{}, intact...), []byte("{\"op\":\"ins\",\"row\":99,\"cells\":[9999999,0,0,0,0,0,0,0,0,0]}\n")...)
	if err := os.WriteFile(walPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err = Load(dir)
	if err != nil {
		t.Fatalf("uncommitted tail record broke the load: %v", err)
	}
	if loaded.Master().Len() != baseRows+2 {
		t.Fatalf("uncommitted-tail replay got %d rows, want %d", loaded.Master().Len(), baseRows+2)
	}
	if info := loaded.LoadInfo(); !info.WALTornTail {
		t.Fatalf("uncommitted tail misreported: %+v", info)
	}
}

// Real corruption — a committed batch whose bytes no longer match its
// commit checksum — must not be silently absorbed: replay stops at the
// first bad checksum (later batches stay unapplied even if they look
// valid), the unapplied tail is preserved for inspection, the load
// succeeds on the verified prefix, and the provenance reports it.
func TestWALCorruptBatchQuarantined(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	baseRows := sys.Master().Len()
	if err := sys.AddMasterRow("Walter", "White", "505", "1", "2", "3", "4", "NM 87104", "07/09/58", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMasterRow("Jesse", "Pinkman", "505", "1", "2", "3", "4", "NM 87104", "24/09/84", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFile)
	intact := readFileT(t, walPath)
	// Flip a byte inside the first batch: bump the informational row id
	// of the first ins record. The line stays valid JSON, so only the
	// commit checksum can catch the damage.
	i := bytes.Index(intact, []byte(`"row":`))
	if i < 0 {
		t.Fatalf("no ins record in WAL:\n%s", intact)
	}
	bad := append([]byte{}, intact...)
	digit := &bad[i+len(`"row":`)]
	if *digit == '9' {
		*digit = '0'
	} else {
		*digit++
	}
	if err := os.WriteFile(walPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("corrupt batch failed the load instead of quarantining: %v", err)
	}
	// Both batches are unapplied: the first is corrupt, the second is
	// beyond the first bad checksum.
	if loaded.Master().Len() != baseRows {
		t.Fatalf("corrupt replay got %d rows, want %d", loaded.Master().Len(), baseRows)
	}
	info := loaded.LoadInfo()
	if !info.WALCorrupt || info.WALQuarantine == "" || info.WALRows != 0 {
		t.Fatalf("corruption not reported: %+v", info)
	}
	// The unapplied tail is preserved byte-for-byte for inspection.
	q := readFileT(t, info.WALQuarantine)
	if !bytes.Contains(q, []byte(`"op":"commit"`)) || !bytes.HasSuffix(bad, q) {
		t.Fatalf("quarantined tail is not the unapplied suffix (%d bytes)", len(q))
	}
}

// Updates, deletes and rule edits are not pure appends: Save must fall
// back to a full checkpoint that rewrites master.csv and retires the
// WAL.
func TestNonAppendMutationForcesCheckpoint(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMasterRow("Walter", "White", "505", "1", "2", "3", "4", "NM 87104", "07/09/58", "M"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFile)); err != nil {
		t.Fatalf("expected a WAL after insert-only save: %v", err)
	}

	// An in-place update breaks the pure-append window.
	row := sys.Master().Table().All()[0]
	row.Set("city", "Rewritten")
	if err := sys.Master().Table().Update(row); err != nil {
		t.Fatal(err)
	}
	csvBefore := readFileT(t, filepath.Join(dir, "master.csv"))
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(csvBefore, readFileT(t, filepath.Join(dir, "master.csv"))) {
		t.Fatal("checkpoint did not rewrite master.csv after an update")
	}
	if _, err := os.Stat(filepath.Join(dir, walFile)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint left the old WAL in place: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tu := range loaded.Master().Table().All() {
		if tu.Get("city") == "Rewritten" {
			found = true
		}
	}
	if !found {
		t.Fatal("checkpoint lost the updated row")
	}

	// A rule edit also forces a checkpoint even with no table change.
	if err := sys.AddRule(`extra: match AC~AC set city := city`); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reloaded.Rules(), "extra") {
		t.Fatal("rule edit not persisted by forced checkpoint")
	}
}
