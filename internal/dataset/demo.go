// Package dataset provides the paper's demo data (the Fig. 2 schemas,
// editing rules φ1–φ9 and master tuples), synthetic generators scaling
// the same scenario to benchmark sizes, a HOSP-like generator modelled
// on the evaluation workload of the companion paper [7], and the noise
// injector that produces dirty input streams with tracked ground truth.
package dataset

import (
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// custSchema and personSchema are shared singletons: every caller gets
// the same *schema.Schema instance, so schema-identity checks in the
// storage and monitor layers hold across packages.
var custSchema = schema.MustNew("CUST",
	schema.Attribute{Name: "FN", Domain: value.DString, Desc: "first name"},
	schema.Attribute{Name: "LN", Domain: value.DString, Desc: "last name"},
	schema.Attribute{Name: "AC", Domain: value.DString, Desc: "area code"},
	schema.Attribute{Name: "phn", Domain: value.DString, Desc: "phone number (home or mobile, per type)"},
	schema.Attribute{Name: "type", Domain: value.DString, Desc: "phone type: 1 = home, 2 = mobile"},
	schema.Attribute{Name: "str", Domain: value.DString, Desc: "street"},
	schema.Attribute{Name: "city", Domain: value.DString, Desc: "city"},
	schema.Attribute{Name: "zip", Domain: value.DString, Desc: "zip code"},
	schema.Attribute{Name: "item", Domain: value.DString, Desc: "item purchased"},
)

var personSchema = schema.MustNew("PERSON",
	schema.Attribute{Name: "FN", Domain: value.DString, Desc: "first name"},
	schema.Attribute{Name: "LN", Domain: value.DString, Desc: "last name"},
	schema.Attribute{Name: "AC", Domain: value.DString, Desc: "area code"},
	schema.Attribute{Name: "Hphn", Domain: value.DString, Desc: "home phone"},
	schema.Attribute{Name: "Mphn", Domain: value.DString, Desc: "mobile phone"},
	schema.Attribute{Name: "str", Domain: value.DString, Desc: "street"},
	schema.Attribute{Name: "city", Domain: value.DString, Desc: "city"},
	schema.Attribute{Name: "zip", Domain: value.DString, Desc: "zip code"},
	schema.Attribute{Name: "DOB", Domain: value.DDate, Desc: "date of birth (dd/mm/yy)"},
	schema.Attribute{Name: "gender", Domain: value.DString, Desc: "gender"},
)

// CustSchema returns the input relation of the demo: a UK customer
// tuple as introduced in Example 1 of the paper. The same instance is
// returned on every call.
func CustSchema() *schema.Schema { return custSchema }

// PersonSchema returns the master relation of the demo: a UK person
// per §3 Initialization ("name, area code, home phone, mobile phone,
// address, date of birth and gender"). The same instance is returned
// on every call.
func PersonSchema() *schema.Schema { return personSchema }

// DemoRulesDSL is the paper's nine editing rules φ1–φ9 (§3, "Editing
// rule management") in the rule DSL:
//
//   - φ1–φ3: same zip (validated) → copy AC, str, city from master.
//     (The demo text's "t[zip] := s[zip]" for φ1 is a typo; Example 2
//     gives φ1 as ((zip, zip) → (AC, AC), tp = ()), which we follow.)
//   - φ4–φ5: phn matches Mphn and type = 2 → copy FN, LN.
//   - φ6–φ8: (AC, phn) match (AC, Hphn) and type = 1 → copy str, city,
//     zip.
//   - φ9: AC matches AC and AC ≠ 0800 → copy city.
const DemoRulesDSL = `
# Paper Fig. 2 — editing rules over (CUST, PERSON).
phi1: match zip~zip set AC := AC                              # Example 2: zip validated fixes area code
phi2: match zip~zip set str := str
phi3: match zip~zip set city := city
phi4: match phn~Mphn set FN := FN when type = "2"             # mobile phone identifies the person
phi5: match phn~Mphn set LN := LN when type = "2"
phi6: match AC~AC, phn~Hphn set str := str when type = "1"    # home phone + area code identify the address
phi7: match AC~AC, phn~Hphn set city := city when type = "1"
phi8: match AC~AC, phn~Hphn set zip := zip when type = "1"
phi9: match AC~AC set city := city when AC != "0800"          # toll-free area codes are non-geographic
`

// DemoRules parses DemoRulesDSL.
func DemoRules() *rule.Set {
	s, err := rule.ParseSet(DemoRulesDSL)
	if err != nil {
		panic("dataset: demo rules do not parse: " + err.Error())
	}
	return s
}

// DemoMasterRows returns the master tuples shown in Fig. 2 of the
// paper: Robert Brady (Example 2) and Mark Smith (the Fig. 3
// walkthrough, whose mobile phone is 075568485 and FN normalizes "M."
// to "Mark"), plus a third person to make region tableaux non-trivial.
func DemoMasterRows() []value.List {
	return []value.List{
		// FN, LN, AC, Hphn, Mphn, str, city, zip, DOB, gender
		{"Robert", "Brady", "131", "6884563", "079172485", "501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M"},
		// The "second master tuple" of Fig. 3's walkthrough: the user
		// validates AC=201, so 201 is Mark Smith's correct area code.
		{"Mark", "Smith", "201", "7966899", "075568485", "20 Baker St", "Ldn", "NW1 6XE", "25/12/67", "M"},
		{"Alice", "Kwan", "161", "8359021", "077031368", "8 Deansgate", "Mnc", "M3 4LY", "03/04/79", "F"},
	}
}

// DemoInputExample1 returns the dirty tuple t of Example 1: a customer
// whose AC (020) contradicts the city (Edi); the certain fix corrects
// AC to 131 given the zip is validated.
func DemoInputExample1() *schema.Tuple {
	return schema.MustTuple(CustSchema(),
		"Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD")
}

// DemoInputFig3 returns the Fig. 3 walkthrough tuple. The user assigns
// AC=201, phn=075568485, type=2 (mobile) and item=DVD — the four
// attributes CerFix suggests in Fig. 3(a) — and those values are
// correct. The first name is abbreviated "M." (normalized to "Mark" by
// φ4 against the second master tuple), and street/city are entered in
// a stale/wrong form.
func DemoInputFig3() *schema.Tuple {
	return schema.MustTuple(CustSchema(),
		"M.", "Smith", "201", "075568485", "2", "Baker Street", "Lon", "NW1 6XE", "DVD")
}

// DemoGroundTruthFig3 is the correct version of DemoInputFig3 per the
// master data (the entity is Mark Smith of London).
func DemoGroundTruthFig3() *schema.Tuple {
	return schema.MustTuple(CustSchema(),
		"Mark", "Smith", "201", "075568485", "2", "20 Baker St", "Ldn", "NW1 6XE", "DVD")
}
