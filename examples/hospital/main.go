// hospital cleans a HOSP-like provider-record stream (the evaluation
// workload family of the companion paper [7]) in batch: generate a
// synthetic master relation and a dirty input stream, let an oracle
// play the data-entry clerk following CerFix's suggestions, and report
// repair quality and auditing statistics.
package main

import (
	"fmt"
	"log"
	"strings"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/metrics"
	"cerfix/internal/monitor"
	"cerfix/internal/oracle"
)

func main() {
	const (
		providers = 200
		tuples    = 500
		noise     = 0.25
	)
	gen := dataset.NewHospGen(42)
	w, err := gen.GenerateWorkload(providers, tuples, noise)
	if err != nil {
		log.Fatal(err)
	}

	// Build the system on the pre-populated master store via the
	// engine-level API (the facade covers the common empty-start case;
	// the internal packages compose for custom wiring).
	sys, err := cerfix.NewWithRules(dataset.HospSchema(), dataset.HospSchema(), dataset.HospRules())
	if err != nil {
		log.Fatal(err)
	}
	// Move the generated master rows in.
	for _, s := range w.Store.All() {
		if err := sys.AddMasterRow(s.Vals.Strings()...); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("HOSP batch cleaning: %d master rows, %d dirty tuples (%d dirty cells, %.0f%% rate)\n\n",
		sys.Master().Len(), len(w.Dirty), w.ErrorCells, noise*100)

	rep := sys.CheckConsistency()
	fmt.Printf("rule consistency: %v (%d errors, %d warnings)\n",
		rep.Consistent(), len(rep.Errors()), len(rep.Warnings()))

	regions := sys.Regions(3)
	fmt.Println("top certain regions:")
	for i, r := range regions {
		fmt.Printf("  %d. {%s}\n", i+1, strings.Join(r.AttrNames(), ", "))
	}
	fmt.Println()

	mon := sys.Monitor()
	var quality metrics.RepairQuality
	var effort metrics.Effort
	certain := 0
	for i := range w.Dirty {
		sess, err := mon.NewSession(w.Dirty[i])
		if err != nil {
			log.Fatal(err)
		}
		u := oracle.NewUser(w.Truth[i], oracle.FollowSuggestions)
		rounds, err := u.RunSession(sess)
		if err != nil {
			log.Fatal(err)
		}
		if sess.Certain() {
			certain++
		}
		sum := sess.Summary()
		effort.Observe(sum.UserValidated, rounds, dataset.HospSchema().Len())
		if err := quality.Add(userAdjustedBase(mon, sess, w.Dirty[i]), sess.Tuple, w.Truth[i]); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("sessions reaching a certain fix: %d/%d\n", certain, len(w.Dirty))
	fmt.Println("system repair quality (rule-made changes only):", quality.String())
	fmt.Printf("user effort: %.2f attributes validated per tuple over %.2f rounds (%.1f%% of cells)\n\n",
		effort.AvgValidated(), effort.AvgRounds(), effort.ValidatedFraction()*100)

	fmt.Println("per-attribute auditing (user% / auto%):")
	for _, s := range sys.Audit().StatsPerAttr() {
		fmt.Printf("  %-10s %5.1f%% / %5.1f%%\n", s.Attr, s.UserPct(), s.AutoPct())
	}
}

// userAdjustedBase rebuilds the scoring baseline: the dirty tuple with
// the user's assertions applied, so the quality metric scores only the
// system's own changes.
func userAdjustedBase(mon *monitor.Monitor, sess *monitor.Session, dirty *cerfix.Tuple) *cerfix.Tuple {
	base := dirty.Clone()
	for _, rec := range mon.Log().TupleHistory(sess.ID) {
		if rec.Source == 0 { // core.SourceUser
			base.Set(rec.Attr, rec.New)
		}
	}
	return base
}
