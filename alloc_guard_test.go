//go:build !race

// External test package: internal/experiments imports cerfix (for the
// e12 persistence measurements), so an in-package test file could not
// import experiments back without a cycle.
package cerfix_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/experiments"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// TestChaseSteadyStateZeroAlloc is the allocation companion of
// BenchmarkChaseSingle: once a Chaser's scratch buffers are warm, the
// full Fig. 3 chase on the happy path (rule-index access, no
// conflicts) must perform ZERO heap allocations per tuple — with the
// premise prefilter at its default (on), so buildSkip's per-seed mask
// pass is covered by the guarantee. Guarded out under the race
// detector, whose instrumentation allocates; the finer-grained variant
// (live vs snapshot engines) lives in internal/core's alloc suite.
func TestChaseSteadyStateZeroAlloc(t *testing.T) {
	eng, err := experiments.DemoEngine()
	if err != nil {
		t.Fatal(err)
	}
	ch := eng.NewChaser()
	in := dataset.DemoInputFig3()
	seed := schema.SetOfNames(dataset.CustSchema(), "AC", "phn", "type", "item", "zip")
	ok := true
	for i := 0; i < 8; i++ { // warm the scratch buffers
		ok = ok && ch.ChaseScratch(in, seed).AllValidated()
	}
	avg := testing.AllocsPerRun(200, func() {
		ok = ok && ch.ChaseScratch(in, seed).AllValidated()
	})
	if !ok {
		t.Fatal("chase incomplete")
	}
	if avg != 0 {
		t.Errorf("steady-state chase allocates %v per tuple, want 0", avg)
	}
}

// TestJSONLScanLowAlloc pins the simd-scanned JSONL fast path to at
// most one heap allocation per line: the single backing string all of
// a line's decoded values share. Per-stream fixed costs (constructor
// maps, read buffer) are cancelled by differencing two stream lengths,
// leaving the pure marginal cost of a line.
func TestJSONLScanLowAlloc(t *testing.T) {
	sch := dataset.CustSchema()
	const lines = 1000
	var buf bytes.Buffer
	for i := 0; i < 2*lines; i++ {
		fmt.Fprintf(&buf, `{"FN":"Bob","LN":"customer %d","AC":"020","phn":"079172485","str":"High St.","city":"Edi","zip":"EH4 8LE","item":"iPhone","type":"1"}`+"\n", i)
	}
	double := buf.String()
	drain := func(data string, want int) func() {
		return func() {
			src := pipeline.NewJSONLSource(sch, strings.NewReader(data))
			n := 0
			for {
				_, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				n++
			}
			if n != want {
				t.Fatalf("decoded %d lines, want %d", n, want)
			}
		}
	}
	single := double[:strings.IndexByte(double[len(double)/2:], '\n')+len(double)/2+1]
	shortN := strings.Count(single, "\n")
	drain(double, 2*lines)() // warm the value interner
	perLine := (testing.AllocsPerRun(20, drain(double, 2*lines)) -
		testing.AllocsPerRun(20, drain(single, shortN))) / float64(2*lines-shortN)
	if perLine > 1 {
		t.Errorf("jsonl scan allocates %v per line, want <= 1", perLine)
	}
}
