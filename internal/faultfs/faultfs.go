// Package faultfs is the injectable filesystem layer every durability-
// critical path routes through: persist.go's WAL appends and checkpoint
// swaps, and internal/jobs' journals and results artifacts. In
// production it is a thin veneer over the os package (OS); in tests an
// Injector wraps it to fail the Nth write/sync/rename, short-write a
// buffer, simulate ENOSPC, or crash at every point of an I/O trace and
// replay the unsynced-data loss a real power cut would inflict.
//
// The package also owns the persistence health model (Health): a state
// machine fed by the outcome of durable operations that flips the
// daemon into degraded mode on transient storage faults (ENOSPC,
// EIO, failed fsync) and probes its way back to healthy when the
// fault clears — the basis for the HTTP layer's typed 503
// persistence_degraded responses.
package faultfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"syscall"
)

// File is the subset of *os.File the persistence paths need.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface of every durable write path. All
// methods mirror their os package namesakes; SyncDir is the directory
// fsync that makes freshly created or renamed entries crash-durable.
type FS interface {
	// OpenFile opens for writing (create/append/truncate); use Open
	// for reads so fault injection can tell the two apart.
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	// Open opens for reading.
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data in one create+write+close sequence with NO
	// fsync (like os.WriteFile); durable writes must OpenFile and Sync
	// explicitly.
	WriteFile(name string, data []byte, perm iofs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm iofs.FileMode) error
	ReadDir(name string) ([]iofs.DirEntry, error)
	Stat(name string) (iofs.FileInfo, error)
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory. A filesystem that rejects directory
	// fsync outright (EINVAL/ENOTSUP) is not a fault — implementations
	// return nil for that — but a real I/O error is propagated: a
	// failed directory sync means a rename or create whose durability
	// the caller was counting on is NOT established.
	SyncDir(dir string) error
}

// OS is the production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) ReadDir(name string) ([]iofs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (iofs.FileInfo, error)      { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (osFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) WriteFile(name string, data []byte, perm iofs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		if dirSyncUnsupported(err) {
			// The filesystem rejects directory fsync as an operation —
			// not an I/O fault; there is nothing more the caller can do.
			return nil
		}
		return err
	}
	return cerr
}

// dirSyncUnsupported distinguishes "this filesystem does not support
// fsync on directories" from a genuine I/O failure.
func dirSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.ENOTTY)
}

// Create opens name for writing, truncating any existing content.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// WriteFileSync writes data durably: create, write, fsync, close. The
// companion directory sync (for a freshly created entry) is the
// caller's call — it knows whether the entry is new.
func WriteFileSync(fsys FS, name string, data []byte, perm iofs.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Transient reports whether err looks like a transient storage fault —
// the disk is full, quota exceeded, or the device hiccuped — as
// opposed to a permanent input or logic error. Transient faults are
// worth retrying with backoff and feed the Health state machine;
// everything else fails fast.
func Transient(err error) bool {
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EDQUOT) ||
		errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EINTR)
}
