// Package value defines the cell value model shared by every CerFix
// component. Values are stored as strings (the universal exchange format
// of data-entry front ends and CSV-backed master data), but each schema
// attribute carries a Domain that fixes how values compare and order.
//
// The empty string is reserved as the null/absent marker, matching how
// the demo's input forms surface unfilled fields.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// V is a single cell value. The zero value is null.
type V string

// Null is the absent-value marker.
const Null V = ""

// IsNull reports whether v is the null marker.
func (v V) IsNull() bool { return v == Null }

// String returns the raw string content.
func (v V) String() string { return string(v) }

// Domain identifies how values of an attribute are interpreted for
// comparison and ordering.
type Domain int

const (
	// DString compares values as UTF-8 strings.
	DString Domain = iota
	// DInt parses values as signed integers; unparsable values compare
	// as strings after all parsable ones.
	DInt
	// DFloat parses values as floats with the same fallback as DInt.
	DFloat
	// DDate parses values as dd/mm/yy or dd/mm/yyyy dates (the demo's
	// DOB format); unparsable values compare as strings after all
	// parsable ones, like the numeric domains.
	DDate
)

// String returns the domain name used by schema serialization.
func (d Domain) String() string {
	switch d {
	case DString:
		return "string"
	case DInt:
		return "int"
	case DFloat:
		return "float"
	case DDate:
		return "date"
	default:
		return fmt.Sprintf("domain(%d)", int(d))
	}
}

// ParseDomain converts a domain name back to a Domain. It accepts the
// names produced by Domain.String.
func ParseDomain(s string) (Domain, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "str", "":
		return DString, nil
	case "int", "integer":
		return DInt, nil
	case "float", "double", "real":
		return DFloat, nil
	case "date":
		return DDate, nil
	default:
		return DString, fmt.Errorf("value: unknown domain %q", s)
	}
}

// Compare orders a against b under domain d, returning -1, 0 or +1.
// Null sorts before every non-null value. For numeric domains, values
// that fail to parse sort after all parsable values (by string order
// among themselves) so that comparisons remain total and deterministic.
func Compare(a, b V, d Domain) int {
	if a == b {
		return 0
	}
	if a.IsNull() {
		return -1
	}
	if b.IsNull() {
		return 1
	}
	switch d {
	case DInt:
		ai, aerr := strconv.ParseInt(string(a), 10, 64)
		bi, berr := strconv.ParseInt(string(b), 10, 64)
		switch {
		case aerr == nil && berr == nil:
			return cmpOrdered(ai, bi)
		case aerr == nil:
			return -1
		case berr == nil:
			return 1
		}
	case DFloat:
		af, aerr := strconv.ParseFloat(string(a), 64)
		bf, berr := strconv.ParseFloat(string(b), 64)
		switch {
		case aerr == nil && berr == nil:
			return cmpOrdered(af, bf)
		case aerr == nil:
			return -1
		case berr == nil:
			return 1
		}
	case DDate:
		ad, aok := parseDate(string(a))
		bd, bok := parseDate(string(b))
		switch {
		case aok && bok:
			return cmpOrdered(ad, bd)
		case aok:
			return -1
		case bok:
			return 1
		}
	}
	return cmpOrdered(string(a), string(b))
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports a == b after both are interpreted in domain d. Unlike
// raw string equality this makes "07" equal to "7" under DInt.
func Equal(a, b V, d Domain) bool { return Compare(a, b, d) == 0 }

// parseDate parses dd/mm/yy or dd/mm/yyyy into a comparable ordinal
// (two-digit years map to 1930–2029, the usual data-entry pivot). It
// validates ranges but not month lengths — data cleaning tolerates
// 31/02 rather than silently reordering it.
func parseDate(s string) (int64, bool) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return 0, false
	}
	day, err1 := strconv.Atoi(parts[0])
	month, err2 := strconv.Atoi(parts[1])
	year, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, false
	}
	if day < 1 || day > 31 || month < 1 || month > 12 || year < 0 {
		return 0, false
	}
	if len(parts[2]) <= 2 {
		if year < 30 {
			year += 2000
		} else {
			year += 1900
		}
	}
	return int64(year)*10000 + int64(month)*100 + int64(day), true
}

// List is an ordered collection of values, used for composite keys.
type List []V

// Key renders a list as a single composite string usable as a map key.
// Values are length-prefixed so ("ab","c") and ("a","bc") cannot
// collide.
func (l List) Key() string {
	var b strings.Builder
	for _, v := range l {
		fmt.Fprintf(&b, "%d:", len(v))
		b.WriteString(string(v))
	}
	return b.String()
}

// AppendKey appends the Key encoding of the list to dst and returns
// the extended slice. It produces exactly the bytes of Key() without
// materializing the string, so hot paths can reuse one scratch buffer
// across probes (the compiled chase's per-tuple key encode).
func (l List) AppendKey(dst []byte) []byte {
	for _, v := range l {
		dst = AppendKeyV(dst, v)
	}
	return dst
}

// AppendKeyV appends the Key encoding of a single value to dst.
func AppendKeyV(dst []byte, v V) []byte {
	dst = strconv.AppendInt(dst, int64(len(v)), 10)
	dst = append(dst, ':')
	return append(dst, v...)
}

// Equal reports element-wise equality with the same length.
func (l List) Equal(o List) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}

// Strings converts the list to plain strings (for display and JSON).
func (l List) Strings() []string {
	out := make([]string, len(l))
	for i, v := range l {
		out[i] = string(v)
	}
	return out
}

// FromStrings builds a List from plain strings.
func FromStrings(ss []string) List {
	out := make(List, len(ss))
	for i, s := range ss {
		out[i] = V(s)
	}
	return out
}
