package cerfix

// Persistence of a configured System to a directory — the reproduction
// of the demo's "instance" configuration (§3 Initialization: schemas of
// input tuples and master data, plus the data connection). A saved
// instance is three files:
//
//	manifest.json — both schemas (names, attributes, domains)
//	rules.txt     — the editing rules in DSL form
//	master.csv    — the master relation snapshot
//
// Load rebuilds the System (and its indexes) from those files.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// manifest is the on-disk schema description.
type manifest struct {
	Input  schemaJSON `json:"input"`
	Master schemaJSON `json:"master"`
}

type schemaJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
}

type attrJSON struct {
	Name   string `json:"name"`
	Domain string `json:"domain"`
	Desc   string `json:"desc,omitempty"`
}

func schemaToJSON(s *Schema) schemaJSON {
	out := schemaJSON{Name: s.Name()}
	for _, a := range s.Attrs() {
		out.Attrs = append(out.Attrs, attrJSON{Name: a.Name, Domain: a.Domain.String(), Desc: a.Desc})
	}
	return out
}

func schemaFromJSON(j schemaJSON) (*Schema, error) {
	attrs := make([]Attribute, len(j.Attrs))
	for i, a := range j.Attrs {
		d, err := value.ParseDomain(a.Domain)
		if err != nil {
			return nil, fmt.Errorf("cerfix: attribute %q: %w", a.Name, err)
		}
		attrs[i] = schema.Attribute{Name: a.Name, Domain: d, Desc: a.Desc}
	}
	return schema.New(j.Name, attrs...)
}

// renameDir is swapped by tests to inject commit-phase failures.
var renameDir = os.Rename

// Save writes the system's configuration (schemas, rules, master data)
// into dir, creating it if needed. The audit log and open sessions are
// runtime state and are not persisted.
//
// The save is atomic at the directory level: all three files are
// written into a staging sibling (<dir>.saving), the previous instance
// is moved aside to <dir>.bak, and the staging directory is renamed
// into place in one step. A crash or error at any point leaves a
// complete instance on disk — either the old one (still at dir, or at
// <dir>.bak during the one rename window, which Load falls back to) or
// the new one. Mixed-version directories (new manifest with old rules)
// cannot occur.
func (s *System) Save(dir string) error {
	dir = filepath.Clean(dir)
	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	m := manifest{Input: schemaToJSON(s.input), Master: schemaToJSON(s.store.Schema())}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}

	tmp := dir + ".saving"
	bak := dir + ".bak"
	// Stale staging from a crashed save is dead weight; a fresh save
	// rebuilds it from scratch.
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	fail := func(err error) error {
		os.RemoveAll(tmp)
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, "manifest.json"), data, 0o644); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	if err := os.WriteFile(filepath.Join(tmp, "rules.txt"), []byte(s.rules.String()), 0o644); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	if err := s.store.Table().SaveCSVFile(filepath.Join(tmp, "master.csv")); err != nil {
		return fail(err)
	}

	// Commit: old instance aside, staging in, backup gone.
	if _, err := os.Stat(dir); err == nil {
		if err := os.RemoveAll(bak); err != nil {
			return fail(fmt.Errorf("cerfix: %w", err))
		}
		if err := renameDir(dir, bak); err != nil {
			return fail(fmt.Errorf("cerfix: %w", err))
		}
	}
	if err := renameDir(tmp, dir); err != nil {
		// Put the previous instance back; if even that fails, Load's
		// .bak fallback still finds it.
		_ = renameDir(bak, dir)
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	_ = os.RemoveAll(bak)
	return nil
}

// Load rebuilds a System from a directory written by Save. If dir has
// no manifest but a complete <dir>.bak sibling exists, the backup is
// loaded: that is the instance a crash caught between Save's two
// commit renames.
func Load(dir string) (*System, error) {
	dir = filepath.Clean(dir)
	sys, err := loadDir(dir)
	if err == nil {
		return sys, nil
	}
	if _, statErr := os.Stat(filepath.Join(dir, "manifest.json")); os.IsNotExist(statErr) {
		if _, bakErr := os.Stat(filepath.Join(dir+".bak", "manifest.json")); bakErr == nil {
			return loadDir(dir + ".bak")
		}
	}
	return nil, err
}

func loadDir(dir string) (*System, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cerfix: manifest: %w", err)
	}
	input, err := schemaFromJSON(m.Input)
	if err != nil {
		return nil, err
	}
	masterSch, err := schemaFromJSON(m.Master)
	if err != nil {
		return nil, err
	}
	dsl, err := os.ReadFile(filepath.Join(dir, "rules.txt"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	sys, err := New(input, masterSch, string(dsl))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, "master.csv"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	defer f.Close()
	if err := sys.LoadMasterCSV(f); err != nil {
		return nil, err
	}
	return sys, nil
}
