package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/faultfs"
	"cerfix/internal/jobs"
)

// syncBuffer is a goroutine-safe log sink (handler goroutines write
// while the test reads).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestPersistenceDegradedEndToEnd drives the full degraded-mode story
// through the HTTP surface: with the jobs directory refusing writes
// (injected ENOSPC), job submissions shed with the typed 503 and a
// Retry-After while the synchronous in-memory path keeps serving;
// /api/status surfaces the degraded health and the access log records
// the shed; when the fault clears, the health probe readmits
// submissions with no restart and the queue drains normally.
func TestPersistenceDegradedEndToEnd(t *testing.T) {
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(sys)

	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS)
	var failing atomic.Bool
	inj.SetFault(func(op faultfs.Op, path string) error {
		if failing.Load() && (op == faultfs.OpWrite || op == faultfs.OpSync) {
			return syscall.ENOSPC
		}
		return nil
	})
	health := faultfs.NewHealth(faultfs.DiskProbe(inj, dir), 10*time.Millisecond)
	mgr, err := jobs.Open(jobs.Config{
		Dir:          dir,
		Schema:       sys.InputSchema(),
		Snapshot:     srv.SnapshotEngine,
		FS:           inj,
		Health:       health,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(context.Background()) })
	srv.AttachJobs(mgr)
	srv.SetPersistenceHealth(health)
	accessLog := &syncBuffer{}
	srv.SetAccessLog(log.New(accessLog, "", 0))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	payload := map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
	}

	// Disk goes bad. The first submit hits the fault on the way down
	// and degrades health; either way the client sees the typed 503.
	failing.Store(true)
	submit := func() *http.Response {
		t.Helper()
		resp, err := postJSON(ts.URL+"/api/jobs", payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	assertDegraded := func(resp *http.Response) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit status = %d, want 503", resp.StatusCode)
		}
		var env errorEnvelope
		if err := decodeJSONBody(resp, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != codePersistenceDegraded {
			t.Fatalf("error code = %q, want %q", env.Error.Code, codePersistenceDegraded)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
		}
	}
	assertDegraded(submit())
	// Now degraded: the second submit fails fast (the gate, not the
	// disk) with the same typed shape.
	assertDegraded(submit())

	// The synchronous in-memory path is unaffected.
	var fix struct {
		Results []json.RawMessage `json:"results"`
	}
	doJSON(t, "POST", ts.URL+"/api/fix", payload, 200, &fix)
	if len(fix.Results) != 1 {
		t.Fatalf("sync fix under degraded persistence returned %d results", len(fix.Results))
	}

	// Status surfaces the degradation.
	var status struct {
		Persistence *struct {
			Health *faultfs.HealthStatus `json:"health"`
		} `json:"persistence"`
	}
	doJSON(t, "GET", ts.URL+"/api/status", nil, 200, &status)
	if status.Persistence == nil || status.Persistence.Health == nil ||
		status.Persistence.Health.State != "degraded" {
		t.Fatalf("status persistence = %+v", status.Persistence)
	}

	// Fault clears: the next due health probe readmits submissions.
	failing.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	var job jobJSON
	for {
		resp := submit()
		if resp.StatusCode == http.StatusAccepted {
			if err := decodeJSONBody(resp, &job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("submissions never recovered (last status %d)", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := pollJobDone(t, ts.URL, job.ID); got.State != "done" {
		t.Fatalf("post-recovery job ended %s (%s)", got.State, got.Error)
	}

	doJSON(t, "GET", ts.URL+"/api/status", nil, 200, &status)
	if status.Persistence.Health.State != "ok" || status.Persistence.Health.Degradations != 1 {
		t.Fatalf("status after recovery = %+v", status.Persistence.Health)
	}

	// The access log recorded the shed with its machine-readable code.
	if !strings.Contains(accessLog.String(), "code="+codePersistenceDegraded) {
		t.Fatalf("access log did not record the degraded shed:\n%s", accessLog.String())
	}
}
