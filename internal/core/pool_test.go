package core

import (
	"reflect"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// allocEngine wires the demo engine (Fig. 2 master rows, rules
// φ1–φ9); shared with the alloc suite.
func allocEngine(t *testing.T) *Engine {
	t.Helper()
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The chaser pool contract: AcquireChaser/Release recycle chasers —
// scratch buffers included — across runs AND across engine views
// (every snapshot shares the compiled program, and with it the pool),
// while each acquisition is correctly rebound to the acquiring view's
// master store.

// TestChaserPoolRecycles pins the pool's determinism: a released
// chaser is the one the next acquire returns (the pool is a free
// list, not a GC-droppable cache), and an empty pool builds fresh.
func TestChaserPoolRecycles(t *testing.T) {
	e := allocEngine(t)
	c1 := e.AcquireChaser()
	c2 := e.AcquireChaser()
	if c1 == c2 {
		t.Fatal("two live acquisitions returned the same chaser")
	}
	c1.Release()
	if got := e.AcquireChaser(); got != c1 {
		t.Fatalf("acquire after release returned %p, want the released %p", got, c1)
	}
	c2.Release()
}

// TestChaserPoolRebindsAcrossSnapshots proves a pooled chaser serves
// whichever engine view acquires it: released on the live engine,
// re-acquired through a snapshot, it must answer from the snapshot's
// frozen master data even while the live store diverges — and a
// subsequent live acquisition must see the divergence.
func TestChaserPoolRebindsAcrossSnapshots(t *testing.T) {
	e := allocEngine(t)
	seed := schema.SetOfNames(e.InputSchema(), "AC", "phn", "type", "item", "zip")
	in := dataset.DemoInputFig3()

	// Warm the pool on the live engine.
	live := e.AcquireChaser()
	want := live.Chase(in, seed)
	if !want.AllValidated() || len(want.Conflicts) != 0 {
		t.Fatalf("baseline chase unexpectedly incomplete: %+v", want)
	}
	live.Release()

	snap := e.Snapshot()

	// Poison the LIVE master: a second person with Mark Smith's mobile
	// number makes φ4/φ5 ambiguous for the Fig. 3 tuple from now on.
	if _, err := e.Master().InsertValues(
		value.V("Markus"), "Smythe", "201", "7966899", "075568485",
		"21 Baker St", "Ldn", "NW1 6XE", "25/12/67", "M"); err != nil {
		t.Fatal(err)
	}

	// The snapshot's acquisition — necessarily the pooled chaser that
	// last ran against the live store — must answer from frozen data.
	sc := snap.AcquireChaser()
	if sc != live {
		t.Fatalf("expected the pooled chaser to be rebound to the snapshot")
	}
	got := sc.Chase(in, seed)
	if !got.Tuple.Equal(want.Tuple) || !reflect.DeepEqual(got.Changes, want.Changes) ||
		len(got.Conflicts) != 0 {
		t.Fatalf("snapshot chase diverged after live mutation:\n got %+v\nwant %+v", got, want)
	}
	sc.Release()

	// And a live acquisition of the same pooled chaser must see the
	// poisoned store (ambiguous φ4 → conflict, FN left alone).
	lc := e.AcquireChaser()
	poisoned := lc.Chase(in, seed)
	if len(poisoned.Conflicts) == 0 {
		t.Fatalf("live chase after ambiguous insert reported no conflicts: %+v", poisoned)
	}
	if poisoned.Tuple.Get("FN") != "M." {
		t.Fatalf("live chase fixed FN to %q despite ambiguous master", poisoned.Tuple.Get("FN"))
	}
	lc.Release()
}

// TestEngineChaseResultsIndependent: Engine.Chase routes through the
// pool, but its results must stay safe to retain — later calls that
// reuse the pooled chaser cannot alias or clobber earlier results.
func TestEngineChaseResultsIndependent(t *testing.T) {
	e := allocEngine(t)
	seed := schema.SetOfNames(e.InputSchema(), "AC", "phn", "type", "item", "zip")
	first := e.Chase(dataset.DemoInputFig3(), seed)
	firstTuple := first.Tuple.Clone()
	firstChanges := append([]Change(nil), first.Changes...)
	for i := 0; i < 5; i++ {
		e.Chase(dataset.DemoInputExample1(), schema.SetOfNames(e.InputSchema(), "zip"))
	}
	if !first.Tuple.Equal(firstTuple) {
		t.Fatalf("retained result's tuple mutated by later pooled chases")
	}
	if !reflect.DeepEqual(first.Changes, firstChanges) {
		t.Fatalf("retained result's changes mutated by later pooled chases")
	}
}

// TestChaseIntoParity: chasing into a recycled caller-owned result —
// including its very first use with a nil tuple — produces results
// byte-identical to the allocating Chase path, with buffers reused
// in between.
func TestChaseIntoParity(t *testing.T) {
	e := allocEngine(t)
	seedFull := schema.SetOfNames(e.InputSchema(), "AC", "phn", "type", "item", "zip")
	seedZip := schema.SetOfNames(e.InputSchema(), "zip")
	inputs := []*schema.Tuple{
		dataset.DemoInputFig3(),
		dataset.DemoInputExample1(),
		dataset.DemoInputFig3(),
	}
	seeds := []schema.AttrSet{seedFull, seedZip, seedZip}

	ch := e.AcquireChaser()
	defer ch.Release()
	var dst ChaseResult
	for round := 0; round < 3; round++ { // reuse the same dst repeatedly
		for i, in := range inputs {
			got := ch.ChaseInto(&dst, in, seeds[i])
			if got != &dst {
				t.Fatal("ChaseInto must return its dst")
			}
			want := ch.Chase(in, seeds[i])
			if !got.Tuple.Equal(want.Tuple) || got.Validated != want.Validated ||
				got.Rounds != want.Rounds ||
				!changesEqual(got.Changes, want.Changes) ||
				!conflictsEqual(got.Conflicts, want.Conflicts) {
				t.Fatalf("round %d input %d: ChaseInto diverged from Chase\n got %+v\nwant %+v",
					round, i, got, want)
			}
		}
	}
}

// changesEqual compares element-wise, treating nil and empty alike
// (ChaseInto truncates its reused slices instead of nilling them).
func changesEqual(a, b []Change) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func conflictsEqual(a, b []Conflict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaseResultClone: the clone shares nothing with its source and
// normalizes empty slices to nil (the sequential path's shape).
func TestChaseResultClone(t *testing.T) {
	e := allocEngine(t)
	seed := schema.SetOfNames(e.InputSchema(), "AC", "phn", "type", "item", "zip")
	ch := e.AcquireChaser()
	defer ch.Release()

	res := ch.ChaseScratch(dataset.DemoInputFig3(), seed)
	cp := res.Clone()
	if !cp.Tuple.Equal(res.Tuple) || cp.Validated != res.Validated || cp.Rounds != res.Rounds ||
		!changesEqual(cp.Changes, res.Changes) {
		t.Fatalf("clone differs from source")
	}
	// Clobber the scratch result; the clone must not move.
	wantTuple := cp.Tuple.Clone()
	wantChanges := append([]Change(nil), cp.Changes...)
	ch.ChaseScratch(dataset.DemoInputExample1(), schema.SetOfNames(e.InputSchema(), "zip"))
	if !cp.Tuple.Equal(wantTuple) || !reflect.DeepEqual(cp.Changes, wantChanges) {
		t.Fatalf("clone aliased the scratch buffers")
	}

	// Empty-slice normalization: a no-op chase through reused buffers
	// yields non-nil empty slices; the clone must make them nil.
	noop := ch.ChaseScratch(dataset.DemoInputFig3(), schema.EmptySet)
	if noop.Changes == nil {
		t.Skip("scratch changes unexpectedly nil; nothing to normalize")
	}
	ncp := noop.Clone()
	if ncp.Changes != nil || ncp.Conflicts != nil {
		t.Fatalf("clone kept non-nil empty slices: %+v", ncp)
	}
}
