//go:build amd64

package simd

import "bytes"

// On amd64 the runtime's bytes.IndexByte is an AVX2/SSE scan — far
// wider than the 8-byte SWAR word — so the native table delegates to
// it. The JSON classifier and the FNV mix have no profitable upgrade
// without hand-written assembly (the classifier needs four predicates
// fused per byte, the hash chain is serial by definition), so they
// keep the SWAR bodies.
func init() {
	nativeTable.name = "amd64"
	nativeTable.indexByte = bytes.IndexByte
}
