package dataset

import (
	"fmt"

	"cerfix/internal/master"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// CustomerGen scales the demo's UK-customer scenario to benchmark
// sizes. Entities are generated so that the demo rule set φ1–φ9 is
// consistent over the master relation:
//
//   - every entity has a unique zip, a unique mobile phone and a
//     unique (AC, home phone) pair, so each rule's key is functional;
//   - each area code belongs to exactly one city (φ9's key), mirroring
//     the real UK numbering plan the paper's rules encode.
type CustomerGen struct {
	rng    *textutil.RNG
	cities []cityInfo
	// MobileShare is the probability a generated input tuple uses the
	// mobile phone (type=2) rather than the home phone (type=1).
	// Default 0.5. The phone type drives which certain region applies
	// and therefore the user/auto validation split (E3).
	MobileShare float64
}

type cityInfo struct {
	name string
	ac   string
}

var firstNames = []string{
	"Robert", "Mark", "Alice", "Grace", "Oliver", "Amelia", "Jack", "Isla",
	"Harry", "Emily", "George", "Sophia", "Noah", "Ava", "Leo", "Mia",
	"Arthur", "Freya", "Oscar", "Lily",
}

var lastNames = []string{
	"Brady", "Smith", "Kwan", "Jones", "Taylor", "Brown", "Wilson", "Evans",
	"Thomas", "Johnson", "Roberts", "Walker", "Wright", "Robinson", "Khan",
	"Lewis", "Clarke", "James", "Patel", "Hall",
}

var streetNames = []string{
	"Elm St", "Baker St", "Deansgate", "High St", "Station Rd", "Church Ln",
	"Victoria Rd", "Park Ave", "Mill Ln", "Queensway", "King St", "Bridge Rd",
}

var itemPool = []string{"CD", "DVD", "Book", "Game", "Vinyl", "Poster"}

// cityACs pairs city names with their (unique) area codes, extending
// the demo's Ldn=020 / Edi=131 convention.
var cityACs = []cityInfo{
	{"Ldn", "020"}, {"Edi", "131"}, {"Mnc", "161"}, {"Gla", "141"},
	{"Brm", "121"}, {"Lds", "113"}, {"Shf", "114"}, {"Lvp", "151"},
	{"Ncl", "191"}, {"Brs", "117"}, {"Cdf", "029"}, {"Ntt", "115"},
}

// NewCustomerGen builds a deterministic generator.
func NewCustomerGen(seed uint64) *CustomerGen {
	return &CustomerGen{rng: textutil.NewRNG(seed), cities: cityACs, MobileShare: 0.5}
}

// Entity is one generated person: a master row plus the derived clean
// input projections.
type Entity struct {
	// Master is the PERSON-schema row.
	Master value.List
}

// GenerateEntities produces n distinct entities.
func (g *CustomerGen) GenerateEntities(n int) []Entity {
	out := make([]Entity, n)
	for i := 0; i < n; i++ {
		ci := g.cities[i%len(g.cities)]
		fn := textutil.Pick(g.rng, firstNames)
		ln := textutil.Pick(g.rng, lastNames)
		street := fmt.Sprintf("%d %s", 1+g.rng.Intn(999), textutil.Pick(g.rng, streetNames))
		// Uniqueness by construction: serial numbers embedded in zip
		// and phones.
		zip := fmt.Sprintf("%s%d %dZZ", ci.name[:1], i, i%10)
		hphn := fmt.Sprintf("6%06d", i)
		mphn := fmt.Sprintf("07%07d", i)
		dob := fmt.Sprintf("%02d/%02d/%02d", 1+g.rng.Intn(28), 1+g.rng.Intn(12), 40+g.rng.Intn(60))
		gender := "M"
		if g.rng.Bool(0.5) {
			gender = "F"
		}
		out[i] = Entity{Master: value.List{
			value.V(fn), value.V(ln), value.V(ci.ac), value.V(hphn), value.V(mphn),
			value.V(street), value.V(ci.name), value.V(zip), value.V(dob), value.V(gender),
		}}
	}
	return out
}

// MasterStore loads entities into a fresh master store under
// PersonSchema.
func MasterStore(entities []Entity) (*master.Store, error) {
	st := master.New(PersonSchema())
	for _, e := range entities {
		if _, err := st.InsertValues(e.Master...); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// CleanInput derives the ground-truth CUST tuple for an entity: the
// phone type is chosen by the generator (1 = home, 2 = mobile) and the
// matching phone number is used, exactly as the demo's input relation
// relates to its master relation.
func (g *CustomerGen) CleanInput(e Entity) *schema.Tuple {
	sch := CustSchema()
	m := e.Master
	typ, phn := "2", m[4] // mobile
	if !g.rng.Bool(g.MobileShare) {
		typ, phn = "1", m[3] // home
	}
	item := textutil.Pick(g.rng, itemPool)
	return schema.MustTuple(sch,
		m[0], m[1], m[2], phn, value.V(typ), m[5], m[6], m[7], value.V(item))
}

// Workload is a generated experiment input: master data plus paired
// (dirty, truth) input tuples.
type Workload struct {
	// Entities are the generated master entities.
	Entities []Entity
	// Store is the loaded master store.
	Store *master.Store
	// Truth holds the clean input tuples.
	Truth []*schema.Tuple
	// Dirty holds the noise-injected versions, aligned with Truth.
	Dirty []*schema.Tuple
	// ErrorCells counts injected errors across the workload.
	ErrorCells int
}

// GenerateWorkload builds a complete experiment input: nEntities
// master rows, nInputs input tuples drawn from random entities, noise
// injected at cell rate noiseRate by the given injector (nil = default
// injector with the generator's seed stream).
func (g *CustomerGen) GenerateWorkload(nEntities, nInputs int, noiseRate float64, inj *Noise) (*Workload, error) {
	entities := g.GenerateEntities(nEntities)
	st, err := MasterStore(entities)
	if err != nil {
		return nil, err
	}
	if inj == nil {
		inj = NewNoise(g.rng.Split().Uint64(), noiseRate)
	}
	w := &Workload{Entities: entities, Store: st}
	// Pool of clean tuples for wrong-entity noise.
	pool := make([]*schema.Tuple, 0, nInputs)
	for i := 0; i < nInputs; i++ {
		e := entities[g.rng.Intn(len(entities))]
		pool = append(pool, g.CleanInput(e))
	}
	for _, truth := range pool {
		dirty, nerr := inj.Dirty(truth, pool)
		w.Truth = append(w.Truth, truth)
		w.Dirty = append(w.Dirty, dirty)
		w.ErrorCells += nerr
	}
	return w, nil
}
