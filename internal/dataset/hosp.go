package dataset

import (
	"fmt"

	"cerfix/internal/master"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// This file provides a HOSP-like workload modelled on the evaluation
// dataset of the companion paper [7] (US hospital quality data from
// the Department of Health & Human Services): provider records with
// address/contact attributes plus quality-measure attributes. We
// synthesize it (the real dump is not redistributable) preserving the
// functional structure the editing rules exploit:
//
//	prov  -> hospital, addr, county   (provider number is a key)
//	zip   -> city, state              (US zips nest in cities/states)
//	phone -> zip                      (one line, one site)
//	mcode -> mname, condition         (measure catalogue)
//
// Input and master share the schema here (single-relation cleaning, as
// in [7]'s HOSP experiments), which also exercises the CFD→eR
// derivation path.

var hospSchema = schema.MustNew("HOSP",
	schema.Attribute{Name: "prov", Domain: value.DString, Desc: "provider number"},
	schema.Attribute{Name: "hospital", Domain: value.DString, Desc: "hospital name"},
	schema.Attribute{Name: "addr", Domain: value.DString, Desc: "street address"},
	schema.Attribute{Name: "city", Domain: value.DString, Desc: "city"},
	schema.Attribute{Name: "state", Domain: value.DString, Desc: "state"},
	schema.Attribute{Name: "zip", Domain: value.DString, Desc: "zip code"},
	schema.Attribute{Name: "county", Domain: value.DString, Desc: "county name"},
	schema.Attribute{Name: "phone", Domain: value.DString, Desc: "phone number"},
	schema.Attribute{Name: "mcode", Domain: value.DString, Desc: "measure code"},
	schema.Attribute{Name: "mname", Domain: value.DString, Desc: "measure name"},
	schema.Attribute{Name: "condition", Domain: value.DString, Desc: "condition"},
)

// HospSchema returns the HOSP relation schema (used for both input and
// master). The same instance is returned on every call.
func HospSchema() *schema.Schema { return hospSchema }

// HospRulesDSL is the editing-rule set for HOSP.
const HospRulesDSL = `
# HOSP editing rules (input and master share the HOSP schema).
h1: match prov~prov set hospital := hospital
h2: match prov~prov set addr := addr
h3: match prov~prov set county := county
h4: match zip~zip set city := city
h5: match zip~zip set state := state
h6: match phone~phone set zip := zip
h7: match mcode~mcode set mname := mname
h8: match mcode~mcode set condition := condition
`

// HospRules parses HospRulesDSL.
func HospRules() *rule.Set {
	s, err := rule.ParseSet(HospRulesDSL)
	if err != nil {
		panic("dataset: hosp rules do not parse: " + err.Error())
	}
	return s
}

var hospCities = []struct{ city, state string }{
	{"BIRMINGHAM", "AL"}, {"DOTHAN", "AL"}, {"BOAZ", "AL"}, {"JACKSON", "MS"},
	{"MEMPHIS", "TN"}, {"NASHVILLE", "TN"}, {"ATLANTA", "GA"}, {"MACON", "GA"},
	{"TAMPA", "FL"}, {"MIAMI", "FL"}, {"ORLANDO", "FL"}, {"MOBILE", "AL"},
}

var hospCounties = []string{
	"JEFFERSON", "HOUSTON", "MARSHALL", "HINDS", "SHELBY", "DAVIDSON",
	"FULTON", "BIBB", "HILLSBOROUGH", "DADE", "ORANGE", "MOBILE",
}

var hospMeasures = []struct{ code, name, condition string }{
	{"AMI-1", "Aspirin at arrival", "Heart Attack"},
	{"AMI-2", "Aspirin at discharge", "Heart Attack"},
	{"AMI-3", "ACEI or ARB for LVSD", "Heart Attack"},
	{"HF-1", "Discharge instructions", "Heart Failure"},
	{"HF-2", "LVS assessment", "Heart Failure"},
	{"PN-2", "Pneumococcal vaccination", "Pneumonia"},
	{"PN-3B", "Blood culture before antibiotic", "Pneumonia"},
	{"SCIP-1", "Prophylactic antibiotic timing", "Surgery"},
}

// HospGen generates HOSP workloads.
type HospGen struct {
	rng *textutil.RNG
}

// NewHospGen builds a deterministic HOSP generator.
func NewHospGen(seed uint64) *HospGen {
	return &HospGen{rng: textutil.NewRNG(seed)}
}

// GenerateMasterRows produces n provider-measure records respecting
// the functional structure above: nProviders distinct providers, each
// reporting several measures.
func (g *HospGen) GenerateMasterRows(nProviders int) []value.List {
	var rows []value.List
	for p := 0; p < nProviders; p++ {
		ci := hospCities[p%len(hospCities)]
		county := hospCounties[p%len(hospCounties)]
		prov := fmt.Sprintf("%06d", 10000+p)
		hospital := fmt.Sprintf("%s MEDICAL CENTER %d", ci.city, p)
		addr := fmt.Sprintf("%d HOSPITAL DR", 100+p)
		zip := fmt.Sprintf("%05d", 35000+p)
		phone := fmt.Sprintf("205%07d", p)
		// Each provider reports 1–3 measures.
		nm := 1 + g.rng.Intn(3)
		for mi := 0; mi < nm; mi++ {
			m := hospMeasures[(p+mi)%len(hospMeasures)]
			rows = append(rows, value.List{
				value.V(prov), value.V(hospital), value.V(addr), value.V(ci.city),
				value.V(ci.state), value.V(zip), value.V(county), value.V(phone),
				value.V(m.code), value.V(m.name), value.V(m.condition),
			})
		}
	}
	return rows
}

// HospWorkload bundles a HOSP experiment input.
type HospWorkload struct {
	Store *master.Store
	Truth []*schema.Tuple
	Dirty []*schema.Tuple
	// ErrorCells counts injected errors.
	ErrorCells int
}

// GenerateWorkload builds master data for nProviders and nInputs dirty
// input tuples drawn from the master rows.
func (g *HospGen) GenerateWorkload(nProviders, nInputs int, noiseRate float64) (*HospWorkload, error) {
	rows := g.GenerateMasterRows(nProviders)
	st := master.New(HospSchema())
	for _, r := range rows {
		if _, err := st.InsertValues(r...); err != nil {
			return nil, err
		}
	}
	inj := NewNoise(g.rng.Split().Uint64(), noiseRate)
	w := &HospWorkload{Store: st}
	sch := HospSchema()
	pool := make([]*schema.Tuple, 0, nInputs)
	for i := 0; i < nInputs; i++ {
		r := rows[g.rng.Intn(len(rows))]
		pool = append(pool, schema.MustTuple(sch, r...))
	}
	for _, truth := range pool {
		dirty, nerr := inj.Dirty(truth, pool)
		w.Truth = append(w.Truth, truth)
		w.Dirty = append(w.Dirty, dirty)
		w.ErrorCells += nerr
	}
	return w, nil
}
