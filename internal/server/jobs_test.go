package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/jobs"
)

// jobsServer is demoServer plus an attached jobs manager over a temp
// jobs directory.
func jobsServer(t *testing.T) *httptest.Server {
	t.Helper()
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(sys)
	mgr, err := jobs.Open(jobs.Config{
		Dir:      t.TempDir(),
		Schema:   sys.InputSchema(),
		Snapshot: srv.SnapshotEngine,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(context.Background()) })
	srv.AttachJobs(mgr)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// pollJobDone polls the status endpoint until the job is terminal.
func pollJobDone(t *testing.T, base, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var j jobJSON
		doJSON(t, "GET", base+"/api/jobs/"+id, nil, 200, &j)
		if j.State == "done" || j.State == "failed" || j.State == "cancelled" {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The async acceptance path at the HTTP layer: a submitted job
// completes, and its JSONL results artifact is byte-identical, line
// for line, to the synchronous /api/fix results array for the same
// input.
func TestJobsAPIMatchesSyncFix(t *testing.T) {
	ts := jobsServer(t)
	payload := map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples": []map[string]string{
			dataset.DemoInputFig3().Map(),
			dataset.DemoInputExample1().Map(),
		},
	}

	// Synchronous reference, keeping each result's raw bytes.
	var syncResp struct {
		Results []json.RawMessage `json:"results"`
	}
	doJSON(t, "POST", ts.URL+"/api/fix", payload, 200, &syncResp)
	if len(syncResp.Results) != 2 {
		t.Fatalf("sync results = %d", len(syncResp.Results))
	}

	// Async job over the same input.
	var j jobJSON
	doJSON(t, "POST", ts.URL+"/api/jobs", payload, http.StatusAccepted, &j)
	if j.State != "queued" && j.State != "running" && j.State != "done" {
		t.Fatalf("submitted job state = %s", j.State)
	}
	j = pollJobDone(t, ts.URL, j.ID)
	if j.State != "done" || j.Processed != 2 {
		t.Fatalf("job = %+v", j)
	}
	if j.Stats == nil || j.Stats.Tuples != 2 {
		t.Fatalf("job stats = %+v", j.Stats)
	}

	resp, err := http.Get(ts.URL + "/api/jobs/" + j.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content-type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(syncResp.Results) {
		t.Fatalf("artifact lines = %d, want %d", len(lines), len(syncResp.Results))
	}
	for i, raw := range syncResp.Results {
		if lines[i] != string(raw) {
			t.Fatalf("artifact line %d differs from sync result:\n got %s\nwant %s", i, lines[i], raw)
		}
	}
}

func TestJobsAPILifecycle(t *testing.T) {
	ts := jobsServer(t)

	// Empty list is an array, not null.
	resp, err := http.Get(ts.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"items":[]`) {
		t.Fatalf("empty jobs list = %s", body)
	}

	// Bad submissions are rejected.
	doJSON(t, "POST", ts.URL+"/api/jobs", map[string]any{
		"validated": []string{"zip"},
	}, http.StatusUnprocessableEntity, nil)
	doJSON(t, "POST", ts.URL+"/api/jobs", map[string]any{
		"validated": []string{"bogus"},
		"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
	}, http.StatusUnprocessableEntity, nil)
	doJSON(t, "POST", ts.URL+"/api/jobs", map[string]any{
		"validated":  []string{"zip"},
		"tuples":     []map[string]string{dataset.DemoInputFig3().Map()},
		"input_path": "/also/a/path.csv",
	}, http.StatusUnprocessableEntity, nil)

	// Unknown job IDs 404 on every per-job route.
	doJSON(t, "GET", ts.URL+"/api/jobs/nope", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/api/jobs/nope/results", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/api/jobs/nope", nil, http.StatusNotFound, nil)

	// A good submission appears in the list and finishes.
	var j jobJSON
	doJSON(t, "POST", ts.URL+"/api/jobs", map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
	}, http.StatusAccepted, &j)
	var list struct {
		Items []jobJSON `json:"items"`
		Total int       `json:"total"`
	}
	doJSON(t, "GET", ts.URL+"/api/jobs", nil, 200, &list)
	if len(list.Items) != 1 || list.Items[0].ID != j.ID || list.Total != 1 {
		t.Fatalf("list = %+v", list)
	}
	done := pollJobDone(t, ts.URL, j.ID)
	if done.State != "done" {
		t.Fatalf("job ended %s (%s)", done.State, done.Error)
	}
	// DELETE on a finished job purges it: record and artifacts gone.
	var del struct {
		Deleted bool `json:"deleted"`
	}
	doJSON(t, "DELETE", ts.URL+"/api/jobs/"+j.ID, nil, http.StatusOK, &del)
	if !del.Deleted {
		t.Fatalf("purge response = %+v", del)
	}
	doJSON(t, "GET", ts.URL+"/api/jobs/"+j.ID, nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/api/jobs/"+j.ID+"/results", nil, http.StatusNotFound, nil)
}

// Without -jobs-dir the endpoints answer 503, not 404: the routes
// exist, the subsystem is off.
func TestJobsAPIDisabled(t *testing.T) {
	ts := demoServer(t)
	doJSON(t, "GET", ts.URL+"/api/jobs", nil, http.StatusServiceUnavailable, nil)
	doJSON(t, "POST", ts.URL+"/api/jobs", map[string]any{
		"validated": []string{"zip"},
		"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
	}, http.StatusServiceUnavailable, nil)
}
