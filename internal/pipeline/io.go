package pipeline

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file provides the streaming sources and sinks of the batch
// pipeline: slice-backed (HTTP endpoint, tests), CSV (the CLI's
// file-to-file repair) and JSONL (one attribute→value object per
// line, the natural bulk format of the JSON API). The streaming pairs
// never materialize the dataset: rows are decoded on demand under the
// pipeline's in-flight window and encoded as results arrive.

// SliceSource yields tuples from an in-memory slice.
type SliceSource struct {
	tuples []*schema.Tuple
	pos    int
}

// NewSliceSource wraps a tuple slice.
func NewSliceSource(tuples []*schema.Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Next implements Source.
func (s *SliceSource) Next() (*schema.Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, io.EOF
	}
	tu := s.tuples[s.pos]
	s.pos++
	return tu, nil
}

// SliceSink collects results in input order.
type SliceSink struct {
	// Results accumulates every result the pipeline emits.
	Results []*Result
}

// Write implements Sink.
func (s *SliceSink) Write(r *Result) error {
	s.Results = append(s.Results, r)
	return nil
}

// CSVSource streams tuples from CSV under a schema. The header row
// must list exactly the schema's attributes (any order); columns are
// mapped by name, matching storage.Table.ReadCSV's contract.
type CSVSource struct {
	sch       *schema.Schema
	cr        *csv.Reader
	colToAttr []int
	line      int
}

// NewCSVSource reads the header and prepares the column mapping.
func NewCSVSource(sch *schema.Schema, r io.Reader) (*CSVSource, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading csv header: %w", err)
	}
	colToAttr := make([]int, len(header))
	seen := make(map[string]bool)
	for i, h := range header {
		idx, ok := sch.Index(h)
		if !ok {
			return nil, fmt.Errorf("pipeline: csv column %q not in schema %s", h, sch.Name())
		}
		if seen[h] {
			return nil, fmt.Errorf("pipeline: duplicate csv column %q", h)
		}
		seen[h] = true
		colToAttr[i] = idx
	}
	if len(seen) != sch.Len() {
		return nil, fmt.Errorf("pipeline: csv header has %d columns, schema %s has %d attributes",
			len(seen), sch.Name(), sch.Len())
	}
	return &CSVSource{sch: sch, cr: cr, colToAttr: colToAttr, line: 1}, nil
}

// Next implements Source.
func (s *CSVSource) Next() (*schema.Tuple, error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	s.line++
	if err != nil {
		return nil, fmt.Errorf("csv line %d: %w", s.line, err)
	}
	vals := make(value.List, s.sch.Len())
	for i, cell := range rec {
		vals[s.colToAttr[i]] = value.V(cell)
	}
	return &schema.Tuple{Schema: s.sch, Vals: vals}, nil
}

// CSVSink streams fixed tuples to CSV: a header row of attribute
// names, then one record per result in input order. Call Flush when
// the run completes.
type CSVSink struct {
	cw *csv.Writer
}

// NewCSVSink writes the header row immediately.
func NewCSVSink(sch *schema.Schema, w io.Writer) (*CSVSink, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(sch.AttrNames()); err != nil {
		return nil, fmt.Errorf("pipeline: writing csv header: %w", err)
	}
	return &CSVSink{cw: cw}, nil
}

// Write implements Sink, emitting the fixed tuple's values.
func (s *CSVSink) Write(r *Result) error {
	return s.cw.Write(r.Fixed.Vals.Strings())
}

// Flush drains buffered records and reports any deferred write error.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// JSONLSource streams tuples from JSON Lines input: one
// attribute→value object per line (blank lines are skipped). Unknown
// attributes are an error; absent ones become null, as in the HTTP
// batch endpoint.
type JSONLSource struct {
	sch  *schema.Schema
	sc   *bufio.Scanner
	line int
}

// NewJSONLSource wraps a JSONL stream under sch.
func NewJSONLSource(sch *schema.Schema, r io.Reader) *JSONLSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &JSONLSource{sch: sch, sc: sc}
}

// Next implements Source.
func (s *JSONLSource) Next() (*schema.Tuple, error) {
	for s.sc.Scan() {
		s.line++
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m map[string]string
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		tu, err := schema.TupleFromMap(s.sch, m)
		if err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		return tu, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// jsonlRecord is JSONLSink's per-result output shape.
type jsonlRecord struct {
	Tuple     map[string]string `json:"tuple"`
	Done      bool              `json:"done"`
	Conflicts []string          `json:"conflicts,omitempty"`
	Rewrites  int               `json:"rewrites"`
}

// JSONLSink streams one JSON object per result: the fixed tuple, the
// fully-validated flag, conflict messages and the rewrite count.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Write implements Sink.
func (s *JSONLSink) Write(r *Result) error {
	rec := jsonlRecord{
		Tuple:    r.Fixed.Map(),
		Done:     r.Chase.AllValidated() && len(r.Chase.Conflicts) == 0,
		Rewrites: len(r.Chase.Rewrites()),
	}
	for _, c := range r.Chase.Conflicts {
		rec.Conflicts = append(rec.Conflicts, c.Error())
	}
	return s.enc.Encode(rec)
}
