//go:build !race

package core

import (
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/schema"
)

// The steady-state allocation contract of the compiled chase: once a
// Chaser's scratch buffers are warm, fixing a tuple on the happy path
// (rule-index access path, no conflicts) performs ZERO heap
// allocations. Excluded under the race detector, whose instrumentation
// allocates. (allocEngine, shared with the pool suite, lives in
// pool_test.go so the race build keeps it.)

// TestChaseScratchZeroAllocSteadyState asserts 0 allocs/tuple for the
// full Fig. 3 chase (multi-round, rewrites and confirmations) through
// ChaseScratch — on the live engine and on a frozen snapshot (the
// pipeline's and job runners' view).
func TestChaseScratchZeroAllocSteadyState(t *testing.T) {
	e := allocEngine(t)
	seed := schema.SetOfNames(e.InputSchema(), "AC", "phn", "type", "item", "zip")
	for name, eng := range map[string]*Engine{"live": e, "snapshot": e.Snapshot()} {
		ch := eng.NewChaser()
		in := dataset.DemoInputFig3()
		// Warm the scratch buffers (key buffer, change capacity).
		ok := true
		for i := 0; i < 8; i++ {
			ok = ok && ch.ChaseScratch(in, seed).AllValidated()
		}
		avg := testing.AllocsPerRun(200, func() {
			res := ch.ChaseScratch(in, seed)
			ok = ok && res.AllValidated()
		})
		if !ok {
			t.Fatalf("%s: chase incomplete", name)
		}
		if avg != 0 {
			t.Errorf("%s: %v allocs/tuple in steady state, want 0", name, avg)
		}
	}
}
