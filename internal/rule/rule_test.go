package rule

import (
	"strings"
	"testing"

	"cerfix/internal/pattern"
	"cerfix/internal/schema"
)

func schemas(t *testing.T) (input, master *schema.Schema) {
	t.Helper()
	input = schema.MustNew("CUST",
		schema.Str("FN"), schema.Str("LN"), schema.Str("AC"), schema.Str("phn"),
		schema.Str("type"), schema.Str("str"), schema.Str("city"), schema.Str("zip"),
		schema.Str("item"))
	master = schema.MustNew("PERSON",
		schema.Str("FN"), schema.Str("LN"), schema.Str("AC"), schema.Str("Hphn"),
		schema.Str("Mphn"), schema.Str("str"), schema.Str("city"), schema.Str("zip"),
		schema.Str("DOB"), schema.Str("gender"))
	return input, master
}

func mkRule(t *testing.T, id string) *Rule {
	t.Helper()
	return &Rule{
		ID:    id,
		Match: []Correspondence{{Input: "zip", Master: "zip"}},
		Set:   []Correspondence{{Input: "AC", Master: "AC"}},
	}
}

func TestRuleAccessors(t *testing.T) {
	r := &Rule{
		ID:    "phi6",
		Match: []Correspondence{{"AC", "AC"}, {"phn", "Hphn"}},
		Set:   []Correspondence{{"str", "str"}},
		When:  pattern.NewPattern(pattern.Eq("type", "1")),
	}
	if got := r.MatchInputAttrs(); len(got) != 2 || got[0] != "AC" || got[1] != "phn" {
		t.Errorf("MatchInputAttrs = %v", got)
	}
	if got := r.MatchMasterAttrs(); got[1] != "Hphn" {
		t.Errorf("MatchMasterAttrs = %v", got)
	}
	if got := r.SetInputAttrs(); got[0] != "str" {
		t.Errorf("SetInputAttrs = %v", got)
	}
	if got := r.SetMasterAttrs(); got[0] != "str" {
		t.Errorf("SetMasterAttrs = %v", got)
	}
}

func TestPremiseIncludesPatternScope(t *testing.T) {
	input, _ := schemas(t)
	r := &Rule{
		ID:    "phi4",
		Match: []Correspondence{{"phn", "Mphn"}},
		Set:   []Correspondence{{"FN", "FN"}},
		When:  pattern.NewPattern(pattern.Eq("type", "2")),
	}
	prem := r.PremiseAttrs(input)
	if !prem.Has(input.MustIndex("phn")) || !prem.Has(input.MustIndex("type")) {
		t.Fatalf("premise %v should include phn and type", prem.Names(input))
	}
	if prem.Count() != 2 {
		t.Fatalf("premise size = %d", prem.Count())
	}
	tgt := r.TargetAttrs(input)
	if !tgt.Has(input.MustIndex("FN")) || tgt.Count() != 1 {
		t.Fatalf("target = %v", tgt.Names(input))
	}
}

func TestValidate(t *testing.T) {
	input, master := schemas(t)
	good := mkRule(t, "r1")
	if err := good.Validate(input, master); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Rule)
	}{
		{"empty id", func(r *Rule) { r.ID = "" }},
		{"empty match", func(r *Rule) { r.Match = nil }},
		{"empty set", func(r *Rule) { r.Set = nil }},
		{"bad match input attr", func(r *Rule) { r.Match[0].Input = "bogus" }},
		{"bad match master attr", func(r *Rule) { r.Match[0].Master = "bogus" }},
		{"bad set input attr", func(r *Rule) { r.Set[0].Input = "bogus" }},
		{"bad set master attr", func(r *Rule) { r.Set[0].Master = "bogus" }},
		{"duplicate target", func(r *Rule) {
			r.Set = append(r.Set, Correspondence{"AC", "AC"})
		}},
		{"match-and-set overlap", func(r *Rule) {
			r.Set[0].Input = "zip"
		}},
		{"bad pattern attr", func(r *Rule) {
			r.When = pattern.NewPattern(pattern.Eq("bogus", "1"))
		}},
	}
	for _, c := range cases {
		r := mkRule(t, "r1")
		c.mut(r)
		if err := r.Validate(input, master); err == nil {
			t.Errorf("%s: invalid rule accepted", c.name)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	r := &Rule{
		ID:    "phi6",
		Match: []Correspondence{{"AC", "AC"}, {"phn", "Hphn"}},
		Set:   []Correspondence{{"str", "str"}},
		When:  pattern.NewPattern(pattern.Eq("type", "1"), pattern.Ne("AC", "0800")),
	}
	parsed, err := Parse(r.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", r.String(), err)
	}
	if parsed.String() != r.String() {
		t.Fatalf("round trip mismatch:\n  in:  %s\n  out: %s", r.String(), parsed.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	r := &Rule{
		ID:    "x",
		Match: []Correspondence{{"zip", "zip"}},
		Set:   []Correspondence{{"AC", "AC"}},
		When:  pattern.NewPattern(pattern.Eq("type", "2")),
	}
	cp := r.Clone()
	cp.Match[0].Input = "HACK"
	cp.When.Conds[0].Attr = "HACK"
	if r.Match[0].Input != "zip" || r.When.Conds[0].Attr != "type" {
		t.Fatal("Clone shares storage")
	}
}

func TestSetOperations(t *testing.T) {
	s, err := NewSet(mkRule(t, "a"), mkRule(t, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, err := NewSet(mkRule(t, "a"), mkRule(t, "a")); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := s.Add(mkRule(t, "a")); err == nil {
		t.Fatal("Add duplicate accepted")
	}
	if err := s.Add(nil); err == nil {
		t.Fatal("Add nil accepted")
	}
	if r, ok := s.Get("b"); !ok || r.ID != "b" {
		t.Fatal("Get failed")
	}
	if !s.Remove("a") || s.Remove("a") {
		t.Fatal("Remove semantics wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len after remove = %d", s.Len())
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestSetOrderPreserved(t *testing.T) {
	s := MustSet(mkRule(t, "z"), mkRule(t, "a"), mkRule(t, "m"))
	ids := s.IDs()
	if ids[0] != "z" || ids[1] != "a" || ids[2] != "m" {
		t.Fatalf("insertion order not preserved: %v", ids)
	}
}

func TestSetValidateAndClone(t *testing.T) {
	input, master := schemas(t)
	s := MustSet(mkRule(t, "r1"))
	if err := s.Validate(input, master); err != nil {
		t.Fatal(err)
	}
	bad := mkRule(t, "r2")
	bad.Set[0].Input = "bogus"
	if err := s.Add(bad); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(input, master); err == nil {
		t.Fatal("invalid set passed validation")
	}
	cp := s.Clone()
	cp.Remove("r1")
	if s.Len() != 2 {
		t.Fatal("Clone shares rule list")
	}
	if !strings.Contains(s.String(), "r1:") {
		t.Errorf("Set.String missing rule: %q", s.String())
	}
}

func TestDistinctPatterns(t *testing.T) {
	p1 := pattern.NewPattern(pattern.Eq("type", "1"))
	p2 := pattern.NewPattern(pattern.Eq("type", "2"))
	mk := func(id string, p pattern.Pattern) *Rule {
		r := mkRule(t, id)
		r.When = p
		return r
	}
	s := MustSet(
		mk("a", p1), mk("b", p2), mk("c", p1),
		mkRule(t, "d"), // empty pattern excluded
	)
	pats := s.DistinctPatterns()
	if len(pats) != 2 {
		t.Fatalf("DistinctPatterns = %d, want 2", len(pats))
	}
}
