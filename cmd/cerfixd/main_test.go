package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/server"
)

func TestBuildSystemDemo(t *testing.T) {
	sys, err := buildSystem(true, "", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if sys.Master().Len() != 3 || sys.RuleSet().Len() != 9 {
		t.Fatalf("demo system = %d master, %d rules", sys.Master().Len(), sys.RuleSet().Len())
	}
	// And it actually serves.
	ts := httptest.NewServer(server.New(sys).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestBuildSystemFromFiles(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte(dataset.DemoRulesDSL), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := buildSystem(false, "",
		"CUST:FN,LN,AC,phn,type,str,city,zip,item",
		"PERSON:FN,LN,AC,Hphn,Mphn,str,city,zip,DOB,gender",
		rules, "")
	if err != nil {
		t.Fatal(err)
	}
	if sys.RuleSet().Len() != 9 {
		t.Fatalf("rules = %d", sys.RuleSet().Len())
	}
}

func TestBuildSystemLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "instance")
	seed, err := buildSystem(true, "", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Save(dir); err != nil {
		t.Fatal(err)
	}
	// One more row so the second save takes the WAL-append path — the
	// loaded daemon must replay it and report the provenance.
	if err := seed.AddMasterRow("Walter", "White", "505", "5550001", "5550002",
		"Negra Arroyo", "Albuquerque", "NM 87104", "07/09/58", "M"); err != nil {
		t.Fatal(err)
	}
	if err := seed.Save(dir); err != nil {
		t.Fatal(err)
	}
	sys, err := buildSystem(false, dir, "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if sys.Master().Len() != 4 {
		t.Fatalf("loaded %d master tuples, want 4", sys.Master().Len())
	}
	info := sys.LoadInfo()
	if info == nil || info.WALRows != 1 || info.UsedBackup {
		t.Fatalf("load provenance = %+v", info)
	}
	if _, err := buildSystem(true, dir, "", "", "", ""); err == nil {
		t.Fatal("-load combined with -demo accepted")
	}
}

func TestBuildSystemErrors(t *testing.T) {
	if _, err := buildSystem(false, "", "", "", "", ""); err == nil {
		t.Fatal("missing flags accepted")
	}
	if _, err := buildSystem(false, "", "bad", "PERSON:a", "nope.txt", ""); err == nil {
		t.Fatal("bad input spec accepted")
	}
	if _, err := buildSystem(false, "", "CUST:a", "bad", "nope.txt", ""); err == nil {
		t.Fatal("bad master spec accepted")
	}
	if _, err := buildSystem(false, "", "CUST:a", "PERSON:a", filepath.Join(t.TempDir(), "nope.txt"), ""); err == nil {
		t.Fatal("missing rules file accepted")
	}
}

func TestParseSchemaSpecD(t *testing.T) {
	sch, err := parseSchemaSpec("R:a,b")
	if err != nil || sch.Len() != 2 {
		t.Fatalf("spec parse: %v %v", sch, err)
	}
	if _, err := parseSchemaSpec("nocolon"); err == nil {
		t.Fatal("bad spec accepted")
	}
}
