package value

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternRoundTrip(t *testing.T) {
	d := NewDict()
	words := []string{"", "a", "ab", "Null-ish", "07", "7", "01/02/2003"}
	syms := make([]Sym, len(words))
	for i, w := range words {
		syms[i] = d.Intern(w)
	}
	for i, w := range words {
		if got := d.Str(syms[i]); got != w {
			t.Fatalf("Str(%d) = %q, want %q", syms[i], got, w)
		}
		sym, ok := d.Lookup(w)
		if !ok || sym != syms[i] {
			t.Fatalf("Lookup(%q) = %d, %v; want %d, true", w, sym, ok, syms[i])
		}
		if again := d.Intern(w); again != syms[i] {
			t.Fatalf("re-Intern(%q) = %d, want %d", w, again, syms[i])
		}
	}
	if _, ok := d.Lookup("never interned"); ok {
		t.Fatal("Lookup found a string that was never interned")
	}
	if d.Len() != len(words) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(words))
	}
}

// TestInternDenseIDs pins the density contract the WAL and columnar
// shards rely on: ids are assigned 0,1,2,... in intern order.
func TestInternDenseIDs(t *testing.T) {
	d := NewDict()
	for i := 0; i < 10000; i++ {
		s := fmt.Sprintf("value-%d", i)
		if sym := d.Intern(s); sym != Sym(i) {
			t.Fatalf("Intern #%d assigned %d", i, sym)
		}
	}
	// Crossing page and table-growth boundaries must not disturb
	// earlier entries.
	for i := 0; i < 10000; i++ {
		if got := d.Str(Sym(i)); got != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Str(%d) = %q after growth", i, got)
		}
	}
}

// domainCorpus stresses every Compare branch: parsable and unparsable
// ints, floats and dates (the fallback ordering), nulls, and plain
// strings that collide numerically ("7" vs "07").
var domainCorpus = []string{
	"", "0", "7", "07", "-3", "12", "120", "not-a-number",
	"3.14", "3.140", "2.5e1", "nan-ish", "1e309",
	"01/02/2003", "1/2/03", "29/02/15", "31/02/2000", "13/13/2013",
	"a", "B", "zip", "EH7 4AH", "0/0/0",
}

// TestSymCompareAgreesWithValueCompare is the satellite quick-check:
// for every domain, interned comparison must agree with the raw-value
// comparison — including equality of distinct Syms whose strings are
// numerically equal, and the unparsable-after-parsable fallback.
func TestSymCompareAgreesWithValueCompare(t *testing.T) {
	d := NewDict()
	check := func(a, b string) error {
		sa, sb := d.Intern(a), d.Intern(b)
		for _, dom := range []Domain{DString, DInt, DFloat, DDate} {
			want := Compare(V(a), V(b), dom)
			if got := d.Compare(sa, sb, dom); got != want {
				return fmt.Errorf("Compare(%q,%q,%v): sym %d, value %d", a, b, dom, got, want)
			}
		}
		if (sa == sb) != (a == b) {
			return fmt.Errorf("sym equality of (%q,%q) = %v", a, b, sa == sb)
		}
		return nil
	}
	// Exhaustive over the curated corpus (covers all fallback arms).
	for _, a := range domainCorpus {
		for _, b := range domainCorpus {
			if err := check(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Randomized property check over arbitrary strings.
	f := func(a, b string) bool { return check(a, b) == nil }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Randomized numeric-looking strings hit the parsable paths more
	// often than arbitrary unicode does.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		a := fmt.Sprintf("%d", rng.Intn(200)-100)
		b := fmt.Sprintf("%d.%d", rng.Intn(50), rng.Intn(100))
		if err := check(a, b); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInternConcurrentReaders hammers the lock-free read paths while
// writers keep appending: run with -race in CI.
func TestInternConcurrentReaders(t *testing.T) {
	d := NewDict()
	const n = 5000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s := fmt.Sprintf("w%d-%d", w%2, i) // two writers collide on purpose
				sym := d.Intern(s)
				if got := d.Str(sym); got != s {
					t.Errorf("Str(%d) = %q, want %q", sym, got, s)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s := fmt.Sprintf("w%d-%d", i%2, i%n)
				if sym, ok := d.Lookup(s); ok {
					if got := d.Str(sym); got != s {
						t.Errorf("concurrent Str(%d) = %q, want %q", sym, got, s)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() != 2*n {
		t.Fatalf("Len = %d, want %d", d.Len(), 2*n)
	}
}

func TestDictStats(t *testing.T) {
	d := NewDict()
	st := d.Stats()
	if st.Syms != 0 || st.DataBytes != 0 {
		t.Fatalf("empty dict stats: %+v", st)
	}
	d.Intern("hello")
	d.Intern("world!")
	st = d.Stats()
	if st.Syms != 2 {
		t.Fatalf("Syms = %d, want 2", st.Syms)
	}
	if st.DataBytes != int64(len("hello")+len("world!")) {
		t.Fatalf("DataBytes = %d", st.DataBytes)
	}
	if st.Bytes <= st.DataBytes {
		t.Fatalf("Bytes (%d) should include arena + table overhead beyond data (%d)", st.Bytes, st.DataBytes)
	}
}

func BenchmarkDictLookupHit(b *testing.B) {
	d := NewDict()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		d.Intern(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}
