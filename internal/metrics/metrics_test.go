package metrics

import (
	"strings"
	"testing"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

var sch = schema.MustNew("T", schema.Str("a"), schema.Str("b"), schema.Str("c"))

func tup(vals ...value.V) *schema.Tuple { return schema.MustTuple(sch, vals...) }

func TestPerfectRepair(t *testing.T) {
	var q RepairQuality
	truth := tup("1", "2", "3")
	dirty := tup("x", "2", "y")
	if err := q.Add(dirty, truth, truth); err != nil {
		t.Fatal(err)
	}
	if q.Errors != 2 || q.Changed != 2 || q.CorrectChanges != 2 {
		t.Fatalf("counts = %+v", q)
	}
	if q.Precision() != 1 || q.Recall() != 1 || q.F1() != 1 {
		t.Fatalf("P/R/F1 = %v/%v/%v", q.Precision(), q.Recall(), q.F1())
	}
	if q.BrokenCells != 0 || q.ResidualErrors != 0 {
		t.Fatalf("broken/residual = %d/%d", q.BrokenCells, q.ResidualErrors)
	}
}

func TestNoRepair(t *testing.T) {
	var q RepairQuality
	truth := tup("1", "2", "3")
	dirty := tup("x", "2", "3")
	if err := q.Add(dirty, dirty, truth); err != nil {
		t.Fatal(err)
	}
	if q.Precision() != 1 { // nothing changed, nothing wrong done
		t.Fatalf("P = %v", q.Precision())
	}
	if q.Recall() != 0 {
		t.Fatalf("R = %v", q.Recall())
	}
	if q.ResidualErrors != 1 {
		t.Fatalf("residual = %d", q.ResidualErrors)
	}
}

// The Example 1 heuristic failure: repair changes the *correct* city
// instead of the wrong AC — precision drops and a cell breaks.
func TestHeuristicBreakage(t *testing.T) {
	var q RepairQuality
	truth := tup("131", "Edi", "z") // a=AC, b=city
	dirty := tup("020", "Edi", "z") // AC wrong, city right
	repaired := tup("020", "Ldn", "z")
	if err := q.Add(dirty, repaired, truth); err != nil {
		t.Fatal(err)
	}
	if q.BrokenCells != 1 {
		t.Fatalf("broken = %d", q.BrokenCells)
	}
	if q.Precision() != 0 {
		t.Fatalf("P = %v", q.Precision())
	}
	if q.ResidualErrors != 2 { // AC still wrong, city now wrong
		t.Fatalf("residual = %d", q.ResidualErrors)
	}
}

func TestPartialRepair(t *testing.T) {
	var q RepairQuality
	truth := tup("1", "2", "3")
	dirty := tup("x", "y", "3")
	repaired := tup("1", "y", "3")
	if err := q.Add(dirty, repaired, truth); err != nil {
		t.Fatal(err)
	}
	if q.Precision() != 1 || q.Recall() != 0.5 {
		t.Fatalf("P/R = %v/%v", q.Precision(), q.Recall())
	}
	f1 := q.F1()
	if f1 < 0.66 || f1 > 0.67 {
		t.Fatalf("F1 = %v", f1)
	}
}

func TestAccumulation(t *testing.T) {
	var q RepairQuality
	truth := tup("1", "2", "3")
	if err := q.Add(tup("x", "2", "3"), truth, truth); err != nil {
		t.Fatal(err)
	}
	if err := q.Add(tup("1", "y", "3"), truth, truth); err != nil {
		t.Fatal(err)
	}
	if q.Cells != 6 || q.Errors != 2 || q.CorrectChanges != 2 {
		t.Fatalf("accumulated = %+v", q)
	}
}

func TestAddArityMismatch(t *testing.T) {
	var q RepairQuality
	other := schema.MustNew("O", schema.Str("x"))
	if err := q.Add(schema.MustTuple(other, "v"), tup("1", "2", "3"), tup("1", "2", "3")); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestCleanInputScoresPerfect(t *testing.T) {
	var q RepairQuality
	truth := tup("1", "2", "3")
	if err := q.Add(truth, truth, truth); err != nil {
		t.Fatal(err)
	}
	if q.Precision() != 1 || q.Recall() != 1 {
		t.Fatalf("clean P/R = %v/%v", q.Precision(), q.Recall())
	}
	if q.F1() != 1 {
		t.Fatalf("clean F1 = %v", q.F1())
	}
}

func TestStringRendering(t *testing.T) {
	var q RepairQuality
	if !strings.Contains(q.String(), "P=") {
		t.Fatalf("String = %q", q.String())
	}
}

func TestEffort(t *testing.T) {
	var e Effort
	e.Observe(2, 1, 9)
	e.Observe(4, 3, 9)
	if e.Sessions != 2 {
		t.Fatalf("sessions = %d", e.Sessions)
	}
	if e.AvgValidated() != 3 {
		t.Fatalf("AvgValidated = %v", e.AvgValidated())
	}
	if e.AvgRounds() != 2 {
		t.Fatalf("AvgRounds = %v", e.AvgRounds())
	}
	if got := e.ValidatedFraction(); got < 0.333 || got > 0.334 {
		t.Fatalf("ValidatedFraction = %v", got)
	}
}

func TestEffortEmpty(t *testing.T) {
	var e Effort
	if e.AvgValidated() != 0 || e.AvgRounds() != 0 || e.ValidatedFraction() != 0 {
		t.Fatal("empty effort nonzero")
	}
}

func TestF1Zero(t *testing.T) {
	var q RepairQuality
	truth := tup("1", "2", "3")
	dirty := tup("x", "2", "3")
	repaired := tup("w", "2", "3") // changed but wrong
	if err := q.Add(dirty, repaired, truth); err != nil {
		t.Fatal(err)
	}
	if q.Precision() != 0 || q.Recall() != 0 || q.F1() != 0 {
		t.Fatalf("P/R/F1 = %v/%v/%v", q.Precision(), q.Recall(), q.F1())
	}
}
