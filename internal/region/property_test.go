package region

import (
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/pattern"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Scale property: on a generated master relation every region found
// must honour its guarantee — for any tuple matching a tableau row
// with Z asserted, the chase completes with no conflicts and the
// outcome agrees with the master entity the row was built from.
func TestRegionGuaranteeAtScale(t *testing.T) {
	g := dataset.NewCustomerGen(77)
	entities := g.GenerateEntities(40)
	st, err := dataset.MasterStore(entities)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	regions := NewFinder(eng).TopK(&Options{K: 6})
	if len(regions) == 0 {
		t.Fatal("no regions at scale")
	}
	input := eng.InputSchema()
	checked := 0
	for _, reg := range regions {
		rows := reg.Tableau.Rows
		if len(rows) > 10 {
			rows = rows[:10] // sample
		}
		for _, row := range rows {
			tu, ok := tupleForRow(input, row)
			if !ok {
				continue
			}
			if !reg.Covers(tu) {
				t.Fatalf("region %v: canonical tuple does not match its own row", reg)
			}
			res := eng.Chase(tu, reg.Z)
			if !res.AllValidated() {
				t.Fatalf("region %v row %v: incomplete chase (missing %v)",
					reg, row, schema.FullSet(input).Minus(res.Validated).Format(input))
			}
			if len(res.Conflicts) != 0 {
				t.Fatalf("region %v row %v: conflicts %v", reg, row, res.Conflicts)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no rows verified")
	}
}

// tupleForRow builds a tuple satisfying an equality/inequality row,
// junk elsewhere.
func tupleForRow(input *schema.Schema, row pattern.Pattern) (*schema.Tuple, bool) {
	vals := make(value.List, input.Len())
	for i := range vals {
		vals[i] = value.V("garbage")
	}
	for _, cond := range row.Conds {
		i, ok := input.Index(cond.Attr)
		if !ok {
			return nil, false
		}
		if cond.Op == pattern.OpEq {
			vals[i] = cond.Const
		}
	}
	tu := &schema.Tuple{Schema: input, Vals: vals}
	return tu, row.Matches(tu)
}

// Regions computed twice are identical (the finder is deterministic).
func TestFinderDeterministic(t *testing.T) {
	e := demoEngine(t)
	a := NewFinder(e).TopK(nil)
	b := NewFinder(e).TopK(nil)
	if len(a) != len(b) {
		t.Fatalf("counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("region %d differs: %v vs %v", i, a[i], b[i])
		}
		if len(a[i].Tableau.Rows) != len(b[i].Tableau.Rows) {
			t.Fatalf("region %d row counts differ", i)
		}
	}
}

// MaxTableauRows caps rows without breaking soundness (rows present
// still verify).
func TestMaxTableauRowsCap(t *testing.T) {
	g := dataset.NewCustomerGen(78)
	entities := g.GenerateEntities(30)
	st, err := dataset.MasterStore(entities)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	regions := NewFinder(eng).TopK(&Options{MaxTableauRows: 5})
	if len(regions) == 0 {
		t.Fatal("no regions")
	}
	for _, reg := range regions {
		if len(reg.Tableau.Rows) > 5 {
			t.Fatalf("cap violated: %d rows", len(reg.Tableau.Rows))
		}
	}
}

// Monotonicity in master data: adding master tuples can only add
// coverage (rows), never shrink the smallest region.
func TestMoreMasterMoreCoverage(t *testing.T) {
	g := dataset.NewCustomerGen(79)
	entities := g.GenerateEntities(20)
	stSmall, err := dataset.MasterStore(entities[:10])
	if err != nil {
		t.Fatal(err)
	}
	stBig, err := dataset.MasterStore(entities)
	if err != nil {
		t.Fatal(err)
	}
	engSmall, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), stSmall)
	if err != nil {
		t.Fatal(err)
	}
	engBig, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), stBig)
	if err != nil {
		t.Fatal(err)
	}
	small := NewFinder(engSmall).TopK(&Options{K: 1})
	big := NewFinder(engBig).TopK(&Options{K: 1})
	if len(small) == 0 || len(big) == 0 {
		t.Fatal("missing regions")
	}
	if big[0].Size() != small[0].Size() {
		t.Fatalf("smallest region size changed with master growth: %d vs %d",
			small[0].Size(), big[0].Size())
	}
	if len(big[0].Tableau.Rows) < len(small[0].Tableau.Rows) {
		t.Fatalf("coverage shrank: %d vs %d rows",
			len(big[0].Tableau.Rows), len(small[0].Tableau.Rows))
	}
}
