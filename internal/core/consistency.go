package core

import (
	"fmt"
	"sort"
	"strings"

	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// This file implements the rule engine's static analysis: "it checks
// the consistency of editing rules, i.e., whether the given rules are
// dirty themselves" (paper §2). The exact problem is coNP-complete
// (companion paper [7]), so CerFix layers three practical analyses:
//
//  1. per-rule master ambiguity — a single rule whose master relation
//     maps one key to two different source values can never produce a
//     unique fix for inputs carrying that key;
//  2. pairwise conflict witnesses — two rules with jointly satisfiable
//     patterns writing the same attribute, for which concrete master
//     tuples exist that would derive different values for one input
//     tuple;
//  3. order-independence (Church–Rosser) probing — chase concrete probe
//     tuples, synthesized from master rows, under several rule orders
//     and flag any outcome that depends on the order.
//
// (1) and (2) are sound: every reported issue comes with a concrete
// witness. (3) is a randomized check that catches multi-step
// interactions the pairwise analysis cannot see. None is complete —
// that would contradict the coNP-hardness — and the report says which
// analysis produced each issue so users can judge severity.

// IssueKind classifies consistency issues.
type IssueKind int

const (
	// IssueMasterAmbiguity is analysis (1).
	IssueMasterAmbiguity IssueKind = iota
	// IssueRuleConflict is analysis (2).
	IssueRuleConflict
	// IssueOrderDependence is analysis (3).
	IssueOrderDependence
)

// String names the issue kind.
func (k IssueKind) String() string {
	switch k {
	case IssueMasterAmbiguity:
		return "master-ambiguity"
	case IssueRuleConflict:
		return "rule-conflict"
	case IssueOrderDependence:
		return "order-dependence"
	default:
		return fmt.Sprintf("issue(%d)", int(k))
	}
}

// Severity grades an issue.
type Severity int

const (
	// SeverityError marks issues that break the unique-certain-fix
	// guarantee for entity-consistent inputs: the rule set is dirty.
	SeverityError Severity = iota
	// SeverityWarning marks cross-entity conflict witnesses: two rules
	// would disagree only for an input whose validated attributes mix
	// two different master entities. Such inputs carry contradictory
	// assertions, which the chase surfaces at run time as
	// ValidatedContradiction; the rules themselves are clean.
	SeverityWarning
)

// String names the severity.
func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Issue is one detected inconsistency.
type Issue struct {
	Kind     IssueKind
	Severity Severity
	// RuleA is always set; RuleB only for pairwise conflicts.
	RuleA, RuleB string
	// Attr is the attribute the conflict is about, when applicable.
	Attr string
	// MasterA/MasterB are witness master tuple IDs, when applicable.
	MasterA, MasterB int64
	// Detail is a human-readable elaboration.
	Detail string
}

// String renders the issue.
func (i Issue) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s/%s] rule %s", i.Kind, i.Severity, i.RuleA)
	if i.RuleB != "" {
		fmt.Fprintf(&b, " vs %s", i.RuleB)
	}
	if i.Attr != "" {
		fmt.Fprintf(&b, " on %s", i.Attr)
	}
	if i.Detail != "" {
		fmt.Fprintf(&b, ": %s", i.Detail)
	}
	return b.String()
}

// ConsistencyReport aggregates the analyses' findings.
type ConsistencyReport struct {
	Issues []Issue
	// ProbesRun counts Church–Rosser probe chases executed.
	ProbesRun int
}

// Consistent reports whether no error-severity issue was found.
// Warnings (cross-entity conflict witnesses) do not make a rule set
// inconsistent; they document which attribute combinations would expose
// contradictory user assertions.
func (r *ConsistencyReport) Consistent() bool {
	for _, is := range r.Issues {
		if is.Severity == SeverityError {
			return false
		}
	}
	return true
}

// Errors returns the error-severity issues.
func (r *ConsistencyReport) Errors() []Issue {
	var out []Issue
	for _, is := range r.Issues {
		if is.Severity == SeverityError {
			out = append(out, is)
		}
	}
	return out
}

// Warnings returns the warning-severity issues.
func (r *ConsistencyReport) Warnings() []Issue {
	var out []Issue
	for _, is := range r.Issues {
		if is.Severity == SeverityWarning {
			out = append(out, is)
		}
	}
	return out
}

// ConsistencyOptions tunes the analyses' search budgets.
type ConsistencyOptions struct {
	// MaxMasterPairs caps the (s1, s2) enumeration per rule pair in
	// analysis (2); 0 means the default (100k).
	MaxMasterPairs int
	// ProbeOrders is the number of random rule orders (besides the
	// canonical and reversed ones) chased per probe in analysis (3);
	// 0 means the default (2).
	ProbeOrders int
	// MaxProbeTuples caps how many master tuples seed probes; 0 means
	// the default (50).
	MaxProbeTuples int
	// Seed drives the randomized probe generation (default 1).
	Seed uint64
}

func (o *ConsistencyOptions) withDefaults() ConsistencyOptions {
	out := ConsistencyOptions{MaxMasterPairs: 100000, ProbeOrders: 2, MaxProbeTuples: 50, Seed: 1}
	if o == nil {
		return out
	}
	if o.MaxMasterPairs > 0 {
		out.MaxMasterPairs = o.MaxMasterPairs
	}
	if o.ProbeOrders > 0 {
		out.ProbeOrders = o.ProbeOrders
	}
	if o.MaxProbeTuples > 0 {
		out.MaxProbeTuples = o.MaxProbeTuples
	}
	if o.Seed != 0 {
		out.Seed = o.Seed
	}
	return out
}

// CheckConsistency runs all three analyses and returns the combined
// report.
func (e *Engine) CheckConsistency(opts *ConsistencyOptions) *ConsistencyReport {
	o := opts.withDefaults()
	rep := &ConsistencyReport{}
	e.checkMasterAmbiguity(rep)
	e.checkPairwiseConflicts(rep, o)
	e.checkOrderIndependence(rep, o)
	return rep
}

// checkMasterAmbiguity groups master tuples by each rule's Xm and flags
// keys whose groups disagree on Bm.
func (e *Engine) checkMasterAmbiguity(rep *ConsistencyReport) {
	all := e.store.All()
	for _, r := range e.rules.Rules() {
		xm := r.MatchMasterAttrs()
		bm := r.SetMasterAttrs()
		type seenRHS struct {
			rhs value.List
			id  int64
		}
		groups := make(map[string]seenRHS)
		flagged := make(map[string]bool)
		for _, s := range all {
			key := s.Project(xm).Key()
			rhs := s.Project(bm)
			prev, ok := groups[key]
			if !ok {
				groups[key] = seenRHS{rhs: rhs, id: s.ID}
				continue
			}
			if !prev.rhs.Equal(rhs) && !flagged[key] {
				flagged[key] = true
				rep.Issues = append(rep.Issues, Issue{
					Kind:    IssueMasterAmbiguity,
					RuleA:   r.ID,
					MasterA: prev.id,
					MasterB: s.ID,
					Detail: fmt.Sprintf("key %v maps to both %v and %v",
						s.Project(xm).Strings(), prev.rhs.Strings(), rhs.Strings()),
				})
			}
		}
	}
}

// checkPairwiseConflicts searches for concrete two-rule conflict
// witnesses.
func (e *Engine) checkPairwiseConflicts(rep *ConsistencyReport, o ConsistencyOptions) {
	rules := e.rules.Rules()
	all := e.store.All()
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			r1, r2 := rules[i], rules[j]
			shared := e.sharedTargets(r1, r2)
			if len(shared) == 0 {
				continue
			}
			if !pattern.JointlySatisfiable(r1.When, r2.When, e.input) {
				continue
			}
			e.findConflictWitness(rep, o, r1, r2, shared, all)
		}
	}
}

// sharedTargets returns input attributes fixed by both rules, with the
// master source attribute of each side.
type sharedTarget struct {
	attr     string
	bm1, bm2 string
}

func (e *Engine) sharedTargets(r1, r2 *rule.Rule) []sharedTarget {
	var out []sharedTarget
	for _, c1 := range r1.Set {
		for _, c2 := range r2.Set {
			if c1.Input == c2.Input {
				out = append(out, sharedTarget{attr: c1.Input, bm1: c1.Master, bm2: c2.Master})
			}
		}
	}
	return out
}

// findConflictWitness enumerates master tuple pairs (capped) and
// reports the first concrete conflict per shared attribute.
func (e *Engine) findConflictWitness(rep *ConsistencyReport, o ConsistencyOptions,
	r1, r2 *rule.Rule, shared []sharedTarget, all []*schema.Tuple) {

	budget := o.MaxMasterPairs
	// Diagonal pass first: same-tuple witnesses are error-severity and
	// must not be shadowed by an earlier cross-entity warning.
	for _, s := range all {
		if budget--; budget < 0 {
			return
		}
		if e.tryWitnessPair(rep, r1, r2, shared, s, s) {
			return
		}
	}
	for _, s1 := range all {
		for _, s2 := range all {
			if s1.ID == s2.ID {
				continue
			}
			if budget--; budget < 0 {
				return
			}
			if e.tryWitnessPair(rep, r1, r2, shared, s1, s2) {
				return // one witness per rule pair keeps reports readable
			}
		}
	}
}

// tryWitnessPair checks whether (s1, s2) witnesses a conflict between
// r1 and r2 on a shared target; if so it records the issue (severity by
// whether the witnesses are the same entity) and returns true.
func (e *Engine) tryWitnessPair(rep *ConsistencyReport, r1, r2 *rule.Rule,
	shared []sharedTarget, s1, s2 *schema.Tuple) bool {

	bindings, ok := e.compatibleBindings(r1, r2, s1, s2)
	if !ok {
		return false
	}
	if !e.patternsHoldUnderBindings(r1.When, r2.When, bindings) {
		return false
	}
	for _, st := range shared {
		v1 := s1.Get(st.bm1)
		v2 := s2.Get(st.bm2)
		if v1 == v2 {
			continue
		}
		sev := SeverityWarning
		note := "only reachable by validating attributes of two different master entities"
		if s1.ID == s2.ID {
			// One entity, two derivations: the rules genuinely
			// contradict each other.
			sev = SeverityError
			note = "both derivations come from the same master tuple"
		}
		rep.Issues = append(rep.Issues, Issue{
			Kind:     IssueRuleConflict,
			Severity: sev,
			RuleA:    r1.ID,
			RuleB:    r2.ID,
			Attr:     st.attr,
			MasterA:  s1.ID,
			MasterB:  s2.ID,
			Detail: fmt.Sprintf("an input matching both rules would get %s=%q from %s but %s=%q from %s (%s)",
				st.attr, string(v1), r1.ID, st.attr, string(v2), r2.ID, note),
		})
		return true
	}
	return false
}

// compatibleBindings merges the input-attribute assignments implied by
// matching s1 via r1 and s2 via r2; fails when they disagree on a
// shared input attribute.
func (e *Engine) compatibleBindings(r1, r2 *rule.Rule, s1, s2 *schema.Tuple) (map[string]value.V, bool) {
	b := make(map[string]value.V)
	add := func(corrs []rule.Correspondence, s *schema.Tuple) bool {
		for _, c := range corrs {
			v := s.Get(c.Master)
			if prev, ok := b[c.Input]; ok && prev != v {
				return false
			}
			b[c.Input] = v
		}
		return true
	}
	if !add(r1.Match, s1) || !add(r2.Match, s2) {
		return nil, false
	}
	return b, true
}

// patternsHoldUnderBindings checks both patterns can hold for some
// input consistent with bindings: conditions on bound attributes are
// evaluated concretely; conditions on free attributes only need joint
// satisfiability.
func (e *Engine) patternsHoldUnderBindings(p1, p2 pattern.Pattern, bindings map[string]value.V) bool {
	var free1, free2 []pattern.Condition
	check := func(p pattern.Pattern, free *[]pattern.Condition) bool {
		for _, c := range p.Conds {
			if v, bound := bindings[c.Attr]; bound {
				if !c.Matches(v, e.input.Domain(c.Attr)) {
					return false
				}
			} else {
				*free = append(*free, c)
			}
		}
		return true
	}
	if !check(p1, &free1) || !check(p2, &free2) {
		return false
	}
	return pattern.JointlySatisfiable(
		pattern.NewPattern(free1...), pattern.NewPattern(free2...), e.input)
}

// checkOrderIndependence chases synthesized probe tuples under several
// rule orders and flags outcome differences.
func (e *Engine) checkOrderIndependence(rep *ConsistencyReport, o ConsistencyOptions) {
	rules := e.rules.Rules()
	if len(rules) < 2 {
		return
	}
	rng := textutil.NewRNG(o.Seed)
	probes := e.synthesizeProbes(o.MaxProbeTuples, rng)
	if len(probes) == 0 {
		return
	}
	// Seed validated sets: every rule-premise union plus each single
	// rule premise (the states the monitor actually passes through).
	seeds := e.probeSeeds(rules)
	orders := e.probeOrders(rules, o.ProbeOrders, rng)
	// One engine (and compiled program) per order, hoisted out of the
	// probe × seed sweep; each gets a reusable chaser for the probes.
	chasers := make([]*Chaser, len(orders))
	names := make([]string, len(orders))
	for i, ord := range orders {
		chasers[i] = e.reordered(ord).NewChaser()
		names[i] = orderName(ord)
	}
	for _, probe := range probes {
		for _, seed := range seeds {
			var baseline *ChaseResult
			var baselineOrder string
			for oi := range orders {
				res := chasers[oi].Chase(probe, seed)
				rep.ProbesRun++
				if baseline == nil {
					baseline, baselineOrder = res, names[oi]
					continue
				}
				if !res.Tuple.Equal(baseline.Tuple) || res.Validated != baseline.Validated {
					rep.Issues = append(rep.Issues, Issue{
						Kind:  IssueOrderDependence,
						RuleA: names[oi],
						RuleB: baselineOrder,
						Detail: fmt.Sprintf("probe %v seeded %s: orders disagree (%v vs %v)",
							probe.Vals.Strings(), seed.Format(e.input),
							res.Tuple.Vals.Strings(), baseline.Tuple.Vals.Strings()),
					})
					return // first divergence suffices
				}
			}
		}
	}
}

// synthesizeProbes builds input tuples from master rows by pulling
// every corresponded master attribute through the rules, completing
// pattern attributes with the constants mentioned in rule patterns
// (both the matching and the complement side) and filling the rest
// with synthetic values.
func (e *Engine) synthesizeProbes(maxTuples int, rng *textutil.RNG) []*schema.Tuple {
	all := e.store.All()
	if len(all) > maxTuples {
		all = all[:maxTuples]
	}
	patternConsts := e.patternConstants()
	var probes []*schema.Tuple
	for _, s := range all {
		base := make(value.List, e.input.Len())
		covered := schema.EmptySet
		for _, r := range e.rules.Rules() {
			for _, c := range append(append([]rule.Correspondence{}, r.Match...), r.Set...) {
				if i, ok := e.input.Index(c.Input); ok && !covered.Has(i) {
					base[i] = s.Get(c.Master)
					covered = covered.With(i)
				}
			}
		}
		for i := 0; i < e.input.Len(); i++ {
			if base[i].IsNull() {
				base[i] = value.V(fmt.Sprintf("probe-%d-%d", s.ID, i))
			}
		}
		// One variant per combination of pattern-attribute constants
		// (bounded); plus the base tuple itself.
		probes = append(probes, &schema.Tuple{Schema: e.input, Vals: base})
		variants := e.patternVariants(base, patternConsts, rng, 4)
		probes = append(probes, variants...)
	}
	return probes
}

// patternConstants maps each pattern attribute to the constants rules
// mention about it (plus one synthetic off-value).
func (e *Engine) patternConstants() map[string][]value.V {
	out := make(map[string][]value.V)
	for _, r := range e.rules.Rules() {
		for _, c := range r.When.Conds {
			vals := out[c.Attr]
			add := func(v value.V) {
				for _, x := range vals {
					if x == v {
						return
					}
				}
				vals = append(vals, v)
			}
			if !c.Const.IsNull() {
				add(c.Const)
			}
			for _, v := range c.Set {
				add(v)
			}
			out[c.Attr] = vals
		}
	}
	for attr, vals := range out {
		out[attr] = append(vals, value.V("off-"+attr))
	}
	return out
}

// patternVariants derives up to n variants of base by assigning pattern
// attributes random choices from their constant pools.
func (e *Engine) patternVariants(base value.List, consts map[string][]value.V, rng *textutil.RNG, n int) []*schema.Tuple {
	if len(consts) == 0 {
		return nil
	}
	attrs := make([]string, 0, len(consts))
	for a := range consts {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	var out []*schema.Tuple
	for v := 0; v < n; v++ {
		vals := make(value.List, len(base))
		copy(vals, base)
		for _, a := range attrs {
			if i, ok := e.input.Index(a); ok {
				vals[i] = textutil.Pick(rng, consts[a])
			}
		}
		out = append(out, &schema.Tuple{Schema: e.input, Vals: vals})
	}
	return out
}

// probeSeeds lists the validated-set seeds to chase from.
func (e *Engine) probeSeeds(rules []*rule.Rule) []schema.AttrSet {
	union := schema.EmptySet
	var seeds []schema.AttrSet
	seen := make(map[schema.AttrSet]bool)
	for _, r := range rules {
		p := r.PremiseAttrs(e.input)
		union = union.Union(p)
		if !seen[p] {
			seen[p] = true
			seeds = append(seeds, p)
		}
	}
	if !seen[union] {
		seeds = append(seeds, union)
	}
	return seeds
}

// probeOrders returns the rule orders to compare: canonical, reversed,
// and extra random shuffles.
func (e *Engine) probeOrders(rules []*rule.Rule, extra int, rng *textutil.RNG) [][]*rule.Rule {
	canonical := append([]*rule.Rule(nil), rules...)
	reversed := make([]*rule.Rule, len(rules))
	for i, r := range rules {
		reversed[len(rules)-1-i] = r
	}
	orders := [][]*rule.Rule{canonical, reversed}
	for i := 0; i < extra; i++ {
		shuffled := append([]*rule.Rule(nil), rules...)
		textutil.Shuffle(rng, shuffled)
		orders = append(orders, shuffled)
	}
	return orders
}

func orderName(rules []*rule.Rule) string {
	ids := make([]string, len(rules))
	for i, r := range rules {
		ids[i] = r.ID
	}
	return strings.Join(ids, ">")
}

// reordered builds a sibling engine sharing the master store but
// scanning rules in the given order (used only by probing; the store's
// indexes are already in place).
func (e *Engine) reordered(order []*rule.Rule) *Engine {
	rs := rule.MustSet(order...)
	// Recompile: the chase program bakes in rule order (the agenda's
	// firing-order guarantee), which is exactly what probing varies.
	return &Engine{input: e.input, rules: rs, store: e.store, prog: compileProgram(e.input, rs.Rules())}
}
