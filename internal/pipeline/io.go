package pipeline

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"

	"cerfix/internal/jsonenc"
	"cerfix/internal/schema"
	"cerfix/internal/simd"
	"cerfix/internal/value"
)

// This file provides the streaming sources and sinks of the batch
// pipeline: slice-backed (HTTP endpoint, tests), CSV (the CLI's
// file-to-file repair) and JSONL (one attribute→value object per
// line, the natural bulk format of the JSON API). The streaming pairs
// never materialize the dataset: rows are decoded on demand under the
// pipeline's in-flight window and encoded as results arrive.
//
// All of them follow the pipeline's recycling discipline. Sources
// decode into ONE reused tuple (the Source contract lets them: the
// pipeline copies it into arena storage before the next Next call) and
// amortize per-row decoding to at most one allocation — the immutable
// backing string of the row's values. Sinks encode through reused
// scratch buffers with the append-style jsonenc primitives, emitting
// bytes identical to the encoding/json output they replaced, which
// the byte-parity suites pin.

// SliceSource yields tuples from an in-memory slice.
type SliceSource struct {
	tuples []*schema.Tuple
	pos    int
}

// NewSliceSource wraps a tuple slice.
func NewSliceSource(tuples []*schema.Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Next implements Source.
func (s *SliceSource) Next() (*schema.Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, io.EOF
	}
	tu := s.tuples[s.pos]
	s.pos++
	return tu, nil
}

// SliceSink collects results in input order. Because it retains
// results past Write, it deep-copies each one out of the pipeline's
// recycled arenas (the Result contract); the stored clones are safe
// to keep indefinitely.
type SliceSink struct {
	// Results accumulates every result the pipeline emits.
	Results []*Result
}

// Write implements Sink.
func (s *SliceSink) Write(r *Result) error {
	s.Results = append(s.Results, r.Clone())
	return nil
}

// CSVSource streams tuples from CSV under a schema. The header row
// must list exactly the schema's attributes (any order); columns are
// mapped by name, matching storage.Table.ReadCSV's contract.
//
// Decoding no longer walks bytes through encoding/csv's rune machinery
// row by row: lines come out of a buffered window via simd.IndexByte
// and a quote-free line — the common shape — is sliced into fields on
// its commas with one allocation, the immutable backing string of the
// row (the same economy encoding/csv's recordBuffer gives, minus its
// per-rune work). The first '"' anywhere in the input permanently
// hands the stream to an encoding/csv reader positioned so record
// boundaries, internal line numbers and error text stay byte-identical
// to the csv-only decoder: quoted fields, bare-quote errors and
// multi-line records are its semantics, not a reimplementation. Next
// reuses one tuple per the Source contract.
type CSVSource struct {
	sch       *schema.Schema
	colToAttr []int
	line      int          // record counter for error wrapping
	tuple     schema.Tuple // reused; valid until the next Next

	// Fast-path scanner state: the line window, the physical-line
	// counter mirroring csv.Reader's numLine (blank lines count), and
	// the expected field count (the header's).
	lr       *lineReader
	physLine int
	fields   int

	// cr is nil until the first quote triggers the permanent
	// encoding/csv takeover.
	cr *csv.Reader
}

// NewCSVSource reads the header and prepares the column mapping.
func NewCSVSource(sch *schema.Schema, r io.Reader) (*CSVSource, error) {
	s := &CSVSource{sch: sch, lr: newLineReader(r, 0), line: 1}
	header, err := s.readHeader()
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading csv header: %w", err)
	}
	colToAttr := make([]int, len(header))
	seen := make(map[string]bool)
	for i, h := range header {
		idx, ok := sch.Index(h)
		if !ok {
			return nil, fmt.Errorf("pipeline: csv column %q not in schema %s", h, sch.Name())
		}
		if seen[h] {
			return nil, fmt.Errorf("pipeline: duplicate csv column %q", h)
		}
		seen[h] = true
		colToAttr[i] = idx
	}
	if len(seen) != sch.Len() {
		return nil, fmt.Errorf("pipeline: csv header has %d columns, schema %s has %d attributes",
			len(seen), sch.Name(), sch.Len())
	}
	s.colToAttr = colToAttr
	s.fields = len(header)
	s.tuple = schema.Tuple{Schema: sch, Vals: make(value.List, sch.Len())}
	return s, nil
}

// readHeader produces the header fields through the same fast-line /
// takeover machinery data records use; materializing []string is fine
// here — it runs once.
func (s *CSVSource) readHeader() ([]string, error) {
	line, tookOver, err := s.fastLine()
	if err != nil {
		return nil, err
	}
	if tookOver {
		header, err := s.cr.Read()
		if err != nil {
			return nil, err
		}
		return header, nil
	}
	return strings.Split(string(line), ","), nil
}

// fastLine returns the next non-blank record line for the fast path.
// A '"' anywhere in a raw line means encoding/csv semantics could
// diverge from plain comma-splitting (quoted field, bare-quote error,
// multi-line record), so it triggers the takeover and reports
// tookOver; the caller switches to s.cr for this and all further
// records.
func (s *CSVSource) fastLine() (line []byte, tookOver bool, err error) {
	for {
		raw, err := s.lr.next()
		if err != nil {
			return nil, false, err
		}
		s.physLine++
		if simd.IndexByte(raw, '"') >= 0 {
			s.takeover(raw)
			return nil, true, nil
		}
		line := raw
		if n := len(line); n > 0 && line[n-1] == '\r' {
			// encoding/csv normalizes a \r\n ending to \n on every line
			// and drops a trailing \r before EOF; both reduce to
			// trimming one '\r' here.
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue // blank line: skipped but counted, like csv.Reader
		}
		if !s.lr.hadNL && s.lr.err != io.EOF {
			// Torn final line with a pending read error: encoding/csv
			// surfaces the error, not the partial record.
			return nil, false, s.lr.err
		}
		return line, false, nil
	}
}

// takeover permanently switches decoding to encoding/csv. The reader
// is fed physLine-1 blank filler lines (so its internal line counter
// lands exactly where the fast path left off — blank lines are
// skipped but counted), then the raw current line with its original
// terminator, the unconsumed window bytes, and the unread tail.
func (s *CSVSource) takeover(raw []byte) {
	pre := make([]byte, 0, s.physLine+len(raw))
	for i := 0; i < s.physLine-1; i++ {
		pre = append(pre, '\n')
	}
	pre = append(pre, raw...)
	if s.lr.hadNL {
		pre = append(pre, '\n')
	}
	s.cr = csv.NewReader(io.MultiReader(bytes.NewReader(pre), bytes.NewReader(s.lr.rest()), s.lr.tail()))
	s.cr.ReuseRecord = true
	if s.fields > 0 {
		// Mid-stream takeover: the header was fast-parsed, so the csv
		// reader must inherit its field count instead of adopting the
		// first record it happens to see.
		s.cr.FieldsPerRecord = s.fields
	}
}

// Next implements Source. The returned tuple is reused on the next
// call.
func (s *CSVSource) Next() (*schema.Tuple, error) {
	if s.cr == nil {
		line, tookOver, err := s.fastLine()
		if err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			s.line++
			return nil, fmt.Errorf("csv line %d: %w", s.line, err)
		}
		if !tookOver {
			return s.parseRecord(line)
		}
	}
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	s.line++
	if err != nil {
		return nil, fmt.Errorf("csv line %d: %w", s.line, err)
	}
	for i, cell := range rec {
		s.tuple.Vals[s.colToAttr[i]] = value.V(cell)
	}
	return &s.tuple, nil
}

// parseRecord slices a quote-free line into the reused tuple: one
// backing-string allocation, commas found with simd.IndexByte. A
// field-count violation builds the same csv.ParseError the
// encoding/csv path reports, down to the line numbers.
func (s *CSVSource) parseRecord(line []byte) (*schema.Tuple, error) {
	s.line++
	backing := string(line)
	col, off := 0, 0
	for {
		end := len(backing)
		rel := simd.IndexByte(line[off:], ',')
		if rel >= 0 {
			end = off + rel
		}
		if col < len(s.colToAttr) {
			s.tuple.Vals[s.colToAttr[col]] = value.V(backing[off:end])
		}
		col++
		if rel < 0 {
			break
		}
		off = end + 1
	}
	if col != s.fields {
		err := &csv.ParseError{StartLine: s.physLine, Line: s.physLine, Column: 1, Err: csv.ErrFieldCount}
		return nil, fmt.Errorf("csv line %d: %w", s.line, err)
	}
	return &s.tuple, nil
}

// CSVSink streams fixed tuples to CSV: a header row of attribute
// names, then one record per result in input order. Call Flush when
// the run completes. A reused record scratch keeps Write
// allocation-free.
type CSVSink struct {
	cw  *csv.Writer
	rec []string
}

// NewCSVSink writes the header row immediately.
func NewCSVSink(sch *schema.Schema, w io.Writer) (*CSVSink, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(sch.AttrNames()); err != nil {
		return nil, fmt.Errorf("pipeline: writing csv header: %w", err)
	}
	return &CSVSink{cw: cw, rec: make([]string, 0, sch.Len())}, nil
}

// Write implements Sink, emitting the fixed tuple's values.
func (s *CSVSink) Write(r *Result) error {
	s.rec = s.rec[:0]
	for _, v := range r.Fixed.Vals {
		s.rec = append(s.rec, string(v))
	}
	return s.cw.Write(s.rec)
}

// Flush drains buffered records and reports any deferred write error.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// JSONLSource streams tuples from JSON Lines input: one
// attribute→value object per line (blank lines are skipped). Unknown
// attributes are an error; absent ones become null, as in the HTTP
// batch endpoint.
//
// Next reuses one tuple per the Source contract. A fast path parses
// the common shape — a flat object of plain string values — straight
// out of the line window with one allocation per line (the immutable
// backing string of the decoded values, the same economy encoding/csv
// uses). Lines are sliced out of the input and value bytes classified
// in 8-byte-or-wider steps by the simd kernels (IndexByte for
// newlines, ScanJSON for quote/escape/control/non-ASCII bytes), so
// clean runs copy in bulk instead of byte at a time. Anything beyond
// the plain shape — escape sequences, non-string values, invalid
// UTF-8, malformed lines, unknown attributes — falls back to
// encoding/json so behavior and error text match the original decoder
// exactly.
type JSONLSource struct {
	sch  *schema.Schema
	lr   *lineReader
	line int
	// idx mirrors the schema's name→position map locally: indexing a
	// map with string(bytes) compiles to an allocation-free lookup
	// only as a direct map access expression.
	idx    map[string]int
	tuple  schema.Tuple // reused; valid until the next Next
	valBuf []byte       // raw decoded values; one backing string per line
	spans  []valSpan    // per attribute position, offsets into valBuf
	m      map[string]string
}

// valSpan locates one decoded value inside valBuf; start < 0 means the
// attribute was absent from the line.
type valSpan struct{ start, end int }

// NewJSONLSource wraps a JSONL stream under sch.
func NewJSONLSource(sch *schema.Schema, r io.Reader) *JSONLSource {
	s := &JSONLSource{
		sch: sch,
		// 1 MiB line cap, matching the bufio.Scanner limit the decoder
		// had before (over-long lines are bufio.ErrTooLong).
		lr:    newLineReader(r, 1<<20),
		idx:   make(map[string]int, sch.Len()),
		spans: make([]valSpan, sch.Len()),
		m:     make(map[string]string, sch.Len()),
	}
	for i, name := range sch.AttrNames() {
		s.idx[name] = i
	}
	s.tuple = schema.Tuple{Schema: sch, Vals: make(value.List, sch.Len())}
	return s
}

// Next implements Source. The returned tuple is reused on the next
// call.
func (s *JSONLSource) Next() (*schema.Tuple, error) {
	for {
		line, err := s.lr.next()
		if err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, err // ErrTooLong / read errors: bare, like bufio.Scanner
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1] // ScanLines' dropCR
		}
		s.line++
		if len(line) == 0 {
			continue
		}
		if s.parseFast(line) {
			return &s.tuple, nil
		}
		// Slow path: exact legacy behavior and error text. The scratch
		// map is cleared and reused; the resulting tuple is fresh,
		// which trivially satisfies the reuse contract.
		clear(s.m)
		if err := json.Unmarshal(line, &s.m); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		tu, err := schema.TupleFromMap(s.sch, s.m)
		if err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		return tu, nil
	}
}

// parseFast decodes a flat {"attr":"value",...} object into the reused
// tuple, reporting false — deciding nothing — whenever the line strays
// from the plain shape, so the encoding/json fallback keeps semantics
// (duplicate keys last-wins, null handling, error text) authoritative.
func (s *JSONLSource) parseFast(line []byte) bool {
	for i := range s.spans {
		s.spans[i] = valSpan{-1, -1}
	}
	s.valBuf = s.valBuf[:0]
	p, n := 0, len(line)
	ws := func() {
		for p < n && (line[p] == ' ' || line[p] == '\t' || line[p] == '\n' || line[p] == '\r') {
			p++
		}
	}
	finish := func() bool {
		ws()
		if p != n {
			return false // trailing bytes: the fallback rejects them
		}
		backing := string(s.valBuf)
		for i := range s.tuple.Vals {
			sp := s.spans[i]
			if sp.start < 0 {
				s.tuple.Vals[i] = value.Null
			} else {
				s.tuple.Vals[i] = value.V(backing[sp.start:sp.end])
			}
		}
		return true
	}
	ws()
	if p >= n || line[p] != '{' {
		return false
	}
	p++
	ws()
	if p < n && line[p] == '}' {
		p++
		return finish()
	}
	for {
		ws()
		if p >= n || line[p] != '"' {
			return false
		}
		p++
		keyStart := p
		// One classifier scan covers the whole key: the first special
		// byte must be the closing quote; a backslash, control byte or
		// non-ASCII byte means an escaped/exotic key — slow path.
		rel := simd.ScanJSON(line[p:])
		if rel < 0 {
			return false
		}
		p += rel
		if line[p] != '"' {
			return false
		}
		ai, known := s.idx[string(line[keyStart:p])]
		if !known {
			return false // unknown attribute: slow path reports it
		}
		p++
		ws()
		if p >= n || line[p] != ':' {
			return false
		}
		p++
		ws()
		if p >= n || line[p] != '"' {
			return false // non-string value: slow path decides
		}
		p++
		start := len(s.valBuf)
		// The value loop advances a classifier scan at a time: the
		// clean ASCII run before each special byte is appended in bulk,
		// then the special byte decides — closing quote ends the value,
		// a valid multi-byte rune is copied whole and scanning resumes
		// after it, everything else (escapes, control bytes, invalid
		// UTF-8, an unterminated line) rejects to the slow path.
		for {
			rel := simd.ScanJSON(line[p:])
			if rel < 0 {
				return false // no closing quote on this line
			}
			s.valBuf = append(s.valBuf, line[p:p+rel]...)
			p += rel
			c := line[p]
			if c == '"' {
				break
			}
			if c == '\\' || c < 0x20 {
				return false // escapes & control chars: slow path
			}
			r, size := utf8.DecodeRune(line[p:])
			if r == utf8.RuneError && size == 1 {
				return false // invalid UTF-8: slow path coerces to U+FFFD
			}
			s.valBuf = append(s.valBuf, line[p:p+size]...)
			p += size
		}
		p++                                         // closing quote
		s.spans[ai] = valSpan{start, len(s.valBuf)} // duplicate keys: last wins
		ws()
		if p >= n {
			return false
		}
		switch line[p] {
		case ',':
			p++
		case '}':
			p++
			return finish()
		default:
			return false
		}
	}
}

// jsonlRecord is JSONLSink's per-result output shape. Retained as the
// documentation of the wire format and as the encoding/json reference
// the sink's append-style encoder is byte-parity-tested against.
type jsonlRecord struct {
	Tuple     map[string]string `json:"tuple"`
	Done      bool              `json:"done"`
	Conflicts []string          `json:"conflicts,omitempty"`
	Rewrites  int               `json:"rewrites"`
}

// JSONLSink streams one JSON object per result: the fixed tuple, the
// fully-validated flag, conflict messages and the rewrite count.
// Records are rendered through a reused buffer with the jsonenc
// primitives — byte-identical to json.Encoder encoding a jsonlRecord,
// without the per-result map, slices and reflection.
type JSONLSink struct {
	w   io.Writer
	buf []byte
	// Key order and names are bound to the first result's schema
	// (re-bound if it ever changes): encoding/json emits map keys
	// sorted, so the attribute order is computed once.
	sch      *schema.Schema
	keyOrder []int
	names    []string
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// bind computes the schema-derived encoding state.
func (s *JSONLSink) bind(sch *schema.Schema) {
	s.sch = sch
	s.names = sch.AttrNames()
	s.keyOrder = jsonenc.KeyOrder(s.names)
}

// Write implements Sink.
func (s *JSONLSink) Write(r *Result) error {
	if s.sch != r.Fixed.Schema {
		s.bind(r.Fixed.Schema)
	}
	b := append(s.buf[:0], `{"tuple":`...)
	b = jsonenc.AppendStringMap(b, s.names, s.keyOrder, r.Fixed.Vals)
	b = append(b, `,"done":`...)
	b = jsonenc.AppendBool(b, r.Chase.AllValidated() && len(r.Chase.Conflicts) == 0)
	if len(r.Chase.Conflicts) > 0 {
		b = append(b, `,"conflicts":[`...)
		for i := range r.Chase.Conflicts {
			if i > 0 {
				b = append(b, ',')
			}
			b = jsonenc.AppendString(b, r.Chase.Conflicts[i].Error())
		}
		b = append(b, ']')
	}
	b = append(b, `,"rewrites":`...)
	b = strconv.AppendInt(b, int64(r.Chase.RewriteCount()), 10)
	b = append(b, '}', '\n')
	s.buf = b
	_, err := s.w.Write(b)
	return err
}
