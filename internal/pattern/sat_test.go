package pattern

import (
	"testing"
	"testing/quick"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func satSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew("R",
		schema.Str("a"), schema.Str("b"), schema.Int("n"))
}

func TestSatisfiableBasic(t *testing.T) {
	sch := satSchema(t)
	cases := []struct {
		name string
		p    Pattern
		want bool
	}{
		{"empty", NewPattern(), true},
		{"single eq", NewPattern(Eq("a", "x")), true},
		{"contradictory eq", NewPattern(Eq("a", "x"), Eq("a", "y")), false},
		{"eq twice same", NewPattern(Eq("a", "x"), Eq("a", "x")), true},
		{"eq vs ne", NewPattern(Eq("a", "x"), Ne("a", "x")), false},
		{"eq with other ne", NewPattern(Eq("a", "x"), Ne("a", "y")), true},
		{"pure ne always sat", NewPattern(Ne("a", "x"), Ne("a", "y")), true},
		{"in empty-intersection", NewPattern(In("a", "x"), In("a", "y")), false},
		{"in overlapping", NewPattern(In("a", "x", "y"), In("a", "y", "z")), true},
		{"in excluded", NewPattern(In("a", "x"), Ne("a", "x")), false},
		{"interval ok", NewPattern(Ge("n", "1"), Le("n", "5")), true},
		{"interval empty", NewPattern(Gt("n", "5"), Lt("n", "5")), false},
		{"interval crossing", NewPattern(Ge("n", "9"), Le("n", "3")), false},
		{"point interval", NewPattern(Ge("n", "5"), Le("n", "5")), true},
		{"point interval excluded", NewPattern(Ge("n", "5"), Le("n", "5"), Ne("n", "5")), false},
		{"point interval open", NewPattern(Ge("n", "5"), Lt("n", "5")), false},
		{"eq outside interval", NewPattern(Eq("n", "9"), Lt("n", "5")), false},
		{"eq inside interval", NewPattern(Eq("n", "3"), Lt("n", "5")), true},
		{"independent attrs", NewPattern(Eq("a", "x"), Eq("b", "y")), true},
	}
	for _, c := range cases {
		if got := Satisfiable(c.p, sch); got != c.want {
			t.Errorf("%s: Satisfiable(%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

func TestJointlySatisfiable(t *testing.T) {
	sch := satSchema(t)
	p := NewPattern(Eq("a", "1"))
	q := NewPattern(Eq("a", "2"))
	if JointlySatisfiable(p, q, sch) {
		t.Error("disjoint equalities reported jointly satisfiable")
	}
	r := NewPattern(Ne("a", "2"))
	if !JointlySatisfiable(p, r, sch) {
		t.Error("compatible patterns reported unsatisfiable")
	}
	// The demo's φ4/φ6 situation: type="2" vs type="1" never co-apply.
	mobile := NewPattern(Eq("b", "2"))
	home := NewPattern(Eq("b", "1"))
	if JointlySatisfiable(mobile, home, sch) {
		t.Error("type=1 and type=2 patterns should be disjoint")
	}
	if !JointlySatisfiable(NewPattern(), NewPattern(), sch) {
		t.Error("two empty patterns must be satisfiable")
	}
}

// Soundness property: if a concrete tuple matches both patterns, they
// must be reported jointly satisfiable.
func TestJointSatSoundness(t *testing.T) {
	sch := satSchema(t)
	consts := []value.V{"0", "1", "2", "3"}
	ops := []func(string, value.V) Condition{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(seedA, seedB, tupSeed uint16) bool {
		mk := func(seed uint16) Pattern {
			c1 := ops[int(seed)%len(ops)]("a", consts[int(seed>>3)%len(consts)])
			c2 := ops[int(seed>>6)%len(ops)]("b", consts[int(seed>>9)%len(consts)])
			return NewPattern(c1, c2)
		}
		pa, pb := mk(seedA), mk(seedB)
		tu := schema.MustTuple(sch,
			consts[int(tupSeed)%len(consts)],
			consts[int(tupSeed>>4)%len(consts)],
			"0")
		if pa.Matches(tu) && pb.Matches(tu) {
			return JointlySatisfiable(pa, pb, sch)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNegate(t *testing.T) {
	sch := satSchema(t)
	p := NewPattern(Eq("a", "x"), Ne("b", "y"))
	neg := Negate(p)
	if len(neg) != 2 {
		t.Fatalf("Negate branches = %d", len(neg))
	}
	// Every tuple matches p or at least one negation branch, never both.
	for _, av := range []value.V{"x", "z"} {
		for _, bv := range []value.V{"y", "w"} {
			tu := schema.MustTuple(sch, av, bv, "0")
			inP := p.Matches(tu)
			inNeg := false
			for _, n := range neg {
				if n.Matches(tu) {
					inNeg = true
				}
			}
			if inP == inNeg {
				t.Errorf("tuple (%s,%s): p=%v neg=%v — complement violated", av, bv, inP, inNeg)
			}
		}
	}
	if got := Negate(NewPattern()); len(got) != 0 {
		t.Errorf("Negate(empty) = %v", got)
	}
	if got := Negate(NewPattern(Any("a"))); len(got) != 0 {
		t.Errorf("Negate(wildcard) = %v", got)
	}
}

func TestNegateIn(t *testing.T) {
	sch := satSchema(t)
	p := NewPattern(In("a", "x", "y"))
	neg := Negate(p)
	if len(neg) != 1 {
		t.Fatalf("Negate(IN) branches = %d", len(neg))
	}
	tu := schema.MustTuple(sch, "z", "b", "0")
	if !neg[0].Matches(tu) {
		t.Error("z should match not-in {x,y}")
	}
	tu2 := schema.MustTuple(sch, "x", "b", "0")
	if neg[0].Matches(tu2) {
		t.Error("x should not match not-in {x,y}")
	}
}

func TestNegateLtGt(t *testing.T) {
	sch := satSchema(t)
	for _, c := range []Condition{Lt("n", "5"), Le("n", "5"), Gt("n", "5"), Ge("n", "5")} {
		neg := Negate(NewPattern(c))
		if len(neg) != 1 {
			t.Fatalf("Negate(%v) branches = %d", c, len(neg))
		}
		for _, v := range []value.V{"3", "5", "7"} {
			tu := schema.MustTuple(sch, "a", "b", v)
			p := NewPattern(c)
			if p.Matches(tu) == neg[0].Matches(tu) {
				t.Errorf("%v at n=%s: negation not complementary", c, v)
			}
		}
	}
}

func TestTableau(t *testing.T) {
	sch := satSchema(t)
	tb := NewTableau([]string{"b", "a"})
	if tb.Z[0] != "a" || tb.Z[1] != "b" {
		t.Fatalf("Z not sorted: %v", tb.Z)
	}
	if !tb.AddRow(NewPattern(Eq("a", "1"))) {
		t.Fatal("in-scope row rejected")
	}
	if tb.AddRow(NewPattern(Eq("n", "1"))) {
		t.Fatal("out-of-scope row accepted")
	}
	// duplicate row dropped
	tb.AddRow(NewPattern(Eq("a", "1")))
	if len(tb.Rows) != 1 {
		t.Fatalf("duplicate row not dropped: %d rows", len(tb.Rows))
	}
	tu := schema.MustTuple(sch, "1", "x", "0")
	if !tb.Matches(tu) {
		t.Error("row should match")
	}
	tu2 := schema.MustTuple(sch, "2", "x", "0")
	if tb.Matches(tu2) {
		t.Error("non-matching tuple matched")
	}
	empty := NewTableau([]string{"a"})
	if empty.Matches(tu) {
		t.Error("empty tableau must match nothing")
	}
}
