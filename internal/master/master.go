// Package master implements CerFix's master data manager. Master data
// (a.k.a. reference data) is "a single repository of high-quality data
// ... assumed consistent and accurate" (paper §2). The manager wraps a
// storage table, pre-builds hash indexes over the master-side attribute
// lists (Xm) of every editing rule — the access path rule application
// probes — and exposes the unique-right-hand-side lookup that the
// certain-fix semantics requires: a fix is only certain if every master
// tuple matching the key agrees on the source values.
package master

import (
	"fmt"

	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
	"cerfix/internal/value"
)

// LookupStatus classifies a unique-RHS lookup outcome.
type LookupStatus int

const (
	// NoMatch means no master tuple carries the key.
	NoMatch LookupStatus = iota
	// Unique means at least one tuple matched and all agree on the
	// requested source attributes — the fix is certain.
	Unique
	// Conflict means matching tuples disagree on a source attribute;
	// applying the rule would not yield a unique fix.
	Conflict
)

// String names the status for diagnostics.
func (s LookupStatus) String() string {
	switch s {
	case NoMatch:
		return "no-match"
	case Unique:
		return "unique"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Store is the master data manager.
type Store struct {
	table *storage.Table
	// mode selects the lookup access path; see LookupMode.
	mode LookupMode
	// ruleIdx holds the precomputed unique-RHS maps (the fast path).
	ruleIdx *ruleIndexes
}

// New wraps an empty master relation under sch.
func New(sch *schema.Schema) *Store {
	return &Store{table: storage.NewTable(sch), mode: ModeRuleIndex, ruleIdx: newRuleIndexes()}
}

// FromTable wraps an existing table (e.g. loaded from CSV).
func FromTable(t *storage.Table) *Store {
	return &Store{table: t, mode: ModeRuleIndex, ruleIdx: newRuleIndexes()}
}

// Snapshot returns an isolated copy of the store: cloned table (rows,
// hash indexes) and deep-copied unique-RHS rule indexes. The copy
// shares no mutable state with the live store, so any number of
// goroutines may read it — the batch pipeline's workers do — while
// the original keeps absorbing inserts and mode changes. The
// Snapshot call itself must be serialized with writers (it clones
// table and rule indexes under separate locks, so a racing insert
// could land in one but not the other); callers hold their own lock
// across it, as the HTTP server does.
func (m *Store) Snapshot() *Store {
	return &Store{table: m.table.Clone(), mode: m.mode, ruleIdx: m.ruleIdx.clone()}
}

// Schema returns the master schema.
func (m *Store) Schema() *schema.Schema { return m.table.Schema() }

// Table exposes the underlying table (for CSV I/O and the server).
func (m *Store) Table() *storage.Table { return m.table }

// Len returns the number of master tuples.
func (m *Store) Len() int { return m.table.Len() }

// SetUseIndexes toggles between hash-indexed lookups and full scans —
// kept for the E5 ablation; SetMode is the general knob. on=true maps
// to ModeRuleIndex, false to ModeScan.
func (m *Store) SetUseIndexes(on bool) {
	if on {
		m.mode = ModeRuleIndex
	} else {
		m.mode = ModeScan
	}
}

// SetMode selects the lookup access path.
func (m *Store) SetMode(mode LookupMode) { m.mode = mode }

// Mode returns the current access path.
func (m *Store) Mode() LookupMode { return m.mode }

// Insert adds a master tuple and maintains the rule indexes.
func (m *Store) Insert(tu *schema.Tuple) (int64, error) {
	id, err := m.table.Insert(tu)
	if err != nil {
		return 0, err
	}
	stored, _ := m.table.Get(id)
	m.ruleIdx.insert(stored)
	return id, nil
}

// InsertValues adds a master tuple from values.
func (m *Store) InsertValues(vals ...value.V) (int64, error) {
	tu, err := schema.NewTuple(m.table.Schema(), vals...)
	if err != nil {
		return 0, err
	}
	return m.Insert(tu)
}

// All returns every master tuple.
func (m *Store) All() []*schema.Tuple { return m.table.All() }

// Get returns the master tuple with the given ID.
func (m *Store) Get(id int64) (*schema.Tuple, bool) { return m.table.Get(id) }

// PrepareForRules creates one index per distinct master-side match
// attribute list across the rule set, so every rule's lookup is O(1)
// expected. Must be re-run after adding rules with new Xm lists (extra
// runs are idempotent).
func (m *Store) PrepareForRules(rs *rule.Set) error {
	for _, r := range rs.Rules() {
		if err := m.table.CreateIndex(r.MatchMasterAttrs()); err != nil {
			return fmt.Errorf("master: indexing for rule %s: %w", r.ID, err)
		}
	}
	m.PrepareRuleIndexes(rs)
	return nil
}

// Lookup returns all master tuples whose attrs project to key.
func (m *Store) Lookup(attrs []string, key value.List) []*schema.Tuple {
	if m.mode != ModeScan {
		return m.table.LookupEq(attrs, key)
	}
	// Forced-scan path: bypass any index by predicate selection.
	return m.table.Select(func(tu *schema.Tuple) bool {
		return tu.Project(attrs).Equal(key)
	})
}

// UniqueRHS performs the certain-fix lookup for one rule application:
// find master tuples with matchAttrs = key; if none, return NoMatch; if
// all agree on rhsAttrs, return those values, the witness tuple's ID
// and Unique; otherwise Conflict.
func (m *Store) UniqueRHS(matchAttrs []string, key value.List, rhsAttrs []string) (value.List, int64, LookupStatus) {
	if m.mode == ModeRuleIndex {
		if rhs, witness, status, ok := m.ruleIdx.lookup(matchAttrs, key, rhsAttrs); ok {
			return rhs, witness, status
		}
		// No index for this pair (ad-hoc query): fall through to the
		// group-verification path.
	}
	matches := m.Lookup(matchAttrs, key)
	if len(matches) == 0 {
		return nil, 0, NoMatch
	}
	rhs := matches[0].Project(rhsAttrs)
	witness := matches[0].ID
	for _, tu := range matches[1:] {
		if !tu.Project(rhsAttrs).Equal(rhs) {
			return nil, 0, Conflict
		}
	}
	return rhs, witness, Unique
}

// UniqueRHSForRule is UniqueRHS specialized to a rule: the key is the
// input tuple's projection on X, matched against Xm, sourcing Bm.
func (m *Store) UniqueRHSForRule(r *rule.Rule, input *schema.Tuple) (value.List, int64, LookupStatus) {
	key := input.Project(r.MatchInputAttrs())
	return m.UniqueRHS(r.MatchMasterAttrs(), key, r.SetMasterAttrs())
}

// Stats summarizes the store for the web interface and CLIs.
type Stats struct {
	// Tuples is the number of master tuples.
	Tuples int
	// Attributes is the master schema width.
	Attributes int
	// Schema is the schema's display form.
	Schema string
}

// Stats returns a snapshot summary.
func (m *Store) Stats() Stats {
	return Stats{
		Tuples:     m.table.Len(),
		Attributes: m.table.Schema().Len(),
		Schema:     m.table.Schema().String(),
	}
}
