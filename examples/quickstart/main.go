// Quickstart: the smallest end-to-end CerFix program, using only the
// public API. It reproduces Example 1/2 of the paper: a dirty customer
// tuple whose area code contradicts its city; once the user validates
// the zip code, editing rules + master data yield a certain fix for
// the area code — without touching the (correct) city.
package main

import (
	"fmt"
	"log"

	"cerfix"
)

func main() {
	// Input (dirty) relation and master relation, with different
	// schemas, as in the paper's demo.
	input, err := cerfix.NewSchema("CUST",
		cerfix.StringAttrs("FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item")...)
	if err != nil {
		log.Fatal(err)
	}
	person, err := cerfix.NewSchema("PERSON",
		cerfix.StringAttrs("FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender")...)
	if err != nil {
		log.Fatal(err)
	}

	// Two editing rules: Example 2's φ1 (zip fixes the area code) and
	// a companion fixing the street.
	sys, err := cerfix.New(input, person, `
phi1: match zip~zip set AC := AC
phi2: match zip~zip set str := str
`)
	if err != nil {
		log.Fatal(err)
	}

	// One master tuple: Robert Brady of Edinburgh (paper Example 2).
	if err := sys.AddMasterRow(
		"Robert", "Brady", "131", "6884563", "079172485",
		"501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M"); err != nil {
		log.Fatal(err)
	}

	// The dirty tuple of Example 1: AC=020 is wrong (the customer is in
	// Edinburgh, area code 131), everything else is right.
	sess, err := sys.NewSession(map[string]string{
		"FN": "Bob", "LN": "Brady", "AC": "020", "phn": "079172485",
		"type": "2", "str": "501 Elm St", "city": "Edi", "zip": "EH8 4AH", "item": "CD",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before:", sess.Tuple)

	// The user validates the zip code — the only human input needed for
	// this fix.
	res, err := sess.Validate(map[string]string{"zip": "EH8 4AH"})
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range res.Changes {
		if ch.IsRewrite() {
			fmt.Printf("certain fix: %s %q -> %q (rule %s, master tuple #%d)\n",
				ch.Attr, string(ch.Old), string(ch.New), ch.RuleID, ch.MasterID)
		}
	}
	fmt.Println("after: ", sess.Tuple)
	fmt.Println("note:   city stayed Edi — a certain fix never breaks a correct value")
}
