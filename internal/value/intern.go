// Interned values: a concurrent, snapshot-shareable dictionary mapping
// strings to dense Sym ids. The chase's hot path compares master-data
// cells billions of times; interning turns each comparison into a
// pointer-width integer equality and lets frozen columnar shards store
// 4-byte ids instead of 16-byte string headers plus per-row data.
//
// Concurrency model (the part that makes snapshots free):
//
//   - The dictionary is append-only. A Sym, once published, is
//     immutable forever, so any number of frozen snapshots can share
//     one *Dict with the live writer without copying anything.
//   - Readers (Lookup, Str, Compare) are lock-free: they navigate an
//     atomically published open-addressed id table and an atomically
//     published page directory. Writers serialize on a mutex and
//     publish each new entry with a release store after the string is
//     in place, so a reader that observes a slot always observes the
//     string behind it.
//   - String bytes live in append-only arena chunks. A chunk is never
//     reallocated in place — when full, a fresh chunk is started — so
//     every published string header points at bytes that are immutable
//     for the life of the dictionary.
//
// Memory: one interned string costs its raw bytes in the arena plus a
// 16-byte page-directory slot and ~8 bytes of id table (load factor
// ≤ 50%), versus a 16-byte header plus a per-value heap allocation for
// every repetition in the boxed layout.
package value

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"cerfix/internal/simd"
)

// Sym is a dense dictionary id for an interned string. Equality of two
// Syms from the same Dict is equality of the underlying strings.
// Domain-aware ordering still needs the dictionary (see Dict.Compare):
// two distinct Syms may compare equal under DInt ("7" vs "07").
type Sym uint32

const (
	symPageBits = 12
	symPageSize = 1 << symPageBits
	symPageMask = symPageSize - 1

	// dictChunkSize is the arena chunk granularity. Chunks are never
	// grown in place (published strings alias their bytes); a string
	// larger than a chunk gets a dedicated chunk.
	dictChunkSize = 64 << 10

	initialTableSize = 1 << 10
)

// symTable is one immutable-capacity open-addressed id table. Slots
// hold sym+1 (0 = empty) and are inserted with atomic stores so
// lock-free readers can probe concurrently with the writer. The table
// is replaced wholesale (new pointer) when it reaches 50% load.
type symTable struct {
	slots []atomic.Uint32
	mask  uint32
}

// DictStats is a point-in-time memory account of a dictionary.
type DictStats struct {
	Syms int `json:"syms"`
	// DataBytes is the raw string data held in arena chunks.
	DataBytes int64 `json:"data_bytes"`
	// Bytes is the total estimated footprint: arena capacity plus the
	// page directory and the id table.
	Bytes int64 `json:"bytes"`
}

// Dict is the concurrent interning dictionary. The zero value is not
// usable; call NewDict.
type Dict struct {
	table atomic.Pointer[symTable]
	pages atomic.Pointer[[][]string]
	n     atomic.Uint32

	mu        sync.Mutex // serializes writers; readers never take it
	chunk     []byte     // current arena chunk (writer-only)
	chunkCap  int64      // total arena capacity ever allocated
	dataBytes int64      // raw bytes of interned strings
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{}
	d.table.Store(&symTable{
		slots: make([]atomic.Uint32, initialTableSize),
		mask:  initialTableSize - 1,
	})
	pages := make([][]string, 0, 8)
	d.pages.Store(&pages)
	return d
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return int(d.n.Load()) }

// Stats returns the dictionary's memory account.
func (d *Dict) Stats() DictStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := int64(d.n.Load())
	t := d.table.Load()
	pages := *d.pages.Load()
	return DictStats{
		Syms:      int(n),
		DataBytes: d.dataBytes,
		Bytes: d.chunkCap +
			int64(len(pages))*symPageSize*int64(unsafe.Sizeof("")) +
			int64(len(t.slots))*4,
	}
}

// Lookup returns the Sym for s if it has been interned. It is
// lock-free and allocation-free, safe to call from any number of
// readers concurrently with one writer.
func (d *Dict) Lookup(s string) (Sym, bool) {
	t := d.table.Load()
	h := fnvString(s) & t.mask
	for {
		v := t.slots[h].Load()
		if v == 0 {
			return 0, false
		}
		sym := Sym(v - 1)
		// The page directory pointer is published before the slot, so
		// loading it after observing the slot always finds the page.
		pages := *d.pages.Load()
		if pages[sym>>symPageBits][sym&symPageMask] == s {
			return sym, true
		}
		h = (h + 1) & t.mask
	}
}

// LookupV is Lookup for a cell value.
func (d *Dict) LookupV(v V) (Sym, bool) { return d.Lookup(string(v)) }

// Str returns the interned string for sym. sym must have come from
// this dictionary; an out-of-range id panics. The returned string
// aliases the dictionary's immutable arena — callers must treat it as
// read-only (Go strings already are).
func (d *Dict) Str(sym Sym) string {
	pages := *d.pages.Load()
	return pages[sym>>symPageBits][sym&symPageMask]
}

// Val returns the interned cell value for sym.
func (d *Dict) Val(sym Sym) V { return V(d.Str(sym)) }

// Intern returns the Sym for s, assigning the next dense id if s has
// not been seen before. The string's bytes are copied into the
// dictionary's arena, so callers may reuse their buffer.
func (d *Dict) Intern(s string) Sym {
	if sym, ok := d.Lookup(s); ok {
		return sym
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Re-check: another writer may have interned s while we waited.
	if sym, ok := d.Lookup(s); ok {
		return sym
	}

	sym := Sym(d.n.Load())

	// Copy the bytes into the arena and build the canonical string
	// header. unsafe.String is sound here because the chunk region
	// [off, off+len(s)) is written exactly once and the chunk is never
	// reallocated in place — full chunks are abandoned to the strings
	// that alias them (interior pointers keep the backing array live).
	var stored string
	if len(s) > 0 {
		if len(d.chunk)+len(s) > cap(d.chunk) {
			c := dictChunkSize
			if len(s) > c {
				c = len(s)
			}
			d.chunk = make([]byte, 0, c)
			d.chunkCap += int64(c)
		}
		off := len(d.chunk)
		d.chunk = append(d.chunk, s...)
		stored = unsafe.String(&d.chunk[off], len(s))
	}

	// Place the string in its page, publishing a grown page directory
	// first if sym opens a new page.
	p, i := int(sym>>symPageBits), int(sym&symPageMask)
	pages := *d.pages.Load()
	if p == len(pages) {
		grown := make([][]string, len(pages)+1)
		copy(grown, pages)
		grown[p] = make([]string, symPageSize)
		d.pages.Store(&grown)
		pages = grown
	}
	pages[p][i] = stored
	d.dataBytes += int64(len(s))

	// Insert into the id table, growing first if the insert would
	// push load factor past 50%.
	t := d.table.Load()
	if (d.n.Load()+1)*2 > uint32(len(t.slots)) {
		t = d.growTable(t)
	}
	h := fnvString(s) & t.mask
	for t.slots[h].Load() != 0 {
		h = (h + 1) & t.mask
	}
	// Publish order matters: page entry (plain write) → count → slot
	// (release store). A reader that observes the slot observes the
	// string; a reader that observes n observes every page entry
	// below it.
	d.n.Add(1)
	t.slots[h].Store(uint32(sym) + 1)
	return sym
}

// InternV is Intern for a cell value.
func (d *Dict) InternV(v V) Sym { return d.Intern(string(v)) }

// growTable doubles the id table and republishes it. Readers holding
// the old table keep probing it safely — it is frozen at under 50%
// load and simply misses entries inserted after the swap.
func (d *Dict) growTable(t *symTable) *symTable {
	nt := &symTable{
		slots: make([]atomic.Uint32, len(t.slots)*2),
		mask:  uint32(len(t.slots)*2 - 1),
	}
	pages := *d.pages.Load()
	for i := range t.slots {
		v := t.slots[i].Load()
		if v == 0 {
			continue
		}
		sym := Sym(v - 1)
		s := pages[sym>>symPageBits][sym&symPageMask]
		h := fnvString(s) & nt.mask
		for nt.slots[h].Load() != 0 {
			h = (h + 1) & nt.mask
		}
		nt.slots[h].Store(v)
	}
	d.table.Store(nt)
	return nt
}

// Compare orders two interned values under domain dom with the same
// contract as Compare on raw values. Identical Syms are equal without
// touching the dictionary — the chase's hot path; ordered comparisons
// (and cross-representation equalities like "07" vs "7" under DInt)
// fall back to the interned strings.
func (d *Dict) Compare(a, b Sym, dom Domain) int {
	if a == b {
		return 0
	}
	return Compare(V(d.Str(a)), V(d.Str(b)), dom)
}

// AppendSym appends sym's fixed-width little-endian encoding to dst.
// Composite sym-encoded keys (rule-index probes, hash-index buckets)
// concatenate these 4-byte groups; fixed width means no length
// prefixes are needed for unambiguous decoding.
func AppendSym(dst []byte, s Sym) []byte {
	return append(dst, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
}

// fnvString is FNV-1a over the string bytes via the simd kernel's
// wide body — bit-identical to the scalar definition and to
// cowmap.FNVBytes, so callers can hash either representation
// consistently and table slots never move when the kernel table
// changes.
func fnvString(s string) uint32 { return simd.Hash(s) }
