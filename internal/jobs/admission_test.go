package jobs

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"

	"cerfix/internal/dataset"
)

// countJobDirs returns how many job subdirectories exist — the "shed
// without disk growth" witness.
func countJobDirs(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// A submission past MaxQueued sheds with ErrBacklogFull before
// touching disk, and admission reopens once the backlog drains.
func TestJobsBacklogBound(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 30)
	dir := t.TempDir()
	gs := &gatedSnapshot{eng: eng, gate: make(chan struct{})}
	m, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: gs.snapshot, MaxQueued: 1})
	if err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			close(gs.gate)
		}
	}
	defer func() {
		release()
		m.Close(context.Background())
	}()

	tuples := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		tuples[i] = tu.Map()
	}

	// A occupies the single runner (blocked at snapshot), B fills the
	// one queued slot.
	a, err := m.SubmitInline(validated, tuples)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateRunning)
	b, err := m.SubmitInline(validated, tuples[:5])
	if err != nil {
		t.Fatal(err)
	}
	if got := countJobDirs(t, dir); got != 2 {
		t.Fatalf("job dirs = %d, want 2", got)
	}

	// C is shed — ErrBacklogFull, not ErrInvalid, and no disk growth.
	if _, err := m.SubmitInline(validated, tuples[:5]); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("over-backlog submit err = %v, want ErrBacklogFull", err)
	} else if errors.Is(err, ErrInvalid) {
		t.Fatal("ErrBacklogFull must not classify as ErrInvalid (it maps to 429, not 422)")
	}
	if got := countJobDirs(t, dir); got != 2 {
		t.Fatalf("job dirs after shed = %d, want 2 (shed touched disk)", got)
	}

	st := m.Stats()
	if st.Queued != 1 || st.Running != 1 || st.MaxQueued != 1 || st.Workers != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Draining the backlog reopens admission, and completed service
	// time feeds the average.
	release()
	waitState(t, m, a.ID, StateDone)
	waitState(t, m, b.ID, StateDone)
	if st := m.Stats(); st.AvgServiceMS <= 0 {
		t.Fatalf("avg service ms = %v, want > 0 after completions", st.AvgServiceMS)
	}
	d, err := m.SubmitInline(validated, tuples[:5])
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	waitState(t, m, d.ID, StateDone)
}

// Concurrent submitters cannot jointly overshoot the bound: the
// reservation in enqueue makes the backlog check atomic with the
// admission.
func TestJobsBacklogConcurrentSubmits(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 10)
	dir := t.TempDir()
	gs := &gatedSnapshot{eng: eng, gate: make(chan struct{})}
	m, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: gs.snapshot, MaxQueued: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(gs.gate)
		m.Close(context.Background())
	}()

	tuples := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		tuples[i] = tu.Map()
	}
	var wg sync.WaitGroup
	results := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.SubmitInline(validated, tuples)
			results <- err
		}()
	}
	wg.Wait()
	close(results)
	admitted, shed := 0, 0
	for err := range results {
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrBacklogFull):
			shed++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	// At most MaxQueued admitted while every runner slot is blocked,
	// plus one the single runner may have already picked up.
	if admitted < 4 || admitted > 5 {
		t.Fatalf("admitted = %d, want 4 or 5 (MaxQueued=4, 1 runner)", admitted)
	}
	if admitted+shed != 32 {
		t.Fatalf("admitted %d + shed %d != 32", admitted, shed)
	}
	if got := countJobDirs(t, dir); got != admitted {
		t.Fatalf("job dirs = %d, want %d (one per admitted job only)", got, admitted)
	}
}
