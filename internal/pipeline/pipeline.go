// Package pipeline is the batch-repair engine of the CerFix
// reproduction: a streaming, sharded executor for non-interactive
// certain-fix passes over large datasets. The paper's data monitor
// "supports several interfaces to access data, which could be readily
// integrated with other database applications" (§3); this package is
// that integration point at scale.
//
// Because master data and editing rules are frozen for the duration of
// a batch (callers snapshot the engine first when the live system may
// mutate — core.Engine.Snapshot), each tuple's certain-fix chase is
// independent of every other tuple's: batch repair is embarrassingly
// parallel. Run shards the input across N workers, each owning a
// reusable core.Chaser — the compiled chase program's executor, pooled
// at the engine so scratch survives across runs — against the shared
// read-only engine, and re-sequences results so the sink observes
// exactly the order — and exactly the bytes — the sequential path
// would have produced.
//
// Memory stays flat regardless of input size, and in steady state the
// run allocates O(window), not O(tuples): tuples, Result structs and
// ChaseResults live in batch arenas that recycle through the in-flight
// window (see the memory-model section below), the resequencer is a
// ring buffer sized by that window, and an in-flight token cap bounds
// how far the reader may run ahead of the slowest unfinished tuple, so
// a slow sink (or one pathological tuple) stalls the source instead of
// ballooning the resequencing buffer.
//
// # Memory model
//
// One batch — up to ChunkSize consecutive tuples, their inputs,
// Results and ChaseResults — is the unit of both work and memory. A
// fixed set of batches (O(window/ChunkSize + workers)) cycles
//
//	free pool → reader (fills inputs) → worker (chases into the
//	batch's result slots) → resequencer (sinks in order) → free pool
//
// with ownership handed off at each arrow, so no batch is ever shared
// between stages. Recycling piggybacks on the admission tokens: a
// batch returns to the pool only after every one of its results has
// been written and its tokens released, which is exactly when nothing
// in the run can still reference it. The corollary is the package's
// recycling contract: a *Result (its Input, Fixed and Chase included)
// is valid only until Sink.Write returns — sinks that retain results
// must Clone them (SliceSink does).
//
// Sources and sinks are small interfaces; CSV and JSONL streaming
// implementations live in io.go, and slice-backed ones serve the HTTP
// batch endpoint and tests. Sources may reuse the returned tuple
// between Next calls (the streaming ones do); the reader copies every
// tuple into batch-arena storage before asking for the next.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"

	"cerfix/internal/core"
	"cerfix/internal/guard"
	"cerfix/internal/schema"
)

// Options tunes a pipeline run. The zero value (or nil) picks
// defaults good for throughput on the current machine.
type Options struct {
	// Workers is the number of parallel chase workers; 1 degenerates
	// to the sequential path. Default: GOMAXPROCS.
	Workers int
	// Window is the maximum number of tuples in flight between source
	// and sink (the backpressure bound: reader admission, channel
	// capacity, resequencing ring and arena footprint all live inside
	// it). Default: 16 per worker, minimum 64.
	Window int
	// ChunkSize is how many consecutive tuples ride one work unit.
	// Chunking amortizes channel operations when individual fixes are
	// microsecond-cheap (the rule-index access path). Default 16.
	ChunkSize int
}

func (o *Options) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o *Options) window(workers int) int {
	if o == nil || o.Window <= 0 {
		w := 16 * workers
		if w < 64 {
			w = 64
		}
		return w
	}
	return o.Window
}

func (o *Options) chunkSize() int {
	if o == nil || o.ChunkSize <= 0 {
		return 16
	}
	return o.ChunkSize
}

// Source yields input tuples in order; Next returns io.EOF when the
// stream is drained. The returned tuple — struct and value slice —
// need only stay valid until the next Next call: streaming sources
// decode into one reused tuple, and the pipeline copies it into arena
// storage before reading on. (The string values themselves must be
// immutable as usual; only the containers may be recycled.)
type Source interface {
	Next() (*schema.Tuple, error)
}

// Result is one tuple's outcome. Sinks receive results strictly in
// input order.
//
// Recycling contract: a Result and everything it references — Input,
// Fixed (which aliases Chase.Tuple) and Chase, including the change
// and conflict slices — live in a batch arena that is recycled through
// the pipeline's in-flight window. They are valid only until
// Sink.Write returns; a sink that retains anything past that must
// Clone the result (or copy the parts it keeps).
type Result struct {
	// Seq is the tuple's 0-based position in the input stream.
	Seq int
	// Input is the tuple as read from the source.
	Input *schema.Tuple
	// Fixed is the chased copy (Input is untouched). It is the same
	// tuple Chase.Tuple points to.
	Fixed *schema.Tuple
	// Chase carries the full outcome: changes, conflicts, rounds.
	Chase *core.ChaseResult
}

// Clone returns a deep copy safe to retain indefinitely, sharing
// nothing with the arena-backed original. Fixed aliases Chase.Tuple in
// the clone, as it does in pipeline-produced results.
func (r *Result) Clone() *Result {
	cp := &Result{Seq: r.Seq, Input: r.Input.Clone(), Chase: r.Chase.Clone()}
	cp.Fixed = cp.Chase.Tuple
	return cp
}

// Sink consumes results in input order. Write errors abort the run.
// The *Result argument obeys the recycling contract documented on
// Result: it is valid only until Write returns.
type Sink interface {
	Write(*Result) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Result) error

// Write implements Sink.
func (f SinkFunc) Write(r *Result) error { return f(r) }

// Discard drops every result; useful when only Stats matter.
var Discard Sink = SinkFunc(func(*Result) error { return nil })

// Stats aggregates a run, mirroring the counters of the sequential
// CLI and HTTP paths. The JSON tags are the wire shape of the jobs
// API and journal (snake_case, like every other API field).
type Stats struct {
	// Tuples is the number of tuples processed.
	Tuples int `json:"tuples"`
	// FullyValidated counts tuples whose every attribute ended
	// validated with no conflicts.
	FullyValidated int `json:"fully_validated"`
	// WithConflicts counts tuples that hit at least one conflict.
	WithConflicts int `json:"with_conflicts"`
	// CellsRewritten counts rule-made value changes across the batch.
	CellsRewritten int `json:"cells_rewritten"`
	// Workers is the worker count the run actually used.
	Workers int `json:"workers"`
}

// batch is one work unit AND its arena: up to ChunkSize consecutive
// tuples with their input storage, Result structs and ChaseResults.
// Batches are recycled through the free pool for the lifetime of one
// Run; inner buffers (value slices, change/conflict capacity) warm up
// on first use and persist across recycles, so a steady-state run
// allocates nothing per tuple.
type batch struct {
	startSeq int
	n        int
	in       []schema.Tuple     // inputs, copied from the source
	results  []Result           // handed to the sink, slot i ↔ in[i]
	chase    []core.ChaseResult // reusable chase outcomes, slot i ↔ in[i]
}

func newBatch(chunkSize int) *batch {
	return &batch{
		in:      make([]schema.Tuple, chunkSize),
		results: make([]Result, chunkSize),
		chase:   make([]core.ChaseResult, chunkSize),
	}
}

// testWorkerHook, when non-nil, runs in each worker after a batch is
// chased and before it is handed to the resequencer. Tests use it to
// impose adversarial completion orders on the resequencing ring;
// production runs never set it.
var testWorkerHook func(startSeq int)

// Run executes a non-interactive certain-fix pass over every tuple of
// src, asserting the validated attribute set, and streams results to
// sink in input order. The engine must not be mutated during the run;
// when the live system may change concurrently, pass a snapshot
// (core.Engine.Snapshot). Output is byte-identical to calling
// eng.Chase per tuple sequentially.
//
// Cancelling ctx aborts the run: the reader stops admitting tuples,
// workers drain, and Run returns the partial Stats accumulated so far
// together with ctx's error. Because every stage parks inside the
// in-flight window, cancellation is observed within at most one
// window's worth of tuples — it never deadlocks on a full channel.
func Run(ctx context.Context, eng *core.Engine, validated schema.AttrSet, src Source, sink Sink, opts *Options) (Stats, error) {
	workers := opts.workers()
	chunkSize := opts.chunkSize()
	window := opts.window(workers)
	if window < chunkSize {
		// The reader acquires tokens before a chunk is flushed; a
		// window smaller than one chunk could strand the oldest
		// in-flight tuple inside the reader and deadlock.
		window = chunkSize
	}
	// nChunks bounds the chunk-granular spread of the window: with at
	// most window tuples admitted past the emit frontier, in-flight
	// chunk start positions span fewer than nChunks chunk indices —
	// the resequencing ring's structural invariant.
	nChunks := window/chunkSize + 1
	// The arena population: enough batches for every stage to hold a
	// full complement (jobs queue + results queue share nChunks of
	// window, one per worker, one in the reader) without the free pool
	// ever being the bottleneck in steady state.
	nBatches := 2*nChunks + workers + 1

	var (
		jobs     = make(chan *batch, nChunks)
		results  = make(chan *batch, nChunks)
		free     = make(chan *batch, nBatches)
		inflight = make(chan struct{}, window) // admission tokens, 1/tuple
		done     = make(chan struct{})
		errOnce  sync.Once
		runErr   error
	)
	for i := 0; i < nBatches; i++ {
		free <- newBatch(chunkSize)
	}
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			close(done)
		})
	}
	// A panic escaping through the resequencer (a sink panic — reader
	// and worker panics are converted to run errors below) must still
	// release the pipeline: fail() unparks every stage before the panic
	// continues to the caller, so no goroutine is left blocked on a
	// channel nobody serves.
	defer func() {
		if p := recover(); p != nil {
			fail(guard.NewPanicError("pipeline sink", p, debug.Stack()))
			panic(p)
		}
	}()
	// chaos gates the fault-injection seam once per run: disabled (the
	// default) it costs one atomic load total, keeping the steady-state
	// zero-alloc path untouched.
	chaos := guard.ChaosEnabled()
	if ctx != nil {
		// A context cancelled before the run starts aborts
		// synchronously — no tuple is admitted on the watcher's
		// scheduling luck.
		if err := ctx.Err(); err != nil {
			return Stats{Workers: workers}, err
		}
	}
	if ctx != nil && ctx.Done() != nil {
		// Propagate external cancellation into the pipeline's own done
		// channel; the watcher exits with the run.
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-done:
			case <-finished:
			}
		}()
	}

	// Stage 1 — reader: copy the stream into batch arenas, admitting
	// at most window tuples past the resequencer's emit frontier. The
	// current batch is grabbed from the free pool only when the next
	// admitted tuple needs one, so a reader parked on the pool never
	// holds admission tokens hostage.
	go func() {
		defer close(jobs) // registered first: runs after the recover below
		defer func() {
			if p := recover(); p != nil {
				fail(guard.NewPanicError("pipeline reader", p, debug.Stack()))
			}
		}()
		var cur *batch
		seq := 0
		for {
			tu, err := src.Next()
			if err == io.EOF {
				if cur != nil && cur.n > 0 {
					select {
					case jobs <- cur:
					case <-done:
					}
				}
				return
			}
			if err != nil {
				fail(fmt.Errorf("pipeline: reading tuple %d: %w", seq, err))
				return
			}
			select {
			case inflight <- struct{}{}:
			case <-done:
				return
			}
			if cur == nil {
				select {
				case cur = <-free:
					cur.startSeq = seq
					cur.n = 0
				case <-done:
					return
				}
			}
			// Copy into the arena: the source may recycle tu on the
			// next Next call; the value strings themselves are
			// immutable and shared.
			dst := &cur.in[cur.n]
			dst.Schema = tu.Schema
			dst.ID = tu.ID
			dst.Vals = append(dst.Vals[:0], tu.Vals...)
			cur.n++
			seq++
			if cur.n >= chunkSize {
				select {
				case jobs <- cur:
					cur = nil
				case <-done:
					return
				}
			}
		}
	}()

	// Stage 2 — sharded workers: each owns a pooled chaser against the
	// shared read-only engine and chases into the batch's own result
	// slots, so the chase allocates nothing once the arena is warm.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var chaser *core.Chaser
			defer func() {
				if p := recover(); p != nil {
					// One poisoned tuple or rule fails the run as a typed
					// error instead of killing the process. The chaser is
					// abandoned, not released: its mid-chase scratch can't
					// be trusted back into the pool.
					fail(guard.NewPanicError("pipeline worker", p, debug.Stack()))
					return
				}
				if chaser != nil {
					chaser.Release()
				}
			}()
			chaser = eng.AcquireChaser()
			for b := range jobs {
				for i := 0; i < b.n; i++ {
					in := &b.in[i]
					if chaos {
						for _, v := range in.Vals {
							guard.ChaosValue(ctx, string(v))
						}
					}
					res := chaser.ChaseInto(&b.chase[i], in, validated)
					b.results[i] = Result{Seq: b.startSeq + i, Input: in, Fixed: res.Tuple, Chase: res}
				}
				if testWorkerHook != nil {
					testWorkerHook(b.startSeq)
				}
				select {
				case results <- b:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Stage 3 — resequencer: restore input order through a ring sized
	// by the window, release admission tokens, feed the sink, recycle
	// the batch. Out-of-order completions are pure index stores: chunk
	// k lands in slot k mod nChunks, and the admission bound makes
	// collisions structurally impossible (two pending chunks nChunks
	// apart would need more than window tuples in flight).
	stats := Stats{Workers: workers}
	ring := make([]*batch, nChunks)
	pending := 0
	next := 0
	emit := func(b *batch) bool {
		for i := 0; i < b.n; i++ {
			r := &b.results[i]
			stats.Tuples++
			if r.Chase.AllValidated() && len(r.Chase.Conflicts) == 0 {
				stats.FullyValidated++
			}
			if len(r.Chase.Conflicts) > 0 {
				stats.WithConflicts++
			}
			stats.CellsRewritten += r.Chase.RewriteCount()
			if err := sink.Write(r); err != nil {
				fail(fmt.Errorf("pipeline: writing tuple %d: %w", r.Seq, err))
				return false
			}
			<-inflight
		}
		next = b.startSeq + b.n
		// Recycle. free's capacity covers every batch ever created, so
		// this send cannot block; a plain send keeps the invariant
		// self-enforcing instead of silently dropping the batch.
		free <- b
		return true
	}
loop:
	for b := range results {
		if b.startSeq != next {
			ring[(b.startSeq/chunkSize)%nChunks] = b
			pending++
			continue
		}
		if !emit(b) {
			break loop
		}
		for pending > 0 {
			nb := ring[(next/chunkSize)%nChunks]
			if nb == nil || nb.startSeq != next {
				break
			}
			ring[(next/chunkSize)%nChunks] = nil
			pending--
			if !emit(nb) {
				break loop
			}
		}
	}
	// Seal the error slot before reading it: every in-pipeline failure
	// is already ordered before this point (fail → close(done) →
	// worker exit → close(results) → loop end), but the ctx watcher
	// runs unsynchronized — claiming the Once here means a
	// cancellation that lost the race with a completed run can no
	// longer write.
	errOnce.Do(func() {})
	if runErr != nil {
		return stats, runErr
	}
	if pending > 0 {
		// Unreachable unless a worker died; keep the invariant loud.
		return stats, errors.New("pipeline: results missing from resequencer")
	}
	return stats, nil
}
