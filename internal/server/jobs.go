package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"cerfix/internal/admission"
	"cerfix/internal/core"
	"cerfix/internal/faultfs"
	"cerfix/internal/jobs"
	"cerfix/internal/pipeline"
)

// This file exposes the async batch-repair job subsystem
// (internal/jobs) over HTTP. Where POST /api/fix holds the connection
// open for the whole repair, /api/jobs submits work to a persistent
// queue that survives daemon restarts:
//
//	POST   /api/jobs              submit (inline tuples or server-side file)
//	GET    /api/jobs              list all jobs, oldest first
//	GET    /api/jobs/{id}         one job's lifecycle record
//	GET    /api/jobs/{id}/results stream the JSONL results artifact
//	DELETE /api/jobs/{id}         cancel a queued/running job; purge a
//	                              terminal one (record + artifacts)
//
// The endpoints answer 503 when the daemon runs without a jobs
// directory (cerfixd -jobs-dir).

// AttachJobs enables the /api/jobs endpoints. Call before Handler.
func (s *Server) AttachJobs(m *jobs.Manager) { s.jobs = m }

// SnapshotEngine freezes a consistent engine view under the server
// lock — the jobs manager's per-run snapshot hook.
func (s *Server) SnapshotEngine() *core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.SnapshotEngine()
}

// jobJSON is the wire shape of one job record (the journal's Input
// path stays server-side).
type jobJSON struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Validated []string   `json:"validated"`
	Format    string     `json:"format"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Attempts  int        `json:"attempts"`
	Processed int        `json:"processed"`
	Error     string     `json:"error,omitempty"`
	// PanicStack is the journaled goroutine stack of a recovered
	// runner panic — present only on panic-failed jobs.
	PanicStack string          `json:"panic_stack,omitempty"`
	Stats      *pipeline.Stats `json:"stats,omitempty"`
}

func toJobJSON(j jobs.Job) jobJSON {
	out := jobJSON{
		ID:         j.ID,
		State:      string(j.State),
		Validated:  j.Validated,
		Format:     j.Format,
		Submitted:  j.Submitted,
		Attempts:   j.Attempts,
		Processed:  j.Processed,
		Error:      j.Error,
		PanicStack: j.PanicStack,
		Stats:      j.Stats,
	}
	if !j.Started.IsZero() {
		t := j.Started
		out.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		out.Finished = &t
	}
	return out
}

// jobsEnabled answers 503 jobs_disabled when the subsystem is not
// configured.
func (s *Server) jobsEnabled(w http.ResponseWriter, r *http.Request) bool {
	if s.jobs == nil {
		writeErr(w, r, http.StatusServiceUnavailable, codeJobsDisabled,
			fmt.Errorf("jobs disabled (start the daemon with -jobs-dir)"))
		return false
	}
	return true
}

// jobSubmitRequest is the POST /api/jobs payload: validated plus
// exactly one of tuples (inline) or input_path (server-side file,
// format required; accepted only under the daemon's configured jobs
// input root).
type jobSubmitRequest struct {
	Validated []string            `json:"validated"`
	Tuples    []map[string]string `json:"tuples,omitempty"`
	InputPath string              `json:"input_path,omitempty"`
	Format    string              `json:"format,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	// Memory-pressure shedding, checked before the body is even
	// decoded: a submission is deferrable work, and admitting it under
	// heap pressure only digs the hole deeper. Soft pressure sheds with
	// 429 (come back shortly); hard pressure is the degraded 503.
	if s.memMon != nil {
		switch s.memMon.State() {
		case admission.PressureHard:
			s.shed.memoryDegraded.Inc()
			ms := s.memMon.Status()
			w.Header().Set("Retry-After", strconv.Itoa(int(s.memMon.RetryAfter()/time.Second)))
			writeErr(w, r, http.StatusServiceUnavailable, codeMemoryDegraded,
				fmt.Errorf("heap (%d bytes) past the hard watermark (%d); job submissions suspended", ms.HeapBytes, ms.HardBytes))
			return
		case admission.PressureSoft:
			s.shed.memoryPressure.Inc()
			ms := s.memMon.Status()
			writeShed(w, r, codeMemoryPressure, s.memMon.RetryAfter(),
				fmt.Errorf("heap (%d bytes) past the soft watermark (%d); new jobs shed until pressure recedes", ms.HeapBytes, ms.SoftBytes))
			return
		}
	}
	var req jobSubmitRequest
	if err := decodeBody(r, &req); err != nil {
		writeDecodeErr(w, r, err)
		return
	}
	var (
		job jobs.Job
		err error
	)
	switch {
	case len(req.Tuples) > 0 && req.InputPath != "":
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput,
			fmt.Errorf("give tuples or input_path, not both"))
		return
	case len(req.Tuples) > 0:
		job, err = s.jobs.SubmitInline(req.Validated, req.Tuples)
	case req.InputPath != "":
		job, err = s.jobs.SubmitFile(req.Validated, req.InputPath, req.Format)
	default:
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput,
			fmt.Errorf("tuples or input_path required"))
		return
	}
	if err != nil {
		// A full backlog is load shedding, not failure: 429 with a
		// Retry-After sized to the queue draining through the worker
		// pool at the observed per-job service time. Client-side
		// rejections are 422; a shutting-down queue is 503. Unhealthy
		// persistence — the degraded fast-fail or a fresh transient
		// storage fault — is the typed 503 with a Retry-After, so
		// clients back off instead of hammering a full disk; anything
		// else is a genuine server fault.
		switch {
		case errors.Is(err, jobs.ErrBacklogFull):
			s.shed.backlogFull.Inc()
			st := s.jobs.Stats()
			retry := admission.RetryAfter(st.Queued+st.Running, st.Workers, st.AvgService())
			writeShed(w, r, codeBacklogFull, retry, err)
		case errors.Is(err, jobs.ErrInvalid):
			writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, err)
		case errors.Is(err, jobs.ErrClosed):
			writeErr(w, r, http.StatusServiceUnavailable, codeShuttingDown, err)
		case errors.Is(err, jobs.ErrDegraded), faultfs.Transient(err):
			retry := 5 * time.Second
			if s.persistHealth != nil {
				retry = s.persistHealth.RetryAfter()
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
			writeErr(w, r, http.StatusServiceUnavailable, codePersistenceDegraded, err)
		default:
			writeErr(w, r, http.StatusInternalServerError, codeInternal, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, toJobJSON(job))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	limit, offset, err := pageParams(r, defaultPageLimit)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, codeInvalidArgument, err)
		return
	}
	list := s.jobs.List()
	total := len(list)
	out := make([]jobJSON, 0, limit)
	for i := offset; i < total && len(out) < limit; i++ {
		out = append(out, toJobJSON(list[i]))
	}
	writeJSON(w, http.StatusOK, listPage{Items: out, Total: total, Limit: limit, Offset: offset})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, http.StatusNotFound, codeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(job))
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	id := r.PathValue("id")
	path, err := s.jobs.ResultsPath(id)
	if err != nil {
		if errors.Is(err, jobs.ErrNotFound) {
			writeErr(w, r, http.StatusNotFound, codeNotFound, err)
		} else {
			writeErr(w, r, http.StatusConflict, codeConflict, err)
		}
		return
	}
	// Open before committing headers: a job that failed before
	// creating its artifact must answer 404, not an empty 200.
	f, err := os.Open(path)
	if err != nil {
		writeErr(w, r, http.StatusNotFound, codeNotFound, fmt.Errorf("job %s has no results artifact", id))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Errors past this point only truncate the stream; the status is
	// already committed. The copy loop checks the request context
	// between chunks so a disconnected client stops the stream at the
	// next boundary instead of pumping a large artifact into a dead
	// socket's buffers.
	buf := make([]byte, 32*1024)
	for {
		if r.Context().Err() != nil {
			metaFrom(r).code = "client_disconnect"
			return
		}
		n, rerr := f.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	id := r.PathValue("id")
	job, err := s.jobs.Cancel(id)
	if errors.Is(err, jobs.ErrFinished) {
		// DELETE on a terminal job purges it — record, directory and
		// artifacts — so the persistent queue stays reclaimable.
		if err := s.jobs.Remove(id); err != nil {
			writeErr(w, r, http.StatusConflict, codeConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
		return
	}
	if err != nil {
		if errors.Is(err, jobs.ErrNotFound) {
			writeErr(w, r, http.StatusNotFound, codeNotFound, err)
		} else {
			writeErr(w, r, http.StatusConflict, codeConflict, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(job))
}
