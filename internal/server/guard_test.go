package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cerfix/internal/dataset"
	"cerfix/internal/guard"
	"cerfix/internal/jobs"
)

// This file exercises the runtime guardrails at the HTTP layer: the
// -max-body cap, the per-request deadline, client-disconnect cleanup
// of the sync-fix gate, and heap-watermark shedding of job submits.
// Run with -race: the disconnect test's whole point is that abandoned
// requests leak neither goroutines nor admission tokens.

// guardServer builds a demo server with the given limits.
func guardServer(t *testing.T, l Limits) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(demoSys(t))
	srv.SetLimits(l)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// An over-cap body answers the typed 413 on every decode site, and the
// daemon never buffers the excess; an in-cap request on the same
// server is untouched.
func TestBodyCapReturns413(t *testing.T) {
	_, ts := guardServer(t, Limits{MaxBody: 1024})

	big := []byte(`{"validated":["zip"],"tuples":[{"zip":"` + strings.Repeat("9", 4096) + `"}]}`)
	for _, path := range []string{"/api/v1/fix", "/api/v1/rules", "/api/v1/sessions"} {
		status, body, _ := doRaw(t, "POST", ts.URL+path, big, nil)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status = %d, want 413", path, status)
		}
		if env := decodeEnvelope(t, body); env.Error.Code != codeBodyTooLarge {
			t.Fatalf("%s: code = %q, want %q", path, env.Error.Code, codeBodyTooLarge)
		}
	}

	// Within the cap the request proceeds normally.
	status, _, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != http.StatusOK {
		t.Fatalf("in-cap fix status = %d, want 200", status)
	}
}

// A sync fix running past -request-timeout answers the typed 504; the
// next request on the same server succeeds (the gate slot came back).
func TestRequestDeadlineReturns504(t *testing.T) {
	srv, ts := guardServer(t, Limits{MaxSyncFix: 1, RequestTimeout: 20 * time.Millisecond})
	var slow atomic.Bool
	slow.Store(true)
	srv.syncFixHook = func() {
		if slow.Load() {
			time.Sleep(80 * time.Millisecond) // hold the run past the deadline
		}
	}

	status, body, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, body)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != codeDeadlineExceeded {
		t.Fatalf("code = %q, want %q", env.Error.Code, codeDeadlineExceeded)
	}

	slow.Store(false)
	status, _, _ = doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
	if status != http.StatusOK {
		t.Fatalf("post-timeout fix status = %d, want 200 (gate slot leaked?)", status)
	}
}

// A client that disconnects mid-fix must cancel the pipeline, release
// its sync-gate slot and leave no goroutines behind. The run is parked
// on a chaos stall, so only the disconnect can finish it.
func TestClientDisconnectReleasesGate(t *testing.T) {
	guard.SetChaos(true)
	defer guard.SetChaos(false)

	srv, ts := guardServer(t, Limits{MaxSyncFix: 1})
	_ = srv

	tuple := dataset.DemoInputFig3().Map()
	tuple["zip"] = guard.ChaosStallValue
	payload, _ := json.Marshal(map[string]any{
		"validated": []string{"phn", "type", "item"},
		"tuples":    []map[string]string{tuple},
	})

	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		guard.ArmStalls(1)
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/api/v1/fix", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := http.DefaultClient.Do(req)
			errCh <- err
		}()
		time.Sleep(30 * time.Millisecond) // let the run park on the stall
		cancel()                          // client walks away
		if err := <-errCh; err == nil {
			t.Fatal("cancelled request reported no error")
		}

		// The slot must come back: with MaxSyncFix=1 a follow-up fix can
		// only succeed if the disconnect released the gate.
		deadline := time.Now().Add(5 * time.Second)
		for {
			status, body, _ := doRaw(t, "POST", ts.URL+"/api/v1/fix", fixPayload(), nil)
			if status == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: gate never released: %d %s", round, status, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// No pipeline goroutines may survive the abandoned runs.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Fatalf("goroutines leaked across disconnects: before %d, after %d", before, after)
	}
}

// Heap-watermark shedding over HTTP: soft pressure sheds job submits
// with 429 memory_pressure + Retry-After, hard pressure answers 503
// memory_degraded and shows on /status, and hysteresis recovery
// restores normal admission — all driven by a fake heap sampler and
// deterministic Poll calls.
func TestMemoryPressureShedsJobSubmits(t *testing.T) {
	sys := demoSys(t)
	srv := New(sys)
	mgr, err := jobs.Open(jobs.Config{Dir: t.TempDir(), Schema: sys.InputSchema(), Snapshot: srv.SnapshotEngine})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(context.Background()) })
	srv.AttachJobs(mgr)

	var heap atomic.Uint64
	heap.Store(500)
	mon := guard.NewMemMonitor(guard.MemConfig{
		Soft:   1000,
		Hard:   2000,
		Sample: heap.Load,
	})
	mon.Poll()
	srv.SetMemMonitor(mon)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	submit := func() (int, []byte, http.Header) {
		b, _ := json.Marshal(map[string]any{
			"validated": []string{"zip", "phn", "type", "item"},
			"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
		})
		return doRaw(t, "POST", ts.URL+"/api/v1/jobs", b, nil)
	}

	// Below the watermarks: normal admission.
	if status, body, _ := submit(); status != http.StatusAccepted {
		t.Fatalf("ok-state submit = %d %s", status, body)
	}

	// Past soft: 429 memory_pressure with a Retry-After.
	heap.Store(1500)
	mon.Poll()
	status, body, hdr := submit()
	if status != http.StatusTooManyRequests {
		t.Fatalf("soft-state submit = %d %s, want 429", status, body)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != codeMemoryPressure {
		t.Fatalf("soft code = %q", env.Error.Code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("soft shed has no Retry-After")
	}

	// Past hard: 503 memory_degraded, and /status reports the state.
	heap.Store(2500)
	mon.Poll()
	status, body, hdr = submit()
	if status != http.StatusServiceUnavailable {
		t.Fatalf("hard-state submit = %d %s, want 503", status, body)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != codeMemoryDegraded {
		t.Fatalf("hard code = %q", env.Error.Code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("hard shed has no Retry-After")
	}
	var st struct {
		Admission struct {
			Shed map[string]int64 `json:"shed"`
		} `json:"admission"`
		Guardrails struct {
			Memory *guard.MemStatus `json:"memory"`
		} `json:"guardrails"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/status", nil, 200, &st)
	if st.Guardrails.Memory == nil || st.Guardrails.Memory.State != "hard" {
		t.Fatalf("status guardrails.memory = %+v, want hard", st.Guardrails.Memory)
	}
	if st.Admission.Shed["memory_pressure"] != 1 || st.Admission.Shed["memory_degraded"] != 1 {
		t.Fatalf("shed counters = %v", st.Admission.Shed)
	}

	// Hysteresis recovery: the heap falls, pressure clears, submits
	// flow again.
	heap.Store(100)
	mon.Poll()
	if status, body, _ := submit(); status != http.StatusAccepted {
		t.Fatalf("recovered submit = %d %s, want 202", status, body)
	}
}

// /status surfaces the guardrail configuration even without a memory
// monitor attached.
func TestStatusGuardrailKeys(t *testing.T) {
	_, ts := guardServer(t, Limits{RequestTimeout: 2 * time.Second, MaxBody: 1 << 20})
	var raw map[string]json.RawMessage
	doJSON(t, "GET", ts.URL+"/api/v1/status", nil, 200, &raw)
	var gs map[string]any
	if err := json.Unmarshal(raw["guardrails"], &gs); err != nil {
		t.Fatalf("no guardrails block: %v", err)
	}
	if gs["request_timeout_ms"] != float64(2000) {
		t.Fatalf("request_timeout_ms = %v", gs["request_timeout_ms"])
	}
	if gs["max_body_bytes"] != float64(1<<20) {
		t.Fatalf("max_body_bytes = %v", gs["max_body_bytes"])
	}
	if _, ok := gs["memory"]; ok {
		t.Fatal("memory reported without a monitor")
	}
}

// The streaming results route is exempt from the request deadline: a
// download keeps flowing past -request-timeout.
func TestResultsStreamExemptFromDeadline(t *testing.T) {
	sys := demoSys(t)
	srv := New(sys)
	srv.SetLimits(Limits{RequestTimeout: 30 * time.Millisecond})
	mgr, err := jobs.Open(jobs.Config{Dir: t.TempDir(), Schema: sys.InputSchema(), Snapshot: srv.SnapshotEngine})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(context.Background()) })
	srv.AttachJobs(mgr)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var j jobJSON
	doJSON(t, "POST", ts.URL+"/api/v1/jobs", map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
	}, http.StatusAccepted, &j)
	j = pollJobDone(t, ts.URL, j.ID)
	if j.State != "done" {
		t.Fatalf("job = %+v", j)
	}
	// Fetch the artifact slower than the request deadline.
	time.Sleep(50 * time.Millisecond)
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/results", ts.URL, j.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
}
