package core

import (
	"strings"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/schema"
)

func TestPlanMobileRegion(t *testing.T) {
	sch := dataset.CustSchema()
	rules := dataset.DemoRules().Rules()
	seed := schema.SetOfNames(sch, "zip", "phn", "type", "item")
	steps, complete := Plan(sch, rules, seed, schema.FullSet(sch), typeEq(sch, "2"))
	if !complete {
		t.Fatal("mobile region plan incomplete")
	}
	// φ1–φ3 fire off zip; φ4/φ5 off phn+type. Order follows rule IDs.
	var ids []string
	gives := schema.EmptySet
	for _, s := range steps {
		ids = append(ids, s.RuleID)
		gives = gives.Union(schema.SetOfNames(sch, s.Gives...))
	}
	want := schema.SetOfNames(sch, "AC", "str", "city", "FN", "LN")
	if gives != want {
		t.Fatalf("plan gives %v, want %v", gives.Format(sch), want.Format(sch))
	}
	if ids[0] != "phi1" {
		t.Fatalf("plan order = %v (chase order starts at phi1)", ids)
	}
	// Every step must be enabled by what precedes it.
	cur := seed
	for _, s := range steps {
		needs := schema.SetOfNames(sch, s.Needs...)
		if !cur.ContainsAll(needs) {
			t.Fatalf("step %v fired before its premise was available", s)
		}
		cur = cur.Union(schema.SetOfNames(sch, s.Gives...))
	}
}

func TestPlanMultiHop(t *testing.T) {
	sch := dataset.CustSchema()
	rules := dataset.DemoRules().Rules()
	// Seed {zip, type} in the home cell: φ1 gives AC, which then (with
	// phn missing) cannot unlock φ6 — plan must stop incomplete.
	seed := schema.SetOfNames(sch, "zip", "type")
	steps, complete := Plan(sch, rules, seed, schema.FullSet(sch), typeEq(sch, "1"))
	if complete {
		t.Fatal("plan cannot be complete without phn/item")
	}
	// But φ9 must appear *after* φ1 supplies AC (multi-hop dependency).
	seenPhi1 := false
	for _, s := range steps {
		if s.RuleID == "phi1" {
			seenPhi1 = true
		}
		if s.RuleID == "phi9" && !seenPhi1 {
			t.Fatal("phi9 planned before phi1 supplied AC")
		}
	}
}

func TestPlanStepString(t *testing.T) {
	s := PlanStep{RuleID: "phi1", Needs: []string{"zip"}, Gives: []string{"AC"}}
	if s.String() != "phi1: {zip} => {AC}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestExplainSuggestion(t *testing.T) {
	sch := dataset.CustSchema()
	rules := dataset.DemoRules().Rules()
	validated := schema.SetOfNames(sch, "AC", "phn", "type", "item", "FN", "LN", "city")
	suggestion := schema.SetOfNames(sch, "zip")
	out := ExplainSuggestion(sch, rules, validated, suggestion, typeEq(sch, "2"))
	if !strings.Contains(out, "validate {zip}") {
		t.Fatalf("explanation = %q", out)
	}
	if !strings.Contains(out, "phi2") {
		t.Fatalf("explanation missing phi2 (str fix): %q", out)
	}
	if strings.Contains(out, "does not complete") {
		t.Fatalf("explanation claims incomplete: %q", out)
	}
	// An insufficient suggestion is flagged.
	bad := ExplainSuggestion(sch, rules, schema.EmptySet, schema.SetOfNames(sch, "zip"), typeEq(sch, "2"))
	if !strings.Contains(bad, "does not complete") {
		t.Fatalf("incomplete plan not flagged: %q", bad)
	}
}
