// Package counter provides the one monotonic counter primitive behind
// every cumulative count the status API reports — admission shed
// totals, job-backlog sheds, chase prefilter effectiveness. Before it,
// each site hand-rolled its own atomic and its own JSON snapshot
// shape; one helper keeps the discipline (monotonic, race-free,
// snake_case on the wire) in one place.
package counter

import (
	"strconv"
	"sync/atomic"
)

// Monotonic is a never-decreasing counter safe for concurrent use.
// The zero value is ready; it must not be copied after first use.
type Monotonic struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Monotonic) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative — the counter only moves
// forward. Negative deltas are dropped rather than violating the
// invariant every reader (rate math, status diffs) relies on.
func (c *Monotonic) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Monotonic) Load() int64 { return c.v.Load() }

// MarshalJSON renders the counter as a bare number, so a struct of
// Monotonic fields with snake_case tags marshals exactly like the
// plain-int snapshot structs the status API already uses.
func (c *Monotonic) MarshalJSON() ([]byte, error) {
	return strconv.AppendInt(nil, c.Load(), 10), nil
}

// UnmarshalJSON reads a bare number back into the counter, letting
// clients (and the API tests) decode a status snapshot into the same
// struct shapes the server marshals from.
func (c *Monotonic) UnmarshalJSON(b []byte) error {
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return err
	}
	c.v.Store(n)
	return nil
}
