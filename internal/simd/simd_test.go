package simd

import (
	"math/rand"
	"strings"
	"testing"
)

// The whole suite is differential: every kernel is pinned
// byte-for-byte against its naive scalar definition, under both
// dispatch tables, across adversarial placements — matches at every
// alignment and word-boundary straddle, classifier bytes adjacent to
// borrow-producing neighbors, empty and sub-word inputs.

func refIndexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

func refScanJSON(b []byte) int {
	for i, c := range b {
		if c == '"' || c == '\\' || c < 0x20 || c >= 0x80 {
			return i
		}
	}
	return -1
}

func refHash(s string) uint32 {
	h := uint32(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime
	}
	return h
}

// withTables runs f once per dispatch table, restoring the default.
func withTables(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	defer Reset()
	for _, name := range []string{KernelPortable, KernelNative} {
		if err := Select(name); err != nil {
			t.Fatal(err)
		}
		t.Run(name, f)
	}
}

func TestSelect(t *testing.T) {
	defer Reset()
	if err := Select("avx1024"); err == nil {
		t.Fatal("Select accepted an unknown table")
	}
	if err := Select(KernelPortable); err != nil {
		t.Fatal(err)
	}
	if Active() != KernelPortable {
		t.Fatalf("Active() = %q after selecting portable", Active())
	}
	if err := Select(KernelNative); err != nil {
		t.Fatal(err)
	}
	if Active() == "" {
		t.Fatal("Active() empty for the native table")
	}
}

func TestIndexByteDifferential(t *testing.T) {
	withTables(t, func(t *testing.T) {
		// Exhaustive over short lengths, every needle position, and the
		// borrow-adjacent byte values around each classifier boundary.
		interesting := []byte{0x00, 0x01, 0x1f, 0x20, '"', ',', '\\', '\n', 0x7f, 0x80, 0xff}
		for n := 0; n <= 24; n++ {
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + i%26)
			}
			for _, c := range interesting {
				for pos := 0; pos <= n; pos++ {
					for i := range b {
						b[i] = byte('a' + i%26)
					}
					if pos < n {
						b[pos] = c
					}
					if got, want := IndexByte(b, c), refIndexByte(b, c); got != want {
						t.Fatalf("IndexByte(len=%d, c=%#x at %d) = %d, want %d", n, c, pos, got, want)
					}
				}
			}
		}
		// Randomized, with unaligned subslices so word loads start at
		// every offset.
		rng := rand.New(rand.NewSource(13))
		big := make([]byte, 4096)
		for trial := 0; trial < 2000; trial++ {
			for i := range big {
				big[i] = byte(rng.Intn(256))
			}
			off := rng.Intn(64)
			n := rng.Intn(len(big) - off)
			b := big[off : off+n]
			c := byte(rng.Intn(256))
			if got, want := IndexByte(b, c), refIndexByte(b, c); got != want {
				t.Fatalf("trial %d: IndexByte = %d, want %d", trial, got, want)
			}
		}
	})
}

func TestScanJSONDifferential(t *testing.T) {
	withTables(t, func(t *testing.T) {
		cases := [][]byte{
			nil,
			[]byte(""),
			[]byte("plain ascii with no special bytes at all"),
			[]byte(`quote"inside`),
			[]byte(`esc\ape`),
			[]byte("tab\there"),
			[]byte("ends with quote\""),
			[]byte("\x00leading control"),
			[]byte("exactly8"),
			[]byte("exactly8\""),
			[]byte("seven7s"),
			// Multi-byte UTF-8 straddling the 8-byte word boundary at
			// every offset.
			[]byte("abcdefgé straddle"),
			[]byte("abcdefgh€ straddle"),
			[]byte("abcdefg\xf0\x9f\x98\x80 emoji"),
			[]byte("\xff\xfe invalid"),
			[]byte(strings.Repeat("x", 31) + "\x1f"),
			[]byte(strings.Repeat("x", 32) + "\\"),
		}
		for off := 0; off < 9; off++ {
			pad := []byte(strings.Repeat(".", off))
			for _, c := range cases {
				b := append(append([]byte{}, pad...), c...)
				b = b[off:] // vary the load alignment without changing bytes
				if got, want := ScanJSON(b), refScanJSON(b); got != want {
					t.Fatalf("ScanJSON(%q, off %d) = %d, want %d", b, off, got, want)
				}
			}
		}
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 4000; trial++ {
			n := rng.Intn(80)
			b := make([]byte, n)
			for i := range b {
				// Bias heavily toward plain bytes so specials land at
				// random sparse positions, including none.
				if rng.Intn(12) == 0 {
					b[i] = byte(rng.Intn(256))
				} else {
					b[i] = byte(0x20 + rng.Intn(0x5f))
				}
			}
			if got, want := ScanJSON(b), refScanJSON(b); got != want {
				t.Fatalf("trial %d: ScanJSON(%q) = %d, want %d", trial, b, got, want)
			}
		}
	})
}

func TestHashDifferential(t *testing.T) {
	withTables(t, func(t *testing.T) {
		// Exhaustive over every length 0..64 (covers every wide/tail
		// split) with fixed content, then randomized contents.
		base := strings.Repeat("The quick brown fox jumps over the lazy dog 0123456789!", 2)
		for n := 0; n <= 64; n++ {
			s := base[:n]
			if got, want := Hash(s), refHash(s); got != want {
				t.Fatalf("Hash(len %d) = %#x, want %#x", n, got, want)
			}
			if got, want := HashBytes([]byte(s)), refHash(s); got != want {
				t.Fatalf("HashBytes(len %d) = %#x, want %#x", n, got, want)
			}
		}
		rng := rand.New(rand.NewSource(19))
		for trial := 0; trial < 4000; trial++ {
			n := rng.Intn(100)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Intn(256))
			}
			if got, want := HashBytes(b), refHash(string(b)); got != want {
				t.Fatalf("trial %d: HashBytes = %#x, want %#x", trial, got, want)
			}
			if got, want := Hash(string(b)), refHash(string(b)); got != want {
				t.Fatalf("trial %d: Hash = %#x, want %#x", trial, got, want)
			}
		}
	})
}

func BenchmarkIndexByte(b *testing.B) {
	buf := []byte(strings.Repeat("abcdefghijklmnopqrstuvwxyz012345", 32)) // 1 KiB, no newline
	buf[len(buf)-1] = '\n'
	for _, name := range []string{KernelPortable, KernelNative} {
		b.Run(name, func(b *testing.B) {
			if err := Select(name); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				if IndexByte(buf, '\n') != len(buf)-1 {
					b.Fatal("wrong index")
				}
			}
		})
	}
	Reset()
}

func BenchmarkHash(b *testing.B) {
	s := strings.Repeat("key-material/", 8)
	for _, name := range []string{KernelPortable, KernelNative} {
		b.Run(name, func(b *testing.B) {
			if err := Select(name); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(s)))
			for i := 0; i < b.N; i++ {
				if Hash(s) == 0 {
					b.Fatal("unexpected zero hash")
				}
			}
		})
	}
	Reset()
}
