package dataset

import (
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func TestDemoFixtures(t *testing.T) {
	cust, person := CustSchema(), PersonSchema()
	if cust.Len() != 9 || person.Len() != 10 {
		t.Fatalf("schema widths = %d/%d", cust.Len(), person.Len())
	}
	rules := DemoRules()
	if rules.Len() != 9 {
		t.Fatalf("demo rules = %d", rules.Len())
	}
	if err := rules.Validate(cust, person); err != nil {
		t.Fatal(err)
	}
	rows := DemoMasterRows()
	if len(rows) != 3 {
		t.Fatalf("master rows = %d", len(rows))
	}
	for i, r := range rows {
		if len(r) != person.Len() {
			t.Fatalf("master row %d arity %d", i, len(r))
		}
	}
	if DemoInputExample1().Get("AC") != "020" {
		t.Fatal("Example 1 tuple wrong")
	}
	if DemoInputFig3().Get("FN") != "M." {
		t.Fatal("Fig 3 tuple wrong")
	}
	if DemoGroundTruthFig3().Get("FN") != "Mark" {
		t.Fatal("Fig 3 truth wrong")
	}
}

// The demo configuration must be consistent — this is experiment E1's
// core assertion and guards the fixture against regressions.
func TestDemoConfigurationConsistent(t *testing.T) {
	st, err := MasterStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewEngine(CustSchema(), DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(nil)
	if !rep.Consistent() {
		t.Fatalf("demo configuration inconsistent: %v", rep.Errors())
	}
}

func TestGenerateEntitiesDeterministic(t *testing.T) {
	a := NewCustomerGen(7).GenerateEntities(50)
	b := NewCustomerGen(7).GenerateEntities(50)
	for i := range a {
		if !a[i].Master.Equal(b[i].Master) {
			t.Fatalf("entity %d differs across same-seed runs", i)
		}
	}
	c := NewCustomerGen(8).GenerateEntities(50)
	same := 0
	for i := range a {
		if a[i].Master.Equal(c[i].Master) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical entities")
	}
}

func TestGeneratedEntitiesKeysUnique(t *testing.T) {
	entities := NewCustomerGen(3).GenerateEntities(500)
	zips := make(map[value.V]bool)
	mphns := make(map[value.V]bool)
	acHome := make(map[string]bool)
	acCity := make(map[value.V]value.V)
	for _, e := range entities {
		m := e.Master
		if zips[m[7]] {
			t.Fatalf("duplicate zip %s", m[7])
		}
		zips[m[7]] = true
		if mphns[m[4]] {
			t.Fatalf("duplicate mobile %s", m[4])
		}
		mphns[m[4]] = true
		key := string(m[2]) + "|" + string(m[3])
		if acHome[key] {
			t.Fatalf("duplicate (AC, Hphn) %s", key)
		}
		acHome[key] = true
		if prev, ok := acCity[m[2]]; ok && prev != m[6] {
			t.Fatalf("AC %s maps to cities %s and %s", m[2], prev, m[6])
		}
		acCity[m[2]] = m[6]
	}
}

// The generated master data keeps the demo rule set consistent at
// scale (error-severity issues only; cross-entity warnings allowed).
func TestGeneratedMasterConsistentWithDemoRules(t *testing.T) {
	entities := NewCustomerGen(11).GenerateEntities(200)
	st, err := MasterStore(entities)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(CustSchema(), DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(&core.ConsistencyOptions{MaxProbeTuples: 10})
	if !rep.Consistent() {
		t.Fatalf("generated master inconsistent: %v", rep.Errors())
	}
}

func TestCleanInputMatchesEntity(t *testing.T) {
	g := NewCustomerGen(5)
	entities := g.GenerateEntities(20)
	for _, e := range entities {
		in := g.CleanInput(e)
		if in.Get("FN") != e.Master[0] || in.Get("zip") != e.Master[7] {
			t.Fatalf("clean input drifted from entity: %v vs %v", in, e.Master)
		}
		switch in.Get("type") {
		case "1":
			if in.Get("phn") != e.Master[3] {
				t.Fatal("home phone mismatch")
			}
		case "2":
			if in.Get("phn") != e.Master[4] {
				t.Fatal("mobile phone mismatch")
			}
		default:
			t.Fatalf("bad type %q", in.Get("type"))
		}
	}
}

func TestGenerateWorkload(t *testing.T) {
	g := NewCustomerGen(13)
	w, err := g.GenerateWorkload(50, 200, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Truth) != 200 || len(w.Dirty) != 200 {
		t.Fatalf("workload sizes %d/%d", len(w.Truth), len(w.Dirty))
	}
	if w.Store.Len() != 50 {
		t.Fatalf("master size %d", w.Store.Len())
	}
	// Error cells roughly match rate * cells (30% of 1800).
	if w.ErrorCells < 350 || w.ErrorCells > 750 {
		t.Fatalf("ErrorCells = %d, expected around 540", w.ErrorCells)
	}
	// Dirty/truth aligned and genuinely different somewhere.
	diffs := 0
	for i := range w.Truth {
		diffs += len(w.Truth[i].DiffAttrs(w.Dirty[i]))
	}
	if diffs != w.ErrorCells {
		t.Fatalf("diff cells %d != ErrorCells %d", diffs, w.ErrorCells)
	}
}

func TestNoiseRateZeroAndOne(t *testing.T) {
	g := NewCustomerGen(17)
	entities := g.GenerateEntities(5)
	truth := g.CleanInput(entities[0])
	clean := NewNoise(1, 0)
	d, nerr := clean.Dirty(truth, nil)
	if nerr != 0 || !d.Equal(truth) {
		t.Fatal("rate 0 produced noise")
	}
	heavy := NewNoise(1, 1)
	d2, nerr2 := heavy.Dirty(truth, nil)
	if nerr2 != truth.Schema.Len() {
		t.Fatalf("rate 1 dirtied %d/%d cells", nerr2, truth.Schema.Len())
	}
	if d2.Equal(truth) {
		t.Fatal("rate 1 left tuple clean")
	}
}

func TestNoiseProtectedAttrs(t *testing.T) {
	g := NewCustomerGen(19)
	truth := g.CleanInput(g.GenerateEntities(1)[0])
	n := NewNoise(1, 1)
	n.Protected = []string{"zip", "type"}
	d, _ := n.Dirty(truth, nil)
	if d.Get("zip") != truth.Get("zip") || d.Get("type") != truth.Get("type") {
		t.Fatal("protected attribute dirtied")
	}
}

func TestNoiseKindsBehave(t *testing.T) {
	n := NewNoise(23, 1)
	sch := schema.MustNew("T", schema.Str("a"))
	mk := func(v string) *schema.Tuple { return schema.MustTuple(sch, value.V(v)) }
	// Abbreviate.
	n.Kinds = []NoiseKind{NoiseAbbreviate}
	d, _ := n.Dirty(mk("Mark"), nil)
	if d.Get("a") != "M." {
		t.Fatalf("abbreviate = %q", d.Get("a"))
	}
	// Null.
	n.Kinds = []NoiseKind{NoiseNull}
	d, _ = n.Dirty(mk("Mark"), nil)
	if !d.Get("a").IsNull() {
		t.Fatalf("null = %q", d.Get("a"))
	}
	// Case.
	n.Kinds = []NoiseKind{NoiseCase}
	d, _ = n.Dirty(mk("Elm St"), nil)
	if d.Get("a") != "elm st" {
		t.Fatalf("case = %q", d.Get("a"))
	}
	// Wrong entity pulls from the pool.
	n.Kinds = []NoiseKind{NoiseWrongEntity}
	pool := []*schema.Tuple{mk("Donor")}
	d, _ = n.Dirty(mk("Mark"), pool)
	if d.Get("a") != "Donor" {
		t.Fatalf("wrong-entity = %q", d.Get("a"))
	}
	// Transpose changes adjacent chars.
	n.Kinds = []NoiseKind{NoiseTranspose}
	d, _ = n.Dirty(mk("12"), nil)
	if d.Get("a") != "21" {
		t.Fatalf("transpose = %q", d.Get("a"))
	}
	// Typo on digits stays a digit.
	n.Kinds = []NoiseKind{NoiseTypo}
	d, _ = n.Dirty(mk("5"), nil)
	got := string(d.Get("a"))
	if len(got) != 1 || got[0] < '0' || got[0] > '9' || got == "5" {
		t.Fatalf("digit typo = %q", got)
	}
}

func TestNoiseKindStrings(t *testing.T) {
	for _, k := range AllNoiseKinds {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestHospGenerator(t *testing.T) {
	g := NewHospGen(29)
	rows := g.GenerateMasterRows(40)
	if len(rows) < 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Functional structure: prov -> hospital, zip -> city/state,
	// phone -> zip, mcode -> mname.
	provH := map[value.V]value.V{}
	zipCity := map[value.V]value.V{}
	phoneZip := map[value.V]value.V{}
	codeName := map[value.V]value.V{}
	for _, r := range rows {
		checkFD := func(m map[value.V]value.V, k, v value.V, label string) {
			if prev, ok := m[k]; ok && prev != v {
				t.Fatalf("%s violated: %s -> %s and %s", label, k, prev, v)
			}
			m[k] = v
		}
		checkFD(provH, r[0], r[1], "prov->hospital")
		checkFD(zipCity, r[5], r[3], "zip->city")
		checkFD(phoneZip, r[7], r[5], "phone->zip")
		checkFD(codeName, r[8], r[9], "mcode->mname")
	}
}

func TestHospRulesConsistent(t *testing.T) {
	g := NewHospGen(31)
	w, err := g.GenerateWorkload(30, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(HospSchema(), HospRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(&core.ConsistencyOptions{MaxProbeTuples: 5})
	if !rep.Consistent() {
		t.Fatalf("HOSP rules inconsistent: %v", rep.Errors())
	}
}

func TestHospWorkload(t *testing.T) {
	g := NewHospGen(37)
	w, err := g.GenerateWorkload(20, 100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Dirty) != 100 || len(w.Truth) != 100 {
		t.Fatalf("sizes %d/%d", len(w.Dirty), len(w.Truth))
	}
	if w.ErrorCells == 0 {
		t.Fatal("no errors injected")
	}
	if w.Store.Len() == 0 {
		t.Fatal("empty master")
	}
}

func TestDblpGeneratorStructure(t *testing.T) {
	g := NewDblpGen(51)
	rows := g.GenerateMasterRows(80)
	if len(rows) != 80 {
		t.Fatalf("rows = %d", len(rows))
	}
	keyTitle := map[value.V]value.V{}
	titleYearKey := map[string]value.V{}
	venueFull := map[value.V]value.V{}
	for _, r := range rows {
		if prev, ok := keyTitle[r[0]]; ok && prev != r[1] {
			t.Fatalf("key -> title violated at %s", r[0])
		}
		keyTitle[r[0]] = r[1]
		tk := string(r[1]) + "|" + string(r[5])
		if prev, ok := titleYearKey[tk]; ok && prev != r[0] {
			t.Fatalf("title,year -> key violated at %s", tk)
		}
		titleYearKey[tk] = r[0]
		if prev, ok := venueFull[r[3]]; ok && prev != r[4] {
			t.Fatalf("venue -> vfull violated at %s", r[3])
		}
		venueFull[r[3]] = r[4]
	}
}

func TestDblpRulesConsistent(t *testing.T) {
	g := NewDblpGen(53)
	w, err := g.GenerateWorkload(40, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(DblpSchema(), DblpRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(&core.ConsistencyOptions{MaxProbeTuples: 5})
	if !rep.Consistent() {
		t.Fatalf("DBLP rules inconsistent: %v", rep.Errors())
	}
}

// Citation cleaning end to end: validating (title, year) identifies
// the publication via d6 and the key then fixes everything else.
func TestDblpCitationFix(t *testing.T) {
	g := NewDblpGen(57)
	w, err := g.GenerateWorkload(40, 30, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(DblpSchema(), DblpRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	sch := DblpSchema()
	for i := range w.Dirty {
		dirty := w.Dirty[i].Clone()
		dirty.Set("title", w.Truth[i].Get("title"))
		dirty.Set("year", w.Truth[i].Get("year"))
		res := e.Chase(dirty, schema.SetOfNames(sch, "title", "year"))
		if !res.Tuple.Equal(w.Truth[i]) {
			t.Fatalf("tuple %d: %v != %v", i, res.Tuple, w.Truth[i])
		}
		if !res.AllValidated() || len(res.Conflicts) != 0 {
			t.Fatalf("tuple %d incomplete or conflicted", i)
		}
	}
}
