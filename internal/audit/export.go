package audit

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cerfix/internal/core"
	"cerfix/internal/value"
)

// valueOf converts a CSV cell back into a value.
func valueOf(s string) value.V { return value.V(s) }

// This file implements audit-log export: "statistics about the changes
// can be retrieved upon users' requests" (paper §2) — including as a
// flat file for downstream quality dashboards.

// csvHeader is the exported column set.
var csvHeader = []string{"seq", "tuple_id", "attr", "old", "new", "source", "rule_id", "master_id", "round"}

// WriteCSV exports every record in sequence order.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("audit: writing header: %w", err)
	}
	for _, r := range l.All() {
		rec := []string{
			strconv.Itoa(r.Seq),
			strconv.FormatInt(r.TupleID, 10),
			r.Attr,
			string(r.Old),
			string(r.New),
			r.Source.String(),
			r.RuleID,
			strconv.FormatInt(r.MasterID, 10),
			strconv.Itoa(r.Round),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("audit: writing record %d: %w", r.Seq, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports records previously written by WriteCSV, appending
// them with fresh sequence numbers (the log is append-only; original
// sequence order is preserved by file order).
func (l *Log) ReadCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("audit: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return fmt.Errorf("audit: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("audit: line %d: %w", line, err)
		}
		tupleID, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return fmt.Errorf("audit: line %d: bad tuple id %q", line, rec[1])
		}
		masterID, err := strconv.ParseInt(rec[7], 10, 64)
		if err != nil {
			return fmt.Errorf("audit: line %d: bad master id %q", line, rec[7])
		}
		round, err := strconv.Atoi(rec[8])
		if err != nil {
			return fmt.Errorf("audit: line %d: bad round %q", line, rec[8])
		}
		src := core.SourceUser
		if rec[5] == core.SourceRule.String() {
			src = core.SourceRule
		}
		l.mu.Lock()
		l.records = append(l.records, Record{
			Seq:      l.nextSeq,
			TupleID:  tupleID,
			Attr:     rec[2],
			Old:      valueOf(rec[3]),
			New:      valueOf(rec[4]),
			Source:   src,
			RuleID:   rec[6],
			MasterID: masterID,
			Round:    round,
		})
		l.nextSeq++
		l.mu.Unlock()
	}
}
