package pattern

import (
	"sort"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file implements the symbolic reasoning used by the rule engine's
// static analysis: joint satisfiability of patterns (needed to decide
// whether two editing rules can apply to the same input tuple) and
// negation-aware cell enumeration for the region finder.
//
// The condition language is interval+membership over totally ordered
// domains, so satisfiability of a conjunction decomposes per attribute:
// a conjunction is satisfiable iff for every attribute the induced
// {interval, must-equal set, must-differ set} admits at least one value.
// We conservatively treat the underlying domains as infinite: a
// constraint set consisting only of inequalities (!=) is always
// satisfiable, and an open interval (lo, hi) is considered non-empty
// whenever lo < hi for float/string domains and when it contains an
// integer for int domains. This errs on the side of "satisfiable",
// which keeps the consistency checker sound (it may report a potential
// conflict that no real tuple triggers, never the reverse).

// attrConstraint accumulates the per-attribute view of a conjunction.
type attrConstraint struct {
	domain value.Domain
	// eq is the forced value if any (OpEq or singleton OpIn chains).
	eq    *value.V
	ne    []value.V // excluded values
	allow []value.V // nil = no IN restriction; else allowed set (intersection of INs)
	// interval bounds; nil = unbounded.
	lo, hi         *value.V
	loOpen, hiOpen bool
}

func newAttrConstraint(d value.Domain) *attrConstraint {
	return &attrConstraint{domain: d}
}

// add narrows the constraint with one condition; returns false when the
// constraint becomes syntactically unsatisfiable right away.
func (a *attrConstraint) add(c Condition) bool {
	switch c.Op {
	case OpAny:
		return true
	case OpEq:
		if a.eq != nil && !value.Equal(*a.eq, c.Const, a.domain) {
			return false
		}
		v := c.Const
		a.eq = &v
		return true
	case OpNe:
		a.ne = append(a.ne, c.Const)
		return true
	case OpIn:
		if a.allow == nil {
			a.allow = append([]value.V(nil), c.Set...)
			return len(a.allow) > 0
		}
		var inter []value.V
		for _, v := range a.allow {
			for _, w := range c.Set {
				if value.Equal(v, w, a.domain) {
					inter = append(inter, v)
					break
				}
			}
		}
		a.allow = inter
		return len(a.allow) > 0
	case OpLt:
		return a.upper(c.Const, true)
	case OpLe:
		return a.upper(c.Const, false)
	case OpGt:
		return a.lower(c.Const, true)
	case OpGe:
		return a.lower(c.Const, false)
	default:
		return false
	}
}

func (a *attrConstraint) upper(v value.V, open bool) bool {
	if a.hi == nil || value.Compare(v, *a.hi, a.domain) < 0 ||
		(value.Compare(v, *a.hi, a.domain) == 0 && open && !a.hiOpen) {
		a.hi = &v
		a.hiOpen = open
	}
	return true
}

func (a *attrConstraint) lower(v value.V, open bool) bool {
	if a.lo == nil || value.Compare(v, *a.lo, a.domain) > 0 ||
		(value.Compare(v, *a.lo, a.domain) == 0 && open && !a.loOpen) {
		a.lo = &v
		a.loOpen = open
	}
	return true
}

// inInterval reports whether v lies within the accumulated bounds.
func (a *attrConstraint) inInterval(v value.V) bool {
	if a.lo != nil {
		c := value.Compare(v, *a.lo, a.domain)
		if c < 0 || (c == 0 && a.loOpen) {
			return false
		}
	}
	if a.hi != nil {
		c := value.Compare(v, *a.hi, a.domain)
		if c > 0 || (c == 0 && a.hiOpen) {
			return false
		}
	}
	return true
}

// satisfiable decides whether at least one value meets the accumulated
// constraints, under the infinite-domain convention described above.
func (a *attrConstraint) satisfiable() bool {
	excluded := func(v value.V) bool {
		for _, n := range a.ne {
			if value.Equal(v, n, a.domain) {
				return true
			}
		}
		return false
	}
	if a.eq != nil {
		if excluded(*a.eq) || !a.inInterval(*a.eq) {
			return false
		}
		if a.allow != nil {
			for _, v := range a.allow {
				if value.Equal(v, *a.eq, a.domain) {
					return true
				}
			}
			return false
		}
		return true
	}
	if a.allow != nil {
		for _, v := range a.allow {
			if !excluded(v) && a.inInterval(v) {
				return true
			}
		}
		return false
	}
	// Pure interval + exclusions over an (assumed) infinite domain:
	// an interval with lo < hi, or half-open/unbounded, always has
	// room beyond finitely many exclusions. Only a degenerate point
	// interval can be emptied by an exclusion.
	if a.lo != nil && a.hi != nil {
		c := value.Compare(*a.lo, *a.hi, a.domain)
		if c > 0 {
			return false
		}
		if c == 0 {
			if a.loOpen || a.hiOpen {
				return false
			}
			return !excluded(*a.lo)
		}
	}
	return true
}

// Satisfiable reports whether some tuple over sch can match p, i.e. the
// conjunction is per-attribute consistent.
func Satisfiable(p Pattern, sch *schema.Schema) bool {
	return conjunctionSatisfiable(p.Conds, sch)
}

// JointlySatisfiable reports whether some tuple over sch can match both
// p and q simultaneously. This is the key primitive of the pairwise
// rule-consistency check: two rules can only conflict on inputs
// matching both their patterns.
func JointlySatisfiable(p, q Pattern, sch *schema.Schema) bool {
	conds := make([]Condition, 0, len(p.Conds)+len(q.Conds))
	conds = append(conds, p.Conds...)
	conds = append(conds, q.Conds...)
	return conjunctionSatisfiable(conds, sch)
}

func conjunctionSatisfiable(conds []Condition, sch *schema.Schema) bool {
	byAttr := make(map[string]*attrConstraint)
	var order []string
	for _, c := range conds {
		a, ok := byAttr[c.Attr]
		if !ok {
			a = newAttrConstraint(sch.Domain(c.Attr))
			byAttr[c.Attr] = a
			order = append(order, c.Attr)
		}
		if !a.add(c) {
			return false
		}
	}
	sort.Strings(order)
	for _, attr := range order {
		if !byAttr[attr].satisfiable() {
			return false
		}
	}
	return true
}

// Negate returns patterns whose disjunction is the complement of p
// (De Morgan over the conjunction: one negated condition per branch).
// Wildcard-only patterns have an empty complement. Used by the region
// finder to enumerate pattern cells with explicit "pattern does not
// hold" branches.
func Negate(p Pattern) []Pattern {
	var out []Pattern
	for _, c := range p.Conds {
		if neg, ok := negateCondition(c); ok {
			out = append(out, NewPattern(neg...))
		}
	}
	return out
}

func negateCondition(c Condition) ([]Condition, bool) {
	switch c.Op {
	case OpAny:
		return nil, false
	case OpEq:
		return []Condition{Ne(c.Attr, c.Const)}, true
	case OpNe:
		return []Condition{Eq(c.Attr, c.Const)}, true
	case OpLt:
		return []Condition{Ge(c.Attr, c.Const)}, true
	case OpLe:
		return []Condition{Gt(c.Attr, c.Const)}, true
	case OpGt:
		return []Condition{Le(c.Attr, c.Const)}, true
	case OpGe:
		return []Condition{Lt(c.Attr, c.Const)}, true
	case OpIn:
		// not-in {a,b} = a conjunction of inequalities.
		conds := make([]Condition, len(c.Set))
		for i, v := range c.Set {
			conds[i] = Ne(c.Attr, v)
		}
		return conds, true
	default:
		return nil, false
	}
}

// Tableau is an ordered set of pattern tuples over a shared attribute
// list Z — the Tc component of a certain region. A tuple "matches the
// tableau" when it matches at least one row (disjunction of rows).
type Tableau struct {
	// Z lists the attributes the tableau speaks about, in a canonical
	// (sorted) order.
	Z []string
	// Rows are the pattern tuples; each row's conditions mention only
	// attributes in Z.
	Rows []Pattern
}

// NewTableau builds a tableau over attrs (copied, sorted).
func NewTableau(attrs []string) *Tableau {
	z := append([]string(nil), attrs...)
	sort.Strings(z)
	return &Tableau{Z: z}
}

// AddRow appends a row after checking its scope is within Z. Duplicate
// rows (same string form) are dropped.
func (tb *Tableau) AddRow(p Pattern) bool {
	for _, a := range p.Attrs() {
		if !contains(tb.Z, a) {
			return false
		}
	}
	key := p.String()
	for _, r := range tb.Rows {
		if r.String() == key {
			return true
		}
	}
	tb.Rows = append(tb.Rows, p)
	return true
}

// Matches reports whether t matches at least one row. An empty tableau
// matches nothing (no guarantee rows — no coverage); a tableau
// containing an empty pattern row matches everything.
func (tb *Tableau) Matches(t *schema.Tuple) bool {
	for _, r := range tb.Rows {
		if r.Matches(t) {
			return true
		}
	}
	return false
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
