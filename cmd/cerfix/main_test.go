package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cerfix"
	"cerfix/internal/dataset"
)

func TestParseSchemaSpec(t *testing.T) {
	sch, err := parseSchemaSpec("CUST:FN, LN ,AC")
	if err != nil {
		t.Fatal(err)
	}
	if sch.Name() != "CUST" || sch.Len() != 3 || sch.Attr(1).Name != "LN" {
		t.Fatalf("schema = %v", sch)
	}
	for _, bad := range []string{"", "noColon", ":attrs", "N:"} {
		if _, err := parseSchemaSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParsePairs(t *testing.T) {
	m, err := parsePairs("a=1; b = two ;c=3")
	if err != nil {
		t.Fatal(err)
	}
	if m["a"] != "1" || m["b"] != "two" || m["c"] != "3" {
		t.Fatalf("pairs = %v", m)
	}
	for _, bad := range []string{"", "  ;  ", "novalue"} {
		if _, err := parsePairs(bad); err == nil {
			t.Errorf("pairs %q accepted", bad)
		}
	}
}

// writeCSV materializes header + rows as a CSV fixture.
func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// writeDemoFiles materializes the demo configuration for the file-based
// subcommands.
func writeDemoFiles(t *testing.T) (dir string, c config) {
	t.Helper()
	dir = t.TempDir()
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte(dataset.DemoRulesDSL), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	masterCSV := filepath.Join(dir, "master.csv")
	if err := sys.Master().Table().SaveCSVFile(masterCSV); err != nil {
		t.Fatal(err)
	}
	c = config{
		inputSpec:  "CUST:FN,LN,AC,phn,type,str,city,zip,item",
		masterSpec: "PERSON:FN,LN,AC,Hphn,Mphn,str,city,zip,DOB,gender",
		rulesPath:  rules,
		masterPath: masterCSV,
	}
	return dir, c
}

func TestBuildSystem(t *testing.T) {
	_, c := writeDemoFiles(t)
	sys, err := buildSystem(&c)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Master().Len() != 3 || sys.RuleSet().Len() != 9 {
		t.Fatalf("system = %d master, %d rules", sys.Master().Len(), sys.RuleSet().Len())
	}
	// Missing required flags.
	if _, err := buildSystem(&config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := c
	bad.rulesPath = filepath.Join(t.TempDir(), "nope.txt")
	if _, err := buildSystem(&bad); err == nil {
		t.Fatal("missing rules file accepted")
	}
}

func TestCmdCheckAndRegions(t *testing.T) {
	_, c := writeDemoFiles(t)
	args := []string{
		"-input", c.inputSpec, "-master-schema", c.masterSpec,
		"-rules", c.rulesPath, "-master", c.masterPath,
	}
	if err := cmdCheck(args); err != nil {
		t.Fatal(err)
	}
	if err := cmdRegions(append(args, "-k", "2")); err != nil {
		t.Fatal(err)
	}
}

func TestCmdFix(t *testing.T) {
	dir, c := writeDemoFiles(t)
	// Dirty CSV: the Example 1 tuple.
	dirtyCSV := filepath.Join(dir, "dirty.csv")
	rows := [][]string{dataset.DemoInputExample1().Vals.Strings()}
	if err := writeCSV(dirtyCSV, dataset.CustSchema().AttrNames(), rows); err != nil {
		t.Fatal(err)
	}
	outCSV := filepath.Join(dir, "fixed.csv")
	args := []string{
		"-input", c.inputSpec, "-master-schema", c.masterSpec,
		"-rules", c.rulesPath, "-master", c.masterPath,
		"-data", dirtyCSV, "-validated", "zip", "-out", outCSV,
	}
	if err := cmdFix(args); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "131") {
		t.Fatalf("fixed AC missing from output:\n%s", out)
	}
	// Missing -data/-validated.
	if err := cmdFix([]string{
		"-input", c.inputSpec, "-master-schema", c.masterSpec,
		"-rules", c.rulesPath, "-master", c.masterPath,
	}); err == nil {
		t.Fatal("missing -data accepted")
	}
}

func TestCmdDemo(t *testing.T) {
	if err := cmdDemo(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdDiscover(t *testing.T) {
	dir, _ := writeDemoFiles(t)
	args := []string{
		"-schema", "PERSON:FN,LN,AC,Hphn,Mphn,str,city,zip,DOB,gender",
		"-data", filepath.Join(dir, "master.csv"),
		"-max-lhs", "1", "-min-support", "1",
	}
	if err := cmdDiscover(args); err != nil {
		t.Fatal(err)
	}
	if err := cmdDiscover(nil); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := cmdDiscover([]string{"-schema", "bad", "-data", "x.csv"}); err == nil {
		t.Fatal("bad schema accepted")
	}
	if err := cmdDiscover([]string{
		"-schema", "R:a,b", "-data", filepath.Join(t.TempDir(), "missing.csv"),
	}); err == nil {
		t.Fatal("missing data accepted")
	}
}

// Drive the interactive monitor through piped files: enter the Fig. 3
// tuple, validate the user's own choice, then accept the suggestion.
func TestRunInteractive(t *testing.T) {
	_, c := writeDemoFiles(t)
	sys, err := buildSystem(&c)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.txt")
	outPath := filepath.Join(dir, "out.txt")
	script := "FN=M.;LN=Smith;AC=201;phn=075568485;type=2;str=Baker Street;city=Lon;zip=NW1 6XE;item=DVD\n" +
		"AC=201;phn=075568485;type=2;item=DVD\n" +
		"\n" // empty line: accept the zip suggestion as entered
	if err := os.WriteFile(inPath, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := os.Open(inPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := runInteractive(sys, in, out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(got)
	for _, want := range []string{
		`fixed FN: "M." -> "Mark"`,
		"suggested to validate: zip",
		"certain: true",
		"FN=Mark",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("interactive output missing %q:\n%s", want, text)
		}
	}
}
