package textutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGBoolExtremes(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %v outside tolerance", frac)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first outputs")
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(21)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatalf("Perm missing elements: %v", p)
	}
}

func TestPickAndShuffle(t *testing.T) {
	r := NewRNG(2)
	items := []string{"a", "b", "c"}
	for i := 0; i < 50; i++ {
		v := Pick(r, items)
		if v != "a" && v != "b" && v != "c" {
			t.Fatalf("Pick returned %q", v)
		}
	}
	s := []int{1, 2, 3, 4, 5}
	Shuffle(r, s)
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("Shuffle lost elements: %v", s)
	}
}

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Edi", "Ldn", 2},
		{"M.", "Mark", 3},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeSpace(t *testing.T) {
	cases := map[string]string{
		"  501   Elm  St ": "501 Elm St",
		"a\tb\nc":          "a b c",
		"":                 "",
		"x":                "x",
	}
	for in, want := range cases {
		if got := NormalizeSpace(in); got != want {
			t.Errorf("NormalizeSpace(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsDigits(t *testing.T) {
	if !IsDigits("0791724850") {
		t.Error("digits rejected")
	}
	for _, bad := range []string{"", "12a", " 1", "1.2", "-1"} {
		if IsDigits(bad) {
			t.Errorf("IsDigits(%q) = true", bad)
		}
	}
}

func TestTitleCase(t *testing.T) {
	if got := TitleCase("eLm sTreet"); got != "Elm Street" {
		t.Errorf("TitleCase = %q", got)
	}
	if got := TitleCase("a"); got != "A" {
		t.Errorf("TitleCase single = %q", got)
	}
}

func TestPadding(t *testing.T) {
	if got := PadRight("ab", 5); got != "ab   " {
		t.Errorf("PadRight = %q", got)
	}
	if got := PadLeft("ab", 5); got != "   ab" {
		t.Errorf("PadLeft = %q", got)
	}
	if got := PadRight("abcdef", 3); got != "abcdef" {
		t.Errorf("PadRight overflow = %q", got)
	}
	if got := PadLeft("abcdef", 3); got != "abcdef" {
		t.Errorf("PadLeft overflow = %q", got)
	}
}

func TestTextTable(t *testing.T) {
	tbl := NewTextTable("name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRowf("beta", 2.5)
	tbl.AddRow("gamma") // short row
	out := tbl.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator width mismatch:\n%s", out)
	}
}
