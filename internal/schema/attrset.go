package schema

import (
	"math/bits"
	"sort"
	"strings"
)

// AttrSet is a set of attribute positions of a single schema, packed
// into a 64-bit bitset (MaxAttrs bounds schema width). It represents
// the "validated region" of a tuple during monitoring and the Z
// component of certain regions.
type AttrSet uint64

// EmptySet is the set with no attributes.
const EmptySet AttrSet = 0

// SetOf builds a set from positions.
func SetOf(positions ...int) AttrSet {
	var s AttrSet
	for _, p := range positions {
		s |= 1 << uint(p)
	}
	return s
}

// SetOfNames builds a set from attribute names resolved against sch.
// Unknown names are ignored (callers validate separately where it
// matters).
func SetOfNames(sch *Schema, names ...string) AttrSet {
	var s AttrSet
	for _, n := range names {
		if i, ok := sch.Index(n); ok {
			s |= 1 << uint(i)
		}
	}
	return s
}

// FullSet returns the set containing every attribute of sch.
func FullSet(sch *Schema) AttrSet {
	if sch.Len() >= MaxAttrs {
		return ^AttrSet(0)
	}
	return (1 << uint(sch.Len())) - 1
}

// Has reports membership of position p.
func (s AttrSet) Has(p int) bool { return s&(1<<uint(p)) != 0 }

// With returns s plus position p.
func (s AttrSet) With(p int) AttrSet { return s | 1<<uint(p) }

// Without returns s minus position p.
func (s AttrSet) Without(p int) AttrSet { return s &^ (1 << uint(p)) }

// Union returns the union of both sets.
func (s AttrSet) Union(o AttrSet) AttrSet { return s | o }

// Intersect returns the intersection.
func (s AttrSet) Intersect(o AttrSet) AttrSet { return s & o }

// Minus returns s with o's members removed.
func (s AttrSet) Minus(o AttrSet) AttrSet { return s &^ o }

// ContainsAll reports whether every member of o is in s.
func (s AttrSet) ContainsAll(o AttrSet) bool { return o&^s == 0 }

// IsEmpty reports whether the set has no members.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// Count returns the cardinality.
func (s AttrSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Positions lists the member positions in ascending order.
func (s AttrSet) Positions() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		p := bits.TrailingZeros64(v)
		out = append(out, p)
		v &^= 1 << uint(p)
	}
	return out
}

// Names resolves member positions to attribute names of sch, in schema
// order.
func (s AttrSet) Names(sch *Schema) []string {
	ps := s.Positions()
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		if p < sch.Len() {
			out = append(out, sch.Attr(p).Name)
		}
	}
	return out
}

// SortedNames is Names sorted alphabetically (stable display order for
// suggestions).
func (s AttrSet) SortedNames(sch *Schema) []string {
	out := s.Names(sch)
	sort.Strings(out)
	return out
}

// Format renders "{a, b, c}" using names from sch.
func (s AttrSet) Format(sch *Schema) string {
	return "{" + strings.Join(s.Names(sch), ", ") + "}"
}
