// External test package like alloc_guard_test.go: internal/experiments
// imports cerfix (for the e12 persistence measurements), so in-package
// test files could not import experiments back without a cycle.
package cerfix_test

// Benchmarks, one (or more) per reproduced table/figure — see the
// experiment index in DESIGN.md §4 and the recorded results in
// EXPERIMENTS.md. The heavy lifting lives in internal/experiments so
// cmd/cerfixbench prints the same numbers as these testing.B targets.
//
//	go test -bench=. -benchmem ./...

import (
	"fmt"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/experiments"
	"cerfix/internal/master"
	"cerfix/internal/monitor"
	"cerfix/internal/oracle"
	"cerfix/internal/region"
	"cerfix/internal/schema"
)

// BenchmarkE1ConsistencyCheck measures the Fig. 2 rule analysis: the
// full consistency check (master ambiguity + pairwise witnesses +
// Church–Rosser probes) of φ1–φ9 against the demo master data.
func BenchmarkE1ConsistencyCheck(b *testing.B) {
	eng, err := experiments.DemoEngine()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := eng.CheckConsistency(nil)
		if !rep.Consistent() {
			b.Fatal("inconsistent")
		}
	}
}

// BenchmarkE2MonitorDemo measures one full Fig. 3 walkthrough: session
// open, two validation rounds, suggestion computation in between.
func BenchmarkE2MonitorDemo(b *testing.B) {
	eng, err := experiments.DemoEngine()
	if err != nil {
		b.Fatal(err)
	}
	regions := region.NewFinder(eng).TopK(nil)
	truth := dataset.DemoGroundTruthFig3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := monitor.New(eng, &monitor.Options{Regions: regions})
		sess, err := mon.NewSession(dataset.DemoInputFig3())
		if err != nil {
			b.Fatal(err)
		}
		u := oracle.NewUser(truth, oracle.OwnChoice)
		u.Preferred = []string{"AC", "phn", "type", "item"}
		if _, err := u.RunSession(sess); err != nil {
			b.Fatal(err)
		}
		if !sess.Certain() {
			b.Fatal("not certain")
		}
	}
}

// BenchmarkE3AuditStream measures cleaning a dirty customer stream end
// to end (sessions + audit bookkeeping), the Fig. 4 workload.
func BenchmarkE3AuditStream(b *testing.B) {
	g := dataset.NewCustomerGen(1)
	g.MobileShare = 1.0
	w, err := g.GenerateWorkload(100, 200, 0.3, nil)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		b.Fatal(err)
	}
	regions := region.NewFinder(eng).TopK(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := monitor.New(eng, &monitor.Options{Regions: regions})
		for j := range w.Dirty {
			sess, err := mon.NewSession(w.Dirty[j])
			if err != nil {
				b.Fatal(err)
			}
			u := oracle.NewUser(w.Truth[j], oracle.FollowSuggestions)
			if _, err := u.RunSession(sess); err != nil {
				b.Fatal(err)
			}
		}
		if mon.Log().Overall().Total() == 0 {
			b.Fatal("no audit records")
		}
	}
	b.ReportMetric(float64(len(w.Dirty)), "tuples/op")
}

// BenchmarkE4AccuracyVsNoise measures the E4 sweep at one
// representative noise rate: CerFix sessions plus the CFD heuristic
// baseline over the same workload.
func BenchmarkE4AccuracyVsNoise(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE4([]float64{0.3}, 50, 100, 2)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].CerFix.Precision() != 1.0 {
			b.Fatal("precision broke")
		}
	}
}

// BenchmarkE5ScaleMaster measures single certain-fix latency at
// several master sizes with the production access path (rule index).
func BenchmarkE5ScaleMaster(b *testing.B) {
	for _, size := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("master=%d", size), func(b *testing.B) {
			g := dataset.NewCustomerGen(3)
			w, err := g.GenerateWorkload(size, 64, 0.3, nil)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
			if err != nil {
				b.Fatal(err)
			}
			seed := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Chase(w.Dirty[i%len(w.Dirty)], seed)
			}
		})
	}
}

// BenchmarkE5AccessPaths is the E5 ablation at a fixed master size:
// rule-index vs plain-index vs scan lookups.
func BenchmarkE5AccessPaths(b *testing.B) {
	g := dataset.NewCustomerGen(3)
	w, err := g.GenerateWorkload(5000, 64, 0.3, nil)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		b.Fatal(err)
	}
	seed := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
	for _, mode := range []master.LookupMode{master.ModeRuleIndex, master.ModePlainIndex, master.ModeScan} {
		b.Run(mode.String(), func(b *testing.B) {
			w.Store.SetMode(mode)
			defer w.Store.SetMode(master.ModeRuleIndex)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Chase(w.Dirty[i%len(w.Dirty)], seed)
			}
		})
	}
}

// BenchmarkE5ScaleRules measures fix latency as the rule set grows
// (demo rules replicated 1x/4x/8x).
func BenchmarkE5ScaleRules(b *testing.B) {
	for _, mult := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("rules=%dx9", mult), func(b *testing.B) {
			rows, err := experiments.RunE5Rules([]int{mult}, 2000, 64, 4)
			if err != nil {
				b.Fatal(err)
			}
			_ = rows
			// RunE5Rules times internally over its inputs; here we
			// re-run the chase loop under testing.B for allocation
			// stats.
			g := dataset.NewCustomerGen(4)
			w, err := g.GenerateWorkload(2000, 64, 0.3, nil)
			if err != nil {
				b.Fatal(err)
			}
			rs := dataset.DemoRules()
			for c := 1; c < mult; c++ {
				for _, r := range dataset.DemoRules().Rules() {
					cp := r.Clone()
					cp.ID = fmt.Sprintf("%s_c%d", r.ID, c)
					if err := rs.Add(cp); err != nil {
						b.Fatal(err)
					}
				}
			}
			eng, err := core.NewEngine(dataset.CustSchema(), rs, w.Store)
			if err != nil {
				b.Fatal(err)
			}
			seed := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Chase(w.Dirty[i%len(w.Dirty)], seed)
			}
		})
	}
}

// BenchmarkE6Effort measures a full effort-sweep data point (sessions
// with suggestion computation at 30% noise).
func BenchmarkE6Effort(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE6([]float64{0.3}, 50, 100, 5)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].AvgRounds < 1 {
			b.Fatal("bad rounds")
		}
	}
}

// BenchmarkE7Regions measures region finding on the pairs(m) family,
// exact vs greedy.
func BenchmarkE7Regions(b *testing.B) {
	for _, m := range []int{4, 6} {
		b.Run(fmt.Sprintf("exact/m=%d", m), func(b *testing.B) {
			eng, err := experiments.PairsEngine(m, 6)
			if err != nil {
				b.Fatal(err)
			}
			f := region.NewFinder(eng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := f.TopK(&region.Options{MaxRegionsPerCell: 2}); len(got) == 0 {
					b.Fatal("no regions")
				}
			}
		})
		b.Run(fmt.Sprintf("greedy/m=%d", m), func(b *testing.B) {
			eng, err := experiments.PairsEngine(m, 6)
			if err != nil {
				b.Fatal(err)
			}
			f := region.NewFinder(eng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := f.TopK(&region.Options{Greedy: true}); len(got) == 0 {
					b.Fatal("no regions")
				}
			}
		})
	}
}

// BenchmarkRegionFinderDemo measures the demo configuration's region
// computation (what the monitor pre-computes at startup).
func BenchmarkRegionFinderDemo(b *testing.B) {
	eng, err := experiments.DemoEngine()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := region.NewFinder(eng).TopK(nil); len(got) == 0 {
			b.Fatal("no regions")
		}
	}
}

// BenchmarkSuggestionAblation compares the monitor's new-suggestion
// computation: exact minimal extension vs greedy cover, measured on a
// mid-session state of the Fig. 3 walkthrough.
func BenchmarkSuggestionAblation(b *testing.B) {
	eng, err := experiments.DemoEngine()
	if err != nil {
		b.Fatal(err)
	}
	regions := region.NewFinder(eng).TopK(nil)
	for _, greedy := range []bool{false, true} {
		name := "exact"
		if greedy {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			mon := monitor.New(eng, &monitor.Options{Regions: regions, GreedySuggestions: greedy})
			sess, err := mon.NewSession(dataset.DemoInputFig3())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Validate(map[string]string{
				"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := sess.Suggestion(); len(got) == 0 {
					b.Fatal("no suggestion")
				}
			}
		})
	}
}

// BenchmarkChaseSingle measures one chase on the Fig. 3 tuple — the
// per-keystroke latency budget of point-of-entry cleaning — across the
// three executors: the compiled program with a fresh result per call
// (Chase), the compiled program into reused scratch (ChaseScratch, the
// batch hot path, 0 allocs/op in steady state — asserted by
// TestChaseSteadyStateZeroAlloc and internal/core's alloc suite), and
// the legacy round-robin loop (ChaseLegacy, the parity oracle and e10
// baseline).
func BenchmarkChaseSingle(b *testing.B) {
	eng, err := experiments.DemoEngine()
	if err != nil {
		b.Fatal(err)
	}
	in := dataset.DemoInputFig3()
	seed := schema.SetOfNames(dataset.CustSchema(), "AC", "phn", "type", "item", "zip")
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !eng.Chase(in, seed).AllValidated() {
				b.Fatal("incomplete")
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		ch := eng.NewChaser()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !ch.ChaseScratch(in, seed).AllValidated() {
				b.Fatal("incomplete")
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !eng.ChaseLegacy(in, seed).AllValidated() {
				b.Fatal("incomplete")
			}
		}
	})
}
