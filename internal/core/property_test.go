package core

import (
	"strings"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
)

// Property tests over randomized workloads: the chase's semantic
// invariants must hold for arbitrary dirty inputs and arbitrary seed
// sets, not just the demo fixtures.

// workloadEngine builds an engine over a generated workload.
func workloadEngine(t *testing.T, seed uint64) (*Engine, *dataset.Workload) {
	t.Helper()
	g := dataset.NewCustomerGen(seed)
	w, err := g.GenerateWorkload(40, 120, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	return e, w
}

// randomSeedSet picks a random validated attribute set.
func randomSeedSet(rng *textutil.RNG, sch *schema.Schema) schema.AttrSet {
	s := schema.EmptySet
	for i := 0; i < sch.Len(); i++ {
		if rng.Bool(0.4) {
			s = s.With(i)
		}
	}
	return s
}

// Invariant 1: the chase never modifies a seed-validated cell and
// never un-validates anything.
func TestPropertySeedCellsImmutable(t *testing.T) {
	e, w := workloadEngine(t, 101)
	rng := textutil.NewRNG(7)
	for i, dirty := range w.Dirty {
		seed := randomSeedSet(rng, e.InputSchema())
		res := e.Chase(dirty, seed)
		if !res.Validated.ContainsAll(seed) {
			t.Fatalf("tuple %d: validated set shrank", i)
		}
		for _, p := range seed.Positions() {
			if res.Tuple.At(p) != dirty.At(p) {
				t.Fatalf("tuple %d: seed-validated cell %s changed from %q to %q",
					i, e.InputSchema().Attr(p).Name, dirty.At(p), res.Tuple.At(p))
			}
		}
	}
}

// Invariant 2: every rewrite carries provenance pointing to an actual
// master tuple whose source attribute holds the written value.
func TestPropertyProvenanceAccurate(t *testing.T) {
	e, w := workloadEngine(t, 102)
	rng := textutil.NewRNG(8)
	for i, dirty := range w.Dirty {
		seed := randomSeedSet(rng, e.InputSchema())
		res := e.Chase(dirty, seed)
		for _, c := range res.Changes {
			if c.Source != SourceRule {
				t.Fatalf("tuple %d: chase logged non-rule change %+v", i, c)
			}
			r, ok := e.Rules().Get(c.RuleID)
			if !ok {
				t.Fatalf("tuple %d: change cites unknown rule %q", i, c.RuleID)
			}
			witness, ok := e.Master().Get(c.MasterID)
			if !ok {
				t.Fatalf("tuple %d: change cites unknown master #%d", i, c.MasterID)
			}
			// The witness's Bm value for this target must equal the
			// written value.
			for _, corr := range r.Set {
				if corr.Input == c.Attr && witness.Get(corr.Master) != c.New {
					t.Fatalf("tuple %d: witness #%d has %s=%q, change wrote %q",
						i, c.MasterID, corr.Master, witness.Get(corr.Master), c.New)
				}
			}
		}
	}
}

// Invariant 3: chase is idempotent from its own fixpoint for random
// inputs and seeds.
func TestPropertyChaseIdempotentRandom(t *testing.T) {
	e, w := workloadEngine(t, 103)
	rng := textutil.NewRNG(9)
	for i, dirty := range w.Dirty {
		seed := randomSeedSet(rng, e.InputSchema())
		first := e.Chase(dirty, seed)
		second := e.Chase(first.Tuple, first.Validated)
		if !second.Tuple.Equal(first.Tuple) || second.Validated != first.Validated {
			t.Fatalf("tuple %d: chase not idempotent", i)
		}
		if len(second.Rewrites()) != 0 {
			t.Fatalf("tuple %d: idempotent chase rewrote %v", i, second.Rewrites())
		}
	}
}

// Invariant 4: chase outcome is order-independent on entity-consistent
// inputs (the generated master has unique keys, so no cross-entity
// mixing can occur from a truthful seed).
func TestPropertyOrderIndependentOnTruth(t *testing.T) {
	e, w := workloadEngine(t, 104)
	// Reverse the rule order.
	rules := e.Rules().Rules()
	reversed := make([]string, 0, len(rules))
	for i := len(rules) - 1; i >= 0; i-- {
		reversed = append(reversed, rules[i].String())
	}
	revEng := reorderedEngine(t, e, reversed)
	rng := textutil.NewRNG(10)
	for i, truth := range w.Truth {
		seed := randomSeedSet(rng, e.InputSchema())
		a := e.Chase(truth, seed)
		b := revEng.Chase(truth, seed)
		if !a.Tuple.Equal(b.Tuple) || a.Validated != b.Validated {
			t.Fatalf("truth tuple %d: order dependence (seed %v)", i, seed.Format(e.InputSchema()))
		}
	}
}

func reorderedEngine(t *testing.T, e *Engine, ruleLines []string) *Engine {
	t.Helper()
	rs, err := rule.ParseSet(strings.Join(ruleLines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(e.InputSchema(), rs, e.Master())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Invariant 5: conflicts are only reported when they are real — a
// MasterAmbiguous conflict implies two master tuples actually share
// the rule's key with different source values.
func TestPropertyNoSpuriousConflictsOnCleanMaster(t *testing.T) {
	e, w := workloadEngine(t, 105)
	rng := textutil.NewRNG(11)
	// The generated master has unique rule keys: MasterAmbiguous must
	// never appear regardless of input noise.
	for i, dirty := range w.Dirty {
		seed := randomSeedSet(rng, e.InputSchema())
		res := e.Chase(dirty, seed)
		for _, c := range res.Conflicts {
			if c.Kind == MasterAmbiguous {
				t.Fatalf("tuple %d: spurious MasterAmbiguous: %v", i, c)
			}
		}
	}
	_ = w
}

// Invariant 6: chasing the clean (ground-truth) tuple from any seed
// never rewrites anything — all rule applications confirm.
func TestPropertyTruthIsFixpoint(t *testing.T) {
	e, w := workloadEngine(t, 106)
	rng := textutil.NewRNG(12)
	for i, truth := range w.Truth {
		seed := randomSeedSet(rng, e.InputSchema())
		res := e.Chase(truth, seed)
		if rw := res.Rewrites(); len(rw) != 0 {
			t.Fatalf("truth tuple %d rewritten: %v", i, rw)
		}
		if len(res.Conflicts) != 0 {
			t.Fatalf("truth tuple %d conflicts: %v", i, res.Conflicts)
		}
	}
}
