package storage

import (
	"fmt"

	"cerfix/internal/schema"
)

// This file implements the table's simple transaction facility: an
// all-or-nothing batch of inserts, updates and deletes. Bulk cleaning
// pipelines use it so a failing row cannot leave a half-applied
// repair; the batch validates every operation against a staged view
// before any mutation reaches the table.

// OpKind enumerates batch operation kinds.
type OpKind int

const (
	// OpInsert adds a new row (Tuple's ID is assigned on commit).
	OpInsert OpKind = iota
	// OpUpdate replaces the row with Tuple.ID.
	OpUpdate
	// OpDelete removes the row with ID.
	OpDelete
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Op is one batch operation.
type Op struct {
	Kind OpKind
	// Tuple carries the row for inserts/updates.
	Tuple *schema.Tuple
	// ID identifies the row for deletes (updates use Tuple.ID).
	ID int64
}

// Insert builds an insert op.
func Insert(t *schema.Tuple) Op { return Op{Kind: OpInsert, Tuple: t} }

// Update builds an update op.
func Update(t *schema.Tuple) Op { return Op{Kind: OpUpdate, Tuple: t} }

// Delete builds a delete op.
func Delete(id int64) Op { return Op{Kind: OpDelete, ID: id} }

// ApplyBatch applies ops atomically: either every operation succeeds
// and the assigned IDs of inserts are returned (aligned with the ops
// slice; zero for non-inserts), or the table is unchanged and an error
// describes the first failing operation.
func (t *Table) ApplyBatch(ops []Op) ([]int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return nil, ErrFrozen
	}
	// Validation pass against a staged view of row liveness.
	staged := make(map[int64]bool, len(ops)) // id -> live after batch so far
	live := func(id int64) bool {
		if v, ok := staged[id]; ok {
			return v
		}
		return t.rowHas(id)
	}
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			if op.Tuple == nil {
				return nil, fmt.Errorf("storage: batch op %d: nil tuple", i)
			}
			if op.Tuple.Schema != t.sch {
				return nil, fmt.Errorf("storage: batch op %d: schema mismatch", i)
			}
		case OpUpdate:
			if op.Tuple == nil {
				return nil, fmt.Errorf("storage: batch op %d: nil tuple", i)
			}
			if op.Tuple.Schema != t.sch {
				return nil, fmt.Errorf("storage: batch op %d: schema mismatch", i)
			}
			if !live(op.Tuple.ID) {
				return nil, fmt.Errorf("storage: batch op %d: row %d not found", i, op.Tuple.ID)
			}
		case OpDelete:
			if !live(op.ID) {
				return nil, fmt.Errorf("storage: batch op %d: row %d not found", i, op.ID)
			}
			staged[op.ID] = false
		default:
			return nil, fmt.Errorf("storage: batch op %d: unknown kind %d", i, op.Kind)
		}
	}
	// Apply pass — cannot fail after validation (updateLocked and
	// deleteLocked only fail on missing rows, which validation and
	// the staged view already rule out).
	ids := make([]int64, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			cp := op.Tuple.Clone()
			cp.ID = t.nextID
			t.nextID++
			t.insertLocked(cp)
			ids[i] = cp.ID
		case OpUpdate:
			_ = t.updateLocked(op.Tuple.Clone())
		case OpDelete:
			// deleteLocked reports false for rows removed earlier in
			// this same batch.
			_ = t.deleteLocked(op.ID)
		}
	}
	return ids, nil
}
