package monitor

import (
	"strings"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
)

func greedyMonitor(t *testing.T) *Monitor {
	t.Helper()
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	return New(e, &Options{GreedySuggestions: true})
}

// Greedy-suggestion sessions still terminate with certain fixes.
func TestGreedySuggestionsComplete(t *testing.T) {
	m := greedyMonitor(t)
	s, err := m.NewSession(dataset.DemoInputFig3())
	if err != nil {
		t.Fatal(err)
	}
	truth := dataset.DemoGroundTruthFig3()
	// Round 1: the Fig. 3 user's own choice; then follow greedy
	// suggestions with ground-truth values until done.
	if _, err := s.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	}); err != nil {
		t.Fatal(err)
	}
	for round := 0; !s.Done() && round < 10; round++ {
		ans := make(map[string]string)
		for _, a := range s.Suggestion() {
			ans[a] = string(truth.Get(a))
		}
		if len(ans) == 0 {
			t.Fatalf("empty greedy suggestion; remaining %v", s.Remaining())
		}
		if _, err := s.Validate(ans); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Certain() || !s.Tuple.Equal(truth) {
		t.Fatalf("greedy session failed: %v", s.Tuple)
	}
}

// Greedy suggestions are never smaller than the exact ones.
func TestGreedyNotSmallerThanExactSuggestions(t *testing.T) {
	mg := greedyMonitor(t)
	me := demoMonitor(t)
	sg, _ := mg.NewSession(dataset.DemoInputFig3())
	se, _ := me.NewSession(dataset.DemoInputFig3())
	for _, sess := range []*Session{sg, se} {
		if _, err := sess.Validate(map[string]string{
			"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
		}); err != nil {
			t.Fatal(err)
		}
	}
	g, e := sg.Suggestion(), se.Suggestion()
	if len(g) < len(e) {
		t.Fatalf("greedy suggestion %v smaller than exact %v", g, e)
	}
	// On the demo configuration the greedy suggestion coincides with
	// the exact one ({zip}).
	if strings.Join(g, ",") != "zip" {
		t.Fatalf("greedy suggestion = %v", g)
	}
}

func TestExplainSuggestion(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	if _, err := s.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	}); err != nil {
		t.Fatal(err)
	}
	out := s.ExplainSuggestion()
	if !strings.Contains(out, "validate {zip}") {
		t.Fatalf("explanation = %q", out)
	}
	if !strings.Contains(out, "phi2") {
		t.Fatalf("explanation missing the str-fixing rule: %q", out)
	}
	if _, err := s.ValidateSuggested(); err != nil {
		t.Fatal(err)
	}
	if got := s.ExplainSuggestion(); got != "all attributes validated" {
		t.Fatalf("done explanation = %q", got)
	}
}
