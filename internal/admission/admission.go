// Package admission is the serving-layer front door: the primitives a
// production HTTP surface needs to survive overload without falling
// over — per-key token-bucket rate limiting, a concurrency gate for
// synchronous work, and a service-time estimator that turns observed
// latency plus queue depth into an honest Retry-After.
//
// The package deliberately holds no HTTP types and imports nothing
// from the rest of the system: the server composes these primitives
// into middleware, the jobs queue uses the estimator for backlog
// shedding, and both stay testable in isolation. Admission control
// belongs in the serving layer, not the engine — the chase never
// learns it is being rationed.
package admission

import (
	"sync"
	"time"
)

// Limiter is a per-key token-bucket rate limiter. Each key (client
// IP, API key) owns an independent bucket holding up to Burst tokens
// refilled continuously at Rate tokens/second; a request spends one
// token. Buckets are created on first sight and pruned once idle, so
// key churn (e.g. scanning IPs) cannot grow memory without bound.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-key table; reaching it evicts idle (fully
// refilled) buckets, which lose no admission state — a full bucket
// behaves identically to a fresh one.
const maxBuckets = 65536

// NewLimiter builds a limiter admitting rate requests/second per key
// with bursts up to burst. Rate must be > 0; burst < 1 is raised to 1
// (a bucket that can never hold a whole token would deny everything).
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// Rate returns the per-key refill rate in tokens/second.
func (l *Limiter) Rate() float64 { return l.rate }

// Burst returns the per-key bucket capacity.
func (l *Limiter) Burst() int { return int(l.burst) }

// Allow spends one token from key's bucket at time now. It returns
// whether the request is admitted, the whole tokens remaining, and —
// when denied — how long until the next token accrues.
func (l *Limiter) Allow(key string, now time.Time) (ok bool, remaining int, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, int(b.tokens), 0
	}
	need := (1 - b.tokens) / l.rate
	return false, 0, ceilSeconds(time.Duration(need * float64(time.Second)))
}

// pruneLocked evicts every bucket whose lazily-refilled balance has
// reached the burst cap — refill happens only inside Allow, so the
// equivalent-to-fresh test must be computed from elapsed time, not
// the stored token count. If that frees nothing — every key is
// mid-burst — it drops arbitrary entries instead; a dropped hot
// bucket restarts full, which only errs on the side of admitting.
func (l *Limiter) pruneLocked(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
	if len(l.buckets) < maxBuckets {
		return
	}
	for k := range l.buckets {
		delete(l.buckets, k)
		if len(l.buckets) <= maxBuckets/2 {
			break
		}
	}
}

// Keys returns the number of tracked buckets (for stats and tests).
func (l *Limiter) Keys() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Gate is a counting semaphore capping concurrent synchronous work.
// TryAcquire never blocks: past the cap the caller sheds instead of
// queueing, which is the whole point — latency stays bounded because
// waiting happens client-side, steered by Retry-After.
type Gate struct {
	mu  sync.Mutex
	cap int
	n   int
}

// NewGate builds a gate admitting up to capacity concurrent holders
// (minimum 1).
func NewGate(capacity int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	return &Gate{cap: capacity}
}

// TryAcquire claims a slot, reporting false when the gate is full.
func (g *Gate) TryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n >= g.cap {
		return false
	}
	g.n++
	return true
}

// Release returns a slot claimed by TryAcquire.
func (g *Gate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n <= 0 {
		panic("admission: Gate.Release without acquire")
	}
	g.n--
}

// InFlight returns the current number of holders.
func (g *Gate) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Capacity returns the configured cap.
func (g *Gate) Capacity() int { return g.cap }

// EWMA tracks an exponentially-weighted moving average of observed
// service durations — the basis for computed Retry-After values. The
// first observation seeds the average directly; later ones blend in
// at weight alpha, so the estimate follows load shifts without
// whipsawing on one slow request.
type EWMA struct {
	mu sync.Mutex
	v  float64 // nanoseconds
	n  int64
}

// alpha is the blend weight for new observations.
const alpha = 0.2

// Observe folds one service duration into the average.
func (e *EWMA) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.v = float64(d)
	} else {
		e.v = alpha*float64(d) + (1-alpha)*e.v
	}
	e.n++
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.v)
}

// Count returns how many durations have been observed.
func (e *EWMA) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// RetryAfter estimates when shed work is worth retrying: pending
// units of work draining through lanes parallel servers, each taking
// ~avg. With no latency history yet (avg <= 0) it assumes one second
// per unit. The result is rounded up to whole seconds and never less
// than one — Retry-After: 0 invites an immediate, equally doomed
// retry.
func RetryAfter(pending, lanes int, avg time.Duration) time.Duration {
	if lanes < 1 {
		lanes = 1
	}
	if avg <= 0 {
		avg = time.Second
	}
	if pending < 1 {
		pending = 1
	}
	est := time.Duration(float64(avg) * float64(pending) / float64(lanes))
	return ceilSeconds(est)
}

// ceilSeconds rounds d up to whole seconds, minimum one.
func ceilSeconds(d time.Duration) time.Duration {
	if d <= time.Second {
		return time.Second
	}
	if rem := d % time.Second; rem != 0 {
		d += time.Second - rem
	}
	return d
}
