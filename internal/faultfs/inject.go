package faultfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Op names one class of mutating filesystem operation. Reads (Open,
// ReadFile, ReadDir, Stat) are not effect ops: they neither advance
// the crash counter nor appear in the trace, though they do fail once
// a crash has been injected.
type Op string

const (
	OpOpenFile  Op = "openfile"
	OpWrite     Op = "write"
	OpSync      Op = "sync"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpRemoveAll Op = "removeall"
	OpMkdir     Op = "mkdir"
	OpTruncate  Op = "truncate"
	OpSyncDir   Op = "syncdir"
)

// Step is one recorded effect op.
type Step struct {
	Op   Op
	Path string
}

// ErrCrashed is returned by every operation at and after the injected
// crash point. It is deliberately NOT Transient: once a simulated
// crash hits, retry loops give up immediately and the harness
// proceeds to the reload phase.
var ErrCrashed = errors.New("faultfs: simulated crash")

// Injector wraps an FS with deterministic fault injection. Two modes:
//
//   - Targeted: FailNth/ShortWriteNth arm a rule that fires on the
//     Nth matching effect op (fail a specific sync with ENOSPC, short-
//     write a specific buffer, ...).
//   - Crash-point enumeration: run the operation once untouched and
//     read EffectOps(); then for k in [0, N) re-run with SetCrashAt(k)
//     — ops before k succeed, op k and everything after fail with
//     ErrCrashed. LoseUnsynced then rolls every file back to what a
//     power cut would have preserved ("write succeeded but fsync
//     didn't"), and the test reloads and asserts invariants.
//
// Size tracking assumes sequential writes (append or create-then-
// write), which is how every persistence path in this codebase
// writes; there is no Seek in the File interface.
type Injector struct {
	inner FS

	mu       sync.Mutex
	trace    []Step
	nEffects int
	crashAt  int // -1 = off; crash when the effect counter reaches it
	crashed  bool
	rules    []*rule
	faultFn  func(op Op, path string) error
	files    map[string]*fileState
}

type rule struct {
	op       Op
	suffix   string
	n        int // fire on the n-th match (1-based)
	err      error
	short    int  // for OpWrite: bytes actually written before err
	panicNow bool // panic instead of returning an error
	seen     int
}

// fileState tracks how much of a file a crash would preserve: bytes
// up to syncedSize survived an fsync, the rest is at the mercy of the
// page cache.
type fileState struct {
	size       int64
	syncedSize int64
	created    bool // created during this run (a crash may lose the entry itself)
}

// NewInjector wraps inner (usually OS) with fault injection.
func NewInjector(inner FS) *Injector {
	return &Injector{inner: inner, crashAt: -1, files: make(map[string]*fileState)}
}

// FailNth arms a one-shot fault: the n-th effect op (1-based) with
// this Op whose path ends in suffix returns err without touching the
// underlying filesystem. suffix "" matches every path.
func (in *Injector) FailNth(op Op, suffix string, n int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &rule{op: op, suffix: suffix, n: n, err: err})
}

// ShortWriteNth arms a short write: the n-th matching Write persists
// only the first keep bytes, then returns err — a torn write.
func (in *Injector) ShortWriteNth(suffix string, n, keep int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &rule{op: OpWrite, suffix: suffix, n: n, err: err, short: keep})
}

// PanicNth arms an injected panic: the n-th matching effect op
// (1-based) panics mid-operation instead of returning an error — the
// filesystem twin of the guard chaos seam, used to prove runner panic
// isolation against faults that bypass error returns entirely. The
// injector's lock is released by defer, so the wrapped FS stays
// usable after the panic is recovered.
func (in *Injector) PanicNth(op Op, suffix string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &rule{op: op, suffix: suffix, n: n, panicNow: true})
}

// SetFault installs a programmable fault hook consulted for every
// effect op (after crash/rules). Returning a non-nil error fails the
// op. Used for stateful faults like "ENOSPC while this flag is set".
func (in *Injector) SetFault(fn func(op Op, path string) error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faultFn = fn
}

// SetCrashAt arms crash-point mode: effect ops 0..k-1 succeed, op k
// and all later operations (reads included) fail with ErrCrashed.
// k < 0 disarms.
func (in *Injector) SetCrashAt(k int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = k
	in.crashed = false
}

// Crashed reports whether the armed crash point has been reached.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// EffectOps returns how many effect ops have run (the trace length).
func (in *Injector) EffectOps() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nEffects
}

// Trace returns a copy of the recorded effect-op trace.
func (in *Injector) Trace() []Step {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Step(nil), in.trace...)
}

// effect records one mutating op and decides whether it fails. The
// returned shortN is only meaningful for OpWrite rules with short
// writes (bytes to persist before erroring; -1 = no short write).
func (in *Injector) effect(op Op, path string) (shortN int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.trace = append(in.trace, Step{Op: op, Path: path})
	in.nEffects++
	if in.crashed {
		return -1, ErrCrashed
	}
	if in.crashAt >= 0 && in.nEffects > in.crashAt {
		in.crashed = true
		return -1, ErrCrashed
	}
	for _, r := range in.rules {
		if r.op != op || !strings.HasSuffix(path, r.suffix) {
			continue
		}
		r.seen++
		if r.seen == r.n {
			if r.panicNow {
				panic(fmt.Sprintf("faultfs: injected panic at %s %s", op, path))
			}
			if r.short > 0 {
				return r.short, r.err
			}
			return -1, r.err
		}
	}
	if in.faultFn != nil {
		if err := in.faultFn(op, path); err != nil {
			return -1, err
		}
	}
	return -1, nil
}

// readGate fails reads after a crash (a crashed process does no I/O).
func (in *Injector) readGate() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

func (in *Injector) state(path string) *fileState {
	st := in.files[path]
	if st == nil {
		st = &fileState{}
		in.files[path] = st
	}
	return st
}

// LoseUnsynced simulates the aftermath of a crash: for every file
// written through this injector, bytes beyond the last successful
// fsync are rolled back. keep in [0,1] selects how much of the
// unsynced tail the page cache happened to flush — 0 (lose it all),
// 1 (keep it all, the classic torn-tail "write landed, fsync didn't"),
// or anything between for a partial flush. Files created during the
// run and never synced are removed entirely when keep == 0.
// Renames are modeled as atomic (they carry state to the new path).
func (in *Injector) LoseUnsynced(keep float64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	paths := make([]string, 0, len(in.files))
	for p := range in.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st := in.files[p]
		if st.size <= st.syncedSize {
			continue
		}
		target := st.syncedSize + int64(keep*float64(st.size-st.syncedSize))
		var err error
		if target == 0 && st.created {
			err = in.inner.Remove(p)
		} else {
			err = in.inner.Truncate(p, target)
		}
		if err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
		st.size = target
		st.syncedSize = target
	}
	return nil
}

// --- FS implementation -------------------------------------------------

func (in *Injector) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	if _, err := in.effect(OpOpenFile, name); err != nil {
		return nil, err
	}
	_, statErr := in.inner.Stat(name)
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	st := in.state(name)
	if statErr != nil {
		st.created = true
		st.size, st.syncedSize = 0, 0
	} else if flag&os.O_TRUNC != 0 {
		st.size, st.syncedSize = 0, 0
	} else if fi, err := in.inner.Stat(name); err == nil {
		// Pre-existing content is assumed durable.
		st.size, st.syncedSize = fi.Size(), fi.Size()
	}
	in.mu.Unlock()
	return &injFile{in: in, f: f, path: name}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err := in.readGate(); err != nil {
		return nil, err
	}
	return in.inner.Open(name)
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err := in.readGate(); err != nil {
		return nil, err
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) WriteFile(name string, data []byte, perm iofs.FileMode) error {
	f, err := in.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (in *Injector) Rename(oldpath, newpath string) error {
	// The trace records the source path: staging dirs and tmp files
	// carry the distinctive names injection rules want to match.
	if _, err := in.effect(OpRename, oldpath); err != nil {
		return err
	}
	if err := in.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	in.mu.Lock()
	if st, ok := in.files[oldpath]; ok {
		delete(in.files, oldpath)
		in.files[newpath] = st
	} else {
		delete(in.files, newpath)
	}
	in.mu.Unlock()
	return nil
}

func (in *Injector) Remove(name string) error {
	if _, err := in.effect(OpRemove, name); err != nil {
		return err
	}
	if err := in.inner.Remove(name); err != nil {
		return err
	}
	in.mu.Lock()
	delete(in.files, name)
	in.mu.Unlock()
	return nil
}

func (in *Injector) RemoveAll(path string) error {
	if _, err := in.effect(OpRemoveAll, path); err != nil {
		return err
	}
	if err := in.inner.RemoveAll(path); err != nil {
		return err
	}
	in.mu.Lock()
	for p := range in.files {
		if p == path || strings.HasPrefix(p, path+string(filepath.Separator)) {
			delete(in.files, p)
		}
	}
	in.mu.Unlock()
	return nil
}

func (in *Injector) MkdirAll(path string, perm iofs.FileMode) error {
	if _, err := in.effect(OpMkdir, path); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]iofs.DirEntry, error) {
	if err := in.readGate(); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) Stat(name string) (iofs.FileInfo, error) {
	if err := in.readGate(); err != nil {
		return nil, err
	}
	return in.inner.Stat(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if _, err := in.effect(OpTruncate, name); err != nil {
		return err
	}
	if err := in.inner.Truncate(name, size); err != nil {
		return err
	}
	in.mu.Lock()
	st := in.state(name)
	if st.size > size {
		st.size = size
	}
	if st.syncedSize > size {
		st.syncedSize = size
	}
	in.mu.Unlock()
	return nil
}

func (in *Injector) SyncDir(dir string) error {
	if _, err := in.effect(OpSyncDir, dir); err != nil {
		return err
	}
	return in.inner.SyncDir(dir)
}

type injFile struct {
	in   *Injector
	f    File
	path string
}

func (f *injFile) Read(p []byte) (int, error) {
	if err := f.in.readGate(); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	short, ferr := f.in.effect(OpWrite, f.path)
	if ferr != nil && short < 0 {
		return 0, ferr
	}
	buf := p
	if ferr != nil && short < len(p) {
		buf = p[:short]
	}
	n, err := f.f.Write(buf)
	f.in.mu.Lock()
	f.in.state(f.path).size += int64(n)
	f.in.mu.Unlock()
	if ferr != nil {
		return n, ferr
	}
	return n, err
}

func (f *injFile) Sync() error {
	if _, err := f.in.effect(OpSync, f.path); err != nil {
		return err
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.in.mu.Lock()
	st := f.in.state(f.path)
	st.syncedSize = st.size
	f.in.mu.Unlock()
	return nil
}

func (f *injFile) Close() error { return f.f.Close() }

func (f *injFile) Name() string { return f.path }
