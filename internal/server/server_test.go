package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cerfix"
	"cerfix/internal/dataset"
)

func demoServer(t *testing.T) *httptest.Server {
	t.Helper()
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(sys).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantStatus, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStatus(t *testing.T) {
	ts := demoServer(t)
	var st statusResponse
	doJSON(t, "GET", ts.URL+"/api/status", nil, 200, &st)
	if st.MasterTuples != 3 || st.Rules != 9 {
		t.Fatalf("status = %+v", st)
	}
	if !strings.HasPrefix(st.InputSchema, "CUST(") {
		t.Fatalf("input schema = %q", st.InputSchema)
	}
	// Memory accounting is always present; an in-memory demo system
	// has no persistence provenance.
	if st.Memory == nil || st.Memory.Table.Rows != 3 || st.Memory.TotalBytes() <= 0 {
		t.Fatalf("memory status = %+v", st.Memory)
	}
	if st.Memory.Table.Dict.Syms == 0 {
		t.Fatalf("dictionary not surfaced: %+v", st.Memory.Table)
	}
	if st.Persistence != nil {
		t.Fatalf("persistence = %+v for an in-memory system", st.Persistence)
	}
}

func TestRulesCRUD(t *testing.T) {
	ts := demoServer(t)
	var rules []ruleJSON
	doJSON(t, "GET", ts.URL+"/api/rules", nil, 200, &rules)
	if len(rules) != 9 || rules[0].ID != "phi1" {
		t.Fatalf("rules = %+v", rules)
	}
	doJSON(t, "POST", ts.URL+"/api/rules",
		map[string]string{"dsl": `extra: match zip~zip set FN := FN`}, 201, nil)
	doJSON(t, "GET", ts.URL+"/api/rules", nil, 200, &rules)
	if len(rules) != 10 {
		t.Fatalf("rules after add = %d", len(rules))
	}
	// Bad rule rejected.
	doJSON(t, "POST", ts.URL+"/api/rules",
		map[string]string{"dsl": `bad: match zip~zip set bogus := FN`}, 422, nil)
	// Delete.
	doJSON(t, "DELETE", ts.URL+"/api/rules/extra", nil, 200, nil)
	doJSON(t, "DELETE", ts.URL+"/api/rules/extra", nil, 404, nil)
	doJSON(t, "GET", ts.URL+"/api/rules", nil, 200, &rules)
	if len(rules) != 9 {
		t.Fatalf("rules after delete = %d", len(rules))
	}
}

func TestRulesCheck(t *testing.T) {
	ts := demoServer(t)
	var out struct {
		Consistent bool        `json:"consistent"`
		Issues     []issueJSON `json:"issues"`
		ProbesRun  int         `json:"probes_run"`
	}
	doJSON(t, "POST", ts.URL+"/api/rules/check", nil, 200, &out)
	if !out.Consistent {
		t.Fatalf("demo rules inconsistent: %+v", out.Issues)
	}
	if out.ProbesRun == 0 {
		t.Fatal("no probes")
	}
	// Warnings present (cross-entity) but severity != error.
	for _, is := range out.Issues {
		if is.Severity == "error" {
			t.Fatalf("error issue: %+v", is)
		}
	}
}

func TestRegionsEndpoint(t *testing.T) {
	ts := demoServer(t)
	var regions []regionJSON
	doJSON(t, "GET", ts.URL+"/api/regions?k=2", nil, 200, &regions)
	if len(regions) == 0 || regions[0].Size != 4 {
		t.Fatalf("regions = %+v", regions)
	}
	doJSON(t, "GET", ts.URL+"/api/regions?k=bogus", nil, 400, nil)
}

func TestMasterEndpoints(t *testing.T) {
	ts := demoServer(t)
	var list struct {
		Total int                 `json:"total"`
		Items []map[string]string `json:"items"`
	}
	doJSON(t, "GET", ts.URL+"/api/master", nil, 200, &list)
	if list.Total != 3 || len(list.Items) != 3 {
		t.Fatalf("master = %+v", list)
	}
	if list.Items[0]["FN"] != "Robert" {
		t.Fatalf("row 0 = %v", list.Items[0])
	}
	doJSON(t, "POST", ts.URL+"/api/master", map[string]any{
		"values": map[string]string{"FN": "New", "LN": "Person", "zip": "XX1 1XX"},
	}, 201, nil)
	doJSON(t, "GET", ts.URL+"/api/master?limit=2", nil, 200, &list)
	if list.Total != 4 || len(list.Items) != 2 {
		t.Fatalf("after add = %+v", list)
	}
	// Offset pages through the remainder.
	doJSON(t, "GET", ts.URL+"/api/master?limit=2&offset=3", nil, 200, &list)
	if list.Total != 4 || len(list.Items) != 1 {
		t.Fatalf("offset page = %+v", list)
	}
	doJSON(t, "GET", ts.URL+"/api/master?limit=bogus", nil, 400, nil)
	doJSON(t, "POST", ts.URL+"/api/master", map[string]any{
		"values": map[string]string{"bogus": "x"},
	}, 422, nil)
}

// The full Fig. 3 walkthrough over HTTP.
func TestSessionWalkthrough(t *testing.T) {
	ts := demoServer(t)
	var sess sessionJSON
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]any{
		"tuple": dataset.DemoInputFig3().Map(),
	}, 201, &sess)
	if sess.Done || len(sess.Suggestion) == 0 {
		t.Fatalf("opened session = %+v", sess)
	}
	var round1 struct {
		Session sessionJSON  `json:"session"`
		Changes []changeJSON `json:"changes"`
	}
	doJSON(t, "POST", fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"AC": "201", "phn": "075568485", "type": "2", "item": "DVD"},
	}, 200, &round1)
	if round1.Session.Tuple["FN"] != "Mark" {
		t.Fatalf("FN = %q", round1.Session.Tuple["FN"])
	}
	foundFN := false
	for _, c := range round1.Changes {
		if c.Attr == "FN" && c.RuleID == "phi4" && c.Old == "M." && c.New == "Mark" {
			foundFN = true
		}
	}
	if !foundFN {
		t.Fatalf("FN change missing: %+v", round1.Changes)
	}
	if strings.Join(round1.Session.Suggestion, ",") != "zip" {
		t.Fatalf("suggestion = %v", round1.Session.Suggestion)
	}
	// Round 2.
	var round2 struct {
		Session sessionJSON `json:"session"`
	}
	doJSON(t, "POST", fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"zip": "NW1 6XE"},
	}, 200, &round2)
	if !round2.Session.Done || !round2.Session.Certain {
		t.Fatalf("final session = %+v", round2.Session)
	}
	// GET mirrors the state.
	var got sessionJSON
	doJSON(t, "GET", fmt.Sprintf("%s/api/sessions/%d", ts.URL, sess.ID), nil, 200, &got)
	if !got.Done || got.Rounds != 2 {
		t.Fatalf("GET session = %+v", got)
	}
}

func TestSessionErrors(t *testing.T) {
	ts := demoServer(t)
	doJSON(t, "GET", ts.URL+"/api/sessions/99", nil, 404, nil)
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]any{
		"tuple": map[string]string{"bogus": "x"},
	}, 422, nil)
	var sess sessionJSON
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]any{
		"tuple": dataset.DemoInputFig3().Map(),
	}, 201, &sess)
	doJSON(t, "POST", fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{},
	}, 422, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"bogus": "x"},
	}, 422, nil)
	doJSON(t, "POST", ts.URL+"/api/sessions/99/validate", map[string]any{
		"assertions": map[string]string{"zip": "x"},
	}, 404, nil)
}

func TestAuditEndpoints(t *testing.T) {
	ts := demoServer(t)
	var sess sessionJSON
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]any{
		"tuple": dataset.DemoInputFig3().Map(),
	}, 201, &sess)
	doJSON(t, "POST", fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"AC": "201", "phn": "075568485", "type": "2", "item": "DVD"},
	}, 200, nil)

	var stats struct {
		PerAttr []attrStatsJSON `json:"per_attr"`
		Overall attrStatsJSON   `json:"overall"`
	}
	doJSON(t, "GET", ts.URL+"/api/audit/stats", nil, 200, &stats)
	if stats.Overall.UserValidated != 4 {
		t.Fatalf("overall = %+v", stats.Overall)
	}
	if len(stats.PerAttr) == 0 {
		t.Fatal("no per-attr stats")
	}

	var hist []auditRecordJSON
	doJSON(t, "GET", fmt.Sprintf("%s/api/audit/tuples/%d", ts.URL, sess.ID), nil, 200, &hist)
	if len(hist) < 5 {
		t.Fatalf("history = %+v", hist)
	}

	var cell auditRecordJSON
	doJSON(t, "GET", fmt.Sprintf("%s/api/audit/cell?tuple=%d&attr=FN", ts.URL, sess.ID), nil, 200, &cell)
	if cell.RuleID != "phi4" || cell.New != "Mark" {
		t.Fatalf("cell = %+v", cell)
	}
	doJSON(t, "GET", ts.URL+"/api/audit/cell?tuple=999&attr=FN", nil, 404, nil)
	doJSON(t, "GET", ts.URL+"/api/audit/cell?tuple=bogus&attr=FN", nil, 400, nil)
	doJSON(t, "GET", fmt.Sprintf("%s/api/audit/cell?tuple=%d", ts.URL, sess.ID), nil, 400, nil)
}

func TestMalformedBodies(t *testing.T) {
	ts := demoServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/api/rules", strings.NewReader("{nonsense"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body = %d", resp.StatusCode)
	}
	req2, _ := http.NewRequest("POST", ts.URL+"/api/sessions", strings.NewReader(`{"unknown_field": 1}`))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("unknown field = %d", resp2.StatusCode)
	}
}

// TestStatusCounterJSONKeys is the regression net for the status
// document's counter shapes: every cumulative counter — admission shed
// totals and the chase prefilter — marshals through counter.Monotonic,
// and this pins the snake_case keys and bare-number encoding clients
// depend on, plus the kernels section sitting next to memory.
func TestStatusCounterJSONKeys(t *testing.T) {
	ts := demoServer(t)
	// Run one sync fix so the prefilter counters have moved.
	var fixOut map[string]any
	doJSON(t, "POST", ts.URL+"/api/v1/fix", json.RawMessage(fixPayload()), 200, &fixOut)

	resp, err := http.Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	section := func(m map[string]any, key string) map[string]any {
		t.Helper()
		v, ok := m[key].(map[string]any)
		if !ok {
			t.Fatalf("status missing object %q: %v", key, m[key])
		}
		return v
	}
	num := func(m map[string]any, key string) float64 {
		t.Helper()
		v, ok := m[key].(float64)
		if !ok {
			t.Fatalf("counter %q not a bare number: %T %v", key, m[key], m[key])
		}
		return v
	}

	shed := section(section(doc, "admission"), "shed")
	for _, key := range []string{"rate_limited", "overloaded", "backlog_full"} {
		if n := num(shed, key); n != 0 {
			t.Fatalf("shed.%s = %v on an unloaded server", key, n)
		}
	}

	kernels := section(doc, "kernels")
	if a, ok := kernels["active"].(string); !ok || a == "" {
		t.Fatalf("kernels.active = %v", kernels["active"])
	}
	pre := section(kernels, "prefilter")
	num(pre, "rules_skipped")
	if num(pre, "rules_evaluated") == 0 {
		t.Fatal("kernels.prefilter.rules_evaluated still zero after a fix")
	}
	// The memory section the kernels section rides next to must still
	// be there.
	section(doc, "memory")
}
