// webclient demonstrates the Web-interface integration path: it starts
// the CerFix HTTP server in-process (the same handler `cerfixd`
// serves) and drives the paper's three demonstration facilities over
// the JSON API — rule management, data monitoring and auditing —
// exactly as an external application would.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/server"
)

func main() {
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			log.Fatal(err)
		}
	}
	ts := httptest.NewServer(server.New(sys).Handler())
	defer ts.Close()
	fmt.Println("server:", ts.URL)

	// --- rule management (Fig. 2) ---
	var check map[string]any
	post(ts.URL+"/api/v1/rules/check", nil, &check)
	fmt.Printf("consistency check: consistent=%v issues=%v probes=%v\n\n",
		check["consistent"], lenOf(check["issues"]), check["probes_run"])

	// --- data monitoring (Fig. 3) ---
	var sess struct {
		ID         int64    `json:"id"`
		Suggestion []string `json:"suggestion"`
	}
	post(ts.URL+"/api/v1/sessions", map[string]any{
		"tuple": dataset.DemoInputFig3().Map(),
	}, &sess)
	fmt.Printf("session %d opened; CerFix suggests validating %v\n", sess.ID, sess.Suggestion)

	var round struct {
		Session struct {
			Suggestion []string          `json:"suggestion"`
			Tuple      map[string]string `json:"tuple"`
			Done       bool              `json:"done"`
			Certain    bool              `json:"certain"`
		} `json:"session"`
		Changes []map[string]any `json:"changes"`
	}
	post(fmt.Sprintf("%s/api/v1/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"AC": "201", "phn": "075568485", "type": "2", "item": "DVD"},
	}, &round)
	fmt.Println("round 1 changes:")
	for _, c := range round.Changes {
		fmt.Printf("  %v: %q -> %q (rule %v)\n", c["attr"], c["old"], c["new"], c["rule_id"])
	}
	fmt.Println("next suggestion:", round.Session.Suggestion)

	post(fmt.Sprintf("%s/api/v1/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"zip": "NW1 6XE"},
	}, &round)
	fmt.Printf("round 2: done=%v certain=%v FN=%q\n\n",
		round.Session.Done, round.Session.Certain, round.Session.Tuple["FN"])

	// --- auditing (Fig. 4) ---
	var cell map[string]any
	get(fmt.Sprintf("%s/api/v1/audit/cell?tuple=%d&attr=FN", ts.URL, sess.ID), &cell)
	fmt.Printf("FN provenance: %q -> %q by rule %v using master tuple #%v\n",
		cell["old"], cell["new"], cell["rule_id"], cell["master_id"])

	var stats struct {
		Overall struct {
			UserPct float64 `json:"user_pct"`
			AutoPct float64 `json:"auto_pct"`
		} `json:"overall"`
	}
	get(ts.URL+"/api/v1/audit/stats", &stats)
	fmt.Printf("overall: %.1f%% user / %.1f%% auto\n", stats.Overall.UserPct, stats.Overall.AutoPct)

	// --- batch integration ---
	var batch struct {
		FullyValidated int `json:"fully_validated"`
		CellsRewritten int `json:"cells_rewritten"`
	}
	post(ts.URL+"/api/v1/fix", map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples": []map[string]string{
			dataset.DemoInputFig3().Map(),
			dataset.DemoInputExample1().Map(),
		},
	}, &batch)
	fmt.Printf("batch fix: %d/2 fully validated, %d cells rewritten\n",
		batch.FullyValidated, batch.CellsRewritten)
}

func post(url string, body, out any) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func lenOf(v any) int {
	if s, ok := v.([]any); ok {
		return len(s)
	}
	return 0
}
