// Package cerfix is the public API of the CerFix reproduction: a data
// cleaning system that finds certain fixes — fixes guaranteed correct —
// for tuples at the point of data entry, based on master data, editing
// rules and certain regions (Fan, Li, Ma, Tang, Yu: "CerFix: A System
// for Cleaning Data with Certain Fixes", PVLDB 4(12), 2011).
//
// A System bundles the demo architecture of the paper's Fig. 1: the
// rule engine (editing rules + static analyses), the master data
// manager, the region finder, the data monitor and the data auditing
// module. Typical use:
//
//	sys, _ := cerfix.New(inputSchema, masterSchema, rulesDSL)
//	sys.AddMasterRow("Robert", "Brady", "131", ...)
//	report := sys.CheckConsistency()          // rule engine analysis
//	regions := sys.Regions(5)                 // top-5 certain regions
//	sess, _ := sys.NewSession(map[string]string{...})
//	fmt.Println(sess.Suggestion())            // attributes to validate
//	sess.Validate(map[string]string{"zip": "EH8 4AH"})
//	// ... loop until sess.Done(); audit via sys.Audit().
//
// # Batch repair at scale
//
// Interactive sessions fix one tuple at a time; bulk integrations
// (the POST /api/fix endpoint, `cerfix fix -workers N`) instead run
// non-interactive certain-fix passes through internal/pipeline, a
// streaming sharded executor. Because rules and master data are
// frozen for the duration of a batch, every tuple's chase is
// independent, so the pipeline shards tuples across a worker pool —
// each worker reusing its own chase state against a shared read-only
// engine snapshot (SnapshotEngine) — and re-sequences results so
// output is byte-identical to the sequential path. Bounded channels
// and an in-flight window keep memory flat regardless of input size.
// Snapshots are O(1) versioned copy-on-write views (ARCHITECTURE.md):
// taking one costs microseconds regardless of master size, it is
// internally atomic with respect to master writes, and it is
// lock-free to read — which is what lets many batches, and many
// async job runners, fix concurrently against their own frozen
// views while the live system keeps absorbing master-data inserts.
// For batches too long to hold a connection open, internal/jobs wraps
// the same pipeline in a persistent job queue (cerfixd -jobs-dir,
// POST /api/jobs, `cerfix jobs`): submitted work is journaled,
// tracked through a queued/running/done lifecycle, recovered across
// daemon restarts, and executed by a configurable pool of concurrent
// runners (cerfixd -jobs-workers) with fair FIFO admission.
//
// The subpackages under internal/ implement the pieces; this package
// re-exports the types a downstream user needs.
package cerfix

import (
	"fmt"
	"io"

	"cerfix/internal/audit"
	"cerfix/internal/core"
	"cerfix/internal/discovery"
	"cerfix/internal/faultfs"
	"cerfix/internal/master"
	"cerfix/internal/monitor"
	"cerfix/internal/region"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Re-exported types: the vocabulary of the public API.
type (
	// Schema describes a relation (input or master).
	Schema = schema.Schema
	// Attribute is one schema column.
	Attribute = schema.Attribute
	// Tuple is one row under a schema.
	Tuple = schema.Tuple
	// AttrSet is a set of attribute positions.
	AttrSet = schema.AttrSet
	// Rule is one editing rule.
	Rule = rule.Rule
	// RuleSet is an ordered rule collection.
	RuleSet = rule.Set
	// Session is one interactive fixing session of the data monitor.
	Session = monitor.Session
	// Region is one certain region (Z, Tc).
	Region = region.Region
	// RegionOptions tunes the region finder.
	RegionOptions = region.Options
	// ConsistencyReport is the rule engine's static analysis output.
	ConsistencyReport = core.ConsistencyReport
	// ConsistencyOptions tunes the consistency analyses.
	ConsistencyOptions = core.ConsistencyOptions
	// ChaseResult is the outcome of one fixing pass.
	ChaseResult = core.ChaseResult
	// AuditLog records user validations and rule fixes.
	AuditLog = audit.Log
	// AuditRecord is one audited event.
	AuditRecord = audit.Record
	// AttrStats is the per-attribute audit aggregate (Fig. 4).
	AttrStats = audit.AttrStats
	// MasterStore is the master data manager.
	MasterStore = master.Store
)

// NewSchema builds a relation schema from attribute definitions.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	return schema.New(name, attrs...)
}

// StringAttrs builds string-domain attributes from names — the common
// case for data-entry schemas.
func StringAttrs(names ...string) []Attribute {
	out := make([]Attribute, len(names))
	for i, n := range names {
		out[i] = schema.Str(n)
	}
	return out
}

// ParseRules parses the editing-rule DSL (one rule per line, e.g.
// `phi1: match zip~zip set AC := AC when type = "2"`).
func ParseRules(dsl string) (*RuleSet, error) { return rule.ParseSet(dsl) }

// System is a configured CerFix instance (Fig. 1 of the paper).
type System struct {
	input  *schema.Schema
	store  *master.Store
	rules  *rule.Set
	engine *core.Engine
	log    *audit.Log
	mon    *monitor.Monitor
	// regionOpts is used when (re)computing regions for the monitor.
	regionOpts *region.Options
	// walCursor lets Save prove pure-append windows and go to the WAL
	// instead of rewriting the checkpoint (persist.go).
	walCursor *walCursor
	// loadInfo records provenance when the system came from Load.
	loadInfo *LoadInfo
	// fs routes all persistence I/O; nil means the real filesystem
	// (faultfs.OS). Fault-injection tests swap in an injector.
	fs faultfs.FS
	// health, when set, receives the outcome of every Save so the
	// daemon can degrade gracefully on storage faults (persist.go).
	health *faultfs.Health
}

// pfs returns the filesystem persistence routes through.
func (s *System) pfs() faultfs.FS {
	if s.fs == nil {
		return faultfs.OS
	}
	return s.fs
}

// SetPersistenceHealth wires the persistence health tracker: every
// Save reports its outcome (success restores healthy, a transient
// storage fault degrades).
func (s *System) SetPersistenceHealth(h *faultfs.Health) { s.health = h }

// New creates a system for the given input schema, master schema and
// rule DSL. Master data starts empty; add rows before opening
// sessions (regions and fixes need master coverage).
func New(input, masterSchema *Schema, rulesDSL string) (*System, error) {
	rs, err := rule.ParseSet(rulesDSL)
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	return NewWithRules(input, masterSchema, rs)
}

// NewWithRules is New with an already-built rule set.
func NewWithRules(input, masterSchema *Schema, rs *RuleSet) (*System, error) {
	st := master.New(masterSchema)
	eng, err := core.NewEngine(input, rs, st)
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	return &System{
		input:  input,
		store:  st,
		rules:  rs,
		engine: eng,
		log:    audit.NewLog(),
	}, nil
}

// InputSchema returns the input relation schema.
func (s *System) InputSchema() *Schema { return s.input }

// MasterSchema returns the master relation schema.
func (s *System) MasterSchema() *Schema { return s.store.Schema() }

// Master exposes the master data manager.
func (s *System) Master() *MasterStore { return s.store }

// Audit returns the system-wide audit log.
func (s *System) Audit() *AuditLog { return s.log }

// MemStats reports the master data manager's memory accounting:
// boxed vs columnar-packed bytes, snapshot-shared bytes and COW debt,
// rule-index footprint, and interning-dictionary size. Surfaced on
// GET /api/v1/status and in the jobs queue stats.
func (s *System) MemStats() master.MemStats { return s.store.MemStats() }

// PackMaster converts large mutation-quiet master shards to the
// columnar frozen layout (one []Sym block per shard instead of one
// boxed tuple per row), returning how many shards were packed. Packing
// preserves scan/lookup results byte-for-byte and copy-on-write
// semantics — a later write to a packed shard unpacks a private copy.
// maxShards > 0 bounds the work per call so callers can amortize
// packing over time (cerfixd runs this on a ticker); <= 0 packs every
// eligible shard.
func (s *System) PackMaster(maxShards int) int { return s.store.PackColumnar(maxShards) }

// Engine exposes the underlying rule engine (chase + analyses).
func (s *System) Engine() *core.Engine { return s.engine }

// SnapshotEngine returns a frozen O(1) view of the rule engine — the
// rule set (immutable after publish) plus a copy-on-write master data
// snapshot captured atomically under the store's own lock. Master
// data mutations (AddMasterRow) no longer need caller-side
// serialization with the capture; only the engine-pointer swap of
// AddRule/RemoveRule does (the HTTP server's lock covers it). Once
// taken, any number of goroutines chase against the snapshot while
// the live system keeps mutating — the batch pipeline
// (internal/pipeline) and concurrent job runners (internal/jobs) run
// against such snapshots.
func (s *System) SnapshotEngine() *core.Engine { return s.engine.Snapshot() }

// AddMasterRow appends one master tuple given values in schema order.
func (s *System) AddMasterRow(vals ...string) error {
	_, err := s.store.InsertValues(value.FromStrings(vals)...)
	if err == nil {
		s.mon = nil // regions derive from master data
	}
	return err
}

// LoadMasterCSV bulk-loads master tuples from CSV (header row of
// attribute names required).
func (s *System) LoadMasterCSV(r io.Reader) error {
	if err := s.store.Table().ReadCSV(r); err != nil {
		return err
	}
	if err := s.store.PrepareForRules(s.rules); err != nil {
		return err
	}
	s.mon = nil
	return nil
}

// Rules returns the current rules in DSL form, one per line.
func (s *System) Rules() string { return s.rules.String() }

// RuleSet exposes the rule set.
func (s *System) RuleSet() *RuleSet { return s.rules }

// AddRule parses and installs one rule line, revalidating the set.
// The installed set is a fresh copy (copy-on-write): rule sets are
// immutable once published to an engine, so engine snapshots taken
// before the change keep fixing against the rules of their instant.
func (s *System) AddRule(dsl string) error {
	r, err := rule.Parse(dsl)
	if err != nil {
		return err
	}
	if err := r.Validate(s.input, s.store.Schema()); err != nil {
		return err
	}
	rs := s.rules.Clone()
	if err := rs.Add(r); err != nil {
		return err
	}
	return s.rebuild(rs)
}

// RemoveRule deletes a rule by ID, reporting whether it existed. Like
// AddRule, the change lands in a fresh set copy; published engines
// and snapshots keep theirs.
func (s *System) RemoveRule(id string) bool {
	rs := s.rules.Clone()
	if !rs.Remove(id) {
		return false
	}
	if err := s.rebuild(rs); err != nil {
		// Removal cannot invalidate remaining rules; rebuild errors
		// would indicate a programming error.
		panic(err)
	}
	return true
}

func (s *System) rebuild(rs *rule.Set) error {
	eng, err := core.NewEngine(s.input, rs, s.store)
	if err != nil {
		return err
	}
	s.rules = rs
	s.engine = eng
	s.mon = nil
	return nil
}

// SetRegionOptions overrides the options used when the monitor
// computes its initial-suggestion regions (nil reverts to defaults).
func (s *System) SetRegionOptions(o *RegionOptions) {
	s.regionOpts = o
	s.mon = nil
}

// CheckConsistency runs the rule engine's static analysis (§2: whether
// the rules "are dirty themselves") with default budgets.
func (s *System) CheckConsistency() *ConsistencyReport {
	return s.engine.CheckConsistency(nil)
}

// CheckConsistencyWith runs the analysis with explicit budgets.
func (s *System) CheckConsistencyWith(o *ConsistencyOptions) *ConsistencyReport {
	return s.engine.CheckConsistency(o)
}

// Regions computes the top-k certain regions (k <= 0 returns all).
func (s *System) Regions(k int) []*Region {
	opts := region.Options{}
	if s.regionOpts != nil {
		opts = *s.regionOpts
	}
	opts.K = k
	return region.NewFinder(s.engine).TopK(&opts)
}

// monitorInstance lazily builds the data monitor (regions are
// pre-computed here, as the paper describes, to make suggestions
// cheap).
func (s *System) monitorInstance() *monitor.Monitor {
	if s.mon == nil {
		var regs []*region.Region
		if s.regionOpts != nil {
			regs = region.NewFinder(s.engine).TopK(s.regionOpts)
		} else {
			regs = region.NewFinder(s.engine).TopK(nil)
		}
		s.mon = monitor.New(s.engine, &monitor.Options{Regions: regs, Log: s.log})
	}
	return s.mon
}

// Monitor exposes the data monitor.
func (s *System) Monitor() *monitor.Monitor { return s.monitorInstance() }

// NewSession opens a fixing session for a tuple given as an
// attribute→value map (absent attributes are empty).
func (s *System) NewSession(values map[string]string) (*Session, error) {
	tu, err := schema.TupleFromMap(s.input, values)
	if err != nil {
		return nil, err
	}
	return s.monitorInstance().NewSession(tu)
}

// NewSessionTuple opens a session for an existing tuple.
func (s *System) NewSessionTuple(t *Tuple) (*Session, error) {
	return s.monitorInstance().NewSession(t)
}

// Fix runs a non-interactive certain-fix pass: the caller asserts that
// the given attributes are correct, and the engine fixes what the
// rules warrant. It returns the fixed tuple copy and the chase result.
func (s *System) Fix(t *Tuple, validatedAttrs []string) (*Tuple, *ChaseResult) {
	seed := schema.SetOfNames(s.input, validatedAttrs...)
	res := s.engine.Chase(t, seed)
	return res.Tuple, res
}

// DiscoverRules profiles the system's master data for functional
// dependencies and returns the editing rules derivable from them
// (paper §2: rules can be "derived from integrity constraints ... for
// which discovery algorithms are already in place"). It requires the
// input and master schemas to coincide structurally (same attribute
// names), since the derived rules match and copy attributes by name on
// both sides. Rules are returned for review — install the accepted
// ones with AddRule.
func (s *System) DiscoverRules(maxLHS int) ([]*Rule, error) {
	masterSch := s.store.Schema()
	for _, a := range s.input.AttrNames() {
		if !masterSch.Has(a) {
			return nil, fmt.Errorf("cerfix: discovery needs matching schemas; master lacks %q", a)
		}
	}
	opts := &discovery.Options{MaxLHS: maxLHS}
	rules, _, err := discovery.DeriveRulesFromMaster(s.input, s.store.All(), opts)
	if err != nil {
		return nil, err
	}
	// Re-validate against the actual schema pair (attribute order may
	// differ between input and master).
	for _, r := range rules {
		if err := r.Validate(s.input, masterSch); err != nil {
			return nil, err
		}
	}
	return rules, nil
}
