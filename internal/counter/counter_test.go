package counter

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestMonotonic(t *testing.T) {
	var c Monotonic
	c.Inc()
	c.Add(41)
	c.Add(-100) // dropped: the counter never decreases
	if got := c.Load(); got != 42 {
		t.Fatalf("Load() = %d, want 42", got)
	}
}

func TestMonotonicConcurrent(t *testing.T) {
	var c Monotonic
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load() = %d, want 8000", got)
	}
}

func TestMonotonicJSON(t *testing.T) {
	type block struct {
		RateLimited Monotonic `json:"rate_limited"`
		Overloaded  Monotonic `json:"overloaded"`
	}
	var b block
	b.RateLimited.Add(3)
	out, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"rate_limited":3,"overloaded":0}` {
		t.Fatalf("marshal = %s", out)
	}
}
