package guard

import (
	"context"
	"sync/atomic"
)

// The chaos seam: deterministic runtime-fault injection in the spirit
// of faultfs.Injector, but for compute instead of disk. When enabled
// (cerfixd: CERFIX_CHAOS=1; tests: SetChaos), tuples carrying the
// magic values below misbehave inside the pipeline workers:
//
//	__chaos_panic__  panics mid-chase (proving panic isolation)
//	__chaos_stall__  blocks until the run's context is cancelled
//	                 (proving the stuck-job watchdog)
//
// Stalls draw from an armed budget (ArmStalls) so a test can stall a
// job exactly once and watch the re-queued attempt succeed. The whole
// seam costs one atomic load per pipeline run when disabled.

const (
	// ChaosPanicValue, as any attribute value, panics the worker.
	ChaosPanicValue = "__chaos_panic__"
	// ChaosStallValue, as any attribute value, blocks the worker until
	// the run is cancelled — if the stall budget allows.
	ChaosStallValue = "__chaos_stall__"
)

var (
	chaosOn     atomic.Bool
	stallBudget atomic.Int64
)

// SetChaos enables or disables the seam; disabling clears the stall
// budget.
func SetChaos(on bool) {
	chaosOn.Store(on)
	if !on {
		stallBudget.Store(0)
	}
}

// ChaosEnabled reports whether the seam is armed. Pipeline runs read
// it once at start.
func ChaosEnabled() bool { return chaosOn.Load() }

// ArmStalls sets how many __chaos_stall__ hits actually stall: n < 0
// means every hit (the CI chaos daemon), n == 1 lets a test stall one
// attempt and have the retry pass the same tuple through.
func ArmStalls(n int) { stallBudget.Store(int64(n)) }

// takeStall consumes one unit of stall budget.
func takeStall() bool {
	for {
		n := stallBudget.Load()
		if n == 0 {
			return false
		}
		if n < 0 {
			return true
		}
		if stallBudget.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// ChaosValue applies the seam to one attribute value. Callers gate on
// ChaosEnabled first; a stall parks on ctx (a nil or non-cancellable
// ctx never releases it — production paths always pass the run
// context).
func ChaosValue(ctx context.Context, v string) {
	switch v {
	case ChaosPanicValue:
		panic("chaos: injected panic (tuple value " + ChaosPanicValue + ")")
	case ChaosStallValue:
		if takeStall() {
			if ctx == nil {
				ctx = context.Background()
			}
			<-ctx.Done()
		}
	}
}
