// Package cowmap provides the copy-on-write sharded-map primitive
// shared by the storage tables and the master rule indexes. A map is
// split across a fixed number of Shards; a snapshot marks every shard
// Shared in O(shard count) and references them from a frozen view,
// and the live owner copies a shard (Mut) before its first write into
// it afterwards. One discipline, one implementation — the layers
// differ only in key/value types and in how a key routes to a shard.
package cowmap

import "cerfix/internal/simd"

// Shard is one copy-on-write segment of a sharded map. Once a
// snapshot marks it Shared, the owner must copy it (Mut) before the
// next write; the marked shard object itself is then immutable
// forever, so snapshot readers need no synchronization. Both fields
// are guarded by the owner's write lock on the live side.
type Shard[K comparable, V any] struct {
	M      map[K]V
	Shared bool
}

// New returns an empty private shard.
func New[K comparable, V any]() *Shard[K, V] {
	return &Shard[K, V]{M: make(map[K]V)}
}

// Mut returns a privately-owned shard for the slot: the shard itself
// when no snapshot shares it, otherwise a copy stored back through
// the slot pointer. Callers hold the owner's write lock.
func Mut[K comparable, V any](slot **Shard[K, V]) *Shard[K, V] {
	s := *slot
	if !s.Shared {
		return s
	}
	cp := &Shard[K, V]{M: make(map[K]V, len(s.M))}
	for k, v := range s.M {
		cp.M[k] = v
	}
	*slot = cp
	return cp
}

// MutMap applies the same discipline to an unsharded registry map
// guarded by its own shared flag: when a snapshot shares the map, a
// shallow copy replaces it (and clears the flag) before the caller
// writes. Callers hold the owner's write lock.
func MutMap[K comparable, V any](m *map[K]V, shared *bool) map[K]V {
	if *shared {
		cp := make(map[K]V, len(*m))
		for k, v := range *m {
			cp[k] = v
		}
		*m = cp
		*shared = false
	}
	return *m
}

// FNV routes a string key to one of fanout shards (fanout must be a
// power of two) by FNV-1a hash. Both forms delegate to the simd
// kernel's wide FNV-1a body, which is bit-identical to the scalar
// definition (cowmap_test pins it): equal bytes hash equally whether
// presented as a string or a []byte, so a scratch-encoded probe key
// lands on the shard its string form was stored in — routing
// divergence would silently read the wrong shard.
func FNV(k string, fanout int) int { return int(simd.Hash(k) & uint32(fanout-1)) }

// FNVBytes is FNV for a byte-slice key — same bytes, same shard,
// without converting (and allocating) the string.
func FNVBytes(k []byte, fanout int) int { return int(simd.HashBytes(k) & uint32(fanout-1)) }
