package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/jobs"
	"cerfix/internal/server"
)

// jobsDaemon spins up an in-process cerfixd equivalent with the jobs
// subsystem enabled.
func jobsDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(sys)
	mgr, err := jobs.Open(jobs.Config{
		Dir:       t.TempDir(),
		Schema:    sys.InputSchema(),
		Snapshot:  srv.SnapshotEngine,
		InputRoot: "/", // tests submit from arbitrary temp dirs
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(context.Background()) })
	srv.AttachJobs(mgr)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestCmdJobsRoundTrip(t *testing.T) {
	ts := jobsDaemon(t)
	dir := t.TempDir()
	dirtyCSV := filepath.Join(dir, "dirty.csv")
	rows := [][]string{dataset.DemoInputExample1().Vals.Strings()}
	if err := writeCSV(dirtyCSV, dataset.CustSchema().AttrNames(), rows); err != nil {
		t.Fatal(err)
	}

	// Inline submit + wait runs the job to done.
	if err := cmdJobs([]string{"submit",
		"-addr", ts.URL, "-validated", "zip", "-data", dirtyCSV, "-wait",
	}); err != nil {
		t.Fatal(err)
	}
	// The daemon-side path variant works too.
	if err := cmdJobs([]string{"submit",
		"-addr", ts.URL, "-validated", "zip", "-data", dirtyCSV, "-server-path", "-wait",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdJobs([]string{"list", "-addr", ts.URL}); err != nil {
		t.Fatal(err)
	}
	if err := cmdJobs([]string{"status", "-addr", ts.URL, "-id", "j000001"}); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "results.jsonl")
	if err := cmdJobs([]string{"results", "-addr", ts.URL, "-id", "j000001", "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), `"AC":"131"`) {
		t.Fatalf("results artifact missing fixed AC:\n%s", got)
	}

	// Error paths: unknown verb, unknown id.
	if err := cmdJobs([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if err := cmdJobs([]string{"status", "-addr", ts.URL, "-id", "j999999"}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := cmdJobs(nil); err == nil {
		t.Fatal("missing verb accepted")
	}
}

func TestLoadTuplesFormats(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	if err := writeCSV(csvPath, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	tuples, err := loadTuples(csvPath, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[0]["a"] != "1" || tuples[1]["b"] != "4" {
		t.Fatalf("csv tuples = %+v", tuples)
	}
	jsonlPath := filepath.Join(dir, "in.jsonl")
	if err := os.WriteFile(jsonlPath, []byte("{\"a\":\"5\",\"b\":\"6\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tuples, err = loadTuples(jsonlPath, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0]["a"] != "5" {
		t.Fatalf("jsonl tuples = %+v", tuples)
	}
	if _, err := loadTuples(csvPath, "parquet"); err == nil {
		t.Fatal("bad format accepted")
	}
	if got := guessFormat("x.jsonl"); got != "jsonl" {
		t.Fatalf("guessFormat(.jsonl) = %s", got)
	}
	if got := guessFormat("x.csv"); got != "csv" {
		t.Fatalf("guessFormat(.csv) = %s", got)
	}
}

// waitForJob honors Retry-After on shed polls — a 429 or 503 backs
// off for the hinted duration instead of failing the wait — and
// jitters every sleep ±25% around its base.
func TestWaitForJobHonorsRetryAfter(t *testing.T) {
	type scripted struct {
		status int
		retry  string // Retry-After header, "" for none
		body   string
	}
	script := []scripted{
		{429, "2", `{"error":{"code":"rate_limited","message":"slow down","request_id":"r1"}}`},
		{503, "1", `{"error":{"code":"memory_degraded","message":"heap high","request_id":"r2"}}`},
		{200, "", `{"id":"j000001","state":"running"}`},
		{200, "", `{"id":"j000001","state":"done"}`},
	}
	var polls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/jobs/j000001" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		step := script[polls]
		polls++
		if step.retry != "" {
			w.Header().Set("Retry-After", step.retry)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(step.status)
		_, _ = w.Write([]byte(step.body))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	j := jobView{ID: "j000001", State: "queued"}
	err := waitForJob(newJobsClient(ts.URL), "j000001", &j, func(d time.Duration) {
		sleeps = append(sleeps, d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != "done" || polls != len(script) {
		t.Fatalf("state=%s polls=%d", j.State, polls)
	}
	// Sleep sequence: base, retry(2s), base, retry(1s), base, base —
	// each jittered within [0.75d, 1.25d].
	wantBase := []time.Duration{200 * time.Millisecond, 2 * time.Second, 200 * time.Millisecond,
		1 * time.Second, 200 * time.Millisecond, 200 * time.Millisecond}
	if len(sleeps) != len(wantBase) {
		t.Fatalf("sleeps = %v, want %d entries", sleeps, len(wantBase))
	}
	for i, d := range sleeps {
		lo, hi := wantBase[i]*3/4, wantBase[i]*5/4
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %s, want within [%s, %s]", i, d, lo, hi)
		}
	}
}

// A non-shed error (a 404 for an unknown job) still fails the wait
// immediately — back-off is only for transient sheds.
func TestWaitForJobFailsOnHardError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(404)
		_, _ = w.Write([]byte(`{"error":{"code":"not_found","message":"no such job","request_id":"r1"}}`))
	}))
	defer ts.Close()
	j := jobView{ID: "jX", State: "queued"}
	err := waitForJob(newJobsClient(ts.URL), "jX", &j, func(time.Duration) {})
	if err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Fatalf("err = %v, want not_found failure", err)
	}
}
