// Command cerfixd serves the CerFix web interface (data explorer) as a
// JSON API over HTTP — the reproduction of the demo's rule manager,
// data monitor and auditing views (paper Figs. 2–4). Start it against
// your own configuration:
//
//	cerfixd -addr :8080 \
//	  -input "CUST:FN,LN,AC,phn,type,str,city,zip,item" \
//	  -master-schema "PERSON:FN,LN,AC,Hphn,Mphn,str,city,zip,DOB,gender" \
//	  -rules rules.txt -master master.csv
//
// or with the built-in paper demo configuration:
//
//	cerfixd -addr :8080 -demo
//
// or from a saved instance directory (System.Save layout; any
// wal.jsonl is replayed on top of the checkpoint and the load
// provenance — directory, backup fallback, WAL rows — is reported
// under "persistence" on GET /api/v1/status):
//
//	cerfixd -addr :8080 -load ./instance
//
// With -jobs-dir the daemon additionally serves the persistent async
// batch-repair queue (/api/jobs, see internal/jobs): submitted jobs
// are journaled to that directory, run off the request path against
// O(1) copy-on-write engine snapshots, and are recovered — re-queued
// and completed — if the daemon restarts mid-queue or mid-run.
// -jobs-workers runs several jobs concurrently (fair FIFO admission);
// snapshots are free, so extra runners cost only the CPU they use. On shutdown the -drain
// window covers both in-flight HTTP requests and the running job;
// work that does not finish in time is re-queued for the next start.
// Submissions referencing server-side files (input_path) are only
// accepted under -jobs-input-root; without it, clients must upload
// tuples inline.
//
// The production front door (see docs/API.md) is configured with:
// -rate/-burst enable per-key token-bucket rate limiting (key =
// X-Api-Key, else client IP); -max-sync-fix caps concurrent
// synchronous POST /fix runs; -max-queued-jobs bounds the persistent
// backlog. Past any limit, requests shed with a 429 envelope and a
// computed Retry-After instead of queueing. -access-log emits one
// structured line per request.
//
// Runtime guardrails (see internal/guard): -request-timeout bounds
// every non-streaming request (504 deadline_exceeded on expiry);
// -max-body caps request bodies (413 body_too_large); -job-timeout
// gives each job run a wall-clock budget (terminal failure on expiry);
// -stall-timeout arms the stuck-job watchdog (a run making no tuple
// progress is cancelled and re-queued with bounded attempts); and
// -mem-soft/-mem-hard are heap watermarks past which job submissions
// shed with 429 memory_pressure and 503 memory_degraded respectively,
// with hysteresis. Runner panics never kill the daemon: they fail the
// job with the goroutine stack journaled to its record.
//
// Endpoints are mounted under /api/v1 (canonical) and /api
// (byte-identical alias): see docs/API.md and internal/server (GET
// /api/v1/status, /rules, /regions, /master, /sessions, /audit/...,
// /fix, /jobs).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cerfix"
	"cerfix/internal/admission"
	"cerfix/internal/dataset"
	"cerfix/internal/faultfs"
	"cerfix/internal/guard"
	"cerfix/internal/jobs"
	"cerfix/internal/server"
	"cerfix/internal/simd"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		demo        = flag.Bool("demo", false, "serve the built-in paper demo configuration")
		loadDir     = flag.String("load", "", "load a saved instance directory (System.Save layout: manifest.json, rules.txt, master.csv, optional wal.jsonl; provenance on /api/v1/status)")
		inputSpec   = flag.String("input", "", `input schema spec "NAME:attr1,..."`)
		masterSpec  = flag.String("master-schema", "", `master schema spec "NAME:attr1,..."`)
		rulesPath   = flag.String("rules", "", "editing-rule DSL file")
		masterPath  = flag.String("master", "", "master data CSV file")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight requests and running jobs")
		jobsDir     = flag.String("jobs-dir", "", "directory for the persistent async batch-repair job queue (empty = /api/jobs disabled)")
		jobsInput   = flag.String("jobs-input-root", "", "directory server-side job input paths may reference (empty = inline tuples only)")
		jobsWorkers = flag.Int("jobs-workers", 1, "concurrent job runners (fair FIFO admission; each run uses its own O(1) engine snapshot)")
		probeEvery  = flag.Duration("persist-probe", 3*time.Second, "min interval between persistence health probes while degraded (with -jobs-dir; submissions shed 503 persistence_degraded until a probe succeeds)")
		rate        = flag.Float64("rate", 0, "per-key admission rate in requests/second (0 = rate limiting off)")
		burst       = flag.Int("burst", 0, "per-key token-bucket burst capacity (with -rate; min 1)")
		maxSyncFix  = flag.Int("max-sync-fix", 0, "max concurrent synchronous /fix runs; excess sheds 429 (0 = unlimited)")
		maxQueued   = flag.Int("max-queued-jobs", 0, "max queued jobs in the persistent backlog; excess sheds 429 (0 = unbounded)")
		accessLog   = flag.Bool("access-log", false, "log one structured line per request (status, duration, shed reason)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline on non-streaming endpoints; expiry answers 504 deadline_exceeded (0 = off)")
		jobTimeout  = flag.Duration("job-timeout", 0, "wall-clock deadline per job run; expiry fails the job terminally (0 = off)")
		stallTO     = flag.Duration("stall-timeout", 0, "stuck-job watchdog: a run making no tuple progress for this long is cancelled and re-queued within -max-attempts (0 = off)")
		maxBody     = flag.String("max-body", "64MiB", "max request body size (e.g. 64MiB, 1GiB); excess answers 413 body_too_large (empty or 0 = unlimited)")
		memSoft     = flag.String("mem-soft", "", "heap soft watermark (e.g. 1GiB): past it, job submissions shed with 429 memory_pressure (empty = off)")
		memHard     = flag.String("mem-hard", "", "heap hard watermark: past it, submissions answer 503 memory_degraded and /status reports the state (empty = off)")
		packEvery   = flag.Duration("pack-interval", time.Minute, "how often to pack mutation-quiet master shards into the columnar frozen layout (0 = never)")
		packShards  = flag.Int("pack-shards", 8, "max master shards packed per -pack-interval tick (bounds per-tick work; <= 0 packs all eligible)")
	)
	flag.Parse()

	sys, err := buildSystem(*demo, *loadDir, *inputSpec, *masterSpec, *rulesPath, *masterPath)
	if err != nil {
		log.Fatal("cerfixd: ", err)
	}
	maxBodyBytes, err := guard.ParseBytes(*maxBody)
	if err != nil {
		log.Fatal("cerfixd: -max-body: ", err)
	}
	srv := server.New(sys)
	srv.SetLimits(server.Limits{
		Rate: *rate, Burst: *burst, MaxSyncFix: *maxSyncFix,
		RequestTimeout: *reqTimeout, MaxBody: int64(maxBodyBytes),
	})
	if *accessLog {
		srv.SetAccessLog(log.New(os.Stderr, "", log.LstdFlags))
	}
	if *rate > 0 || *maxSyncFix > 0 || *maxQueued > 0 {
		log.Printf("cerfixd: admission limits: rate=%g/s burst=%d max-sync-fix=%d max-queued-jobs=%d",
			*rate, *burst, *maxSyncFix, *maxQueued)
	}
	if *reqTimeout > 0 || *jobTimeout > 0 || *stallTO > 0 {
		log.Printf("cerfixd: guardrails: request-timeout=%s job-timeout=%s stall-timeout=%s max-body=%d",
			*reqTimeout, *jobTimeout, *stallTO, maxBodyBytes)
	}
	// Heap-watermark shedding: the monitor samples the live heap and
	// drives soft (429) and hard (503 memory_degraded) shedding of job
	// submissions, with hysteresis so the state cannot flap at sample
	// rate. Transitions are logged; /api/v1/status shows the state
	// under guardrails.memory.
	softBytes, err := guard.ParseBytes(*memSoft)
	if err != nil {
		log.Fatal("cerfixd: -mem-soft: ", err)
	}
	hardBytes, err := guard.ParseBytes(*memHard)
	if err != nil {
		log.Fatal("cerfixd: -mem-hard: ", err)
	}
	if softBytes > 0 || hardBytes > 0 {
		mon := guard.NewMemMonitor(guard.MemConfig{Soft: softBytes, Hard: hardBytes})
		mon.SetOnChange(func(old, new admission.Pressure, heapBytes uint64) {
			log.Printf("cerfixd: memory pressure %s -> %s (heap %d bytes)", old, new, heapBytes)
		})
		mon.Start()
		defer mon.Close()
		srv.SetMemMonitor(mon)
		log.Printf("cerfixd: memory watermarks: soft=%d hard=%d bytes", softBytes, hardBytes)
	}
	// CERFIX_CHAOS=1 arms the chaos seam — reserved tuple values panic
	// or stall workers — so a CI harness can prove panic isolation and
	// watchdog recovery against a real daemon. Never set in production.
	if os.Getenv("CERFIX_CHAOS") == "1" {
		guard.SetChaos(true)
		guard.ArmStalls(-1)
		log.Printf("cerfixd: CHAOS MODE ARMED (CERFIX_CHAOS=1): reserved tuple values inject panics and stalls")
	}
	// The jobs manager re-queues interrupted work at Open, so a daemon
	// restart resumes queued and running batches from the journal.
	var mgr *jobs.Manager
	if *jobsDir != "" {
		// Degraded-mode wiring: every durable jobs write reports into
		// health; while degraded, submissions and saves shed with a
		// typed 503 and the probe readmits them when the disk recovers.
		// Transitions are logged, and /api/v1/status surfaces the state
		// under persistence.health.
		health := faultfs.NewHealth(faultfs.DiskProbe(faultfs.OS, *jobsDir), *probeEvery)
		health.SetOnChange(func(degraded bool, reason string) {
			if degraded {
				log.Printf("cerfixd: persistence degraded (%s); shedding job submissions with 503 persistence_degraded", reason)
			} else {
				log.Printf("cerfixd: persistence recovered; job submissions readmitted")
			}
		})
		mgr, err = jobs.Open(jobs.Config{
			Dir:          *jobsDir,
			Schema:       sys.InputSchema(),
			Snapshot:     srv.SnapshotEngine,
			MasterMemory: sys.MemStats,
			InputRoot:    *jobsInput,
			Workers:      *jobsWorkers,
			MaxQueued:    *maxQueued,
			Health:       health,
			JobTimeout:   *jobTimeout,
			StallTimeout: *stallTO,
		})
		if err != nil {
			log.Fatal("cerfixd: ", err)
		}
		srv.AttachJobs(mgr)
		srv.SetPersistenceHealth(health)
		sys.SetPersistenceHealth(health)
		recovered := 0
		for _, j := range mgr.List() {
			if j.State == jobs.StateQueued {
				recovered++
			}
		}
		log.Printf("cerfixd: jobs directory %s (%d queued, %d runners)", *jobsDir, recovered, mgr.Workers())
	}
	// Columnar packing is decoupled from snapshotting (snapshots stay
	// O(1)); the daemon amortizes it on a ticker instead, a few shards
	// per tick, off the request path. Packed shards cut master memory
	// to one []Sym block per shard; GET /api/v1/status shows the
	// boxed/packed balance under "memory".
	if *packEvery > 0 {
		go func() {
			t := time.NewTicker(*packEvery)
			defer t.Stop()
			for range t.C {
				if n := sys.PackMaster(*packShards); n > 0 {
					log.Printf("cerfixd: packed %d master shard(s) into columnar layout", n)
				}
			}
		}()
	}
	// An explicit http.Server rather than bare ListenAndServe: the
	// header timeout closes slowloris connections, and Shutdown gives
	// in-flight batch repairs a drain window instead of killing them
	// mid-pipeline.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if ov := simd.Override(); ov != "" {
		log.Printf("cerfixd: simd kernels: %s (CERFIX_KERNELS=%s)", simd.Active(), ov)
	} else {
		log.Printf("cerfixd: simd kernels: %s", simd.Active())
	}
	log.Printf("cerfixd: serving on %s (input %s, master %s, %d rules, %d master tuples)",
		*addr, sys.InputSchema().Name(), sys.MasterSchema().Name(),
		sys.RuleSet().Len(), sys.Master().Len())

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal("cerfixd: ", err)
	case sig := <-sigc:
		log.Printf("cerfixd: %v — draining for up to %s", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("cerfixd: shutdown: ", err)
		}
		if mgr != nil {
			// Give the running job the rest of the drain window; an
			// interrupted run is journaled back to queued and re-runs
			// on the next start.
			if err := mgr.Close(ctx); err != nil {
				log.Printf("cerfixd: jobs drain: %v (interrupted work re-queued)", err)
			}
		}
	}
}

func buildSystem(demo bool, loadDir, inputSpec, masterSpec, rulesPath, masterPath string) (*cerfix.System, error) {
	if loadDir != "" {
		if demo || inputSpec != "" || masterSpec != "" || rulesPath != "" || masterPath != "" {
			return nil, fmt.Errorf("-load is exclusive with -demo/-input/-master-schema/-rules/-master")
		}
		sys, err := cerfix.Load(loadDir)
		if err != nil {
			return nil, err
		}
		info := sys.LoadInfo()
		log.Printf("cerfixd: loaded instance %s (%d master tuples, %d WAL rows replayed, backup fallback: %v)",
			info.Dir, sys.Master().Len(), info.WALRows, info.UsedBackup)
		return sys, nil
	}
	if demo {
		sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
		if err != nil {
			return nil, err
		}
		for _, row := range dataset.DemoMasterRows() {
			if err := sys.AddMasterRow(row.Strings()...); err != nil {
				return nil, err
			}
		}
		return sys, nil
	}
	if inputSpec == "" || masterSpec == "" || rulesPath == "" {
		return nil, fmt.Errorf("need -demo, or -input, -master-schema and -rules")
	}
	input, err := parseSchemaSpec(inputSpec)
	if err != nil {
		return nil, err
	}
	masterSch, err := parseSchemaSpec(masterSpec)
	if err != nil {
		return nil, err
	}
	dsl, err := os.ReadFile(rulesPath)
	if err != nil {
		return nil, err
	}
	sys, err := cerfix.New(input, masterSch, string(dsl))
	if err != nil {
		return nil, err
	}
	if masterPath != "" {
		f, err := os.Open(masterPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := sys.LoadMasterCSV(f); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func parseSchemaSpec(spec string) (*cerfix.Schema, error) {
	name, attrs, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return nil, fmt.Errorf("bad schema spec %q (want NAME:attr1,attr2,...)", spec)
	}
	parts := strings.Split(attrs, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return cerfix.NewSchema(name, cerfix.StringAttrs(parts...)...)
}
