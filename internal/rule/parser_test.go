package rule

import (
	"strings"
	"testing"

	"cerfix/internal/pattern"
)

func TestParseSimple(t *testing.T) {
	r, err := Parse(`phi1: match zip~zip set AC := AC`)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "phi1" {
		t.Errorf("ID = %q", r.ID)
	}
	if len(r.Match) != 1 || r.Match[0] != (Correspondence{"zip", "zip"}) {
		t.Errorf("Match = %v", r.Match)
	}
	if len(r.Set) != 1 || r.Set[0] != (Correspondence{"AC", "AC"}) {
		t.Errorf("Set = %v", r.Set)
	}
	if !r.When.IsEmpty() {
		t.Errorf("When = %v, want empty", r.When)
	}
}

func TestParseMultiCorrespondence(t *testing.T) {
	r, err := Parse(`phi6: match AC~AC, phn~Hphn set str := str when type = "1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Match) != 2 || r.Match[1] != (Correspondence{"phn", "Hphn"}) {
		t.Errorf("Match = %v", r.Match)
	}
	if len(r.When.Conds) != 1 || r.When.Conds[0].Op != pattern.OpEq {
		t.Errorf("When = %v", r.When)
	}
}

func TestParseMultiSet(t *testing.T) {
	r, err := Parse(`g: match zip~zip set AC := AC, city := city`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Set) != 2 || r.Set[1] != (Correspondence{"city", "city"}) {
		t.Errorf("Set = %v", r.Set)
	}
}

func TestParseOperators(t *testing.T) {
	r, err := Parse(`x: match a~b set c := d when p != "0800" and q < "5" and r <= "5" and s > "5" and u >= "5"`)
	if err != nil {
		t.Fatal(err)
	}
	ops := []pattern.Op{pattern.OpNe, pattern.OpLt, pattern.OpLe, pattern.OpGt, pattern.OpGe}
	if len(r.When.Conds) != len(ops) {
		t.Fatalf("conds = %d", len(r.When.Conds))
	}
	for i, c := range r.When.Conds {
		if c.Op != ops[i] {
			t.Errorf("cond %d op = %v, want %v", i, c.Op, ops[i])
		}
	}
}

func TestParseIn(t *testing.T) {
	r, err := Parse(`x: match a~b set c := d when AC in {"131", "020"}`)
	if err != nil {
		t.Fatal(err)
	}
	c := r.When.Conds[0]
	if c.Op != pattern.OpIn || len(c.Set) != 2 {
		t.Fatalf("IN condition = %v", c)
	}
}

func TestParseWildcard(t *testing.T) {
	r, err := Parse(`x: match a~b set c := d when e = _`)
	if err != nil {
		t.Fatal(err)
	}
	if r.When.Conds[0].Op != pattern.OpAny {
		t.Fatalf("wildcard condition = %v", r.When.Conds[0])
	}
}

func TestParseBareConstant(t *testing.T) {
	r, err := Parse(`x: match a~b set c := d when type = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if r.When.Conds[0].Const != "2" {
		t.Fatalf("bare constant = %q", r.When.Conds[0].Const)
	}
}

func TestParseComment(t *testing.T) {
	r, err := Parse(`x: match a~b set c := d # phone normalization`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Comment != "phone normalization" {
		t.Errorf("Comment = %q", r.Comment)
	}
	// '#' inside quotes is not a comment.
	r2, err := Parse(`x: match a~b set c := d when e = "#1"`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.When.Conds[0].Const != "#1" {
		t.Errorf("quoted # mangled: %q", r2.When.Conds[0].Const)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`: match a~b set c := d`,
		`x match a~b set c := d`,
		`x: a~b set c := d`,
		`x: match a b set c := d`,
		`x: match a~ set c := d`,
		`x: match a~b set c = d`,
		`x: match a~b`,
		`x: match a~b set c := d when`,
		`x: match a~b set c := d when e`,
		`x: match a~b set c := d when e = `,
		`x: match a~b set c := d when e in {`,
		`x: match a~b set c := d when e in {"a"`,
		`x: match a~b set c := d trailing junk`,
		`x: match a~b set c := d when e = "unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", src)
		}
	}
}

func TestParseSetDocument(t *testing.T) {
	src := `
# The demo's mobile-phone rules.
phi4: match phn~Mphn set FN := FN when type = "2"
phi5: match phn~Mphn set LN := LN when type = "2"

phi9: match AC~AC set city := city when AC != "0800"
`
	s, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	ids := s.IDs()
	if ids[0] != "phi4" || ids[2] != "phi9" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestParseSetReportsLine(t *testing.T) {
	src := "a: match x~y set z := w\nbroken line here\n"
	_, err := ParseSet(src)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should cite line 2, got %v", err)
	}
	dup := "a: match x~y set z := w\na: match x~y set z := w\n"
	if _, err := ParseSet(dup); err == nil {
		t.Fatal("duplicate id across lines accepted")
	}
}

func TestSetStringParseRoundTrip(t *testing.T) {
	src := `phi6: match AC~AC, phn~Hphn set str := str when type = "1"
phi9: match AC~AC set city := city when AC != "0800"
phi1: match zip~zip set AC := AC`
	s, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSet(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s.String() != s2.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", s.String(), s2.String())
	}
}
