package cerfix

// Cross-family integration tests: the full pipeline — generate master
// data, inject noise, open sessions, drive them with the oracle,
// verify certain fixes and audit bookkeeping — on each of the three
// workload families (customers, HOSP, DBLP). These are the end-to-end
// guarantees everything else composes into.

import (
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/metrics"
	"cerfix/internal/monitor"
	"cerfix/internal/oracle"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
)

// familyCase bundles one workload family's configuration.
type familyCase struct {
	name   string
	schema *schema.Schema
	rules  *rule.Set
	load   func(t *testing.T) (*master.Store, []*schema.Tuple, []*schema.Tuple)
}

func familyCases(t *testing.T) []familyCase {
	t.Helper()
	n := 60
	if testing.Short() {
		n = 15
	}
	return []familyCase{
		{
			name:   "customers",
			schema: dataset.CustSchema(),
			rules:  dataset.DemoRules(),
			load: func(t *testing.T) (*master.Store, []*schema.Tuple, []*schema.Tuple) {
				g := dataset.NewCustomerGen(201)
				w, err := g.GenerateWorkload(40, n, 0.35, nil)
				if err != nil {
					t.Fatal(err)
				}
				return w.Store, w.Dirty, w.Truth
			},
		},
		{
			name:   "hosp",
			schema: dataset.HospSchema(),
			rules:  dataset.HospRules(),
			load: func(t *testing.T) (*master.Store, []*schema.Tuple, []*schema.Tuple) {
				g := dataset.NewHospGen(202)
				w, err := g.GenerateWorkload(30, n, 0.35)
				if err != nil {
					t.Fatal(err)
				}
				return w.Store, w.Dirty, w.Truth
			},
		},
		{
			name:   "dblp",
			schema: dataset.DblpSchema(),
			rules:  dataset.DblpRules(),
			load: func(t *testing.T) (*master.Store, []*schema.Tuple, []*schema.Tuple) {
				g := dataset.NewDblpGen(203)
				w, err := g.GenerateWorkload(50, n, 0.35)
				if err != nil {
					t.Fatal(err)
				}
				return w.Store, w.Dirty, w.Truth
			},
		},
	}
}

// Every family: rules consistent, regions exist, oracle-driven
// sessions reach the exact ground truth with precision/recall 1.0, and
// the audit log accounts for every cell.
func TestEndToEndAllFamilies(t *testing.T) {
	for _, fc := range familyCases(t) {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			store, dirty, truth := fc.load(t)
			eng, err := core.NewEngine(fc.schema, fc.rules, store)
			if err != nil {
				t.Fatal(err)
			}
			// Rule-set health.
			rep := eng.CheckConsistency(&core.ConsistencyOptions{MaxProbeTuples: 8})
			if !rep.Consistent() {
				t.Fatalf("rules inconsistent: %v", rep.Errors())
			}
			mon := monitor.New(eng, nil)
			if len(mon.Regions()) == 0 {
				t.Fatal("no certain regions")
			}
			var q metrics.RepairQuality
			attrs := fc.schema.Len()
			for i := range dirty {
				sess, err := mon.NewSession(dirty[i])
				if err != nil {
					t.Fatal(err)
				}
				u := oracle.NewUser(truth[i], oracle.FollowSuggestions)
				if _, err := u.RunSession(sess); err != nil {
					t.Fatalf("tuple %d: %v", i, err)
				}
				if !sess.Certain() {
					t.Fatalf("tuple %d not certain: %v", i, sess.Conflicts)
				}
				if !sess.Tuple.Equal(truth[i]) {
					t.Fatalf("tuple %d: %v != %v", i, sess.Tuple, truth[i])
				}
				if err := q.Add(dirty[i], sess.Tuple, truth[i]); err != nil {
					t.Fatal(err)
				}
				// Audit accounting: every attribute of the tuple has a
				// record (user assertion or rule event).
				seen := schema.EmptySet
				for _, rec := range mon.Log().TupleHistory(sess.ID) {
					if idx, ok := fc.schema.Index(rec.Attr); ok {
						seen = seen.With(idx)
					}
				}
				if seen.Count() != attrs {
					t.Fatalf("tuple %d: audit covers %d/%d attributes",
						i, seen.Count(), attrs)
				}
			}
			// End-to-end quality: with correct assertions, everything
			// is repaired and nothing breaks.
			if q.Recall() != 1.0 || q.ResidualErrors != 0 || q.BrokenCells != 0 {
				t.Fatalf("quality = %s", q.String())
			}
		})
	}
}

// The facade handles all three families through the same API surface.
func TestFacadeAllFamilies(t *testing.T) {
	for _, fc := range familyCases(t) {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			store, dirty, truth := fc.load(t)
			sys, err := NewWithRules(fc.schema, store.Schema(), fc.rules)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range store.All() {
				if err := sys.AddMasterRow(s.Vals.Strings()...); err != nil {
					t.Fatal(err)
				}
			}
			// A single representative session through the facade.
			sess, err := sys.NewSessionTuple(dirty[0])
			if err != nil {
				t.Fatal(err)
			}
			for rounds := 0; !sess.Done() && rounds < fc.schema.Len()+2; rounds++ {
				ans := make(map[string]string)
				for _, a := range sess.Suggestion() {
					ans[a] = string(truth[0].Get(a))
				}
				if _, err := sess.Validate(ans); err != nil {
					t.Fatal(err)
				}
			}
			if !sess.Certain() || !sess.Tuple.Equal(truth[0]) {
				t.Fatalf("facade session failed: %v", sess.Tuple)
			}
		})
	}
}
