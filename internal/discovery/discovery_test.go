package discovery

import (
	"strings"
	"testing"

	"cerfix/internal/cfd"
	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func smallSchema() *schema.Schema {
	return schema.MustNew("R", schema.Str("zip"), schema.Str("city"), schema.Str("name"))
}

func rowsOf(sch *schema.Schema, data [][]string) []*schema.Tuple {
	out := make([]*schema.Tuple, len(data))
	for i, d := range data {
		out[i] = schema.MustTuple(sch, value.FromStrings(d)...)
	}
	return out
}

func TestDiscoverFDsBasic(t *testing.T) {
	sch := smallSchema()
	rows := rowsOf(sch, [][]string{
		{"Z1", "Edi", "A"},
		{"Z1", "Edi", "B"},
		{"Z2", "Ldn", "C"},
		{"Z3", "Edi", "D"},
	})
	fds := DiscoverFDs(sch, rows, nil)
	want := map[string]bool{}
	for _, f := range fds {
		want[f.String()] = true
	}
	// zip -> city holds; city -> zip does not (Edi has Z1 and Z3);
	// name -> zip and name -> city hold (names unique).
	if !want["zip -> city"] {
		t.Fatalf("zip -> city not discovered: %v", fds)
	}
	if want["city -> zip"] {
		t.Fatalf("city -> zip wrongly discovered: %v", fds)
	}
	if !want["name -> city"] || !want["name -> zip"] {
		t.Fatalf("key FDs missing: %v", fds)
	}
}

func TestDiscoverFDsMinimality(t *testing.T) {
	sch := smallSchema()
	rows := rowsOf(sch, [][]string{
		{"Z1", "Edi", "A"},
		{"Z2", "Ldn", "B"},
	})
	fds := DiscoverFDs(sch, rows, &Options{MaxLHS: 2})
	for _, f := range fds {
		if len(f.LHS) == 2 {
			// Any single attribute already determines everything on
			// this 2-row instance, so no 2-attribute LHS is minimal.
			t.Fatalf("non-minimal FD reported: %v", f)
		}
	}
}

func TestDiscoverFDsEmptyAndBound(t *testing.T) {
	sch := smallSchema()
	if fds := DiscoverFDs(sch, nil, nil); fds != nil {
		t.Fatalf("FDs from empty instance: %v", fds)
	}
	rows := rowsOf(sch, [][]string{{"Z1", "Edi", "A"}, {"Z1", "Ldn", "A"}})
	fds := DiscoverFDs(sch, rows, &Options{MaxLHS: 1})
	for _, f := range fds {
		if len(f.LHS) > 1 {
			t.Fatalf("MaxLHS violated: %v", f)
		}
	}
}

func TestDiscoverFDsOnHospMaster(t *testing.T) {
	g := dataset.NewHospGen(3)
	rows := g.GenerateMasterRows(30)
	sch := dataset.HospSchema()
	tuples := make([]*schema.Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = schema.MustTuple(sch, r...)
	}
	fds := DiscoverFDs(sch, tuples, &Options{MaxLHS: 1})
	got := map[string]bool{}
	for _, f := range fds {
		got[f.String()] = true
	}
	// The generator's documented functional structure must be found.
	for _, want := range []string{
		"prov -> hospital", "prov -> addr", "prov -> county",
		"zip -> city", "zip -> state", "phone -> zip",
		"mcode -> mname", "mcode -> condition",
	} {
		if !got[want] {
			t.Errorf("expected FD %q not discovered (got %v)", want, fds)
		}
	}
}

func TestDiscoverConstantCFDs(t *testing.T) {
	sch := smallSchema()
	rows := rowsOf(sch, [][]string{
		{"Z1", "Edi", "A"},
		{"Z1", "Edi", "B"},
		{"Z1", "Edi", "C"},
		{"Z2", "Ldn", "D"},
		{"Z2", "Ldn", "E"},
	})
	ccfds := DiscoverConstantCFDs(sch, rows, &Options{MinSupport: 2})
	found := false
	for _, c := range ccfds {
		if c.LHS[0].Attr == "zip" && *c.LHS[0].Const == "Z1" &&
			c.RHSAttr == "city" && c.RHSConst == "Edi" {
			found = true
			if c.Support != 3 || c.Confidence != 1.0 {
				t.Fatalf("support/confidence wrong: %+v", c)
			}
			if !strings.Contains(c.String(), "sup=3") {
				t.Errorf("String = %q", c.String())
			}
		}
		// MinSupport honored.
		if c.Support < 2 {
			t.Fatalf("support below threshold: %+v", c)
		}
	}
	if !found {
		t.Fatalf("Z1 -> Edi not discovered: %v", ccfds)
	}
}

func TestDiscoverConstantCFDsConfidence(t *testing.T) {
	sch := smallSchema()
	rows := rowsOf(sch, [][]string{
		{"Z1", "Edi", "A"},
		{"Z1", "Edi", "B"},
		{"Z1", "Ldn", "C"}, // 2/3 confidence for Z1 -> Edi
	})
	strict := DiscoverConstantCFDs(sch, rows, &Options{MinSupport: 2, MinConfidence: 1.0})
	for _, c := range strict {
		if c.LHS[0].Attr == "zip" && c.RHSAttr == "city" {
			t.Fatalf("low-confidence CFD passed strict threshold: %v", c)
		}
	}
	loose := DiscoverConstantCFDs(sch, rows, &Options{MinSupport: 2, MinConfidence: 0.6})
	found := false
	for _, c := range loose {
		if c.LHS[0].Attr == "zip" && c.RHSAttr == "city" && c.RHSConst == "Edi" {
			found = true
			if c.Confidence < 0.66 || c.Confidence > 0.67 {
				t.Fatalf("confidence = %v", c.Confidence)
			}
		}
	}
	if !found {
		t.Fatalf("0.67-confidence CFD missing at 0.6 threshold: %v", loose)
	}
}

// Discovering Example 1's ψ rules from the customer master data.
func TestDiscoverExample1CFDs(t *testing.T) {
	g := dataset.NewCustomerGen(5)
	entities := g.GenerateEntities(60)
	sch := dataset.CustSchema()
	var rows []*schema.Tuple
	for _, e := range entities {
		rows = append(rows, g.CleanInput(e))
	}
	ccfds := DiscoverConstantCFDs(sch, rows, &Options{MinSupport: 3})
	got := map[string]bool{}
	for _, c := range ccfds {
		if c.LHS[0].Attr == "AC" && c.RHSAttr == "city" {
			got[string(*c.LHS[0].Const)+"->"+string(c.RHSConst)] = true
		}
	}
	// ψ1/ψ2 of the paper: AC=020 -> Ldn, AC=131 -> Edi.
	if !got["020->Ldn"] || !got["131->Edi"] {
		t.Fatalf("Example 1 CFDs not discovered: %v", got)
	}
}

func TestToCFDs(t *testing.T) {
	fds := []FD{{LHS: []string{"zip"}, RHS: "city"}}
	cs := ToCFDs(fds)
	if len(cs) != 1 || cs[0].IsConstant() {
		t.Fatalf("ToCFDs = %v", cs)
	}
	if cs[0].LHS[0].Attr != "zip" || cs[0].RHS[0].Attr != "city" {
		t.Fatalf("shape wrong: %v", cs[0])
	}
	if err := cs[0].Validate(smallSchema()); err != nil {
		t.Fatal(err)
	}
}

// The full pipeline: profile HOSP master data, derive rules, and use
// them to fix a dirty tuple — discovery-to-certain-fix end to end.
func TestDeriveRulesFromMasterEndToEnd(t *testing.T) {
	g := dataset.NewHospGen(7)
	w, err := g.GenerateWorkload(25, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sch := dataset.HospSchema()
	rules, fds, err := DeriveRulesFromMaster(sch, w.Store.All(), &Options{MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) == 0 || len(rules) == 0 {
		t.Fatal("nothing discovered")
	}
	rs, err := rule.NewSet(rules...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(sch, rs, w.Store)
	if err != nil {
		t.Fatal(err)
	}
	// Discovered rules include prov -> everything prov determines:
	// validating prov+zip+phone+mcode should fix the rest.
	dirty := w.Dirty[0].Clone()
	for _, a := range []string{"prov", "zip", "phone", "mcode"} {
		dirty.Set(a, w.Truth[0].Get(a))
	}
	res := eng.Chase(dirty, schema.SetOfNames(sch, "prov", "zip", "phone", "mcode"))
	if !res.Tuple.Equal(w.Truth[0]) {
		t.Fatalf("discovered rules did not fix: %v vs %v", res.Tuple, w.Truth[0])
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
}

// Discovered constant CFDs convert to valid cfd.CFD values usable by
// the baseline repairer.
func TestConstantCFDsFeedRepairer(t *testing.T) {
	sch := smallSchema()
	rows := rowsOf(sch, [][]string{
		{"Z1", "Edi", "A"}, {"Z1", "Edi", "B"}, {"Z2", "Ldn", "C"}, {"Z2", "Ldn", "D"},
	})
	ccfds := DiscoverConstantCFDs(sch, rows, &Options{MinSupport: 2})
	var asCFDs []*cfd.CFD
	for i, c := range ccfds {
		cc := &cfd.CFD{
			ID:  strings.ReplaceAll("d"+string(rune('a'+i%26)), " ", ""),
			LHS: c.LHS,
			RHS: []cfd.Atom{cfd.ConstAtom(c.RHSAttr, c.RHSConst)},
		}
		if err := cc.Validate(sch); err != nil {
			t.Fatalf("discovered CFD invalid: %v", err)
		}
		asCFDs = append(asCFDs, cc)
	}
	if len(asCFDs) == 0 {
		t.Fatal("no CFDs")
	}
}
