package oracle

import (
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/monitor"
)

func demoMonitor(t *testing.T) *monitor.Monitor {
	t.Helper()
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	return monitor.New(e, nil)
}

func TestFollowSuggestionsCompletes(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	u := NewUser(dataset.DemoGroundTruthFig3(), FollowSuggestions)
	rounds, err := u.RunSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Certain() {
		t.Fatalf("not certain: %v", s.Conflicts)
	}
	if !s.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
		t.Fatalf("tuple = %v", s.Tuple)
	}
	// Following the initial region suggestion {item, phn, type, zip}
	// fixes everything in one round.
	if rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (region one-shot)", rounds)
	}
}

// The Fig. 3 user: own choice {AC, phn, type, item} first, then follow
// suggestions — two rounds, exactly the paper's walkthrough.
func TestOwnChoiceReproducesFig3(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	u := NewUser(dataset.DemoGroundTruthFig3(), OwnChoice)
	u.Preferred = []string{"AC", "phn", "type", "item"}
	rounds, err := u.RunSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
	if !s.Certain() || !s.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
		t.Fatalf("final state wrong: %v", s.Tuple)
	}
}

func TestRandomChoiceConverges(t *testing.T) {
	m := demoMonitor(t)
	for i := 0; i < 10; i++ {
		s, _ := m.NewSession(dataset.DemoInputFig3())
		u := NewUser(dataset.DemoGroundTruthFig3(), RandomChoice)
		if _, err := u.RunSession(s); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !s.Done() {
			t.Fatalf("run %d incomplete", i)
		}
		if !s.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
			t.Fatalf("run %d tuple = %v", i, s.Tuple)
		}
	}
}

func TestAnswerUsesGroundTruth(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	u := NewUser(dataset.DemoGroundTruthFig3(), FollowSuggestions)
	ans := u.Answer(s)
	if len(ans) == 0 {
		t.Fatal("no answer")
	}
	for a, v := range ans {
		if v != string(dataset.DemoGroundTruthFig3().Get(a)) {
			t.Fatalf("answer %s=%q is not ground truth", a, v)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if FollowSuggestions.String() != "follow-suggestions" ||
		OwnChoice.String() != "own-choice" ||
		RandomChoice.String() != "random-choice" {
		t.Fatal("policy names wrong")
	}
}

// Across a generated workload, oracle-driven sessions always converge
// to the ground truth (the certain-fix guarantee end to end).
func TestWorkloadSessionsReachTruth(t *testing.T) {
	g := dataset.NewCustomerGen(41)
	w, err := g.GenerateWorkload(30, 40, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	m := monitor.New(e, nil)
	for i := range w.Dirty {
		s, err := m.NewSession(w.Dirty[i])
		if err != nil {
			t.Fatal(err)
		}
		u := NewUser(w.Truth[i], FollowSuggestions)
		if _, err := u.RunSession(s); err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if !s.Tuple.Equal(w.Truth[i]) {
			t.Fatalf("tuple %d: fixed %v != truth %v", i, s.Tuple, w.Truth[i])
		}
	}
}

// An imperfect user who sometimes asserts uncorrected (wrong) values:
// the certain-fix guarantee is conditional on correct assertions, so
// the system must detect contradictions instead of silently producing
// wrong "certain" fixes. Sessions either end clean, end with reported
// conflicts, or leave cells wrong only where the user's own wrong
// assertion pinned them.
func TestImperfectUserSurfacesConflicts(t *testing.T) {
	g := dataset.NewCustomerGen(43)
	w, err := g.GenerateWorkload(30, 60, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	m := monitor.New(e, nil)
	conflictsSeen, wrongFinals := 0, 0
	for i := range w.Dirty {
		s, err := m.NewSession(w.Dirty[i])
		if err != nil {
			t.Fatal(err)
		}
		u := NewUser(w.Truth[i], FollowSuggestions)
		u.ErrorRate = 0.5
		if _, err := u.RunSession(s); err != nil {
			t.Fatal(err)
		}
		if len(s.Conflicts) > 0 {
			conflictsSeen++
		}
		if !s.Tuple.Equal(w.Truth[i]) {
			wrongFinals++
			// Every wrong cell must be traceable to a user assertion
			// (directly pinned, or derived through a rule whose premise
			// the user asserted wrongly) — never to a rule firing off
			// correctly-validated premises. We verify the weaker,
			// checkable form: at least one user record asserted a
			// non-truth value in this session.
			badAssertion := false
			for _, rec := range m.Log().TupleHistory(s.ID) {
				if rec.Source == core.SourceUser && rec.New != w.Truth[i].Get(rec.Attr) {
					badAssertion = true
				}
			}
			if !badAssertion {
				t.Fatalf("tuple %d ended wrong without any wrong user assertion", i)
			}
		}
	}
	if conflictsSeen == 0 {
		t.Fatal("no conflicts surfaced despite 50% careless assertions")
	}
	if wrongFinals == 0 {
		t.Fatal("expected some wrong finals at 50% careless rate (sanity of the test itself)")
	}
}

// ErrorRate = 0 behaves exactly like the perfect oracle.
func TestZeroErrorRateIsPerfect(t *testing.T) {
	m := demoMonitor(t)
	s, _ := m.NewSession(dataset.DemoInputFig3())
	u := NewUser(dataset.DemoGroundTruthFig3(), FollowSuggestions)
	u.ErrorRate = 0
	if _, err := u.RunSession(s); err != nil {
		t.Fatal(err)
	}
	if !s.Certain() || !s.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
		t.Fatal("zero-error user diverged from perfect oracle")
	}
}
