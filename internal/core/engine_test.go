package core

import (
	"fmt"
	"strings"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// demoEngine wires the paper's Fig. 2 configuration.
func demoEngine(t *testing.T) *Engine {
	t.Helper()
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func validatedSet(t *testing.T, e *Engine, names ...string) schema.AttrSet {
	t.Helper()
	return schema.SetOfNames(e.InputSchema(), names...)
}

func TestNewEngineValidatesRules(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	bad := rule.MustSet(mustParse(t, `x: match zip~zip set bogus := AC`))
	if _, err := NewEngine(dataset.CustSchema(), bad, st); err == nil {
		t.Fatal("invalid rule set accepted")
	}
}

func mustParse(t *testing.T, line string) *rule.Rule {
	t.Helper()
	r, err := rule.Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Example 2 of the paper: with zip validated, φ1 fixes AC to 131.
func TestChaseExample2(t *testing.T) {
	e := demoEngine(t)
	in := dataset.DemoInputExample1()
	res := e.Chase(in, validatedSet(t, e, "zip"))
	if got := res.Tuple.Get("AC"); got != "131" {
		t.Fatalf("AC = %q, want 131 (the Example 2 certain fix)", got)
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
	// The original input is untouched.
	if in.Get("AC") != "020" {
		t.Fatal("Chase mutated its input")
	}
	// Provenance: the AC change cites phi1 and the Robert Brady master
	// tuple.
	var acChange *Change
	for i := range res.Changes {
		if res.Changes[i].Attr == "AC" {
			acChange = &res.Changes[i]
		}
	}
	if acChange == nil {
		t.Fatal("no AC change recorded")
	}
	if acChange.RuleID != "phi1" || acChange.Source != SourceRule {
		t.Fatalf("AC provenance = %+v", *acChange)
	}
	if acChange.Old != "020" || acChange.New != "131" {
		t.Fatalf("AC old/new = %q/%q", acChange.Old, acChange.New)
	}
	if !acChange.IsRewrite() {
		t.Fatal("AC change should be a rewrite")
	}
}

// Validating zip alone certainly fixes AC, str and city (φ1–φ3); the
// derived city (Edi) also confirms the input's correct value — no new
// error is introduced (the key motivation of the paper).
func TestChaseDoesNotBreakCorrectValues(t *testing.T) {
	e := demoEngine(t)
	res := e.Chase(dataset.DemoInputExample1(), validatedSet(t, e, "zip"))
	if res.Tuple.Get("city") != "Edi" {
		t.Fatalf("city = %q; a certain fix must not overwrite the correct value", res.Tuple.Get("city"))
	}
	if res.Tuple.Get("str") != "501 Elm St" {
		t.Fatalf("str = %q", res.Tuple.Get("str"))
	}
	want := validatedSet(t, e, "zip", "AC", "str", "city")
	if !res.Validated.ContainsAll(want) {
		t.Fatalf("validated = %v", res.Validated.Format(e.InputSchema()))
	}
}

// The Fig. 3 walkthrough, round 1: user validates {AC, phn, type,
// item}; CerFix derives FN (normalizing M. -> Mark via φ4), LN (φ5)
// and city (φ9).
func TestChaseFig3Round1(t *testing.T) {
	e := demoEngine(t)
	res := e.Chase(dataset.DemoInputFig3(), validatedSet(t, e, "AC", "phn", "type", "item"))
	if got := res.Tuple.Get("FN"); got != "Mark" {
		t.Fatalf(`FN = %q, want "Mark" (normalized from "M." by phi4)`, got)
	}
	if got := res.Tuple.Get("LN"); got != "Smith" {
		t.Fatalf("LN = %q", got)
	}
	if got := res.Tuple.Get("city"); got != "Ldn" {
		t.Fatalf("city = %q (phi9 should fix it)", got)
	}
	want := validatedSet(t, e, "AC", "phn", "type", "item", "FN", "LN", "city")
	if res.Validated != want {
		t.Fatalf("validated = %v, want %v",
			res.Validated.Format(e.InputSchema()), want.Format(e.InputSchema()))
	}
	if res.AllValidated() {
		t.Fatal("str and zip cannot be validated in round 1")
	}
}

// Fig. 3 round 2: additionally validating zip completes the tuple
// (φ2 fixes str).
func TestChaseFig3Round2(t *testing.T) {
	e := demoEngine(t)
	seed := validatedSet(t, e, "AC", "phn", "type", "item", "zip")
	res := e.Chase(dataset.DemoInputFig3(), seed)
	if !res.AllValidated() {
		t.Fatalf("validated = %v, want all", res.Validated.Format(e.InputSchema()))
	}
	if !res.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
		t.Fatalf("fixed tuple %v != ground truth %v", res.Tuple, dataset.DemoGroundTruthFig3())
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
}

// A LN-confirming change (old == new) is recorded but is not a rewrite.
func TestChaseConfirmationsTracked(t *testing.T) {
	e := demoEngine(t)
	res := e.Chase(dataset.DemoInputFig3(), validatedSet(t, e, "AC", "phn", "type", "item"))
	var lnChange *Change
	for i := range res.Changes {
		if res.Changes[i].Attr == "LN" {
			lnChange = &res.Changes[i]
		}
	}
	if lnChange == nil {
		t.Fatal("LN change not recorded")
	}
	if lnChange.IsRewrite() {
		t.Fatalf("LN was already correct; change = %+v", *lnChange)
	}
	rw := res.Rewrites()
	for _, c := range rw {
		if c.Attr == "LN" {
			t.Fatal("Rewrites includes a confirmation")
		}
	}
	if len(rw) == 0 {
		t.Fatal("FN rewrite missing from Rewrites")
	}
}

// Rules whose premises are not validated must not fire.
func TestChasePremiseGate(t *testing.T) {
	e := demoEngine(t)
	// Nothing validated: nothing may change.
	res := e.Chase(dataset.DemoInputExample1(), schema.EmptySet)
	if len(res.Changes) != 0 {
		t.Fatalf("changes with empty seed: %v", res.Changes)
	}
	if !res.Tuple.Equal(dataset.DemoInputExample1()) {
		t.Fatal("tuple changed with empty validated set")
	}
	// phn validated but type not: φ4's premise includes its pattern
	// scope (type), so FN must stay.
	res = e.Chase(dataset.DemoInputFig3(), validatedSet(t, e, "phn"))
	if res.Tuple.Get("FN") != "M." {
		t.Fatal("phi4 fired without its pattern attribute validated")
	}
}

// A pattern that does not match blocks the rule even when validated.
func TestChasePatternGate(t *testing.T) {
	e := demoEngine(t)
	in := dataset.DemoInputFig3().Clone()
	in.Set("type", "1") // now φ4/φ5 (type=2) cannot fire
	in.Set("phn", "7966899")
	res := e.Chase(in, validatedSet(t, e, "phn", "type"))
	if res.Tuple.Get("FN") != "M." {
		t.Fatalf("FN = %q; phi4 fired despite type=1", res.Tuple.Get("FN"))
	}
	// But φ6–φ8 (type=1, AC+phn) need AC too: still gated.
	if res.Validated.Has(e.InputSchema().MustIndex("str")) {
		t.Fatal("phi6 fired without AC validated")
	}
}

// No master match: rule silently skips (no conflict, no change).
func TestChaseNoMatch(t *testing.T) {
	e := demoEngine(t)
	in := dataset.DemoInputExample1().Clone()
	in.Set("zip", "ZZ9 9ZZ")
	res := e.Chase(in, validatedSet(t, e, "zip"))
	if len(res.Changes) != 0 || len(res.Conflicts) != 0 {
		t.Fatalf("changes=%v conflicts=%v", res.Changes, res.Conflicts)
	}
}

// Ambiguous master data (one key, two RHS values) yields a
// MasterAmbiguous conflict and no fix.
func TestChaseMasterAmbiguous(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	rows := dataset.DemoMasterRows()
	for _, row := range rows {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	// A second tuple with Robert Brady's zip but a different AC.
	dup := append(value.List(nil), rows[0]...)
	dup[2] = "999"
	if _, err := st.InsertValues(dup...); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Chase(dataset.DemoInputExample1(), schema.SetOfNames(e.InputSchema(), "zip"))
	if res.Tuple.Get("AC") != "020" {
		t.Fatalf("AC = %q; ambiguous master must not fix", res.Tuple.Get("AC"))
	}
	found := false
	for _, c := range res.Conflicts {
		if c.Kind == MasterAmbiguous && c.RuleID == "phi1" {
			found = true
			if c.Error() == "" {
				t.Error("empty conflict message")
			}
		}
	}
	if !found {
		t.Fatalf("MasterAmbiguous conflict missing: %v", res.Conflicts)
	}
}

// A validated value contradicting the master derivation is reported,
// not overwritten.
func TestChaseValidatedContradiction(t *testing.T) {
	e := demoEngine(t)
	in := dataset.DemoInputExample1()
	// User (wrongly) asserts AC=020 as correct together with zip.
	res := e.Chase(in, validatedSet(t, e, "zip", "AC"))
	if res.Tuple.Get("AC") != "020" {
		t.Fatal("validated value was overwritten")
	}
	found := false
	for _, c := range res.Conflicts {
		if c.Kind == ValidatedContradiction && c.Attr == "AC" {
			found = true
			if c.Have != "020" || c.Want != "131" {
				t.Fatalf("conflict values = %+v", c)
			}
		}
	}
	if !found {
		t.Fatalf("ValidatedContradiction missing: %v", res.Conflicts)
	}
}

// The chase is deterministic and terminates within |attrs|+1 rounds.
func TestChaseDeterministicAndBounded(t *testing.T) {
	e := demoEngine(t)
	seed := validatedSet(t, e, "AC", "phn", "type", "item", "zip")
	r1 := e.Chase(dataset.DemoInputFig3(), seed)
	r2 := e.Chase(dataset.DemoInputFig3(), seed)
	if !r1.Tuple.Equal(r2.Tuple) || r1.Validated != r2.Validated {
		t.Fatal("chase nondeterministic")
	}
	if r1.Rounds > e.InputSchema().Len()+1 {
		t.Fatalf("rounds = %d exceeds bound", r1.Rounds)
	}
}

// Chase is monotone in the seed: more validated attributes never yield
// fewer validated attributes.
func TestChaseMonotone(t *testing.T) {
	e := demoEngine(t)
	small := validatedSet(t, e, "zip")
	large := validatedSet(t, e, "zip", "phn", "type")
	rs := e.Chase(dataset.DemoInputFig3(), small)
	rl := e.Chase(dataset.DemoInputFig3(), large)
	if !rl.Validated.ContainsAll(rs.Validated) {
		t.Fatalf("monotonicity violated: %v vs %v",
			rs.Validated.Format(e.InputSchema()), rl.Validated.Format(e.InputSchema()))
	}
}

// Chase is idempotent: re-chasing the fixed tuple from the final
// validated set changes nothing.
func TestChaseIdempotent(t *testing.T) {
	e := demoEngine(t)
	res := e.Chase(dataset.DemoInputFig3(), validatedSet(t, e, "AC", "phn", "type", "item", "zip"))
	again := e.Chase(res.Tuple, res.Validated)
	if !again.Tuple.Equal(res.Tuple) {
		t.Fatal("chase not idempotent on values")
	}
	if again.Validated != res.Validated {
		t.Fatal("chase not idempotent on validated set")
	}
	if len(again.Rewrites()) != 0 {
		t.Fatalf("idempotent chase rewrote: %v", again.Rewrites())
	}
}

func TestSourceAndKindStrings(t *testing.T) {
	if SourceUser.String() != "user" || SourceRule.String() != "rule" {
		t.Error("Source names wrong")
	}
	if MasterAmbiguous.String() != "master-ambiguous" ||
		ValidatedContradiction.String() != "validated-contradiction" {
		t.Error("ConflictKind names wrong")
	}
	c := Conflict{Kind: ValidatedContradiction, RuleID: "r", Attr: "a", Have: "x", Want: "y"}
	if c.Error() == "" {
		t.Error("Conflict.Error empty")
	}
}

// A deep derivation chain (a0 validated unlocks a1, a1 unlocks a2, ...)
// exercises multi-round fixpoints: 8 hops need 8 productive rounds
// plus the terminating one, and every intermediate value must come
// from the single master entity.
func TestChaseDeepChain(t *testing.T) {
	const n = 9
	attrs := make([]schema.Attribute, n)
	for i := range attrs {
		attrs[i] = schema.Str(fmt.Sprintf("a%d", i))
	}
	sch := schema.MustNew("CHAIN", attrs...)
	var lines []string
	for i := 0; i+1 < n; i++ {
		lines = append(lines, fmt.Sprintf("c%d: match a%d~a%d set a%d := a%d", i, i, i, i+1, i+1))
	}
	rs, err := rule.ParseSet(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	st := master.New(sch)
	vals := make(value.List, n)
	for i := range vals {
		vals[i] = value.V(fmt.Sprintf("v%d", i))
	}
	if _, err := st.InsertValues(vals...); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sch, rs, st)
	if err != nil {
		t.Fatal(err)
	}
	dirty := make(value.List, n)
	dirty[0] = "v0"
	for i := 1; i < n; i++ {
		dirty[i] = value.V(fmt.Sprintf("wrong%d", i))
	}
	res := eng.Chase(&schema.Tuple{Schema: sch, Vals: dirty}, schema.SetOf(0))
	if !res.AllValidated() {
		t.Fatalf("chain incomplete: %v", res.Validated.Format(sch))
	}
	for i := 0; i < n; i++ {
		if res.Tuple.At(i) != vals[i] {
			t.Fatalf("a%d = %q, want %q", i, res.Tuple.At(i), vals[i])
		}
	}
	// Rule order is ascending, so each round fires the whole remaining
	// prefix: the chase needs 2 rounds (all rules fire in round 1 in
	// order, fixpoint detected in round 2). Reversed order needs n-1
	// productive rounds — both must land on the same result.
	rev := make([]string, len(lines))
	for i := range lines {
		rev[i] = lines[len(lines)-1-i]
	}
	revSet, err := rule.ParseSet(strings.Join(rev, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	revEng, err := NewEngine(sch, revSet, st)
	if err != nil {
		t.Fatal(err)
	}
	res2 := revEng.Chase(&schema.Tuple{Schema: sch, Vals: dirty}, schema.SetOf(0))
	if !res2.Tuple.Equal(res.Tuple) {
		t.Fatal("chain result order-dependent")
	}
	if res2.Rounds <= res.Rounds {
		t.Fatalf("reversed order should need more rounds (%d vs %d)", res2.Rounds, res.Rounds)
	}
}

// Rules gated by comparison and membership operators over typed
// domains: a discount rule applies only to years >= 2000 (DInt) and to
// selected venues (IN).
func TestChaseTypedPatternOperators(t *testing.T) {
	sch := schema.MustNew("R",
		schema.Str("k"),
		schema.Attribute{Name: "year", Domain: value.DInt},
		schema.Str("venue"),
		schema.Str("tier"),
	)
	rs, err := rule.ParseSet(`
recent: match k~k set tier := tier when year >= 2000 and venue in {"VLDB", "SIGMOD"}
`)
	if err != nil {
		t.Fatal(err)
	}
	st := master.New(sch)
	if _, err := st.InsertValues("K1", "2005", "VLDB", "A*"); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sch, rs, st)
	if err != nil {
		t.Fatal(err)
	}
	seed := schema.SetOfNames(sch, "k", "year", "venue")
	// year "2005" >= 2000 numerically, venue in set: fires.
	in := schema.MustTuple(sch, "K1", "2005", "VLDB", "?")
	if res := eng.Chase(in, seed); res.Tuple.Get("tier") != "A*" {
		t.Fatalf("tier = %q", res.Tuple.Get("tier"))
	}
	// "999" < 2000 numerically (string compare would say "999" > "2000"
	// — the DInt domain must win): rule gated.
	in2 := schema.MustTuple(sch, "K1", "999", "VLDB", "?")
	if res := eng.Chase(in2, seed); res.Tuple.Get("tier") != "?" {
		t.Fatal("rule fired despite year below threshold (string-compare bug)")
	}
	// Venue outside the IN set: gated.
	in3 := schema.MustTuple(sch, "K1", "2005", "ICDE", "?")
	if res := eng.Chase(in3, seed); res.Tuple.Get("tier") != "?" {
		t.Fatal("rule fired despite venue not in set")
	}
}
