package main

import (
	"flag"
	"fmt"
	"strings"

	"cerfix/internal/discovery"
	"cerfix/internal/storage"
	"cerfix/internal/textutil"
)

// cmdDiscover profiles a relation instance for functional dependencies
// and constant CFDs, and prints the editing rules derivable from them
// (paper §3: rules "may ... be discovered from cfds or mds").
//
//	cerfix discover -schema "HOSP:prov,hospital,..." -data master.csv \
//	  [-max-lhs 2] [-min-support 3] [-min-confidence 1.0]
func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", `relation schema spec "NAME:attr1,..."`)
	dataPath := fs.String("data", "", "CSV file to profile")
	maxLHS := fs.Int("max-lhs", 2, "maximum FD left-hand-side size")
	minSupport := fs.Int("min-support", 3, "minimum rows per constant pattern")
	minConfidence := fs.Float64("min-confidence", 1.0, "minimum constant-CFD confidence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemaSpec == "" || *dataPath == "" {
		return fmt.Errorf("-schema and -data are required")
	}
	sch, err := parseSchemaSpec(*schemaSpec)
	if err != nil {
		return err
	}
	tbl := storage.NewTable(sch)
	if err := tbl.LoadCSVFile(*dataPath); err != nil {
		return err
	}
	rows := tbl.All()
	opts := &discovery.Options{MaxLHS: *maxLHS, MinSupport: *minSupport, MinConfidence: *minConfidence}

	fds := discovery.DiscoverFDs(sch, rows, opts)
	fmt.Printf("profiled %d rows of %s\n\n", len(rows), sch.Name())
	fmt.Printf("functional dependencies (max LHS %d): %d found\n", *maxLHS, len(fds))
	for _, f := range fds {
		fmt.Println("  ", f)
	}

	ccfds := discovery.DiscoverConstantCFDs(sch, rows, opts)
	fmt.Printf("\nconstant CFDs (support >= %d, confidence >= %.2f): %d found\n",
		*minSupport, *minConfidence, len(ccfds))
	shown := ccfds
	if len(shown) > 20 {
		shown = shown[:20]
	}
	for _, c := range shown {
		fmt.Println("  ", c)
	}
	if len(ccfds) > len(shown) {
		fmt.Printf("   ... and %d more\n", len(ccfds)-len(shown))
	}

	rules, _, err := discovery.DeriveRulesFromMaster(sch, rows, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\nderivable editing rules (same-schema master): %d\n", len(rules))
	tbl2 := textutil.NewTextTable("rule", "dsl")
	for _, r := range rules {
		tbl2.AddRow(r.ID, strings.TrimSpace(r.String()))
	}
	fmt.Print(tbl2.String())
	fmt.Println("\nreview before installing: discovery yields hypotheses that hold on this instance only")
	return nil
}
