// Package audit implements CerFix's data auditing module: it "keeps
// track of changes to each tuple, incurred either by the users or
// automatically by data monitor with editing rules and master data"
// and serves statistics such as "the percentage of FN values that were
// validated by the users and the percentage of values that were
// automatically fixed by CerFix" (paper §3, Fig. 4).
package audit

import (
	"fmt"
	"sort"
	"sync"

	"cerfix/internal/core"
	"cerfix/internal/value"
)

// Record is one audited event: a user validation or a rule-made fix of
// a single cell.
type Record struct {
	// Seq is the global sequence number (1-based, assignment order).
	Seq int
	// TupleID identifies the input tuple (monitor session ID).
	TupleID int64
	// Attr is the affected attribute.
	Attr string
	// Old and New are the values before/after; equal when the event
	// confirmed an already-correct value.
	Old, New value.V
	// Source is who acted (user or rule).
	Source core.Source
	// RuleID and MasterID carry rule provenance (SourceRule only):
	// which editing rule fired and which master tuple supplied the
	// value — the "where the correct values come from" of Fig. 4.
	RuleID   string
	MasterID int64
	// Round is the chase round for rule events, 0 for user events.
	Round int
}

// IsRewrite reports whether the event altered the stored value.
func (r Record) IsRewrite() bool { return r.Old != r.New }

// String renders one audit line.
func (r Record) String() string {
	who := "user validated"
	if r.Source == core.SourceRule {
		who = fmt.Sprintf("rule %s (master #%d) set", r.RuleID, r.MasterID)
	}
	if r.IsRewrite() {
		return fmt.Sprintf("#%d tuple %d: %s %s: %q -> %q", r.Seq, r.TupleID, who, r.Attr, string(r.Old), string(r.New))
	}
	return fmt.Sprintf("#%d tuple %d: %s %s: confirmed %q", r.Seq, r.TupleID, who, r.Attr, string(r.New))
}

// Log is a thread-safe audit log.
type Log struct {
	mu      sync.RWMutex
	records []Record
	nextSeq int
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{nextSeq: 1} }

// RecordUser logs a user validation of one attribute.
func (l *Log) RecordUser(tupleID int64, attr string, old, new value.V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, Record{
		Seq:     l.nextSeq,
		TupleID: tupleID,
		Attr:    attr,
		Old:     old,
		New:     new,
		Source:  core.SourceUser,
	})
	l.nextSeq++
}

// RecordChanges logs the rule-made changes of one chase run.
func (l *Log) RecordChanges(tupleID int64, changes []core.Change) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range changes {
		l.records = append(l.records, Record{
			Seq:      l.nextSeq,
			TupleID:  tupleID,
			Attr:     c.Attr,
			Old:      c.Old,
			New:      c.New,
			Source:   c.Source,
			RuleID:   c.RuleID,
			MasterID: c.MasterID,
			Round:    c.Round,
		})
		l.nextSeq++
	}
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.records)
}

// All returns a copy of every record in sequence order.
func (l *Log) All() []Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Record(nil), l.records...)
}

// TupleHistory returns the records of one tuple in sequence order —
// the per-tuple inspection view of Fig. 4.
func (l *Log) TupleHistory(tupleID int64) []Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Record
	for _, r := range l.records {
		if r.TupleID == tupleID {
			out = append(out, r)
		}
	}
	return out
}

// AttrHistory returns the records touching one attribute — the
// per-column inspection view of Fig. 4.
func (l *Log) AttrHistory(attr string) []Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Record
	for _, r := range l.records {
		if r.Attr == attr {
			out = append(out, r)
		}
	}
	return out
}

// CellProvenance returns the latest record for (tupleID, attr): which
// action is responsible for the cell's final value.
func (l *Log) CellProvenance(tupleID int64, attr string) (Record, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := len(l.records) - 1; i >= 0; i-- {
		r := l.records[i]
		if r.TupleID == tupleID && r.Attr == attr {
			return r, true
		}
	}
	return Record{}, false
}

// AttrStats aggregates one attribute's validation events.
type AttrStats struct {
	// Attr is the attribute name.
	Attr string
	// UserValidated counts user validation events.
	UserValidated int
	// AutoFixed counts rule events that rewrote the value.
	AutoFixed int
	// AutoConfirmed counts rule events that confirmed the value.
	AutoConfirmed int
}

// Total returns all events for the attribute.
func (s AttrStats) Total() int { return s.UserValidated + s.AutoFixed + s.AutoConfirmed }

// UserPct returns the user-validated percentage (0–100) — the Fig. 4
// per-attribute statistic.
func (s AttrStats) UserPct() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(s.UserValidated) / float64(t)
}

// AutoPct returns the CerFix-validated percentage (fixes plus
// confirmations).
func (s AttrStats) AutoPct() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(s.AutoFixed+s.AutoConfirmed) / float64(t)
}

// StatsPerAttr aggregates the log per attribute, sorted by name.
func (l *Log) StatsPerAttr() []AttrStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	byAttr := make(map[string]*AttrStats)
	for _, r := range l.records {
		s, ok := byAttr[r.Attr]
		if !ok {
			s = &AttrStats{Attr: r.Attr}
			byAttr[r.Attr] = s
		}
		switch {
		case r.Source == core.SourceUser:
			s.UserValidated++
		case r.IsRewrite():
			s.AutoFixed++
		default:
			s.AutoConfirmed++
		}
	}
	names := make([]string, 0, len(byAttr))
	for n := range byAttr {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]AttrStats, len(names))
	for i, n := range names {
		out[i] = *byAttr[n]
	}
	return out
}

// Overall sums events across attributes — the paper's headline
// statistic ("in average, 20% of values are validated by users while
// CerFix automatically fixes 80% of the data").
func (l *Log) Overall() AttrStats {
	total := AttrStats{Attr: "*"}
	for _, s := range l.StatsPerAttr() {
		total.UserValidated += s.UserValidated
		total.AutoFixed += s.AutoFixed
		total.AutoConfirmed += s.AutoConfirmed
	}
	return total
}
