// Package monitor implements CerFix's data monitor — "the most
// important module" (paper §2) — which inspects and repairs tuples at
// the point of data entry through interaction rounds:
//
//  1. Initial suggestion: the pre-computed certain regions (region
//     finder) are recommended; validating a covering region's
//     attributes warrants a certain fix in one shot.
//  2. Data repairing: the user validates any set of attributes (the
//     suggested ones or their own choice, possibly correcting values);
//     the monitor chases editing rules + master data to fix as many
//     attributes as possible and expands the validated set.
//  3. New suggestion: if attributes remain unvalidated, the monitor
//     computes a minimal set of additional attributes to validate and
//     loops back to 2.
//
// Every user validation and rule fix is recorded in the audit log.
package monitor

import (
	"fmt"
	"sort"

	"cerfix/internal/audit"
	"cerfix/internal/core"
	"cerfix/internal/region"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Monitor drives fixing sessions against one engine configuration.
type Monitor struct {
	eng     *core.Engine
	regions []*region.Region
	log     *audit.Log
	nextID  int64
	greedy  bool
}

// Options configures monitor construction.
type Options struct {
	// Regions supplies pre-computed certain regions; nil computes them
	// with default finder options (the paper pre-computes regions to
	// cut suggestion latency).
	Regions []*region.Region
	// RegionK bounds region computation when Regions is nil.
	RegionK int
	// Log supplies a shared audit log; nil creates a fresh one.
	Log *audit.Log
	// GreedySuggestions switches new-suggestion computation from the
	// exact minimal extension (exponential worst case, default) to the
	// polynomial greedy cover — the wide-schema configuration. Greedy
	// suggestions may be larger than minimal but always complete the
	// tuple.
	GreedySuggestions bool
}

// New builds a monitor for the engine.
func New(eng *core.Engine, opts *Options) *Monitor {
	m := &Monitor{eng: eng, nextID: 1}
	if opts != nil {
		m.greedy = opts.GreedySuggestions
	}
	if opts != nil && opts.Log != nil {
		m.log = opts.Log
	} else {
		m.log = audit.NewLog()
	}
	if opts != nil && opts.Regions != nil {
		m.regions = opts.Regions
	} else {
		k := 0
		if opts != nil {
			k = opts.RegionK
		}
		m.regions = region.NewFinder(eng).TopK(&region.Options{K: k})
	}
	return m
}

// Engine returns the underlying engine.
func (m *Monitor) Engine() *core.Engine { return m.eng }

// Regions returns the pre-computed certain regions (ascending |Z|).
func (m *Monitor) Regions() []*region.Region { return m.regions }

// Log returns the audit log shared by all sessions.
func (m *Monitor) Log() *audit.Log { return m.log }

// Session is one tuple's interactive fixing session.
type Session struct {
	m *Monitor
	// ID identifies the session (and the tuple in the audit log).
	ID int64
	// Original is the tuple as entered.
	Original *schema.Tuple
	// Tuple is the current (partially fixed) state.
	Tuple *schema.Tuple
	// Validated is the current validated attribute set.
	Validated schema.AttrSet
	// Rounds counts user interaction rounds so far.
	Rounds int
	// Conflicts accumulates chase conflicts (non-certain states).
	Conflicts []core.Conflict
}

// NewSession opens a session for tuple t (copied).
func (m *Monitor) NewSession(t *schema.Tuple) (*Session, error) {
	if t.Schema.Len() != m.eng.InputSchema().Len() || t.Schema.Name() != m.eng.InputSchema().Name() {
		return nil, fmt.Errorf("monitor: tuple schema %s does not match input schema %s",
			t.Schema.Name(), m.eng.InputSchema().Name())
	}
	s := &Session{
		m:        m,
		ID:       m.nextID,
		Original: t.Clone(),
		Tuple:    t.Clone(),
	}
	m.nextID++
	return s, nil
}

// Done reports whether every attribute is validated.
func (s *Session) Done() bool {
	return s.Validated == schema.FullSet(s.Tuple.Schema)
}

// Remaining returns the attributes still unvalidated (sorted).
func (s *Session) Remaining() []string {
	return schema.FullSet(s.Tuple.Schema).Minus(s.Validated).SortedNames(s.Tuple.Schema)
}

// Suggestion returns the attributes CerFix currently recommends the
// user validate (sorted). Before any validation this is the initial
// suggestion — the smallest pre-computed certain region's Z (step 1);
// afterwards it is the minimal extension of the validated set
// (step 3). An empty slice means the session is done.
func (s *Session) Suggestion() []string {
	if s.Done() {
		return nil
	}
	if s.Validated.IsEmpty() && len(s.m.regions) > 0 {
		// Initial suggestion: prefer a region whose tableau covers the
		// entered values (likeliest one-shot); fall back to the
		// smallest region.
		for _, reg := range s.m.regions {
			if reg.Covers(s.Tuple) {
				return reg.AttrNames()
			}
		}
		return s.m.regions[0].AttrNames()
	}
	delta := s.suggestionSet()
	names := delta.SortedNames(s.Tuple.Schema)
	sort.Strings(names)
	return names
}

// suggestionSet computes the next validation set (exact or greedy per
// the monitor's configuration).
func (s *Session) suggestionSet() schema.AttrSet {
	input := s.m.eng.InputSchema()
	rules := s.m.eng.Rules().Rules()
	goal := schema.FullSet(s.Tuple.Schema)
	if s.m.greedy {
		return core.GreedyExtension(input, rules, s.Validated, goal, s.patternFilter())
	}
	return core.MinimalExtension(input, rules, s.Validated, goal, s.patternFilter())
}

// ExplainSuggestion renders why the current suggestion completes the
// tuple: the attributes to validate plus the derivation plan the rules
// will follow — the prospective counterpart of the auditing module's
// "where the correct values come from".
func (s *Session) ExplainSuggestion() string {
	if s.Done() {
		return "all attributes validated"
	}
	sug := schema.SetOfNames(s.Tuple.Schema, s.Suggestion()...)
	return core.ExplainSuggestion(
		s.m.eng.InputSchema(), s.m.eng.Rules().Rules(), s.Validated, sug, s.patternFilter())
}

// patternFilter admits rules whose pattern matches the session's
// current tuple values: the concrete analogue of the region finder's
// pattern cells.
func (s *Session) patternFilter() core.RuleFilter {
	return func(r *rule.Rule) bool {
		return r.When.Matches(s.Tuple)
	}
}

// Validate is step 2: the user asserts correct values for the given
// attributes (any attributes — the suggestion is not binding). The
// asserted values overwrite the tuple's cells, the attributes join the
// validated set, and the monitor chases rules + master data, expanding
// the validated set further. It returns the chase result of this
// round.
func (s *Session) Validate(assertions map[string]string) (*core.ChaseResult, error) {
	if len(assertions) == 0 {
		return nil, fmt.Errorf("monitor: empty validation")
	}
	input := s.m.eng.InputSchema()
	// Apply user assertions.
	names := make([]string, 0, len(assertions))
	for a := range assertions {
		if !input.Has(a) {
			return nil, fmt.Errorf("monitor: unknown attribute %q", a)
		}
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		v := value.V(assertions[a])
		old := s.Tuple.Get(a)
		s.Tuple.Set(a, v)
		s.Validated = s.Validated.With(input.MustIndex(a))
		s.m.log.RecordUser(s.ID, a, old, v)
	}
	s.Rounds++
	return s.chase(), nil
}

// ValidateSuggested validates the current suggestion using the tuple's
// current values (the "users opt to validate these attributes" path of
// the demo walkthrough, where the entered values are asserted as-is).
func (s *Session) ValidateSuggested() (*core.ChaseResult, error) {
	sug := s.Suggestion()
	if len(sug) == 0 {
		return nil, fmt.Errorf("monitor: nothing to validate")
	}
	m := make(map[string]string, len(sug))
	for _, a := range sug {
		m[a] = string(s.Tuple.Get(a))
	}
	return s.Validate(m)
}

// chase runs the engine and folds the outcome into the session.
func (s *Session) chase() *core.ChaseResult {
	res := s.m.eng.Chase(s.Tuple, s.Validated)
	s.Tuple = res.Tuple
	s.Validated = res.Validated
	s.Conflicts = append(s.Conflicts, res.Conflicts...)
	s.m.log.RecordChanges(s.ID, res.Changes)
	return res
}

// Certain reports whether the session finished with a certain fix:
// all attributes validated and no conflicts encountered.
func (s *Session) Certain() bool {
	return s.Done() && len(s.Conflicts) == 0
}

// Summary condenses a finished (or in-flight) session.
type Summary struct {
	// ID is the session/tuple ID.
	ID int64
	// Rounds is the number of user interaction rounds.
	Rounds int
	// UserValidated counts attributes asserted by the user.
	UserValidated int
	// AutoValidated counts attributes validated by rules.
	AutoValidated int
	// Rewritten counts cells whose value a rule changed.
	Rewritten int
	// Done and Certain mirror the session predicates.
	Done, Certain bool
	// ChangedAttrs lists attributes whose final value differs from the
	// entered value (user corrections and rule fixes), sorted.
	ChangedAttrs []string
}

// Summary computes the session summary from the audit log.
func (s *Session) Summary() Summary {
	sum := Summary{ID: s.ID, Rounds: s.Rounds, Done: s.Done(), Certain: s.Certain()}
	seen := make(map[string]core.Source)
	for _, rec := range s.m.log.TupleHistory(s.ID) {
		if _, dup := seen[rec.Attr]; !dup {
			seen[rec.Attr] = rec.Source
			if rec.Source == core.SourceUser {
				sum.UserValidated++
			} else {
				sum.AutoValidated++
			}
		}
		if rec.Source == core.SourceRule && rec.IsRewrite() {
			sum.Rewritten++
		}
	}
	sum.ChangedAttrs = s.Original.DiffAttrs(s.Tuple)
	return sum
}
