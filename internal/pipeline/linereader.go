package pipeline

import (
	"bufio"
	"io"

	"cerfix/internal/simd"
)

// lineReader is the scanning core the streaming sources share: a
// growable window over the input in which newlines are found with
// simd.IndexByte instead of a byte loop, and lines are returned as
// zero-copy slices of the window. It reproduces bufio.Scanner's
// ScanLines contract exactly where JSONLSource relies on it — the
// differential suite in io_scan_test.go pins both sources against
// their encoding/json- and encoding/csv-based references:
//
//   - a returned line excludes its '\n' terminator (hadNL reports
//     whether one was consumed; callers own any '\r' trimming);
//   - a final line without a terminator is still returned, for read
//     errors as well as io.EOF (bufio.Scanner emits the partial token
//     before surfacing the error);
//   - with max > 0, buffering max bytes without finding a newline is
//     bufio.ErrTooLong — the window never grows past max, matching
//     Scanner's token size limit byte for byte;
//   - 100 consecutive empty reads without error are io.ErrNoProgress,
//     Scanner's defense against broken readers.
type lineReader struct {
	r          io.Reader
	buf        []byte
	start, end int
	max        int   // max buffered line bytes (0 = unlimited)
	err        error // sticky error from r, io.EOF included
	hadNL      bool  // last returned line ended in '\n'
	empties    int   // consecutive zero-byte nil-error reads
}

// lineBufSize is the initial window size, matching the 64 KiB initial
// buffer the bufio.Scanner-based decoder used.
const lineBufSize = 64 * 1024

func newLineReader(r io.Reader, max int) *lineReader {
	size := lineBufSize
	if max > 0 && max < size {
		size = max
	}
	return &lineReader{r: r, buf: make([]byte, size), max: max}
}

// next returns the next line. The slice aliases the window and is
// valid only until the following next call.
func (lr *lineReader) next() ([]byte, error) {
	for {
		if i := simd.IndexByte(lr.buf[lr.start:lr.end], '\n'); i >= 0 {
			line := lr.buf[lr.start : lr.start+i]
			lr.start += i + 1
			lr.hadNL = true
			return line, nil
		}
		if lr.err != nil {
			if lr.end > lr.start {
				line := lr.buf[lr.start:lr.end]
				lr.start = lr.end
				lr.hadNL = false
				return line, nil
			}
			return nil, lr.err
		}
		if lr.max > 0 && lr.end-lr.start >= lr.max {
			return nil, bufio.ErrTooLong
		}
		lr.fill()
	}
}

// rest returns the buffered bytes after the last returned line —
// CSVSource's takeover hands them (plus the unconsumed reader) to
// encoding/csv.
func (lr *lineReader) rest() []byte { return lr.buf[lr.start:lr.end] }

// tail returns the reader for everything past the buffered bytes. A
// sticky error is replayed through a wrapper, because the underlying
// reader already surrendered it once and need not repeat itself.
func (lr *lineReader) tail() io.Reader {
	if lr.err != nil {
		return &errReader{err: lr.err}
	}
	return lr.r
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }

// fill slides the window and reads more input, growing the buffer
// (never past max) when a line outspans it.
func (lr *lineReader) fill() {
	if lr.start > 0 {
		copy(lr.buf, lr.buf[lr.start:lr.end])
		lr.end -= lr.start
		lr.start = 0
	}
	if lr.end == len(lr.buf) {
		size := len(lr.buf) * 2
		if lr.max > 0 && size > lr.max {
			size = lr.max
		}
		grown := make([]byte, size)
		copy(grown, lr.buf[:lr.end])
		lr.buf = grown
	}
	n, err := lr.r.Read(lr.buf[lr.end:])
	lr.end += n
	if err != nil {
		lr.err = err
		return
	}
	if n > 0 {
		lr.empties = 0
	} else if lr.empties++; lr.empties >= 100 {
		lr.err = io.ErrNoProgress
	}
}
