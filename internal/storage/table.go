// Package storage is the embedded relational substrate that stands in
// for the demo's JDBC data connection. CerFix's data monitor "supports
// several interfaces to access data" (paper §3); this package provides
// the one our build uses: schema-typed tables with auto-assigned row
// IDs, predicate scans, hash indexes over attribute lists (the access
// path editing-rule lookups need), and CSV import/export for
// persistence.
//
// # Snapshots: versioned copy-on-write
//
// Table supports O(1) snapshots. The table's state is sharded —
// a fixed number of row-map shards plus, per hash index, a fixed
// number of bucket-map shards — and Snapshot marks every shard
// shared and returns a frozen *Table that references the same
// shards. The cost is proportional to the (constant) shard count,
// never to the number of rows. A writer that later touches a shared
// shard copies just that shard first (copy-on-write), so arbitrarily
// many snapshots coexist with live writes while each keeps the exact
// rows, insertion order and index contents of its generation.
// Frozen tables are read-only — mutators return ErrFrozen — and
// immutable, so snapshot readers take no locks at all.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cerfix/internal/cowmap"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// ErrFrozen is returned by mutating methods invoked on a read-only
// snapshot (see Table.Snapshot).
var ErrFrozen = errors.New("storage: snapshot is read-only")

const (
	// rowShardCount and bucketShardCount size the copy-on-write
	// granularity (both powers of two). Snapshot cost is
	// O(rowShardCount + #indexes·bucketShardCount); the first write
	// into a shard after a snapshot copies O(rows/shardCount)
	// entries.
	rowShardCount    = 64
	bucketShardCount = 64

	// defaultPackMinRows is the per-shard row threshold for
	// PackColumnar (see colblock.go): tiny shards stay boxed.
	defaultPackMinRows = 256
)

// rowShard (two forms: boxed map, packed columnar) lives in
// colblock.go together with the packing machinery.

func rowShardOf(id int64) int { return int(uint64(id) & (rowShardCount - 1)) }

// Table is a relation instance. A table created by NewTable is
// mutable and thread-safe; a table returned by Snapshot is a frozen,
// immutable view that any number of goroutines may read without
// synchronization.
type Table struct {
	mu     sync.RWMutex
	sch    *schema.Schema
	frozen bool
	// gen counts mutations (insert/update/delete and index builds);
	// snapshots carry the generation they froze at.
	gen   uint64
	rows  [rowShardCount]*rowShard
	count int
	// order holds insertion order of row IDs. Deletes tombstone
	// (the ID stays until compaction; liveness is decided by the row
	// map), so Delete never scans the slice and snapshots can share
	// its backing array: live appends land beyond every snapshot's
	// captured length, and compaction swaps in a fresh array.
	order  []int64
	dead   int
	nextID int64
	// indexes is the hash-index registry; indexesShared marks the
	// map itself as referenced by a snapshot.
	indexes       map[string]*hashIndex
	indexesShared bool
	// lastSnap caches the most recent snapshot: re-snapshotting an
	// unchanged table (every Scan takes one) returns it outright, so
	// read-heavy phases never re-mark shards or re-tax writers.
	lastSnap *Table
	// dict interns cell values for packed shards and sym-keyed index
	// probes. Append-only, shared with every snapshot and clone.
	dict *value.Dict
	// cowCopied accumulates the bytes duplicated by copying shared
	// shards (the COW debt already paid); packMinRows gates packing.
	cowCopied   int64
	packMinRows int
}

// NewTable creates an empty table under sch.
func NewTable(sch *schema.Schema) *Table {
	t := &Table{
		sch:         sch,
		nextID:      1,
		indexes:     make(map[string]*hashIndex),
		dict:        value.NewDict(),
		packMinRows: defaultPackMinRows,
	}
	for i := range t.rows {
		t.rows[i] = newRowShard()
	}
	return t
}

// rlock/runlock guard read paths: frozen tables are immutable, so
// their readers skip the mutex entirely.
func (t *Table) rlock() {
	if !t.frozen {
		t.mu.RLock()
	}
}

func (t *Table) runlock() {
	if !t.frozen {
		t.mu.RUnlock()
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.sch }

// Frozen reports whether the table is a read-only snapshot.
func (t *Table) Frozen() bool { return t.frozen }

// Generation returns the mutation counter: every insert, update,
// delete and index build increments it, and a snapshot's generation
// tells which version of the data it froze.
func (t *Table) Generation() uint64 {
	t.rlock()
	defer t.runlock()
	return t.gen
}

// NextID returns the id the next insert will receive. Ids are
// monotone and never reused, so together with Generation and Len this
// lets the persistence layer prove a window of mutations was
// pure-append: k new inserts move all three counters by exactly k.
func (t *Table) NextID() int64 {
	t.rlock()
	defer t.runlock()
	return t.nextID
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.rlock()
	defer t.runlock()
	return t.count
}

// rowHas reports whether a live row exists, in either shard form,
// without materializing it. Callers hold the read lock (or the table
// is frozen).
func (t *Table) rowHas(id int64) bool {
	sh := t.rows[rowShardOf(id)]
	if sh.col != nil {
		_, ok := sh.col.find(id)
		return ok
	}
	_, ok := sh.m[id]
	return ok
}

// rowFresh returns a privately-owned copy of a live row: a Clone from
// a boxed shard, a fresh materialization from a packed one. Callers
// hold the read lock (or the table is frozen).
func (t *Table) rowFresh(id int64) (*schema.Tuple, bool) {
	sh := t.rows[rowShardOf(id)]
	if sh.col != nil {
		r, ok := sh.col.find(id)
		if !ok {
			return nil, false
		}
		return sh.col.materialize(t.sch, t.dict, r), true
	}
	tu, ok := sh.m[id]
	if !ok {
		return nil, false
	}
	return tu.Clone(), true
}

// rowShared returns a read-only view of a live row without copying:
// the stored tuple from a boxed shard, or scratch refilled from a
// packed one (scratch must not be nil and must not be retained by the
// caller past its next use). Callers hold the read lock (or the table
// is frozen).
func (t *Table) rowShared(id int64, scratch *schema.Tuple) (*schema.Tuple, bool) {
	sh := t.rows[rowShardOf(id)]
	if sh.col != nil {
		r, ok := sh.col.find(id)
		if !ok {
			return nil, false
		}
		sh.col.materializeInto(scratch, t.sch, t.dict, r)
		return scratch, true
	}
	tu, ok := sh.m[id]
	return tu, ok
}

// rowShardMut returns a privately-owned boxed shard for id, copying a
// shared shard (and unpacking a packed one) first. Callers hold the
// write lock.
func (t *Table) rowShardMut(id int64) *rowShard {
	slot := &t.rows[rowShardOf(id)]
	sh := *slot
	if sh.col == nil && !sh.shared {
		return sh
	}
	if sh.shared {
		// The old shard stays pinned by whichever snapshots froze it:
		// that is the COW debt this write just paid.
		t.cowCopied += sh.bytes
	}
	ns := sh.unpack(t.sch, t.dict)
	*slot = ns
	return ns
}

// Snapshot returns a frozen O(1) view of the table: the exact rows,
// insertion order and hash indexes of this generation, immutable
// forever. The call marks the live shards copy-on-write and copies
// only the constant-size shard directory — cost is independent of the
// number of rows. The snapshot needs no locks to read and mutators on
// it return ErrFrozen; the live table keeps absorbing writes, copying
// each touched shard the first time it diverges. Snapshotting a
// snapshot returns the same view.
func (t *Table) Snapshot() *Table {
	if t.frozen {
		return t
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Unchanged since the last capture (the generation counts every
	// row mutation and index build): hand the same frozen view out
	// again — repeated scans of a quiet table cost nothing and leave
	// no fresh copy-on-write debt.
	if t.lastSnap != nil && t.lastSnap.gen == t.gen {
		return t.lastSnap
	}
	cp := &Table{
		sch:           t.sch,
		frozen:        true,
		gen:           t.gen,
		count:         t.count,
		order:         t.order[:len(t.order):len(t.order)],
		dead:          t.dead,
		nextID:        t.nextID,
		indexes:       t.indexes,
		indexesShared: true,
		dict:          t.dict,
		packMinRows:   t.packMinRows,
	}
	t.indexesShared = true
	for i, sh := range &t.rows {
		sh.shared = true
		cp.rows[i] = sh
	}
	for _, ix := range t.indexes {
		ix.shared = true
		for _, bsh := range &ix.shards {
			bsh.Shared = true
		}
	}
	t.lastSnap = cp
	return cp
}

// Insert stores a copy of tu, assigns it a fresh ID and returns the ID.
// The tuple must belong to the table's schema.
func (t *Table) Insert(tu *schema.Tuple) (int64, error) {
	if tu.Schema != t.sch {
		return 0, fmt.Errorf("storage: tuple schema %s does not match table schema %s",
			tu.Schema.Name(), t.sch.Name())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return 0, ErrFrozen
	}
	cp := tu.Clone()
	cp.ID = t.nextID
	t.nextID++
	t.insertLocked(cp)
	return cp.ID, nil
}

// insertLocked registers an already-cloned tuple with an assigned ID.
func (t *Table) insertLocked(cp *schema.Tuple) {
	t.gen++
	sh := t.rowShardMut(cp.ID)
	sh.m[cp.ID] = cp
	sh.bytes += rowBoxedCost(cp)
	t.order = append(t.order, cp.ID)
	t.count++
	t.indexAddLocked(cp)
}

// InsertValues is a convenience wrapper building the tuple in place.
func (t *Table) InsertValues(vals ...value.V) (int64, error) {
	tu, err := schema.NewTuple(t.sch, vals...)
	if err != nil {
		return 0, err
	}
	return t.Insert(tu)
}

// Get returns a copy of the row with the given ID.
func (t *Table) Get(id int64) (*schema.Tuple, bool) {
	t.rlock()
	defer t.runlock()
	return t.rowFresh(id)
}

// Update replaces the row with tu.ID by a copy of tu.
func (t *Table) Update(tu *schema.Tuple) error {
	if tu.Schema != t.sch {
		return fmt.Errorf("storage: tuple schema mismatch")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return ErrFrozen
	}
	return t.updateLocked(tu.Clone())
}

func (t *Table) updateLocked(cp *schema.Tuple) error {
	if !t.rowHas(cp.ID) {
		return fmt.Errorf("storage: row %d not found", cp.ID)
	}
	t.gen++
	sh := t.rowShardMut(cp.ID)
	old := sh.m[cp.ID]
	t.indexRemoveLocked(old)
	sh.m[cp.ID] = cp
	sh.bytes += rowBoxedCost(cp) - rowBoxedCost(old)
	t.indexAddLocked(cp)
	return nil
}

// Delete removes the row with the given ID, reporting whether a row
// was deleted. The insertion-order slot is tombstoned (liveness lives
// in the row registry), so deletion never scans the order slice;
// compaction reclaims tombstones once they dominate. On a frozen
// snapshot nothing is deleted and Delete reports false, consistent
// with the ErrFrozen contract of the other mutators.
func (t *Table) Delete(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return false
	}
	return t.deleteLocked(id)
}

func (t *Table) deleteLocked(id int64) bool {
	if !t.rowHas(id) {
		return false
	}
	t.gen++
	sh := t.rowShardMut(id)
	tu := sh.m[id]
	t.indexRemoveLocked(tu)
	delete(sh.m, id)
	sh.bytes -= rowBoxedCost(tu)
	t.count--
	t.dead++
	t.maybeCompactLocked()
	return true
}

// maybeCompactLocked rebuilds the order slice once tombstones
// dominate it, keeping scans O(live rows) amortized. The fresh
// backing array leaves every snapshot's captured slice untouched.
func (t *Table) maybeCompactLocked() {
	if t.dead < 64 || t.dead*2 < len(t.order) {
		return
	}
	live := make([]int64, 0, t.count)
	for _, id := range t.order {
		if t.rowHas(id) {
			live = append(live, id)
		}
	}
	t.order = live
	t.dead = 0
}

// Clone returns an isolated deep copy of the table: fresh row
// registry, insertion order and index structures, all mutable.
// Stored tuples are shared (the table never mutates a stored row in
// place). This is the legacy O(n) snapshot path, retained for
// callers that need a private mutable copy and as the benchmark
// baseline for Snapshot (cerfixbench e9).
func (t *Table) Clone() *Table {
	t.rlock()
	defer t.runlock()
	cp := &Table{
		sch:         t.sch,
		gen:         t.gen,
		count:       t.count,
		order:       append([]int64(nil), t.order...),
		dead:        t.dead,
		nextID:      t.nextID,
		indexes:     make(map[string]*hashIndex, len(t.indexes)),
		dict:        t.dict, // append-only, safe to share with the clone
		packMinRows: t.packMinRows,
	}
	for i, sh := range &t.rows {
		if sh.col != nil {
			// Packed blocks are immutable: the clone shares the block
			// and unpacks privately if it ever writes into it.
			cp.rows[i] = &rowShard{col: sh.col, bytes: sh.bytes}
			continue
		}
		m := make(map[int64]*schema.Tuple, len(sh.m))
		for id, tu := range sh.m {
			m[id] = tu
		}
		cp.rows[i] = &rowShard{m: m, bytes: sh.bytes}
	}
	for k, ix := range t.indexes {
		cp.indexes[k] = ix.deepClone()
	}
	return cp
}

// Scan calls fn on a copy of every row in insertion order; fn
// returning false stops the scan. The scan runs over an O(1)
// snapshot taken up front, so it holds no locks while fn runs, sees
// a single consistent generation, and is never disturbed by (nor
// disturbs) concurrent writers.
func (t *Table) Scan(fn func(*schema.Tuple) bool) {
	t.ScanShared(func(tu *schema.Tuple) bool { return fn(tu.Clone()) })
}

// ScanShared calls fn on the stored rows themselves — no per-row
// copy — in insertion order; fn returning false stops the scan. Like
// Scan it iterates one frozen O(1) snapshot, so it holds no locks and
// sees a single consistent generation. Callers must treat each tuple
// as read-only and must not retain it past the callback (Clone what
// you keep): boxed rows are shared with the table and every snapshot
// of its generation, and rows from packed shards are materialized
// into one scratch tuple that the very next row overwrites.
func (t *Table) ScanShared(fn func(*schema.Tuple) bool) {
	snap := t.Snapshot()
	snap.scanIDs(snap.order, fn)
}

// ScanSharedTail is ScanShared restricted to rows with id >= minID.
// Row ids are monotone and inserts append to the insertion-order
// header, so for a pure-append history since minID was observed the
// qualifying rows are a contiguous tail of the order header: the scan
// binary-searches for its start and costs O(log n + matches) instead
// of O(n). Histories where an old id re-enters insertion order after
// a newer one (not produced by any current mutator) would start the
// scan late, so callers must hold the same pure-append evidence the
// WAL writer does.
func (t *Table) ScanSharedTail(minID int64, fn func(*schema.Tuple) bool) {
	snap := t.Snapshot()
	start := sort.Search(len(snap.order), func(i int) bool { return snap.order[i] >= minID })
	snap.scanIDs(snap.order[start:], fn)
}

// scanIDs runs the shared-row scan loop over ids, which must be a
// subslice of the (frozen) receiver's order header.
func (snap *Table) scanIDs(ids []int64, fn func(*schema.Tuple) bool) {
	var scratch *schema.Tuple // lazily allocated at the first packed shard
	for _, id := range ids {
		sh := snap.rows[rowShardOf(id)]
		var tu *schema.Tuple
		if sh.col != nil {
			r, ok := sh.col.find(id)
			if !ok {
				continue // tombstoned
			}
			if scratch == nil {
				scratch = &schema.Tuple{Vals: make(value.List, 0, snap.sch.Len())}
			}
			sh.col.materializeInto(scratch, snap.sch, snap.dict, r)
			tu = scratch
		} else {
			var ok bool
			tu, ok = sh.m[id]
			if !ok {
				continue // tombstoned
			}
		}
		if !fn(tu) {
			return
		}
	}
}

// Select returns copies of all rows satisfying pred, in insertion
// order. A nil predicate selects everything.
func (t *Table) Select(pred func(*schema.Tuple) bool) []*schema.Tuple {
	var out []*schema.Tuple
	t.Scan(func(tu *schema.Tuple) bool {
		if pred == nil || pred(tu) {
			out = append(out, tu)
		}
		return true
	})
	return out
}

// All returns copies of every row in insertion order.
func (t *Table) All() []*schema.Tuple { return t.Select(nil) }

// indexKey canonicalizes an attribute list for the index registry.
func indexKey(attrs []string) string {
	cp := append([]string(nil), attrs...)
	sort.Strings(cp)
	var b []byte
	for _, a := range cp {
		b = append(b, byte(len(a)))
		b = append(b, a...)
	}
	return string(b)
}

// bucketShard is one segment of a hash index's bucket map, with the
// same shared/copy-on-write discipline as rowShard.
type bucketShard = cowmap.Shard[string, []int64]

// bucketShardOf routes a bucket key to its shard.
func bucketShardOf(k string) int { return cowmap.FNV(k, bucketShardCount) }

// hashIndex maps composite attribute values to row IDs, sharded for
// copy-on-write. The struct itself follows the same discipline: once
// shared with a snapshot, the live table copies the header (attrs
// reference + shard directory) before replacing any shard pointer.
//
// Bucket keys are interned: the key is the fixed-width Sym encoding
// of the projected values (4 bytes per attribute), not the values
// themselves — at master scale the buckets stop repeating every
// indexed string. Soundness of the probe-side dictionary miss: every
// key in a bucket was interned when its row was added, so a probe
// value the dictionary has never seen cannot match any bucket.
type hashIndex struct {
	attrs  []string // sorted
	pos    []int    // schema positions of attrs
	shared bool
	shards [bucketShardCount]*bucketShard
}

func newHashIndex(sch *schema.Schema, attrs []string) *hashIndex {
	ix := &hashIndex{attrs: attrs, pos: make([]int, len(attrs))}
	for i, a := range attrs {
		ix.pos[i] = sch.MustIndex(a)
	}
	for i := range ix.shards {
		ix.shards[i] = cowmap.New[string, []int64]()
	}
	return ix
}

// appendKey appends tu's sym-encoded bucket key to dst. With intern
// set (the add path) unseen values are assigned ids; without it (the
// remove path) an unseen value means the key cannot be in any bucket
// and ok is false.
func (ix *hashIndex) appendKey(dst []byte, tu *schema.Tuple, dict *value.Dict, intern bool) ([]byte, bool) {
	for _, p := range ix.pos {
		var sym value.Sym
		if intern {
			sym = dict.InternV(tu.Vals[p])
		} else {
			var ok bool
			if sym, ok = dict.LookupV(tu.Vals[p]); !ok {
				return dst, false
			}
		}
		dst = value.AppendSym(dst, sym)
	}
	return dst, true
}

// lookupBytes returns the bucket for an encoded key without
// allocating. Live callers hold the table's read lock; frozen
// snapshots need none. The returned slice must not be mutated.
func (ix *hashIndex) lookupBytes(k []byte) []int64 {
	return ix.shards[cowmap.FNVBytes(k, bucketShardCount)].M[string(k)]
}

// shardMut returns a privately-owned bucket shard for key k.
func (ix *hashIndex) shardMut(k string) *bucketShard {
	return cowmap.Mut(&ix.shards[bucketShardOf(k)])
}

// add appends tu's ID to its bucket. Appending in place is safe even
// when the slice's backing array is shared with a snapshot: the
// snapshot reads only its captured length, every append lands beyond
// it, and each backing position is written at most once (remove
// always swaps in a fresh array).
func (ix *hashIndex) add(tu *schema.Tuple, dict *value.Dict) {
	kb, _ := ix.appendKey(nil, tu, dict, true)
	k := string(kb)
	sh := ix.shardMut(k)
	sh.M[k] = append(sh.M[k], tu.ID)
}

// remove drops tu's ID from its bucket, rebuilding the slice into a
// fresh array — never shifting in place — because snapshots may
// share the old backing array.
func (ix *hashIndex) remove(tu *schema.Tuple, dict *value.Dict) {
	kb, ok := ix.appendKey(nil, tu, dict, false)
	if !ok {
		return // values never interned ⇒ key cannot be in any bucket
	}
	k := string(kb)
	sh := ix.shardMut(k)
	ids := sh.M[k]
	if len(ids) == 0 {
		return
	}
	out := make([]int64, 0, len(ids)-1)
	removed := false
	for _, x := range ids {
		if !removed && x == tu.ID {
			removed = true
			continue
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		delete(sh.M, k)
	} else {
		sh.M[k] = out
	}
}

// deepClone copies the whole index (legacy Clone path).
func (ix *hashIndex) deepClone() *hashIndex {
	cp := &hashIndex{attrs: ix.attrs, pos: ix.pos}
	for i, sh := range &ix.shards {
		m := make(map[string][]int64, len(sh.M))
		for k, ids := range sh.M {
			m[k] = append([]int64(nil), ids...)
		}
		cp.shards[i] = &bucketShard{M: m}
	}
	return cp
}

// indexesMut returns the index registry, copying the map first when
// a snapshot shares it. Callers hold the write lock.
func (t *Table) indexesMut() map[string]*hashIndex {
	return cowmap.MutMap(&t.indexes, &t.indexesShared)
}

// indexMutEntry COWs one index's header inside a privately-owned
// registry, returning the writable index.
func indexMutEntry(reg map[string]*hashIndex, key string, ix *hashIndex) *hashIndex {
	if ix.shared {
		cp := &hashIndex{attrs: ix.attrs, pos: ix.pos, shards: ix.shards}
		reg[key] = cp
		ix = cp
	}
	return ix
}

// indexAddLocked maintains every index for a new row version.
func (t *Table) indexAddLocked(tu *schema.Tuple) {
	if len(t.indexes) == 0 {
		return
	}
	reg := t.indexesMut()
	for key, ix := range reg {
		indexMutEntry(reg, key, ix).add(tu, t.dict)
	}
}

// indexRemoveLocked drops a row version from every index.
func (t *Table) indexRemoveLocked(tu *schema.Tuple) {
	if len(t.indexes) == 0 {
		return
	}
	reg := t.indexesMut()
	for key, ix := range reg {
		indexMutEntry(reg, key, ix).remove(tu, t.dict)
	}
}

// CreateIndex builds (or reuses) a hash index over the attribute list.
// Index lookups then serve LookupEq in O(1) expected time.
func (t *Table) CreateIndex(attrs []string) error {
	for _, a := range attrs {
		if !t.sch.Has(a) {
			return fmt.Errorf("storage: index attribute %q not in schema %s", a, t.sch.Name())
		}
	}
	key := indexKey(attrs)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[key]; ok {
		return nil
	}
	if t.frozen {
		return ErrFrozen
	}
	t.gen++ // index DDL is a mutation: invalidates the cached snapshot
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	idx := newHashIndex(t.sch, sorted)
	scratch := &schema.Tuple{Vals: make(value.List, 0, t.sch.Len())}
	for _, id := range t.order {
		if tu, ok := t.rowShared(id, scratch); ok {
			idx.add(tu, t.dict)
		}
	}
	t.indexesMut()[key] = idx
	return nil
}

// HasIndex reports whether an index over exactly these attributes
// exists (order-insensitive).
func (t *Table) HasIndex(attrs []string) bool {
	t.rlock()
	defer t.runlock()
	_, ok := t.indexes[indexKey(attrs)]
	return ok
}

// LookupEq returns copies of all rows whose attrs project to key. It
// uses a matching hash index when one exists and falls back to a scan
// otherwise (the E5 benchmark's indexed-vs-scan ablation toggles
// exactly this).
func (t *Table) LookupEq(attrs []string, key value.List) []*schema.Tuple {
	if len(attrs) != len(key) {
		return nil
	}
	t.rlock()
	idx, ok := t.indexes[indexKey(attrs)]
	if ok {
		// Project the probe into the index's canonical attribute order.
		sorted := append([]string(nil), attrs...)
		sort.Strings(sorted)
		probe := make(value.List, len(sorted))
		for i, a := range sorted {
			for j, orig := range attrs {
				if orig == a {
					probe[i] = key[j]
					break
				}
			}
		}
		// Sym-encode the probe. A dictionary miss is a proven miss:
		// every bucket key was interned when its row was indexed.
		var ids []int64
		kb := make([]byte, 0, 4*len(probe))
		enc := true
		for _, v := range probe {
			sym, found := t.dict.LookupV(v)
			if !found {
				enc = false
				break
			}
			kb = value.AppendSym(kb, sym)
		}
		if enc {
			ids = idx.lookupBytes(kb)
		}
		out := make([]*schema.Tuple, 0, len(ids))
		for _, id := range ids {
			if tu, live := t.rowFresh(id); live {
				out = append(out, tu)
			}
		}
		t.runlock()
		return out
	}
	t.runlock()
	return t.Select(func(tu *schema.Tuple) bool {
		return tu.Project(attrs).Equal(key)
	})
}
