package master

import (
	"fmt"
	"slices"
	"sort"
	"testing"

	"cerfix/internal/rule"
	"cerfix/internal/value"
)

func TestLookupModeStrings(t *testing.T) {
	if ModeRuleIndex.String() != "rule-index" ||
		ModePlainIndex.String() != "plain-index" ||
		ModeScan.String() != "scan" {
		t.Fatal("mode names wrong")
	}
}

func TestSetModeAndUseIndexes(t *testing.T) {
	m := demoStore(t)
	if m.Mode() != ModeRuleIndex {
		t.Fatalf("default mode = %v", m.Mode())
	}
	m.SetUseIndexes(false)
	if m.Mode() != ModeScan {
		t.Fatal("SetUseIndexes(false) != scan")
	}
	m.SetUseIndexes(true)
	if m.Mode() != ModeRuleIndex {
		t.Fatal("SetUseIndexes(true) != rule-index")
	}
	m.SetMode(ModePlainIndex)
	if m.Mode() != ModePlainIndex {
		t.Fatal("SetMode lost")
	}
}

// All three access paths must return identical UniqueRHS results.
func TestModesAgree(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(
		mustParse(t, `r1: match zip~zip set AC := AC`),
		mustParse(t, `r2: match zip~zip set Hphn := Hphn`),
	)
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	keys := []value.List{{"EH8 4AH"}, {"NW1 6XE"}, {"nothing"}}
	rhsSets := [][]string{{"AC"}, {"Hphn"}}
	for _, key := range keys {
		for _, rhs := range rhsSets {
			var got []string
			var statuses []LookupStatus
			for _, mode := range []LookupMode{ModeRuleIndex, ModePlainIndex, ModeScan} {
				m.SetMode(mode)
				vals, _, st := m.UniqueRHS([]string{"zip"}, key, rhs)
				got = append(got, fmt.Sprint(vals))
				statuses = append(statuses, st)
			}
			if got[0] != got[1] || got[1] != got[2] {
				t.Fatalf("key %v rhs %v: values diverge across modes: %v", key, rhs, got)
			}
			if statuses[0] != statuses[1] || statuses[1] != statuses[2] {
				t.Fatalf("key %v rhs %v: statuses diverge: %v", key, rhs, statuses)
			}
		}
	}
}

// The rule index is maintained incrementally on inserts.
func TestRuleIndexIncrementalInsert(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	// New zip appears after index build.
	if _, err := m.InsertValues("New", "Person", "999", "1", "2", "3", "4", "ZZ9 9ZZ"); err != nil {
		t.Fatal(err)
	}
	rhs, _, st := m.UniqueRHS([]string{"zip"}, value.List{"ZZ9 9ZZ"}, []string{"AC"})
	if st != Unique || rhs[0] != "999" {
		t.Fatalf("incremental insert missed: %v %v", rhs, st)
	}
	// A conflicting insert flips the key to Conflict.
	if _, err := m.InsertValues("Other", "Person", "888", "1", "2", "3", "4", "ZZ9 9ZZ"); err != nil {
		t.Fatal(err)
	}
	_, _, st = m.UniqueRHS([]string{"zip"}, value.List{"ZZ9 9ZZ"}, []string{"AC"})
	if st != Conflict {
		t.Fatalf("conflict not detected incrementally: %v", st)
	}
}

// An unregistered (ad-hoc) pair falls back to the group path.
func TestRuleIndexFallback(t *testing.T) {
	m := demoStore(t)
	// No PrepareForRules at all: mode is rule-index but nothing is
	// registered.
	rhs, _, st := m.UniqueRHS([]string{"zip"}, value.List{"EH8 4AH"}, []string{"AC"})
	if st != Unique || rhs[0] != "131" {
		t.Fatalf("fallback path broken: %v %v", rhs, st)
	}
}

func TestRegisteredRuleIndexes(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(
		mustParse(t, `r1: match zip~zip set AC := AC`),
		mustParse(t, `r2: match AC~AC set city := city`),
	)
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	regs := m.RegisteredRuleIndexes()
	if len(regs) != 2 {
		t.Fatalf("registered = %v", regs)
	}
	if regs[0] != "AC->city" || regs[1] != "zip->AC" {
		t.Fatalf("registered = %v", regs)
	}
}

// RegisteredRuleIndexes promises sorted output; the registry is a map,
// so pin the ordering against iteration-order luck with enough
// indexes that an unsorted implementation cannot pass by accident.
func TestRegisteredRuleIndexesSorted(t *testing.T) {
	m := demoStore(t)
	attrs := []string{"AC", "Hphn", "Mphn", "city", "str", "zip", "FN", "LN"}
	var rules []*rule.Rule
	for i, a := range attrs {
		for j, b := range attrs {
			if i == j {
				continue
			}
			rules = append(rules, mustParse(t, fmt.Sprintf("s%d_%d: match %s~%s set %s := %s", i, j, a, a, b, b)))
		}
	}
	rs := rule.MustSet(rules...)
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	regs := m.RegisteredRuleIndexes()
	if len(regs) != len(rules) {
		t.Fatalf("registered %d pairs, want %d", len(regs), len(rules))
	}
	if !sort.StringsAreSorted(regs) {
		t.Fatalf("RegisteredRuleIndexes not sorted: %v", regs)
	}
	// Stable across calls (map iteration must not leak through).
	for i := 0; i < 5; i++ {
		again := m.RegisteredRuleIndexes()
		if !slices.Equal(regs, again) {
			t.Fatalf("call %d returned a different order:\n%v\n%v", i, regs, again)
		}
	}
}

// encodeProbe sym-encodes a probe key against the store's dictionary,
// mirroring what master.AppendProbeKey does for the compiled chase. The
// second result reports whether every value was already interned; a
// miss means no registered index can contain the key.
func encodeProbe(st *Store, key value.List) ([]byte, bool) {
	kb := make([]byte, 0, 4*len(key))
	for _, v := range key {
		sym, ok := st.Dict().LookupV(v)
		if !ok {
			return nil, false
		}
		kb = value.AppendSym(kb, sym)
	}
	return kb, true
}

// The pre-resolved handle must agree with Store.UniqueRHS on every
// outcome — present keys, absent keys, conflicts — on live stores and
// frozen snapshots, across live mutation.
func TestRuleHandleAgreesWithUniqueRHS(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	match, rhs := []string{"zip"}, []string{"AC"}
	probe := func(t *testing.T, st *Store, h *RuleHandle, key value.List) {
		t.Helper()
		wantRHS, wantWitness, wantStatus := st.UniqueRHS(match, key, rhs)
		kb, enc := encodeProbe(st, key)
		gotRHS, gotWitness, gotStatus, ok := h.Lookup(kb, enc)
		if !ok {
			t.Fatalf("key %v: handle reports no index", key)
		}
		if gotStatus != wantStatus || gotWitness != wantWitness || fmt.Sprint(gotRHS) != fmt.Sprint(wantRHS) {
			t.Fatalf("key %v: handle (%v,%d,%v) != store (%v,%d,%v)",
				key, gotRHS, gotWitness, gotStatus, wantRHS, wantWitness, wantStatus)
		}
	}
	keys := []value.List{{"EH8 4AH"}, {"NW1 6XE"}, {"nothing"}}

	live := m.Handle(match, rhs)
	snap := m.Snapshot()
	snapH := snap.Handle(match, rhs)
	for _, k := range keys {
		probe(t, m, live, k)
		probe(t, snap, snapH, k)
	}

	// Live mutation after the snapshot: the live handle must see the
	// new row and the conflict flip (the COW registry swap must not
	// strand it on a stale index); the snapshot handle keeps its view.
	if _, err := m.InsertValues("New", "Person", "999", "1", "2", "3", "4", "ZZ9 9ZZ"); err != nil {
		t.Fatal(err)
	}
	probe(t, m, live, value.List{"ZZ9 9ZZ"})
	// The dictionary is shared and append-only, so the snapshot handle
	// can encode the new value — its frozen index simply lacks the key.
	if _, _, st, _ := snapH.Lookup(encodeProbe(snap, value.List{"ZZ9 9ZZ"})); st != NoMatch {
		t.Fatalf("snapshot handle sees post-snapshot row: %v", st)
	}
	if _, err := m.InsertValues("Other", "Person", "888", "1", "2", "3", "4", "ZZ9 9ZZ"); err != nil {
		t.Fatal(err)
	}
	if _, _, st, _ := live.Lookup(encodeProbe(m, value.List{"ZZ9 9ZZ"})); st != Conflict {
		t.Fatalf("live handle missed incremental conflict: %v", st)
	}
	for _, k := range keys {
		probe(t, m, live, k)
		probe(t, snap, snapH, k)
	}
}

// A handle for an unregistered pair reports ok=false so callers fall
// back to the group-verification path.
func TestRuleHandleUnregisteredPair(t *testing.T) {
	m := demoStore(t)
	h := m.Handle([]string{"zip"}, []string{"AC"})
	if _, _, _, ok := h.Lookup(encodeProbe(m, value.List{"EH8 4AH"})); ok {
		t.Fatal("handle claims an index that was never built")
	}
	snapH := m.Snapshot().Handle([]string{"zip"}, []string{"AC"})
	if _, _, _, ok := snapH.Lookup(encodeProbe(m, value.List{"EH8 4AH"})); ok {
		t.Fatal("snapshot handle claims an index that was never built")
	}
	// Once built, the same live handle resolves on its next probe.
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	rhs, _, st, ok := h.Lookup(encodeProbe(m, value.List{"EH8 4AH"}))
	if !ok || st != Unique || rhs[0] != "131" {
		t.Fatalf("live handle did not pick up the new index: %v %v ok=%v", rhs, st, ok)
	}
}

// Rebuilding after bulk table mutation reflects the new rows.
func TestPrepareRuleIndexesRebuild(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	// Bypass the Store: write to the table directly (as CSV bulk load
	// does), then rebuild.
	if _, err := m.Table().InsertValues("Bulk", "Row", "777", "1", "2", "3", "4", "BULK1"); err != nil {
		t.Fatal(err)
	}
	// Before rebuild the rule index does not know the key: NoMatch on
	// the index, which is authoritative for registered pairs.
	_, _, st := m.UniqueRHS([]string{"zip"}, value.List{"BULK1"}, []string{"AC"})
	if st != NoMatch {
		t.Fatalf("stale index returned %v", st)
	}
	m.PrepareRuleIndexes(rs)
	rhs, _, st := m.UniqueRHS([]string{"zip"}, value.List{"BULK1"}, []string{"AC"})
	if st != Unique || rhs[0] != "777" {
		t.Fatalf("rebuild missed: %v %v", rhs, st)
	}
}
