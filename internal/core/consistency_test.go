package core

import (
	"strings"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/rule"
	"cerfix/internal/value"
)

// The paper's demo configuration is consistent: "CerFix automatically
// tests whether the specified eRs make sense w.r.t. master data" and
// the nine rules pass (E1).
func TestDemoRulesConsistent(t *testing.T) {
	e := demoEngine(t)
	rep := e.CheckConsistency(nil)
	if !rep.Consistent() {
		for _, is := range rep.Issues {
			t.Logf("issue: %s", is)
		}
		t.Fatal("demo rules reported inconsistent")
	}
	if len(rep.Errors()) != 0 {
		t.Fatalf("errors: %v", rep.Errors())
	}
	if rep.ProbesRun == 0 {
		t.Fatal("no Church-Rosser probes ran")
	}
	// The demo set does carry cross-entity warnings (e.g. φ2 vs φ6 on
	// str: zip of one person + home phone of another): they are
	// reported but harmless.
	if len(rep.Warnings()) == 0 {
		t.Fatal("expected cross-entity warnings for the demo rules")
	}
}

// Analysis (1): one key mapping to two source values.
func TestMasterAmbiguityDetected(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	rows := dataset.DemoMasterRows()
	for _, row := range rows {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	dup := append(value.List(nil), rows[0]...)
	dup[2] = "999" // same zip, different AC
	if _, err := st.InsertValues(dup...); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(nil)
	found := false
	for _, is := range rep.Issues {
		if is.Kind == IssueMasterAmbiguity && is.RuleA == "phi1" {
			found = true
			if is.MasterA == 0 || is.MasterB == 0 {
				t.Error("witness master IDs missing")
			}
			if !strings.Contains(is.String(), "master-ambiguity") {
				t.Errorf("String = %q", is.String())
			}
		}
	}
	if !found {
		t.Fatalf("ambiguity not detected: %v", rep.Issues)
	}
}

// Analysis (2): two rules with overlapping targets and jointly
// satisfiable patterns that derive different values.
func TestPairwiseConflictDetected(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	// ra copies city from the zip match; rb copies city from the AC
	// match. An input with Robert Brady's zip and Mark Smith's AC gets
	// Edi from ra but Ldn from rb.
	rs := rule.MustSet(
		mustParse(t, `ra: match zip~zip set city := city`),
		mustParse(t, `rb: match AC~AC set city := city`),
	)
	e, err := NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(nil)
	found := false
	for _, is := range rep.Issues {
		if is.Kind == IssueRuleConflict && is.Attr == "city" {
			found = true
			if (is.RuleA != "ra" || is.RuleB != "rb") && (is.RuleA != "rb" || is.RuleB != "ra") {
				t.Errorf("wrong rule pair: %+v", is)
			}
			// Cross-entity witness (Brady's zip + Smith's AC): a
			// warning, not an error — the rules are fine per entity.
			if is.Severity != SeverityWarning {
				t.Errorf("severity = %v, want warning: %s", is.Severity, is)
			}
		}
	}
	if !found {
		t.Fatalf("pairwise conflict not detected: %v", rep.Issues)
	}
	if !rep.Consistent() {
		t.Fatal("cross-entity warnings must not fail consistency")
	}
	if len(rep.Warnings()) == 0 {
		t.Fatal("Warnings() empty")
	}
}

// A genuine rule error: two rules derive the same attribute from
// different master attributes of the *same* entity (copying street into
// city). This is error severity and fails consistency.
func TestSameEntityConflictIsError(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	rs := rule.MustSet(
		mustParse(t, `ra: match zip~zip set city := city`),
		mustParse(t, `rb: match zip~zip set city := str`), // bug: street into city
	)
	e, err := NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(nil)
	if rep.Consistent() {
		t.Fatal("same-entity conflict not flagged as error")
	}
	errs := rep.Errors()
	foundPairwise := false
	for _, is := range errs {
		if is.Kind == IssueRuleConflict && is.MasterA == is.MasterB {
			foundPairwise = true
		}
	}
	if !foundPairwise {
		t.Fatalf("expected same-tuple pairwise error, got %v", rep.Issues)
	}
}

// Disjoint patterns shield overlapping targets: no conflict possible.
func TestDisjointPatternsNoConflict(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	rs := rule.MustSet(
		mustParse(t, `ra: match zip~zip set city := city when type = "1"`),
		mustParse(t, `rb: match AC~AC set city := city when type = "2"`),
	)
	e, err := NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(nil)
	for _, is := range rep.Issues {
		if is.Kind == IssueRuleConflict {
			t.Fatalf("false conflict despite disjoint patterns: %v", is)
		}
	}
}

// Bindings that force pattern violation shield the pair too: if rb's
// pattern requires AC = "0800" but matching any master tuple binds AC
// to a non-0800 value, no conflict input exists.
func TestBoundPatternBlocksConflict(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	rs := rule.MustSet(
		mustParse(t, `ra: match zip~zip set city := city`),
		mustParse(t, `rb: match AC~AC set city := city when AC = "0800"`),
	)
	e, err := NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(nil)
	for _, is := range rep.Issues {
		if is.Kind == IssueRuleConflict {
			t.Fatalf("conflict reported though no master tuple has AC=0800: %v", is)
		}
	}
}

// The pairwise search budget is respected (smoke test: tiny budget on a
// conflicting configuration still terminates quickly and quietly).
func TestPairwiseBudget(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	rs := rule.MustSet(
		mustParse(t, `ra: match zip~zip set city := city`),
		mustParse(t, `rb: match AC~AC set city := city`),
	)
	e, err := NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(&ConsistencyOptions{MaxMasterPairs: 1})
	_ = rep // with budget 1 the witness may or may not be found; just must terminate
}

// Single-rule sets skip order probing but still report.
func TestSingleRuleOrderProbeSkipped(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	rs := rule.MustSet(mustParse(t, `ra: match zip~zip set city := city`))
	e, err := NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.CheckConsistency(nil)
	if rep.ProbesRun != 0 {
		t.Fatalf("probes ran for single rule: %d", rep.ProbesRun)
	}
	if !rep.Consistent() {
		t.Fatalf("single clean rule inconsistent: %v", rep.Issues)
	}
}

func TestIssueKindStrings(t *testing.T) {
	if IssueMasterAmbiguity.String() != "master-ambiguity" ||
		IssueRuleConflict.String() != "rule-conflict" ||
		IssueOrderDependence.String() != "order-dependence" {
		t.Fatal("kind names wrong")
	}
}

// Options defaulting.
func TestConsistencyOptionsDefaults(t *testing.T) {
	var nilOpts *ConsistencyOptions
	o := nilOpts.withDefaults()
	if o.MaxMasterPairs != 100000 || o.ProbeOrders != 2 || o.MaxProbeTuples != 50 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := (&ConsistencyOptions{MaxMasterPairs: 5, Seed: 7}).withDefaults()
	if o2.MaxMasterPairs != 5 || o2.Seed != 7 || o2.ProbeOrders != 2 {
		t.Fatalf("merged = %+v", o2)
	}
}
