package cerfix

// Crash-point enumeration for the two durability-critical save paths.
// Each sweep records the full effect-op trace of one operation (every
// open/write/sync/rename/remove/dir-sync), then for every prefix k
// re-runs it with a simulated crash at op k, applies the unsynced-data
// loss a real power cut could inflict (keep 0, half, or all of the
// bytes written since the last fsync), reloads, and asserts the
// recovery invariants:
//
//   - the directory always loads to a complete instance (possibly via
//     the .bak fallback),
//   - acknowledged state (everything a returned-nil Save covered) is
//     never lost,
//   - a WAL batch is applied all-or-nothing — never a prefix.

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"cerfix/internal/faultfs"
)

// lossVariants are the fractions of unsynced bytes a crash leaves
// behind: page cache flushed nothing, half (a torn write), everything
// ("the write landed but the fsync didn't").
var lossVariants = []float64{0, 0.5, 1}

func addRowT(t *testing.T, sys *System, fn, ln string) {
	t.Helper()
	if err := sys.AddMasterRow(fn, ln, "505", "1", "2", "3", "4", "NM 87104", "07/09/58", "M"); err != nil {
		t.Fatal(err)
	}
}

// TestCrashSweepWALAppend enumerates every crash point of a WAL-append
// save. Invariant: the reloaded instance holds either exactly the
// acknowledged rows (the batch is discarded whole) or all of them plus
// the full batch — never a partially applied batch. After the crash,
// the survivor process (same cursor) must be able to save again and
// land every row.
func TestCrashSweepWALAppend(t *testing.T) {
	// Count the effect ops of one representative append (two rows, one
	// batch) on a throwaway directory.
	count := faultfs.NewInjector(faultfs.OS)
	{
		sys := demoSystem(t)
		dir := filepath.Join(t.TempDir(), "instance")
		if err := sys.Save(dir); err != nil {
			t.Fatal(err)
		}
		sys.fs = count
		addRowT(t, sys, "Walter", "White")
		addRowT(t, sys, "Jesse", "Pinkman")
		if err := sys.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	n := count.EffectOps()
	if n < 3 {
		t.Fatalf("suspiciously short append trace (%d ops): %v", n, count.Trace())
	}

	for k := 0; k < n; k++ {
		for _, keep := range lossVariants {
			sys := demoSystem(t)
			dir := filepath.Join(t.TempDir(), "instance")
			if err := sys.Save(dir); err != nil {
				t.Fatal(err)
			}
			acked := sys.Master().Len()
			inj := faultfs.NewInjector(faultfs.OS)
			sys.fs = inj
			inj.SetCrashAt(k)
			addRowT(t, sys, "Walter", "White")
			addRowT(t, sys, "Jesse", "Pinkman")
			err := sys.Save(dir)
			if err == nil {
				t.Fatalf("crash at op %d/%d did not fail the save", k, n)
			}
			if !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("crash at op %d: unexpected error %v", k, err)
			}
			if err := inj.LoseUnsynced(keep); err != nil {
				t.Fatalf("crash at op %d keep=%v: loss simulation: %v", k, keep, err)
			}
			loaded, err := Load(dir)
			if err != nil {
				t.Fatalf("crash at op %d keep=%v: reload failed: %v", k, keep, err)
			}
			if got := loaded.Master().Len(); got != acked && got != acked+2 {
				t.Fatalf("crash at op %d keep=%v: %d rows after reload, want %d (batch discarded) or %d (batch applied) — a half-applied batch",
					k, keep, got, acked, acked+2)
			}
			if info := loaded.LoadInfo(); info.WALCorrupt {
				t.Fatalf("crash at op %d keep=%v: crash residue misread as corruption: %+v", k, keep, info)
			}
			if loaded.Rules() != sys.Rules() {
				t.Fatalf("crash at op %d keep=%v: rules damaged", k, keep)
			}

			// The surviving process retries: the cursor is intact, so
			// the next save must truncate any torn tail and land both
			// rows (possibly via a checkpoint if the window closed).
			sys.fs = nil
			if err := sys.Save(dir); err != nil {
				t.Fatalf("crash at op %d keep=%v: retry save failed: %v", k, keep, err)
			}
			final, err := Load(dir)
			if err != nil {
				t.Fatalf("crash at op %d keep=%v: post-retry reload failed: %v", k, keep, err)
			}
			if final.Master().Len() != acked+2 {
				t.Fatalf("crash at op %d keep=%v: retry landed %d rows, want %d",
					k, keep, final.Master().Len(), acked+2)
			}
		}
	}
}

// TestCrashSweepCheckpoint enumerates every crash point of a full
// checkpoint swap (update + insert since the last save, so the window
// is not pure-append). Invariant: the directory — or its .bak
// fallback — always reloads to a complete instance that is exactly
// the old acknowledged state or exactly the new one.
func TestCrashSweepCheckpoint(t *testing.T) {
	mutate := func(t *testing.T, sys *System) {
		row := sys.Master().Table().All()[0]
		row.Set("city", "Rewritten")
		if err := sys.Master().Table().Update(row); err != nil {
			t.Fatal(err)
		}
		addRowT(t, sys, "Walter", "White")
	}

	count := faultfs.NewInjector(faultfs.OS)
	{
		sys := demoSystem(t)
		dir := filepath.Join(t.TempDir(), "instance")
		if err := sys.Save(dir); err != nil {
			t.Fatal(err)
		}
		mutate(t, sys)
		sys.fs = count
		if err := sys.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	n := count.EffectOps()
	if n < 8 {
		t.Fatalf("suspiciously short checkpoint trace (%d ops): %v", n, count.Trace())
	}

	for k := 0; k < n; k++ {
		for _, keep := range lossVariants {
			sys := demoSystem(t)
			dir := filepath.Join(t.TempDir(), "instance")
			if err := sys.Save(dir); err != nil {
				t.Fatal(err)
			}
			acked := sys.Master().Len()
			mutate(t, sys)
			inj := faultfs.NewInjector(faultfs.OS)
			sys.fs = inj
			inj.SetCrashAt(k)
			err := sys.Save(dir)
			if err == nil {
				t.Fatalf("crash at op %d/%d did not fail the save", k, n)
			}
			if err := inj.LoseUnsynced(keep); err != nil {
				t.Fatalf("crash at op %d keep=%v: loss simulation: %v", k, keep, err)
			}
			loaded, err := Load(dir)
			if err != nil {
				t.Fatalf("crash at op %d keep=%v: reload failed: %v", k, keep, err)
			}
			got := loaded.Master().Len()
			rewritten := false
			for _, tu := range loaded.Master().Table().All() {
				if tu.Get("city") == "Rewritten" {
					rewritten = true
				}
			}
			switch {
			case got == acked && !rewritten: // old instance, intact
			case got == acked+1 && rewritten: // new instance, intact
			default:
				t.Fatalf("crash at op %d keep=%v: mixed instance after reload (%d rows, rewritten=%v)",
					k, keep, got, rewritten)
			}
			if loaded.Rules() != sys.Rules() {
				t.Fatalf("crash at op %d keep=%v: rules damaged", k, keep)
			}

			// Recovery: a healthy save from the survivor lands the new
			// state (the cursor died with the failed checkpoint, so
			// this is a fresh checkpoint).
			sys.fs = nil
			if err := sys.Save(dir); err != nil {
				t.Fatalf("crash at op %d keep=%v: retry save failed: %v", k, keep, err)
			}
			final, err := Load(dir)
			if err != nil {
				t.Fatalf("crash at op %d keep=%v: post-retry reload failed: %v", k, keep, err)
			}
			if final.Master().Len() != acked+1 {
				t.Fatalf("crash at op %d keep=%v: retry landed %d rows, want %d",
					k, keep, final.Master().Len(), acked+1)
			}
		}
	}
}

// TestWALAppendTruncatesTornTail pins the torn-tail repair: a failed
// append leaves garbage past the durable prefix; the next append must
// truncate it first so new batches never land after a torn tail.
func TestWALAppendTruncatesTornTail(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	acked := sys.Master().Len()

	// First append attempt: the batch write lands, the fsync fails.
	inj := faultfs.NewInjector(faultfs.OS)
	inj.FailNth(faultfs.OpSync, walFile, 1, syscall.ENOSPC)
	sys.fs = inj
	addRowT(t, sys, "Walter", "White")
	if err := sys.Save(dir); err == nil {
		t.Fatal("save succeeded despite injected fsync failure")
	} else if !faultfs.Transient(err) {
		t.Fatalf("ENOSPC not classified transient: %v", err)
	}

	// The failed attempt's bytes are on disk past the durable prefix.
	fi, err := faultfs.OS.Stat(filepath.Join(dir, walFile))
	if err != nil || fi.Size() == 0 {
		t.Fatalf("expected torn bytes on disk: size=%v err=%v", fi, err)
	}

	// Healthy retry: both rows land in one clean batch; replay sees no
	// tear and no corruption.
	sys.fs = nil
	addRowT(t, sys, "Jesse", "Pinkman")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Master().Len() != acked+2 {
		t.Fatalf("got %d rows, want %d", loaded.Master().Len(), acked+2)
	}
	info := loaded.LoadInfo()
	if info.WALTornTail || info.WALCorrupt || info.WALBatches != 1 || info.WALRows != 2 {
		t.Fatalf("torn tail not repaired before append: %+v", info)
	}
}

// TestSaveReportsPersistenceHealth pins the Save→Health wiring: a
// transient storage fault degrades, a later success restores.
func TestSaveReportsPersistenceHealth(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	h := faultfs.NewHealth(nil, 0)
	sys.SetPersistenceHealth(h)
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); st.State != "ok" {
		t.Fatalf("healthy save left state %q", st.State)
	}

	inj := faultfs.NewInjector(faultfs.OS)
	inj.FailNth(faultfs.OpWrite, walFile, 1, syscall.ENOSPC)
	sys.fs = inj
	addRowT(t, sys, "Walter", "White")
	if err := sys.Save(dir); err == nil {
		t.Fatal("save succeeded despite injected ENOSPC")
	}
	if st := h.Status(); st.State != "degraded" || st.Degradations != 1 {
		t.Fatalf("ENOSPC did not degrade health: %+v", st)
	}
	if err := h.Check(); !errors.Is(err, faultfs.ErrDegraded) {
		t.Fatalf("Check while degraded = %v, want ErrDegraded", err)
	}

	sys.fs = nil
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); st.State != "ok" {
		t.Fatalf("successful save did not restore health: %+v", st)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check after recovery = %v", err)
	}
}
