package storage

import (
	"testing"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func TestApplyBatchMixed(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fill(t, tb)
	if err := tb.CreateIndex([]string{"zip"}); err != nil {
		t.Fatal(err)
	}
	updated, _ := tb.Get(ids[0])
	updated.Set("zip", "NEW1")
	newRow := schema.MustTuple(tb.Schema(), "Eve", "Stone", "NEW2")

	got, err := tb.ApplyBatch([]Op{
		Insert(newRow),
		Update(updated),
		Delete(ids[1]),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("ids = %v", got)
	}
	if tb.Len() != 3 { // 3 - 1 + 1
		t.Fatalf("Len = %d", tb.Len())
	}
	if n := len(tb.LookupEq([]string{"zip"}, value.List{"NEW1"})); n != 1 {
		t.Fatalf("index missed update: %d", n)
	}
	if n := len(tb.LookupEq([]string{"zip"}, value.List{"NEW2"})); n != 1 {
		t.Fatalf("index missed insert: %d", n)
	}
	if _, ok := tb.Get(ids[1]); ok {
		t.Fatal("delete not applied")
	}
}

// A failing operation anywhere leaves the table completely unchanged.
func TestApplyBatchAtomicity(t *testing.T) {
	tb := NewTable(personSchema(t))
	ids := fill(t, tb)
	before := tb.All()

	ghost := schema.MustTuple(tb.Schema(), "G", "H", "I")
	ghost.ID = 999
	cases := [][]Op{
		{Insert(schema.MustTuple(tb.Schema(), "A", "B", "C")), Update(ghost)},
		{Delete(ids[0]), Delete(999)},
		{Insert(nil)},
		{Update(nil)},
		{{Kind: OpKind(42)}},
		{Delete(ids[0]), Delete(ids[0])}, // double delete of one row
	}
	for i, ops := range cases {
		if _, err := tb.ApplyBatch(ops); err == nil {
			t.Fatalf("case %d: invalid batch accepted", i)
		}
		after := tb.All()
		if len(after) != len(before) {
			t.Fatalf("case %d: row count changed (%d -> %d)", i, len(before), len(after))
		}
		for j := range after {
			if !after[j].Equal(before[j]) {
				t.Fatalf("case %d: row %d changed", i, j)
			}
		}
	}
}

func TestApplyBatchSchemaMismatch(t *testing.T) {
	tb := NewTable(personSchema(t))
	other := schema.MustNew("O", schema.Str("x"))
	if _, err := tb.ApplyBatch([]Op{Insert(schema.MustTuple(other, "v"))}); err == nil {
		t.Fatal("foreign schema accepted")
	}
	tu := schema.MustTuple(other, "v")
	tu.ID = 1
	if _, err := tb.ApplyBatch([]Op{Update(tu)}); err == nil {
		t.Fatal("foreign schema update accepted")
	}
}

func TestApplyBatchEmptyAndInsertOnly(t *testing.T) {
	tb := NewTable(personSchema(t))
	if ids, err := tb.ApplyBatch(nil); err != nil || len(ids) != 0 {
		t.Fatalf("empty batch: %v %v", ids, err)
	}
	ids, err := tb.ApplyBatch([]Op{
		Insert(schema.MustTuple(tb.Schema(), "A", "B", "C")),
		Insert(schema.MustTuple(tb.Schema(), "D", "E", "F")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] == ids[1] || ids[0] == 0 {
		t.Fatalf("insert ids = %v", ids)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

// Update of a row inserted in the same batch is rejected (IDs are
// assigned at commit, so the caller cannot know them yet).
func TestApplyBatchUpdateOfPendingInsert(t *testing.T) {
	tb := NewTable(personSchema(t))
	pending := schema.MustTuple(tb.Schema(), "A", "B", "C")
	pending.ID = 1 // guess — row 1 does not exist yet
	if _, err := tb.ApplyBatch([]Op{
		Insert(schema.MustTuple(tb.Schema(), "X", "Y", "Z")),
		Update(pending),
	}); err == nil {
		t.Fatal("update of not-yet-committed row accepted")
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpUpdate.String() != "update" ||
		OpDelete.String() != "delete" || OpKind(9).String() != "unknown" {
		t.Fatal("names wrong")
	}
}
