package simd

import "math/bits"

// SWAR ("SIMD within a register") kernels: 8 bytes per step through a
// uint64, plain Go, valid on every architecture. The two classifiers
// come from the classic bit-twiddling identities:
//
//	haszero(v)    = (v - 0x01..01) &^ v & 0x80..80
//	hasless(v, n) = (v - n*0x01..01) &^ v & 0x80..80   (n <= 128)
//
// Both may report false positives in bytes ABOVE (more significant
// than) a genuine match — the borrow of a matching byte's subtraction
// ripples upward — but never below one: a byte with no borrow coming
// in matches iff it genuinely satisfies the predicate. The kernels
// only ever report the FIRST match (TrailingZeros on a little-endian
// word order), which is always genuine. The differential suite in
// simd_test.go pins this against the scalar definitions.

const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// load64 assembles the 8 little-endian bytes at k[i:i+8]. The compiler
// recognizes the shift-or chain and emits a single 64-bit load on
// little-endian architectures; big-endian targets pay a byte swap and
// stay correct, because the kernels only depend on "lowest byte ==
// earliest byte", which this construction guarantees everywhere.
func load64[K ~string | ~[]byte](k K, i int) uint64 {
	_ = k[i+7]
	return uint64(k[i]) | uint64(k[i+1])<<8 | uint64(k[i+2])<<16 | uint64(k[i+3])<<24 |
		uint64(k[i+4])<<32 | uint64(k[i+5])<<40 | uint64(k[i+6])<<48 | uint64(k[i+7])<<56
}

// indexByteSWAR is the portable IndexByte: word-at-a-time haszero over
// b XOR the broadcast needle, scalar tail for the last < 8 bytes.
func indexByteSWAR(b []byte, c byte) int {
	pat := uint64(c) * swarOnes
	i, n := 0, len(b)
	for ; i+8 <= n; i += 8 {
		v := load64(b, i) ^ pat
		if m := (v - swarOnes) &^ v & swarHighs; m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < n; i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// scanJSONSWAR classifies 8 bytes per step for the JSONL fast path:
// first index of '"', '\\', a control byte (< 0x20) or a non-ASCII
// byte (>= 0x80), else -1.
func scanJSONSWAR(b []byte) int {
	i, n := 0, len(b)
	for ; i+8 <= n; i += 8 {
		w := load64(b, i)
		q := w ^ swarOnes*'"'
		e := w ^ swarOnes*'\\'
		m := ((q - swarOnes) &^ q) | // '"'
			((e - swarOnes) &^ e) | // '\\'
			((w - swarOnes*0x20) &^ w) | // < 0x20
			w // >= 0x80
		if m &= swarHighs; m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < n; i++ {
		if c := b[i]; c == '"' || c == '\\' || c < 0x20 || c >= 0x80 {
			return i
		}
	}
	return -1
}

// fnv1aString is the wide FNV-1a body over a string: one 8-byte load,
// then the 8 mix steps extracted from the word. The hash chain is the
// byte-serial FNV-1a definition exactly — widening the loads cannot
// change a single bit — so cowmap shard routing and dictionary slots
// computed by either form always agree.
func fnv1aString(h uint32, s string) uint32 { return fnv1aWide(h, s) }

// fnv1aBytes is fnv1aString for a byte slice.
func fnv1aBytes(h uint32, b []byte) uint32 { return fnv1aWide(h, b) }

func fnv1aWide[K ~string | ~[]byte](h uint32, k K) uint32 {
	i, n := 0, len(k)
	for ; i+8 <= n; i += 8 {
		w := load64(k, i)
		h = (h ^ uint32(w&0xff)) * fnvPrime
		h = (h ^ uint32(w>>8&0xff)) * fnvPrime
		h = (h ^ uint32(w>>16&0xff)) * fnvPrime
		h = (h ^ uint32(w>>24&0xff)) * fnvPrime
		h = (h ^ uint32(w>>32&0xff)) * fnvPrime
		h = (h ^ uint32(w>>40&0xff)) * fnvPrime
		h = (h ^ uint32(w>>48&0xff)) * fnvPrime
		h = (h ^ uint32(w>>56)) * fnvPrime
	}
	for ; i < n; i++ {
		h = (h ^ uint32(k[i])) * fnvPrime
	}
	return h
}
