package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/jobs"
	"cerfix/internal/server"
)

// jobsDaemon spins up an in-process cerfixd equivalent with the jobs
// subsystem enabled.
func jobsDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(sys)
	mgr, err := jobs.Open(jobs.Config{
		Dir:       t.TempDir(),
		Schema:    sys.InputSchema(),
		Snapshot:  srv.SnapshotEngine,
		InputRoot: "/", // tests submit from arbitrary temp dirs
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(context.Background()) })
	srv.AttachJobs(mgr)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestCmdJobsRoundTrip(t *testing.T) {
	ts := jobsDaemon(t)
	dir := t.TempDir()
	dirtyCSV := filepath.Join(dir, "dirty.csv")
	rows := [][]string{dataset.DemoInputExample1().Vals.Strings()}
	if err := writeCSV(dirtyCSV, dataset.CustSchema().AttrNames(), rows); err != nil {
		t.Fatal(err)
	}

	// Inline submit + wait runs the job to done.
	if err := cmdJobs([]string{"submit",
		"-addr", ts.URL, "-validated", "zip", "-data", dirtyCSV, "-wait",
	}); err != nil {
		t.Fatal(err)
	}
	// The daemon-side path variant works too.
	if err := cmdJobs([]string{"submit",
		"-addr", ts.URL, "-validated", "zip", "-data", dirtyCSV, "-server-path", "-wait",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdJobs([]string{"list", "-addr", ts.URL}); err != nil {
		t.Fatal(err)
	}
	if err := cmdJobs([]string{"status", "-addr", ts.URL, "-id", "j000001"}); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "results.jsonl")
	if err := cmdJobs([]string{"results", "-addr", ts.URL, "-id", "j000001", "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), `"AC":"131"`) {
		t.Fatalf("results artifact missing fixed AC:\n%s", got)
	}

	// Error paths: unknown verb, unknown id.
	if err := cmdJobs([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if err := cmdJobs([]string{"status", "-addr", ts.URL, "-id", "j999999"}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := cmdJobs(nil); err == nil {
		t.Fatal("missing verb accepted")
	}
}

func TestLoadTuplesFormats(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	if err := writeCSV(csvPath, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	tuples, err := loadTuples(csvPath, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[0]["a"] != "1" || tuples[1]["b"] != "4" {
		t.Fatalf("csv tuples = %+v", tuples)
	}
	jsonlPath := filepath.Join(dir, "in.jsonl")
	if err := os.WriteFile(jsonlPath, []byte("{\"a\":\"5\",\"b\":\"6\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tuples, err = loadTuples(jsonlPath, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0]["a"] != "5" {
		t.Fatalf("jsonl tuples = %+v", tuples)
	}
	if _, err := loadTuples(csvPath, "parquet"); err == nil {
		t.Fatal("bad format accepted")
	}
	if got := guessFormat("x.jsonl"); got != "jsonl" {
		t.Fatalf("guessFormat(.jsonl) = %s", got)
	}
	if got := guessFormat("x.csv"); got != "csv" {
		t.Fatalf("guessFormat(.csv) = %s", got)
	}
}
