package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cerfix"
	"cerfix/internal/dataset"
)

// Regression: /api/master must encode items as [] — never null — when
// the store is empty or limit=0.
func TestMasterListRowsNeverNull(t *testing.T) {
	// Empty store.
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	empty := httptest.NewServer(New(sys).Handler())
	defer empty.Close()
	for _, url := range []string{
		empty.URL + "/api/master",
		demoServer(t).URL + "/api/master?limit=0",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
		}
		if strings.Contains(string(body), `"items":null`) {
			t.Fatalf("GET %s returned null items: %s", url, body)
		}
		if !strings.Contains(string(body), `"items":[]`) {
			t.Fatalf("GET %s missing empty items array: %s", url, body)
		}
	}
}

// Regression: the session and batch endpoints must agree on the
// validated-attribute order — schema order, not a lexicographic
// re-sort (the session path used to double-sort).
func TestValidatedOrderAgreesAcrossEndpoints(t *testing.T) {
	ts := demoServer(t)
	tuple := dataset.DemoInputFig3().Map()
	seed := []string{"zip", "phn", "type", "item"}

	// Batch path.
	var batch batchResponse
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": seed,
		"tuples":    []map[string]string{tuple},
	}, 200, &batch)
	if len(batch.Results) != 1 {
		t.Fatalf("batch results = %d", len(batch.Results))
	}
	batchOrder := batch.Results[0].Validated

	// Session path: assert the same four attributes at their current
	// values, which drives the same chase.
	var sess sessionJSON
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]any{"tuple": tuple}, 201, &sess)
	assertions := map[string]string{}
	for _, a := range seed {
		assertions[a] = tuple[a]
	}
	var validated struct {
		Session sessionJSON `json:"session"`
	}
	doJSON(t, "POST", ts.URL+"/api/sessions/"+strconv.FormatInt(sess.ID, 10)+"/validate",
		map[string]any{"assertions": assertions}, 200, &validated)
	sessOrder := validated.Session.Validated

	if strings.Join(batchOrder, ",") != strings.Join(sessOrder, ",") {
		t.Fatalf("endpoints disagree on validated order:\n batch   %v\n session %v", batchOrder, sessOrder)
	}
	// And that shared order is schema order, not alphabetical.
	sch := dataset.CustSchema()
	last := -1
	for _, a := range batchOrder {
		i, ok := sch.Index(a)
		if !ok {
			t.Fatalf("unknown attr %q in validated list", a)
		}
		if i <= last {
			t.Fatalf("validated list %v is not in schema order", batchOrder)
		}
		last = i
	}
	if len(batchOrder) < 2 {
		t.Fatalf("validated list too small to check ordering: %v", batchOrder)
	}
}
