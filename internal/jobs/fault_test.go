package jobs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/faultfs"
	"cerfix/internal/schema"
)

// faultConfig builds a Manager config over the given fs with a tiny
// retry backoff so transient-failure tests run fast.
func faultConfig(dir string, eng *core.Engine, fs faultfs.FS) Config {
	return Config{
		Dir:          dir,
		Schema:       dataset.CustSchema(),
		Snapshot:     eng.Snapshot,
		FS:           fs,
		RetryBackoff: time.Millisecond,
	}
}

func submitTuples(m *Manager, validated []string, dirty []*schema.Tuple) (Job, error) {
	tuples := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		tuples[i] = tu.Map()
	}
	return m.SubmitInline(validated, tuples)
}

// waitTerminal polls until the job reaches any terminal state (or the
// manager loses it, which the caller treats as its own failure).
func waitTerminal(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func assertArtifact(t *testing.T, path string, want [][]byte, ctx string) {
	t.Helper()
	got := readArtifact(t, path)
	if len(got) != len(want) {
		t.Fatalf("%s: artifact has %d lines, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("%s: artifact line %d:\n got %s\nwant %s", ctx, i, got[i], want[i])
		}
	}
}

// TestCrashSweepJobLifecycle enumerates every crash point of a full
// job lifecycle — manager open, inline submit (materialize + journal),
// the run's journals and results streaming, the done journal — and for
// each prefix and each unsynced-loss variant asserts the recovery
// invariants: the directory always reopens cleanly, crash residue is
// never mistaken for corruption, and an acknowledged job is either
// cleanly re-queued (and re-runnable to the byte-exact artifact) or
// already done with a complete artifact. Never lost, never half-done.
func TestCrashSweepJobLifecycle(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 10)
	dirty = dirty[:3]
	want := expectedArtifact(t, eng, dirty, validated)

	// Count run: one full lifecycle on a throwaway directory.
	count := faultfs.NewInjector(faultfs.OS)
	{
		m, err := Open(faultConfig(t.TempDir(), eng, count))
		if err != nil {
			t.Fatal(err)
		}
		j, err := submitTuples(m, validated, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, m, j.ID); got.State != StateDone {
			t.Fatalf("count run ended %s (%s)", got.State, got.Error)
		}
		if err := m.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	n := count.EffectOps()
	if n < 10 {
		t.Fatalf("suspiciously short lifecycle trace (%d ops): %v", n, count.Trace())
	}

	for k := 0; k < n; k++ {
		for _, keep := range []float64{0, 0.5, 1} {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS)
			inj.SetCrashAt(k)

			var ackedID string
			m, err := Open(faultConfig(dir, eng, inj))
			if err == nil {
				if j, serr := submitTuples(m, validated, dirty); serr == nil {
					ackedID = j.ID
					// Drive until the run either completes or hits the
					// crash (ErrCrashed is permanent, so the worker
					// journals a terminal state — or dies trying).
					deadline := time.Now().Add(10 * time.Second)
					for {
						got, gerr := m.Get(ackedID)
						if gerr != nil || got.State.Terminal() || inj.Crashed() {
							break
						}
						if time.Now().After(deadline) {
							t.Fatalf("crash at op %d: job neither finished nor crashed", k)
						}
						time.Sleep(time.Millisecond)
					}
				}
				_ = m.Close(context.Background())
			} else if !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("crash at op %d: Open failed with %v, want ErrCrashed", k, err)
			}

			if err := inj.LoseUnsynced(keep); err != nil {
				t.Fatalf("crash at op %d keep=%v: loss simulation: %v", k, keep, err)
			}

			// Restart on the real filesystem: recovery must always
			// succeed, and crash residue must never look like corruption.
			m2, err := Open(faultConfig(dir, eng, nil))
			if err != nil {
				t.Fatalf("crash at op %d keep=%v: reopen failed: %v", k, keep, err)
			}
			if q := m2.Stats().Quarantined; q != 0 {
				t.Fatalf("crash at op %d keep=%v: crash residue quarantined as corruption (%d)", k, keep, q)
			}
			if ackedID != "" {
				// The acknowledged job survived: re-queued or done. Drive
				// it to completion and demand the byte-exact artifact.
				j := waitTerminal(t, m2, ackedID)
				if j.State != StateDone {
					t.Fatalf("crash at op %d keep=%v: recovered job ended %s (%s)", k, keep, j.State, j.Error)
				}
				path, err := m2.ResultsPath(ackedID)
				if err != nil {
					t.Fatal(err)
				}
				assertArtifact(t, path, want, "recovered job")
			}
			if err := m2.Close(context.Background()); err != nil {
				t.Fatalf("crash at op %d keep=%v: close: %v", k, keep, err)
			}
		}
	}
}

// TestJobTransientRetry pins the bounded-retry path: a one-shot ENOSPC
// on the results fsync must not fail the job — the runner backs off,
// re-runs the attempt from scratch, and the artifact comes out
// byte-exact with Attempts recording the extra run.
func TestJobTransientRetry(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 10)
	dirty = dirty[:5]

	inj := faultfs.NewInjector(faultfs.OS)
	inj.FailNth(faultfs.OpSync, "results.jsonl", 1, syscall.ENOSPC)
	m, err := Open(faultConfig(t.TempDir(), eng, inj))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	j, err := submitTuples(m, validated, dirty)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, j.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s (%s), want done despite transient fault", done.State, done.Error)
	}
	if done.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one transient failure, one retry)", done.Attempts)
	}
	path, err := m.ResultsPath(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertArtifact(t, path, expectedArtifact(t, eng, dirty, validated), "retried job")
}

// TestJobPermanentErrorNoRetry pins the classification boundary: a
// permanent input error fails the job on the first attempt — transient
// retry must never mask bad input.
func TestJobPermanentErrorNoRetry(t *testing.T) {
	eng, _, validated := testWorkload(t, 20, 5)
	dir := t.TempDir()
	root := t.TempDir()
	bad := filepath.Join(root, "bad.csv")
	if err := os.WriteFile(bad, []byte("no,such,header\n1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := faultConfig(dir, eng, nil)
	cfg.InputRoot = root
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, err := m.SubmitFile(validated, bad, FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitTerminal(t, m, j.ID)
	if failed.State != StateFailed {
		t.Fatalf("job ended %s, want failed", failed.State)
	}
	if failed.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (permanent errors must not retry)", failed.Attempts)
	}
}

// TestJournalCorruptionQuarantine pins restart integrity checking: a
// job.json whose payload no longer matches its checksum is set aside
// as <id>.corrupt — visible in stats, preserved on disk, never run.
func TestJournalCorruptionQuarantine(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 10)
	dirty = dirty[:2]
	dir := t.TempDir()
	m, err := Open(faultConfig(dir, eng, nil))
	if err != nil {
		t.Fatal(err)
	}
	j, err := submitTuples(m, validated, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, j.ID); got.State != StateDone {
		t.Fatalf("job ended %s", got.State)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Flip bytes inside the checksummed payload (still valid JSON, so
	// only the CRC can catch it).
	journal := filepath.Join(dir, j.ID, "job.json")
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"done"`), []byte(`"dead"`), 1)
	if bytes.Equal(bad, data) {
		t.Fatalf("journal %s does not contain the expected state literal", data)
	}
	if err := os.WriteFile(journal, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(faultConfig(dir, eng, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	if q := m2.Stats().Quarantined; q != 1 {
		t.Fatalf("quarantined = %d, want 1", q)
	}
	if _, err := m2.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt job still listed: %v", err)
	}
	qdir := filepath.Join(dir, j.ID+".corrupt")
	if _, err := os.Stat(filepath.Join(qdir, "job.json")); err != nil {
		t.Fatalf("quarantine did not preserve the directory: %v", err)
	}
}

// TestSubmitDegradedAndRecovery pins the degraded-mode gate: after a
// transient storage fault, submissions fail fast with ErrDegraded
// (no disk writes attempted), and once the fault clears the health
// probe readmits work automatically — no restart, no operator action.
func TestSubmitDegradedAndRecovery(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 10)
	dirty = dirty[:2]
	dir := t.TempDir()

	inj := faultfs.NewInjector(faultfs.OS)
	var failing atomic.Bool
	inj.SetFault(func(op faultfs.Op, path string) error {
		if failing.Load() && (op == faultfs.OpWrite || op == faultfs.OpSync) {
			return syscall.ENOSPC
		}
		return nil
	})
	health := faultfs.NewHealth(faultfs.DiskProbe(inj, dir), 5*time.Millisecond)
	cfg := faultConfig(dir, eng, inj)
	cfg.Health = health
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	failing.Store(true)
	if _, err := submitTuples(m, validated, dirty); err == nil {
		t.Fatal("submit succeeded despite injected ENOSPC")
	}
	if st := health.Status(); st.State != "degraded" {
		t.Fatalf("health after ENOSPC: %+v", st)
	}
	// While degraded, submissions fail fast with the typed error.
	if _, err := submitTuples(m, validated, dirty); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded submit = %v, want ErrDegraded", err)
	}

	// Fault clears: the next due probe readmits, no restart needed.
	failing.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	var j Job
	for {
		j, err = submitTuples(m, validated, dirty)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions never recovered: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if got := waitTerminal(t, m, j.ID); got.State != StateDone {
		t.Fatalf("post-recovery job ended %s (%s)", got.State, got.Error)
	}
	if st := health.Status(); st.State != "ok" || st.Degradations != 1 {
		t.Fatalf("health after recovery: %+v", st)
	}
}
