package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCustomers(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c")
	if err := run("customers", 20, 50, 0.3, 0.7, 1, out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"master.csv", "dirty.csv", "truth.csv", "rules.txt"} {
		data, err := os.ReadFile(filepath.Join(out, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", f)
		}
	}
	rules, _ := os.ReadFile(filepath.Join(out, "rules.txt"))
	if !strings.Contains(string(rules), "phi1:") {
		t.Fatal("rules.txt missing demo rules")
	}
}

func TestRunHosp(t *testing.T) {
	out := filepath.Join(t.TempDir(), "h")
	if err := run("hosp", 15, 40, 0.2, 0.5, 2, out); err != nil {
		t.Fatal(err)
	}
	dirty, err := os.ReadFile(filepath.Join(out, "dirty.csv"))
	if err != nil {
		t.Fatal(err)
	}
	// header + 40 rows
	if lines := strings.Count(string(dirty), "\n"); lines < 41 {
		t.Fatalf("dirty.csv lines = %d", lines)
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if err := run("bogus", 1, 1, 0, 0, 1, t.TempDir()); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// Same seed → identical files (reproducibility of generated workloads).
func TestRunDeterministic(t *testing.T) {
	a := filepath.Join(t.TempDir(), "a")
	b := filepath.Join(t.TempDir(), "b")
	if err := run("customers", 10, 20, 0.3, 0.5, 9, a); err != nil {
		t.Fatal(err)
	}
	if err := run("customers", 10, 20, 0.3, 0.5, 9, b); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"master.csv", "dirty.csv", "truth.csv"} {
		da, _ := os.ReadFile(filepath.Join(a, f))
		db, _ := os.ReadFile(filepath.Join(b, f))
		if string(da) != string(db) {
			t.Fatalf("%s differs across same-seed runs", f)
		}
	}
}
