package cfd

import (
	"fmt"
	"strings"

	"cerfix/internal/value"
)

// This file implements the CFD DSL. One dependency per line:
//
//	psi1: AC = "020" -> city = "Ldn"        # Example 1's ψ1
//	psi2: AC = "131" -> city = "Edi"        # Example 1's ψ2
//	fd1:  zip -> city, str                  # plain (variable) FD
//	mix:  country = "44", zip -> city       # conditional variable CFD
//
// Each side is a comma-separated list of atoms: `attr` (wildcard) or
// `attr = "const"` (pattern constant). Lines starting with '#' and
// blank lines are skipped; trailing '#' comments are allowed.

// ParseSet parses a multi-line document into CFDs.
func ParseSet(src string) ([]*CFD, error) {
	var out []*CFD
	seen := make(map[string]bool)
	for lineNo, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		c, err := Parse(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if seen[c.ID] {
			return nil, fmt.Errorf("line %d: duplicate cfd id %q", lineNo+1, c.ID)
		}
		seen[c.ID] = true
		out = append(out, c)
	}
	return out, nil
}

// Parse parses one CFD line.
func Parse(line string) (*CFD, error) {
	text := stripComment(line)
	id, rest, ok := strings.Cut(text, ":")
	if !ok {
		return nil, fmt.Errorf("cfd: missing ':' in %q", text)
	}
	id = strings.TrimSpace(id)
	if id == "" || strings.ContainsAny(id, " \t") {
		return nil, fmt.Errorf("cfd: bad id %q", id)
	}
	lhsSrc, rhsSrc, ok := cutTop(rest, "->")
	if !ok {
		return nil, fmt.Errorf("cfd %s: missing '->'", id)
	}
	lhs, err := parseAtoms(lhsSrc)
	if err != nil {
		return nil, fmt.Errorf("cfd %s: lhs: %w", id, err)
	}
	rhs, err := parseAtoms(rhsSrc)
	if err != nil {
		return nil, fmt.Errorf("cfd %s: rhs: %w", id, err)
	}
	c := &CFD{ID: id, LHS: lhs, RHS: rhs}
	if len(lhs) == 0 || len(rhs) == 0 {
		return nil, fmt.Errorf("cfd %s: empty side", id)
	}
	return c, nil
}

// cutTop splits src at the first occurrence of sep outside quotes.
func cutTop(src, sep string) (string, string, bool) {
	inQuote := false
	for i := 0; i+len(sep) <= len(src); i++ {
		switch {
		case src[i] == '"':
			inQuote = !inQuote
		case !inQuote && src[i:i+len(sep)] == sep:
			return src[:i], src[i+len(sep):], true
		}
	}
	return src, "", false
}

func stripComment(line string) string {
	inQuote := false
	for i, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
		case r == '#' && !inQuote:
			return strings.TrimSpace(line[:i])
		}
	}
	return strings.TrimSpace(line)
}

// parseAtoms splits a side on commas outside quotes and parses each
// atom.
func parseAtoms(src string) ([]Atom, error) {
	parts, err := splitTop(src)
	if err != nil {
		return nil, err
	}
	var out []Atom
	for _, p := range parts {
		a, err := parseAtom(p)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func splitTop(src string) ([]string, error) {
	var parts []string
	var cur strings.Builder
	inQuote := false
	for _, r := range src {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated string")
	}
	parts = append(parts, cur.String())
	return parts, nil
}

func parseAtom(src string) (Atom, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return Atom{}, fmt.Errorf("empty atom")
	}
	attr, constSrc, hasConst := cutTop(s, "=")
	attr = strings.TrimSpace(attr)
	if attr == "" || strings.ContainsAny(attr, " \t\"") {
		return Atom{}, fmt.Errorf("bad attribute %q", attr)
	}
	if !hasConst {
		return VarAtom(attr), nil
	}
	cs := strings.TrimSpace(constSrc)
	if cs == "_" {
		return VarAtom(attr), nil
	}
	if strings.HasPrefix(cs, `"`) {
		if !strings.HasSuffix(cs, `"`) || len(cs) < 2 {
			return Atom{}, fmt.Errorf("bad constant %q", cs)
		}
		cs = cs[1 : len(cs)-1]
	}
	return ConstAtom(attr, value.V(cs)), nil
}
