// Package metrics computes the repair-quality and user-effort measures
// the experiments report: cell-level precision/recall/F1 of a repair
// against ground truth (E4), and effort aggregates (attributes
// validated per tuple, interaction rounds — E6).
//
// Conventions (standard in the data-repair literature):
//
//   - an "error cell" is a cell where the dirty tuple differs from the
//     ground truth;
//   - a "changed cell" is a cell the repair modified;
//   - precision = correctly-fixed / changed; a change is correct when
//     the repaired value equals the ground truth;
//   - recall = correctly-fixed / errors.
//
// A certain fix must score precision 1.0 by construction: every change
// it makes is guaranteed correct. Heuristic repairs trade precision
// for recall — the comparison the paper's motivation (Example 1) draws.
package metrics

import (
	"fmt"

	"cerfix/internal/schema"
)

// RepairQuality aggregates cell-level counts for one or more tuples.
type RepairQuality struct {
	// Errors is the number of dirty cells (dirty != truth).
	Errors int
	// Changed is the number of cells the repair modified.
	Changed int
	// CorrectChanges counts modified cells that now equal the truth.
	CorrectChanges int
	// BrokenCells counts modified cells that were correct before and
	// are wrong now — the "new errors introduced" the paper warns
	// heuristic methods cause.
	BrokenCells int
	// ResidualErrors counts cells still wrong after repair.
	ResidualErrors int
	// Cells is the total number of cells scored.
	Cells int
}

// Add scores one (dirty, repaired, truth) triple and accumulates. All
// three tuples must share the schema layout.
func (q *RepairQuality) Add(dirty, repaired, truth *schema.Tuple) error {
	n := truth.Schema.Len()
	if dirty.Schema.Len() != n || repaired.Schema.Len() != n {
		return fmt.Errorf("metrics: schema arity mismatch")
	}
	for i := 0; i < n; i++ {
		q.Cells++
		d, r, tr := dirty.At(i), repaired.At(i), truth.At(i)
		wasError := d != tr
		changed := r != d
		nowCorrect := r == tr
		if wasError {
			q.Errors++
		}
		if changed {
			q.Changed++
			if nowCorrect {
				q.CorrectChanges++
			}
			if !wasError && !nowCorrect {
				q.BrokenCells++
			}
		}
		if !nowCorrect {
			q.ResidualErrors++
		}
	}
	return nil
}

// Precision returns correct changes over all changes (1.0 when nothing
// changed — the repair made no mistake).
func (q *RepairQuality) Precision() float64 {
	if q.Changed == 0 {
		return 1.0
	}
	return float64(q.CorrectChanges) / float64(q.Changed)
}

// Recall returns correct changes over the number of error cells (1.0
// when there were no errors).
func (q *RepairQuality) Recall() float64 {
	if q.Errors == 0 {
		return 1.0
	}
	return float64(q.CorrectChanges) / float64(q.Errors)
}

// F1 returns the harmonic mean of precision and recall.
func (q *RepairQuality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders "P=0.98 R=0.76 F1=0.86 (errors=120 changed=95 broken=2)".
func (q *RepairQuality) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (errors=%d changed=%d correct=%d broken=%d residual=%d)",
		q.Precision(), q.Recall(), q.F1(), q.Errors, q.Changed, q.CorrectChanges, q.BrokenCells, q.ResidualErrors)
}

// Effort aggregates user-effort observations across sessions (E6).
type Effort struct {
	// Sessions is the number of observations.
	Sessions int
	// TotalValidated sums user-validated attribute counts.
	TotalValidated int
	// TotalRounds sums interaction rounds.
	TotalRounds int
	// TotalAttrs sums schema widths (for the validated fraction).
	TotalAttrs int
}

// Observe adds one session's numbers.
func (e *Effort) Observe(userValidated, rounds, attrs int) {
	e.Sessions++
	e.TotalValidated += userValidated
	e.TotalRounds += rounds
	e.TotalAttrs += attrs
}

// AvgValidated returns the mean user-validated attributes per session.
func (e *Effort) AvgValidated() float64 {
	if e.Sessions == 0 {
		return 0
	}
	return float64(e.TotalValidated) / float64(e.Sessions)
}

// AvgRounds returns the mean interaction rounds per session.
func (e *Effort) AvgRounds() float64 {
	if e.Sessions == 0 {
		return 0
	}
	return float64(e.TotalRounds) / float64(e.Sessions)
}

// ValidatedFraction returns user-validated cells over all cells — the
// "20%" side of the paper's 20/80 claim.
func (e *Effort) ValidatedFraction() float64 {
	if e.TotalAttrs == 0 {
		return 0
	}
	return float64(e.TotalValidated) / float64(e.TotalAttrs)
}
