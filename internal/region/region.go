// Package region implements CerFix's region finder. A certain region
// (Z, Tc) is a list Z of input attributes plus a pattern tableau Tc
// such that for any input tuple t, if t[Z] is correct (validated) and
// t[Z] matches some row of Tc, the editing rules and master data
// warrant a certain fix for every attribute of t (paper §2).
//
// The computation factors the guarantee into two parts:
//
//   - derivation: in a fixed "pattern cell" (an assignment of
//     true/false to each distinct rule pattern, conjunctively
//     satisfiable), the validated-attribute closure of Z under the
//     cell's active rules must cover the whole schema. This is the
//     symbolic part (core.Closure), independent of master data.
//
//   - coverage: a matching master tuple must exist for every rule
//     application along the derivation. Tableau rows are instantiated
//     from concrete master tuples and then *verified by actually
//     chasing* a canonical tuple of the row: the row is kept only if
//     the chase validates every attribute without conflicts. Because
//     the chase outcome is uniform across all tuples matching a row
//     (every non-wildcard attribute the derivation reads is pinned by
//     the row), the verification transfers to the whole row.
//
// Minimal-Z search is exact (subset enumeration by ascending size,
// inclusion-minimality check) for small schemas and greedy for wide
// ones. Finding minimum regions is intractable in general [7]; the cap
// knobs in Options keep the search bounded and documented.
package region

import (
	"fmt"
	"sort"
	"strings"

	"cerfix/internal/core"
	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Region is one certain region.
type Region struct {
	// Z is the attribute set the user must validate.
	Z schema.AttrSet
	// Tableau holds the pattern rows over Z; a tuple is covered when
	// its Z-projection matches at least one row.
	Tableau *pattern.Tableau
	// Cells names the pattern cells that contributed rows (diagnostic).
	Cells []string
	// input is retained for display.
	input *schema.Schema
}

// Size returns |Z| — the paper ranks regions ascendingly by it.
func (r *Region) Size() int { return r.Z.Count() }

// AttrNames returns Z as sorted attribute names.
func (r *Region) AttrNames() []string { return r.Z.SortedNames(r.input) }

// Covers reports whether t is covered: t[Z] must match a tableau row.
// (Correctness of t[Z] is the user's assertion and cannot be checked
// here.)
func (r *Region) Covers(t *schema.Tuple) bool { return r.Tableau.Matches(t) }

// String renders "({a, b}, 3 rows)".
func (r *Region) String() string {
	return fmt.Sprintf("({%s}, %d rows)", strings.Join(r.AttrNames(), ", "), len(r.Tableau.Rows))
}

// Options tunes the finder.
type Options struct {
	// K is the number of regions to return (top-k by ascending |Z|);
	// 0 means all found.
	K int
	// Greedy switches the minimal-Z search from exact subset
	// enumeration to the polynomial greedy cover. Exact is the default
	// and is feasible up to ~20 non-dead attributes.
	Greedy bool
	// MaxRegionsPerCell caps how many minimal Z sets are collected per
	// pattern cell (0 = default 8).
	MaxRegionsPerCell int
	// MaxCells caps pattern-cell enumeration (0 = default 64).
	MaxCells int
	// MaxExactSubsetSize caps the subset size the exact search will
	// enumerate (0 = default: all sizes).
	MaxExactSubsetSize int
	// MaxTableauRows caps rows per region (0 = default 4096). With
	// large master relations the tableau is a sample: coverage checks
	// stay sound (a row only exists if verified) but Covers may return
	// false negatives beyond the cap; the monitor then falls back to
	// suggestion computation, which is always available.
	MaxTableauRows int
}

func (o *Options) withDefaults() Options {
	out := Options{MaxRegionsPerCell: 8, MaxCells: 64, MaxTableauRows: 4096}
	if o == nil {
		return out
	}
	out.K = o.K
	out.Greedy = o.Greedy
	if o.MaxRegionsPerCell > 0 {
		out.MaxRegionsPerCell = o.MaxRegionsPerCell
	}
	if o.MaxCells > 0 {
		out.MaxCells = o.MaxCells
	}
	if o.MaxTableauRows > 0 {
		out.MaxTableauRows = o.MaxTableauRows
	}
	out.MaxExactSubsetSize = o.MaxExactSubsetSize
	return out
}

// Finder computes certain regions for an engine's configuration.
type Finder struct {
	eng *core.Engine
}

// rowBinding pins one Z attribute of a tableau row to a master
// attribute's value.
type rowBinding struct {
	inputIdx   int
	masterAttr string
}

// NewFinder wraps an engine.
func NewFinder(eng *core.Engine) *Finder { return &Finder{eng: eng} }

// cell is one satisfiable pattern-cell: which rule patterns hold plus
// the conjunctive constraint describing the cell.
type cell struct {
	name       string
	constraint pattern.Pattern
	active     map[string]bool // rule ID -> pattern holds
}

// TopK computes regions and returns the k best (ascending |Z|, ties by
// attribute names). These are the monitor's pre-computed initial
// suggestions.
func (f *Finder) TopK(opts *Options) []*Region {
	o := opts.withDefaults()
	input := f.eng.InputSchema()
	rules := f.eng.Rules().Rules()

	byZ := make(map[schema.AttrSet]*Region)
	for _, c := range f.enumerateCells(o) {
		admit := func(r *rule.Rule) bool {
			if r.When.IsEmpty() {
				return true
			}
			return c.active[r.ID]
		}
		zs := f.minimalZSets(c, admit, o)
		for _, z := range zs {
			reg, ok := byZ[z]
			if !ok {
				reg = &Region{
					Z:       z,
					Tableau: pattern.NewTableau(z.SortedNames(input)),
					input:   input,
				}
				byZ[z] = reg
			}
			added := f.instantiateRows(reg, z, c, admit, rules, o.MaxTableauRows)
			if added > 0 {
				reg.Cells = append(reg.Cells, c.name)
			}
		}
	}
	var out []*Region
	for _, reg := range byZ {
		if len(reg.Tableau.Rows) > 0 {
			out = append(out, reg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return strings.Join(out[i].AttrNames(), ",") < strings.Join(out[j].AttrNames(), ",")
	})
	if o.K > 0 && len(out) > o.K {
		out = out[:o.K]
	}
	return out
}

// enumerateCells builds the satisfiable pattern cells over the rule
// set's distinct patterns. For assignments marking a pattern false, the
// pattern's negation branches multiply the cell (bounded by MaxCells).
func (f *Finder) enumerateCells(o Options) []cell {
	input := f.eng.InputSchema()
	pats := f.eng.Rules().DistinctPatterns()
	// Map each rule to the index of its pattern (or -1 for empty).
	rulePat := make(map[string]int)
	for _, r := range f.eng.Rules().Rules() {
		rulePat[r.ID] = -1
		for i, p := range pats {
			if p.String() == r.When.String() {
				rulePat[r.ID] = i
				break
			}
		}
	}
	cells := []cell{{name: "all", constraint: pattern.NewPattern(), active: map[string]bool{}}}
	for i, p := range pats {
		var next []cell
		for _, c := range cells {
			// Pattern i true.
			pos := pattern.Pattern{Conds: append(append([]pattern.Condition{}, c.constraint.Conds...), p.Conds...)}
			if pattern.Satisfiable(pos, input) {
				nc := cell{name: cellName(c.name, i, true), constraint: pos, active: cloneActive(c.active)}
				markActive(nc.active, rulePat, i, true)
				next = append(next, nc)
			}
			// Pattern i false: one cell per negation branch.
			for bi, neg := range pattern.Negate(p) {
				negc := pattern.Pattern{Conds: append(append([]pattern.Condition{}, c.constraint.Conds...), neg.Conds...)}
				if pattern.Satisfiable(negc, input) {
					nc := cell{
						name:       fmt.Sprintf("%s-b%d", cellName(c.name, i, false), bi),
						constraint: negc,
						active:     cloneActive(c.active),
					}
					markActive(nc.active, rulePat, i, false)
					next = append(next, nc)
				}
			}
			if len(next) >= o.MaxCells {
				break
			}
		}
		cells = next
		if len(cells) >= o.MaxCells {
			cells = cells[:o.MaxCells]
		}
	}
	return cells
}

func cellName(prev string, i int, val bool) string {
	sign := "+"
	if !val {
		sign = "-"
	}
	if prev == "all" {
		return fmt.Sprintf("p%d%s", i, sign)
	}
	return fmt.Sprintf("%s.p%d%s", prev, i, sign)
}

func cloneActive(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func markActive(active map[string]bool, rulePat map[string]int, patIdx int, val bool) {
	for id, pi := range rulePat {
		if pi == patIdx {
			active[id] = val
		}
	}
}

// minimalZSets finds minimal attribute sets whose closure under the
// cell's active rules covers the schema. Every Z must contain the
// cell-dead attributes (those no active rule targets).
func (f *Finder) minimalZSets(c cell, admit core.RuleFilter, o Options) []schema.AttrSet {
	input := f.eng.InputSchema()
	rules := f.eng.Rules().Rules()
	full := schema.FullSet(input)

	// Attributes targeted by active rules.
	fixable := schema.EmptySet
	for _, r := range rules {
		if admit(r) {
			fixable = fixable.Union(r.TargetAttrs(input))
		}
	}
	dead := full.Minus(fixable)

	if o.Greedy {
		delta := core.GreedyExtension(input, rules, dead, full, admit)
		return []schema.AttrSet{dead.Union(delta)}
	}

	// Exact: enumerate subsets of fixable attributes ascending by size,
	// added on top of the mandatory dead set; keep inclusion-minimal
	// covering sets.
	candidates := fixable.Positions()
	maxSize := len(candidates)
	if o.MaxExactSubsetSize > 0 && o.MaxExactSubsetSize < maxSize {
		maxSize = o.MaxExactSubsetSize
	}
	var found []schema.AttrSet
	for size := 0; size <= maxSize && len(found) < o.MaxRegionsPerCell; size++ {
		forEachSubset(candidates, size, func(sub schema.AttrSet) bool {
			z := dead.Union(sub)
			if core.Closure(input, rules, z, admit) != full {
				return true
			}
			// Inclusion-minimality: removing any single element of sub
			// must break coverage (dead elements are mandatory).
			for _, p := range sub.Positions() {
				if core.Closure(input, rules, z.Without(p), admit) == full {
					return true
				}
			}
			found = append(found, z)
			return len(found) < o.MaxRegionsPerCell
		})
	}
	return found
}

// forEachSubset enumerates size-k subsets of candidates; fn returning
// false stops the enumeration.
func forEachSubset(candidates []int, k int, fn func(schema.AttrSet) bool) {
	if k > len(candidates) {
		return
	}
	if k == 0 {
		fn(schema.EmptySet)
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		s := schema.EmptySet
		for _, i := range idx {
			s = s.With(candidates[i])
		}
		if !fn(s) {
			return
		}
		i := k - 1
		for i >= 0 && idx[i] == len(candidates)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// instantiateRows adds one tableau row per master tuple whose
// row-canonical tuple chases to a full validation. Returns the number
// of rows added.
func (f *Finder) instantiateRows(reg *Region, z schema.AttrSet, c cell, admit core.RuleFilter, rules []*rule.Rule, maxRows int) int {
	input := f.eng.InputSchema()
	added := 0
	// Attributes of Z bound by active-rule match correspondences: the
	// row pins them to the master tuple's values.
	var bindings []rowBinding
	bound := schema.EmptySet
	for _, r := range rules {
		if !admit(r) {
			continue
		}
		for _, corr := range r.Match {
			if i, ok := input.Index(corr.Input); ok && z.Has(i) && !bound.Has(i) {
				bound = bound.With(i)
				bindings = append(bindings, rowBinding{inputIdx: i, masterAttr: corr.Master})
			}
		}
	}
	// Cell constraints restricted to Z become row conditions; cell
	// constraints outside Z are applied to the canonical probe only.
	var rowConds, probeConds []pattern.Condition
	for _, cond := range c.constraint.Conds {
		if i, ok := input.Index(cond.Attr); ok && z.Has(i) {
			rowConds = append(rowConds, cond)
		} else {
			probeConds = append(probeConds, cond)
		}
	}
	for _, s := range f.eng.Master().All() {
		if maxRows > 0 && len(reg.Tableau.Rows) >= maxRows {
			break
		}
		conds := append([]pattern.Condition{}, rowConds...)
		ok := true
		for _, b := range bindings {
			v := s.Get(b.masterAttr)
			conds = append(conds, pattern.Eq(input.Attr(b.inputIdx).Name, v))
			// The row must stay satisfiable together with the cell
			// constraint (e.g. AC=0800 cell with a master AC of 131
			// cannot produce a row).
			if !pattern.Satisfiable(pattern.NewPattern(append(append([]pattern.Condition{}, c.constraint.Conds...), conds...)...), input) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		probe, built := f.canonicalProbe(z, s, bindings, probeConds, conds)
		if !built {
			continue
		}
		res := f.eng.Chase(probe, z)
		if !res.AllValidated() || len(res.Conflicts) > 0 {
			continue
		}
		if reg.Tableau.AddRow(pattern.NewPattern(conds...)) {
			added++
		}
	}
	return added
}

// canonicalProbe builds the representative tuple of a row: bound Z
// attributes take the master values, pattern-constrained attributes
// take satisfying constants, everything else a junk marker.
func (f *Finder) canonicalProbe(z schema.AttrSet, s *schema.Tuple,
	bindings []rowBinding,
	probeConds, rowConds []pattern.Condition) (*schema.Tuple, bool) {

	input := f.eng.InputSchema()
	vals := make(value.List, input.Len())
	for i := range vals {
		vals[i] = value.V(fmt.Sprintf("junk-%d", i))
	}
	for _, b := range bindings {
		vals[b.inputIdx] = s.Get(b.masterAttr)
	}
	// Satisfy equality/inequality conditions (row + probe) on
	// still-junk attributes.
	for _, cond := range append(append([]pattern.Condition{}, rowConds...), probeConds...) {
		i, ok := input.Index(cond.Attr)
		if !ok {
			return nil, false
		}
		switch cond.Op {
		case pattern.OpEq:
			vals[i] = cond.Const
		case pattern.OpIn:
			if len(cond.Set) > 0 && strings.HasPrefix(string(vals[i]), "junk-") {
				vals[i] = cond.Set[0]
			}
		}
	}
	probe := &schema.Tuple{Schema: input, Vals: vals}
	// Verify all conditions actually hold on the probe (inequalities
	// hold against junk values by construction; equality conflicts
	// surface here).
	for _, cond := range append(append([]pattern.Condition{}, rowConds...), probeConds...) {
		i, _ := input.Index(cond.Attr)
		if !cond.Matches(vals[i], input.Attr(i).Domain) {
			return nil, false
		}
	}
	return probe, true
}
