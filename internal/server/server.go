// Package server exposes CerFix over HTTP/JSON — the stand-in for the
// demo's Web interface (data explorer). It covers the three
// demonstration facilities of the paper:
//
//   - editing-rule management (Fig. 2): list/add/delete rules and run
//     the consistency check;
//   - data monitoring (Fig. 3): open sessions, receive suggestions,
//     validate attributes, watch CerFix expand the validated set;
//   - data auditing (Fig. 4): per-tuple history, per-cell provenance
//     and per-attribute user%/auto% statistics.
//
// All handlers are JSON over stdlib net/http; see routes in Handler.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"cerfix"
	"cerfix/internal/admission"
	"cerfix/internal/counter"
	"cerfix/internal/faultfs"
	"cerfix/internal/guard"
	"cerfix/internal/jobs"
	"cerfix/internal/master"
	"cerfix/internal/monitor"
	"cerfix/internal/simd"
)

// Server wraps a cerfix.System with HTTP session state and the
// admission front door (see routes.go and middleware.go).
type Server struct {
	mu       sync.Mutex
	sys      *cerfix.System
	sessions map[int64]*monitor.Session
	// jobs is the async batch-repair queue; nil until AttachJobs.
	jobs *jobs.Manager
	// persistHealth, when set (SetPersistenceHealth), is surfaced on
	// /api/v1/status and sizes Retry-After on persistence_degraded
	// sheds.
	persistHealth *faultfs.Health
	// memMon, when set (SetMemMonitor), sheds job submissions under
	// heap pressure and is surfaced on /api/v1/status guardrails.
	memMon *guard.MemMonitor

	// Admission state (SetLimits): per-key limiter, sync-fix gate and
	// the moving average of sync batch service time behind computed
	// Retry-After values.
	limits  Limits
	limiter *admission.Limiter
	fixGate *admission.Gate
	fixTime admission.EWMA
	// shed counts load-shedding decisions per reason, surfaced by
	// /api/v1/status. Every status counter — these and the engine's
	// prefilter totals — is a counter.Monotonic, so they all share one
	// increment discipline and one bare-number JSON encoding.
	shed struct {
		rateLimited    counter.Monotonic
		overloaded     counter.Monotonic
		backlogFull    counter.Monotonic
		memoryPressure counter.Monotonic
		memoryDegraded counter.Monotonic
	}

	// Request-ID assignment: per-process random prefix + counter.
	idPrefix string
	reqSeq   atomic.Int64

	accessLog *log.Logger
	errorLog  *log.Logger

	// syncFixHook, when set by tests, runs inside the sync-fix gate —
	// the deterministic way to hold slots occupied or inject faults.
	syncFixHook func()
}

// New builds a server for a configured system.
func New(sys *cerfix.System) *Server {
	return &Server{
		sys:      sys,
		sessions: make(map[int64]*monitor.Session),
		idPrefix: newIDPrefix(),
	}
}

// SetPersistenceHealth wires the persistence health tracker in: its
// state shows up under /api/v1/status persistence.health, and degraded
// sheds answer with its Retry-After estimate. Call before Handler.
func (s *Server) SetPersistenceHealth(h *faultfs.Health) { s.persistHealth = h }

// SetMemMonitor wires the heap-watermark monitor in: past the soft
// watermark new job submissions shed with 429 memory_pressure, past
// the hard watermark with 503 memory_degraded, and the live state is
// surfaced under /api/v1/status guardrails.memory. Call before
// Handler.
func (s *Server) SetMemMonitor(m *guard.MemMonitor) { s.memMon = m }

// --- helpers -----------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// listPage is the uniform list envelope: items plus the pagination
// window that produced them. Every collection endpoint answers this
// shape — never a bare array.
type listPage struct {
	Items  any `json:"items"`
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

// defaultPageLimit is the page size when a list request names none.
const defaultPageLimit = 100

// pageParams reads limit/offset (default limit defLimit, offset 0),
// rejecting malformed or negative values.
func pageParams(r *http.Request, defLimit int) (limit, offset int, err error) {
	limit = defLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, perr := strconv.Atoi(q)
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", q)
		}
		limit = n
	}
	if q := r.URL.Query().Get("offset"); q != "" {
		n, perr := strconv.Atoi(q)
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad offset %q", q)
		}
		offset = n
	}
	return limit, offset, nil
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// tupleFromMap builds an input tuple, rejecting unknown attributes.
func tupleFromMap(sch *cerfix.Schema, m map[string]string) (*cerfix.Tuple, error) {
	return schemaTupleFromMap(sch, m)
}

// --- status ------------------------------------------------------------

// shedCounters reports load-shedding decisions since start, per
// reason (the error code the shed request received). The fields point
// at the server's live counters; counter.Monotonic marshals as a bare
// number, so the wire shape is unchanged from the int64 days.
type shedCounters struct {
	RateLimited    *counter.Monotonic `json:"rate_limited"`
	Overloaded     *counter.Monotonic `json:"overloaded"`
	BacklogFull    *counter.Monotonic `json:"backlog_full"`
	MemoryPressure *counter.Monotonic `json:"memory_pressure"`
	MemoryDegraded *counter.Monotonic `json:"memory_degraded"`
}

// admissionStatus reports the front-door configuration and live
// occupancy.
type admissionStatus struct {
	// RatePerKey and Burst echo -rate/-burst (0 = rate limiting off).
	RatePerKey float64 `json:"rate_per_key"`
	Burst      int     `json:"burst"`
	// MaxSyncFix echoes -max-sync-fix (0 = unlimited); SyncInFlight
	// is the current gate occupancy.
	MaxSyncFix   int `json:"max_sync_fix"`
	SyncInFlight int `json:"sync_fix_in_flight"`
	// AvgFixMS is the moving average of synchronous batch service
	// time in milliseconds (feeds Retry-After on overload sheds).
	AvgFixMS float64      `json:"avg_fix_ms"`
	Shed     shedCounters `json:"shed"`
}

type statusResponse struct {
	InputSchema  string          `json:"input_schema"`
	MasterSchema string          `json:"master_schema"`
	MasterTuples int             `json:"master_tuples"`
	Rules        int             `json:"rules"`
	AuditRecords int             `json:"audit_records"`
	OpenSessions int             `json:"open_sessions"`
	Admission    admissionStatus `json:"admission"`
	// Guardrails reports the runtime-guardrail configuration and the
	// live memory-pressure state (memory absent without -mem-soft/
	// -mem-hard).
	Guardrails guardrailStatus `json:"guardrails"`
	// Jobs reports the async queue (absent when the daemon runs
	// without -jobs-dir).
	Jobs *jobs.QueueStats `json:"jobs,omitempty"`
	// Memory is the master data manager's byte accounting: boxed vs
	// columnar-packed rows, snapshot-shared bytes and COW debt, rule
	// indexes, interning dictionary.
	Memory *master.MemStats `json:"memory,omitempty"`
	// Kernels reports the simd dispatch table in effect and the chase
	// prefilter's lifetime effectiveness.
	Kernels kernelStatus `json:"kernels"`
	// Persistence reports where the instance was loaded from and the
	// live durability health (absent for in-memory systems with no
	// health tracking).
	Persistence *persistenceStatus `json:"persistence,omitempty"`
}

// guardrailStatus echoes the runtime-guardrail flags and, when the
// daemon runs a memory monitor, its live pressure state.
type guardrailStatus struct {
	RequestTimeoutMS int64            `json:"request_timeout_ms"`
	MaxBodyBytes     int64            `json:"max_body_bytes"`
	Memory           *guard.MemStatus `json:"memory,omitempty"`
}

// persistenceStatus merges load provenance (directory, backup
// fallback, WAL replay — absent for in-memory systems) with the live
// persistence health (absent when the daemon tracks none). A nil
// LoadInfo simply omits its fields.
type persistenceStatus struct {
	*cerfix.LoadInfo
	Health *faultfs.HealthStatus `json:"health,omitempty"`
}

// kernelStatus reports which simd dispatch table the process selected
// (simd.Active: "amd64", "portable", ...) and whether a CERFIX_KERNELS
// override forced it, plus the compiled chase's prefilter totals.
type kernelStatus struct {
	Active    string          `json:"active"`
	Override  string          `json:"override,omitempty"`
	Prefilter prefilterStatus `json:"prefilter"`
}

// prefilterStatus is the premise prefilter's lifetime effectiveness
// for the current rule set's compiled program (resets on rule edits,
// which rebuild the program).
type prefilterStatus struct {
	RulesSkipped   int64 `json:"rules_skipped"`
	RulesEvaluated int64 `json:"rules_evaluated"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	adm := admissionStatus{
		RatePerKey: s.limits.Rate,
		Burst:      s.limits.Burst,
		MaxSyncFix: s.limits.MaxSyncFix,
		AvgFixMS:   float64(s.fixTime.Value().Microseconds()) / 1000,
	}
	if s.fixGate != nil {
		adm.SyncInFlight = s.fixGate.InFlight()
	}
	adm.Shed = shedCounters{
		RateLimited:    &s.shed.rateLimited,
		Overloaded:     &s.shed.overloaded,
		BacklogFull:    &s.shed.backlogFull,
		MemoryPressure: &s.shed.memoryPressure,
		MemoryDegraded: &s.shed.memoryDegraded,
	}
	gs := guardrailStatus{
		RequestTimeoutMS: s.limits.RequestTimeout.Milliseconds(),
		MaxBodyBytes:     s.limits.MaxBody,
	}
	if s.memMon != nil {
		ms := s.memMon.Status()
		gs.Memory = &ms
	}
	var qs *jobs.QueueStats
	if s.jobs != nil {
		st := s.jobs.Stats()
		qs = &st
	}
	var ps *persistenceStatus
	if li := s.sys.LoadInfo(); li != nil || s.persistHealth != nil {
		ps = &persistenceStatus{LoadInfo: li}
		if s.persistHealth != nil {
			hs := s.persistHealth.Status()
			ps.Health = &hs
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mem := s.sys.MemStats()
	skipped, evaluated := s.sys.Engine().PrefilterStats()
	writeJSON(w, http.StatusOK, statusResponse{
		InputSchema:  s.sys.InputSchema().String(),
		MasterSchema: s.sys.MasterSchema().String(),
		MasterTuples: s.sys.Master().Len(),
		Rules:        s.sys.RuleSet().Len(),
		AuditRecords: s.sys.Audit().Len(),
		OpenSessions: len(s.sessions),
		Admission:    adm,
		Guardrails:   gs,
		Jobs:         qs,
		Memory:       &mem,
		Kernels: kernelStatus{
			Active:   simd.Active(),
			Override: simd.Override(),
			Prefilter: prefilterStatus{
				RulesSkipped:   skipped,
				RulesEvaluated: evaluated,
			},
		},
		Persistence: ps,
	})
}

// --- rules (Fig. 2) -----------------------------------------------------

type ruleJSON struct {
	ID      string `json:"id"`
	DSL     string `json:"dsl"`
	Comment string `json:"comment,omitempty"`
}

func (s *Server) handleRulesList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rules := s.sys.RuleSet().Rules()
	out := make([]ruleJSON, len(rules))
	for i, ru := range rules {
		out[i] = ruleJSON{ID: ru.ID, DSL: ru.String(), Comment: ru.Comment}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRulesAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		DSL string `json:"dsl"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeDecodeErr(w, r, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sys.AddRule(req.DSL); err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"rules": s.sys.RuleSet().Len()})
}

func (s *Server) handleRulesDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sys.RemoveRule(id) {
		writeErr(w, r, http.StatusNotFound, codeNotFound, fmt.Errorf("rule %q not found", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"rules": s.sys.RuleSet().Len()})
}

type issueJSON struct {
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	RuleA    string `json:"rule_a"`
	RuleB    string `json:"rule_b,omitempty"`
	Attr     string `json:"attr,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

func (s *Server) handleRulesCheck(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.sys.CheckConsistency()
	issues := make([]issueJSON, len(rep.Issues))
	for i, is := range rep.Issues {
		issues[i] = issueJSON{
			Kind:     is.Kind.String(),
			Severity: is.Severity.String(),
			RuleA:    is.RuleA,
			RuleB:    is.RuleB,
			Attr:     is.Attr,
			Detail:   is.Detail,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"consistent": rep.Consistent(),
		"issues":     issues,
		"probes_run": rep.ProbesRun,
	})
}

// --- regions ------------------------------------------------------------

type regionJSON struct {
	Attrs []string `json:"attrs"`
	Size  int      `json:"size"`
	Rows  int      `json:"tableau_rows"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	k := 0
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, r, http.StatusBadRequest, codeInvalidArgument, fmt.Errorf("bad k %q", q))
			return
		}
		k = n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	regions := s.sys.Regions(k)
	out := make([]regionJSON, len(regions))
	for i, reg := range regions {
		out[i] = regionJSON{Attrs: reg.AttrNames(), Size: reg.Size(), Rows: len(reg.Tableau.Rows)}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- master data ---------------------------------------------------------

func (s *Server) handleMasterList(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := pageParams(r, defaultPageLimit)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, codeInvalidArgument, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Always an array in JSON, never null — an empty store, a high
	// offset or limit=0 must not change the response shape.
	rows := []map[string]string{}
	skip := offset
	for _, tu := range s.sys.Master().All() {
		if skip > 0 {
			skip--
			continue
		}
		if len(rows) >= limit {
			break
		}
		m := tu.Map()
		m["_id"] = strconv.FormatInt(tu.ID, 10)
		rows = append(rows, m)
	}
	writeJSON(w, http.StatusOK, listPage{
		Items:  rows,
		Total:  s.sys.Master().Len(),
		Limit:  limit,
		Offset: offset,
	})
}

func (s *Server) handleMasterAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Values map[string]string `json:"values"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeDecodeErr(w, r, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sch := s.sys.MasterSchema()
	vals := make([]string, sch.Len())
	for k, v := range req.Values {
		i, ok := sch.Index(k)
		if !ok {
			writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, fmt.Errorf("unknown attribute %q", k))
			return
		}
		vals[i] = v
	}
	if err := s.sys.AddMasterRow(vals...); err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"master_tuples": s.sys.Master().Len()})
}

// --- sessions (Fig. 3) ----------------------------------------------------

type sessionJSON struct {
	ID         int64             `json:"id"`
	Tuple      map[string]string `json:"tuple"`
	Validated  []string          `json:"validated"`
	Remaining  []string          `json:"remaining"`
	Suggestion []string          `json:"suggestion"`
	Rounds     int               `json:"rounds"`
	Done       bool              `json:"done"`
	Certain    bool              `json:"certain"`
	Conflicts  []string          `json:"conflicts,omitempty"`
}

func (s *Server) sessionJSONLocked(sess *monitor.Session) sessionJSON {
	out := sessionJSON{
		ID:    sess.ID,
		Tuple: sess.Tuple.Map(),
		// Schema order, matching the batch and jobs endpoints (the
		// session endpoint used to re-sort lexicographically, so the
		// two APIs disagreed on the same validated set).
		Validated:  sess.Validated.Names(sess.Tuple.Schema),
		Remaining:  sess.Remaining(),
		Suggestion: sess.Suggestion(),
		Rounds:     sess.Rounds,
		Done:       sess.Done(),
		Certain:    sess.Certain(),
	}
	for _, c := range sess.Conflicts {
		out.Conflicts = append(out.Conflicts, c.Error())
	}
	return out
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tuple map[string]string `json:"tuple"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeDecodeErr(w, r, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, err := s.sys.NewSession(req.Tuple)
	if err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, err)
		return
	}
	s.sessions[sess.ID] = sess
	writeJSON(w, http.StatusCreated, s.sessionJSONLocked(sess))
}

// lookupSession resolves {id}, writing the envelope itself on failure
// — a malformed id is the caller's argument (400), an unknown one is
// absent state (404).
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*monitor.Session, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, codeInvalidArgument,
			fmt.Errorf("bad session id %q", r.PathValue("id")))
		return nil, false
	}
	sess, ok := s.sessions[id]
	if !ok {
		writeErr(w, r, http.StatusNotFound, codeNotFound, fmt.Errorf("session %d not found", id))
		return nil, false
	}
	return sess, true
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.sessionJSONLocked(sess))
}

// changeJSON is the wire shape of one cell change — shared with the
// jobs results artifact so sync and async outputs encode identically.
type changeJSON = jobs.Change

func (s *Server) handleSessionValidate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Assertions map[string]string `json:"assertions"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeDecodeErr(w, r, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	res, err := sess.Validate(req.Assertions)
	if err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, err)
		return
	}
	changes := make([]changeJSON, len(res.Changes))
	for i, c := range res.Changes {
		changes[i] = changeJSON{
			Attr: c.Attr, Old: string(c.Old), New: string(c.New),
			Source: c.Source.String(), RuleID: c.RuleID, MasterID: c.MasterID,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session": s.sessionJSONLocked(sess),
		"changes": changes,
	})
}

// handleSessionExplain returns the derivation plan behind the current
// suggestion ("why is validating these attributes enough?").
func (s *Server) handleSessionExplain(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"suggestion":  sess.Suggestion(),
		"explanation": sess.ExplainSuggestion(),
	})
}

// --- auditing (Fig. 4) ------------------------------------------------------

type attrStatsJSON struct {
	Attr          string  `json:"attr"`
	UserValidated int     `json:"user_validated"`
	AutoFixed     int     `json:"auto_fixed"`
	AutoConfirmed int     `json:"auto_confirmed"`
	UserPct       float64 `json:"user_pct"`
	AutoPct       float64 `json:"auto_pct"`
}

func statsJSON(st cerfix.AttrStats) attrStatsJSON {
	return attrStatsJSON{
		Attr:          st.Attr,
		UserValidated: st.UserValidated,
		AutoFixed:     st.AutoFixed,
		AutoConfirmed: st.AutoConfirmed,
		UserPct:       st.UserPct(),
		AutoPct:       st.AutoPct(),
	}
}

func (s *Server) handleAuditStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	per := s.sys.Audit().StatsPerAttr()
	out := make([]attrStatsJSON, len(per))
	for i, st := range per {
		out[i] = statsJSON(st)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"per_attr": out,
		"overall":  statsJSON(s.sys.Audit().Overall()),
	})
}

type auditRecordJSON struct {
	Seq      int    `json:"seq"`
	TupleID  int64  `json:"tuple_id"`
	Attr     string `json:"attr"`
	Old      string `json:"old"`
	New      string `json:"new"`
	Source   string `json:"source"`
	RuleID   string `json:"rule_id,omitempty"`
	MasterID int64  `json:"master_id,omitempty"`
}

func recordJSON(rec cerfix.AuditRecord) auditRecordJSON {
	return auditRecordJSON{
		Seq: rec.Seq, TupleID: rec.TupleID, Attr: rec.Attr,
		Old: string(rec.Old), New: string(rec.New),
		Source: rec.Source.String(), RuleID: rec.RuleID, MasterID: rec.MasterID,
	}
}

func (s *Server) handleAuditTuple(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, codeInvalidArgument, fmt.Errorf("bad tuple id"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := s.sys.Audit().TupleHistory(id)
	out := make([]auditRecordJSON, len(hist))
	for i, rec := range hist {
		out[i] = recordJSON(rec)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAuditCell is the Fig. 4 click-through: latest provenance for
// one cell (?tuple=ID&attr=FN).
func (s *Server) handleAuditCell(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("tuple"), 10, 64)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, codeInvalidArgument, fmt.Errorf("bad tuple id"))
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		writeErr(w, r, http.StatusBadRequest, codeInvalidArgument, fmt.Errorf("missing attr"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.sys.Audit().CellProvenance(id, attr)
	if !ok {
		writeErr(w, r, http.StatusNotFound, codeNotFound, fmt.Errorf("no audit record for tuple %d attr %s", id, attr))
		return
	}
	writeJSON(w, http.StatusOK, recordJSON(rec))
}
