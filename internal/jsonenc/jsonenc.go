// Package jsonenc provides append-style JSON encoding primitives that
// are byte-for-byte identical to encoding/json's default output
// (json.Marshal / json.Encoder with HTML escaping on). The batch
// pipeline's sinks, the jobs runner's results.jsonl writer and the
// HTTP batch endpoint all emit per-tuple result records on the hot
// path; encoding/json allocates intermediate maps, slices and reflect
// state per record, while these primitives append into a caller-owned
// buffer that is recycled across records — zero steady-state
// allocations without changing a single output byte. The equivalence
// is not aspirational: the quick-check suite in this package compares
// AppendString against json.Marshal across control characters,
// multi-byte and invalid UTF-8, and the shape encoders built on top
// (jobs.ResultEncoder, pipeline's JSONL sink) carry their own
// byte-parity suites.
package jsonenc

import (
	"sort"
	"unicode/utf8"
)

const hex = "0123456789abcdef"

// AppendString appends the JSON encoding of s — including the
// surrounding quotes — to dst and returns the extended slice. The
// output is byte-identical to json.Marshal(s): HTML-relevant
// characters (<, >, &) are \u-escaped, control characters use the
// two-character escapes where they exist and \u00xx otherwise,
// invalid UTF-8 bytes become �, and U+2028/U+2029 are escaped
// for JSONP safety, exactly as encoding/json does.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Bytes < 0x20 without a short escape, plus <, > and &.
				dst = append(dst, '\\', 'u', '0', '0', hex[b>>4], hex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// htmlSafe reports whether an ASCII byte passes through encoding/json
// unescaped under the default (HTML-escaping) encoder.
func htmlSafe(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// AppendBool appends "true" or "false".
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// KeyOrder returns the indices of names in the order encoding/json
// would emit them as map keys: ascending byte-wise string order.
// Shape encoders that render an attribute→value map from a fixed
// schema compute this once and reuse it per record.
func KeyOrder(names []string) []int {
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
	return order
}

// AppendStringMap appends the {"name":"value",...} object
// encoding/json would produce for a map of names to vals — braces
// included, keys emitted in the precomputed KeyOrder(names) order —
// indexing vals by position so string-kind value slices encode
// without conversion. This is THE tuple-object encoder: every record
// shape that embeds a tuple map (the jobs/HTTP TupleResult, the JSONL
// sink record) renders it through this one copy, so the byte-parity
// contract with encoding/json's sorted map output lives in a single
// place.
func AppendStringMap[S ~string](dst []byte, names []string, order []int, vals []S) []byte {
	dst = append(dst, '{')
	for i, pos := range order {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendString(dst, names[pos])
		dst = append(dst, ':')
		dst = AppendString(dst, string(vals[pos]))
	}
	return append(dst, '}')
}
