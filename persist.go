package cerfix

// Persistence of a configured System to a directory — the reproduction
// of the demo's "instance" configuration (§3 Initialization: schemas of
// input tuples and master data, plus the data connection). A saved
// instance is three files plus an optional log:
//
//	manifest.json — both schemas (names, attributes, domains)
//	rules.txt     — the editing rules in DSL form
//	master.csv    — the master relation checkpoint
//	wal.jsonl     — append-only log of master rows added since the
//	                checkpoint (interned ids + dictionary deltas)
//
// Load rebuilds the System (and its indexes) from the checkpoint and
// replays the WAL on top.
//
// # Incremental saves
//
// Rewriting master.csv on every Save is O(master) — untenable once the
// master relation is millions of rows and the common mutation between
// saves is a handful of inserts. Save therefore keeps a cursor from
// its last checkpoint (table generation, next row id, row count, rules
// text) and proves whether the window since then was pure-append: k
// inserts move all three table counters by exactly k and leave the
// rules untouched. If so, Save appends the new rows to dir/wal.jsonl
// as interned-id records — each cell a dense dictionary id, with any
// ids not yet defined in this WAL written as a dictionary-delta record
// first, so the log is self-contained — and fsyncs. Updates, deletes,
// rule edits, a different target directory, or a fresh process (no
// cursor) fall back to the full checkpoint, which atomically replaces
// the directory (including the WAL) via the staging/backup dance
// below.
//
// # Crash safety
//
// Each WAL append is one atomic batch: the record lines land in a
// single buffered write, terminated by a commit record carrying the
// record count and a CRC32 of the batch bytes, then fsync. Replay
// buffers records until their commit validates, so a torn or partially
// flushed batch is discarded whole — never half-applied. A commit
// whose checksum fails mid-file means real corruption: replay stops
// there, preserves the unapplied tail in wal.jsonl.corrupt for
// inspection, and reports it in LoadInfo rather than failing the load.
// Before appending, Save compares the file size against its cursor and
// truncates any torn tail a previous failed append left behind, so one
// bad save can never corrupt the next one.
//
// All I/O routes through an injectable filesystem (internal/faultfs),
// which is how the crash-point enumeration suite drives every prefix
// of the save/checkpoint traces through a simulated crash and reload.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"log"
	"os"
	"path/filepath"

	"cerfix/internal/faultfs"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
	"cerfix/internal/value"
)

// manifest is the on-disk schema description.
type manifest struct {
	Input  schemaJSON `json:"input"`
	Master schemaJSON `json:"master"`
}

type schemaJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
}

type attrJSON struct {
	Name   string `json:"name"`
	Domain string `json:"domain"`
	Desc   string `json:"desc,omitempty"`
}

func schemaToJSON(s *Schema) schemaJSON {
	out := schemaJSON{Name: s.Name()}
	for _, a := range s.Attrs() {
		out.Attrs = append(out.Attrs, attrJSON{Name: a.Name, Domain: a.Domain.String(), Desc: a.Desc})
	}
	return out
}

func schemaFromJSON(j schemaJSON) (*Schema, error) {
	attrs := make([]Attribute, len(j.Attrs))
	for i, a := range j.Attrs {
		d, err := value.ParseDomain(a.Domain)
		if err != nil {
			return nil, fmt.Errorf("cerfix: attribute %q: %w", a.Name, err)
		}
		attrs[i] = schema.Attribute{Name: a.Name, Domain: d, Desc: a.Desc}
	}
	return schema.New(j.Name, attrs...)
}

// walFile is the append-only log name inside an instance directory.
const walFile = "wal.jsonl"

// walVersion is written in the header record of every new WAL; its
// presence selects checksummed batch replay (v2) over the legacy
// tolerant line-at-a-time replay.
const walVersion = 2

// walRecord is one line of wal.jsonl. Ops:
//
//	{"op":"wal","v":2}                      — header, first line of a new log
//	{"op":"dict","defs":[...]}              — dictionary-delta for later rows
//	{"op":"ins","row":<id>,"cells":[...]}   — one master row, interned ids
//	{"op":"commit","n":K,"crc":C}           — seals the previous K records;
//	                                          C is CRC32-IEEE over their bytes
//
// The writer row id is informational (replay assigns fresh ids in
// record order); cells are resolved against the defs seen so far,
// which Save guarantees is always sufficient.
type walRecord struct {
	Op    string         `json:"op"`
	Defs  []walDictEntry `json:"defs,omitempty"`
	Row   int64          `json:"row,omitempty"`
	Cells []value.Sym    `json:"cells,omitempty"`
	V     int            `json:"v,omitempty"`
	N     int            `json:"n,omitempty"`
	CRC   uint32         `json:"crc,omitempty"`
}

// walCommit is the writer-side shape of a commit record — a separate
// struct so crc is always emitted, even when it is legitimately zero.
type walCommit struct {
	Op  string `json:"op"`
	N   int    `json:"n"`
	CRC uint32 `json:"crc"`
}

type walDictEntry struct {
	ID value.Sym `json:"id"`
	S  string    `json:"s"`
}

// walDictBatch caps defs per dict record so WAL lines stay bounded
// (replay reads line-at-a-time).
const walDictBatch = 4096

// walCursor is the in-memory state Save keeps after a checkpoint so
// the next Save can prove pure-append and go to the WAL instead. It
// is process-local by design: dictionary ids are only meaningful to
// the process that assigned them, so a fresh process (or a Load) must
// checkpoint once before it can append.
type walCursor struct {
	dir    string
	gen    uint64
	nextID int64
	rows   int
	rules  string
	// walSize is the durable size of wal.jsonl after the last
	// successful append — anything beyond it on disk is a torn tail
	// from a failed save and is truncated before the next append.
	walSize int64
	// written holds every dictionary id already defined in the current
	// WAL; rows appended later only emit defs for ids outside it.
	written map[value.Sym]struct{}
}

// Save writes the system's configuration (schemas, rules, master data)
// into dir, creating it if needed. The audit log and open sessions are
// runtime state and are not persisted.
//
// When this process has already checkpointed dir and everything since
// was pure-append (see the package comment), Save only appends the new
// rows to dir/wal.jsonl as one checksummed batch with an fsync — it
// does not rewrite master.csv. Otherwise it takes the full checkpoint
// path below.
//
// The checkpoint is atomic at the directory level: all files are
// written and fsync'd in a staging sibling (<dir>.saving), the
// previous instance is moved aside to <dir>.bak, and the staging
// directory is renamed into place in one step. A crash or error at
// any point leaves a complete instance on disk — either the old one
// (still at dir, or at <dir>.bak during the one rename window, which
// Load falls back to) or the new one. Mixed-version directories (new
// manifest with old rules) cannot occur.
//
// Save's outcome feeds the persistence health tracker when one is
// wired (SetPersistenceHealth): transient storage faults degrade,
// success restores.
func (s *System) Save(dir string) error {
	err := s.save(dir)
	if s.health != nil {
		s.health.ReportResult(err)
	}
	return err
}

func (s *System) save(dir string) error {
	dir = filepath.Clean(dir)
	if s.walCursor != nil && s.walCursor.dir == dir {
		if done, err := s.saveAppendWAL(dir); done || err != nil {
			return err
		}
		// Not a pure-append window: the cursor is stale either way.
		s.walCursor = nil
	}
	return s.saveCheckpoint(dir)
}

// saveAppendWAL tries the incremental path. It reports done=true when
// the save was satisfied by a WAL append (or by nothing having
// changed); done=false means the window was not pure-append and the
// caller must checkpoint. On an I/O error the cursor is kept: nothing
// was acknowledged, the durable prefix is still exactly cur.walSize,
// and the next Save truncates whatever the failed attempt left behind
// and re-appends the same rows.
func (s *System) saveAppendWAL(dir string) (done bool, err error) {
	fsys := s.pfs()
	cur := s.walCursor
	t := s.store.Table()
	gen, nextID, rows := t.Generation(), t.NextID(), t.Len()
	k := nextID - cur.nextID
	if s.rules.String() != cur.rules ||
		k < 0 || rows != cur.rows+int(k) || gen != cur.gen+uint64(k) {
		return false, nil
	}
	if k == 0 {
		return true, nil // nothing changed since the last save
	}

	// Encode the new rows. Every cell is interned (the index layer has
	// usually done so already), and ids this WAL has not defined yet
	// are collected into dict records that precede the rows that need
	// them. Fresh defs are merged into cur.written only after the
	// batch is durable — a failed append must re-emit them.
	dict := t.Dict()
	var batch bytes.Buffer
	var defs []walDictEntry
	newDefs := make(map[value.Sym]struct{})
	flushDefs := func() error {
		for len(defs) > 0 {
			n := min(len(defs), walDictBatch)
			if err := walWriteLine(&batch, &walRecord{Op: "dict", Defs: defs[:n]}); err != nil {
				return err
			}
			defs = defs[n:]
		}
		return nil
	}
	var pending []*walRecord
	// The pure-append proof above is exactly the evidence
	// ScanSharedTail needs: the new rows are the tail of the insertion
	// order, so the scan costs O(log n + k), not O(n).
	t.ScanSharedTail(cur.nextID, func(tu *schema.Tuple) bool {
		if tu.ID < cur.nextID {
			return true
		}
		rec := &walRecord{Op: "ins", Row: tu.ID, Cells: make([]value.Sym, len(tu.Vals))}
		for i, v := range tu.Vals {
			sym := dict.InternV(v)
			if _, ok := cur.written[sym]; !ok {
				if _, ok := newDefs[sym]; !ok {
					newDefs[sym] = struct{}{}
					defs = append(defs, walDictEntry{ID: sym, S: string(v)})
				}
			}
			rec.Cells[i] = sym
		}
		pending = append(pending, rec)
		return true
	})
	if len(pending) != int(k) {
		// The counters said pure-append but the rows disagree; be safe.
		return false, nil
	}
	nrec := 0
	if err := flushDefs(); err != nil {
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	nrec += countLines(&batch)
	for _, rec := range pending {
		if err := walWriteLine(&batch, rec); err != nil {
			return false, fmt.Errorf("cerfix: wal: %w", err)
		}
	}
	nrec += len(pending)

	// Satellite of the batch format: the commit record seals the batch
	// with its record count and a checksum of the exact bytes above.
	var buf bytes.Buffer
	path := filepath.Join(dir, walFile)
	size, serr := walDiskSize(fsys, path)
	if serr != nil {
		return false, fmt.Errorf("cerfix: wal: %w", serr)
	}
	if size < cur.walSize {
		// The log shrank behind our back — external interference; the
		// cursor's view of the file is wrong. Take a fresh checkpoint.
		return false, nil
	}
	if size > cur.walSize {
		// Torn tail from a previous failed append: restore the durable
		// prefix so new batches never land after garbage.
		if err := fsys.Truncate(path, cur.walSize); err != nil {
			return false, fmt.Errorf("cerfix: wal: truncating torn tail: %w", err)
		}
		log.Printf("cerfix: wal %s: truncated %d-byte torn tail from a previous failed append", path, size-cur.walSize)
		size = cur.walSize
	}
	if size == 0 {
		if err := walWriteLine(&buf, &walRecord{Op: "wal", V: walVersion}); err != nil {
			return false, fmt.Errorf("cerfix: wal: %w", err)
		}
	}
	crc := crc32.ChecksumIEEE(batch.Bytes())
	buf.Write(batch.Bytes())
	if err := walWriteJSON(&buf, walCommit{Op: "commit", N: nrec, CRC: crc}); err != nil {
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}

	// One write, then fsync: a crash can only tear the tail of the
	// batch, never interleave or reorder records — and a torn batch
	// has no valid commit, so replay discards it whole.
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if size == 0 {
		// Make the new directory entry durable too. A failure here is a
		// real fault: the batch could vanish with the entry on a crash.
		if err := fsys.SyncDir(dir); err != nil {
			return false, fmt.Errorf("cerfix: wal: dir sync: %w", err)
		}
	}
	cur.gen, cur.nextID, cur.rows = gen, nextID, rows
	cur.walSize = size + int64(buf.Len())
	for sym := range newDefs {
		cur.written[sym] = struct{}{}
	}
	return true, nil
}

// walDiskSize returns the current size of the WAL file, 0 if absent.
func walDiskSize(fsys faultfs.FS, path string) (int64, error) {
	fi, err := fsys.Stat(path)
	switch {
	case err == nil:
		return fi.Size(), nil
	case errors.Is(err, iofs.ErrNotExist):
		return 0, nil
	default:
		return 0, err
	}
}

func countLines(buf *bytes.Buffer) int {
	return bytes.Count(buf.Bytes(), []byte{'\n'})
}

func walWriteLine(buf *bytes.Buffer, rec *walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf.Write(data)
	buf.WriteByte('\n')
	return nil
}

func walWriteJSON(buf *bytes.Buffer, rec any) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf.Write(data)
	buf.WriteByte('\n')
	return nil
}

// saveCheckpoint is the full rewrite-and-swap path. Every staged file
// is fsync'd and the staging directory itself synced before the commit
// renames, so the unsynced-data-loss a crash inflicts can never leave
// a complete-looking directory with hollow files.
func (s *System) saveCheckpoint(dir string) error {
	fsys := s.pfs()
	if err := fsys.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	// Serialize master.csv and the cursor from one frozen snapshot:
	// the cursor must describe exactly the rows the checkpoint holds,
	// or a concurrent insert landing mid-save would later be appended
	// twice (cursor behind the CSV) or lost (cursor ahead of it).
	snap := s.store.Table().Snapshot()
	cur := &walCursor{
		dir:     dir,
		gen:     snap.Generation(),
		nextID:  snap.NextID(),
		rows:    snap.Len(),
		rules:   s.rules.String(),
		written: make(map[value.Sym]struct{}),
	}
	m := manifest{Input: schemaToJSON(s.input), Master: schemaToJSON(s.store.Schema())}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}

	tmp := dir + ".saving"
	bak := dir + ".bak"
	// Stale staging from a crashed save is dead weight; a fresh save
	// rebuilds it from scratch.
	if err := fsys.RemoveAll(tmp); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	if err := fsys.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	fail := func(err error) error {
		fsys.RemoveAll(tmp)
		return err
	}
	if err := faultfs.WriteFileSync(fsys, filepath.Join(tmp, "manifest.json"), data, 0o644); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	if err := faultfs.WriteFileSync(fsys, filepath.Join(tmp, "rules.txt"), []byte(s.rules.String()), 0o644); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	if err := writeCSVSync(fsys, filepath.Join(tmp, "master.csv"), snap); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	// The staged entries must be durable before they can be renamed
	// into place as the instance of record.
	if err := fsys.SyncDir(tmp); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}

	// Commit: old instance aside, staging in, backup gone.
	if _, err := fsys.Stat(dir); err == nil {
		if err := fsys.RemoveAll(bak); err != nil {
			return fail(fmt.Errorf("cerfix: %w", err))
		}
		if err := fsys.Rename(dir, bak); err != nil {
			return fail(fmt.Errorf("cerfix: %w", err))
		}
	}
	if err := fsys.Rename(tmp, dir); err != nil {
		// Put the previous instance back; if even that fails, Load's
		// .bak fallback still finds it.
		_ = fsys.Rename(bak, dir)
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	_ = fsys.RemoveAll(bak)
	// Make the commit renames durable. On failure the directory is
	// consistent (the new instance) but its durability is unproven —
	// report it so callers retry rather than acknowledge.
	if err := fsys.SyncDir(filepath.Dir(dir)); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	s.walCursor = cur
	return nil
}

// writeCSVSync streams the snapshot as CSV through the injectable
// filesystem and fsyncs it.
func writeCSVSync(fsys faultfs.FS, path string, snap *storage.Table) error {
	f, err := faultfs.Create(fsys, path)
	if err != nil {
		return err
	}
	if err := snap.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadInfo reports where a Load resolved its instance from — surfaced
// on GET /api/v1/status so operators can see when a daemon silently
// recovered from a backup, replayed a write-ahead log, or quarantined
// a corrupt log tail.
type LoadInfo struct {
	// Dir is the directory actually loaded (the requested one, or its
	// .bak sibling on fallback).
	Dir string `json:"dir"`
	// UsedBackup is true when the requested directory was incomplete
	// and the .bak sibling was loaded instead.
	UsedBackup bool `json:"used_backup"`
	// WALRecords counts replayed wal.jsonl records (dict + ins);
	// WALRows counts the rows among them; WALBytes is the log size.
	WALRecords int   `json:"wal_records"`
	WALRows    int   `json:"wal_rows"`
	WALBytes   int64 `json:"wal_bytes"`
	// WALBatches counts committed (checksum-verified) batches applied.
	WALBatches int `json:"wal_batches"`
	// WALTornTail is true when replay discarded an uncommitted tail —
	// the expected residue of a crash mid-append, not corruption.
	WALTornTail bool `json:"wal_torn_tail,omitempty"`
	// WALCorrupt is true when a committed batch failed its checksum;
	// replay stopped there and preserved the unapplied tail at
	// WALQuarantine for inspection.
	WALCorrupt    bool   `json:"wal_corrupt,omitempty"`
	WALQuarantine string `json:"wal_quarantine,omitempty"`
}

// LoadInfo returns the provenance of this system if it was built by
// Load, nil for systems constructed in memory.
func (s *System) LoadInfo() *LoadInfo { return s.loadInfo }

// Load rebuilds a System from a directory written by Save: the
// checkpoint files first, then any wal.jsonl replayed on top. If dir
// has no manifest but a complete <dir>.bak sibling exists, the backup
// is loaded — that is the instance a crash caught between Save's two
// commit renames — and the fallback is logged, since it means the
// newest save was lost.
func Load(dir string) (*System, error) { return LoadFS(faultfs.OS, dir) }

// LoadFS is Load through an explicit filesystem — the entry point the
// fault harness uses to reload through an injector. The returned
// system keeps fsys for its own future saves.
func LoadFS(fsys faultfs.FS, dir string) (*System, error) {
	dir = filepath.Clean(dir)
	sys, err := loadDir(fsys, dir)
	if err == nil {
		return sys, nil
	}
	if _, statErr := fsys.Stat(filepath.Join(dir, "manifest.json")); errors.Is(statErr, iofs.ErrNotExist) {
		if _, bakErr := fsys.Stat(filepath.Join(dir+".bak", "manifest.json")); bakErr == nil {
			log.Printf("cerfix: instance %s is incomplete (%v); loading backup %s", dir, err, dir+".bak")
			sys, bakErr := loadDir(fsys, dir+".bak")
			if bakErr != nil {
				return nil, bakErr
			}
			sys.loadInfo.UsedBackup = true
			return sys, nil
		}
	}
	return nil, err
}

func loadDir(fsys faultfs.FS, dir string) (*System, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cerfix: manifest: %w", err)
	}
	input, err := schemaFromJSON(m.Input)
	if err != nil {
		return nil, err
	}
	masterSch, err := schemaFromJSON(m.Master)
	if err != nil {
		return nil, err
	}
	dsl, err := fsys.ReadFile(filepath.Join(dir, "rules.txt"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	sys, err := New(input, masterSch, string(dsl))
	if err != nil {
		return nil, err
	}
	sys.fs = fsys
	f, err := fsys.Open(filepath.Join(dir, "master.csv"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	defer f.Close()
	if err := sys.LoadMasterCSV(f); err != nil {
		return nil, err
	}
	info := &LoadInfo{Dir: dir}
	if err := sys.replayWAL(fsys, filepath.Join(dir, walFile), info); err != nil {
		return nil, err
	}
	sys.loadInfo = info
	return sys, nil
}

// replayWAL applies wal.jsonl on top of a freshly loaded checkpoint.
//
// v2 logs (header record {"op":"wal","v":2}) replay batch-at-a-time:
// records buffer until their commit record's count and CRC32 validate,
// then apply atomically. An uncommitted tail (crash mid-append) is
// discarded whole and flagged WALTornTail; a committed batch that
// fails its checksum is corruption — replay stops, the unapplied tail
// is preserved at wal.jsonl.corrupt, and the load succeeds on the
// verified prefix with WALCorrupt set.
//
// Logs without the header predate the batch format and replay with
// the legacy tolerant rules: records apply eagerly, replay stops at
// the first undecodable line, and a dangling cell id fails the load.
func (s *System) replayWAL(fsys faultfs.FS, path string, info *LoadInfo) error {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, iofs.ErrNotExist) {
		return nil // no WAL: the checkpoint is the whole instance
	}
	if err != nil {
		return fmt.Errorf("cerfix: wal: %w", err)
	}
	info.WALBytes = int64(len(data))
	if walIsV2(data) {
		return s.replayWALV2(fsys, path, data, info)
	}
	return s.replayWALLegacy(path, data, info)
}

// walIsV2 reports whether the log opens with the v2 header record.
func walIsV2(data []byte) bool {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	var rec walRecord
	return json.Unmarshal(bytes.TrimSpace(line), &rec) == nil && rec.Op == "wal"
}

func (s *System) replayWALV2(fsys faultfs.FS, path string, data []byte, info *LoadInfo) error {
	defs := make(map[value.Sym]value.V)
	arity := s.store.Schema().Len()
	vals := make(value.List, arity)

	var pendingDefs []walDictEntry
	var pendingRows []*walRecord
	var crc uint32
	count := 0
	batchStart := -1 // byte offset of the current uncommitted batch

	corrupt := func(off int, why string) error {
		tail := data[off:]
		q := path + ".corrupt"
		if werr := fsys.WriteFile(q, tail, 0o644); werr != nil {
			log.Printf("cerfix: wal %s: %s after %d applied records; quarantine write failed: %v", path, why, info.WALRecords, werr)
			q = ""
		} else {
			log.Printf("cerfix: wal %s: %s after %d applied records; unapplied tail (%d bytes) preserved at %s", path, why, info.WALRecords, len(tail), q)
		}
		info.WALCorrupt = true
		info.WALQuarantine = q
		return nil
	}

	off := 0
	header := false
	for off < len(data) {
		lineStart := off
		var line []byte
		if i := bytes.IndexByte(data[off:], '\n'); i >= 0 {
			line = data[off : off+i]
			off += i + 1
		} else {
			line = data[off:]
			off = len(data)
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec walRecord
		if json.Unmarshal(line, &rec) != nil {
			if len(bytes.TrimSpace(data[off:])) == 0 {
				// Undecodable final line: the torn tail of a crashed
				// append. The uncommitted batch it belongs to is
				// discarded whole.
				info.WALTornTail = true
				log.Printf("cerfix: wal %s: discarding uncommitted torn tail after %d records", path, info.WALRecords)
				return nil
			}
			at := batchStart
			if at < 0 {
				at = lineStart
			}
			return corrupt(at, "undecodable record with data after it")
		}
		switch rec.Op {
		case "wal":
			if header || lineStart != 0 {
				return corrupt(lineStart, "stray header record")
			}
			header = true
		case "dict", "ins":
			if batchStart < 0 {
				batchStart = lineStart
			}
			end := off
			crc = crc32.Update(crc, crc32.IEEETable, data[lineStart:end])
			count++
			if rec.Op == "dict" {
				pendingDefs = append(pendingDefs, rec.Defs...)
			} else {
				pendingRows = append(pendingRows, &rec)
			}
		case "commit":
			if rec.N != count || rec.CRC != crc {
				at := batchStart
				if at < 0 {
					at = lineStart
				}
				return corrupt(at, fmt.Sprintf("batch checksum mismatch (want n=%d crc=%08x, have n=%d crc=%08x)", rec.N, rec.CRC, count, crc))
			}
			for _, d := range pendingDefs {
				defs[d.ID] = value.V(d.S)
			}
			for _, row := range pendingRows {
				if len(row.Cells) != arity {
					return fmt.Errorf("cerfix: wal %s: row %d has %d cells, schema wants %d",
						path, row.Row, len(row.Cells), arity)
				}
				for i, sym := range row.Cells {
					v, ok := defs[sym]
					if !ok {
						return fmt.Errorf("cerfix: wal %s: row %d references undefined dictionary id %d",
							path, row.Row, sym)
					}
					vals[i] = v
				}
				if _, err := s.store.InsertValues(vals...); err != nil {
					return fmt.Errorf("cerfix: wal %s: row %d: %w", path, row.Row, err)
				}
				info.WALRows++
			}
			info.WALRecords += count
			info.WALBatches++
			pendingDefs, pendingRows = nil, nil
			crc, count, batchStart = 0, 0, -1
		default:
			at := batchStart
			if at < 0 {
				at = lineStart
			}
			return corrupt(at, fmt.Sprintf("unknown op %q", rec.Op))
		}
	}
	if count > 0 {
		// Records without a commit: the append crashed before (or
		// during) its seal. Acknowledged data always has a commit, so
		// this is a torn tail, not loss.
		info.WALTornTail = true
		log.Printf("cerfix: wal %s: discarding uncommitted batch of %d record(s) at tail", path, count)
	}
	return nil
}

// replayWALLegacy is the pre-checksum replay, kept for logs written
// before the batch format: apply eagerly, stop at the first
// undecodable line, fail on a dangling dictionary id.
func (s *System) replayWALLegacy(path string, data []byte, info *LoadInfo) error {
	defs := make(map[value.Sym]value.V)
	arity := s.store.Schema().Len()
	vals := make(value.List, arity)
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec walRecord
		if json.Unmarshal(line, &rec) != nil {
			// Torn tail from a crashed append; everything before it
			// was fsync'd and applied.
			info.WALTornTail = true
			log.Printf("cerfix: wal %s: ignoring torn tail after %d records", path, info.WALRecords)
			return nil
		}
		switch rec.Op {
		case "dict":
			for _, d := range rec.Defs {
				defs[d.ID] = value.V(d.S)
			}
		case "ins":
			if len(rec.Cells) != arity {
				return fmt.Errorf("cerfix: wal %s: row %d has %d cells, schema wants %d",
					path, rec.Row, len(rec.Cells), arity)
			}
			for i, sym := range rec.Cells {
				v, ok := defs[sym]
				if !ok {
					return fmt.Errorf("cerfix: wal %s: row %d references undefined dictionary id %d",
						path, rec.Row, sym)
				}
				vals[i] = v
			}
			if _, err := s.store.InsertValues(vals...); err != nil {
				return fmt.Errorf("cerfix: wal %s: row %d: %w", path, rec.Row, err)
			}
			info.WALRows++
		default:
			return fmt.Errorf("cerfix: wal %s: unknown op %q", path, rec.Op)
		}
		info.WALRecords++
	}
	return nil
}
