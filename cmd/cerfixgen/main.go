// Command cerfixgen generates experiment workloads: master data CSVs
// plus paired dirty/ground-truth input CSVs with controlled noise.
// Two families are built in:
//
//	customers — the demo's UK-customer scenario at scale (CUST/PERSON)
//	hosp      — the HOSP-like provider records of the companion
//	            paper's evaluation (single shared schema)
//
// Example:
//
//	cerfixgen -family customers -entities 1000 -tuples 5000 \
//	  -noise 0.3 -seed 7 -out ./data
//
// writes data/master.csv, data/dirty.csv and data/truth.csv, plus the
// matching rules file data/rules.txt ready for `cerfix fix`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cerfix/internal/dataset"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
)

func main() {
	var (
		family   = flag.String("family", "customers", "workload family: customers, hosp or dblp")
		entities = flag.Int("entities", 1000, "master entities (customers) / providers (hosp)")
		tuples   = flag.Int("tuples", 5000, "input tuples to generate")
		noise    = flag.Float64("noise", 0.3, "cell noise rate in [0,1]")
		mobile   = flag.Float64("mobile", 0.5, "customers: share of mobile-phone tuples")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	if err := run(*family, *entities, *tuples, *noise, *mobile, *seed, *out); err != nil {
		log.Fatal("cerfixgen: ", err)
	}
}

func run(family string, entities, tuples int, noise, mobile float64, seed uint64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	switch family {
	case "customers":
		g := dataset.NewCustomerGen(seed)
		g.MobileShare = mobile
		w, err := g.GenerateWorkload(entities, tuples, noise, nil)
		if err != nil {
			return err
		}
		if err := saveTable(filepath.Join(out, "master.csv"), w.Store.Table()); err != nil {
			return err
		}
		if err := saveTuples(filepath.Join(out, "dirty.csv"), dataset.CustSchema(), w.Dirty); err != nil {
			return err
		}
		if err := saveTuples(filepath.Join(out, "truth.csv"), dataset.CustSchema(), w.Truth); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(out, "rules.txt"), []byte(dataset.DemoRulesDSL), 0o644); err != nil {
			return err
		}
		fmt.Printf("customers workload: %d master rows, %d inputs (%d dirty cells) -> %s\n",
			w.Store.Len(), len(w.Dirty), w.ErrorCells, out)
	case "hosp":
		g := dataset.NewHospGen(seed)
		w, err := g.GenerateWorkload(entities, tuples, noise)
		if err != nil {
			return err
		}
		if err := saveTable(filepath.Join(out, "master.csv"), w.Store.Table()); err != nil {
			return err
		}
		if err := saveTuples(filepath.Join(out, "dirty.csv"), dataset.HospSchema(), w.Dirty); err != nil {
			return err
		}
		if err := saveTuples(filepath.Join(out, "truth.csv"), dataset.HospSchema(), w.Truth); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(out, "rules.txt"), []byte(dataset.HospRulesDSL), 0o644); err != nil {
			return err
		}
		fmt.Printf("hosp workload: %d master rows, %d inputs (%d dirty cells) -> %s\n",
			w.Store.Len(), len(w.Dirty), w.ErrorCells, out)
	case "dblp":
		g := dataset.NewDblpGen(seed)
		w, err := g.GenerateWorkload(entities, tuples, noise)
		if err != nil {
			return err
		}
		if err := saveTable(filepath.Join(out, "master.csv"), w.Store.Table()); err != nil {
			return err
		}
		if err := saveTuples(filepath.Join(out, "dirty.csv"), dataset.DblpSchema(), w.Dirty); err != nil {
			return err
		}
		if err := saveTuples(filepath.Join(out, "truth.csv"), dataset.DblpSchema(), w.Truth); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(out, "rules.txt"), []byte(dataset.DblpRulesDSL), 0o644); err != nil {
			return err
		}
		fmt.Printf("dblp workload: %d master rows, %d inputs (%d dirty cells) -> %s\n",
			w.Store.Len(), len(w.Dirty), w.ErrorCells, out)
	default:
		return fmt.Errorf("unknown family %q (want customers, hosp or dblp)", family)
	}
	return nil
}

func saveTable(path string, t *storage.Table) error {
	return t.SaveCSVFile(path)
}

func saveTuples(path string, sch *schema.Schema, tuples []*schema.Tuple) error {
	t := storage.NewTable(sch)
	for _, tu := range tuples {
		if _, err := t.Insert(tu); err != nil {
			return err
		}
	}
	return t.SaveCSVFile(path)
}
