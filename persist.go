package cerfix

// Persistence of a configured System to a directory — the reproduction
// of the demo's "instance" configuration (§3 Initialization: schemas of
// input tuples and master data, plus the data connection). A saved
// instance is three files plus an optional log:
//
//	manifest.json — both schemas (names, attributes, domains)
//	rules.txt     — the editing rules in DSL form
//	master.csv    — the master relation checkpoint
//	wal.jsonl     — append-only log of master rows added since the
//	                checkpoint (interned ids + dictionary deltas)
//
// Load rebuilds the System (and its indexes) from the checkpoint and
// replays the WAL on top.
//
// # Incremental saves
//
// Rewriting master.csv on every Save is O(master) — untenable once the
// master relation is millions of rows and the common mutation between
// saves is a handful of inserts. Save therefore keeps a cursor from
// its last checkpoint (table generation, next row id, row count, rules
// text) and proves whether the window since then was pure-append: k
// inserts move all three table counters by exactly k and leave the
// rules untouched. If so, Save appends the new rows to wal.jsonl as
// interned-id records — each cell a dense dictionary id, with any ids
// not yet defined in this WAL written as a dictionary-delta record
// first, so the log is self-contained — and fsyncs. Updates, deletes,
// rule edits, a different target directory, or a fresh process (no
// cursor) fall back to the full checkpoint, which atomically replaces
// the directory (including the WAL) via the staging/backup dance
// below. The WAL append is crash-safe by construction: records land in
// one buffered write before the fsync, so a torn write can only
// truncate the tail, and Load stops replay at the first undecodable
// line.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// manifest is the on-disk schema description.
type manifest struct {
	Input  schemaJSON `json:"input"`
	Master schemaJSON `json:"master"`
}

type schemaJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
}

type attrJSON struct {
	Name   string `json:"name"`
	Domain string `json:"domain"`
	Desc   string `json:"desc,omitempty"`
}

func schemaToJSON(s *Schema) schemaJSON {
	out := schemaJSON{Name: s.Name()}
	for _, a := range s.Attrs() {
		out.Attrs = append(out.Attrs, attrJSON{Name: a.Name, Domain: a.Domain.String(), Desc: a.Desc})
	}
	return out
}

func schemaFromJSON(j schemaJSON) (*Schema, error) {
	attrs := make([]Attribute, len(j.Attrs))
	for i, a := range j.Attrs {
		d, err := value.ParseDomain(a.Domain)
		if err != nil {
			return nil, fmt.Errorf("cerfix: attribute %q: %w", a.Name, err)
		}
		attrs[i] = schema.Attribute{Name: a.Name, Domain: d, Desc: a.Desc}
	}
	return schema.New(j.Name, attrs...)
}

// renameDir is swapped by tests to inject commit-phase failures.
var renameDir = os.Rename

// walFile is the append-only log name inside an instance directory.
const walFile = "wal.jsonl"

// walRecord is one line of wal.jsonl. Two ops exist: "dict" defines
// dictionary ids used by later rows ({"op":"dict","defs":[...]}) and
// "ins" appends one master row as interned cell ids in schema order
// ({"op":"ins","row":<writer id>,"cells":[...]}). The writer row id is
// informational (replay assigns fresh ids in record order); cells are
// resolved against the defs seen so far, which Save guarantees is
// always sufficient.
type walRecord struct {
	Op    string         `json:"op"`
	Defs  []walDictEntry `json:"defs,omitempty"`
	Row   int64          `json:"row,omitempty"`
	Cells []value.Sym    `json:"cells,omitempty"`
}

type walDictEntry struct {
	ID value.Sym `json:"id"`
	S  string    `json:"s"`
}

// walDictBatch caps defs per dict record so WAL lines stay bounded
// (replay reads line-at-a-time).
const walDictBatch = 4096

// walCursor is the in-memory state Save keeps after a checkpoint so
// the next Save can prove pure-append and go to the WAL instead. It
// is process-local by design: dictionary ids are only meaningful to
// the process that assigned them, so a fresh process (or a Load) must
// checkpoint once before it can append.
type walCursor struct {
	dir    string
	gen    uint64
	nextID int64
	rows   int
	rules  string
	// written holds every dictionary id already defined in the current
	// WAL; rows appended later only emit defs for ids outside it.
	written map[value.Sym]struct{}
}

// Save writes the system's configuration (schemas, rules, master data)
// into dir, creating it if needed. The audit log and open sessions are
// runtime state and are not persisted.
//
// When this process has already checkpointed dir and everything since
// was pure-append (see the package comment), Save only appends the new
// rows to dir/wal.jsonl with an fsync — it does not rewrite
// master.csv. Otherwise it takes the full checkpoint path below.
//
// The checkpoint is atomic at the directory level: all files are
// written into a staging sibling (<dir>.saving), the previous instance
// is moved aside to <dir>.bak, and the staging directory is renamed
// into place in one step. A crash or error at any point leaves a
// complete instance on disk — either the old one (still at dir, or at
// <dir>.bak during the one rename window, which Load falls back to) or
// the new one. Mixed-version directories (new manifest with old rules)
// cannot occur.
func (s *System) Save(dir string) error {
	dir = filepath.Clean(dir)
	if s.walCursor != nil && s.walCursor.dir == dir {
		if done, err := s.saveAppendWAL(dir); done || err != nil {
			return err
		}
		// Not a pure-append window: the cursor is stale either way.
		s.walCursor = nil
	}
	return s.saveCheckpoint(dir)
}

// saveAppendWAL tries the incremental path. It reports done=true when
// the save was satisfied by a WAL append (or by nothing having
// changed); done=false means the window was not pure-append and the
// caller must checkpoint.
func (s *System) saveAppendWAL(dir string) (done bool, err error) {
	cur := s.walCursor
	t := s.store.Table()
	gen, nextID, rows := t.Generation(), t.NextID(), t.Len()
	k := nextID - cur.nextID
	if s.rules.String() != cur.rules ||
		k < 0 || rows != cur.rows+int(k) || gen != cur.gen+uint64(k) {
		return false, nil
	}
	if k == 0 {
		return true, nil // nothing changed since the last save
	}

	// Encode the new rows. Every cell is interned (the index layer has
	// usually done so already), and ids this WAL has not defined yet
	// are collected into dict records that precede the rows that need
	// them.
	dict := t.Dict()
	var buf bytes.Buffer
	var defs []walDictEntry
	flushDefs := func() error {
		for len(defs) > 0 {
			n := min(len(defs), walDictBatch)
			if err := walWriteLine(&buf, &walRecord{Op: "dict", Defs: defs[:n]}); err != nil {
				return err
			}
			defs = defs[n:]
		}
		return nil
	}
	var encodeErr error
	var pending []*walRecord
	// The pure-append proof above is exactly the evidence
	// ScanSharedTail needs: the new rows are the tail of the insertion
	// order, so the scan costs O(log n + k), not O(n).
	t.ScanSharedTail(cur.nextID, func(tu *schema.Tuple) bool {
		if tu.ID < cur.nextID {
			return true
		}
		rec := &walRecord{Op: "ins", Row: tu.ID, Cells: make([]value.Sym, len(tu.Vals))}
		for i, v := range tu.Vals {
			sym := dict.InternV(v)
			if _, ok := cur.written[sym]; !ok {
				defs = append(defs, walDictEntry{ID: sym, S: string(v)})
				cur.written[sym] = struct{}{}
			}
			rec.Cells[i] = sym
		}
		pending = append(pending, rec)
		return true
	})
	if len(pending) != int(k) {
		// The counters said pure-append but the rows disagree; be safe.
		return false, nil
	}
	if encodeErr = flushDefs(); encodeErr != nil {
		return false, fmt.Errorf("cerfix: wal: %w", encodeErr)
	}
	for _, rec := range pending {
		if err := walWriteLine(&buf, rec); err != nil {
			return false, fmt.Errorf("cerfix: wal: %w", err)
		}
	}

	// One write, then fsync: a crash can only truncate the tail of the
	// log, never interleave or reorder records.
	path := filepath.Join(dir, walFile)
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("cerfix: wal: %w", err)
	}
	if created {
		syncDir(dir) // make the new directory entry durable too
	}
	cur.gen, cur.nextID, cur.rows = gen, nextID, rows
	return true, nil
}

func walWriteLine(buf *bytes.Buffer, rec *walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf.Write(data)
	buf.WriteByte('\n')
	return nil
}

// syncDir fsyncs a directory so freshly created entries survive a
// crash. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// saveCheckpoint is the full rewrite-and-swap path.
func (s *System) saveCheckpoint(dir string) error {
	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	// Serialize master.csv and the cursor from one frozen snapshot:
	// the cursor must describe exactly the rows the checkpoint holds,
	// or a concurrent insert landing mid-save would later be appended
	// twice (cursor behind the CSV) or lost (cursor ahead of it).
	snap := s.store.Table().Snapshot()
	cur := &walCursor{
		dir:     dir,
		gen:     snap.Generation(),
		nextID:  snap.NextID(),
		rows:    snap.Len(),
		rules:   s.rules.String(),
		written: make(map[value.Sym]struct{}),
	}
	m := manifest{Input: schemaToJSON(s.input), Master: schemaToJSON(s.store.Schema())}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}

	tmp := dir + ".saving"
	bak := dir + ".bak"
	// Stale staging from a crashed save is dead weight; a fresh save
	// rebuilds it from scratch.
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("cerfix: %w", err)
	}
	fail := func(err error) error {
		os.RemoveAll(tmp)
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, "manifest.json"), data, 0o644); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	if err := os.WriteFile(filepath.Join(tmp, "rules.txt"), []byte(s.rules.String()), 0o644); err != nil {
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	if err := snap.SaveCSVFile(filepath.Join(tmp, "master.csv")); err != nil {
		return fail(err)
	}

	// Commit: old instance aside, staging in, backup gone.
	if _, err := os.Stat(dir); err == nil {
		if err := os.RemoveAll(bak); err != nil {
			return fail(fmt.Errorf("cerfix: %w", err))
		}
		if err := renameDir(dir, bak); err != nil {
			return fail(fmt.Errorf("cerfix: %w", err))
		}
	}
	if err := renameDir(tmp, dir); err != nil {
		// Put the previous instance back; if even that fails, Load's
		// .bak fallback still finds it.
		_ = renameDir(bak, dir)
		return fail(fmt.Errorf("cerfix: %w", err))
	}
	_ = os.RemoveAll(bak)
	s.walCursor = cur
	return nil
}

// LoadInfo reports where a Load resolved its instance from — surfaced
// on GET /api/v1/status so operators can see when a daemon silently
// recovered from a backup or replayed a write-ahead log.
type LoadInfo struct {
	// Dir is the directory actually loaded (the requested one, or its
	// .bak sibling on fallback).
	Dir string `json:"dir"`
	// UsedBackup is true when the requested directory was incomplete
	// and the .bak sibling was loaded instead.
	UsedBackup bool `json:"used_backup"`
	// WALRecords counts replayed wal.jsonl records (dict + ins);
	// WALRows counts the rows among them; WALBytes is the log size.
	WALRecords int   `json:"wal_records"`
	WALRows    int   `json:"wal_rows"`
	WALBytes   int64 `json:"wal_bytes"`
}

// LoadInfo returns the provenance of this system if it was built by
// Load, nil for systems constructed in memory.
func (s *System) LoadInfo() *LoadInfo { return s.loadInfo }

// Load rebuilds a System from a directory written by Save: the
// checkpoint files first, then any wal.jsonl replayed on top. If dir
// has no manifest but a complete <dir>.bak sibling exists, the backup
// is loaded — that is the instance a crash caught between Save's two
// commit renames — and the fallback is logged, since it means the
// newest save was lost.
func Load(dir string) (*System, error) {
	dir = filepath.Clean(dir)
	sys, err := loadDir(dir)
	if err == nil {
		return sys, nil
	}
	if _, statErr := os.Stat(filepath.Join(dir, "manifest.json")); os.IsNotExist(statErr) {
		if _, bakErr := os.Stat(filepath.Join(dir+".bak", "manifest.json")); bakErr == nil {
			log.Printf("cerfix: instance %s is incomplete (%v); loading backup %s", dir, err, dir+".bak")
			sys, bakErr := loadDir(dir + ".bak")
			if bakErr != nil {
				return nil, bakErr
			}
			sys.loadInfo.UsedBackup = true
			return sys, nil
		}
	}
	return nil, err
}

func loadDir(dir string) (*System, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cerfix: manifest: %w", err)
	}
	input, err := schemaFromJSON(m.Input)
	if err != nil {
		return nil, err
	}
	masterSch, err := schemaFromJSON(m.Master)
	if err != nil {
		return nil, err
	}
	dsl, err := os.ReadFile(filepath.Join(dir, "rules.txt"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	sys, err := New(input, masterSch, string(dsl))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, "master.csv"))
	if err != nil {
		return nil, fmt.Errorf("cerfix: %w", err)
	}
	defer f.Close()
	if err := sys.LoadMasterCSV(f); err != nil {
		return nil, err
	}
	info := &LoadInfo{Dir: dir}
	if err := sys.replayWAL(filepath.Join(dir, walFile), info); err != nil {
		return nil, err
	}
	sys.loadInfo = info
	return sys, nil
}

// replayWAL applies wal.jsonl on top of a freshly loaded checkpoint.
// Replay is torn-tail tolerant: the appender fsyncs whole batches, so
// a crash can only leave a truncated final line, which replay treats
// as end-of-log. A dangling cell id (one no dict record defined) can
// only mean real corruption and fails the load.
func (s *System) replayWAL(path string, info *LoadInfo) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil // no WAL: the checkpoint is the whole instance
	}
	if err != nil {
		return fmt.Errorf("cerfix: wal: %w", err)
	}
	info.WALBytes = int64(len(data))
	defs := make(map[value.Sym]value.V)
	arity := s.store.Schema().Len()
	vals := make(value.List, arity)
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec walRecord
		if json.Unmarshal(line, &rec) != nil {
			// Torn tail from a crashed append; everything before it
			// was fsync'd and applied.
			log.Printf("cerfix: wal %s: ignoring torn tail after %d records", path, info.WALRecords)
			return nil
		}
		switch rec.Op {
		case "dict":
			for _, d := range rec.Defs {
				defs[d.ID] = value.V(d.S)
			}
		case "ins":
			if len(rec.Cells) != arity {
				return fmt.Errorf("cerfix: wal %s: row %d has %d cells, schema wants %d",
					path, rec.Row, len(rec.Cells), arity)
			}
			for i, sym := range rec.Cells {
				v, ok := defs[sym]
				if !ok {
					return fmt.Errorf("cerfix: wal %s: row %d references undefined dictionary id %d",
						path, rec.Row, sym)
				}
				vals[i] = v
			}
			if _, err := s.store.InsertValues(vals...); err != nil {
				return fmt.Errorf("cerfix: wal %s: row %d: %w", path, rec.Row, err)
			}
			info.WALRows++
		default:
			return fmt.Errorf("cerfix: wal %s: unknown op %q", path, rec.Op)
		}
		info.WALRecords++
	}
	return nil
}
